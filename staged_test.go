package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro"
)

// stagedRHS builds a deterministic right-hand side.
func stagedRHS(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = float64((i*7)%13) - 6
	}
	return b
}

// bitEqual fails unless got and want are bitwise identical float slices.
func bitEqual(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: deviates at [%d]: %v vs %v", what, i, got[i], want[i])
		}
	}
}

// TestStagedSolveBitIdenticalToMonolithic pins the tentpole contract on
// every suite matrix: the staged pipeline (AnalyzePattern -> Plan ->
// Factorize -> Solve) reproduces the monolithic System.Solve bit for
// bit, for both kernels. The LDLᵀ monolithic baseline is assembled by
// hand (factorize + permuted serial solve), since System never had an
// LDL solve-through — the gap the staged Factor closes.
func TestStagedSolveBitIdenticalToMonolithic(t *testing.T) {
	for _, tm := range repro.TestMatrices() {
		t.Run(tm.Name, func(t *testing.T) {
			a := tm.Build()
			b := stagedRHS(a.N)
			sys, err := repro.Analyze(a)
			if err != nil {
				t.Fatal(err)
			}
			an, err := repro.AnalyzePattern(a)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := an.Plan("wrap", 4, repro.StrategyOptions{})
			if err != nil {
				t.Fatal(err)
			}

			// Cholesky: staged vs System.Solve.
			fa, err := pl.Factorize(a, repro.KernelCholesky)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fa.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sys.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			bitEqual(t, got, want, "cholesky staged solve")

			// LDLᵀ: staged vs the hand-rolled monolithic sequence.
			fl, err := pl.Factorize(a, repro.KernelLDL)
			if err != nil {
				t.Fatal(err)
			}
			gotL, err := fl.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			ldl, err := sys.FactorizeLDL()
			if err != nil {
				t.Fatal(err)
			}
			pb := make([]float64, a.N)
			for k, old := range sys.Order {
				pb[k] = b[old]
			}
			px := ldl.Solve(pb)
			wantL := make([]float64, a.N)
			for k, old := range sys.Order {
				wantL[old] = px[k]
			}
			bitEqual(t, gotL, wantL, "ldl staged solve")
		})
	}
}

// TestStagedSolveParallelBitIdenticalToMonolithic pins the parallel
// path on every suite matrix at P in {1, 4, 16}: a block-granular
// staged plan factored by the parallel engine and solved by
// Factor.SolveParallel reproduces the monolithic System.SolveParallel
// (block-parallel factorization + parallel sweeps) bit for bit.
func TestStagedSolveParallelBitIdenticalToMonolithic(t *testing.T) {
	opts := repro.StrategyOptions{
		Part: repro.PartitionOptions{Grain: 25, MinClusterWidth: 4},
	}
	for _, tm := range repro.TestMatrices() {
		t.Run(tm.Name, func(t *testing.T) {
			a := tm.Build()
			b := stagedRHS(a.N)
			sys, err := repro.Analyze(a)
			if err != nil {
				t.Fatal(err)
			}
			an, err := repro.AnalyzePattern(a)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{1, 4, 16} {
				pl, err := an.Plan("block", p, opts)
				if err != nil {
					t.Fatal(err)
				}
				fa, err := pl.FactorizeParallel(a, repro.KernelCholesky)
				if err != nil {
					t.Fatal(err)
				}
				got, err := fa.SolveParallel(b)
				if err != nil {
					t.Fatal(err)
				}
				part := sys.Partition(opts.Part)
				sc := sys.BlockSchedule(part, p)
				want, err := sys.SolveParallel(part, sc, b)
				if err != nil {
					t.Fatal(err)
				}
				bitEqual(t, got, want, fmt.Sprintf("staged parallel solve P=%d", p))
			}
		})
	}
}

// TestStaged2DFactorBitIdenticalToMonolithic pins the 2D path: a staged
// 2D plan factored in parallel carries values bit-identical to the
// monolithic System.ParallelFactorize2D[LDL] over the same tile
// schedule, and those in turn to the serial kernels.
func TestStaged2DFactorBitIdenticalToMonolithic(t *testing.T) {
	a := repro.LAP30()
	sys, err := repro.Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	an, err := repro.AnalyzePattern(a)
	if err != nil {
		t.Fatal(err)
	}
	b := stagedRHS(a.N)
	for _, p := range []int{1, 4, 16} {
		pl, err := an.Plan2D("rect2dcyclic", p, repro.StrategyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := sys.MapStrategy2D("rect2dcyclic", p, repro.StrategyOptions{})
		if err != nil {
			t.Fatal(err)
		}

		fa, err := pl.FactorizeParallel(a, repro.KernelCholesky)
		if err != nil {
			t.Fatal(err)
		}
		val, err := sys.ParallelFactorize2D(s2)
		if err != nil {
			t.Fatal(err)
		}
		bitEqual(t, fa.Val, val, fmt.Sprintf("2D cholesky factor P=%d", p))

		fl, err := pl.FactorizeParallel(a, repro.KernelLDL)
		if err != nil {
			t.Fatal(err)
		}
		valL, err := sys.ParallelFactorize2DLDL(s2)
		if err != nil {
			t.Fatal(err)
		}
		bitEqual(t, fl.Val, valL, fmt.Sprintf("2D ldl factor P=%d", p))

		// The 2D chain engines replay the serial update order, so the
		// staged parallel solve must match the staged *serial* factor's
		// parallel solve bitwise as well (shared content address).
		plSerial, err := an.Plan("wrap", p, repro.StrategyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		faSerial, err := plSerial.Factorize(a, repro.KernelCholesky)
		if err != nil {
			t.Fatal(err)
		}
		if fa.Key != faSerial.Key {
			t.Fatalf("2D chain factor key %s differs from serial key %s", fa.Key, faSerial.Key)
		}
		x2, err := fa.SolveParallel(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := sys.ResidualNorm(x2, b); r > 1e-8 {
			t.Fatalf("2D staged parallel solve residual %g", r)
		}
	}
}

// TestStagedCacheZeroRepeatWork asserts the service contract with store
// counters: a repeat request on the same pattern performs zero symbolic
// and mapping work (analysis and plan hits), new values on a known
// pattern re-run only the numeric stage, and a held Factor solves with
// no store traffic at all.
func TestStagedCacheZeroRepeatWork(t *testing.T) {
	a := repro.Grid9(20, 20)
	b := stagedRHS(a.N)
	cache := repro.NewCache(0)
	opts := repro.StrategyOptions{}

	cold, err := cache.Solve(a, "wrap", 8, opts, repro.KernelCholesky, b)
	if err != nil {
		t.Fatal(err)
	}
	byKind := cache.StatsByKind()
	for _, kind := range []string{"analysis", "plan", "factor"} {
		c := byKind[kind]
		if c.Misses != 1 || c.Hits != 0 {
			t.Fatalf("cold %s counters: %+v, want 1 miss 0 hits", kind, c)
		}
	}

	// Repeat request: every stage hits; the result is bitwise the same.
	warm, err := cache.Solve(a, "wrap", 8, opts, repro.KernelCholesky, b)
	if err != nil {
		t.Fatal(err)
	}
	bitEqual(t, warm, cold, "warm staged solve")
	byKind = cache.StatsByKind()
	for _, kind := range []string{"analysis", "plan", "factor"} {
		c := byKind[kind]
		if c.Misses != 1 || c.Hits != 1 {
			t.Fatalf("warm %s counters: %+v, want 1 miss 1 hit", kind, c)
		}
	}

	// Same pattern, new values: zero symbolic and mapping work — only
	// the factor stage misses.
	a2 := repro.Grid9(20, 20)
	for i := range a2.Val {
		a2.Val[i] *= 2
	}
	if _, err := cache.Solve(a2, "wrap", 8, opts, repro.KernelCholesky, b); err != nil {
		t.Fatal(err)
	}
	byKind = cache.StatsByKind()
	if c := byKind["analysis"]; c.Misses != 1 || c.Hits != 2 {
		t.Fatalf("new-values analysis counters: %+v, want 1 miss 2 hits", c)
	}
	if c := byKind["plan"]; c.Misses != 1 || c.Hits != 2 {
		t.Fatalf("new-values plan counters: %+v, want 1 miss 2 hits", c)
	}
	if c := byKind["factor"]; c.Misses != 2 || c.Hits != 1 {
		t.Fatalf("new-values factor counters: %+v, want 2 misses 1 hit", c)
	}

	// A held Factor performs zero factorization (and zero store) work
	// per solve: counters are untouched by any number of solves.
	an, err := cache.Analysis(a)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := cache.Plan(an, "wrap", 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := cache.Factor(pl, a, repro.KernelCholesky)
	if err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	for i := 0; i < 3; i++ {
		x, err := fa.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		bitEqual(t, x, cold, "held-factor solve")
	}
	if after := cache.Stats(); after != before {
		t.Fatalf("held-factor solves touched the store: %+v -> %+v", before, after)
	}
}

// TestStagedFactorFromCacheHitBitIdentical pins cache correctness: a
// Factor built through a cache-hit Analysis (second cache, same pattern
// object arriving twice) is bitwise identical to a cold, cache-free
// build.
func TestStagedFactorFromCacheHitBitIdentical(t *testing.T) {
	a := repro.Grid9(18, 18)
	cache := repro.NewCache(0)
	if _, err := cache.Analysis(a); err != nil {
		t.Fatal(err)
	}
	an, err := cache.Analysis(a) // hit
	if err != nil {
		t.Fatal(err)
	}
	if c := cache.StatsByKind()["analysis"]; c.Hits != 1 {
		t.Fatalf("analysis counters %+v, want a hit on the second request", c)
	}
	pl, err := cache.Plan(an, "wrap", 4, repro.StrategyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fromHit, err := cache.Factor(pl, a, repro.KernelCholesky)
	if err != nil {
		t.Fatal(err)
	}

	anCold, err := repro.AnalyzePattern(a)
	if err != nil {
		t.Fatal(err)
	}
	plCold, err := anCold.Plan("wrap", 4, repro.StrategyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := plCold.Factorize(a, repro.KernelCholesky)
	if err != nil {
		t.Fatal(err)
	}
	bitEqual(t, fromHit.Val, cold.Val, "factor via cache-hit analysis")
	if fromHit.Key != cold.Key {
		t.Fatalf("factor keys differ: %s vs %s", fromHit.Key, cold.Key)
	}
}

// TestStagedConcurrentMappingAndSolves exercises the service workload
// under the race detector: one shared System and one shared Cache serving
// concurrent strategy mapping, staged solves and monolithic solves.
func TestStagedConcurrentMappingAndSolves(t *testing.T) {
	a := repro.LAP30()
	sys, err := repro.Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	cache := repro.NewCache(0)
	b := stagedRHS(a.N)
	want, err := sys.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"wrap", "block", "contiguous", "blockcyclic"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				name := names[(g+i)%len(names)]
				if _, err := sys.MapStrategy(name, 4+g, repro.StrategyOptions{}); err != nil {
					t.Errorf("MapStrategy(%s): %v", name, err)
					return
				}
				x, err := cache.Solve(a, "wrap", 8, repro.StrategyOptions{}, repro.KernelCholesky, b)
				if err != nil {
					t.Errorf("staged solve: %v", err)
					return
				}
				for k := range x {
					if x[k] != want[k] {
						t.Errorf("goroutine %d: staged solve deviates at [%d]", g, k)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := cache.Stats()
	if st.Misses != 3 {
		t.Fatalf("concurrent staged solves: %d misses, want 3 (one build per stage)", st.Misses)
	}
}
