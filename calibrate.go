package repro

// Calibration surface: fit the communication-time model (including the
// per-task fixed-overhead Gamma) to the measured task durations the real
// parallel engine emits, so the makespan simulators predict wall clock
// instead of abstract work units. See internal/calib for the fit.

import (
	"repro/internal/calib"
	"repro/internal/obs"
	"repro/internal/part2d"
)

// CalibratedModel is a fitted cost model: the work-unit CommModel (with
// Gamma) the simulators consume unchanged, the nanosecond-per-work-unit
// scale that converts simulated spans into predicted wall clock, and
// optional per-processor speed multipliers.
type CalibratedModel = calib.CalibratedModel

// FitReport carries the fit diagnostics: sample and dropped-event
// accounting, R², residual percentiles and the power-of-two residual
// histogram.
type FitReport = calib.FitReport

// CalibSample is one measured task execution in a calibration fit.
type CalibSample = calib.Sample

// FitOptions configures Fitter.Fit (per-processor speed multipliers).
type FitOptions = calib.Options

// Fitter accumulates measured runs across processor counts and mappers
// into one least-squares fit.
type Fitter = calib.Fitter

// CalibSummary is the fit block of kind "calibrate" ledger records.
type CalibSummary = obs.CalibSummary

// NewFitter returns an empty calibration fitter.
func NewFitter() *Fitter { return calib.NewFitter() }

// Calibrate fits {Alpha, Beta, Gamma} and the nanosecond scale to one
// measured run: events are MeasureFactorize2D's per-task TaskEvents,
// tasks the executed graph and tc its fetch attribution (both from
// Tasks2D; tc may be nil to charge no communication). Fit across several
// runs with a Fitter when calibrating over processor counts or mappers.
func Calibrate(events []TraceEvent, tasks []Task, tc *TaskComm) (CalibratedModel, FitReport, error) {
	return calib.Calibrate(events, tasks, tc)
}

// Tasks2D returns the merged tile-segment task graph of a 2D schedule
// and its per-task fetch attribution — the inputs Calibrate pairs with
// MeasureFactorize2D's measured events.
func (s *System) Tasks2D(sc *Schedule2D) ([]Task, *TaskComm) {
	tasks, elemTask := part2d.Tasks(s.an.Ops, s.an.ElemWork, sc)
	return tasks, part2d.FetchStats(s.an.Ops, sc, len(tasks), elemTask)
}

// CalibrateFactorize2D measures one real run of sc's task graph
// (repeat-and-min, bit-identity verified) and fits the homogeneous cost
// model to its per-task durations.
func (s *System) CalibrateFactorize2D(sc *Schedule2D, opts MeasureOptions) (*Measurement, CalibratedModel, FitReport, error) {
	mes, err := s.MeasureFactorize2D(sc, opts)
	if err != nil {
		return nil, CalibratedModel{}, FitReport{}, err
	}
	tasks, tc := s.Tasks2D(sc)
	model, report, err := Calibrate(mes.Events, tasks, tc)
	return mes, model, report, err
}
