// Package repro is a Go reproduction of Venugopal & Naik, "Effects of
// Partitioning and Scheduling Sparse Matrix Factorization on Communication
// and Load Balance" (Supercomputing 1991; ICASE Report 91-80).
//
// It provides a block-based, automatic partitioner and scheduler for
// sparse Cholesky factorization on (simulated) distributed-memory
// machines, the classical wrap-mapped column baseline, and the simulation
// machinery that measures what the paper measures: data traffic and load
// imbalance. The full pipeline is
//
//	matrix -> MMD ordering -> symbolic factorization -> clusters
//	       -> unit blocks -> dependencies -> schedule -> simulate
//
// A minimal use:
//
//	sys, _ := repro.Analyze(repro.LAP30())
//	part := sys.Partition(repro.PartitionOptions{Grain: 25, MinClusterWidth: 4})
//	block := sys.BlockSchedule(part, 16)
//	wrap := sys.WrapSchedule(16)
//	fmt.Println(sys.Traffic(block).Total, "vs", sys.Traffic(wrap).Total)
//
// Beyond the paper's two schemes, a pluggable strategy registry
// (internal/strategy) maps the same factorization with contiguous
// optimal-bottleneck column blocks, total-communication-optimal
// contiguous blocks (a work-bounded DP over cut boundaries), symmetric
// rectilinear diagonal blocks shared by rows and columns, block-cyclic
// layouts, subtree-to-subcube allocation over the elimination tree, or a
// greedy refinement pass over any base scheme (minimizing load
// imbalance, data traffic, or the unified comm-aware dynamic makespan):
//
//	sc, _ := sys.MapStrategy("contiguous", 16, repro.StrategyOptions{})
//	fmt.Println(sys.StrategyTraffic(repro.StrategyOptions{}, sc).Total)
//
// A second registry (internal/part2d) generalizes schedules to 2D tile
// ownership: each (rowBlock, colBlock) tile of a shared diagonal interval
// structure is assigned to a processor, measured by a fan-out/fan-in
// traffic simulator and comm-aware makespan simulators that are
// bit-identical to the 1D ones on column-granular tilings:
//
//	s2, _ := sys.MapStrategy2D("rect2d", 16, repro.StrategyOptions{})
//	fmt.Println(sys.Traffic2D(s2).Total, sys.Makespan2DComm(s2, cm).Makespan)
//
// The subsystems live in internal packages (sparse storage, generators,
// Harwell-Boeing I/O, MMD ordering, symbolic and numeric factorization,
// the partitioner core, schedulers, the mapping-strategy registry, and
// the traffic/makespan simulators); this package re-exports the stable
// surface needed to reproduce and extend the paper's experiments.
package repro

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/hbio"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/order"
	"repro/internal/part2d"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/strategy"
	"repro/internal/symbolic"
	"repro/internal/traffic"
)

// Matrix is a sparse symmetric matrix stored as its lower triangle.
type Matrix = sparse.Matrix

// SymbolicFactor is the symbolic structure of a Cholesky factor. (The
// name Factor now denotes the numeric-stage artifact of the staged
// pipeline; see staged.go.)
type SymbolicFactor = symbolic.Factor

// Partition is the block-based partitioner output: clusters, unit blocks
// and their dependency graph.
type Partition = core.Partition

// PartitionOptions controls the partitioner (grain size and minimum
// cluster width, the two knobs of the paper's experiments).
type PartitionOptions = core.Options

// Unit is one schedulable unit block (column, triangle or rectangle).
type Unit = core.Unit

// Schedule is an assignment of factorization work to processors.
type Schedule = sched.Schedule

// TrafficResult is the outcome of the data-traffic simulation.
type TrafficResult = traffic.Result

// MakespanResult is the outcome of the dependency-delay simulation.
type MakespanResult = exec.SimResult

// CommModel is the linear communication-time model of the comm-aware
// makespan simulators: Alpha work units per fetched non-local element
// (bandwidth) plus Beta work units per consolidated message (latency).
// The zero value charges nothing and reproduces the compute-only
// simulators exactly.
type CommModel = exec.CommModel

// TaskComm attributes a schedule's communication to its makespan tasks:
// per-task fetch volumes (summing to the traffic total) and consolidated
// message counts.
type TaskComm = traffic.TaskComm

// Task is one node of a generic scheduled task DAG. The paper's Section 5
// notes the methodology "can be generalized to computations that can be
// represented as directed acyclic graphs"; the simulation machinery is
// exposed for such use (see examples and SimulateDAG).
type Task = exec.Task

// Cholesky is a numeric Cholesky factor.
type Cholesky = numeric.Cholesky

// LDL is a square-root-free LDLᵀ factorization (usable for symmetric
// indefinite systems; exposes inertia).
type LDL = numeric.LDL

// HBHeader identifies a Harwell-Boeing file.
type HBHeader = hbio.Header

// TestMatrix describes one of the paper's test problems.
type TestMatrix = gen.TestMatrix

// System bundles the analysis products of one matrix: the fill-reducing
// ordering, the permuted matrix and the symbolic factor. It is a view
// over the staged pipeline's Analysis artifact (see staged.go) that keeps
// the original monolithic surface working; new code should hold the
// staged artifacts directly, which make the analyze-once / factor-many /
// solve-many split explicit and cacheable.
type System struct {
	// A is the original matrix, Order the fill-reducing permutation
	// (Order[k] = original index of the k-th eliminated variable), and
	// Permuted the reordered matrix actually factorized.
	A        *Matrix
	Order    []int
	Permuted *Matrix
	F        *SymbolicFactor

	an *pipeline.Analysis
}

// Analyze orders the matrix with multiple minimum degree and computes the
// symbolic factorization, the inputs of the partitioning pipeline.
func Analyze(a *Matrix) (*System, error) {
	an, err := pipeline.NewAnalysis(a)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return systemFrom(a, an)
}

// AnalyzeOrdered is Analyze with a caller-supplied elimination order
// (order[k] = original index of the k-th variable). Use MMDOrder,
// RCMOrder, NDOrder or PostOrderPerm to produce one.
func AnalyzeOrdered(a *Matrix, perm []int) (*System, error) {
	an, err := pipeline.NewAnalysisOrdered(a, perm)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return systemFrom(a, an)
}

// systemFrom wraps a staged Analysis as a System, reattaching a's values
// to the pattern-only permuted matrix (bitwise what a.Permute produced
// before the split).
func systemFrom(a *Matrix, an *pipeline.Analysis) (*System, error) {
	pm := an.Permuted
	if a.Val != nil {
		pv, err := an.PermuteValues(a)
		if err != nil {
			return nil, fmt.Errorf("repro: %w", err)
		}
		pm = &Matrix{N: pm.N, ColPtr: pm.ColPtr, RowInd: pm.RowInd, Val: pv}
	}
	return &System{A: a, Order: an.Perm, Permuted: pm, F: an.F, an: an}, nil
}

// Analysis returns the staged pattern-stage artifact this System wraps,
// the entry point for the staged plan/factor/solve API and the artifact
// Cache.
func (s *System) Analysis() *Analysis { return s.an }

// MMDOrder computes the multiple-minimum-degree ordering (the paper's
// choice for every experiment).
func MMDOrder(a *Matrix) []int { return order.MMD(a) }

// RCMOrder computes the reverse Cuthill-McKee (bandwidth-reducing)
// ordering.
func RCMOrder(a *Matrix) []int { return order.RCM(a) }

// NDOrder computes a nested-dissection ordering (leaf pieces of at most
// leafSize ordered by minimum degree; leafSize <= 0 selects the default).
func NDOrder(a *Matrix, leafSize int) []int { return order.NestedDissection(a, leafSize) }

// PostOrderPerm composes an ordering with a postordering of its
// elimination tree: identical fill, contiguous subtrees (which is what
// cluster relaxation needs to find merges).
func PostOrderPerm(a *Matrix, perm []int) ([]int, error) {
	return symbolic.PostOrderPerm(a, perm)
}

// TotalWork returns the total factorization work under the paper's model
// (2 units per pair update, 1 unit per diagonal update).
func (s *System) TotalWork() int64 { return s.an.Total }

// Partition runs the block-based partitioner of Section 3.
func (s *System) Partition(opts PartitionOptions) *Partition {
	return core.NewPartition(s.F, opts)
}

// BlockSchedule allocates the partition's unit blocks to p processors with
// the Section 3.4 heuristic.
//
//repro:allow procguard -- thin wrapper; sched.BlockMap panics on p < 1 with its package prefix
func (s *System) BlockSchedule(part *Partition, p int) *Schedule {
	return sched.BlockMap(part, p)
}

// BlockScheduleGreedy allocates with the work-aware variant of the
// Section 3.4 heuristic (the "more sophisticated strategy" the paper's
// Section 5 anticipates): all fallback decisions pick the least-loaded
// processor. It trades a small amount of extra communication for a much
// better load balance; see EXPERIMENTS.md Ext-E.
//
//repro:allow procguard -- thin wrapper; sched.BlockMapGreedy panics on p < 1 with its package prefix
func (s *System) BlockScheduleGreedy(part *Partition, p int) *Schedule {
	return sched.BlockMapGreedy(part, p)
}

// WrapSchedule assigns column j to processor j mod p (the paper's
// baseline).
//
//repro:allow procguard -- thin wrapper; sched.WrapMap panics on p < 1 with its package prefix
func (s *System) WrapSchedule(p int) *Schedule {
	return sched.WrapMap(s.F, s.an.ElemWork, p)
}

// ------------------------------------------------------------ strategies

// StrategyOptions carries the per-strategy knobs of the pluggable mapping
// registry (partition grain/width for block-based strategies, block size
// for blockcyclic, base strategy and objective for refine, work slack
// for contigtotal). The zero value selects sensible defaults everywhere.
type StrategyOptions = strategy.Options

// Strategies returns the sorted names of every registered partitioning
// strategy (at least block, blockcyclic, blockgreedy, contiguous,
// contigtotal, rectilinear, refine, subcube and wrap).
func Strategies() []string { return strategy.Names() }

// RefineObjectives returns the sorted names of the objectives the refine
// strategy accepts (at least commspan, imbalance and traffic), derived
// from the strategy package's objective table.
func RefineObjectives() []string { return strategy.Objectives() }

// strategySys returns the strategy-subsystem view of this analysis
// (shared ops, element work and the goroutine-safe partition cache).
func (s *System) strategySys() *strategy.Sys { return s.an.Sys() }

// MapStrategy runs the named registered strategy, producing a schedule
// the traffic and makespan simulators evaluate like any other. Unknown
// names yield an error listing the registered strategies.
//
//repro:allow procguard -- thin wrapper; strategy.Map validates p and returns the error
func (s *System) MapStrategy(name string, p int, opts StrategyOptions) (*Schedule, error) {
	return strategy.Map(name, s.strategySys(), p, opts)
}

// StrategyTraffic simulates the data traffic of a strategy schedule,
// honoring relaxed partitions for block-granular strategies (the strategy
// analogue of TrafficPart).
func (s *System) StrategyTraffic(opts StrategyOptions, sc *Schedule) *TrafficResult {
	return strategy.Traffic(s.strategySys(), opts, sc)
}

// StrategyMakespan simulates dependency-delay execution of a strategy
// schedule: unit-block tasks for block-granular schedules, column tasks
// otherwise.
func (s *System) StrategyMakespan(opts StrategyOptions, sc *Schedule) MakespanResult {
	return strategy.Makespan(s.strategySys(), opts, sc)
}

// StrategyMakespanDynamic is StrategyMakespan with a dynamic
// critical-path-priority ready queue on each processor.
func (s *System) StrategyMakespanDynamic(opts StrategyOptions, sc *Schedule) MakespanResult {
	return strategy.MakespanDynamic(s.strategySys(), opts, sc)
}

// StrategyMakespanComm simulates dependency-delay execution of a strategy
// schedule with communication-aware task durations: each task is charged
// its compute work plus cm's cost for the non-local elements and messages
// StrategyFetchStats attributes to it. With a zero CommModel the result is
// identical to StrategyMakespan, which unifies the paper's traffic and
// load-balance metrics into one regression-testable time estimate.
func (s *System) StrategyMakespanComm(opts StrategyOptions, sc *Schedule, cm CommModel) MakespanResult {
	return strategy.MakespanComm(s.strategySys(), opts, sc, cm)
}

// StrategyMakespanCommDynamic is StrategyMakespanComm with a dynamic ready
// queue; with a zero CommModel it is identical to StrategyMakespanDynamic.
func (s *System) StrategyMakespanCommDynamic(opts StrategyOptions, sc *Schedule, cm CommModel) MakespanResult {
	return strategy.MakespanCommDynamic(s.strategySys(), opts, sc, cm)
}

// StrategyFetchStats attributes the schedule's non-local fetches to its
// makespan tasks (per unit block or per column): fetch volumes summing
// exactly to StrategyTraffic(...).Total, and consolidated message counts
// (one message per distinct source processor feeding a task).
func (s *System) StrategyFetchStats(opts StrategyOptions, sc *Schedule) *TaskComm {
	return strategy.FetchStats(s.strategySys(), opts, sc)
}

// RefineSchedule runs the refine strategy's greedy improvement pass on an
// existing schedule without re-running its base strategy (opts selects
// the objective — imbalance, traffic, or commspan with opts.Comm as the
// cost model — and the move budget; the input schedule is not modified).
func (s *System) RefineSchedule(opts StrategyOptions, sc *Schedule) (*Schedule, error) {
	return strategy.Refine(s.strategySys(), opts, sc)
}

// ------------------------------------------------------- 2D tile ownership

// Schedule2D assigns every lower-triangle tile of a shared diagonal
// interval structure to a processor — the 2D generalization of a column
// schedule, in which a block column may be split by rows across
// processors (see internal/part2d).
type Schedule2D = part2d.Schedule2D

// Traffic2DResult is the outcome of the tile-granular traffic simulation:
// the deduplicated total of the 1D simulator plus the per-tile fan-out
// (row-direction) and fan-in (column-direction) volume attribution, which
// sums to the total exactly.
type Traffic2DResult = part2d.TrafficResult

// Mapper2D is one 2D partitioning/mapping strategy of the part2d
// registry; new mappers register with part2d.Register2D and immediately
// appear in Strategies2D, cmd/sweep -kind tile2d and the Ext-T tables.
type Mapper2D = part2d.Mapper2D

// Strategies2D returns the sorted names of every registered 2D strategy
// (at least col2d, rect2d, rect2dcyclic and rect2dlpt).
func Strategies2D() []string { return part2d.Names2D() }

// LiftBases2D returns the column-granular 1D strategies the col2d bridge
// lifts into the 2D subsystem.
func LiftBases2D() []string { return part2d.LiftBases() }

// MapStrategy2D runs the named registered 2D strategy, producing a tile
// schedule for the 2D simulators. The col2d strategy lifts the 1D
// strategy named by opts.Base (default wrap), making every column-granular
// 1D mapper comparable in the 2D simulators; rect2d and its variants keep
// the tile structure the 1D rectilinear mapper flattens away.
//
//repro:allow procguard -- thin wrapper; part2d.Map2D validates p and returns the error
func (s *System) MapStrategy2D(name string, p int, opts StrategyOptions) (*Schedule2D, error) {
	return part2d.Map2D(name, s.strategySys(), p, opts)
}

// Lift2D converts a column-granular 1D schedule into the equivalent 2D
// tile schedule without re-running its strategy (the bridge col2d uses).
func (s *System) Lift2D(sc *Schedule, name string) (*Schedule2D, error) {
	return part2d.Lift(s.strategySys(), sc, name)
}

// Traffic2D simulates the tile-granular data traffic of a 2D schedule:
// the same deduplicated fetch-on-first-use model as Traffic, with every
// fetch attributed to the target tile that first required it and
// classified as fan-out (pair-update sources traveling along the target's
// row of tiles) or fan-in (sources and diagonals converging along the
// target's column of tiles). Fan-out plus fan-in equals the total.
func (s *System) Traffic2D(sc *Schedule2D) *Traffic2DResult {
	return part2d.Traffic(s.an.Ops, sc)
}

// Makespan2D simulates dependency-delay execution of a 2D schedule over
// the merged tile-segment task graph with static per-processor order. On
// a column-granular tiling (any col2d lift) it is bit-identical to
// StrategyMakespan on the lifted 1D schedule.
func (s *System) Makespan2D(sc *Schedule2D) MakespanResult {
	return part2d.Makespan(s.an.Ops, s.an.ElemWork, sc)
}

// Makespan2DDynamic is Makespan2D with a dynamic critical-path-priority
// ready queue on each processor.
func (s *System) Makespan2DDynamic(sc *Schedule2D) MakespanResult {
	return part2d.MakespanDynamic(s.an.Ops, s.an.ElemWork, sc)
}

// Makespan2DComm simulates dependency-delay execution of a 2D schedule
// with communication-aware task durations under cm, charging every
// tile-segment task its fetch volume and consolidated message count. With
// a zero CommModel it is identical to Makespan2D; on col2d lifts it is
// bit-identical to StrategyMakespanComm.
func (s *System) Makespan2DComm(sc *Schedule2D, cm CommModel) MakespanResult {
	return part2d.MakespanComm(s.an.Ops, s.an.ElemWork, sc, cm)
}

// Makespan2DCommDynamic is Makespan2DComm with the dynamic ready queue.
func (s *System) Makespan2DCommDynamic(sc *Schedule2D, cm CommModel) MakespanResult {
	return part2d.MakespanCommDynamic(s.an.Ops, s.an.ElemWork, sc, cm)
}

// MeasureOptions configures MeasureFactorize2D (kernel choice and the
// repeat-and-min count).
type MeasureOptions = exec.MeasureOptions

// Measurement is one wall-clock comparison between the serial
// factorization and the parallel 2D engine: fastest serial and parallel
// times, the measured speedup, the per-task real TaskEvents of the fastest
// run, and the (bit-identical) parallel factor.
type Measurement = exec.Measurement

// ParallelFactorize2D executes the numeric Cholesky factorization with one
// worker goroutine per processor over the merged tile-segment task graph of
// a 2D schedule — the same graph the Makespan2D* simulators predict. The
// returned values are bit-for-bit equal to Factorize (updates run in the
// serial chain order with identical association, so the result does not
// depend on how the workers interleave).
//
// Deprecated: use Plan.FactorizeParallel on a 2D plan, which returns a
// solvable Factor artifact instead of raw values.
func (s *System) ParallelFactorize2D(sc *Schedule2D) ([]float64, error) {
	nf, err := part2d.ParallelFactorize(s.Permuted, s.an.Ops, s.an.ElemWork, sc)
	if err != nil {
		return nil, err
	}
	return nf.Val, nil
}

// ParallelFactorize2DLDL is ParallelFactorize2D with the square-root-free
// LDLᵀ kernel, bit-for-bit equal to FactorizeLDL.
//
// Deprecated: use Plan.FactorizeParallel on a 2D plan with KernelLDL.
func (s *System) ParallelFactorize2DLDL(sc *Schedule2D) ([]float64, error) {
	nf, err := part2d.ParallelFactorizeLDL(s.Permuted, s.an.Ops, s.an.ElemWork, sc)
	if err != nil {
		return nil, err
	}
	return nf.Val, nil
}

// MeasureFactorize2D times the serial factorization against the parallel
// 2D engine on sc's task graph (repeat-and-min on both sides, bit-identity
// verified on every parallel run) and returns the wall-clock Measurement.
// Its Events aggregate through BuildRealProfile and feed the Chrome-trace
// and Gantt exporters directly.
func (s *System) MeasureFactorize2D(sc *Schedule2D, opts MeasureOptions) (*Measurement, error) {
	return part2d.Measure(s.Permuted, s.an.Ops, s.an.ElemWork, sc, opts)
}

// Traffic simulates the data traffic of a schedule under the paper's
// model: one unit per distinct non-local element fetched per processor.
// For block schedules over a relaxed partition use TrafficPart.
func (s *System) Traffic(sc *Schedule) *TrafficResult {
	return traffic.Simulate(s.an.Ops, sc)
}

// TrafficPart simulates traffic for a block schedule over the given
// partition, honoring relaxed (zero-padded) factors whose structure is a
// superset of the analysis factor.
func (s *System) TrafficPart(part *Partition, sc *Schedule) *TrafficResult {
	if part.F == s.F {
		return traffic.Simulate(s.an.Ops, sc)
	}
	return traffic.Simulate(model.NewOps(part.F), sc)
}

// BlockMakespan simulates execution with dependency delays for a
// block-mapped partition, refining the paper's 1/(1+A) efficiency bound.
func (s *System) BlockMakespan(part *Partition, sc *Schedule) MakespanResult {
	tasks := exec.BlockTasks(part, sc)
	return exec.SimulateMakespan(tasks, sc.P)
}

// WrapMakespan simulates execution with dependency delays for the wrap
// mapping (one task per column).
//
//repro:allow procguard -- thin wrapper; exec.ColumnTasks panics on p < 1 with its package prefix
func (s *System) WrapMakespan(p int) MakespanResult {
	tasks := exec.ColumnTasks(s.F, s.an.Ops, s.an.ElemWork, p)
	return exec.SimulateMakespan(tasks, p)
}

// BlockMakespanDynamic is BlockMakespan with a dynamic ready queue
// (critical-path priority) instead of static scan order on each
// processor.
func (s *System) BlockMakespanDynamic(part *Partition, sc *Schedule) MakespanResult {
	tasks := exec.BlockTasks(part, sc)
	return exec.SimulateMakespanDynamic(tasks, sc.P)
}

// SimulateDAG simulates execution of an arbitrary task DAG on p
// processors with static per-processor order (tasks must be topologically
// ordered by ID and carry their processor assignment).
//
//repro:allow procguard -- thin wrapper; the exec simulators panic on p < 1 with their package prefix
func SimulateDAG(tasks []Task, p int) MakespanResult {
	return exec.SimulateMakespan(tasks, p)
}

// SimulateDAGDynamic is SimulateDAG with a critical-path-priority ready
// queue on each processor.
//
//repro:allow procguard -- thin wrapper; the exec simulators panic on p < 1 with their package prefix
func SimulateDAGDynamic(tasks []Task, p int) MakespanResult {
	return exec.SimulateMakespanDynamic(tasks, p)
}

// CriticalPath returns the longest work-weighted path of a task DAG, the
// processor-independent lower bound on any schedule's makespan.
func CriticalPath(tasks []Task) int64 { return exec.CriticalPath(tasks) }

// Factorize computes the numeric Cholesky factor of the permuted matrix.
//
// Deprecated: use the staged pipeline (Plan.Factorize), which caches by
// (pattern, values, kernel) through a Cache.
func (s *System) Factorize() (*Cholesky, error) {
	return numeric.Factorize(s.Permuted, s.F)
}

// FactorizeLDL computes the square-root-free LDLᵀ factorization of the
// permuted matrix. It succeeds for symmetric indefinite matrices as long
// as no pivot vanishes, and its element-level dependency structure is
// identical to Cholesky's, so every partition and schedule applies
// unchanged (the paper's Section 5 adaptability claim).
//
// Deprecated: use the staged pipeline (Plan.Factorize with KernelLDL).
func (s *System) FactorizeLDL() (*LDL, error) {
	return numeric.FactorizeLDL(s.Permuted, s.F)
}

// ParallelFactorizeLDL is ParallelFactorize with the LDLᵀ kernel.
//
// Deprecated: use Plan.FactorizeParallel with KernelLDL.
func (s *System) ParallelFactorizeLDL(part *Partition, sc *Schedule) ([]float64, error) {
	nf, err := exec.ParallelFactorizeLDL(s.Permuted, part, sc)
	if err != nil {
		return nil, err
	}
	return nf.Val, nil
}

// ParallelFactorize executes the numeric factorization with one worker
// goroutine per simulated processor, synchronizing on the block dependency
// graph, and returns the factor values (aligned with F's structure).
//
// Deprecated: use Plan.FactorizeParallel on a block-granular 1D plan.
func (s *System) ParallelFactorize(part *Partition, sc *Schedule) ([]float64, error) {
	nf, err := exec.ParallelFactorize(s.Permuted, part, sc)
	if err != nil {
		return nil, err
	}
	return nf.Val, nil
}

// SolveParallel solves A·x = b with every numeric phase executed by
// worker goroutines over the given partition and schedule: block-parallel
// Cholesky factorization followed by parallel forward and backward
// triangular sweeps (the complete four-step pipeline of the paper's
// Section 2, distributed). x is returned in the original variable order.
//
// Deprecated: SolveParallel re-factorizes on every call. Build the plan
// once (Analysis.Plan), factor once (Plan.FactorizeParallel) and call
// Factor.SolveParallel per rhs.
func (s *System) SolveParallel(part *Partition, sc *Schedule, b []float64) ([]float64, error) {
	if len(b) != s.A.N {
		return nil, fmt.Errorf("repro: rhs length %d, want %d", len(b), s.A.N)
	}
	nf, err := exec.ParallelFactorize(s.Permuted, part, sc)
	if err != nil {
		return nil, err
	}
	chol := &numeric.Cholesky{F: nf.F, Val: nf.Val}
	pb := make([]float64, len(b))
	for k, old := range s.Order {
		pb[k] = b[old]
	}
	px, err := exec.ParallelSolve(chol, sc, pb)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	for k, old := range s.Order {
		x[old] = px[k]
	}
	return x, nil
}

// Solve solves A·x = b for the original (unpermuted) system, running the
// whole direct-method pipeline of Section 2.
//
// Deprecated: Solve re-factorizes on every call. Hold a staged Factor
// (Plan.Factorize via AnalyzePattern or a Cache) and call Factor.Solve,
// which is bit-identical and performs zero factorization work per call.
func (s *System) Solve(b []float64) ([]float64, error) {
	if len(b) != s.A.N {
		return nil, fmt.Errorf("repro: rhs length %d, want %d", len(b), s.A.N)
	}
	chol, err := s.Factorize()
	if err != nil {
		return nil, err
	}
	pb := make([]float64, len(b))
	for k, old := range s.Order {
		pb[k] = b[old]
	}
	px := chol.Solve(pb)
	x := make([]float64, len(b))
	for k, old := range s.Order {
		x[old] = px[k]
	}
	return x, nil
}

// ResidualNorm returns ‖A·x − b‖∞ / ‖b‖∞ for the original system.
func (s *System) ResidualNorm(x, b []float64) float64 {
	return numeric.ResidualNorm(s.A, x, b)
}

// ----------------------------------------------------------- generators

// LAP30 builds the paper's LAP30 problem (exact reproduction: the 9-point
// Laplacian on a 30x30 grid, 900 equations, 4322 lower nonzeros).
func LAP30() *Matrix { return gen.Lap30() }

// TestMatrices returns the five test problems of the paper's Table 1.
func TestMatrices() []TestMatrix { return gen.Suite() }

// BuildMatrix builds a suite matrix by name (case-insensitive), e.g.
// "LAP30" or "BUS1138".
func BuildMatrix(name string) (*Matrix, TestMatrix, error) { return gen.ByName(name) }

// Grid5 and Grid9 build 5-point and 9-point Laplacian grid problems.
func Grid5(rows, cols int) *Matrix { return gen.Grid5(rows, cols) }

// Grid9 builds the 9-point Laplacian on a rows x cols grid.
func Grid9(rows, cols int) *Matrix { return gen.Grid9(rows, cols) }

// FEGrid5 builds the 5-point finite-element grid of the paper's Figure 2
// (m = 5 gives the 41-unknown example).
func FEGrid5(m int) *Matrix { return gen.FEGrid5(m) }

// ----------------------------------------------------------- HB format

// ReadHB parses a Harwell-Boeing file (RSA or PSA).
func ReadHB(r io.Reader) (*Matrix, HBHeader, error) { return hbio.Read(r) }

// WriteHB writes a matrix in Harwell-Boeing format.
func WriteHB(w io.Writer, m *Matrix, title, key string) error {
	return hbio.Write(w, m, title, key)
}
