package repro

// Observability surface: tracing probes for every makespan simulator,
// execution profiles with critical-path attribution, Chrome trace / ASCII
// Gantt export, search telemetry and the machine-readable bench ledger.
// See internal/obs for the underlying layer; tracing is strictly opt-in
// and a nil probe leaves every simulator bit-identical to its untraced
// entry point.

import (
	"io"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/part2d"
	"repro/internal/strategy"
)

// TraceEvent is one traced task execution: placement, timing, the
// work/comm split of its duration, and the stall (with its causing
// predecessor) the simulator charged before its start.
type TraceEvent = exec.TaskEvent

// Probe receives one TraceEvent per task from a traced simulation.
type Probe = exec.Probe

// Tracer is the standard Probe: it collects every event of one run.
type Tracer = obs.Tracer

// Profile aggregates a traced run: per-processor busy/comm/stall/idle
// breakdown, idle-gap histogram, and the critical path with per-link
// attribution to compute, communication, or the binding constraint.
type Profile = obs.Profile

// ProcProfile is one processor's time breakdown within a Profile.
type ProcProfile = obs.ProcProfile

// PathLink is one task on a Profile's critical path.
type PathLink = obs.PathLink

// SearchTelemetry collects trial counts and the objective trajectory of a
// mapper search when attached via StrategyOptions.Search.
type SearchTelemetry = obs.SearchTelemetry

// BenchRecord is one benchmarked run in the ledger; BenchLedgerSchema
// tags the format.
type BenchRecord = obs.BenchRecord

// Ledger is the machine-readable bench output (BENCH_*.json).
type Ledger = obs.Ledger

// BenchLedgerSchema is the ledger format tag ValidateLedger checks.
const BenchLedgerSchema = obs.LedgerSchema

// NewTracer returns an empty Tracer ready to attach to any traced
// simulation entry point.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewLedger returns an empty bench ledger with the current schema tag.
func NewLedger() *Ledger { return obs.NewLedger() }

// ValidateLedger checks serialized ledger bytes: schema tag, at least one
// record, every required key present (the CI archive gate).
func ValidateLedger(data []byte) error { return obs.ValidateLedger(data) }

// BuildProfile aggregates the complete event set of one traced simulation
// into a Profile whose totals reconcile with res exactly.
func BuildProfile(events []TraceEvent, res MakespanResult) (*Profile, error) {
	return obs.BuildProfile(events, res)
}

// BuildRealProfile aggregates the per-task events of one real (wall-clock)
// execution — MeasureFactorize2D's Events — into a Profile. Real events
// need not be time-contiguous (goroutine startup and OS scheduling leave
// uncaused gaps), so this is the tolerant builder: no critical path is
// extracted and stalls are counted only when a blocking predecessor was
// observed.
//
//repro:allow procguard -- thin wrapper; obs.RealProfile validates p and returns the error
func BuildRealProfile(events []TraceEvent, p int) (*Profile, error) {
	return obs.RealProfile(events, p)
}

// FormatProfile renders a Profile as a terminal report.
func FormatProfile(p *Profile) string { return obs.FormatProfile(p) }

// WriteChromeTrace exports traced events as Chrome trace-event JSON
// (Perfetto-loadable), one lane per processor.
//
//repro:allow procguard -- thin wrapper; obs.WriteChromeTrace validates p and returns the error
func WriteChromeTrace(w io.Writer, events []TraceEvent, p int) error {
	return obs.WriteChromeTrace(w, events, p)
}

// WriteTrace exports traced events in the named format ("chrome" or
// "gantt"); unknown formats are refused.
func WriteTrace(w io.Writer, format string, events []TraceEvent, res MakespanResult) error {
	return obs.WriteTrace(w, format, events, res)
}

// Gantt renders traced events as an ASCII per-processor timeline.
//
//repro:allow procguard -- thin wrapper; obs.Gantt guards p < 1 and renders a diagnostic line
func Gantt(events []TraceEvent, p int, makespan int64, width int) string {
	return obs.Gantt(events, p, makespan, width)
}

// TraceFormats lists the supported trace export formats.
func TraceFormats() []string { return obs.TraceFormats() }

// TraceMakespan is StrategyMakespan with tracing: it returns the result
// plus one TraceEvent per task.
func (s *System) TraceMakespan(opts StrategyOptions, sc *Schedule) (MakespanResult, []TraceEvent) {
	t := obs.NewTracer()
	res := strategy.MakespanProbe(s.strategySys(), opts, sc, t)
	return res, t.Events
}

// TraceMakespanDynamic is StrategyMakespanDynamic with tracing.
func (s *System) TraceMakespanDynamic(opts StrategyOptions, sc *Schedule) (MakespanResult, []TraceEvent) {
	t := obs.NewTracer()
	res := strategy.MakespanDynamicProbe(s.strategySys(), opts, sc, t)
	return res, t.Events
}

// TraceMakespanComm is StrategyMakespanComm with tracing; each event
// splits its duration into compute and communication.
func (s *System) TraceMakespanComm(opts StrategyOptions, sc *Schedule, cm CommModel) (MakespanResult, []TraceEvent) {
	t := obs.NewTracer()
	res := strategy.MakespanCommProbe(s.strategySys(), opts, sc, cm, t)
	return res, t.Events
}

// TraceMakespanCommDynamic is StrategyMakespanCommDynamic with tracing.
func (s *System) TraceMakespanCommDynamic(opts StrategyOptions, sc *Schedule, cm CommModel) (MakespanResult, []TraceEvent) {
	t := obs.NewTracer()
	res := strategy.MakespanCommDynamicProbe(s.strategySys(), opts, sc, cm, t)
	return res, t.Events
}

// TraceMakespan2D is Makespan2D with tracing over the merged tile-segment
// tasks.
func (s *System) TraceMakespan2D(sc *Schedule2D) (MakespanResult, []TraceEvent) {
	t := obs.NewTracer()
	res := part2d.MakespanProbe(s.an.Ops, s.an.ElemWork, sc, t)
	return res, t.Events
}

// TraceMakespan2DDynamic is Makespan2DDynamic with tracing.
func (s *System) TraceMakespan2DDynamic(sc *Schedule2D) (MakespanResult, []TraceEvent) {
	t := obs.NewTracer()
	res := part2d.MakespanDynamicProbe(s.an.Ops, s.an.ElemWork, sc, t)
	return res, t.Events
}

// TraceMakespan2DComm is Makespan2DComm with tracing.
func (s *System) TraceMakespan2DComm(sc *Schedule2D, cm CommModel) (MakespanResult, []TraceEvent) {
	t := obs.NewTracer()
	res := part2d.MakespanCommProbe(s.an.Ops, s.an.ElemWork, sc, cm, t)
	return res, t.Events
}

// TraceMakespan2DCommDynamic is Makespan2DCommDynamic with tracing.
func (s *System) TraceMakespan2DCommDynamic(sc *Schedule2D, cm CommModel) (MakespanResult, []TraceEvent) {
	t := obs.NewTracer()
	res := part2d.MakespanCommDynamicProbe(s.an.Ops, s.an.ElemWork, sc, cm, t)
	return res, t.Events
}

// ProfileStrategy runs the comm-aware dynamic makespan simulation of a
// strategy schedule under cm with tracing and aggregates the events into
// a Profile (reconciling with the returned result exactly).
func (s *System) ProfileStrategy(opts StrategyOptions, sc *Schedule, cm CommModel) (*Profile, MakespanResult, error) {
	res, events := s.TraceMakespanCommDynamic(opts, sc, cm)
	prof, err := obs.BuildProfile(events, res)
	return prof, res, err
}

// ProfileStrategy2D is ProfileStrategy for a 2D tile schedule.
func (s *System) ProfileStrategy2D(sc *Schedule2D, cm CommModel) (*Profile, MakespanResult, error) {
	res, events := s.TraceMakespan2DCommDynamic(sc, cm)
	prof, err := obs.BuildProfile(events, res)
	return prof, res, err
}
