// Command reprolint runs the repo-native static analyzers over the given
// package patterns and exits non-zero on any finding:
//
//	go run ./cmd/reprolint ./...            # the CI lint gate
//	go run ./cmd/reprolint -list            # what is enforced
//	go run ./cmd/reprolint -only maporder,procguard ./internal/exec
//
// Findings print as "file:line: analyzer: message" and are suppressed in
// place with
//
//	//repro:allow <analyzer> -- <reason>
//
// on the flagged line or the line above; the reason is mandatory and
// unused suppressions are themselves findings, so the waiver set cannot
// rot.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := lint.Select(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		// Paths relative to the module root keep output stable across
		// checkouts (and clickable from the repo root).
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
