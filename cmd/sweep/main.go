// Command sweep emits CSV data series for plotting: processor sweeps,
// grain sweeps, width sweeps and cross-strategy sweeps over any of the
// test matrices, with one row per configuration. It is the data generator
// behind the trade-off curves discussed in EXPERIMENTS.md.
//
// Usage:
//
//	sweep -kind procs    -matrix LAP30 > procs.csv
//	sweep -kind grain    -matrix LAP30 -procs 16 > grain.csv
//	sweep -kind width    -matrix LAP30 -procs 16 > width.csv
//	sweep -kind strategy -matrix LAP30 -procs 16 > strategy.csv
//	sweep -kind strategy -strategy contiguous -matrix LAP30 -procs 16
//	sweep -kind strategy -strategy refine -objective commspan -alpha 2 -beta 10
//	sweep -kind comm     -matrix LAP30 -alpha 2 -beta 10 > comm.csv
//	sweep -kind tile2d   -matrix LAP30 -alpha 2 -beta 10 > tile2d.csv
//	sweep -kind tile2d   -strategy col2d:rectilinear -matrix LAP30
//	sweep -kind measure  -matrix LAP30 -repeats 3 > measure.csv
//	sweep -kind calibrate -matrix LAP30 -repeats 3 > calibrate.csv
//	sweep -kind all      -out data/         # every series for every matrix
//	sweep -kind strategy -matrix LAP30 -ledger BENCH_lap30.json
//	sweep -kind tile2d   -strategy rect2dcyclic -procs 64 -trace trace.json
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"

	"repro"
)

var (
	procsSweep   = []int{1, 2, 4, 8, 16, 32, 64}
	grainSweep   = []int{2, 4, 8, 16, 25, 50, 100, 200}
	widthSweep   = []int{2, 3, 4, 6, 8, 12, 16}
	measureSweep = []int{1, 4, 16, 64}
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		kind   = flag.String("kind", "procs", "series: procs, grain, width, strategy, comm, tile2d, measure, calibrate, or all")
		matrix = flag.String("matrix", "LAP30", "test matrix name")
		procs  = flag.Int("procs", 16, "processors (grain, width and strategy sweeps)")
		grain  = flag.Int("grain", 25, "grain size (procs, width and strategy sweeps)")
		strat  = flag.String("strategy", "", "restrict the strategy sweep to one registered strategy (default all: "+strings.Join(repro.Strategies(), ", ")+")")
		obj    = flag.String("objective", "", "refine objective for the refine strategy (one of: "+strings.Join(repro.RefineObjectives(), ", ")+"; default imbalance)")
		out    = flag.String("out", "", "output directory for -kind all (default stdout for single series)")
		alpha  = flag.Float64("alpha", 2, "comm model: work units per fetched element (comm sweep, commspan objective)")
		beta   = flag.Float64("beta", 10, "comm model: work units per received message (comm sweep, commspan objective)")
		beta2  = flag.Float64("beta2", 0, "contigtotal objective: weight of per-cut message counts next to volume")
		trace  = flag.String("trace", "", "write the traced comm-aware dynamic run of the single -strategy at -procs to this path (kinds strategy, comm, tile2d)")
		tracef = flag.String("traceformat", "chrome", "trace export format: "+strings.Join(repro.TraceFormats(), " or "))
		ledger = flag.String("ledger", "", "write one BENCH record per sweep row to this path (kinds strategy, comm, tile2d)")
		reps   = flag.Int("repeats", 3, "repeat-and-min count for the measure sweep's wall-clock timings")
	)
	flag.Parse()
	// !(x >= 0) also rejects NaN, which a plain x < 0 lets through.
	if !(*alpha >= 0) || !(*beta >= 0) || math.IsInf(*alpha, 0) || math.IsInf(*beta, 0) {
		log.Fatalf("invalid comm model: alpha=%g beta=%g (both must be finite and >= 0)", *alpha, *beta)
	}
	if !(*beta2 >= 0) || math.IsInf(*beta2, 0) {
		log.Fatalf("invalid -beta2 %g (must be finite and >= 0)", *beta2)
	}
	if *kind == "tile2d" || *kind == "measure" || *kind == "calibrate" {
		validateChoice("2D strategy", *strat, tile2dChoices())
	} else {
		validateChoice("strategy", *strat, repro.Strategies())
	}
	if err := validateRepeats(*kind, *reps); err != nil {
		log.Fatal(err)
	}
	validateChoice("refine objective", *obj, repro.RefineObjectives())
	cm := repro.CommModel{Alpha: *alpha, Beta: *beta}

	// The observability outputs fail fast, before any sweep work: trace
	// format and kind compatibility are checked and the files created up
	// front, so a typo can't surface after a long simulation.
	benchKinds := []string{"strategy", "comm", "tile2d"}
	bcap := &capture{traceFormat: *tracef, traceProcs: *procs, traceStrategy: *strat}
	if *trace != "" {
		validateChoice("trace format", *tracef, repro.TraceFormats())
		if !slices.Contains(benchKinds, *kind) {
			log.Fatalf("-trace requires -kind %s (got %q)", strings.Join(benchKinds, ", "), *kind)
		}
		if *strat == "" {
			log.Fatal("-trace requires a single -strategy to capture")
		}
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatalf("-trace: %v", err)
		}
		defer f.Close()
		bcap.traceW = f
	}
	if *ledger != "" {
		if !slices.Contains(benchKinds, *kind) {
			log.Fatalf("-ledger requires -kind %s (got %q)", strings.Join(benchKinds, ", "), *kind)
		}
		f, err := os.Create(*ledger)
		if err != nil {
			log.Fatalf("-ledger: %v", err)
		}
		defer f.Close()
		bcap.ledgerW = f
		bcap.ledger = repro.NewLedger()
	}

	if *kind == "all" {
		if *out == "" {
			log.Fatal("-kind all requires -out")
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, tm := range repro.TestMatrices() {
			for _, k := range []string{"procs", "grain", "width", "strategy", "comm", "tile2d"} {
				path := filepath.Join(*out, strings.ToLower(tm.Name)+"_"+k+".csv")
				f, err := os.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				if err := writeSeries(f, k, tm.Name, *procs, *grain, *strat, *obj, cm, *beta2, *reps, nil); err != nil {
					log.Fatal(err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
		return
	}
	if err := writeSeries(os.Stdout, *kind, *matrix, *procs, *grain, *strat, *obj, cm, *beta2, *reps, bcap); err != nil {
		log.Fatal(err)
	}
	if bcap.ledger != nil {
		if err := bcap.ledger.Write(bcap.ledgerW); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", *ledger, len(bcap.ledger.Records))
	}
	if bcap.traceW != nil {
		if !bcap.traced {
			log.Fatalf("-trace: strategy %q at -procs %d never ran in the %s sweep", *strat, *procs, *kind)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *trace)
	}
}

// capture carries the observability outputs of one sweep: the ledger
// accumulating one BENCH record per row, and the trace writer capturing
// the single (traceStrategy, traceProcs) run.
type capture struct {
	ledger        *repro.Ledger
	ledgerW       io.Writer
	traceW        io.Writer
	traceFormat   string
	traceStrategy string
	traceProcs    int
	traced        bool
}

// observe records one traced comm-aware dynamic run into the capture:
// always a ledger record (when the ledger is on), and the trace export
// when (name, p) is the selected trace point. matrix/kind2 label the
// record; traffic is the run's simulated total traffic.
func (c *capture) observe(matrix, kind2, name string, p int, cm repro.CommModel, traffic int64,
	res repro.MakespanResult, events []repro.TraceEvent) error {
	if c == nil {
		return nil
	}
	if c.ledger != nil {
		prof, err := repro.BuildProfile(events, res)
		if err != nil {
			return err
		}
		sum := prof.Summary()
		c.ledger.Add(repro.BenchRecord{
			Matrix: matrix, Strategy: name, Kind: kind2, P: p,
			Alpha: cm.Alpha, Beta: cm.Beta,
			Makespan: res.Makespan, Traffic: traffic, Efficiency: res.Efficiency,
			Profile: &sum,
		})
	}
	if c.traceW != nil && !c.traced && name == c.traceStrategy && p == c.traceProcs {
		if err := repro.WriteTrace(c.traceW, c.traceFormat, events, res); err != nil {
			return err
		}
		c.traced = true
	}
	return nil
}

// active reports whether the capture needs the traced run of (name, p).
func (c *capture) active(name string, p int) bool {
	if c == nil {
		return false
	}
	return c.ledger != nil || (c.traceW != nil && name == c.traceStrategy && p == c.traceProcs)
}

// validateRepeats rejects a repeat-and-min count the measurement kinds
// cannot honour, before any sweep work starts. Kinds that never time a
// real run ignore -repeats and accept anything.
func validateRepeats(kind string, reps int) error {
	if (kind == "measure" || kind == "calibrate") && reps < 1 {
		return fmt.Errorf("invalid -repeats %d for -kind %s (want >= 1)", reps, kind)
	}
	return nil
}

// validateChoice fails fast (before any sweep work) when a flag value is
// set but not among the registered choices, listing them — so an unknown
// -strategy or -objective can't die mid-sweep after emitting partial CSV.
func validateChoice(name, value string, choices []string) {
	if value == "" || slices.Contains(choices, value) {
		return
	}
	log.Fatalf("unknown %s %q (registered: %s)", name, value, strings.Join(choices, ", "))
}

func writeSeries(out io.Writer, kind, matrix string, procs, grain int, strat, obj string, cm repro.CommModel, beta2 float64, reps int, bcap *capture) error {
	m, _, err := repro.BuildMatrix(matrix)
	if err != nil {
		return err
	}
	sys, err := repro.Analyze(m)
	if err != nil {
		return err
	}
	w := csv.NewWriter(out)
	defer w.Flush()
	row := func(fields ...string) error { return w.Write(fields) }

	switch kind {
	case "procs":
		if err := row("procs", "scheme", "traffic", "mean_traffic", "imbalance",
			"efficiency_bound", "makespan_eff_static"); err != nil {
			return err
		}
		part := sys.Partition(repro.PartitionOptions{Grain: grain, MinClusterWidth: 4})
		for _, p := range procsSweep {
			bs := sys.BlockSchedule(part, p)
			bt := sys.Traffic(bs)
			bm := sys.BlockMakespan(part, bs)
			if err := row(strconv.Itoa(p), "block",
				fmt.Sprint(bt.Total), fmt.Sprintf("%.1f", bt.Mean()),
				fmt.Sprintf("%.4f", bs.Imbalance()), fmt.Sprintf("%.4f", bs.Efficiency()),
				fmt.Sprintf("%.4f", bm.Efficiency)); err != nil {
				return err
			}
			ws := sys.WrapSchedule(p)
			wt := sys.Traffic(ws)
			wm := sys.WrapMakespan(p)
			if err := row(strconv.Itoa(p), "wrap",
				fmt.Sprint(wt.Total), fmt.Sprintf("%.1f", wt.Mean()),
				fmt.Sprintf("%.4f", ws.Imbalance()), fmt.Sprintf("%.4f", ws.Efficiency()),
				fmt.Sprintf("%.4f", wm.Efficiency)); err != nil {
				return err
			}
		}
	case "grain":
		if err := row("grain", "units", "traffic", "imbalance"); err != nil {
			return err
		}
		for _, g := range grainSweep {
			part := sys.Partition(repro.PartitionOptions{Grain: g, MinClusterWidth: 4})
			sc := sys.BlockSchedule(part, procs)
			tr := sys.Traffic(sc)
			if err := row(strconv.Itoa(g), strconv.Itoa(len(part.Units)),
				fmt.Sprint(tr.Total), fmt.Sprintf("%.4f", sc.Imbalance())); err != nil {
				return err
			}
		}
	case "width":
		if err := row("width", "units", "clusters", "traffic", "imbalance"); err != nil {
			return err
		}
		for _, wd := range widthSweep {
			part := sys.Partition(repro.PartitionOptions{Grain: grain, MinClusterWidth: wd})
			sc := sys.BlockSchedule(part, procs)
			tr := sys.Traffic(sc)
			if err := row(strconv.Itoa(wd), strconv.Itoa(len(part.Units)),
				strconv.Itoa(len(part.Clusters)),
				fmt.Sprint(tr.Total), fmt.Sprintf("%.4f", sc.Imbalance())); err != nil {
				return err
			}
		}
	case "strategy":
		if err := row("strategy", "procs", "traffic", "mean_traffic", "imbalance",
			"efficiency_bound", "makespan_eff"); err != nil {
			return err
		}
		names := repro.Strategies()
		if strat != "" {
			names = []string{strat}
		}
		opts := repro.StrategyOptions{
			Part:      repro.PartitionOptions{Grain: grain, MinClusterWidth: 4},
			Objective: obj,
			Comm:      cm,
			Beta2:     beta2,
		}
		for _, name := range names {
			sc, err := sys.MapStrategy(name, procs, opts)
			if err != nil {
				return err
			}
			tr := sys.StrategyTraffic(opts, sc)
			ms := sys.StrategyMakespan(opts, sc)
			if err := row(name, strconv.Itoa(procs),
				fmt.Sprint(tr.Total), fmt.Sprintf("%.1f", tr.Mean()),
				fmt.Sprintf("%.4f", sc.Imbalance()), fmt.Sprintf("%.4f", sc.Efficiency()),
				fmt.Sprintf("%.4f", ms.Efficiency)); err != nil {
				return err
			}
			if bcap.active(name, procs) {
				res, events := sys.TraceMakespanCommDynamic(opts, sc, cm)
				if err := bcap.observe(matrix, "strategy", name, procs, cm, tr.Total, res, events); err != nil {
					return err
				}
			}
		}
	case "comm":
		if err := row("strategy", "procs", "alpha", "beta", "fetch_vol", "fetch_msgs",
			"span_compute", "span_comm", "span_comm_dynamic", "comm_frac"); err != nil {
			return err
		}
		names := repro.Strategies()
		if strat != "" {
			names = []string{strat}
		}
		opts := repro.StrategyOptions{
			Part:      repro.PartitionOptions{Grain: grain, MinClusterWidth: 4},
			Objective: obj,
			Comm:      cm,
			Beta2:     beta2,
		}
		for _, name := range names {
			for _, p := range procsSweep {
				sc, err := sys.MapStrategy(name, p, opts)
				if err != nil {
					return err
				}
				tc := sys.StrategyFetchStats(opts, sc)
				comp := sys.StrategyMakespan(opts, sc)
				cs := sys.StrategyMakespanComm(opts, sc, cm)
				cd := sys.StrategyMakespanCommDynamic(opts, sc, cm)
				frac := 0.0
				if cd.TotalWork > 0 {
					frac = float64(cd.Comm) / float64(cd.TotalWork)
				}
				if err := row(name, strconv.Itoa(p),
					fmt.Sprintf("%g", cm.Alpha), fmt.Sprintf("%g", cm.Beta),
					fmt.Sprint(tc.TotalVol()), fmt.Sprint(tc.TotalMsgs()),
					fmt.Sprint(comp.Makespan), fmt.Sprint(cs.Makespan),
					fmt.Sprint(cd.Makespan), fmt.Sprintf("%.4f", frac)); err != nil {
					return err
				}
				if bcap.active(name, p) {
					res, events := sys.TraceMakespanCommDynamic(opts, sc, cm)
					if err := bcap.observe(matrix, "comm", name, p, cm, tc.TotalVol(), res, events); err != nil {
						return err
					}
				}
			}
		}
	case "tile2d":
		if err := row("strategy", "procs", "r", "traffic2d", "fanout", "fanin",
			"imbalance", "span_compute", "span_comm", "span_comm_dynamic"); err != nil {
			return err
		}
		for _, choice := range tile2dChoices() {
			if strat != "" && choice != strat {
				continue
			}
			name, opts := choice, repro.StrategyOptions{Beta2: beta2}
			if base, ok := strings.CutPrefix(choice, "col2d:"); ok {
				name, opts.Base = "col2d", base
			}
			for _, p := range procsSweep {
				s2, err := sys.MapStrategy2D(name, p, opts)
				if err != nil {
					return err
				}
				tr := sys.Traffic2D(s2)
				comp := sys.Makespan2DDynamic(s2)
				cs := sys.Makespan2DComm(s2, cm)
				cd := sys.Makespan2DCommDynamic(s2, cm)
				if err := row(choice, strconv.Itoa(p), strconv.Itoa(s2.R()),
					fmt.Sprint(tr.Total), fmt.Sprint(tr.TotalFanOut()), fmt.Sprint(tr.TotalFanIn()),
					fmt.Sprintf("%.4f", s2.Imbalance()), fmt.Sprint(comp.Makespan),
					fmt.Sprint(cs.Makespan), fmt.Sprint(cd.Makespan)); err != nil {
					return err
				}
				if bcap.active(choice, p) {
					res, events := sys.TraceMakespan2DCommDynamic(s2, cm)
					if err := bcap.observe(matrix, "tile2d", choice, p, cm, tr.Total, res, events); err != nil {
						return err
					}
				}
			}
		}
	case "measure":
		// Real wall-clock runs of the parallel 2D engine (bit-identity
		// verified on every run) next to the comm-aware static prediction of
		// the same task graph. CSV only: repeated timings live outside the
		// deterministic -ledger/-trace machinery.
		if err := row("strategy", "procs", "serial_ns", "parallel_ns",
			"speedup", "predicted_speedup", "predicted_makespan", "traffic2d"); err != nil {
			return err
		}
		for _, choice := range tile2dChoices() {
			if strat != "" && choice != strat {
				continue
			}
			name, opts := choice, repro.StrategyOptions{}
			if base, ok := strings.CutPrefix(choice, "col2d:"); ok {
				name, opts.Base = "col2d", base
			}
			for _, p := range measureSweep {
				s2, err := sys.MapStrategy2D(name, p, opts)
				if err != nil {
					return err
				}
				mes, err := sys.MeasureFactorize2D(s2, repro.MeasureOptions{Repeats: reps})
				if err != nil {
					return err
				}
				pred := sys.Makespan2DComm(s2, cm)
				span := pred.Makespan
				if span < 1 {
					span = 1
				}
				tr := sys.Traffic2D(s2)
				if err := row(choice, strconv.Itoa(p),
					fmt.Sprint(mes.SerialNs), fmt.Sprint(mes.ParallelNs),
					fmt.Sprintf("%.4f", mes.Speedup),
					fmt.Sprintf("%.4f", float64(sys.TotalWork())/float64(span)),
					fmt.Sprint(pred.Makespan), fmt.Sprint(tr.Total)); err != nil {
					return err
				}
			}
		}
	case "calibrate":
		// Pass 1: measure every 2D strategy across the processor sweep and
		// pool the per-task durations into one least-squares fit of
		// {Alpha, Beta, Gamma} plus the nanosecond scale. Pass 2: score the
		// uncalibrated and calibrated speedup predictions per row.
		if err := row("strategy", "procs", "serial_ns", "parallel_ns", "measured_speedup",
			"uncal_speedup", "cal_speedup", "uncal_ape", "cal_ape",
			"alpha", "beta", "gamma", "ns_per_work", "r2"); err != nil {
			return err
		}
		type calPoint struct {
			choice string
			p      int
			s2     *repro.Schedule2D
			mes    *repro.Measurement
		}
		fitter := repro.NewFitter()
		var points []calPoint
		for _, choice := range tile2dChoices() {
			if strat != "" && choice != strat {
				continue
			}
			name, opts := choice, repro.StrategyOptions{}
			if base, ok := strings.CutPrefix(choice, "col2d:"); ok {
				name, opts.Base = "col2d", base
			}
			for _, p := range measureSweep {
				s2, err := sys.MapStrategy2D(name, p, opts)
				if err != nil {
					return err
				}
				mes, err := sys.MeasureFactorize2D(s2, repro.MeasureOptions{Repeats: reps})
				if err != nil {
					return err
				}
				tasks, tc := sys.Tasks2D(s2)
				if err := fitter.Add(mes.Events, tasks, tc); err != nil {
					return err
				}
				points = append(points, calPoint{choice, p, s2, mes})
			}
		}
		model, report, err := fitter.Fit(repro.FitOptions{})
		if err != nil {
			return err
		}
		for _, pt := range points {
			uncal := sys.Makespan2DComm(pt.s2, cm).Makespan
			cal := sys.Makespan2DComm(pt.s2, model.Comm).Makespan
			uncalSpeedup := float64(sys.TotalWork()) / float64(max(uncal, 1))
			calNs := math.Max(model.SpanNs(cal), 1)
			calSpeedup := float64(pt.mes.SerialNs) / calNs
			if err := row(pt.choice, strconv.Itoa(pt.p),
				fmt.Sprint(pt.mes.SerialNs), fmt.Sprint(pt.mes.ParallelNs),
				fmt.Sprintf("%.4f", pt.mes.Speedup),
				fmt.Sprintf("%.4f", uncalSpeedup), fmt.Sprintf("%.4f", calSpeedup),
				fmt.Sprintf("%.2f", ape(uncalSpeedup, pt.mes.Speedup)),
				fmt.Sprintf("%.2f", ape(calSpeedup, pt.mes.Speedup)),
				fmt.Sprintf("%.6g", model.Comm.Alpha), fmt.Sprintf("%.6g", model.Comm.Beta),
				fmt.Sprintf("%.6g", model.Comm.Gamma), fmt.Sprintf("%.6g", model.NsPerWork),
				fmt.Sprintf("%.4f", report.R2)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown series kind %q", kind)
	}
	return nil
}

// ape is the absolute percentage error of a predicted speedup against
// the measured one (percent).
func ape(pred, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return 100 * math.Abs(pred-measured) / measured
}

// tile2dChoices enumerates the tile2d sweep's strategy axis: every native
// 2D mapper (col2d excluded, it is parameterized) plus the col2d lift of
// every column-granular 1D strategy, spelled "col2d:<base>".
func tile2dChoices() []string {
	var out []string
	for _, name := range repro.Strategies2D() {
		if name != "col2d" {
			out = append(out, name)
		}
	}
	for _, base := range repro.LiftBases2D() {
		out = append(out, "col2d:"+base)
	}
	return out
}
