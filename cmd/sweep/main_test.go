package main

import (
	"strings"
	"testing"
)

// TestValidateRepeats pins the fail-fast -repeats gate: the measurement
// kinds reject zero and negative counts with the kind and value in the
// message, while purely simulated kinds ignore the flag entirely.
func TestValidateRepeats(t *testing.T) {
	for _, kind := range []string{"measure", "calibrate"} {
		for _, reps := range []int{0, -1, -7} {
			err := validateRepeats(kind, reps)
			if err == nil {
				t.Errorf("validateRepeats(%q, %d) accepted", kind, reps)
				continue
			}
			if !strings.Contains(err.Error(), kind) || !strings.Contains(err.Error(), "-repeats") {
				t.Errorf("validateRepeats(%q, %d) error %q does not name the kind and flag", kind, reps, err)
			}
		}
		if err := validateRepeats(kind, 1); err != nil {
			t.Errorf("validateRepeats(%q, 1) = %v, want nil", kind, err)
		}
	}
	for _, kind := range []string{"procs", "grain", "strategy", "tile2d"} {
		if err := validateRepeats(kind, 0); err != nil {
			t.Errorf("validateRepeats(%q, 0) = %v, want nil (kind never times a run)", kind, err)
		}
	}
}
