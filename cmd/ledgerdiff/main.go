// Command ledgerdiff compares two bench ledgers (BENCH_*.json) and
// reports per-configuration drift: every (matrix, kind, strategy, p) key
// present in both files is diffed on makespan, traffic and measured
// wall clock, keys present in only one file are flagged, and the exit
// status is nonzero when a deterministic metric (makespan or traffic) of
// a gated kind drifts past -tolerance. Measured nanoseconds are printed
// but never gated — wall clock is machine- and load-dependent, while
// simulated spans and traffic must reproduce exactly on equal code.
//
// The calibrate kind is ungated by default: its makespan is simulated
// under a model fitted to wall-clock timings, so it inherits their
// machine dependence.
//
// Usage:
//
//	ledgerdiff BENCH_baseline.json BENCH_current.json
//	ledgerdiff -tolerance 0.05 -kinds strategy,tile2d BENCH_a.json BENCH_b.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// defaultGatedKinds are the record kinds whose makespan and traffic are
// deterministic functions of the code and therefore regression-gated.
const defaultGatedKinds = "strategy,tile2d,measure,pipeline,comm"

func main() {
	log.SetFlags(0)
	log.SetPrefix("ledgerdiff: ")
	tolerance := flag.Float64("tolerance", 0,
		"maximum relative drift of a gated metric before the exit status turns nonzero (0 = exact match)")
	kinds := flag.String("kinds", defaultGatedKinds,
		"comma-separated record kinds whose makespan/traffic drift is gated")
	flag.Parse()
	if err := validateTolerance(*tolerance); err != nil {
		log.Fatal(err)
	}
	gated, err := parseKinds(*kinds)
	if err != nil {
		log.Fatal(err)
	}
	if flag.NArg() != 2 {
		log.Fatal("usage: ledgerdiff [-tolerance t] [-kinds a,b] BASELINE.json CURRENT.json")
	}
	baseline, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	current, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}
	exceed, err := run(baseline, current, *tolerance, gated, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if exceed > 0 {
		os.Exit(1)
	}
}

// validateTolerance rejects a drift bound the gate cannot honour.
func validateTolerance(t float64) error {
	// !(t >= 0) also rejects NaN, which a plain t < 0 lets through.
	if !(t >= 0) || math.IsInf(t, 0) {
		return fmt.Errorf("invalid -tolerance %g (must be finite and >= 0)", t)
	}
	return nil
}

// parseKinds splits the -kinds list into a set, rejecting empty entries
// so a stray comma cannot silently ungate a kind.
func parseKinds(s string) (map[string]bool, error) {
	gated := make(map[string]bool)
	if s == "" {
		return gated, nil
	}
	for _, k := range strings.Split(s, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			return nil, fmt.Errorf("invalid -kinds %q (empty entry)", s)
		}
		gated[k] = true
	}
	return gated, nil
}

// key identifies one benchmarked configuration across ledgers.
func key(r obs.BenchRecord) string {
	return fmt.Sprintf("%s/%s/%s/P=%d", r.Matrix, r.Kind, r.Strategy, r.P)
}

// relDrift is the relative change from old to new, guarded for zero
// baselines.
func relDrift(old, new int64) float64 {
	if old == new {
		return 0
	}
	return math.Abs(float64(new-old)) / math.Max(math.Abs(float64(old)), 1)
}

// run diffs two serialized ledgers and writes the report: one line per
// drifted or missing key (sorted), then a summary. It returns how many
// gated keys exceeded the tolerance — missing gated keys count, extra
// keys are informational only.
func run(baseline, current []byte, tolerance float64, gated map[string]bool, w io.Writer) (int, error) {
	var base, cur obs.Ledger
	if err := json.Unmarshal(baseline, &base); err != nil {
		return 0, fmt.Errorf("baseline ledger: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return 0, fmt.Errorf("current ledger: %w", err)
	}
	baseRecs := make(map[string]obs.BenchRecord)
	for _, r := range base.Records {
		baseRecs[key(r)] = r
	}
	curRecs := make(map[string]obs.BenchRecord)
	for _, r := range cur.Records {
		curRecs[key(r)] = r
	}
	keys := make([]string, 0, len(baseRecs))
	for k := range baseRecs {
		keys = append(keys, k)
	}
	for k := range curRecs {
		if _, ok := baseRecs[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	exceed, compared, drifted := 0, 0, 0
	for _, k := range keys {
		b, inBase := baseRecs[k]
		c, inCur := curRecs[k]
		switch {
		case !inCur:
			if gated[b.Kind] {
				exceed++
				fmt.Fprintf(w, "%s: missing from current ledger EXCEEDS\n", k)
			} else {
				fmt.Fprintf(w, "%s: missing from current ledger\n", k)
			}
		case !inBase:
			fmt.Fprintf(w, "%s: new in current ledger\n", k)
		default:
			compared++
			spanDrift := relDrift(b.Makespan, c.Makespan)
			trafDrift := relDrift(b.Traffic, c.Traffic)
			if spanDrift == 0 && trafDrift == 0 && b.MeasuredNs == c.MeasuredNs {
				continue
			}
			drifted++
			over := gated[b.Kind] && (spanDrift > tolerance || trafDrift > tolerance)
			if over {
				exceed++
			}
			mark := ""
			if over {
				mark = " EXCEEDS"
			}
			fmt.Fprintf(w, "%s: makespan %d -> %d (%.2f%%), traffic %d -> %d (%.2f%%), measured_ns %d -> %d (not gated)%s\n",
				k, b.Makespan, c.Makespan, 100*spanDrift,
				b.Traffic, c.Traffic, 100*trafDrift,
				b.MeasuredNs, c.MeasuredNs, mark)
		}
	}
	fmt.Fprintf(w, "ledgerdiff: %d keys compared, %d drifted, %d exceed tolerance %g\n",
		compared, drifted, exceed, tolerance)
	return exceed, nil
}
