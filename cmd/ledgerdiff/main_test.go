package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// ledgerBytes serializes records into a ledger file image.
func ledgerBytes(t *testing.T, recs ...obs.BenchRecord) []byte {
	t.Helper()
	l := obs.NewLedger()
	for _, r := range recs {
		l.Add(r)
	}
	var sb strings.Builder
	if err := l.Write(&sb); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}

func rec(kind string, p int, makespan, traffic, measured int64) obs.BenchRecord {
	return obs.BenchRecord{
		Matrix: "LAP30", Strategy: "rect2dcyclic", Kind: kind, P: p,
		Alpha: 2, Beta: 10, Makespan: makespan, Traffic: traffic,
		Efficiency: 0.5, MeasuredNs: measured,
	}
}

// TestDiffGolden pins the report: identical ledgers are silent apart
// from the summary, a drifted gated metric prints the full delta line
// with the EXCEEDS mark, and measured_ns drift alone is reported but
// never gated.
func TestDiffGolden(t *testing.T) {
	gated := map[string]bool{"tile2d": true}
	base := ledgerBytes(t, rec("tile2d", 4, 1000, 50, 700))

	var sb strings.Builder
	exceed, err := run(base, base, 0, gated, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if exceed != 0 {
		t.Errorf("identical ledgers: exceed = %d", exceed)
	}
	if got, want := sb.String(), "ledgerdiff: 1 keys compared, 0 drifted, 0 exceed tolerance 0\n"; got != want {
		t.Errorf("identical ledgers report:\n got %q\nwant %q", got, want)
	}

	sb.Reset()
	cur := ledgerBytes(t, rec("tile2d", 4, 1100, 50, 900))
	exceed, err = run(base, cur, 0, gated, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if exceed != 1 {
		t.Errorf("10%% makespan drift at tolerance 0: exceed = %d, want 1", exceed)
	}
	want := "LAP30/tile2d/rect2dcyclic/P=4: makespan 1000 -> 1100 (10.00%), traffic 50 -> 50 (0.00%), measured_ns 700 -> 900 (not gated) EXCEEDS\n" +
		"ledgerdiff: 1 keys compared, 1 drifted, 1 exceed tolerance 0\n"
	if sb.String() != want {
		t.Errorf("drift report:\n got %q\nwant %q", sb.String(), want)
	}

	// Wall clock alone drifts: reported, never an exceedance.
	sb.Reset()
	cur = ledgerBytes(t, rec("tile2d", 4, 1000, 50, 90000))
	exceed, err = run(base, cur, 0, gated, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if exceed != 0 {
		t.Errorf("measured_ns-only drift gated: exceed = %d\n%s", exceed, sb.String())
	}
	if !strings.Contains(sb.String(), "measured_ns 700 -> 90000") {
		t.Errorf("measured_ns drift unreported:\n%s", sb.String())
	}
}

// TestDiffTolerance pins the regression gate arithmetic: a 10% drift
// passes a 0.2 tolerance and fails a 0.05 one, ungated kinds never trip
// it, and a gated key missing from the current ledger counts.
func TestDiffTolerance(t *testing.T) {
	gated := map[string]bool{"tile2d": true}
	base := ledgerBytes(t, rec("tile2d", 4, 1000, 50, 700))
	cur := ledgerBytes(t, rec("tile2d", 4, 1100, 50, 700))

	var sb strings.Builder
	exceed, err := run(base, cur, 0.2, gated, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if exceed != 0 {
		t.Errorf("10%% drift at tolerance 0.2: exceed = %d\n%s", exceed, sb.String())
	}
	sb.Reset()
	exceed, err = run(base, cur, 0.05, gated, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if exceed != 1 {
		t.Errorf("10%% drift at tolerance 0.05: exceed = %d, want 1", exceed)
	}

	// The same drift on an ungated kind (calibrate's fitted spans are
	// machine-dependent) never exceeds.
	sb.Reset()
	exceed, err = run(ledgerBytes(t, rec("calibrate", 4, 1000, 50, 700)),
		ledgerBytes(t, rec("calibrate", 4, 2000, 50, 700)), 0, gated, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if exceed != 0 {
		t.Errorf("ungated kind tripped the gate: exceed = %d\n%s", exceed, sb.String())
	}

	// A gated key vanishing from the current ledger is a regression.
	sb.Reset()
	exceed, err = run(base, ledgerBytes(t), 0.2, gated, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if exceed != 1 || !strings.Contains(sb.String(), "missing from current ledger EXCEEDS") {
		t.Errorf("missing gated key: exceed = %d\n%s", exceed, sb.String())
	}
}

// TestValidateTolerance pins the fail-fast -tolerance gate.
func TestValidateTolerance(t *testing.T) {
	for _, bad := range []float64{-0.1, -1} {
		if err := validateTolerance(bad); err == nil || !strings.Contains(err.Error(), "-tolerance") {
			t.Errorf("validateTolerance(%g) = %v, want named rejection", bad, err)
		}
	}
	for _, ok := range []float64{0, 0.05, 1} {
		if err := validateTolerance(ok); err != nil {
			t.Errorf("validateTolerance(%g) = %v, want nil", ok, err)
		}
	}
}

// TestParseKinds pins the -kinds parser: lists split into a set, empty
// entries are rejected, and the empty string gates nothing.
func TestParseKinds(t *testing.T) {
	gated, err := parseKinds("strategy, tile2d")
	if err != nil {
		t.Fatal(err)
	}
	if !gated["strategy"] || !gated["tile2d"] || len(gated) != 2 {
		t.Errorf("parseKinds set = %v", gated)
	}
	if _, err := parseKinds("strategy,,tile2d"); err == nil {
		t.Error("empty entry accepted")
	}
	gated, err = parseKinds("")
	if err != nil || len(gated) != 0 {
		t.Errorf("parseKinds(\"\") = %v, %v", gated, err)
	}
}
