// Command sparsefactor runs the full partitioning/scheduling pipeline on
// one test matrix and reports the paper's metrics: data traffic, load
// imbalance, and (beyond the paper) dependency-delay efficiency and
// communication partners.
//
// Usage:
//
//	sparsefactor -matrix LAP30 -procs 16 -grain 25 -width 4 -scheme block
//	sparsefactor -matrix CANN1072 -procs 32 -scheme wrap
//	sparsefactor -hb matrix.rsa -procs 16 -scheme both
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparsefactor: ")
	var (
		matrix = flag.String("matrix", "LAP30", "test matrix name (BUS1138, CANN1072, DWT512, LAP30, LSHP1009)")
		hbFile = flag.String("hb", "", "read the matrix from a Harwell-Boeing file instead")
		procs  = flag.Int("procs", 16, "number of processors")
		grain  = flag.Int("grain", 4, "grain size g (min elements per unit block)")
		width  = flag.Int("width", 4, "minimum cluster width")
		scheme = flag.String("scheme", "both", "mapping scheme: block, wrap, or both")
		alloc  = flag.String("alloc", "paper", "block allocator: paper (Section 3.4) or greedy (work-aware)")
		relax  = flag.Float64("relax", 0, "cluster relaxation: allowed zero fraction (0 disables)")
		solve  = flag.Bool("solve", false, "also run a numeric solve and report the residual")
	)
	flag.Parse()

	var m *repro.Matrix
	name := *matrix
	if *hbFile != "" {
		f, err := os.Open(*hbFile)
		if err != nil {
			log.Fatal(err)
		}
		var hdr repro.HBHeader
		m, hdr, err = repro.ReadHB(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		name = hdr.Key
	} else {
		var err error
		m, _, err = repro.BuildMatrix(*matrix)
		if err != nil {
			log.Fatal(err)
		}
	}

	sys, err := repro.Analyze(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: n=%d nnz(A)=%d nnz(L)=%d total work=%d\n",
		name, m.N, m.NNZ(), sys.F.NNZ(), sys.TotalWork())

	if *scheme == "block" || *scheme == "both" {
		part := sys.Partition(repro.PartitionOptions{
			Grain: *grain, MinClusterWidth: *width, RelaxZeros: *relax,
		})
		var sc *repro.Schedule
		if *alloc == "greedy" {
			sc = sys.BlockScheduleGreedy(part, *procs)
		} else {
			sc = sys.BlockSchedule(part, *procs)
		}
		tr := sys.TrafficPart(part, sc)
		mk := sys.BlockMakespan(part, sc)
		fmt.Printf("\nblock mapping (g=%d, width=%d, P=%d, alloc=%s): %d unit blocks\n",
			*grain, *width, *procs, *alloc, len(part.Units))
		if part.Relax.Merges > 0 {
			fmt.Printf("  relaxation: %v\n", part.Relax)
		}
		fmt.Printf("  traffic: total=%d mean/proc=%.0f max/proc=%d partners/proc=%.1f\n",
			tr.Total, tr.Mean(), tr.MaxPerProc(), tr.MeanPartners())
		fmt.Printf("  balance: A=%.3f efficiency bound=%.3f\n", sc.Imbalance(), sc.Efficiency())
		fmt.Printf("  delays:  makespan=%d efficiency=%.3f idle=%.1f%%\n",
			mk.Makespan, mk.Efficiency, 100*float64(mk.Idle)/float64(int64(*procs)*mk.Makespan))
	}
	if *scheme == "wrap" || *scheme == "both" {
		sc := sys.WrapSchedule(*procs)
		tr := sys.Traffic(sc)
		mk := sys.WrapMakespan(*procs)
		fmt.Printf("\nwrap mapping (P=%d):\n", *procs)
		fmt.Printf("  traffic: total=%d mean/proc=%.0f max/proc=%d partners/proc=%.1f\n",
			tr.Total, tr.Mean(), tr.MaxPerProc(), tr.MeanPartners())
		fmt.Printf("  balance: A=%.3f efficiency bound=%.3f\n", sc.Imbalance(), sc.Efficiency())
		fmt.Printf("  delays:  makespan=%d efficiency=%.3f idle=%.1f%%\n",
			mk.Makespan, mk.Efficiency, 100*float64(mk.Idle)/float64(int64(*procs)*mk.Makespan))
	}
	if *solve {
		b := make([]float64, m.N)
		for i := range b {
			b[i] = 1
		}
		// The staged pipeline: analysis, plan and factor are built once
		// into the content-addressed cache; the repeat request hits all
		// three stages and runs only the triangular sweeps.
		cache := repro.NewCache(0)
		opts := repro.StrategyOptions{}
		start := time.Now()
		x, err := cache.Solve(m, "wrap", *procs, opts, repro.KernelCholesky, b)
		if err != nil {
			log.Fatal(err)
		}
		cold := time.Since(start)
		start = time.Now()
		if _, err := cache.Solve(m, "wrap", *procs, opts, repro.KernelCholesky, b); err != nil {
			log.Fatal(err)
		}
		warm := time.Since(start)
		st := cache.Stats()
		fmt.Printf("\nsolve: residual=%.3g\n", sys.ResidualNorm(x, b))
		fmt.Printf("  staged cache: cold=%v warm=%v (%.1fx) hits=%d misses=%d\n",
			cold, warm, float64(cold)/float64(max64(warm.Nanoseconds(), 1)), st.Hits, st.Misses)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
