// Command matgen generates the reproduction's test matrices (the
// synthetic equivalents of the paper's Harwell-Boeing problems) and writes
// them as Harwell-Boeing files.
//
// Usage:
//
//	matgen -out ./data            # write all five suite matrices
//	matgen -out ./data -matrix LAP30
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("matgen: ")
	var (
		out    = flag.String("out", ".", "output directory")
		matrix = flag.String("matrix", "", "single matrix to generate (default: all)")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, tm := range repro.TestMatrices() {
		if *matrix != "" && !strings.EqualFold(tm.Name, *matrix) {
			continue
		}
		m := tm.Build()
		path := filepath.Join(*out, strings.ToLower(tm.Name)+".rsa")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.WriteHB(f, m, tm.Description, tm.Name); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: n=%d nnz=%d -> %s\n", tm.Name, m.N, m.NNZ(), path)
	}
}
