// Command spy renders ASCII spy plots of a test matrix and of its filled
// factor with cluster boundaries — the textual reproduction of the paper's
// Figure 2.
//
// Usage:
//
//	spy -matrix fegrid5           # the paper's 41x41 Figure 2 example
//	spy -matrix LAP30 -max 60     # downsampled plot of a suite matrix
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spy: ")
	var (
		matrix = flag.String("matrix", "fegrid5", "matrix name (fegrid5 or a suite name)")
		maxDim = flag.Int("max", 0, "downsample plots to at most this many rows (0 = full)")
		width  = flag.Int("width", 4, "minimum cluster width for the cluster overlay")
		grain  = flag.Int("grain", 4, "grain size for the partition summary")
	)
	flag.Parse()

	var m *repro.Matrix
	if strings.EqualFold(*matrix, "fegrid5") {
		m = repro.FEGrid5(5)
	} else {
		var err error
		m, _, err = repro.BuildMatrix(*matrix)
		if err != nil {
			log.Fatal(err)
		}
	}
	sys, err := repro.Analyze(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: n=%d, nnz(A)=%d, nnz(L)=%d after MMD ordering\n\n",
		*matrix, m.N, m.NNZ(), sys.F.NNZ())

	part := sys.Partition(repro.PartitionOptions{Grain: *grain, MinClusterWidth: *width})
	filled := sys.F.Pattern()
	if *maxDim > 0 && m.N > *maxDim {
		fmt.Println("filled matrix (downsampled):")
		fmt.Println(filled.Spy(*maxDim))
	} else {
		var bounds []int
		for _, cl := range part.Clusters {
			bounds = append(bounds, cl.ColHi+1)
		}
		fmt.Println("filled matrix with cluster boundaries ('|'):")
		fmt.Println(filled.SpyWithBoundaries(bounds))
	}

	multi, single := 0, 0
	for _, cl := range part.Clusters {
		if cl.Single {
			single++
		} else {
			multi++
		}
	}
	fmt.Printf("clusters: %d multi-column, %d single-column; %d unit blocks (g=%d, width=%d)\n",
		multi, single, len(part.Units), *grain, *width)
	for _, cl := range part.Clusters {
		if cl.Single {
			continue
		}
		fmt.Printf("  cluster cols %d..%d: triangle in %d bands, %d rectangles below\n",
			cl.ColLo, cl.ColHi, len(cl.TriUnits), len(cl.Rects))
	}
}
