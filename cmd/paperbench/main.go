// Command paperbench regenerates every table of Venugopal & Naik (SC'91)
// from the reproduction pipeline and prints measured values next to the
// published ones. It is also the bench-ledger and trace emitter: -ledger
// records every registered strategy (1D and native 2D) as machine-readable
// BENCH_*.json, and -trace exports one simulated execution as a Chrome
// trace (Perfetto-loadable) or an ASCII Gantt chart.
//
// With -measure it additionally runs the real parallel 2D engine
// (bit-identity verified against the serial factor) and prints measured
// wall-clock speedups next to the comm-aware predictions; the rows join
// the ledger as kind "measure". With -calibrate it fits {Alpha, Beta,
// Gamma} and the nanosecond scale to the measured per-task durations and
// prints the Ext-Cal table (measured vs uncalibrated vs calibrated
// prediction with MAPE columns); the rows join the ledger as kind
// "calibrate".
//
// Usage:
//
//	paperbench [-table 1|2|3|4|5|...|all|none]
//	paperbench -table none -ledger BENCH_pr.json -matrix LAP30
//	paperbench -table none -measure -repeats 2 -matrix LAP30 -ledger BENCH_measure.json
//	paperbench -table none -calibrate -repeats 2 -matrix LAP30 -ledger BENCH_calib.json
//	paperbench -table none -trace trace.json -tracestrategy rect2dcyclic -traceprocs 64
//	paperbench -checkledger BENCH_pr.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"slices"
	"strings"

	"repro"
	"repro/internal/exec"
	"repro/internal/tables"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	table := flag.String("table", "all",
		"which table to regenerate: 1..5, makespan, partners, grain, relax, alloc, order, solve, dynamic, crossover, messages, commspan, unified, strategy, tile2d, all, or none (tables off; useful with -ledger/-trace)")
	alpha := flag.Float64("alpha", 2, "comm model: work units per fetched element (unified table, ledger, trace)")
	beta := flag.Float64("beta", 10, "comm model: work units per received message (unified table, ledger, trace)")
	ledgerPath := flag.String("ledger", "", "write the machine-readable bench ledger (BENCH_*.json) to this path")
	checkLedger := flag.String("checkledger", "", "validate an existing bench ledger file and exit (the CI gate)")
	matrix := flag.String("matrix", "", "restrict -ledger to one suite matrix and select the -trace matrix (default: all for the ledger, LAP30 for the trace)")
	tracePath := flag.String("trace", "", "write one traced comm-aware dynamic simulation to this path")
	traceFormat := flag.String("traceformat", "chrome", "trace export format: "+strings.Join(repro.TraceFormats(), " or "))
	traceStrategy := flag.String("tracestrategy", "wrap", "strategy of the traced run: a 1D strategy, a native 2D mapper, or col2d:<base>")
	traceProcs := flag.Int("traceprocs", 16, "processor count of the traced run")
	measure := flag.Bool("measure", false, "run the real parallel engine on every 2D strategy (-matrix or LAP30) and print measured vs predicted speedups; with -ledger the rows join the ledger as kind \"measure\"")
	calibrate := flag.Bool("calibrate", false, "measure every 2D strategy (-matrix or LAP30), fit the cost model to the per-task durations, and print the Ext-Cal calibration table; with -ledger the rows join the ledger as kind \"calibrate\"")
	repeats := flag.Int("repeats", 3, "repeat-and-min count for -measure and -calibrate timings")
	flag.Parse()
	// !(x >= 0) also rejects NaN, which a plain x < 0 lets through.
	if !(*alpha >= 0) || !(*beta >= 0) || math.IsInf(*alpha, 0) || math.IsInf(*beta, 0) {
		log.Fatalf("invalid comm model: alpha=%g beta=%g (both must be finite and >= 0)", *alpha, *beta)
	}
	cm := exec.CommModel{Alpha: *alpha, Beta: *beta}
	if err := validateRepeats(*repeats); err != nil {
		log.Fatal(err)
	}

	if *checkLedger != "" {
		data, err := os.ReadFile(*checkLedger)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.ValidateLedger(data); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid %s ledger\n", *checkLedger, repro.BenchLedgerSchema)
		return
	}

	// Fail fast on every output knob before any table work: unknown trace
	// formats and strategies are refused up front, and output files are
	// created now so a bad path can't die after minutes of simulation.
	var ledgerFile, traceFile *os.File
	if *ledgerPath != "" {
		f, err := os.Create(*ledgerPath)
		if err != nil {
			log.Fatalf("-ledger: %v", err)
		}
		ledgerFile = f
	}
	if *tracePath != "" {
		if !slices.Contains(repro.TraceFormats(), *traceFormat) {
			log.Fatalf("unknown trace format %q (supported: %s)", *traceFormat, strings.Join(repro.TraceFormats(), ", "))
		}
		if !validTraceStrategy(*traceStrategy) {
			log.Fatalf("unknown trace strategy %q (want a 1D strategy [%s], a 2D mapper [%s], or col2d:<base>)",
				*traceStrategy, strings.Join(repro.Strategies(), ", "), strings.Join(repro.Strategies2D(), ", "))
		}
		if *traceProcs < 1 {
			log.Fatalf("invalid -traceprocs %d", *traceProcs)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("-trace: %v", err)
		}
		traceFile = f
	}

	ps, err := tables.LoadSuite()
	if err != nil {
		log.Fatal(err)
	}
	var lap *tables.Problem
	for _, p := range ps {
		if p.Meta.Name == "LAP30" {
			lap = p
		}
	}
	if *matrix != "" {
		if !slices.ContainsFunc(ps, func(p *tables.Problem) bool { return p.Meta.Name == *matrix }) {
			log.Fatalf("unknown matrix %q", *matrix)
		}
	}

	show := func(name string) bool { return *table == "all" || *table == name }
	printed := *table == "none"
	if show("1") {
		fmt.Println(tables.FormatTable1(tables.Table1(ps)))
		printed = true
	}
	if show("2") {
		fmt.Println(tables.FormatTable2(tables.Table2(ps)))
		printed = true
	}
	if show("3") {
		fmt.Println(tables.FormatTable3(tables.Table3(ps)))
		printed = true
	}
	if show("4") {
		fmt.Println(tables.FormatTable4(tables.Table4(lap)))
		printed = true
	}
	if show("5") {
		fmt.Println(tables.FormatTable5(tables.Table5(ps)))
		printed = true
	}
	if show("makespan") {
		fmt.Println(tables.FormatMakespan(tables.Makespan(ps)))
		printed = true
	}
	if show("partners") {
		fmt.Println(tables.FormatPartners(tables.Partners(ps)))
		printed = true
	}
	if show("grain") {
		rows := tables.GrainSweep(lap, 16, []int{2, 4, 8, 16, 25, 50, 100, 200})
		fmt.Println(tables.FormatGrainSweep("LAP30", 16, rows))
		printed = true
	}
	if show("relax") {
		rows, err := tables.RelaxSweep(lap.Meta, 16, 25, []float64{0, 0.05, 0.1, 0.25, 0.5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatRelaxSweep("LAP30", 16, 25, rows))
		printed = true
	}
	if show("alloc") {
		fmt.Println(tables.FormatAllocCompare(tables.AllocCompare(ps)))
		printed = true
	}
	if show("order") {
		rows, err := tables.OrderCompare(lap.Meta, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatOrderCompare("LAP30", 16, rows))
		printed = true
	}
	if show("solve") {
		fmt.Println(tables.FormatSolveBalance(tables.SolveBalance(ps)))
		printed = true
	}
	if show("dynamic") {
		fmt.Println(tables.FormatDynamicCompare(tables.DynamicCompare(ps)))
		printed = true
	}
	if show("messages") {
		fmt.Println(tables.FormatMessages(tables.Messages(ps)))
		printed = true
	}
	if show("commspan") {
		rows := tables.CommMakespan(lap, 16, []float64{0, 1, 2, 5, 10, 20})
		fmt.Println(tables.FormatCommMakespan("LAP30", 16, rows))
		printed = true
	}
	if show("unified") {
		rows, err := tables.UnifiedComm(lap, tables.WrapProcs, nil, cm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatUnifiedComm("LAP30", cm, rows))
		printed = true
	}
	if show("strategy") {
		rows, err := tables.StrategyCompare(ps, tables.DefaultProcs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatStrategyCompare(rows))
		printed = true
	}
	if show("tile2d") {
		rows, err := tables.Tile2D(lap, tables.Tile2DProcs, cm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatTile2D("LAP30", cm, rows))
		printed = true
	}
	if show("crossover") {
		costs := []float64{0, 0.5, 1, 2, 5, 10, 20, 50}
		rows := tables.Crossover(lap, 16, costs)
		fmt.Println(tables.FormatCrossover("LAP30", 16, rows, tables.CrossoverPoint(lap, 16)))
		for _, p := range ps {
			fmt.Printf("%-10s P=16 crossover c = %.2f\n", p.Meta.Name, tables.CrossoverPoint(p, 16))
		}
		fmt.Println()
		printed = true
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		flag.Usage()
		os.Exit(2)
	}

	mp := lap
	if *matrix != "" {
		for _, p := range ps {
			if p.Meta.Name == *matrix {
				mp = p
			}
		}
	}
	var measured []tables.MeasureRow
	if *measure {
		rows, err := tables.Measured(mp, tables.MeasureProcs, cm, *repeats)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatMeasured(mp.Meta.Name, cm, rows))
		measured = rows
	}
	var calStudy *tables.CalibrationStudy
	if *calibrate {
		st, err := tables.Calibration(mp, tables.MeasureProcs, cm, *repeats)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatCalibration(mp.Meta.Name, cm, st))
		calStudy = st
	}

	if ledgerFile != nil {
		bench := ps
		if *matrix != "" {
			bench = nil
			for _, p := range ps {
				if p.Meta.Name == *matrix {
					bench = append(bench, p)
				}
			}
		}
		ledger, err := tables.BenchLedger(bench, tables.DefaultProcs, cm)
		if err != nil {
			log.Fatal(err)
		}
		for _, rec := range tables.MeasureRecords(measured, cm) {
			ledger.Add(rec)
		}
		for _, rec := range tables.CalibrationRecords(calStudy) {
			ledger.Add(rec)
		}
		// One staged-pipeline row per benched matrix: a cold request
		// against an empty artifact store vs repeated warm requests, with
		// the cache hit/miss counters (gated by -checkledger).
		for _, p := range bench {
			rec, err := tables.PipelineRecord(p, "wrap", 4, 5)
			if err != nil {
				log.Fatal(err)
			}
			ledger.Add(rec)
		}
		if err := ledger.Write(ledgerFile); err != nil {
			log.Fatal(err)
		}
		if err := ledgerFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", *ledgerPath, len(ledger.Records))
	}
	if traceFile != nil {
		name := *matrix
		if name == "" {
			name = "LAP30"
		}
		if err := writeTraceRun(traceFile, name, *traceStrategy, *traceProcs, *traceFormat, cm); err != nil {
			log.Fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *tracePath)
	}
}

// validateRepeats rejects a repeat-and-min count the measurement harness
// cannot honour. Checked unconditionally at startup so a bad -repeats
// fails before any table work, even when -measure/-calibrate are off.
func validateRepeats(r int) error {
	if r < 1 {
		return fmt.Errorf("invalid -repeats %d (want >= 1)", r)
	}
	return nil
}

// validTraceStrategy accepts any registered 1D strategy, any native 2D
// mapper, or a "col2d:<base>" lift of a column-granular strategy.
func validTraceStrategy(name string) bool {
	if base, ok := strings.CutPrefix(name, "col2d:"); ok {
		return slices.Contains(repro.LiftBases2D(), base)
	}
	return slices.Contains(repro.Strategies(), name) || slices.Contains(repro.Strategies2D(), name)
}

// writeTraceRun maps the named strategy on the named suite matrix, runs
// the comm-aware dynamic makespan simulation with tracing, and exports
// the events in the requested format.
func writeTraceRun(w *os.File, matrix, name string, procs int, format string, cm exec.CommModel) error {
	m, _, err := repro.BuildMatrix(matrix)
	if err != nil {
		return err
	}
	sys, err := repro.Analyze(m)
	if err != nil {
		return err
	}
	opts := repro.StrategyOptions{Part: repro.PartitionOptions{Grain: 25, MinClusterWidth: 4}}
	var res repro.MakespanResult
	var events []repro.TraceEvent
	switch {
	case strings.HasPrefix(name, "col2d:"):
		opts2 := repro.StrategyOptions{Base: strings.TrimPrefix(name, "col2d:")}
		s2, err := sys.MapStrategy2D("col2d", procs, opts2)
		if err != nil {
			return err
		}
		res, events = sys.TraceMakespan2DCommDynamic(s2, cm)
	case slices.Contains(repro.Strategies2D(), name):
		s2, err := sys.MapStrategy2D(name, procs, repro.StrategyOptions{})
		if err != nil {
			return err
		}
		res, events = sys.TraceMakespan2DCommDynamic(s2, cm)
	default:
		sc, err := sys.MapStrategy(name, procs, opts)
		if err != nil {
			return err
		}
		res, events = sys.TraceMakespanCommDynamic(opts, sc, cm)
	}
	return repro.WriteTrace(w, format, events, res)
}
