// Command paperbench regenerates every table of Venugopal & Naik (SC'91)
// from the reproduction pipeline and prints measured values next to the
// published ones.
//
// Usage:
//
//	paperbench [-table 1|2|3|4|5|makespan|partners|grain|all]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/exec"
	"repro/internal/tables"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	table := flag.String("table", "all",
		"which table to regenerate: 1..5, makespan, partners, grain, relax, alloc, order, solve, dynamic, crossover, messages, commspan, unified, strategy, tile2d, or all")
	alpha := flag.Float64("alpha", 2, "comm model: work units per fetched element (unified table)")
	beta := flag.Float64("beta", 10, "comm model: work units per received message (unified table)")
	flag.Parse()
	// !(x >= 0) also rejects NaN, which a plain x < 0 lets through.
	if !(*alpha >= 0) || !(*beta >= 0) || math.IsInf(*alpha, 0) || math.IsInf(*beta, 0) {
		log.Fatalf("invalid comm model: alpha=%g beta=%g (both must be finite and >= 0)", *alpha, *beta)
	}

	ps, err := tables.LoadSuite()
	if err != nil {
		log.Fatal(err)
	}
	var lap *tables.Problem
	for _, p := range ps {
		if p.Meta.Name == "LAP30" {
			lap = p
		}
	}

	show := func(name string) bool { return *table == "all" || *table == name }
	printed := false
	if show("1") {
		fmt.Println(tables.FormatTable1(tables.Table1(ps)))
		printed = true
	}
	if show("2") {
		fmt.Println(tables.FormatTable2(tables.Table2(ps)))
		printed = true
	}
	if show("3") {
		fmt.Println(tables.FormatTable3(tables.Table3(ps)))
		printed = true
	}
	if show("4") {
		fmt.Println(tables.FormatTable4(tables.Table4(lap)))
		printed = true
	}
	if show("5") {
		fmt.Println(tables.FormatTable5(tables.Table5(ps)))
		printed = true
	}
	if show("makespan") {
		fmt.Println(tables.FormatMakespan(tables.Makespan(ps)))
		printed = true
	}
	if show("partners") {
		fmt.Println(tables.FormatPartners(tables.Partners(ps)))
		printed = true
	}
	if show("grain") {
		rows := tables.GrainSweep(lap, 16, []int{2, 4, 8, 16, 25, 50, 100, 200})
		fmt.Println(tables.FormatGrainSweep("LAP30", 16, rows))
		printed = true
	}
	if show("relax") {
		rows, err := tables.RelaxSweep(lap.Meta, 16, 25, []float64{0, 0.05, 0.1, 0.25, 0.5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatRelaxSweep("LAP30", 16, 25, rows))
		printed = true
	}
	if show("alloc") {
		fmt.Println(tables.FormatAllocCompare(tables.AllocCompare(ps)))
		printed = true
	}
	if show("order") {
		rows, err := tables.OrderCompare(lap.Meta, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatOrderCompare("LAP30", 16, rows))
		printed = true
	}
	if show("solve") {
		fmt.Println(tables.FormatSolveBalance(tables.SolveBalance(ps)))
		printed = true
	}
	if show("dynamic") {
		fmt.Println(tables.FormatDynamicCompare(tables.DynamicCompare(ps)))
		printed = true
	}
	if show("messages") {
		fmt.Println(tables.FormatMessages(tables.Messages(ps)))
		printed = true
	}
	if show("commspan") {
		rows := tables.CommMakespan(lap, 16, []float64{0, 1, 2, 5, 10, 20})
		fmt.Println(tables.FormatCommMakespan("LAP30", 16, rows))
		printed = true
	}
	if show("unified") {
		cm := exec.CommModel{Alpha: *alpha, Beta: *beta}
		rows, err := tables.UnifiedComm(lap, tables.WrapProcs, nil, cm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatUnifiedComm("LAP30", cm, rows))
		printed = true
	}
	if show("strategy") {
		rows, err := tables.StrategyCompare(ps, tables.DefaultProcs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatStrategyCompare(rows))
		printed = true
	}
	if show("tile2d") {
		cm := exec.CommModel{Alpha: *alpha, Beta: *beta}
		rows, err := tables.Tile2D(lap, tables.Tile2DProcs, cm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tables.FormatTile2D("LAP30", cm, rows))
		printed = true
	}
	if show("crossover") {
		costs := []float64{0, 0.5, 1, 2, 5, 10, 20, 50}
		rows := tables.Crossover(lap, 16, costs)
		fmt.Println(tables.FormatCrossover("LAP30", 16, rows, tables.CrossoverPoint(lap, 16)))
		for _, p := range ps {
			fmt.Printf("%-10s P=16 crossover c = %.2f\n", p.Meta.Name, tables.CrossoverPoint(p, 16))
		}
		fmt.Println()
		printed = true
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		flag.Usage()
		os.Exit(2)
	}
}
