package main

import (
	"strings"
	"testing"
)

// TestValidateRepeats pins the fail-fast -repeats gate: zero and negative
// counts are rejected with the offending value in the message, valid
// counts pass. The check runs unconditionally at startup, so a bad
// -repeats dies before any table work even without -measure/-calibrate.
func TestValidateRepeats(t *testing.T) {
	for _, r := range []int{0, -1, -100} {
		err := validateRepeats(r)
		if err == nil {
			t.Errorf("validateRepeats(%d) accepted", r)
			continue
		}
		if !strings.Contains(err.Error(), "-repeats") {
			t.Errorf("validateRepeats(%d) error %q does not name the flag", r, err)
		}
	}
	for _, r := range []int{1, 2, 100} {
		if err := validateRepeats(r); err != nil {
			t.Errorf("validateRepeats(%d) = %v, want nil", r, err)
		}
	}
}
