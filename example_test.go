package repro_test

import (
	"fmt"

	"repro"
)

// The canonical pipeline: analyze, partition, schedule, simulate.
func ExampleAnalyze() {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		panic(err)
	}
	fmt.Println("equations:", sys.A.N)
	fmt.Println("factor nonzeros:", sys.F.NNZ())
	fmt.Println("total work:", sys.TotalWork())
	// Output:
	// equations: 900
	// factor nonzeros: 16829
	// total work: 433583
}

// Comparing the paper's two mapping schemes on the same matrix.
func ExampleSystem_Traffic() {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		panic(err)
	}
	part := sys.Partition(repro.PartitionOptions{Grain: 25, MinClusterWidth: 4})
	block := sys.Traffic(sys.BlockSchedule(part, 16)).Total
	wrap := sys.Traffic(sys.WrapSchedule(16)).Total
	fmt.Println("block beats wrap:", block < wrap)
	// Output:
	// block beats wrap: true
}

// Solving a linear system end to end (ordering and permutation handled
// internally; x is returned in the original variable order).
func ExampleSystem_Solve() {
	sys, err := repro.Analyze(repro.Grid5(8, 8))
	if err != nil {
		panic(err)
	}
	b := make([]float64, 64)
	b[0] = 1
	x, err := sys.Solve(b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("residual below 1e-10: %v\n", sys.ResidualNorm(x, b) < 1e-10)
	// Output:
	// residual below 1e-10: true
}

// Inspecting the partitioner's clusters and unit blocks.
func ExampleSystem_Partition() {
	sys, err := repro.Analyze(repro.FEGrid5(5)) // the paper's Figure 2 matrix
	if err != nil {
		panic(err)
	}
	part := sys.Partition(repro.PartitionOptions{Grain: 4, MinClusterWidth: 2})
	multi := 0
	for _, cl := range part.Clusters {
		if !cl.Single {
			multi++
		}
	}
	fmt.Println("41 unknowns:", sys.A.N == 41)
	fmt.Println("has multi-column clusters:", multi > 0)
	// Output:
	// 41 unknowns: true
	// has multi-column clusters: true
}

// The load imbalance factor A of the paper's Section 4.
func ExampleSchedule() {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		panic(err)
	}
	wrap := sys.WrapSchedule(1)
	fmt.Println("A on one processor:", wrap.Imbalance())
	fmt.Println("efficiency:", wrap.Efficiency())
	// Output:
	// A on one processor: 0
	// efficiency: 1
}
