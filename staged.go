package repro

// The staged solver pipeline: the paper's four-step direct method split
// into immutable artifacts with explicit handoffs,
//
//	AnalyzePattern(a)            pattern only: ordering + symbolic products
//	  -> an.Plan / an.Plan2D     mapping: schedule + task graph + fetch stats
//	  -> pl.Factorize[Parallel]  values: Cholesky or LDLᵀ factor
//	  -> fa.Solve / SolveBatch / SolveParallel
//
// so analysis happens once per sparsity pattern, mapping once per
// (pattern, strategy, P), factorization once per (pattern, values,
// kernel), and every solve call touches only the triangular sweeps. A
// Cache content-addresses the three stages in an LRU-bounded
// artifact.Store, serving repeat requests against recurring patterns —
// the factorization-as-a-service scenario — from memory:
//
//	cache := repro.NewCache(256)
//	an, _ := cache.Analysis(a)                                // pattern hash
//	pl, _ := cache.Plan(an, "wrap", 16, repro.StrategyOptions{})
//	fa, _ := cache.Factor(pl, a, repro.KernelCholesky)        // (pattern, values, kernel)
//	x, _ := fa.Solve(b)

import (
	"repro/internal/artifact"
	"repro/internal/pipeline"
)

// Analysis is the pattern-stage artifact: fill-reducing ordering,
// symbolic factor, operation structure and work model, derived from a
// matrix pattern alone. Immutable and safe for concurrent use.
type Analysis = pipeline.Analysis

// Plan is the mapping-stage artifact: one strategy's 1D or 2D schedule
// over an Analysis, plus its makespan task graph and fetch attribution.
type Plan = pipeline.Plan

// Factor is the numeric-stage artifact: Cholesky or LDLᵀ factor values
// carrying the Plan they were built from. Its Solve, SolveBatch and
// SolveParallel methods never re-factorize.
type Factor = pipeline.Factor

// Kernel selects the numeric factorization kernel of a Factor.
type Kernel = pipeline.Kernel

// The two factorization kernels. (The bare name Cholesky is the numeric
// factor type, kept for compatibility.)
const (
	KernelCholesky = pipeline.Cholesky
	KernelLDL      = pipeline.LDL
)

// Cache content-addresses the staged artifacts in an LRU-bounded
// in-memory store: Analyses and Plans by pattern hash plus stage
// parameters, Factors by (pattern, values, kernel). Safe for arbitrary
// concurrent use; concurrent requests for one artifact share one build.
type Cache = pipeline.Cache

// ArtifactKey is the content address of one staged artifact.
type ArtifactKey = artifact.Key

// CacheStats are hit/miss/eviction counters of a Cache (per artifact
// kind, or store-wide).
type CacheStats = artifact.Counts

// ArtifactStore is the raw content-addressed store under a Cache — the
// surface a serving layer (cmd/factorserved) wraps.
type ArtifactStore = artifact.Store

// NewCache builds an artifact cache bounded to capacity artifacts across
// all stages (capacity <= 0 means unbounded).
func NewCache(capacity int) *Cache { return pipeline.NewCache(capacity) }

// AnalyzePattern builds the pattern-stage artifact of a's sparsity
// pattern under the MMD ordering. Values of a, if any, are ignored.
func AnalyzePattern(a *Matrix) (*Analysis, error) { return pipeline.NewAnalysis(a) }

// AnalyzePatternOrdered is AnalyzePattern with a caller-supplied
// elimination order (order[k] = original index of the k-th variable).
func AnalyzePatternOrdered(a *Matrix, perm []int) (*Analysis, error) {
	return pipeline.NewAnalysisOrdered(a, perm)
}

// PatternKey returns the deterministic content address AnalyzePattern
// assigns to a's sparsity pattern: equal patterns share it, any
// structural difference (including a permutation) changes it.
func PatternKey(a *Matrix) ArtifactKey { return pipeline.AnalysisKey(a) }
