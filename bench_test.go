// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkTableN drives the same computation as
// cmd/paperbench -table N and reports the headline quantities via
// b.ReportMetric, so `go test -bench=. -benchmem` both times the pipeline
// and re-derives the paper's numbers. The Figure benchmarks exercise the
// artifacts behind the paper's figures (the Figure 2 example matrix, the
// Figure 3 partitioning, the Figure 4 dependency engine).
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tables"
)

var (
	suiteOnce sync.Once
	suite     []*tables.Problem
	suiteErr  error
)

func problems(b *testing.B) []*tables.Problem {
	b.Helper()
	suiteOnce.Do(func() { suite, suiteErr = tables.LoadSuite() })
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func lap30(b *testing.B) *tables.Problem {
	for _, p := range problems(b) {
		if p.Meta.Name == "LAP30" {
			return p
		}
	}
	b.Fatal("LAP30 missing")
	return nil
}

// BenchmarkTable1 regenerates the test-matrix statistics (Table 1).
func BenchmarkTable1(b *testing.B) {
	ps := problems(b)
	var rows []tables.Table1Row
	for i := 0; i < b.N; i++ {
		rows = tables.Table1(ps)
	}
	for _, r := range rows {
		if r.Name == "LAP30" {
			b.ReportMetric(float64(r.FactorNNZ), "LAP30-nnzL")
		}
	}
}

// BenchmarkTable2 regenerates block-mapping communication (Table 2).
func BenchmarkTable2(b *testing.B) {
	ps := problems(b)
	var rows []tables.Table2Row
	for i := 0; i < b.N; i++ {
		rows = tables.Table2(ps)
	}
	for _, r := range rows {
		if r.Name == "LAP30" && r.P == 16 {
			b.ReportMetric(float64(r.TotalG4), "LAP30-P16-g4")
			b.ReportMetric(float64(r.TotalG25), "LAP30-P16-g25")
		}
	}
}

// BenchmarkTable3 regenerates block-mapping work distribution (Table 3).
func BenchmarkTable3(b *testing.B) {
	ps := problems(b)
	var rows []tables.Table3Row
	for i := 0; i < b.N; i++ {
		rows = tables.Table3(ps)
	}
	for _, r := range rows {
		if r.Name == "LAP30" && r.P == 16 {
			b.ReportMetric(r.AG25, "LAP30-P16-A-g25")
		}
	}
}

// BenchmarkTable4 regenerates the cluster-width sweep (Table 4).
func BenchmarkTable4(b *testing.B) {
	lap := lap30(b)
	var rows []tables.Table4Row
	for i := 0; i < b.N; i++ {
		rows = tables.Table4(lap)
	}
	for _, r := range rows {
		if r.Width == 8 && r.P == 16 {
			b.ReportMetric(float64(r.Total), "LAP30-w8-P16-traffic")
		}
	}
}

// BenchmarkTable5 regenerates the wrap-mapping table (Table 5).
func BenchmarkTable5(b *testing.B) {
	ps := problems(b)
	var rows []tables.Table5Row
	for i := 0; i < b.N; i++ {
		rows = tables.Table5(ps)
	}
	for _, r := range rows {
		if r.Name == "LAP30" && r.P == 16 {
			b.ReportMetric(float64(r.Total), "LAP30-P16-traffic")
		}
	}
}

// BenchmarkFigure2 builds and partitions the 41x41 5-point FE grid matrix
// of Figure 2 (cluster identification on the worked example).
func BenchmarkFigure2(b *testing.B) {
	var nClusters int
	for i := 0; i < b.N; i++ {
		sys, err := repro.Analyze(repro.FEGrid5(5))
		if err != nil {
			b.Fatal(err)
		}
		part := sys.Partition(repro.PartitionOptions{Grain: 4, MinClusterWidth: 2})
		nClusters = len(part.Clusters)
	}
	b.ReportMetric(float64(nClusters), "clusters")
}

// BenchmarkFigure3 times the unit-block partitioning step alone (the
// triangle band split and rectangle grids of Figure 3) on LAP30.
func BenchmarkFigure3(b *testing.B) {
	lap := lap30(b)
	var units int
	for i := 0; i < b.N; i++ {
		part := core.NewPartition(lap.F, core.Options{Grain: 4, MinClusterWidth: 4})
		units = len(part.Units)
	}
	b.ReportMetric(float64(units), "units")
}

// BenchmarkFigure4 times the ten-category dependency engine (Figure 4)
// against the element-level oracle on LAP30.
func BenchmarkFigure4(b *testing.B) {
	lap := lap30(b)
	part := lap.Part(4, 4)
	ops := model.NewOps(lap.F)
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NewPartition(lap.F, core.Options{Grain: 4, MinClusterWidth: 4})
		}
	})
	b.Run("oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			part.DepsOracle(ops)
		}
	})
}

// BenchmarkExtMakespan regenerates the dependency-delay study (Ext-A).
func BenchmarkExtMakespan(b *testing.B) {
	ps := problems(b)
	var rows []tables.MakespanRow
	for i := 0; i < b.N; i++ {
		rows = tables.Makespan(ps)
	}
	for _, r := range rows {
		if r.Name == "LAP30" && r.P == 16 && r.Scheme == "block g=25" {
			b.ReportMetric(r.Efficiency, "LAP30-P16-eff")
		}
	}
}

// BenchmarkExtPartners regenerates the communication-partner study (Ext-B).
func BenchmarkExtPartners(b *testing.B) {
	ps := problems(b)
	var rows []tables.PartnersRow
	for i := 0; i < b.N; i++ {
		rows = tables.Partners(ps)
	}
	for _, r := range rows {
		if r.Name == "LAP30" && r.P == 32 {
			b.ReportMetric(r.WrapPartners, "LAP30-P32-wrap")
			b.ReportMetric(r.BlockPartners, "LAP30-P32-block")
		}
	}
}

// BenchmarkExtGrainSweep regenerates the grain ablation (Ext-C).
func BenchmarkExtGrainSweep(b *testing.B) {
	lap := lap30(b)
	grains := []int{2, 4, 8, 16, 25, 50, 100}
	var rows []tables.GrainRow
	for i := 0; i < b.N; i++ {
		rows = tables.GrainSweep(lap, 16, grains)
	}
	b.ReportMetric(float64(rows[len(rows)-1].Total), "g100-traffic")
}

// BenchmarkStrategyMap measures every registered mapping strategy's Map
// on LAP30 at P=16 (partitioning is cached across iterations, so the
// block-based entries time allocation, not partitioning). This seeds the
// perf trajectory of the strategy subsystem: each sub-benchmark also
// reports the traffic and imbalance the strategy achieves.
func BenchmarkStrategyMap(b *testing.B) {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		b.Fatal(err)
	}
	opts := repro.StrategyOptions{
		Part: repro.PartitionOptions{Grain: 25, MinClusterWidth: 4},
	}
	// Warm the partition cache so block-based strategies time Map alone.
	if _, err := sys.MapStrategy("block", 16, opts); err != nil {
		b.Fatal(err)
	}
	for _, name := range repro.Strategies() {
		b.Run(name, func(b *testing.B) {
			var sc *repro.Schedule
			for i := 0; i < b.N; i++ {
				var err error
				sc, err = sys.MapStrategy(name, 16, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sys.StrategyTraffic(opts, sc).Total), "traffic")
			b.ReportMetric(sc.Imbalance(), "imbalance-A")
		})
	}
}

// BenchmarkMap2D measures every registered 2D tile mapper's Map2D on
// LAP30 at P=16 (col2d lifting the wrap baseline), reporting the 2D
// traffic total and tile-ownership imbalance each achieves. Together with
// BenchmarkStrategyMap it keeps both registries' mapping costs on the
// perf trajectory; the CI bench-smoke job compiles and runs both on every
// push.
func BenchmarkMap2D(b *testing.B) {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		b.Fatal(err)
	}
	opts := repro.StrategyOptions{}
	for _, name := range repro.Strategies2D() {
		b.Run(name, func(b *testing.B) {
			var s2 *repro.Schedule2D
			for i := 0; i < b.N; i++ {
				var err error
				s2, err = sys.MapStrategy2D(name, 16, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sys.Traffic2D(s2).Total), "traffic2d")
			b.ReportMetric(s2.Imbalance(), "imbalance-A")
		})
	}
}

// BenchmarkSolveCached contrasts the staged pipeline's cold and warm
// paths on LAP30: "cold" pays analysis + mapping + factorization on an
// empty artifact store each iteration; "warm" issues the identical
// request against a shared pre-warmed cache, so every stage hits and
// only the triangular sweeps run. The cold/warm gap is the
// factor-many/solve-many payoff; the hit counter is reported so the
// bench-smoke run shows the cache actually served the warm path.
func BenchmarkSolveCached(b *testing.B) {
	a := repro.LAP30()
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1 + float64(i%7)
	}
	opts := repro.StrategyOptions{}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := repro.NewCache(0)
			if _, err := cache.Solve(a, "wrap", 16, opts, repro.KernelCholesky, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := repro.NewCache(0)
		if _, err := cache.Solve(a, "wrap", 16, opts, repro.KernelCholesky, rhs); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Solve(a, "wrap", 16, opts, repro.KernelCholesky, rhs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(cache.Stats().Hits), "cache-hits")
	})
}

// BenchmarkFullPipeline times the whole paper pipeline on LAP30:
// generate, order, analyze, partition, schedule, simulate.
func BenchmarkFullPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := repro.Analyze(repro.LAP30())
		if err != nil {
			b.Fatal(err)
		}
		part := sys.Partition(repro.PartitionOptions{Grain: 25, MinClusterWidth: 4})
		sc := sys.BlockSchedule(part, 16)
		sys.Traffic(sc)
	}
}

// BenchmarkScaling runs the full pipeline across growing 9-point grids,
// showing how partitioning cost scales with problem size.
func BenchmarkScaling(b *testing.B) {
	for _, side := range []int{15, 30, 60} {
		b.Run(fmt.Sprintf("grid%dx%d", side, side), func(b *testing.B) {
			m := repro.Grid9(side, side)
			for i := 0; i < b.N; i++ {
				sys, err := repro.Analyze(m)
				if err != nil {
					b.Fatal(err)
				}
				part := sys.Partition(repro.PartitionOptions{Grain: 25, MinClusterWidth: 4})
				sc := sys.BlockSchedule(part, 16)
				sys.Traffic(sc)
			}
			b.ReportMetric(float64(m.N), "n")
		})
	}
}
