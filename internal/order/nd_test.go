package order

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestNDIsPermutation(t *testing.T) {
	fc := func(seed int64) bool {
		m := gen.Random(70, 1.4, seed)
		return IsPermutation(NestedDissection(m, 16))
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNDSuiteValid(t *testing.T) {
	for _, tm := range gen.Suite() {
		m := tm.Build()
		p := NestedDissection(m, 32)
		if !IsPermutation(p) {
			t.Errorf("%s: ND output invalid", tm.Name)
		}
	}
}

func TestNDGridBeatsNatural(t *testing.T) {
	m := gen.Grid5(12, 12)
	nat := eliminationFill(m, Natural(m.N))
	nd := eliminationFill(m, NestedDissection(m, 16))
	if nd >= nat {
		t.Errorf("ND fill %d not below natural %d on 12x12 grid", nd, nat)
	}
}

func TestNDNearMMDOnGrid(t *testing.T) {
	// ND should be within 2x of MMD fill on a moderate grid (both are
	// near-optimal families there).
	m := gen.Grid5(14, 14)
	mmd := eliminationFill(m, MMD(m))
	nd := eliminationFill(m, NestedDissection(m, 16))
	t.Logf("14x14 grid: MMD fill %d, ND fill %d", mmd, nd)
	if nd > 2*mmd {
		t.Errorf("ND fill %d more than twice MMD %d", nd, mmd)
	}
}

func TestNDDisconnectedAndDense(t *testing.T) {
	// Disconnected graph.
	m, _ := sparse.NewPattern(12, [][2]int{{0, 1}, {4, 5}, {8, 9}})
	if !IsPermutation(NestedDissection(m, 2)) {
		t.Error("ND failed on disconnected graph")
	}
	// Complete graph: no separator exists; must still terminate.
	var edges [][2]int
	for i := 0; i < 10; i++ {
		for j := 0; j < i; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	k, _ := sparse.NewPattern(10, edges)
	if !IsPermutation(NestedDissection(k, 4)) {
		t.Error("ND failed on complete graph")
	}
	// Singleton and empty.
	s, _ := sparse.NewPattern(1, nil)
	if p := NestedDissection(s, 4); len(p) != 1 {
		t.Error("ND failed on singleton")
	}
	e, _ := sparse.NewPattern(0, nil)
	if p := NestedDissection(e, 4); len(p) != 0 {
		t.Error("ND failed on empty")
	}
}

func BenchmarkNDLap30(b *testing.B) {
	m := gen.Lap30()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NestedDissection(m, 32)
	}
}
