package order

import (
	"sort"

	"repro/internal/sparse"
)

// NestedDissection computes a nested-dissection ordering of the symmetric
// matrix: a BFS level-set vertex separator splits each component, the two
// halves are ordered recursively, and the separator is numbered last.
// Pieces at or below leafSize (<= 0 selects the default of 32) are ordered
// with minimum degree. Nested dissection is the classical alternative to
// MMD for grid-like problems and feeds the ordering ablation in
// EXPERIMENTS.md.
func NestedDissection(m *sparse.Matrix, leafSize int) []int {
	if leafSize <= 0 {
		leafSize = 32
	}
	adj := m.Adjacency()
	out := make([]int, 0, m.N)
	all := make([]int, m.N)
	for i := range all {
		all[i] = i
	}
	inSet := make([]int32, m.N) // generation marker for subset membership
	var gen int32
	var dissect func(nodes []int)
	dissect = func(nodes []int) {
		if len(nodes) == 0 {
			return
		}
		if len(nodes) <= leafSize {
			out = append(out, orderLeaf(m, adj, nodes)...)
			return
		}
		// Split into connected components first.
		gen++
		g := gen
		for _, v := range nodes {
			inSet[v] = g
		}
		visited := make(map[int]bool, len(nodes))
		var comps [][]int
		for _, v := range nodes {
			if visited[v] {
				continue
			}
			comp := []int{v}
			visited[v] = true
			for q := 0; q < len(comp); q++ {
				for _, u := range adj[comp[q]] {
					if inSet[u] == g && !visited[u] {
						visited[u] = true
						comp = append(comp, u)
					}
				}
			}
			comps = append(comps, comp)
		}
		if len(comps) > 1 {
			for _, comp := range comps {
				dissect(comp)
			}
			return
		}
		// One component: find a separator from the middle BFS level of a
		// pseudo-peripheral root.
		comp := comps[0]
		left, sep, right := split(adj, inSet, g, comp)
		if len(sep) == 0 || len(left) == 0 || len(right) == 0 {
			// No useful separator (e.g. a clique): fall back to leaf
			// ordering to guarantee progress.
			out = append(out, orderLeaf(m, adj, comp)...)
			return
		}
		dissect(left)
		dissect(right)
		out = append(out, orderLeaf(m, adj, sep)...)
	}
	dissect(all)
	return out
}

// split runs BFS from a pseudo-peripheral node of the component and takes
// the middle level as separator; lower levels form the left part, higher
// the right.
func split(adj [][]int, inSet []int32, g int32, comp []int) (left, sep, right []int) {
	deg := func(v int) int {
		d := 0
		for _, u := range adj[v] {
			if inSet[u] == g {
				d++
			}
		}
		return d
	}
	// Pseudo-peripheral root within the subset.
	root := comp[0]
	lastEcc := -1
	for iter := 0; iter < 8; iter++ {
		levels := bfsLevelsSubset(adj, inSet, g, root)
		ecc := len(levels) - 1
		if ecc <= lastEcc {
			break
		}
		lastEcc = ecc
		last := levels[len(levels)-1]
		best := last[0]
		for _, v := range last {
			if deg(v) < deg(best) {
				best = v
			}
		}
		root = best
	}
	levels := bfsLevelsSubset(adj, inSet, g, root)
	if len(levels) < 3 {
		return nil, nil, nil
	}
	mid := len(levels) / 2
	sep = levels[mid]
	for l := 0; l < mid; l++ {
		left = append(left, levels[l]...)
	}
	for l := mid + 1; l < len(levels); l++ {
		right = append(right, levels[l]...)
	}
	return left, sep, right
}

func bfsLevelsSubset(adj [][]int, inSet []int32, g int32, root int) [][]int {
	visited := map[int]bool{root: true}
	frontier := []int{root}
	var levels [][]int
	for len(frontier) > 0 {
		levels = append(levels, frontier)
		var next []int
		for _, v := range frontier {
			for _, u := range adj[v] {
				if inSet[u] == g && !visited[u] {
					visited[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return levels
}

// orderLeaf orders a small piece by minimum degree within the piece
// (greedy, recomputed degrees), breaking ties by node index for
// determinism.
func orderLeaf(m *sparse.Matrix, adj [][]int, nodes []int) []int {
	if len(nodes) == 1 {
		return []int{nodes[0]}
	}
	// Local adjacency restricted to the piece.
	local := make(map[int][]int, len(nodes))
	in := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		in[v] = true
	}
	for _, v := range nodes {
		for _, u := range adj[v] {
			if in[u] {
				local[v] = append(local[v], u)
			}
		}
	}
	// Greedy minimum degree with elimination-graph updates (exact, fine
	// for leaf-sized pieces).
	neighbors := make(map[int]map[int]bool, len(nodes))
	for _, v := range nodes {
		set := make(map[int]bool, len(local[v]))
		for _, u := range local[v] {
			set[u] = true
		}
		neighbors[v] = set
	}
	remaining := append([]int(nil), nodes...)
	sort.Ints(remaining)
	out := make([]int, 0, len(nodes))
	alive := make(map[int]bool, len(nodes))
	for _, v := range remaining {
		alive[v] = true
	}
	for len(out) < len(nodes) {
		best, bestDeg := -1, 1<<30
		for _, v := range remaining {
			if !alive[v] {
				continue
			}
			if d := len(neighbors[v]); d < bestDeg {
				best, bestDeg = v, d
			}
		}
		// Eliminate best: clique its neighbours.
		var nbrs []int
		//repro:allow maporder -- key collection for the sort.Ints below; iteration order never escapes
		for u := range neighbors[best] {
			nbrs = append(nbrs, u)
		}
		sort.Ints(nbrs)
		for _, u := range nbrs {
			delete(neighbors[u], best)
			for _, w := range nbrs {
				if w != u {
					neighbors[u][w] = true
				}
			}
		}
		alive[best] = false
		delete(neighbors, best)
		out = append(out, best)
	}
	return out
}
