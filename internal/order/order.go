package order

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// Natural returns the identity ordering.
func Natural(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Inverse returns the inverse permutation: if order[k] = old, then
// Inverse(order)[old] = k.
func Inverse(order []int) []int {
	inv := make([]int, len(order))
	for k, o := range order {
		inv[o] = k
	}
	return inv
}

// IsPermutation reports whether p is a permutation of 0..len(p)-1.
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, x := range p {
		if x < 0 || x >= len(p) || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

// RCM returns the reverse Cuthill-McKee ordering of the matrix, a
// bandwidth-reducing baseline ordering. Each connected component is
// traversed breadth-first from a pseudo-peripheral node, visiting
// neighbours in increasing-degree order; the final ordering is reversed.
func RCM(m *sparse.Matrix) []int {
	n := m.N
	adj := m.Adjacency()
	deg := make([]int, n)
	for i := range adj {
		deg[i] = len(adj[i])
	}
	visited := make([]bool, n)
	result := make([]int, 0, n)
	var queue []int
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(adj, deg, start)
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			result = append(result, v)
			next := make([]int, 0, len(adj[v]))
			for _, u := range adj[v] {
				if !visited[u] {
					visited[u] = true
					next = append(next, u)
				}
			}
			sort.Slice(next, func(a, b int) bool {
				if deg[next[a]] != deg[next[b]] {
					return deg[next[a]] < deg[next[b]]
				}
				return next[a] < next[b]
			})
			queue = append(queue, next...)
		}
	}
	// Reverse.
	for i, j := 0, len(result)-1; i < j; i, j = i+1, j-1 {
		result[i], result[j] = result[j], result[i]
	}
	if len(result) != n {
		panic(fmt.Sprintf("order: RCM produced %d of %d indices", len(result), n))
	}
	return result
}

// pseudoPeripheral finds an approximate peripheral node of the component
// containing start using the standard rooted-level-structure iteration.
func pseudoPeripheral(adj [][]int, deg []int, start int) int {
	root := start
	lastEcc := -1
	for iter := 0; iter < 10; iter++ {
		levels, last := bfsLevels(adj, root)
		if levels <= lastEcc {
			return root
		}
		lastEcc = levels
		// Choose a minimum-degree node in the last level.
		best := last[0]
		for _, v := range last {
			if deg[v] < deg[best] {
				best = v
			}
		}
		root = best
	}
	return root
}

// bfsLevels returns the eccentricity of root within its component and the
// nodes of the final BFS level.
func bfsLevels(adj [][]int, root int) (int, []int) {
	visited := map[int]bool{root: true}
	frontier := []int{root}
	levels := 0
	last := frontier
	for {
		var next []int
		for _, v := range frontier {
			for _, u := range adj[v] {
				if !visited[u] {
					visited[u] = true
					next = append(next, u)
				}
			}
		}
		if len(next) == 0 {
			return levels, last
		}
		levels++
		last = next
		frontier = next
	}
}

// Bandwidth returns the maximum |i-j| over stored off-diagonal entries,
// a quality metric for RCM.
func Bandwidth(m *sparse.Matrix) int {
	bw := 0
	for j := 0; j < m.N; j++ {
		col := m.Col(j)
		if len(col) > 1 {
			if d := col[len(col)-1] - j; d > bw {
				bw = d
			}
		}
	}
	return bw
}
