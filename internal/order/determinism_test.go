package order

import (
	"testing"

	"repro/internal/gen"
)

// TestOrderDeterminism pins the byte-for-byte stability of every ordering
// over repeated runs in one process. The MMD supervariable merge iterates
// a hash-bucket map whose keys are sorted before use (mmd.go); this test
// is the regression net for that sort — if map-iteration order ever leaks
// back into the ordering, identical calls diverge and every downstream
// schedule and artifact key diverges with them. CI runs it with -count=2
// to also cover per-process map-hash seed variation.
func TestOrderDeterminism(t *testing.T) {
	for _, tm := range gen.Suite() {
		m := tm.Build()
		orderings := []struct {
			name string
			run  func() []int
		}{
			{"mmd", func() []int { return MMD(m) }},
			{"rcm", func() []int { return RCM(m) }},
			{"nd", func() []int { return NestedDissection(m, 8) }},
		}
		for _, o := range orderings {
			first := o.run()
			for rep := 0; rep < 3; rep++ {
				got := o.run()
				for i := range first {
					if got[i] != first[i] {
						t.Fatalf("%s/%s: run %d diverged at position %d: %d vs %d",
							tm.Name, o.name, rep, i, got[i], first[i])
					}
				}
			}
		}
	}
}
