// Package order implements fill-reducing orderings for symmetric sparse
// matrices.
//
// The paper orders every test matrix with "Liu's modified multiple minimum
// degree ordering scheme" [Liu, TOMS 1985]. MMD here is implemented on the
// quotient graph with the classical ingredients of that scheme:
//
//   - multiple elimination: all independent minimum-degree supervariables
//     are eliminated in one pass before any degrees are recomputed;
//   - element absorption: eliminating a pivot absorbs the elements it is
//     adjacent to, keeping the quotient graph no larger than the original;
//   - supervariables (indistinguishable-node merging): variables with
//     identical quotient-graph adjacency are merged and numbered together;
//   - mass elimination: variables whose adjacency is covered entirely by
//     the new pivot element are numbered immediately after the pivot;
//   - external degree: the degree of a supervariable counts the total
//     weight of its distinct neighbours, excluding itself.
//
// Tie-breaking differs from the GENMMD Fortran code, so fill counts differ
// from the paper's by a few percent; DESIGN.md discusses this substitution.
package order

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

type nodeState byte

const (
	stActive   nodeState = iota // an active supervariable
	stAbsorbed                  // merged into another supervariable
	stElement                   // eliminated; now an element (pivot clique)
	stDead                      // an element absorbed by a newer element
)

type mmd struct {
	n      int
	adjVar [][]int32 // supervariable -> adjacent supervariables (lazy)
	adjEl  [][]int32 // supervariable -> adjacent elements (lazy)
	elVars [][]int32 // element -> member supervariables (lazy)
	state  []nodeState
	weight []int32 // supervariable weight (count of merged originals)
	degree []int32 // external degree (valid unless flagged for update)
	parent []int32 // union-find for absorbed supervariables
	member [][]int32
	mark   []int32
	stamp  int32
	order  []int
}

// MMD computes a multiple-minimum-degree ordering of the symmetric matrix m.
// The returned order satisfies order[k] = original index eliminated k-th,
// i.e. it is directly usable with sparse.Matrix.Permute.
func MMD(m *sparse.Matrix) []int {
	n := m.N
	s := &mmd{
		n:      n,
		adjVar: make([][]int32, n),
		adjEl:  make([][]int32, n),
		elVars: make([][]int32, n),
		state:  make([]nodeState, n),
		weight: make([]int32, n),
		degree: make([]int32, n),
		parent: make([]int32, n),
		member: make([][]int32, n),
		mark:   make([]int32, n),
		order:  make([]int, 0, n),
	}
	adj := m.Adjacency()
	for v := 0; v < n; v++ {
		s.weight[v] = 1
		s.parent[v] = int32(v)
		s.member[v] = []int32{int32(v)}
		s.adjVar[v] = make([]int32, len(adj[v]))
		for k, u := range adj[v] {
			s.adjVar[v][k] = int32(u)
		}
		s.degree[v] = int32(len(adj[v]))
	}
	s.run()
	return s.order
}

func (s *mmd) find(v int32) int32 {
	for s.parent[v] != v {
		s.parent[v] = s.parent[s.parent[v]]
		v = s.parent[v]
	}
	return v
}

func (s *mmd) nextStamp() int32 {
	s.stamp++
	if s.stamp == 1<<30 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.stamp = 1
	}
	return s.stamp
}

func (s *mmd) run() {
	numbered := 0
	needUpdate := make([]bool, s.n)
	var updateList []int32
	for numbered < s.n {
		// Find the current minimum external degree among active nodes.
		minDeg := int32(1 << 30)
		for v := 0; v < s.n; v++ {
			if s.state[v] == stActive && s.degree[v] < minDeg {
				minDeg = s.degree[v]
			}
		}
		// Multiple elimination: eliminate every active min-degree node whose
		// degree is still current (independence: neighbours of a node
		// eliminated this pass are flagged and skipped).
		updateList = updateList[:0]
		eliminatedAny := false
		for v := int32(0); int(v) < s.n; v++ {
			if s.state[v] != stActive || s.degree[v] != minDeg || needUpdate[v] {
				continue
			}
			eliminatedAny = true
			numbered += s.eliminate(v, needUpdate, &updateList)
		}
		if !eliminatedAny {
			// All min-degree nodes were flagged; recompute and retry.
			for _, u := range updateList {
				if s.state[u] == stActive {
					s.updateDegree(u)
					needUpdate[u] = false
				}
			}
			for v := int32(0); int(v) < s.n; v++ {
				if s.state[v] == stActive && needUpdate[v] {
					s.updateDegree(v)
					needUpdate[v] = false
				}
			}
			continue
		}
		// Degree update pass, with supervariable merging.
		s.mergeIndistinguishable(updateList, needUpdate)
		for _, u := range updateList {
			if s.state[u] == stActive && needUpdate[u] {
				s.updateDegree(u)
				needUpdate[u] = false
			}
		}
	}
	if len(s.order) != s.n {
		panic(fmt.Sprintf("order: produced %d of %d indices", len(s.order), s.n))
	}
}

// eliminate turns pivot p into an element, absorbing its adjacent elements,
// and performs mass elimination. It returns the number of original
// variables numbered.
func (s *mmd) eliminate(p int32, needUpdate []bool, updateList *[]int32) int {
	count := 0
	for _, orig := range s.member[p] {
		s.order = append(s.order, int(orig))
		count++
	}
	// Gather the new element's variable set Lp.
	stamp := s.nextStamp()
	s.mark[p] = stamp
	var lp []int32
	for _, w := range s.adjVar[p] {
		w = s.find(w)
		if s.state[w] == stActive && s.mark[w] != stamp {
			s.mark[w] = stamp
			lp = append(lp, w)
		}
	}
	for _, e := range s.adjEl[p] {
		if s.state[e] != stElement {
			continue
		}
		for _, w := range s.elVars[e] {
			w = s.find(w)
			if s.state[w] == stActive && s.mark[w] != stamp {
				s.mark[w] = stamp
				lp = append(lp, w)
			}
		}
		s.state[e] = stDead // element absorption
		s.elVars[e] = nil
	}
	s.state[p] = stElement
	s.adjVar[p] = nil
	s.adjEl[p] = nil
	s.elVars[p] = lp

	// Update each variable in Lp: replace dead elements / covered edges.
	massEliminated := lp[:0:0]
	for _, u := range lp {
		newEl := s.adjEl[u][:0]
		for _, e := range s.adjEl[u] {
			if s.state[e] == stElement {
				newEl = append(newEl, e)
			}
		}
		newEl = append(newEl, p)
		s.adjEl[u] = newEl
		// Drop variable-variable edges covered by the new element (both
		// endpoints in Lp), absorbed variables, and the pivot itself.
		newVar := s.adjVar[u][:0]
		for _, w := range s.adjVar[u] {
			w = s.find(w)
			if s.state[w] != stActive || w == u || s.mark[w] == stamp {
				continue
			}
			newVar = append(newVar, w)
		}
		s.adjVar[u] = newVar
		// Mass elimination: u's adjacency is covered entirely by element p.
		if len(newVar) == 0 && len(newEl) == 1 {
			massEliminated = append(massEliminated, u)
			continue
		}
		if !needUpdate[u] {
			needUpdate[u] = true
			*updateList = append(*updateList, u)
		}
	}
	if len(massEliminated) > 0 {
		// Remove mass-eliminated variables from the element and number them.
		stamp2 := s.nextStamp()
		for _, u := range massEliminated {
			s.mark[u] = stamp2
		}
		kept := s.elVars[p][:0]
		for _, w := range s.elVars[p] {
			if s.mark[w] != stamp2 {
				kept = append(kept, w)
			}
		}
		s.elVars[p] = kept
		for _, u := range massEliminated {
			for _, orig := range s.member[u] {
				s.order = append(s.order, int(orig))
				count++
			}
			s.state[u] = stAbsorbed
			s.adjVar[u] = nil
			s.adjEl[u] = nil
			s.member[u] = nil
		}
	}
	return count
}

// updateDegree recomputes the external degree of supervariable u.
func (s *mmd) updateDegree(u int32) {
	stamp := s.nextStamp()
	s.mark[u] = stamp
	var d int32
	newVar := s.adjVar[u][:0]
	for _, w := range s.adjVar[u] {
		w = s.find(w)
		if s.state[w] != stActive || s.mark[w] == stamp {
			continue
		}
		s.mark[w] = stamp
		d += s.weight[w]
		newVar = append(newVar, w)
	}
	s.adjVar[u] = newVar
	newEl := s.adjEl[u][:0]
	for _, e := range s.adjEl[u] {
		if s.state[e] != stElement {
			continue
		}
		newEl = append(newEl, e)
		kept := s.elVars[e][:0]
		for _, w := range s.elVars[e] {
			w = s.find(w)
			if s.state[w] != stActive {
				continue
			}
			kept = append(kept, w)
			if s.mark[w] != stamp && w != u {
				s.mark[w] = stamp
				d += s.weight[w]
			}
		}
		s.elVars[e] = dedupKeep(kept)
	}
	s.adjEl[u] = newEl
	s.degree[u] = d
}

// dedupKeep removes duplicates from a small slice in place, preserving
// order (duplicates arise after union-find path compression).
func dedupKeep(xs []int32) []int32 {
	out := xs[:0]
	for _, x := range xs {
		dup := false
		for _, y := range out {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// mergeIndistinguishable merges supervariables with identical quotient-graph
// adjacency among the nodes flagged for degree update.
func (s *mmd) mergeIndistinguishable(updateList []int32, needUpdate []bool) {
	if len(updateList) < 2 {
		return
	}
	// Group candidates by a cheap adjacency hash, then verify exactly.
	buckets := make(map[uint64][]int32)
	for _, u := range updateList {
		if s.state[u] != stActive {
			continue
		}
		var h uint64
		for _, w := range s.adjVar[u] {
			w = s.find(w)
			if s.state[w] == stActive && w != u {
				h += uint64(w)*0x9e3779b97f4a7c15 + 1
			}
		}
		for _, e := range s.adjEl[u] {
			if s.state[e] == stElement {
				h ^= (uint64(e) + 0x7f4a7c15) * 0x100000001b3
			}
		}
		buckets[h] = append(buckets[h], u)
	}
	// Process buckets in sorted hash order: merging marks the absorbed
	// variable dead, which changes later indistinguishability checks, so
	// map-iteration order would leak into the ordering (and from there
	// into every downstream schedule and artifact hash).
	hashes := make([]uint64, 0, len(buckets))
	//repro:allow maporder -- key collection for the sort below; iteration order never escapes
	for h := range buckets {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
	for _, h := range hashes {
		group := buckets[h]
		if len(group) < 2 {
			continue
		}
		for i := 0; i < len(group); i++ {
			u := group[i]
			if s.state[u] != stActive {
				continue
			}
			for j := i + 1; j < len(group); j++ {
				w := group[j]
				if s.state[w] != stActive {
					continue
				}
				if s.indistinguishable(u, w) {
					// Merge w into u.
					s.weight[u] += s.weight[w]
					s.member[u] = append(s.member[u], s.member[w]...)
					s.member[w] = nil
					s.state[w] = stAbsorbed
					s.parent[w] = u
					s.adjVar[w] = nil
					s.adjEl[w] = nil
				}
			}
		}
	}
}

// indistinguishable reports whether active supervariables u and w have the
// same adjacency sets (excluding each other). Merging such variables is
// safe: they can be eliminated consecutively with no extra fill.
func (s *mmd) indistinguishable(u, w int32) bool {
	return s.sameVarSet(u, w) && s.sameElSet(u, w)
}

func (s *mmd) sameVarSet(u, w int32) bool {
	su := s.collectVars(u, w)
	sw := s.collectVars(w, u)
	if len(su) != len(sw) {
		return false
	}
	stamp := s.nextStamp()
	for _, x := range su {
		s.mark[x] = stamp
	}
	for _, x := range sw {
		if s.mark[x] != stamp {
			return false
		}
	}
	return true
}

func (s *mmd) collectVars(u, skip int32) []int32 {
	stamp := s.nextStamp()
	var out []int32
	for _, x := range s.adjVar[u] {
		x = s.find(x)
		if s.state[x] != stActive || x == u || x == skip {
			continue
		}
		if s.mark[x] != stamp {
			s.mark[x] = stamp
			out = append(out, x)
		}
	}
	return out
}

func (s *mmd) sameElSet(u, w int32) bool {
	su := s.collectEls(u)
	sw := s.collectEls(w)
	if len(su) != len(sw) {
		return false
	}
	stamp := s.nextStamp()
	for _, e := range su {
		s.mark[e] = stamp
	}
	for _, e := range sw {
		if s.mark[e] != stamp {
			return false
		}
	}
	return true
}

func (s *mmd) collectEls(u int32) []int32 {
	stamp := s.nextStamp()
	var out []int32
	for _, e := range s.adjEl[u] {
		if s.state[e] == stElement && s.mark[e] != stamp {
			s.mark[e] = stamp
			out = append(out, e)
		}
	}
	return out
}
