package order

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

// eliminationFill plays the elimination game on the adjacency structure and
// returns the number of lower-triangle factor nonzeros (including the
// diagonal) for the given ordering. Brute force; test oracle only.
func eliminationFill(m *sparse.Matrix, order []int) int {
	n := m.N
	inv := Inverse(order)
	// adjacency over new labels
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for j := 0; j < n; j++ {
		for _, i := range m.Col(j)[1:] {
			ni, nj := inv[i], inv[j]
			adj[ni][nj] = true
			adj[nj][ni] = true
		}
	}
	nnz := n
	for v := 0; v < n; v++ {
		var higher []int
		for u := range adj[v] {
			if u > v {
				higher = append(higher, u)
			}
		}
		nnz += len(higher)
		for a := 0; a < len(higher); a++ {
			for b := a + 1; b < len(higher); b++ {
				adj[higher[a]][higher[b]] = true
				adj[higher[b]][higher[a]] = true
			}
		}
	}
	return nnz
}

func TestMMDIsPermutation(t *testing.T) {
	for _, tm := range gen.Suite() {
		m := tm.Build()
		p := MMD(m)
		if !IsPermutation(p) {
			t.Errorf("%s: MMD output is not a permutation", tm.Name)
		}
	}
}

func TestMMDPathGraph(t *testing.T) {
	// A path graph has a perfect elimination ordering with zero fill; MMD
	// must find one (every tree does).
	var edges [][2]int
	for i := 0; i < 19; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	m, _ := sparse.NewPattern(20, edges)
	p := MMD(m)
	if !IsPermutation(p) {
		t.Fatal("not a permutation")
	}
	if fill := eliminationFill(m, p); fill != m.NNZ() {
		t.Errorf("MMD on a path produced fill: nnz(L)=%d, want %d", fill, m.NNZ())
	}
}

func TestMMDTreeNoFill(t *testing.T) {
	// Any tree admits a no-fill ordering (leaves first). MMD achieves it.
	f := func(seed int64) bool {
		m := gen.Random(40, 0, seed) // density 0 => spanning tree only
		p := MMD(m)
		if !IsPermutation(p) {
			return false
		}
		return eliminationFill(m, p) == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMMDNeverWorseThanNaturalOnGrids(t *testing.T) {
	m := gen.Grid5(8, 8)
	nat := eliminationFill(m, Natural(m.N))
	mmd := eliminationFill(m, MMD(m))
	if mmd > nat {
		t.Errorf("MMD fill %d worse than natural %d on 8x8 grid", mmd, nat)
	}
	// MMD should be substantially better on grids.
	if float64(mmd) > 0.8*float64(nat) {
		t.Errorf("MMD fill %d not much better than natural %d", mmd, nat)
	}
}

func TestMMDRandomGraphsValidAndGood(t *testing.T) {
	f := func(seed int64) bool {
		m := gen.Random(35, 1.2, seed)
		p := MMD(m)
		if !IsPermutation(p) {
			return false
		}
		nat := eliminationFill(m, Natural(m.N))
		mmd := eliminationFill(m, p)
		return mmd <= nat+5 // tiny graphs can tie; never much worse
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMMDCompleteGraph(t *testing.T) {
	var edges [][2]int
	n := 8
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	m, _ := sparse.NewPattern(n, edges)
	p := MMD(m)
	if !IsPermutation(p) {
		t.Fatal("not a permutation")
	}
	if fill := eliminationFill(m, p); fill != n*(n+1)/2 {
		t.Errorf("complete graph fill = %d, want %d", fill, n*(n+1)/2)
	}
}

func TestMMDSingletonAndEmpty(t *testing.T) {
	m, _ := sparse.NewPattern(1, nil)
	if p := MMD(m); len(p) != 1 || p[0] != 0 {
		t.Errorf("MMD on singleton = %v", p)
	}
	e, _ := sparse.NewPattern(0, nil)
	if p := MMD(e); len(p) != 0 {
		t.Errorf("MMD on empty = %v", p)
	}
}

func TestMMDDisconnected(t *testing.T) {
	// Two disjoint triangles plus isolated nodes.
	m, _ := sparse.NewPattern(8, [][2]int{{0, 1}, {1, 2}, {2, 0}, {4, 5}, {5, 6}, {6, 4}})
	p := MMD(m)
	if !IsPermutation(p) {
		t.Fatal("not a permutation")
	}
	if fill := eliminationFill(m, p); fill != m.NNZ() {
		t.Errorf("fill on triangles = %d, want %d (cliques are chordal)", fill, m.NNZ())
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	m := gen.Grid5(10, 10)
	// Scramble first so natural banding does not help.
	scr, err := m.Permute(MMD(m)) // any scramble
	if err != nil {
		t.Fatal(err)
	}
	p := RCM(scr)
	if !IsPermutation(p) {
		t.Fatal("RCM not a permutation")
	}
	rm, err := scr.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	if bw, orig := Bandwidth(rm), Bandwidth(scr); bw > orig {
		t.Errorf("RCM bandwidth %d worse than input %d", bw, orig)
	}
	if bw := Bandwidth(rm); bw > 14 {
		t.Errorf("RCM bandwidth on 10x10 grid = %d, want near 10", bw)
	}
}

func TestRCMDisconnected(t *testing.T) {
	m, _ := sparse.NewPattern(6, [][2]int{{0, 1}, {3, 4}})
	p := RCM(m)
	if !IsPermutation(p) {
		t.Fatalf("RCM on disconnected graph = %v", p)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := gen.Random(25, 1, seed)
		p := MMD(m)
		inv := Inverse(p)
		for k, o := range p {
			if inv[o] != k {
				return false
			}
		}
		return IsPermutation(inv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIsPermutationRejects(t *testing.T) {
	if IsPermutation([]int{0, 0}) || IsPermutation([]int{1, 2}) || IsPermutation([]int{-1, 0}) {
		t.Fatal("IsPermutation accepted invalid input")
	}
	if !IsPermutation(nil) || !IsPermutation([]int{0}) {
		t.Fatal("IsPermutation rejected valid input")
	}
}

func BenchmarkMMDLap30(b *testing.B) {
	m := gen.Lap30()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MMD(m)
	}
}

func BenchmarkRCMLap30(b *testing.B) {
	m := gen.Lap30()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RCM(m)
	}
}
