package sparse

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func mustPattern(t *testing.T, n int, edges [][2]int) *Matrix {
	t.Helper()
	m, err := NewPattern(n, edges)
	if err != nil {
		t.Fatalf("NewPattern: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return m
}

func TestNewPatternBasic(t *testing.T) {
	m := mustPattern(t, 4, [][2]int{{0, 1}, {1, 2}, {3, 0}, {2, 2}, {1, 0}})
	if m.NNZ() != 4+3 {
		t.Fatalf("nnz = %d, want 7", m.NNZ())
	}
	wantCols := [][]int{{0, 1, 3}, {1, 2}, {2}, {3}}
	for j, want := range wantCols {
		if got := m.Col(j); !reflect.DeepEqual(got, want) {
			t.Errorf("col %d = %v, want %v", j, got, want)
		}
	}
	if !m.Has(3, 0) || m.Has(2, 0) {
		t.Errorf("Has gave wrong answers")
	}
	if m.OffDiagNNZ() != 3 {
		t.Errorf("OffDiagNNZ = %d, want 3", m.OffDiagNNZ())
	}
}

func TestNewPatternRejectsOutOfRange(t *testing.T) {
	if _, err := NewPattern(3, [][2]int{{0, 3}}); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
	if _, err := NewPattern(3, [][2]int{{-1, 0}}); err == nil {
		t.Fatal("expected error for negative index")
	}
}

func TestEmptyAndDiagonalOnly(t *testing.T) {
	m := mustPattern(t, 3, nil)
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3 (diagonal only)", m.NNZ())
	}
	e := mustPattern(t, 0, nil)
	if e.NNZ() != 0 {
		t.Fatalf("empty matrix nnz = %d", e.NNZ())
	}
	if s := e.Spy(10); s != "" {
		t.Fatalf("empty spy = %q", s)
	}
}

func TestFromTripletsSumsDuplicates(t *testing.T) {
	// (1,0) given twice, once in each triangle; diagonal 2 absent.
	rows := []int{0, 1, 0, 1, 2, 2}
	cols := []int{0, 0, 1, 1, 1, 1}
	vals := []float64{4, -1, -1, 4, -0.5, -0.5}
	m, err := FromTriplets(3, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.At(1, 0); got != -2 {
		t.Errorf("At(1,0) = %g, want -2 (summed duplicates)", got)
	}
	if got := m.At(2, 1); got != -1 {
		t.Errorf("At(2,1) = %g, want -1", got)
	}
	if got := m.At(2, 2); got != 0 {
		t.Errorf("At(2,2) = %g, want 0 (materialized diagonal)", got)
	}
	if got := m.At(2, 0); got != 0 {
		t.Errorf("At(2,0) = %g, want 0 (absent)", got)
	}
}

func TestFromTripletsErrors(t *testing.T) {
	if _, err := FromTriplets(2, []int{0}, []int{0, 1}, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := FromTriplets(2, []int{0}, []int{0}, []float64{1, 2}); err == nil {
		t.Fatal("expected values length mismatch error")
	}
	if _, err := FromTriplets(2, []int{2}, []int{0}, nil); err == nil {
		t.Fatal("expected range error")
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	m := mustPattern(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}})
	adj := m.Adjacency()
	for i := range adj {
		for _, j := range adj[i] {
			found := false
			for _, k := range adj[j] {
				if k == i {
					found = true
				}
			}
			if !found {
				t.Errorf("adjacency not symmetric: %d in adj[%d] but not vice versa", j, i)
			}
		}
		if !sort.IntsAreSorted(adj[i]) {
			t.Errorf("adj[%d] not sorted: %v", i, adj[i])
		}
	}
	deg := m.Degrees()
	for i := range deg {
		if deg[i] != len(adj[i]) {
			t.Errorf("degree[%d] = %d, want %d", i, deg[i], len(adj[i]))
		}
	}
}

func TestPermuteIdentityAndReversal(t *testing.T) {
	m := mustPattern(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 3}})
	m.SetLaplacianValues(1)

	id := []int{0, 1, 2, 3}
	p, err := m.Permute(id)
	if err != nil {
		t.Fatal(err)
	}
	if !PatternEqual(m, p) {
		t.Error("identity permutation changed the pattern")
	}

	rev := []int{3, 2, 1, 0}
	r, err := m.Permute(rev)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// B[i][j] == A[rev[i]][rev[j]] on the full symmetric matrix.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got, want := r.At(i, j), m.At(rev[i], rev[j]); got != want {
				t.Errorf("r.At(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestPermuteRejectsBadInput(t *testing.T) {
	m := mustPattern(t, 3, nil)
	if _, err := m.Permute([]int{0, 1}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := m.Permute([]int{0, 0, 1}); err == nil {
		t.Fatal("expected non-permutation error")
	}
	if _, err := m.Permute([]int{0, 1, 3}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

// randomPattern builds a random symmetric pattern with n in [1,20].
func randomPattern(rng *rand.Rand) *Matrix {
	n := 1 + rng.Intn(20)
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if rng.Float64() < 0.3 {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	m, err := NewPattern(n, edges)
	if err != nil {
		panic(err)
	}
	return m
}

func randomPerm(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	return p
}

func TestPermuteRoundTripProperty(t *testing.T) {
	// Permuting by order and then by the inverse recovers the original.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomPattern(rng)
		m.SetLaplacianValues(0.5)
		order := randomPerm(rng, m.N)
		inv := make([]int, m.N)
		for k, o := range order {
			inv[o] = k
		}
		p, err := m.Permute(order)
		if err != nil {
			return false
		}
		back, err := p.Permute(inv)
		if err != nil {
			return false
		}
		if !PatternEqual(m, back) {
			return false
		}
		for j := 0; j < m.N; j++ {
			for _, i := range m.Col(j) {
				if m.At(i, j) != back.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutePreservesNNZProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomPattern(rng)
		p, err := m.Permute(randomPerm(rng, m.N))
		if err != nil {
			return false
		}
		return p.NNZ() == m.NNZ() && p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSetLaplacianValuesSPD(t *testing.T) {
	m := mustPattern(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	m.SetLaplacianValues(1)
	d := m.Dense()
	// Strict diagonal dominance implies SPD for symmetric matrices.
	for i := range d {
		sum := 0.0
		for j := range d[i] {
			if i != j {
				if d[i][j] > 0 {
					t.Errorf("off-diagonal (%d,%d) = %g, want <= 0", i, j, d[i][j])
				}
				sum += -d[i][j]
			}
		}
		if d[i][i] <= sum {
			t.Errorf("row %d not strictly diagonally dominant: %g vs %g", i, d[i][i], sum)
		}
	}
}

func TestDensePanicsOnPattern(t *testing.T) {
	m := mustPattern(t, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Dense()
}

func TestCloneIndependent(t *testing.T) {
	m := mustPattern(t, 3, [][2]int{{0, 2}})
	m.SetLaplacianValues(1)
	c := m.Clone()
	c.Val[0] = 99
	c.RowInd[0] = 0 // same value but distinct storage
	if m.Val[0] == 99 {
		t.Fatal("clone shares value storage")
	}
	if !PatternEqual(m, c) {
		t.Fatal("clone pattern differs")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := mustPattern(t, 3, [][2]int{{0, 1}, {1, 2}})
	bad := m.Clone()
	bad.RowInd[0] = 1 // column 0 no longer starts with its diagonal
	if bad.Validate() == nil {
		t.Error("expected diagonal violation")
	}
	bad2 := m.Clone()
	bad2.ColPtr[1] = 0
	if bad2.Validate() == nil {
		t.Error("expected colptr violation")
	}
	bad3 := m.Clone()
	bad3.Val = []float64{1}
	if bad3.Validate() == nil {
		t.Error("expected val length violation")
	}
}

func TestSpySmall(t *testing.T) {
	m := mustPattern(t, 3, [][2]int{{2, 0}})
	got := m.Spy(0)
	want := "\\  \n.\\ \n*.\\\n"
	if got != want {
		t.Errorf("Spy =\n%s\nwant\n%s", got, want)
	}
}

func TestSpyDownsamples(t *testing.T) {
	m := mustPattern(t, 100, [][2]int{{99, 0}})
	s := m.Spy(10)
	lines := 0
	for _, c := range s {
		if c == '\n' {
			lines++
		}
	}
	if lines != 10 {
		t.Fatalf("downsampled spy has %d lines, want 10", lines)
	}
	if s[len(s)-11] != '*' { // bottom-left cell of the 10x10 grid
		t.Errorf("expected '*' in bottom-left cell, got %q", s)
	}
}

func TestSpyWithBoundaries(t *testing.T) {
	m := mustPattern(t, 4, [][2]int{{1, 0}, {3, 2}})
	s := m.SpyWithBoundaries([]int{2})
	want := "\\\n*\\\n..|\\\n..|*\\\n"
	if s != want {
		t.Errorf("SpyWithBoundaries =\n%q\nwant\n%q", s, want)
	}
}

func BenchmarkPermute(b *testing.B) {
	m := mustBench(b)
	order := make([]int, m.N)
	for i := range order {
		order[i] = (i*7 + 3) % m.N
	}
	// Make it a permutation (7 coprime with 900).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Permute(order); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdjacency(b *testing.B) {
	m := mustBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Adjacency()
	}
}

// mustBench builds a 30x30 9-point grid inline (sparse cannot import gen).
func mustBench(b *testing.B) *Matrix {
	b.Helper()
	var edges [][2]int
	side := 30
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < side {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
				if c+1 < side {
					edges = append(edges, [2]int{id(r, c), id(r+1, c+1)})
				}
				if c > 0 {
					edges = append(edges, [2]int{id(r, c), id(r+1, c-1)})
				}
			}
		}
	}
	m, err := NewPattern(side*side, edges)
	if err != nil {
		b.Fatal(err)
	}
	m.SetLaplacianValues(1)
	return m
}
