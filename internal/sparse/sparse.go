// Package sparse provides the sparse symmetric matrix substrate used by the
// partitioning and scheduling pipeline.
//
// All symmetric matrices are stored as their lower triangle, including the
// diagonal, in compressed sparse column (CSC) form. This matches the view
// used throughout Venugopal & Naik (SC'91): Figure 1 and all the dependency
// categories of Section 3.3 are phrased over the lower triangle, and the
// nonzero counts of Table 1 are lower-triangle counts including the diagonal.
package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// Matrix is a sparse symmetric matrix stored as its lower triangle
// (including the diagonal) in compressed sparse column form.
//
// Invariants (checked by Validate):
//   - len(ColPtr) == N+1, ColPtr[0] == 0, ColPtr monotone non-decreasing.
//   - Row indices within each column are strictly increasing.
//   - The first entry of column j is the diagonal element j.
//   - If Val is non-nil, len(Val) == NNZ().
type Matrix struct {
	N      int
	ColPtr []int
	RowInd []int
	// Val holds the numerical values aligned with RowInd, or nil for a
	// pattern-only matrix.
	Val []float64
}

// NNZ returns the number of stored (lower-triangle) nonzeros.
func (m *Matrix) NNZ() int { return len(m.RowInd) }

// OffDiagNNZ returns the number of stored strictly-sub-diagonal nonzeros.
func (m *Matrix) OffDiagNNZ() int { return len(m.RowInd) - m.N }

// Col returns the row indices of column j (including the diagonal entry).
// The returned slice aliases the matrix storage and must not be modified.
func (m *Matrix) Col(j int) []int { return m.RowInd[m.ColPtr[j]:m.ColPtr[j+1]] }

// ColVal returns the values of column j aligned with Col(j).
// It returns nil for a pattern-only matrix.
func (m *Matrix) ColVal(j int) []float64 {
	if m.Val == nil {
		return nil
	}
	return m.Val[m.ColPtr[j]:m.ColPtr[j+1]]
}

// Has reports whether the lower-triangle position (i, j), i >= j, is stored.
func (m *Matrix) Has(i, j int) bool {
	col := m.Col(j)
	k := sort.SearchInts(col, i)
	return k < len(col) && col[k] == i
}

// At returns the value at (i, j) of the full symmetric matrix, or 0 if the
// position is not stored. It panics on a pattern-only matrix.
func (m *Matrix) At(i, j int) float64 {
	if m.Val == nil {
		panic("sparse: At on pattern-only matrix")
	}
	if i < j {
		i, j = j, i
	}
	col := m.Col(j)
	k := sort.SearchInts(col, i)
	if k < len(col) && col[k] == i {
		return m.ColVal(j)[k]
	}
	return 0
}

// Validate checks the structural invariants of the matrix.
func (m *Matrix) Validate() error {
	if m.N < 0 {
		return errors.New("sparse: negative dimension")
	}
	if len(m.ColPtr) != m.N+1 {
		return fmt.Errorf("sparse: len(ColPtr)=%d, want %d", len(m.ColPtr), m.N+1)
	}
	if m.N > 0 && m.ColPtr[0] != 0 {
		return errors.New("sparse: ColPtr[0] != 0")
	}
	for j := 0; j < m.N; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		if lo > hi {
			return fmt.Errorf("sparse: ColPtr decreases at column %d", j)
		}
		if hi > len(m.RowInd) {
			return fmt.Errorf("sparse: ColPtr[%d]=%d exceeds nnz %d", j+1, hi, len(m.RowInd))
		}
		if lo == hi || m.RowInd[lo] != j {
			return fmt.Errorf("sparse: column %d missing diagonal entry", j)
		}
		for k := lo + 1; k < hi; k++ {
			if m.RowInd[k] <= m.RowInd[k-1] {
				return fmt.Errorf("sparse: rows not strictly increasing in column %d", j)
			}
			if m.RowInd[k] >= m.N {
				return fmt.Errorf("sparse: row index %d out of range in column %d", m.RowInd[k], j)
			}
		}
	}
	if m.ColPtr[m.N] != len(m.RowInd) {
		return fmt.Errorf("sparse: ColPtr[N]=%d, want nnz %d", m.ColPtr[m.N], len(m.RowInd))
	}
	if m.Val != nil && len(m.Val) != len(m.RowInd) {
		return fmt.Errorf("sparse: len(Val)=%d, want %d", len(m.Val), len(m.RowInd))
	}
	return nil
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		N:      m.N,
		ColPtr: append([]int(nil), m.ColPtr...),
		RowInd: append([]int(nil), m.RowInd...),
	}
	if m.Val != nil {
		c.Val = append([]float64(nil), m.Val...)
	}
	return c
}

// PatternEqual reports whether two matrices have identical dimension and
// lower-triangle sparsity patterns.
func PatternEqual(a, b *Matrix) bool {
	if a.N != b.N || len(a.RowInd) != len(b.RowInd) {
		return false
	}
	for j := 0; j <= a.N; j++ {
		if a.ColPtr[j] != b.ColPtr[j] {
			return false
		}
	}
	for k, r := range a.RowInd {
		if b.RowInd[k] != r {
			return false
		}
	}
	return true
}

// NewPattern builds a pattern-only symmetric matrix of dimension n from an
// undirected edge list. Self-loops and duplicate edges are tolerated; the
// diagonal is always present.
func NewPattern(n int, edges [][2]int) (*Matrix, error) {
	cols := make([][]int, n)
	for _, e := range edges {
		i, j := e[0], e[1]
		if i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("sparse: edge (%d,%d) out of range for n=%d", i, j, n)
		}
		if i == j {
			continue
		}
		if i < j {
			i, j = j, i
		}
		cols[j] = append(cols[j], i)
	}
	return fromColumnLists(n, cols, nil), nil
}

// FromTriplets builds a symmetric matrix from triplet (coordinate) data.
// Entries may appear in either triangle; duplicates are summed. Every
// diagonal entry is materialized (with value 0 if absent and v != nil).
func FromTriplets(n int, rows, colsIdx []int, v []float64) (*Matrix, error) {
	if len(rows) != len(colsIdx) {
		return nil, errors.New("sparse: rows/cols length mismatch")
	}
	if v != nil && len(v) != len(rows) {
		return nil, errors.New("sparse: values length mismatch")
	}
	type ent struct {
		r int
		v float64
	}
	cols := make([][]ent, n)
	for k := range rows {
		i, j := rows[k], colsIdx[k]
		if i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for n=%d", i, j, n)
		}
		if i < j {
			i, j = j, i
		}
		var val float64
		if v != nil {
			val = v[k]
		}
		cols[j] = append(cols[j], ent{i, val})
	}
	colIdx := make([][]int, n)
	var colVal [][]float64
	if v != nil {
		colVal = make([][]float64, n)
	}
	for j := 0; j < n; j++ {
		sort.Slice(cols[j], func(a, b int) bool { return cols[j][a].r < cols[j][b].r })
		for _, e := range cols[j] {
			last := len(colIdx[j]) - 1
			if last >= 0 && colIdx[j][last] == e.r {
				if colVal != nil {
					colVal[j][last] += e.v
				}
				continue
			}
			colIdx[j] = append(colIdx[j], e.r)
			if colVal != nil {
				colVal[j] = append(colVal[j], e.v)
			}
		}
	}
	m := assembleWithDiagonal(n, colIdx, colVal, v != nil)
	return m, nil
}

// fromColumnLists assembles a matrix from per-column strictly-sub-diagonal
// row lists (unsorted, possibly with duplicates). Diagonals are added.
func fromColumnLists(n int, cols [][]int, vals [][]float64) *Matrix {
	colIdx := make([][]int, n)
	for j := 0; j < n; j++ {
		if len(cols[j]) == 0 {
			continue
		}
		c := append([]int(nil), cols[j]...)
		sort.Ints(c)
		out := c[:0]
		prev := -1
		for _, r := range c {
			if r != prev {
				out = append(out, r)
				prev = r
			}
		}
		colIdx[j] = out
	}
	return assembleWithDiagonal(n, colIdx, vals, vals != nil)
}

// assembleWithDiagonal builds the final CSC arrays, inserting diagonal
// entries where missing. colIdx[j] must be sorted, deduplicated row lists
// that may or may not include the diagonal.
func assembleWithDiagonal(n int, colIdx [][]int, colVal [][]float64, withVal bool) *Matrix {
	m := &Matrix{N: n, ColPtr: make([]int, n+1)}
	nnz := 0
	for j := 0; j < n; j++ {
		nnz += len(colIdx[j])
		if len(colIdx[j]) == 0 || colIdx[j][0] != j {
			nnz++
		}
	}
	m.RowInd = make([]int, 0, nnz)
	if withVal {
		m.Val = make([]float64, 0, nnz)
	}
	for j := 0; j < n; j++ {
		m.ColPtr[j] = len(m.RowInd)
		hasDiag := len(colIdx[j]) > 0 && colIdx[j][0] == j
		if !hasDiag {
			m.RowInd = append(m.RowInd, j)
			if withVal {
				m.Val = append(m.Val, 0)
			}
		}
		for k, r := range colIdx[j] {
			if r < j {
				panic(fmt.Sprintf("sparse: super-diagonal row %d in column %d", r, j))
			}
			m.RowInd = append(m.RowInd, r)
			if withVal {
				if colVal != nil && colVal[j] != nil {
					m.Val = append(m.Val, colVal[j][k])
				} else {
					m.Val = append(m.Val, 0)
				}
			}
		}
	}
	m.ColPtr[n] = len(m.RowInd)
	return m
}

// Adjacency returns the adjacency lists of the full symmetric pattern,
// excluding the diagonal. adj[i] is sorted.
func (m *Matrix) Adjacency() [][]int {
	deg := make([]int, m.N)
	for j := 0; j < m.N; j++ {
		for _, i := range m.Col(j)[1:] {
			deg[i]++
			deg[j]++
		}
	}
	adj := make([][]int, m.N)
	for i := range adj {
		adj[i] = make([]int, 0, deg[i])
	}
	for j := 0; j < m.N; j++ {
		for _, i := range m.Col(j)[1:] {
			adj[j] = append(adj[j], i)
			adj[i] = append(adj[i], j)
		}
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	return adj
}

// Degrees returns the number of off-diagonal neighbours of each node in the
// full symmetric pattern.
func (m *Matrix) Degrees() []int {
	deg := make([]int, m.N)
	for j := 0; j < m.N; j++ {
		for _, i := range m.Col(j)[1:] {
			deg[i]++
			deg[j]++
		}
	}
	return deg
}

// Permute returns B = A(order, order): the symmetric permutation of m where
// order[k] gives the original index of the k-th row/column of the result.
// order must be a permutation of 0..N-1.
func (m *Matrix) Permute(order []int) (*Matrix, error) {
	n := m.N
	if len(order) != n {
		return nil, fmt.Errorf("sparse: permutation length %d, want %d", len(order), n)
	}
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for newIdx, old := range order {
		if old < 0 || old >= n || inv[old] != -1 {
			return nil, errors.New("sparse: order is not a permutation")
		}
		inv[old] = newIdx
	}
	withVal := m.Val != nil
	colIdx := make([][]int, n)
	var colVal [][]float64
	if withVal {
		colVal = make([][]float64, n)
	}
	type ent struct {
		r int
		v float64
	}
	tmp := make([][]ent, n)
	for j := 0; j < n; j++ {
		cj := m.Col(j)
		var vj []float64
		if withVal {
			vj = m.ColVal(j)
		}
		for k, i := range cj {
			ni, nj := inv[i], inv[j]
			if ni < nj {
				ni, nj = nj, ni
			}
			var v float64
			if withVal {
				v = vj[k]
			}
			tmp[nj] = append(tmp[nj], ent{ni, v})
		}
	}
	for j := 0; j < n; j++ {
		sort.Slice(tmp[j], func(a, b int) bool { return tmp[j][a].r < tmp[j][b].r })
		colIdx[j] = make([]int, len(tmp[j]))
		if withVal {
			colVal[j] = make([]float64, len(tmp[j]))
		}
		for k, e := range tmp[j] {
			colIdx[j][k] = e.r
			if withVal {
				colVal[j][k] = e.v
			}
		}
	}
	return assembleWithDiagonal(n, colIdx, colVal, withVal), nil
}

// SetLaplacianValues fills in numerical values that make the matrix
// symmetric positive definite: each off-diagonal entry becomes -1 and each
// diagonal entry becomes the node degree plus shift (shift > 0 gives strict
// diagonal dominance). This mirrors the graph-Laplacian origin of the
// paper's finite-element and network test matrices.
func (m *Matrix) SetLaplacianValues(shift float64) {
	deg := m.Degrees()
	m.Val = make([]float64, len(m.RowInd))
	for j := 0; j < m.N; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		m.Val[lo] = float64(deg[j]) + shift
		for k := lo + 1; k < hi; k++ {
			m.Val[k] = -1
		}
	}
}

// Dense expands the full symmetric matrix into a dense representation.
// Intended for tests and small examples only.
func (m *Matrix) Dense() [][]float64 {
	if m.Val == nil {
		panic("sparse: Dense on pattern-only matrix")
	}
	d := make([][]float64, m.N)
	for i := range d {
		d[i] = make([]float64, m.N)
	}
	for j := 0; j < m.N; j++ {
		cj := m.Col(j)
		vj := m.ColVal(j)
		for k, i := range cj {
			d[i][j] = vj[k]
			d[j][i] = vj[k]
		}
	}
	return d
}

// String summarizes the matrix.
func (m *Matrix) String() string {
	return fmt.Sprintf("sparse.Matrix{n=%d, nnz(lower)=%d}", m.N, m.NNZ())
}
