package sparse

import "strings"

// Spy renders an ASCII "spy plot" of the lower triangle of the matrix,
// the textual analogue of the paper's Figure 2. Nonzero positions are
// drawn with '*', the diagonal with '\', and zeros with '.'.
//
// If maxDim > 0 and the matrix is larger, the plot is downsampled to at
// most maxDim x maxDim cells; a cell is nonzero if any position it covers
// is nonzero.
func (m *Matrix) Spy(maxDim int) string {
	n := m.N
	if n == 0 {
		return ""
	}
	dim := n
	if maxDim > 0 && maxDim < n {
		dim = maxDim
	}
	// grid[r][c] for lower-triangle cells only.
	grid := make([][]byte, dim)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", dim))
		for c := 0; c <= r; c++ {
			grid[r][c] = '.'
		}
	}
	cell := func(idx int) int { return idx * dim / n }
	for j := 0; j < n; j++ {
		for _, i := range m.Col(j) {
			r, c := cell(i), cell(j)
			if r == c {
				if grid[r][c] != '*' {
					grid[r][c] = '\\'
				}
			} else {
				grid[r][c] = '*'
			}
		}
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SpyWithBoundaries renders a spy plot with '|' markers inserted after the
// listed column boundaries (exclusive end columns of clusters). It is used
// to visualize the cluster structure found by the partitioner, as in the
// discussion of Figure 2. The matrix is rendered at full resolution, so it
// should be small (n <= ~120).
func (m *Matrix) SpyWithBoundaries(bounds []int) string {
	n := m.N
	mark := make(map[int]bool, len(bounds))
	for _, b := range bounds {
		mark[b] = true
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			switch {
			case i == j:
				sb.WriteByte('\\')
			case m.Has(i, j):
				sb.WriteByte('*')
			default:
				sb.WriteByte('.')
			}
			if mark[j+1] && j < i {
				sb.WriteByte('|')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
