package symbolic

import "repro/internal/sparse"

// PostOrderPerm composes a fill-reducing permutation with a postordering
// of the resulting elimination tree. The composed ordering produces a
// factor with exactly the same fill (postordering relabels the etree
// without changing it), but with every subtree numbered contiguously —
// which makes supernodes and their etree parents adjacent, so cluster
// relaxation (Relax) finds far more merge opportunities.
//
// perm must satisfy perm[k] = original index of the k-th variable (the
// convention of order.MMD). The returned slice follows it.
func PostOrderPerm(m *sparse.Matrix, perm []int) ([]int, error) {
	pm, err := m.Permute(perm)
	if err != nil {
		return nil, err
	}
	parent := EliminationTree(pm)
	post := PostOrder(parent)
	composed := make([]int, len(perm))
	for k, v := range post {
		composed[k] = perm[v]
	}
	return composed, nil
}
