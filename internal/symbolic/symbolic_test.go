package symbolic

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sparse"
)

// bruteFactor plays the elimination game on dense sets: the reference
// implementation for both the factor structure and the elimination tree.
func bruteFactor(m *sparse.Matrix) [][]int {
	n := m.N
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for j := 0; j < n; j++ {
		for _, i := range m.Col(j)[1:] {
			adj[j][i] = true
			adj[i][j] = true
		}
	}
	cols := make([][]int, n)
	for v := 0; v < n; v++ {
		var higher []int
		for u := range adj[v] {
			if u > v {
				higher = append(higher, u)
			}
		}
		sort.Ints(higher)
		cols[v] = append([]int{v}, higher...)
		for a := 0; a < len(higher); a++ {
			for b := a + 1; b < len(higher); b++ {
				adj[higher[a]][higher[b]] = true
				adj[higher[b]][higher[a]] = true
			}
		}
	}
	return cols
}

func bruteParent(cols [][]int) []int {
	parent := make([]int, len(cols))
	for j := range cols {
		if len(cols[j]) > 1 {
			parent[j] = cols[j][1]
		} else {
			parent[j] = -1
		}
	}
	return parent
}

func checkFactorMatchesBrute(t *testing.T, m *sparse.Matrix) {
	t.Helper()
	f := Analyze(m)
	want := bruteFactor(m)
	for j := 0; j < m.N; j++ {
		got := f.Col(j)
		if len(got) != len(want[j]) {
			t.Fatalf("col %d: got %v, want %v", j, got, want[j])
		}
		for k := range got {
			if got[k] != want[j][k] {
				t.Fatalf("col %d: got %v, want %v", j, got, want[j])
			}
		}
	}
	wantParent := bruteParent(want)
	for j, p := range f.Parent {
		if p != wantParent[j] {
			t.Fatalf("parent[%d] = %d, want %d", j, p, wantParent[j])
		}
	}
}

func TestAnalyzeSmallKnown(t *testing.T) {
	// Arrow matrix: column 0 connected to everyone. No fill (already
	// chordal with this ordering): struct(j) = {j, n-1}? No: arrow head at
	// 0 means col 0 = everything, and eliminating 0 fills in ALL pairs.
	m, _ := sparse.NewPattern(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	f := Analyze(m)
	if f.NNZ() != 10 { // complete fill: 4+3+2+1
		t.Errorf("arrow-head fill nnz = %d, want 10", f.NNZ())
	}
	// Reversed arrow (hub last) has no fill.
	m2, _ := sparse.NewPattern(4, [][2]int{{3, 0}, {3, 1}, {3, 2}})
	f2 := Analyze(m2)
	if f2.NNZ() != m2.NNZ() {
		t.Errorf("hub-last fill nnz = %d, want %d", f2.NNZ(), m2.NNZ())
	}
	for j := 0; j < 3; j++ {
		if f2.Parent[j] != 3 {
			t.Errorf("parent[%d] = %d, want 3", j, f2.Parent[j])
		}
	}
	if f2.Parent[3] != -1 {
		t.Errorf("root parent = %d, want -1", f2.Parent[3])
	}
}

func TestAnalyzeMatchesBruteForceRandom(t *testing.T) {
	f := func(seed int64) bool {
		m := gen.Random(30, 1.5, seed)
		fac := Analyze(m)
		want := bruteFactor(m)
		for j := 0; j < m.N; j++ {
			got := fac.Col(j)
			if len(got) != len(want[j]) {
				return false
			}
			for k := range got {
				if got[k] != want[j][k] {
					return false
				}
			}
		}
		wp := bruteParent(want)
		for j := range wp {
			if fac.Parent[j] != wp[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEtreeRegressionColumnDriven(t *testing.T) {
	// Regression for the column-driven ancestor walk bug: requires an
	// entry pattern where a later column's walk meets a higher ancestor.
	// A (lower): (4,0), (2,1), (4,1), (3,2).
	m, _ := sparse.NewPattern(5, [][2]int{{4, 0}, {2, 1}, {4, 1}, {3, 2}})
	checkFactorMatchesBrute(t, m)
	f := Analyze(m)
	if f.Parent[2] != 3 {
		t.Fatalf("parent[2] = %d, want 3", f.Parent[2])
	}
}

func TestPostOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		m := gen.Random(40, 1.0, seed)
		fac := Analyze(m)
		post := PostOrder(fac.Parent)
		if !order.IsPermutation(post) {
			return false
		}
		pos := make([]int, len(post))
		for k, v := range post {
			pos[v] = k
		}
		for j, p := range fac.Parent {
			if p != -1 && pos[j] > pos[p] {
				return false // child after parent
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPostOrderChain(t *testing.T) {
	parent := []int{1, 2, 3, -1}
	post := PostOrder(parent)
	want := []int{0, 1, 2, 3}
	for k := range want {
		if post[k] != want[k] {
			t.Fatalf("post = %v, want %v", post, want)
		}
	}
}

func TestHasAndPattern(t *testing.T) {
	m, _ := sparse.NewPattern(5, [][2]int{{0, 1}, {0, 2}, {3, 4}})
	f := Analyze(m)
	if !f.Has(2, 0) || f.Has(3, 0) {
		t.Error("Has wrong")
	}
	p := f.Pattern()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NNZ() != f.NNZ() {
		t.Error("pattern nnz mismatch")
	}
}

func TestSupernodesPartition(t *testing.T) {
	f := func(seed int64) bool {
		m := gen.Random(50, 1.2, seed)
		p := order.MMD(m)
		pm, err := m.Permute(p)
		if err != nil {
			return false
		}
		fac := Analyze(pm)
		sn := fac.Supernodes()
		// Valid partition of 0..n-1.
		if sn[0] != 0 || sn[len(sn)-1] != m.N {
			return false
		}
		for k := 1; k < len(sn); k++ {
			if sn[k] <= sn[k-1] {
				return false
			}
		}
		// Within a supernode, column structures nest exactly.
		for k := 0; k+1 < len(sn); k++ {
			for j := sn[k] + 1; j < sn[k+1]; j++ {
				if fac.Parent[j-1] != j || fac.ColLen(j-1) != fac.ColLen(j)+1 {
					return false
				}
				// struct(j-1) minus its diagonal equals struct(j).
				a, b := fac.Col(j - 1)[1:], fac.Col(j)
				for x := range a {
					if a[x] != b[x] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSupernodesDenseTrailing(t *testing.T) {
	// Complete graph: one supernode spanning everything.
	var edges [][2]int
	for i := 0; i < 6; i++ {
		for j := 0; j < i; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	m, _ := sparse.NewPattern(6, edges)
	f := Analyze(m)
	sn := f.Supernodes()
	if len(sn) != 2 || sn[0] != 0 || sn[1] != 6 {
		t.Fatalf("supernodes of K6 = %v, want [0 6]", sn)
	}
}

func TestLap30FillNearPaper(t *testing.T) {
	// Paper Table 1: LAP30 with Liu's MMD gives 16697 factor nonzeros.
	// Our MMD differs in tie-breaking, so require the same ballpark.
	m := gen.Lap30()
	p := order.MMD(m)
	pm, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	f := Analyze(pm)
	nnz := f.NNZ()
	t.Logf("LAP30 MMD factor nnz = %d (paper: 16697)", nnz)
	if nnz < 12000 || nnz > 22000 {
		t.Errorf("LAP30 factor nnz = %d, out of plausible MMD range [12000,22000]", nnz)
	}
	// MMD must beat the natural ordering (which is itself banded and thus
	// already decent on grid problems).
	fnat := Analyze(m)
	if nnz >= fnat.NNZ() {
		t.Errorf("MMD fill %d not better than natural %d", nnz, fnat.NNZ())
	}
}

func TestSuiteFillNearPaper(t *testing.T) {
	// All five matrices should land within a factor of ~2 of the paper's
	// factor nonzero counts (three are synthetic approximations).
	for _, tm := range gen.Suite() {
		m := tm.Build()
		pm, err := m.Permute(order.MMD(m))
		if err != nil {
			t.Fatal(err)
		}
		f := Analyze(pm)
		nnz := f.NNZ()
		t.Logf("%s: factor nnz = %d (paper: %d)", tm.Name, nnz, tm.PaperFactorNNZ)
		lo, hi := tm.PaperFactorNNZ/2, tm.PaperFactorNNZ*2
		if nnz < lo || nnz > hi {
			t.Errorf("%s: factor nnz %d outside [%d,%d]", tm.Name, nnz, lo, hi)
		}
	}
}

func TestSortIntsLarge(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%200) + 30
		if n < 0 {
			n = -n
		}
		a := make([]int, n)
		x := uint64(seed)
		for i := range a {
			x = x*6364136223846793005 + 1442695040888963407
			a[i] = int(x % 1000)
		}
		sortInts(a)
		return sort.IntsAreSorted(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnalyzeLap30MMD(b *testing.B) {
	m := gen.Lap30()
	pm, _ := m.Permute(order.MMD(m))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(pm)
	}
}
