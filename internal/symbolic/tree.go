package symbolic

// Elimination-forest utilities shared by consumers that walk the tree as
// a tree (rather than through the factor structure): the nested-dissection
// aware subtree-to-subcube mapper of internal/strategy is the primary
// client. All three functions accept any forest in the Parent convention
// of EliminationTree (Parent[j] = parent of j, -1 for roots); none of them
// assume the heap property parent[j] > j, so they also work on relabeled
// or synthetic forests.

// Roots returns the roots of the forest in increasing order.
func Roots(parent []int) []int {
	var roots []int
	for j, p := range parent {
		if p == -1 {
			roots = append(roots, j)
		}
	}
	return roots
}

// Children returns the children lists of the forest; Children(parent)[j]
// holds the children of j in increasing order.
func Children(parent []int) [][]int {
	n := len(parent)
	counts := make([]int, n)
	for _, p := range parent {
		if p != -1 {
			counts[p]++
		}
	}
	children := make([][]int, n)
	for j, c := range counts {
		if c > 0 {
			children[j] = make([]int, 0, c)
		}
	}
	for j, p := range parent {
		if p != -1 {
			children[p] = append(children[p], j)
		}
	}
	return children
}

// SubtreeSums accumulates a per-node weight vector up the forest:
// out[j] = weight[j] + sum of out[c] over the children c of j. For the
// elimination tree with per-column work weights this is the paper's
// subtree work — the quantity proportional mapping splits processor sets
// by.
func SubtreeSums(parent []int, weight []int64) []int64 {
	if len(weight) != len(parent) {
		panic("symbolic: SubtreeSums weight length does not match forest")
	}
	out := make([]int64, len(parent))
	for _, j := range PostOrder(parent) {
		out[j] += weight[j]
		if p := parent[j]; p != -1 {
			out[p] += out[j]
		}
	}
	return out
}
