package symbolic

import (
	"reflect"
	"testing"

	"repro/internal/sparse"
)

// treeFixture is a small forest in the Parent convention:
//
//	  3        5
//	 / \       |
//	0   2      4
//	    |
//	    1
var treeFixture = []int{3, 2, 3, -1, 5, -1}

func TestRoots(t *testing.T) {
	if got, want := Roots(treeFixture), []int{3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Roots = %v, want %v", got, want)
	}
}

func TestChildren(t *testing.T) {
	children := Children(treeFixture)
	want := [][]int{nil, nil, {1}, {0, 2}, nil, {4}}
	for j := range want {
		if len(children[j]) == 0 && len(want[j]) == 0 {
			continue
		}
		if !reflect.DeepEqual(children[j], want[j]) {
			t.Errorf("Children[%d] = %v, want %v", j, children[j], want[j])
		}
	}
}

func TestSubtreeSums(t *testing.T) {
	weight := []int64{1, 2, 4, 8, 16, 32}
	got := SubtreeSums(treeFixture, weight)
	want := []int64{1, 2, 6, 15, 16, 48}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SubtreeSums = %v, want %v", got, want)
	}
}

func TestSubtreeSumsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SubtreeSums with mismatched weight length did not panic")
		}
	}()
	SubtreeSums(treeFixture, []int64{1})
}

// TestTreeUtilitiesOnEliminationTree checks the utilities against a real
// elimination tree: the subtree sum at each root counts exactly the
// columns of its tree, and every column reaches exactly one root.
func TestTreeUtilitiesOnEliminationTree(t *testing.T) {
	m := tridiag(8)
	parent := EliminationTree(m)
	ones := make([]int64, len(parent))
	for i := range ones {
		ones[i] = 1
	}
	sums := SubtreeSums(parent, ones)
	var total int64
	for _, r := range Roots(parent) {
		total += sums[r]
	}
	if total != int64(m.N) {
		t.Errorf("root subtree sums total %d, want %d", total, m.N)
	}
	children := Children(parent)
	seen := 0
	for j := range parent {
		seen += len(children[j])
	}
	if seen+len(Roots(parent)) != m.N {
		t.Errorf("children lists cover %d nodes + %d roots, want %d",
			seen, len(Roots(parent)), m.N)
	}
}

// tridiag builds a symmetric tridiagonal pattern (lower triangle).
func tridiag(n int) *sparse.Matrix {
	m := &sparse.Matrix{N: n, ColPtr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		m.ColPtr[j] = len(m.RowInd)
		m.RowInd = append(m.RowInd, j)
		if j+1 < n {
			m.RowInd = append(m.RowInd, j+1)
		}
	}
	m.ColPtr[n] = len(m.RowInd)
	return m
}
