package symbolic

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/order"
)

func analyzedFor(seed int64, n int) *Factor {
	m := gen.Random(n, 1.3, seed)
	pm, err := m.Permute(order.MMD(m))
	if err != nil {
		panic(err)
	}
	return Analyze(pm)
}

func TestRelaxZeroFracIsIdentity(t *testing.T) {
	f := analyzedFor(1, 50)
	out, stats := Relax(f, 0)
	if out != f {
		t.Fatal("maxFrac=0 must return the input factor")
	}
	if stats.Merges != 0 || stats.PaddedNNZ != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.SupernodesBefore != stats.SupernodesAfter {
		t.Fatalf("supernode counts differ: %+v", stats)
	}
}

func TestRelaxSupersetProperty(t *testing.T) {
	fc := func(seed int64) bool {
		f := analyzedFor(seed, 45)
		out, stats := Relax(f, 0.25)
		if out.N != f.N {
			return false
		}
		if out.NNZ() < f.NNZ() {
			return false
		}
		if stats.PaddedNNZ != out.NNZ()-f.NNZ() {
			return false
		}
		// Every original entry survives.
		for j := 0; j < f.N; j++ {
			for _, i := range f.Col(j) {
				if !out.Has(i, j) {
					return false
				}
			}
		}
		// Fewer or equal supernodes.
		return stats.SupernodesAfter <= stats.SupernodesBefore
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRelaxClosure(t *testing.T) {
	// The padded factor must satisfy the fill property: for every column
	// k and rows j <= i in struct(k), (i, j) must be present. This is what
	// lets the update enumeration run on padded factors.
	fc := func(seed int64) bool {
		f := analyzedFor(seed, 40)
		out, _ := Relax(f, 0.4)
		for k := 0; k < out.N; k++ {
			col := out.Col(k)[1:]
			for a := 0; a < len(col); a++ {
				for b := a; b < len(col); b++ {
					if !out.Has(col[b], col[a]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRelaxMergesOnLap30(t *testing.T) {
	m := gen.Lap30()
	pm, err := m.Permute(order.MMD(m))
	if err != nil {
		t.Fatal(err)
	}
	f := Analyze(pm)
	out, stats := Relax(f, 0.15)
	t.Logf("LAP30 relax 0.15: %v", stats)
	if stats.Merges == 0 {
		t.Error("expected at least one merge on LAP30 at 15% padding")
	}
	if stats.SupernodesAfter >= stats.SupernodesBefore {
		t.Errorf("supernodes %d -> %d, expected a reduction",
			stats.SupernodesBefore, stats.SupernodesAfter)
	}
	// Padding stays bounded: far less than the factor itself.
	if stats.PaddedNNZ > f.NNZ()/2 {
		t.Errorf("padding %d too large vs nnz %d", stats.PaddedNNZ, f.NNZ())
	}
	if out.NNZ() != f.NNZ()+stats.PaddedNNZ {
		t.Error("stats inconsistent with output")
	}
}

func TestRelaxMoreAggressiveMoreMerges(t *testing.T) {
	f := analyzedFor(7, 60)
	_, s1 := Relax(f, 0.05)
	_, s2 := Relax(f, 0.5)
	if s2.SupernodesAfter > s1.SupernodesAfter {
		t.Errorf("more padding budget produced more supernodes: %d vs %d",
			s2.SupernodesAfter, s1.SupernodesAfter)
	}
}

func TestPostOrderPermPreservesFill(t *testing.T) {
	fc := func(seed int64) bool {
		m := gen.Random(50, 1.3, seed)
		perm := order.MMD(m)
		post, err := PostOrderPerm(m, perm)
		if err != nil || !order.IsPermutation(post) {
			return false
		}
		pm1, _ := m.Permute(perm)
		pm2, _ := m.Permute(post)
		return Analyze(pm1).NNZ() == Analyze(pm2).NNZ()
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPostOrderBoostsRelaxation(t *testing.T) {
	m := gen.Lap30()
	perm := order.MMD(m)
	post, err := PostOrderPerm(m, perm)
	if err != nil {
		t.Fatal(err)
	}
	pmRaw, _ := m.Permute(perm)
	pmPost, _ := m.Permute(post)
	_, sRaw := Relax(Analyze(pmRaw), 0.15)
	_, sPost := Relax(Analyze(pmPost), 0.15)
	t.Logf("raw MMD:       %v", sRaw)
	t.Logf("postordered:   %v", sPost)
	if sPost.Merges < sRaw.Merges {
		t.Errorf("postordering reduced merges: %d vs %d", sPost.Merges, sRaw.Merges)
	}
}
