// Package symbolic implements the symbolic factorization phase of sparse
// Cholesky: the elimination tree, the nonzero structure of the factor L,
// and the detection of fundamental supernodes.
//
// The paper's partitioner (Section 3) "starts with the zero-nonzero
// structure of the filled sparse matrix obtained after the symbolic
// factorization phase has been completed"; this package produces that
// structure. Supernodes are the "clusters" of Section 3.1: strips of
// consecutive columns with a dense triangular block at the top and dense
// rectangular blocks below.
package symbolic

import (
	"fmt"

	"repro/internal/sparse"
)

// Factor holds the nonzero structure of the Cholesky factor L of a
// symmetric matrix, in compressed sparse column form over the lower
// triangle. The first entry of every column is its diagonal; row indices
// are strictly increasing within a column.
type Factor struct {
	N      int
	ColPtr []int
	RowInd []int
	// Parent is the elimination tree: Parent[j] is the parent of column j,
	// or -1 for a root.
	Parent []int
}

// NNZ returns the number of structural nonzeros of L (lower, incl. diag).
func (f *Factor) NNZ() int { return len(f.RowInd) }

// Col returns the sorted row indices of column j, including the diagonal.
// The slice aliases internal storage.
func (f *Factor) Col(j int) []int { return f.RowInd[f.ColPtr[j]:f.ColPtr[j+1]] }

// ColLen returns the number of nonzeros in column j including the diagonal.
func (f *Factor) ColLen(j int) int { return f.ColPtr[j+1] - f.ColPtr[j] }

// Has reports whether position (i, j), i >= j, is in the factor structure.
func (f *Factor) Has(i, j int) bool {
	col := f.Col(j)
	lo, hi := 0, len(col)
	for lo < hi {
		mid := (lo + hi) / 2
		if col[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(col) && col[lo] == i
}

// Pattern converts the factor structure to a sparse.Matrix pattern
// (no values), e.g. for spy plots.
func (f *Factor) Pattern() *sparse.Matrix {
	return &sparse.Matrix{
		N:      f.N,
		ColPtr: append([]int(nil), f.ColPtr...),
		RowInd: append([]int(nil), f.RowInd...),
	}
}

// EliminationTree computes the elimination tree of the symmetric matrix m
// using Liu's algorithm with path compression. parent[j] = -1 marks roots.
//
// Entries must be processed grouped by row in increasing row order (the
// ancestor pointers are only monotone under that schedule), so the lower
// triangle is first bucketed into row lists.
func EliminationTree(m *sparse.Matrix) []int {
	n := m.N
	// rows[i] = columns j < i with A[i][j] != 0.
	counts := make([]int, n)
	for j := 0; j < n; j++ {
		for _, i := range m.Col(j)[1:] {
			counts[i]++
		}
	}
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = make([]int, 0, counts[i])
	}
	for j := 0; j < n; j++ {
		for _, i := range m.Col(j)[1:] {
			rows[i] = append(rows[i], j)
		}
	}
	parent := make([]int, n)
	ancestor := make([]int, n)
	for i := 0; i < n; i++ {
		parent[i] = -1
		ancestor[i] = -1
		for _, j := range rows[i] {
			// Walk from j to the root of its subtree, compressing the path
			// onto i and grafting the root under i.
			for j != -1 && j < i {
				next := ancestor[j]
				ancestor[j] = i
				if next == -1 {
					parent[j] = i
				}
				j = next
			}
		}
	}
	return parent
}

// PostOrder returns a postordering of the forest given by parent:
// every node appears after all of its children. Children are visited in
// increasing order, making the result deterministic.
func PostOrder(parent []int) []int {
	n := len(parent)
	head := make([]int, n) // first child
	next := make([]int, n) // next sibling
	for i := range head {
		head[i] = -1
		next[i] = -1
	}
	var roots []int
	// Build child lists in decreasing order so traversal sees increasing.
	for j := n - 1; j >= 0; j-- {
		p := parent[j]
		if p == -1 {
			roots = append(roots, j)
			continue
		}
		next[j] = head[p]
		head[p] = j
	}
	// roots currently in decreasing order; reverse for determinism.
	for i, k := 0, len(roots)-1; i < k; i, k = i+1, k-1 {
		roots[i], roots[k] = roots[k], roots[i]
	}
	post := make([]int, 0, n)
	stack := make([]int, 0, 64)
	var childBuf []int
	for _, r := range roots {
		stack = append(stack, r)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if head[v] != -1 {
				// Push children in reverse so they pop in increasing order.
				childBuf = childBuf[:0]
				for c := head[v]; c != -1; c = next[c] {
					childBuf = append(childBuf, c)
				}
				head[v] = -1 // children pushed once
				for k := len(childBuf) - 1; k >= 0; k-- {
					stack = append(stack, childBuf[k])
				}
				continue
			}
			stack = stack[:len(stack)-1]
			post = append(post, v)
		}
	}
	if len(post) != n {
		panic(fmt.Sprintf("symbolic: postorder produced %d of %d", len(post), n))
	}
	return post
}

// Analyze computes the full symbolic factorization of m: the elimination
// tree and the complete nonzero structure of L. It runs in time
// proportional to the size of the output structure.
func Analyze(m *sparse.Matrix) *Factor {
	n := m.N
	parent := EliminationTree(m)
	// Children lists.
	childHead := make([]int, n)
	childNext := make([]int, n)
	for i := range childHead {
		childHead[i] = -1
		childNext[i] = -1
	}
	for j := n - 1; j >= 0; j-- {
		if p := parent[j]; p != -1 {
			childNext[j] = childHead[p]
			childHead[p] = j
		}
	}
	// Column merge: struct(j) = Acol(j) U union over children c of
	// (struct(c) minus {c}), all restricted to rows >= j.
	cols := make([][]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		var buf []int
		mark[j] = j
		buf = append(buf, j)
		for _, i := range m.Col(j)[1:] {
			if mark[i] != j {
				mark[i] = j
				buf = append(buf, i)
			}
		}
		for c := childHead[j]; c != -1; c = childNext[c] {
			for _, i := range cols[c][1:] { // skip child's diagonal
				if i == j {
					continue
				}
				if mark[i] != j {
					mark[i] = j
					buf = append(buf, i)
				}
			}
		}
		sortInts(buf)
		cols[j] = buf
	}
	f := &Factor{N: n, ColPtr: make([]int, n+1), Parent: parent}
	nnz := 0
	for j := 0; j < n; j++ {
		nnz += len(cols[j])
	}
	f.RowInd = make([]int, 0, nnz)
	for j := 0; j < n; j++ {
		f.ColPtr[j] = len(f.RowInd)
		f.RowInd = append(f.RowInd, cols[j]...)
	}
	f.ColPtr[n] = len(f.RowInd)
	return f
}

// sortInts is an insertion/quick hybrid for the small per-column buffers.
func sortInts(a []int) {
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			for k := i; k > 0 && a[k] < a[k-1]; k-- {
				a[k], a[k-1] = a[k-1], a[k]
			}
		}
		return
	}
	quickSortInts(a)
}

func quickSortInts(a []int) {
	for len(a) > 24 {
		p := partitionInts(a)
		if p < len(a)-p {
			quickSortInts(a[:p])
			a = a[p+1:]
		} else {
			quickSortInts(a[p+1:])
			a = a[:p]
		}
	}
	for i := 1; i < len(a); i++ {
		for k := i; k > 0 && a[k] < a[k-1]; k-- {
			a[k], a[k-1] = a[k-1], a[k]
		}
	}
}

func partitionInts(a []int) int {
	mid := len(a) / 2
	if a[mid] < a[0] {
		a[mid], a[0] = a[0], a[mid]
	}
	if a[len(a)-1] < a[mid] {
		a[len(a)-1], a[mid] = a[mid], a[len(a)-1]
		if a[mid] < a[0] {
			a[mid], a[0] = a[0], a[mid]
		}
	}
	pivot := a[mid]
	a[mid], a[len(a)-2] = a[len(a)-2], a[mid]
	i := 0
	for k := 1; k < len(a)-2; k++ {
		if a[k] < pivot {
			i++
			if i != k {
				a[i], a[k] = a[k], a[i]
			}
		}
	}
	a[i+1], a[len(a)-2] = a[len(a)-2], a[i+1]
	return i + 1
}

// FillIn returns the number of structural nonzeros added by factorization.
func FillIn(m *sparse.Matrix, f *Factor) int { return f.NNZ() - m.NNZ() }

// Supernodes returns the fundamental supernode partition of the factor:
// starts[k] is the first column of supernode k, and starts has one extra
// final entry equal to N. Columns j-1 and j share a supernode iff
// Parent[j-1] == j and ColLen(j-1) == ColLen(j)+1, the classical
// fundamental-supernode condition (structure containment along the etree
// makes the count test exact).
func (f *Factor) Supernodes() []int {
	starts := []int{}
	for j := 0; j < f.N; j++ {
		if j == 0 {
			starts = append(starts, 0)
			continue
		}
		if f.Parent[j-1] == j && f.ColLen(j-1) == f.ColLen(j)+1 {
			continue
		}
		starts = append(starts, j)
	}
	starts = append(starts, f.N)
	return starts
}
