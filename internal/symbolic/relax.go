package symbolic

import (
	"fmt"

	"repro/internal/sparse"
)

// RelaxStats reports what a relaxed amalgamation did.
type RelaxStats struct {
	// Merges is the number of supernode merges accepted.
	Merges int
	// PaddedNNZ is the number of explicit zeros added to the structure
	// (including closure fill induced by the padding).
	PaddedNNZ int
	// Supernodes counts the supernodes before and after.
	SupernodesBefore, SupernodesAfter int
}

func (s RelaxStats) String() string {
	return fmt.Sprintf("relax: %d merges, %d padded zeros, supernodes %d -> %d",
		s.Merges, s.PaddedNNZ, s.SupernodesBefore, s.SupernodesAfter)
}

// Relax implements the paper's "blocks are formed by including small
// regions that correspond to zeros in the factored matrix in order to
// obtain larger blocks" (Section 3.1): adjacent fundamental supernodes are
// merged when the explicit zeros this adds stay within maxFrac of the
// merged block's area. The returned factor is a closed superset of f
// (padding plus the fill it induces), so every downstream consumer — the
// partitioner, the work model, the traffic simulator — operates on it
// unchanged; the padded zeros are simply carried (and paid for) as if they
// were nonzeros, exactly as a supernodal code stores them.
//
// maxFrac <= 0 returns f itself.
func Relax(f *Factor, maxFrac float64) (*Factor, RelaxStats) {
	stats := RelaxStats{}
	sn := f.Supernodes()
	stats.SupernodesBefore = len(sn) - 1
	if maxFrac <= 0 {
		stats.SupernodesAfter = stats.SupernodesBefore
		return f, stats
	}
	n := f.N

	// Greedy left-to-right merging over adjacent supernode strips.
	type group struct {
		lo, hi int   // column range, inclusive
		below  []int // union of rows > hi, sorted
		real   int   // real nonzeros inside the group's columns
	}
	mkGroup := func(lo, hi int) group {
		g := group{lo: lo, hi: hi}
		seen := map[int]bool{}
		for j := lo; j <= hi; j++ {
			g.real += f.ColLen(j)
			for _, r := range f.Col(j) {
				if r > hi && !seen[r] {
					seen[r] = true
					g.below = append(g.below, r)
				}
			}
		}
		sortInts(g.below)
		return g
	}
	merged := []group{}
	cur := mkGroup(sn[0], sn[1]-1)
	for k := 1; k+1 < len(sn); k++ {
		next := mkGroup(sn[k], sn[k+1]-1)
		// Candidate merge of cur and next.
		lo, hi := cur.lo, next.hi
		width := hi - lo + 1
		seen := map[int]bool{}
		var below []int
		for _, r := range cur.below {
			if r > hi && !seen[r] {
				seen[r] = true
				below = append(below, r)
			}
		}
		for _, r := range next.below {
			if r > hi && !seen[r] {
				seen[r] = true
				below = append(below, r)
			}
		}
		area := width*(width+1)/2 + width*len(below)
		real := cur.real + next.real
		zeros := area - real
		if zeros < 0 {
			panic("symbolic: padded area below real count")
		}
		if float64(zeros) <= maxFrac*float64(area) {
			sortInts(below)
			cur = group{lo: lo, hi: hi, below: below, real: real}
			stats.Merges++
			continue
		}
		merged = append(merged, cur)
		cur = next
	}
	merged = append(merged, cur)

	// Build the padded lower-triangular pattern and close it (padding can
	// break the fill property; re-analyzing restores it).
	colIdx := make([][]int, n)
	for _, g := range merged {
		for j := g.lo; j <= g.hi; j++ {
			rows := make([]int, 0, g.hi-j+1+len(g.below))
			for r := j; r <= g.hi; r++ {
				rows = append(rows, r)
			}
			rows = append(rows, g.below...)
			colIdx[j] = rows
		}
	}
	ptr := make([]int, n+1)
	nnz := 0
	for j := 0; j < n; j++ {
		nnz += len(colIdx[j])
	}
	rowInd := make([]int, 0, nnz)
	for j := 0; j < n; j++ {
		ptr[j] = len(rowInd)
		rowInd = append(rowInd, colIdx[j]...)
	}
	ptr[n] = len(rowInd)
	padded := &sparse.Matrix{N: n, ColPtr: ptr, RowInd: rowInd}
	if err := padded.Validate(); err != nil {
		panic(fmt.Sprintf("symbolic: relax produced invalid pattern: %v", err))
	}
	out := Analyze(padded)
	stats.PaddedNNZ = out.NNZ() - f.NNZ()
	stats.SupernodesAfter = len(out.Supernodes()) - 1
	return out, stats
}
