package lint

import (
	"go/ast"
	"go/types"
)

// randCreators are the math/rand package-level functions that construct
// explicitly seeded generators rather than drawing from the global
// source; they are the reproducible way to use the package.
var randCreators = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// NonDeterminism flags the three nondeterminism sources that would break
// the bit-reproducibility claims of the determinism-critical packages:
// time.Now (wall-clock values leaking into results), global math/rand
// calls (process-wide source, seeded per run since Go 1.20), and `go`
// statements (scheduling order). The real execution engines and the
// wall-clock measurement harness intentionally use goroutines and timers
// — their results are pinned bit-for-bit against serial references by the
// *BitIdentity tests — and carry explicit suppressions citing those
// tests.
var NonDeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc: "no time.Now, global math/rand, or go statements in packages claiming " +
		"bit-reproducibility; engines and the measurement harness suppress with the test that pins them",
	Run: func(pass *Pass) {
		if !detCritical[pass.Pkg.Name] {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(x.Pos(),
						"go statement in bit-reproducible package %s; results must not depend on goroutine scheduling — pin with a bit-identity test and suppress, or compute serially",
						pass.Pkg.Name)
				case *ast.CallExpr:
					sel, ok := x.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil {
						return true
					}
					switch fn.Pkg().Path() {
					case "time":
						if fn.Name() == "Now" {
							pass.Reportf(x.Pos(),
								"time.Now in bit-reproducible package %s; wall-clock values must not reach simulated results — keep timing in measurement-only paths and suppress with the pinning test",
								pass.Pkg.Name)
						}
					case "math/rand", "math/rand/v2":
						sig, _ := fn.Type().(*types.Signature)
						if sig != nil && sig.Recv() == nil && !randCreators[fn.Name()] {
							pass.Reportf(x.Pos(),
								"global math/rand call rand.%s draws from the process-wide source; use rand.New(rand.NewSource(seed)) so streams replay bit-for-bit",
								fn.Name())
						}
					}
				}
				return true
			})
		}
	},
}
