package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over map-typed expressions in the
// determinism-critical packages. Go randomizes map iteration order per
// run, so any map range on the path to simulated spans, traffic totals,
// schedules or factor values is a latent bit-reproducibility bug (the
// class audited at exec.parallelFactorize's predecessor-set build).
// Either iterate sorted keys, collect insertion-ordered slices alongside
// the map, or suppress with an order-insensitivity argument:
//
//	//repro:allow maporder -- result is a map copy; per-key writes commute
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "range over a map has nondeterministic order; in determinism-critical packages " +
		"iterate sorted keys or suppress with an order-insensitivity argument",
	Run: func(pass *Pass) {
		if !detCritical[pass.Pkg.Name] {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(rs.Pos(),
						"range over map %s has nondeterministic iteration order in determinism-critical package %s; sort the keys or suppress with an order-insensitivity reason",
						types.ExprString(rs.X), pass.Pkg.Name)
				}
				return true
			})
		}
	},
}
