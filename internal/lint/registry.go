package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// All returns every shipped analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, PanicPolicy, ProcGuard, LockedField, NonDeterminism}
}

// Select resolves a comma-separated analyzer-name list against All().
func Select(only string) ([]*Analyzer, error) {
	if only == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(only, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// detCritical names the determinism-critical packages: every package on
// the path from matrix pattern to simulated or executed numbers, where
// iteration order or scheduling nondeterminism would break the
// bit-reproducibility claims (PR 7's bit-identical parallel engine, PR
// 8's content-addressed artifact keys). Identified by package name; the
// maporder and nondeterminism analyzers only fire inside this set.
var detCritical = map[string]bool{
	"exec":     true,
	"numeric":  true,
	"strategy": true,
	"part2d":   true,
	"traffic":  true,
	"symbolic": true,
	"order":    true,
	"sched":    true,
	"model":    true,
	"pipeline": true,
	"artifact": true,
	"tables":   true,
	"calib":    true,
}

// exprPath renders a selector/ident chain ("s", "s.inner") for comparing
// lock targets against field-access bases; expressions that are not plain
// chains render with a unique placeholder so they never match.
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprPath(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprPath(x.X)
	case *ast.StarExpr:
		return exprPath(x.X)
	case *ast.UnaryExpr:
		return exprPath(x.X)
	}
	return fmt.Sprintf("<expr@%d>", e.Pos())
}

// funcName renders a FuncDecl's display name, with the receiver type for
// methods ("(*Store).Len").
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		return "(*" + exprPath(st.X) + ")." + fd.Name.Name
	}
	return "(" + exprPath(t) + ")." + fd.Name.Name
}
