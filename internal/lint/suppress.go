package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces an in-source suppression:
//
//	//repro:allow maporder -- keys are sorted immediately after collection
//
// The analyzer list may be comma-separated; the reason after " -- " is
// mandatory. A directive suppresses matching diagnostics on its own line
// (trailing comment) or on the next code line (standalone comment);
// standalone directives stack.
const directivePrefix = "//repro:allow"

type suppression struct {
	pos       token.Pos
	line      int
	analyzers []string
	reason    string
	malformed string // non-empty when the directive itself is invalid
	used      bool
}

// collectSuppressions scans a file's comments for //repro:allow
// directives.
func collectSuppressions(fset *token.FileSet, f *ast.File) []*suppression {
	var sup []*suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
				continue // e.g. //repro:allowx — not this directive
			}
			s := &suppression{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
			names, reason, ok := strings.Cut(rest, " -- ")
			if !ok {
				s.malformed = "missing \" -- <reason>\" (a suppression must say why the invariant holds)"
			} else {
				s.reason = strings.TrimSpace(reason)
				if s.reason == "" {
					s.malformed = "empty reason (a suppression must say why the invariant holds)"
				}
			}
			for _, n := range strings.Split(names, ",") {
				if n = strings.TrimSpace(n); n != "" {
					s.analyzers = append(s.analyzers, n)
				}
			}
			if len(s.analyzers) == 0 && s.malformed == "" {
				s.malformed = "missing analyzer name"
			}
			sup = append(sup, s)
		}
	}
	return sup
}

// applySuppressions drops raw diagnostics covered by a well-formed
// directive, marking the directives used. A diagnostic on line L is
// covered by a directive on line L itself (trailing comment), or by a
// contiguous run of directive-only lines ending at L-1 (so standalone
// directives stack above one statement).
func applySuppressions(pkg *Package, raw []Diagnostic) []Diagnostic {
	byLine := make(map[string]map[int][]*suppression)
	for _, s := range pkg.suppressions {
		file := pkg.Fset.Position(s.pos).Filename
		if byLine[file] == nil {
			byLine[file] = make(map[int][]*suppression)
		}
		byLine[file][s.line] = append(byLine[file][s.line], s)
	}
	var kept []Diagnostic
	for _, d := range raw {
		if !suppressed(byLine[d.Pos.Filename], d) {
			kept = append(kept, d)
		}
	}
	return kept
}

func suppressed(lines map[int][]*suppression, d Diagnostic) bool {
	if lines == nil {
		return false
	}
	hit := false
	mark := func(sups []*suppression) {
		for _, s := range sups {
			if s.malformed != "" {
				continue
			}
			for _, name := range s.analyzers {
				if name == d.Analyzer {
					s.used = true
					hit = true
				}
			}
		}
	}
	mark(lines[d.Pos.Line])
	for line := d.Pos.Line - 1; ; line-- {
		sups, ok := lines[line]
		if !ok {
			break
		}
		mark(sups)
	}
	return hit
}

// validateDirectives reports malformed directives, unknown analyzer
// names, and well-formed directives that suppressed nothing (checked only
// for analyzers that actually ran).
func validateDirectives(pkg *Package, known, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(s *suppression, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:      pkg.Fset.Position(s.pos),
			Analyzer: "allow",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, s := range pkg.suppressions {
		if s.malformed != "" {
			report(s, "malformed //repro:allow directive: %s", s.malformed)
			continue
		}
		for _, name := range s.analyzers {
			if !known[name] {
				report(s, "unknown analyzer %q in //repro:allow directive", name)
			}
		}
		if s.used {
			continue
		}
		anyRan := false
		for _, name := range s.analyzers {
			if ran[name] {
				anyRan = true
			}
		}
		if anyRan {
			report(s, "unused suppression for %s: no diagnostic on this or the next line", strings.Join(s.analyzers, ","))
		}
	}
	return out
}
