package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader loads every fixture through one Loader so the standard
// library is type-checked once for the whole test binary.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

// wantRe extracts the expectation from a `want "regex"` comment.
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// expectations returns line -> expected-message regex for every fixture
// file in dir.
func expectations(t *testing.T, dir string) map[string][]*regexp.Regexp {
	t.Helper()
	out := make(map[string][]*regexp.Regexp) // "file:line" -> regexes
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", path, i+1, m[1], err)
				}
				key := fmt.Sprintf("%s:%d", path, i+1)
				out[key] = append(out[key], re)
			}
		}
	}
	return out
}

// runFixture lints one testdata package with the named analyzers and
// checks the diagnostics against the fixture's want comments: every
// diagnostic must match a want on its line, and every want must be hit.
// It returns the diagnostic count so callers can assert the fixture
// actually seeds failures (the reprolint exit-1 contract).
func runFixture(t *testing.T, fixture string, analyzers []*Analyzer) int {
	t.Helper()
	l := fixtureLoader(t)
	dir := filepath.Join(l.RootDir, "internal", "lint", "testdata", fixture)
	pkgs, err := l.Load("./internal/lint/testdata/" + fixture)
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	diags := Run(pkgs, analyzers)
	want := expectations(t, dir)
	matched := make(map[string]map[int]bool) // key -> index of regex -> hit
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		res := want[key]
		ok := false
		for i, re := range res {
			if re.MatchString(d.Message) {
				if matched[key] == nil {
					matched[key] = make(map[int]bool)
				}
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range want {
		for i, re := range res {
			if !matched[key][i] {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, re)
			}
		}
	}
	return len(diags)
}

// TestFixtures runs each analyzer over its seeded fixture package and
// asserts both halves of the contract: the diagnostics agree exactly
// with the want comments, and every fixture seeds at least one failure
// (so `reprolint` demonstrably exits non-zero on each analyzer's bug
// class).
func TestFixtures(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer string
	}{
		{"maporder", "maporder"},
		{"panicpolicy", "panicpolicy"},
		{"panicmain", "panicpolicy"},
		{"procguard", "procguard"},
		{"lockedfield", "lockedfield"},
		{"nondet", "nondeterminism"},
		{"suppress", "maporder"},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			az, err := Select(c.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			if n := runFixture(t, c.fixture, az); n == 0 {
				t.Errorf("fixture %s produced no diagnostics; it must seed at least one %s failure",
					c.fixture, c.analyzer)
			}
		})
	}
}

// TestRepoSelfClean is the dogfood gate: the shipped tree must lint
// clean under every analyzer, so any new finding (or any suppression
// that stops suppressing) fails the build here as well as in CI.
func TestRepoSelfClean(t *testing.T) {
	l := fixtureLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages from the module root; the loader is missing most of the tree", len(pkgs))
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestSelect covers the -only flag's resolution, including the error on
// unknown names.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := Select("maporder,procguard")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select subset = %d analyzers, err %v; want 2", len(two), err)
	}
	if _, err := Select("nosuch"); err == nil {
		t.Fatal("Select(\"nosuch\") succeeded; want error")
	}
}
