package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// PanicPolicy enforces the repo's panic contract. Library panics mark
// caller bugs (mismatched schedules, invalid processor counts) and must
// identify their origin with the `"pkg: ..."` message prefix every
// existing panic carries. Command (package main) code faces
// caller-controlled input — flags, file paths, matrix files — where a
// panic is a crash that should have been a validated error (the PR 7
// ParallelSolve class), so commands must not panic at all.
var PanicPolicy = &Analyzer{
	Name: "panicpolicy",
	Doc: "library panics must carry the \"pkg: \" message prefix; " +
		"main packages (cmd/, examples/) must not panic at all",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, builtin := pass.Pkg.Info.Uses[id].(*types.Builtin); !builtin {
					return true // shadowed panic
				}
				if pass.Pkg.IsCommand() {
					pass.Reportf(call.Pos(),
						"panic in a main package; commands face caller-controlled input — validate it and return an error instead")
					return true
				}
				if len(call.Args) == 1 && hasPkgPrefix(pass, call.Args[0]) {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic message must be a string (or fmt.Sprintf) starting with %q so failures identify their package",
					pass.Pkg.Name+": ")
				return true
			})
		}
	},
}

// hasPkgPrefix reports whether the panic argument is a string literal —
// directly or as the format of a fmt.Sprintf/fmt.Errorf call — starting
// with the package-name prefix.
func hasPkgPrefix(pass *Pass, arg ast.Expr) bool {
	prefix := pass.Pkg.Name + ": "
	if lit := stringLit(arg); lit != "" {
		return strings.HasPrefix(lit, prefix)
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	if fn.Name() != "Sprintf" && fn.Name() != "Errorf" && fn.Name() != "Sprint" {
		return false
	}
	return strings.HasPrefix(stringLit(call.Args[0]), prefix)
}

func stringLit(e ast.Expr) string {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return s
}
