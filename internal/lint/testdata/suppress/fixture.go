// Package exec is a reprolint fixture for the //repro:allow directive
// itself: trailing and standalone placement, a malformed directive with
// no reason, and a well-formed directive that suppresses nothing.
package exec

// SumTrailing suppresses with a trailing directive: clean.
func SumTrailing(m map[string]int) int {
	t := 0
	for _, v := range m { //repro:allow maporder -- commutative integer sum; order cannot change the total
		t += v
	}
	return t
}

// SumAbove suppresses with a standalone directive on the line above:
// clean.
func SumAbove(m map[string]int) int {
	t := 0
	//repro:allow maporder -- commutative integer sum; order cannot change the total
	for _, v := range m {
		t += v
	}
	return t
}

// Nothing carries a directive with no reason: flagged as malformed.
//
//repro:allow maporder // want "malformed"
func Nothing() {}

// Empty carries a directive that suppresses nothing: flagged as unused.
//
//repro:allow maporder -- stale waiver kept after the loop was removed // want "unused suppression"
func Empty() {}
