// Command panicmain is a reprolint fixture for the command half of the
// panic policy: main packages face caller-controlled input and must not
// panic at all.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		panic("missing argument") // want "panic in a main package"
	}
	fmt.Println(os.Args[1])
}
