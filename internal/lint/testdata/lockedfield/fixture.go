// Package store is a reprolint fixture for mutex discipline: unexported
// fields below a struct mutex (and unexported vars below a mutex in a
// var block) may only be accessed under that mutex.
package store

import "sync"

// Counter follows the "mu protects the fields below" convention.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Peek reads the guarded field without the lock: flagged.
func (c *Counter) Peek() int {
	return c.n // want "without holding the lock"
}

// Add locks before touching the field: clean.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

// peekLocked documents that the caller holds the mutex: exempt.
func (c *Counter) peekLocked() int { return c.n }

// Gauge uses an RWMutex; writes need the write lock.
type Gauge struct {
	rw sync.RWMutex
	v  int
}

// Bump writes under the read lock: flagged.
func (g *Gauge) Bump() {
	g.rw.RLock()
	defer g.rw.RUnlock()
	g.v++ // want "writes g.v"
}

// Value reads under the read lock: clean.
func (g *Gauge) Value() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

var (
	regMu    sync.Mutex
	registry = map[string]int{}
)

// Register touches the guarded package var without the lock: flagged.
func Register(name string, v int) {
	registry[name] = v // want "package var registry"
}

// Lookup locks first: clean.
func Lookup(name string) (int, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	v, ok := registry[name]
	return v, ok
}
