// Package exec is a reprolint fixture. The package NAME places it in the
// determinism-critical set (the analyzer keys on names, which is what
// lets a fixture stand in for the real package), so raw map iteration
// here must be flagged.
package exec

import "sort"

// Sum iterates a map directly: flagged.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map m has nondeterministic iteration order"
		total += v
	}
	return total
}

// Keys collects the keys under a suppression and sorts them: clean.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//repro:allow maporder -- key collection for the sort below; iteration order never escapes
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total ranges a slice: never flagged.
func Total(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}
