// Package numeric is a reprolint fixture. The package NAME places it in
// the bit-reproducible set, so wall-clock reads, global math/rand draws
// and go statements are flagged.
package numeric

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in bit-reproducible package"
}

// Noise draws from the process-wide source: flagged.
func Noise() float64 {
	return rand.Float64() // want "global math/rand call"
}

// Spawn starts a goroutine: flagged.
func Spawn(f func()) {
	go f() // want "go statement in bit-reproducible package"
}

// Seeded builds a replayable stream: clean (rand.New and rand.NewSource
// are constructors, not draws).
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
