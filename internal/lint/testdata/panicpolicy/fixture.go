// Package lib is a reprolint fixture for the library half of the panic
// policy: every panic message must identify its package with the
// "lib: " prefix, as a string literal or a fmt.Sprintf first argument.
package lib

import "fmt"

// MustPositive panics without the package prefix: flagged.
func MustPositive(x int) {
	if x < 1 {
		panic("invalid value") // want "panic message must be a string"
	}
}

// MustEven panics with a prefixed Sprintf: clean.
func MustEven(x int) {
	if x%2 != 0 {
		panic(fmt.Sprintf("lib: odd value %d", x))
	}
}

// MustSmall panics with a prefixed literal: clean.
func MustSmall(x int) {
	if x > 100 {
		panic("lib: value too large")
	}
}
