// Package sim is a reprolint fixture for the processor-count contract:
// exported functions taking a processor count must validate it before
// first use.
package sim

import "fmt"

// mustProcs is the conventional validator the analyzer recognizes.
func mustProcs(p int) {
	if p < 1 {
		panic(fmt.Sprintf("sim: invalid processor count %d", p))
	}
}

// Spans sizes a per-processor slice with an unvalidated count: flagged.
func Spans(work []int64, p int) []int64 { // want "does not validate processor count"
	out := make([]int64, p)
	for i, w := range work {
		out[i%p] += w
	}
	return out
}

// SpansChecked validates through the conventional helper: clean.
func SpansChecked(work []int64, p int) []int64 {
	mustProcs(p)
	out := make([]int64, p)
	for i, w := range work {
		out[i%p] += w
	}
	return out
}

// SpansGuarded validates with an explicit comparison: clean.
func SpansGuarded(work []int64, p int) ([]int64, error) {
	if p < 1 {
		return nil, fmt.Errorf("sim: invalid processor count %d", p)
	}
	out := make([]int64, p)
	for i, w := range work {
		out[i%p] += w
	}
	return out, nil
}

// SpansWrapped delegates to a same-package function that validates the
// forwarded parameter: clean.
func SpansWrapped(work []int64, p int) []int64 {
	return SpansChecked(work, p)
}
