// Package lint is a repo-native static-analysis framework enforcing the
// invariants the reproduction's headline claims rest on: bit-reproducible
// simulators (maporder, nondeterminism), the panic-message policy and the
// no-panic rule for commands (panicpolicy), validated processor counts at
// exported entry points (procguard — the PR 7 ParallelSolve panic class),
// and mutex discipline for shared state (lockedfield — the PR 8
// tables.Problem race class).
//
// The framework is stdlib-only (go/parser + go/types + a source importer;
// go.mod stays zero-dependency): a shared package loader resolves
// module-internal imports from the repo tree and standard-library imports
// from GOROOT source, analyzers walk the typed ASTs, and diagnostics print
// as "file:line: analyzer: message".
//
// Findings are suppressed in place with the directive
//
//	//repro:allow <analyzer>[,<analyzer>...] -- <reason>
//
// on the flagged line or the line above it. The directive is itself
// validated: the reason is mandatory, the analyzer name must exist, and a
// suppression that suppresses nothing is flagged as unused (so stale
// directives cannot rot in the tree).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a typed package.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in //repro:allow
	// directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run reports the analyzer's findings on pass.Pkg via pass.Reportf.
	Run func(pass *Pass)
}

// Diagnostic is one finding, printable as "file:line: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/exec").
	Path string
	// Name is the package name ("exec", or "main" for commands).
	Name string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	suppressions []*suppression
}

// IsCommand reports whether the package is a main package (cmd/ binaries
// and examples), which panicpolicy holds to the no-panic rule.
func (p *Package) IsCommand() bool { return p.Name == "main" }

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when untyped.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Run runs the given analyzers over the packages, applies //repro:allow
// suppressions, validates the directives themselves (missing reason,
// unknown analyzer, unused suppression), and returns the surviving
// diagnostics sorted by file, line and analyzer. The unused-suppression
// check only considers directives naming analyzers in the run set, so
// running a subset (reprolint -only) never flags the other analyzers'
// suppressions.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(All()))
	for _, a := range All() {
		known[a.Name] = true
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &raw})
		}
		out = append(out, applySuppressions(pkg, raw)...)
		out = append(out, validateDirectives(pkg, known, ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}
