package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockedField enforces mutex discipline on shared state — the
// tables.Problem race class PR 8 fixed. A field is *guarded* when it is
// explicitly annotated `// guarded by <mu>`, or when it is an unexported
// field declared after a sync.Mutex/RWMutex field in the same struct (the
// Go convention "mu protects the fields below"; place constructor-set
// immutable fields above the mutex). Package-level var groups follow the
// same rule: unexported vars declared after a mutex var in one `var (...)`
// block are guarded by it.
//
// A guarded field may only be accessed in functions that lock that mutex
// on the same receiver path (s.mu.Lock() guards s.items, not other.items).
// Writes under an RWMutex require the write lock. Helper functions whose
// name ends in "Locked" are exempt by convention: they document that the
// caller holds the mutex. The check is flow-insensitive (a Lock anywhere
// in the function counts), so it catches missing locks, not lock-ordering
// bugs — the race detector covers the rest.
var LockedField = &Analyzer{
	Name: "lockedfield",
	Doc: "fields annotated `// guarded by mu` or declared below a struct mutex may only be " +
		"accessed under that mutex on the same receiver; *Locked helpers are exempt",
	Run: runLockedField,
}

type fieldGuard struct {
	mu string // mutex field name in the same struct
	rw bool   // mutex is a sync.RWMutex
}

func runLockedField(pass *Pass) {
	info := pass.Pkg.Info
	guardedFields := make(map[*types.Var]fieldGuard)
	varGuards := make(map[*types.Var]*types.Var) // guarded var -> mutex var
	rwVars := make(map[*types.Var]bool)

	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					collectStructGuards(info, st, guardedFields)
				}
			case token.VAR:
				collectVarGuards(info, gd, varGuards, rwVars)
			}
		}
	}
	if len(guardedFields) == 0 && len(varGuards) == 0 {
		return
	}

	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller-holds-the-lock helper by convention
			}
			checkFuncLocks(pass, fd, guardedFields, varGuards, rwVars)
		}
	}
}

// collectStructGuards records the guarded fields of one struct: annotated
// fields, and unexported fields declared after the first mutex field.
func collectStructGuards(info *types.Info, st *ast.StructType, out map[*types.Var]fieldGuard) {
	// First scan: every mutex field by name, and the first one's position.
	muRWByName := make(map[string]bool)
	muName := ""
	for _, field := range st.Fields.List {
		if isMu, isRW := mutexType(info.TypeOf(field.Type)); isMu {
			for _, name := range field.Names {
				muRWByName[name.Name] = isRW
				if muName == "" {
					muName = name.Name
				}
			}
		}
	}
	// Second scan: annotated fields, and unexported fields after the first
	// mutex.
	seenMu := false
	for _, field := range st.Fields.List {
		isMu, _ := mutexType(info.TypeOf(field.Type))
		for _, name := range field.Names {
			if isMu {
				if name.Name == muName {
					seenMu = true
				}
				continue
			}
			v, ok := info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if ann := guardAnnotation(field); ann != "" {
				out[v] = fieldGuard{mu: ann, rw: muRWByName[ann]}
				continue
			}
			if seenMu && !name.IsExported() {
				out[v] = fieldGuard{mu: muName, rw: muRWByName[muName]}
			}
		}
	}
}

// collectVarGuards records guarded package vars: unexported vars declared
// after a mutex var within the same var (...) group.
func collectVarGuards(info *types.Info, gd *ast.GenDecl, out map[*types.Var]*types.Var, rwVars map[*types.Var]bool) {
	var mu *types.Var
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			v, ok := info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if isMu, isRW := mutexType(v.Type()); isMu {
				if mu == nil {
					mu = v
					rwVars[v] = isRW
				}
				continue
			}
			if mu != nil && !name.IsExported() {
				out[v] = mu
			}
		}
	}
}

// mutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func mutexType(t types.Type) (isMutex, isRW bool) {
	if t == nil {
		return false, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false, false
	}
	switch n.Obj().Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// guardAnnotation extracts the mutex name from a `// guarded by <mu>`
// field comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		text := cg.Text()
		if i := strings.Index(text, "guarded by "); i >= 0 {
			rest := strings.Fields(text[i+len("guarded by "):])
			if len(rest) > 0 {
				return strings.TrimRight(rest[0], ".,;")
			}
		}
	}
	return ""
}

func checkFuncLocks(pass *Pass, fd *ast.FuncDecl, guardedFields map[*types.Var]fieldGuard, varGuards map[*types.Var]*types.Var, rwVars map[*types.Var]bool) {
	info := pass.Pkg.Info

	// Pass 1: every lock call in the function ("s.mu.Lock", "regMu.RLock"),
	// keyed by the printed path of the mutex expression.
	locks := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if isMu, _ := mutexType(info.TypeOf(sel.X)); isMu {
			locks[exprPath(sel.X)+"."+sel.Sel.Name] = true
		}
		return true
	})

	// Pass 2: writes (assignment targets and ++/--).
	writes := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				writes[unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			writes[unparen(x.X)] = true
		}
		return true
	})

	// Pass 3: guarded accesses.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			sel := info.Selections[x]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			g, ok := guardedFields[v]
			if !ok {
				return true
			}
			base := exprPath(x.X)
			muPath := base + "." + g.mu
			held := locks[muPath+".Lock"]
			if !writes[x] && g.rw {
				held = held || locks[muPath+".RLock"]
			}
			if !held {
				verb := "reads"
				if writes[x] {
					verb = "writes"
				}
				pass.Reportf(x.Sel.Pos(),
					"%s %s.%s (guarded by %s) without holding the lock; lock it, use a *Locked helper, or suppress with a reason",
					funcName(fd)+" "+verb, base, v.Name(), muPath)
			}
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok {
				return true
			}
			mu, ok := varGuards[v]
			if !ok {
				return true
			}
			held := locks[mu.Name()+".Lock"]
			if !writes[x] && rwVars[mu] {
				held = held || locks[mu.Name()+".RLock"]
			}
			if !held {
				verb := "reads"
				if writes[x] {
					verb = "writes"
				}
				pass.Reportf(x.Pos(),
					"%s package var %s (guarded by %s) without holding the lock; lock it or suppress with a reason",
					funcName(fd)+" "+verb, v.Name(), mu.Name())
			}
		}
		return true
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
