package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// procNames are the parameter names (of type int) the analyzer treats as
// processor counts.
var procNames = map[string]bool{
	"p": true, "np": true, "procs": true, "nprocs": true,
	"procCount": true, "numProcs": true,
}

// procValidators are the conventional validation helpers: a call passing
// the parameter to any of these counts as a guard (strategy.checkProcs
// returns an error, strategy.mustProcs and the sched/exec equivalents
// panic with the package prefix).
var procValidators = map[string]bool{
	"mustProcs": true, "checkProcs": true, "checkProcCount": true,
}

// ProcGuard requires every exported function or method with a
// processor-count parameter to validate it before first use: a call to
// checkProcs/mustProcs/checkProcCount (or a same-package function that
// itself validates the forwarded parameter — so thin exported wrappers
// over a validating core pass), or an explicit comparison against 0/1.
// An unvalidated P reaches `make([]T, p)` or `j % p` and dies as an
// index-out-of-range or divide-by-zero panic far from the caller's
// mistake — the exact class PR 7 fixed in exec.ParallelSolve.
var ProcGuard = &Analyzer{
	Name: "procguard",
	Doc: "exported functions with a processor-count parameter (p, np, procs, ...) must " +
		"validate it via checkProcs/mustProcs or an explicit < 1 guard before first use",
	Run: runProcGuard,
}

func runProcGuard(pass *Pass) {
	info := pass.Pkg.Info
	decls := make(map[types.Object]*ast.FuncDecl)
	var all []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			all = append(all, fd)
			if obj := info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
		}
	}

	type key struct {
		fd  *ast.FuncDecl
		idx int
	}
	memo := make(map[key]int) // 1 = in progress, 2 = validates, 3 = does not
	var validates func(fd *ast.FuncDecl, idx int) bool

	// guard is a source region that performs (or implies) validation:
	// uses of the parameter inside [lo, hi] are part of the guard itself,
	// and the parameter counts as validated from `at` on.
	type guard struct{ lo, hi, at token.Pos }

	analyze := func(fd *ast.FuncDecl, obj types.Object) bool {
		var uses []token.Pos
		var guards []guard
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if info.Uses[x] == obj {
					uses = append(uses, x.Pos())
				}
			case *ast.IfStmt:
				if condComparesProc(info, x.Cond, obj) {
					guards = append(guards, guard{x.Cond.Pos(), x.Cond.End(), x.Cond.End()})
				}
			case *ast.CallExpr:
				j := argIndexOf(info, x, obj)
				if j < 0 {
					return true
				}
				switch {
				case procValidators[calleeName(x)]:
					guards = append(guards, guard{x.Pos(), x.End(), x.End()})
				default:
					if id, ok := x.Fun.(*ast.Ident); ok {
						if target, ok := decls[info.Uses[id]]; ok && validates(target, j) {
							guards = append(guards, guard{x.Pos(), x.End(), x.End()})
						}
					}
				}
			}
			return true
		})
		first := token.Pos(-1)
		for _, u := range uses {
			inGuard := false
			for _, g := range guards {
				if g.lo <= u && u <= g.hi {
					inGuard = true
					break
				}
			}
			if !inGuard && (first < 0 || u < first) {
				first = u
			}
		}
		if first < 0 {
			return true // only used inside guards (or never)
		}
		for _, g := range guards {
			if g.at <= first {
				return true
			}
		}
		return false
	}

	validates = func(fd *ast.FuncDecl, idx int) bool {
		k := key{fd, idx}
		switch memo[k] {
		case 1: // recursion: assume unvalidated
			return false
		case 2:
			return true
		case 3:
			return false
		}
		memo[k] = 1
		obj := paramObjAt(info, fd, idx)
		ok := obj != nil && analyze(fd, obj)
		if ok {
			memo[k] = 2
		} else {
			memo[k] = 3
		}
		return ok
	}

	for _, fd := range all {
		if !fd.Name.IsExported() {
			continue
		}
		idx := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if procNames[name.Name] && isInt(info.Defs[name]) && !validates(fd, idx) {
					pass.Reportf(name.Pos(),
						"exported %s does not validate processor count %q before first use; call checkProcs/mustProcs or guard with an explicit < 1 check",
						funcName(fd), name.Name)
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
}

func isInt(obj types.Object) bool {
	if obj == nil {
		return false
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// paramObjAt returns the object of the idx-th (flattened) parameter.
func paramObjAt(info *types.Info, fd *ast.FuncDecl, idx int) types.Object {
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if i == idx {
				return info.Defs[name]
			}
			i++
		}
	}
	return nil
}

// argIndexOf returns the index of the call argument that is the bare
// parameter ident, or -1.
func argIndexOf(info *types.Info, call *ast.CallExpr, obj types.Object) int {
	for i, a := range call.Args {
		if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
			return i
		}
	}
	return -1
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// condComparesProc reports whether the if-condition contains a comparison
// between the parameter and the constant 0 or 1 (p < 1, p <= 0, 0 >= p,
// p == 0, possibly under && / ||).
func condComparesProc(info *types.Info, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			if (isParam(info, be.X, obj) && isZeroOne(info, be.Y)) ||
				(isParam(info, be.Y, obj) && isZeroOne(info, be.X)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isParam(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func isZeroOne(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && (v == 0 || v == 1)
}
