package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader loads and type-checks packages of one module. Module-internal
// imports resolve against the repo tree; standard-library imports resolve
// through the compiler source importer (GOROOT source), so the loader
// works in a zero-dependency module without export data or external
// tooling.
type Loader struct {
	// RootDir is the absolute module root (the directory holding go.mod).
	RootDir string
	// ModulePath is the module path from go.mod ("repro").
	ModulePath string
	// GoVersion is the go directive from go.mod ("go1.22").
	GoVersion string
	Fset      *token.FileSet

	std      types.Importer
	pkgs     map[string]*Package
	building map[string]bool
}

// NewLoader builds a loader for the module rooted at dir (the directory
// containing go.mod; FindModuleRoot locates it from a working directory).
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	l := &Loader{
		RootDir:  root,
		Fset:     token.NewFileSet(),
		pkgs:     make(map[string]*Package),
		building: make(map[string]bool),
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			l.ModulePath = strings.TrimSpace(rest)
		}
		if rest, ok := strings.CutPrefix(line, "go "); ok {
			l.GoVersion = "go" + strings.TrimSpace(rest)
		}
	}
	if l.ModulePath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load expands the package patterns ("./...", "./internal/exec",
// "repro/internal/exec") and returns the type-checked packages, sorted by
// import path. Test files (_test.go) are never loaded: the enforced
// invariants target shipped code, and tests exercise nondeterminism
// (shuffled maps, goroutines, timing) on purpose.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		dirs, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range dirs {
			dirSet[d] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// expand resolves one pattern to package directories.
func (l *Loader) expand(pat string) ([]string, error) {
	if p, ok := strings.CutPrefix(pat, l.ModulePath); ok && (p == "" || strings.HasPrefix(p, "/")) {
		pat = "." + p
	}
	rec := false
	if pat == "..." {
		pat, rec = ".", true
	} else if strings.HasSuffix(pat, "/...") {
		pat, rec = strings.TrimSuffix(pat, "/..."), true
	}
	dir := filepath.Join(l.RootDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	if !rec {
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return []string{dir}, nil
	}
	var dirs []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// pathFor maps an absolute package directory to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.RootDir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir)
}

// Import implements types.Importer: module-internal paths load from the
// repo tree, "unsafe" maps to types.Unsafe, and everything else (the
// standard library) goes through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadPath(path, filepath.Join(l.RootDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.building[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.building[path] = true
	defer delete(l.building, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	var sup []*suppression
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		sup = append(sup, collectSuppressions(l.Fset, f)...)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l, GoVersion: l.GoVersion}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path: path, Name: tpkg.Name(), Dir: dir,
		Fset: l.Fset, Files: files, Types: tpkg, Info: info,
		suppressions: sup,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
