package core

import (
	"sort"

	"repro/internal/interval"
	"repro/internal/model"
)

// computeDeps determines, for every unit block, the set of unit blocks it
// depends on — the blocks holding source elements of update operations
// targeting it (Section 3.3 of the paper).
//
// An update into target element (i, j) reads the pair (i, k), (j, k) with
// k < j <= i. At the block level this induces the paper's ten dependency
// categories; all ten are instances of one rule. For a target unit U:
//
//   - a "j-source" V1 must hold (j, k): its row extent meets U's column
//     extent;
//   - an "i-source" V2 must hold (i, k): its row extent meets U's row
//     extent;
//   - V1 and V2 must share a source column k (same cluster, intersecting
//     column extents), with k < j and i >= j feasible.
//
// Categories 1-3 (column sources) consult the actual sparse structure of
// the source column; categories 4-10 (dense-block source pairs) reduce to
// interval intersections, evaluated here with interval trees. Because the
// blocks are dense on their extents, the interval conditions are exact:
// the result matches the element-level oracle (see depsOracle).
func (p *Partition) computeDeps(ops *model.Ops) {
	edges := make(map[int64]struct{})
	addEdge := func(tgt, src int) {
		if tgt != src {
			edges[int64(tgt)<<32|int64(src)] = struct{}{}
		}
	}
	p.columnSourceDeps(addEdge)
	p.denseSourceDeps(addEdge)
	p.attachEdges(edges)
}

// attachEdges converts the edge set into sorted per-unit Preds lists.
func (p *Partition) attachEdges(edges map[int64]struct{}) {
	counts := make([]int, len(p.Units))
	for e := range edges {
		counts[int(e>>32)]++
	}
	for u := range p.Units {
		if counts[u] > 0 {
			p.Units[u].Preds = make([]int32, 0, counts[u])
		}
	}
	for e := range edges {
		t := int(e >> 32)
		s := int32(e & 0xffffffff)
		p.Units[t].Preds = append(p.Units[t].Preds, s)
	}
	for u := range p.Units {
		pr := p.Units[u].Preds
		sort.Slice(pr, func(a, b int) bool { return pr[a] < pr[b] })
	}
}

// hits reports whether the sorted slice s has an element in [lo, hi].
func hits(s []int, lo, hi int) bool {
	k := sort.SearchInts(s, lo)
	return k < len(s) && s[k] <= hi
}

// columnSourceDeps handles categories 1-3: a single column k updates
// columns, triangles and rectangles. For each single-column cluster k the
// sub-diagonal structure S of column k is walked once; every pair
// (i, j) in S with i >= j is a target element, so a unit is a dependent
// exactly when S meets both its row and its column extent.
func (p *Partition) columnSourceDeps(addEdge func(tgt, src int)) {
	f := p.F
	// Region tree: map rows to the clusters whose territory (column strip
	// or below-rectangle rows) contains them.
	var regions interval.Tree
	for ci := range p.Clusters {
		cl := &p.Clusters[ci]
		if cl.Single {
			continue
		}
		regions.Insert(cl.ColLo, cl.ColHi, ci)
		for ri := range cl.Rects {
			regions.Insert(cl.Rects[ri].RowLo, cl.Rects[ri].RowHi, ci)
		}
	}
	var hitBuf []int
	seen := make([]bool, len(p.Clusters))
	for ci := range p.Clusters {
		cl := &p.Clusters[ci]
		if !cl.Single {
			continue
		}
		k := cl.ColLo
		S := f.Col(k)[1:]
		if len(S) == 0 {
			continue
		}
		cu := cl.ColUnit
		// Category 1: column k updates column j for every j in S that is
		// itself a single-column cluster.
		var hitClusters []int
		for _, r := range S {
			if rc := &p.Clusters[p.ColCluster[r]]; rc.Single {
				addEdge(rc.ColUnit, cu)
			}
		}
		// Multi-column clusters whose territory S touches.
		hitBuf = hitBuf[:0]
		for _, r := range S {
			hitBuf = regions.Stab(r, hitBuf)
		}
		for _, ci2 := range hitBuf {
			if !seen[ci2] {
				seen[ci2] = true
				hitClusters = append(hitClusters, ci2)
			}
		}
		for _, ci2 := range hitClusters {
			seen[ci2] = false
			tcl := &p.Clusters[ci2]
			// Categories 2-3 against the triangle partition.
			for bi, tu := range tcl.TriUnits {
				lo, hi := tcl.BandBounds[bi], tcl.BandBounds[bi+1]-1
				if hits(S, lo, hi) {
					addEdge(tu, cu) // category 2: column updates triangle
					for bj := 0; bj < bi; bj++ {
						clo, chi := tcl.BandBounds[bj], tcl.BandBounds[bj+1]-1
						if hits(S, clo, chi) {
							// category 3 within the partitioned triangle
							addEdge(tcl.BandRects[bi][bj], cu)
						}
					}
				}
			}
			// Category 3 against the rectangles below the triangle.
			for ri := range tcl.Rects {
				r := &tcl.Rects[ri]
				if !hits(S, r.RowLo, r.RowHi) {
					continue
				}
				for a := 0; a+1 < len(r.RowSplits); a++ {
					if !hits(S, r.RowSplits[a], r.RowSplits[a+1]-1) {
						continue
					}
					for c := 0; c+1 < len(r.ColSplits); c++ {
						if hits(S, r.ColSplits[c], r.ColSplits[c+1]-1) {
							addEdge(r.Units[a][c], cu)
						}
					}
				}
			}
		}
	}
}

// denseSourceDeps handles categories 4-10: source pairs drawn from the
// dense unit blocks of one cluster.
func (p *Partition) denseSourceDeps(addEdge func(tgt, src int)) {
	f := p.F
	// Interval tree over the row extents of all dense units.
	var rowTree interval.Tree
	for ui := range p.Units {
		u := &p.Units[ui]
		if u.Kind != Column {
			rowTree.Insert(u.RowLo, u.RowHi, ui)
		}
	}
	var aBuf, bBuf []int
	// Group source candidates by cluster using scratch lists.
	type pair struct{ a, b []int }
	byCluster := make(map[int]*pair)
	for ui := range p.Units {
		u := &p.Units[ui]
		// j-source candidates: dense units whose rows meet U's columns.
		aBuf = rowTree.Overlap(u.ColLo, u.ColHi, aBuf[:0])
		if len(aBuf) == 0 {
			continue
		}
		// i-source candidates: dense units whose rows meet U's rows.
		bBuf = rowTree.Overlap(u.RowLo, u.RowHi, bBuf[:0])
		if len(bBuf) == 0 {
			continue
		}
		var structJ []int
		if u.Kind == Column {
			structJ = f.Col(u.ColLo)
		}
		for k := range byCluster {
			delete(byCluster, k)
		}
		for _, a := range aBuf {
			c := p.Units[a].Cluster
			pr := byCluster[c]
			if pr == nil {
				pr = &pair{}
				byCluster[c] = pr
			}
			pr.a = append(pr.a, a)
		}
		for _, b := range bBuf {
			// For sparse column targets the interval overlap is necessary
			// but not sufficient: the source rows must meet the actual
			// structure of the target column.
			if u.Kind == Column {
				vb := &p.Units[b]
				if !hits(structJ, vb.RowLo, vb.RowHi) {
					continue
				}
			}
			c := p.Units[b].Cluster
			pr := byCluster[c]
			if pr == nil {
				continue // no j-source in that cluster
			}
			pr.b = append(pr.b, b)
		}
		for _, pr := range byCluster {
			if len(pr.b) == 0 {
				continue
			}
			for _, a := range pr.a {
				va := &p.Units[a]
				jLo := maxInt(va.RowLo, u.ColLo)
				jHi := minInt(va.RowHi, u.ColHi)
				for _, b := range pr.b {
					vb := &p.Units[b]
					kLo := maxInt(va.ColLo, vb.ColLo)
					kHi := minInt(va.ColHi, vb.ColHi)
					if kLo > kHi {
						continue // no common source column
					}
					// k < j: the smallest usable j.
					jEff := maxInt(jLo, kLo+1)
					if jEff > jHi {
						continue
					}
					// i >= j: U's rows must reach jEff within V2.
					iHi := minInt(vb.RowHi, u.RowHi)
					if iHi < jEff {
						continue
					}
					addEdge(ui, a)
					addEdge(ui, b)
				}
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DepsOracle computes the exact block dependency graph by enumerating
// every element-level update operation and mapping its source and target
// elements to units. It is the ground truth the categorical engine is
// validated against, and costs O(#updates).
func (p *Partition) DepsOracle(ops *model.Ops) [][]int32 {
	edges := make(map[int64]struct{})
	add := func(t, s int32) {
		if t != s {
			edges[int64(t)<<32|int64(s)] = struct{}{}
		}
	}
	ops.ForEachUpdate(func(u model.Update) {
		t := p.ElemUnit[u.Tgt]
		add(t, p.ElemUnit[u.SrcI])
		add(t, p.ElemUnit[u.SrcJ])
	})
	out := make([][]int32, len(p.Units))
	for e := range edges {
		t := int(e >> 32)
		out[t] = append(out[t], int32(e&0xffffffff))
	}
	for t := range out {
		sort.Slice(out[t], func(a, b int) bool { return out[t][a] < out[t][b] })
	}
	return out
}
