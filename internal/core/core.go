// Package core implements the paper's primary contribution: the automatic,
// block-based partitioning of a sparse Cholesky factor into schedulable
// unit blocks, and the identification of inter-block dependencies
// (Venugopal & Naik, SC'91, Section 3).
//
// The pipeline is:
//
//  1. Identify clusters — strips of consecutive columns whose sub-diagonal
//     structure is dense (supernodes). A cluster is either a single column
//     or a strip with a dense triangle at the diagonal and dense
//     rectangles below it (Section 3.1). Strips narrower than the minimum
//     cluster width are broken into single columns.
//  2. Partition each dense block into unit blocks subject to the grain
//     size g, the minimum number of matrix elements per unit (Section 3.2,
//     Figure 3): triangles split into b diagonal sub-triangles and
//     b(b-1)/2 sub-rectangles over near-equal column bands; rectangles
//     split into near-square grids.
//  3. Determine the dependencies between unit blocks (Section 3.3), the
//     ten categories of Figure 4, computed with interval trees.
//
// Scheduling of the resulting units is in package sched.
package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/symbolic"
)

// Kind classifies unit blocks. "These unit blocks have a regular shape —
// each unit block is either a column, a rectangle or a triangle."
type Kind uint8

const (
	// Column is a single sparse column (with its diagonal element).
	Column Kind = iota
	// Triangle is a dense lower-triangular diagonal block.
	Triangle
	// Rectangle is a dense off-diagonal block (either inside a partitioned
	// cluster triangle or in the rectangles below it).
	Rectangle
)

func (k Kind) String() string {
	switch k {
	case Column:
		return "column"
	case Triangle:
		return "triangle"
	case Rectangle:
		return "rectangle"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Unit is one schedulable unit block.
type Unit struct {
	ID      int
	Kind    Kind
	Cluster int // owning cluster index
	// Extents, inclusive. For Column units ColLo == ColHi is the column
	// index, RowLo the diagonal and RowHi the last structural row (the
	// rows in between are sparse). Triangle units have RowLo..RowHi ==
	// ColLo..ColHi. Rectangle units are dense on rows x cols.
	RowLo, RowHi int
	ColLo, ColHi int
	// Elems is the number of factor nonzeros in the unit; Work their total
	// work under the paper's 2-per-pair + 1-per-diagonal model.
	Elems int
	Work  int64
	// Preds lists the unit IDs this block depends on (blocks providing
	// source elements for updates into this block), sorted.
	Preds []int32
}

// Rect is a dense rectangle below a cluster's triangle, before and after
// partitioning into unit blocks.
type Rect struct {
	RowLo, RowHi int
	// RowSplits/ColSplits partition the rectangle into a grid; len
	// qr+1/qc+1 with the extents at the ends. Units[r][c] is the unit ID
	// of grid cell (r, c).
	RowSplits []int
	ColSplits []int
	Units     [][]int
}

// Cluster is a strip of consecutive columns identified in the factor.
type Cluster struct {
	ID           int
	ColLo, ColHi int
	Single       bool
	// ColUnit is the unit ID for single-column clusters.
	ColUnit int
	// For multi-column clusters: BandBounds partitions [ColLo, ColHi+1)
	// into triangle bands; TriUnits[b] is the diagonal sub-triangle of
	// band b; BandRects[i][j] (j < i) the sub-rectangle rows band i x cols
	// band j. TriAlloc lists the triangle-partition units in the paper's
	// allocation order: triangles top to bottom, then rectangles top to
	// bottom, left to right (t1,t3,t6,t2,t4,t5 in Figure 3).
	BandBounds []int
	TriUnits   []int
	BandRects  [][]int
	TriAlloc   []int
	Rects      []Rect
}

// Width returns the number of columns in the cluster.
func (c *Cluster) Width() int { return c.ColHi - c.ColLo + 1 }

// Options controls the partitioner.
type Options struct {
	// Grain is the minimum number of matrix elements per unit block
	// (the paper's g). Values <= 0 default to 4, the paper's base case.
	Grain int
	// MinClusterWidth is the minimum acceptable width of a multi-column
	// cluster (the paper's minimum cluster width); narrower supernodes are
	// broken into single columns. Values <= 0 default to 4, the setting
	// used for Tables 2 and 3.
	MinClusterWidth int
	// RelaxZeros enables the paper's "including small regions that
	// correspond to zeros" (Section 3.1): adjacent supernodes are merged
	// while the explicit zeros stay within this fraction of the merged
	// block area. 0 disables relaxation (the paper's default, where
	// "inclusion of such areas with zero elements is kept to a minimum").
	RelaxZeros float64
}

// Normalized returns the options with defaults applied, the canonical
// form under which two option values partition identically.
func (o Options) Normalized() Options {
	if o.Grain <= 0 {
		o.Grain = 4
	}
	if o.MinClusterWidth <= 0 {
		o.MinClusterWidth = 4
	}
	return o
}

// Partition is the partitioner output: clusters, unit blocks, the
// element-to-unit map and the dependency graph.
type Partition struct {
	// F is the factor structure partitioned. With Options.RelaxZeros > 0
	// this is the padded (relaxed) factor, a closed superset of the input.
	F          *symbolic.Factor
	Opts       Options
	Clusters   []Cluster
	Units      []Unit
	ColCluster []int32 // column -> cluster ID
	ElemUnit   []int32 // factor nonzero position -> unit ID
	// TotalWork is the sum of all element work (independent of the
	// partitioning; includes the cost of padded zeros when relaxed).
	TotalWork int64
	// Relax reports what relaxation did (zero value when disabled).
	Relax symbolic.RelaxStats
}

// NewPartition runs the partitioning pipeline of Section 3 on the factor
// structure f: cluster identification, block partitioning and dependency
// analysis.
func NewPartition(f *symbolic.Factor, opts Options) *Partition {
	opts = opts.Normalized()
	var stats symbolic.RelaxStats
	if opts.RelaxZeros > 0 {
		f, stats = symbolic.Relax(f, opts.RelaxZeros)
	}
	p := &Partition{F: f, Opts: opts, Relax: stats}
	p.identifyClusters()
	p.partitionBlocks()
	ops := model.NewOps(f)
	elemWork := model.ElementWork(ops)
	p.TotalWork = model.TotalWork(elemWork)
	p.mapElements(elemWork)
	p.computeDeps(ops)
	return p
}

// UnitOf returns the unit ID containing factor element (i, j), i >= j.
// It panics if (i, j) is not in the factor structure.
func (p *Partition) UnitOf(i, j int) int {
	f := p.F
	col := f.Col(j)
	lo, hi := 0, len(col)
	for lo < hi {
		mid := (lo + hi) / 2
		if col[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(col) || col[lo] != i {
		panic(fmt.Sprintf("core: element (%d,%d) not in factor", i, j))
	}
	return int(p.ElemUnit[f.ColPtr[j]+lo])
}

// identifyClusters finds the clusters of Section 3.1 from the factor's
// fundamental supernodes, applying the minimum-width rule.
func (p *Partition) identifyClusters() {
	f := p.F
	starts := f.Supernodes()
	p.ColCluster = make([]int32, f.N)
	for k := 0; k+1 < len(starts); k++ {
		s, e := starts[k], starts[k+1]
		if e-s < p.Opts.MinClusterWidth || e-s == 1 {
			// "No strip of columns less than [width] columns wide is
			// acceptable as a cluster — it is broken up into individual
			// columns."
			for j := s; j < e; j++ {
				id := len(p.Clusters)
				p.Clusters = append(p.Clusters, Cluster{
					ID: id, ColLo: j, ColHi: j, Single: true,
				})
				p.ColCluster[j] = int32(id)
			}
			continue
		}
		id := len(p.Clusters)
		cl := Cluster{ID: id, ColLo: s, ColHi: e - 1}
		// Dense rectangles below the triangle: the sub-diagonal rows of the
		// first column (identical for all columns of a supernode) split
		// into contiguous runs.
		rows := f.Col(s)
		var below []int
		for _, r := range rows {
			if r >= e {
				below = append(below, r)
			}
		}
		for a := 0; a < len(below); {
			b := a
			for b+1 < len(below) && below[b+1] == below[b]+1 {
				b++
			}
			cl.Rects = append(cl.Rects, Rect{RowLo: below[a], RowHi: below[b]})
			a = b + 1
		}
		p.Clusters = append(p.Clusters, cl)
		for j := s; j < e; j++ {
			p.ColCluster[j] = int32(id)
		}
	}
}

// partitionBlocks splits each cluster's dense blocks into unit blocks
// (Section 3.2).
func (p *Partition) partitionBlocks() {
	g := p.Opts.Grain
	for ci := range p.Clusters {
		cl := &p.Clusters[ci]
		if cl.Single {
			j := cl.ColLo
			u := Unit{
				ID: len(p.Units), Kind: Column, Cluster: ci,
				RowLo: j, RowHi: lastRow(p.F, j), ColLo: j, ColHi: j,
			}
			cl.ColUnit = u.ID
			p.Units = append(p.Units, u)
			continue
		}
		m := cl.Width()
		// Triangle: number of bands b is the largest with b(b+1)/2 units
		// not exceeding Pd = max(1, triangle-elements / g).
		triElems := m * (m + 1) / 2
		pd := triElems / g
		if pd < 1 {
			pd = 1
		}
		b := 1
		for (b+1)*(b+2)/2 <= pd && b+1 <= m {
			b++
		}
		cl.BandBounds = splitRange(cl.ColLo, cl.ColHi+1, b)
		cl.TriUnits = make([]int, b)
		cl.BandRects = make([][]int, b)
		for bi := 0; bi < b; bi++ {
			lo, hi := cl.BandBounds[bi], cl.BandBounds[bi+1]-1
			// Create the band's rectangles before its triangle: the
			// triangle receives updates from the rectangles to its left
			// (category 8), so unit IDs stay topologically ordered.
			cl.BandRects[bi] = make([]int, bi)
			for bj := 0; bj < bi; bj++ {
				clo, chi := cl.BandBounds[bj], cl.BandBounds[bj+1]-1
				r := Unit{
					ID: len(p.Units), Kind: Rectangle, Cluster: ci,
					RowLo: lo, RowHi: hi, ColLo: clo, ColHi: chi,
				}
				cl.BandRects[bi][bj] = r.ID
				p.Units = append(p.Units, r)
			}
			u := Unit{
				ID: len(p.Units), Kind: Triangle, Cluster: ci,
				RowLo: lo, RowHi: hi, ColLo: lo, ColHi: hi,
			}
			cl.TriUnits[bi] = u.ID
			p.Units = append(p.Units, u)
		}
		// Allocation order within the triangle: triangles top to bottom,
		// then band rectangles top to bottom, left to right.
		cl.TriAlloc = append([]int(nil), cl.TriUnits...)
		for bi := 1; bi < b; bi++ {
			cl.TriAlloc = append(cl.TriAlloc, cl.BandRects[bi]...)
		}
		// Rectangles below the triangle: near-square grids of at most
		// Pd = max(1, area/g) cells.
		for ri := range cl.Rects {
			r := &cl.Rects[ri]
			h := r.RowHi - r.RowLo + 1
			area := h * m
			rpd := area / g
			if rpd < 1 {
				rpd = 1
			}
			qr, qc := gridShape(h, m, rpd)
			r.RowSplits = splitRange(r.RowLo, r.RowHi+1, qr)
			r.ColSplits = splitRange(cl.ColLo, cl.ColHi+1, qc)
			r.Units = make([][]int, qr)
			for a := 0; a < qr; a++ {
				r.Units[a] = make([]int, qc)
				for c := 0; c < qc; c++ {
					u := Unit{
						ID: len(p.Units), Kind: Rectangle, Cluster: ci,
						RowLo: r.RowSplits[a], RowHi: r.RowSplits[a+1] - 1,
						ColLo: r.ColSplits[c], ColHi: r.ColSplits[c+1] - 1,
					}
					r.Units[a][c] = u.ID
					p.Units = append(p.Units, u)
				}
			}
		}
	}
}

func lastRow(f *symbolic.Factor, j int) int {
	col := f.Col(j)
	return col[len(col)-1]
}

// splitRange divides [lo, hi) into parts near-equal contiguous pieces and
// returns the part boundaries (len parts+1). Earlier pieces receive the
// remainder, making the top bands of a triangle the (slightly) larger ones.
func splitRange(lo, hi, parts int) []int {
	n := hi - lo
	if parts > n {
		parts = n
	}
	bounds := make([]int, parts+1)
	base, rem := n/parts, n%parts
	x := lo
	for i := 0; i < parts; i++ {
		bounds[i] = x
		x += base
		if i < rem {
			x++
		}
	}
	bounds[parts] = hi
	return bounds
}

// gridShape chooses a qr x qc grid with qr <= h, qc <= w and qr*qc <= pd,
// maximizing cell count and preferring near-square cells.
func gridShape(h, w, pd int) (qr, qc int) {
	bestQr, bestQc, bestCells := 1, 1, 1
	var bestAspect float64 = -1
	for c := 1; c <= w && c <= pd; c++ {
		r := pd / c
		if r > h {
			r = h
		}
		cells := r * c
		// Cell aspect ratio distance from square.
		ch := float64(h) / float64(r)
		cw := float64(w) / float64(c)
		aspect := ch / cw
		if aspect < 1 {
			aspect = 1 / aspect
		}
		if cells > bestCells || (cells == bestCells && aspect < bestAspect) {
			bestQr, bestQc, bestCells, bestAspect = r, c, cells, aspect
		}
	}
	return bestQr, bestQc
}

// mapElements assigns every factor nonzero to its unit block and
// accumulates per-unit element counts and work.
func (p *Partition) mapElements(elemWork []int64) {
	f := p.F
	p.ElemUnit = make([]int32, f.NNZ())
	for j := 0; j < f.N; j++ {
		ci := p.ColCluster[j]
		cl := &p.Clusters[ci]
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			i := f.RowInd[q]
			var uid int
			switch {
			case cl.Single:
				uid = cl.ColUnit
			case i <= cl.ColHi:
				rb := bandIndex(cl.BandBounds, i)
				cb := bandIndex(cl.BandBounds, j)
				if rb == cb {
					uid = cl.TriUnits[rb]
				} else {
					uid = cl.BandRects[rb][cb]
				}
			default:
				uid = cl.rectUnitOf(i, j)
			}
			p.ElemUnit[q] = int32(uid)
			p.Units[uid].Elems++
			p.Units[uid].Work += elemWork[q]
		}
	}
}

// bandIndex locates x within the band boundaries (bounds[k] <= x <
// bounds[k+1]).
func bandIndex(bounds []int, x int) int {
	lo, hi := 0, len(bounds)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if bounds[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// rectUnitOf finds the below-triangle unit holding element (i, j).
func (cl *Cluster) rectUnitOf(i, j int) int {
	// Binary search the rectangle containing row i.
	lo, hi := 0, len(cl.Rects)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if cl.Rects[mid].RowLo <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	r := &cl.Rects[lo]
	if i < r.RowLo || i > r.RowHi {
		panic(fmt.Sprintf("core: row %d not in any rectangle of cluster %d", i, cl.ID))
	}
	return r.Units[bandIndex(r.RowSplits, i)][bandIndex(r.ColSplits, j)]
}
