package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// categoryMatrix builds a matrix whose factor exhibits every one of the
// paper's ten dependency categories (Section 3.3, Figure 4) under
// Options{Grain: 4, MinClusterWidth: 5}:
//
//   - columns 0..3: single-column clusters feeding later blocks
//     (categories 1-3);
//   - cluster A: columns 4..9, a 6-wide supernode whose triangle splits
//     into 2 bands with dense rectangles below on rows 10..13 and rows
//     16..19 (each a 4x6 block split into a 2x3 grid);
//   - columns 10..13: single-column clusters updated by A's rectangles
//     (categories 6 and 7). Pendant nodes 26..29, one per column, keep
//     their structures non-nested so fill cannot merge them into a
//     supernode;
//   - columns 14..15: isolated (independent single columns);
//   - cluster C: the trailing supernode starting at column 16 (fill
//     extends it through the pendants to column 29), whose band triangles
//     and band rectangles realize categories 4, 5, 8, 9 and 10 — with the
//     category 9 source pairs coming from A's two rectangle row-bands.
func categoryMatrix() *sparse.Matrix {
	var edges [][2]int
	clique := func(lo, hi int) {
		for i := lo; i <= hi; i++ {
			for j := lo; j < i; j++ {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	connect := func(rows []int, lo, hi int) {
		for _, r := range rows {
			for j := lo; j <= hi; j++ {
				edges = append(edges, [2]int{r, j})
			}
		}
	}
	// Leading sparse columns.
	edges = append(edges, [2]int{0, 1}, [2]int{0, 2}) // col 0 updates cols 1,2
	edges = append(edges, [2]int{1, 4}, [2]int{1, 10})
	edges = append(edges, [2]int{2, 10}, [2]int{2, 16})
	edges = append(edges, [2]int{3, 5}, [2]int{3, 17})
	// Cluster A: columns 4..9 dense, rows 10..13 and 16..19 below.
	clique(4, 9)
	connect([]int{10, 11, 12, 13, 16, 17, 18, 19}, 4, 9)
	// Private pendants keep 10..13 single-column clusters.
	edges = append(edges, [2]int{10, 26}, [2]int{11, 27}, [2]int{12, 28}, [2]int{13, 29})
	// Trailing block: columns 16..21 dense with rows 22..25 below; fill
	// through the pendants extends the supernode to column 29.
	clique(16, 21)
	connect([]int{22, 23, 24, 25}, 16, 21)
	m, err := sparse.NewPattern(30, edges)
	if err != nil {
		panic(err)
	}
	return m
}

// classifyOp maps one element update to the paper's category number.
// Internal operations (both sources inside the target unit) return 0.
func classifyOp(p *Partition, u model.Update) int {
	sI := p.Units[p.ElemUnit[u.SrcI]]
	sJ := p.Units[p.ElemUnit[u.SrcJ]]
	tgt := p.Units[p.ElemUnit[u.Tgt]]
	if sI.ID == tgt.ID && sJ.ID == tgt.ID {
		return 0 // internal
	}
	same := sI.ID == sJ.ID
	switch sJ.Kind {
	case Column:
		// Both sources live in the same source column.
		switch tgt.Kind {
		case Column:
			return 1
		case Triangle:
			return 2
		default:
			return 3
		}
	case Triangle:
		// The (j,k) source comes from a triangle; target must be a
		// rectangle (a triangle target would make the op internal).
		if sI.ID == tgt.ID {
			return 4 // the rectangle supplies its own (i,k)
		}
		return 5 // triangle + rectangle update a rectangle
	default: // Rectangle provides (j,k)
		switch tgt.Kind {
		case Column:
			if same {
				return 6
			}
			return 7
		case Triangle:
			if same {
				return 8
			}
			return 9
		default:
			if sI.Kind == Triangle {
				return 5 // triangle supplies (i,k); rectangle the (j,k)
			}
			return 10
		}
	}
}

func TestDependencyCategories(t *testing.T) {
	m := categoryMatrix()
	f := symbolic.Analyze(m) // natural order preserves the construction
	p := NewPartition(f, Options{Grain: 4, MinClusterWidth: 5})

	// Sanity: the intended layout materialized.
	var multi []*Cluster
	for ci := range p.Clusters {
		if !p.Clusters[ci].Single {
			multi = append(multi, &p.Clusters[ci])
		}
	}
	if len(multi) != 2 || multi[0].ColLo != 4 || multi[0].ColHi != 9 || multi[1].ColLo != 16 {
		t.Fatalf("unexpected clusters: %+v", multi)
	}
	if len(multi[0].TriUnits) < 2 || len(multi[1].TriUnits) < 3 {
		t.Fatalf("triangle bands: A=%d C=%d, want >=2 and >=3",
			len(multi[0].TriUnits), len(multi[1].TriUnits))
	}
	if len(multi[0].Rects) != 2 {
		t.Fatalf("cluster A has %d rectangles, want 2 (rows 10..13 and 16..19)", len(multi[0].Rects))
	}
	for j := 10; j <= 13; j++ {
		if !p.Clusters[p.ColCluster[j]].Single {
			t.Fatalf("column %d is not a single-column cluster", j)
		}
	}

	ops := model.NewOps(f)
	seen := make(map[int]int)
	inPreds := func(tgt, src int32) bool {
		if tgt == src {
			return true
		}
		for _, pr := range p.Units[tgt].Preds {
			if pr == src {
				return true
			}
		}
		return false
	}
	ops.ForEachUpdate(func(u model.Update) {
		cat := classifyOp(p, u)
		seen[cat]++
		// Completeness: every external source unit must be a predecessor.
		tu := p.ElemUnit[u.Tgt]
		if !inPreds(tu, p.ElemUnit[u.SrcI]) || !inPreds(tu, p.ElemUnit[u.SrcJ]) {
			i, j := f.RowInd[u.Tgt], f.RowInd[u.SrcJ]
			t.Fatalf("update into (%d,?) target unit %d misses a source unit in Preds (srcJ row %d)",
				i, tu, j)
		}
	})
	for cat := 1; cat <= 10; cat++ {
		if seen[cat] == 0 {
			t.Errorf("category %d never occurred (histogram: %v)", cat, seen)
		}
	}
	if seen[0] == 0 {
		t.Errorf("no internal updates seen — implausible")
	}
	t.Logf("category histogram: %v", seen)
}

func TestClassifierCoversAllOpsOnSuiteMatrix(t *testing.T) {
	// On a real problem every op classifies into 0..10 and categories
	// 1-3 (column sources) plus several dense ones occur.
	f := analyzedMatrix(gen.Lap30())
	p := NewPartition(f, Options{Grain: 4, MinClusterWidth: 4})
	ops := model.NewOps(f)
	seen := make(map[int]int)
	ops.ForEachUpdate(func(u model.Update) {
		seen[classifyOp(p, u)]++
	})
	for cat := range seen {
		if cat < 0 || cat > 10 {
			t.Fatalf("classifier produced out-of-range category %d", cat)
		}
	}
	for _, cat := range []int{1, 2, 3} {
		if seen[cat] == 0 {
			t.Errorf("category %d missing on LAP30 (histogram %v)", cat, seen)
		}
	}
}
