package core

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// order and symbolic are used by the relaxation tests below.

func analyzedMatrix(m *sparse.Matrix) *symbolic.Factor {
	pm, err := m.Permute(order.MMD(m))
	if err != nil {
		panic(err)
	}
	return symbolic.Analyze(pm)
}

func newPart(m *sparse.Matrix, g, w int) *Partition {
	return NewPartition(analyzedMatrix(m), Options{Grain: g, MinClusterWidth: w})
}

// checkInvariants verifies the structural invariants every partition must
// satisfy.
func checkInvariants(t *testing.T, p *Partition) {
	t.Helper()
	f := p.F
	// Clusters tile the columns contiguously.
	nextCol := 0
	for ci := range p.Clusters {
		cl := &p.Clusters[ci]
		if cl.ColLo != nextCol {
			t.Fatalf("cluster %d starts at %d, want %d", ci, cl.ColLo, nextCol)
		}
		if cl.ColHi < cl.ColLo {
			t.Fatalf("cluster %d empty", ci)
		}
		if cl.Single && cl.ColHi != cl.ColLo {
			t.Fatalf("single cluster %d spans %d..%d", ci, cl.ColLo, cl.ColHi)
		}
		if !cl.Single && cl.Width() < p.Opts.MinClusterWidth {
			t.Fatalf("cluster %d width %d below minimum %d", ci, cl.Width(), p.Opts.MinClusterWidth)
		}
		nextCol = cl.ColHi + 1
	}
	if nextCol != f.N {
		t.Fatalf("clusters cover %d of %d columns", nextCol, f.N)
	}
	// Every element mapped to exactly one unit; counts and work add up.
	elems := 0
	var work int64
	for ui := range p.Units {
		elems += p.Units[ui].Elems
		work += p.Units[ui].Work
	}
	if elems != f.NNZ() {
		t.Fatalf("unit elements sum to %d, want nnz %d", elems, f.NNZ())
	}
	if work != p.TotalWork {
		t.Fatalf("unit work sums to %d, want %d", work, p.TotalWork)
	}
	// Element-unit map consistent with unit extents.
	for j := 0; j < f.N; j++ {
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			i := f.RowInd[q]
			u := &p.Units[p.ElemUnit[q]]
			if j < u.ColLo || j > u.ColHi || i < u.RowLo || i > u.RowHi {
				t.Fatalf("element (%d,%d) mapped to unit %d with extents rows %d..%d cols %d..%d",
					i, j, u.ID, u.RowLo, u.RowHi, u.ColLo, u.ColHi)
			}
			if u.Kind == Triangle && (i > u.RowHi || j < u.ColLo) {
				t.Fatalf("triangle extent violation")
			}
		}
	}
	// No unit is empty, and dense units are truly dense: element count
	// equals extent area.
	for ui := range p.Units {
		u := &p.Units[ui]
		if u.Elems == 0 {
			t.Fatalf("unit %d (%v) holds no elements", ui, u.Kind)
		}
		switch u.Kind {
		case Triangle:
			m := u.RowHi - u.RowLo + 1
			if u.Elems != m*(m+1)/2 {
				t.Fatalf("triangle unit %d has %d elems, extent wants %d", ui, u.Elems, m*(m+1)/2)
			}
		case Rectangle:
			area := (u.RowHi - u.RowLo + 1) * (u.ColHi - u.ColLo + 1)
			if u.Elems != area {
				t.Fatalf("rect unit %d has %d elems, extent wants %d", ui, u.Elems, area)
			}
		}
	}
}

func TestPartitionInvariantsSuite(t *testing.T) {
	for _, tm := range gen.Suite() {
		for _, g := range []int{4, 25} {
			p := newPart(tm.Build(), g, 4)
			checkInvariants(t, p)
		}
	}
}

func TestPartitionInvariantsRandom(t *testing.T) {
	f := func(seed int64) bool {
		m := gen.Random(60, 1.5, seed)
		p := newPart(m, 4, 3)
		// Reuse invariant checks via a sub-test pattern: call and recover.
		st := &testing.T{}
		checkInvariants(st, p)
		return !st.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGrainControlsUnitCount(t *testing.T) {
	m := gen.Lap30()
	p4 := newPart(m, 4, 4)
	p25 := newPart(m, 25, 4)
	if len(p25.Units) >= len(p4.Units) {
		t.Errorf("g=25 has %d units, g=4 has %d; larger grain must give fewer units",
			len(p25.Units), len(p4.Units))
	}
	// Multi-unit dense blocks respect the grain on average.
	for _, p := range []*Partition{p4, p25} {
		for ci := range p.Clusters {
			cl := &p.Clusters[ci]
			if cl.Single {
				continue
			}
			if len(cl.TriUnits) > 1 {
				tri := 0
				for _, uid := range cl.TriAlloc {
					tri += p.Units[uid].Elems
				}
				if tri/len(cl.TriAlloc) < p.Opts.Grain {
					t.Fatalf("cluster %d triangle avg unit size %d below grain %d",
						ci, tri/len(cl.TriAlloc), p.Opts.Grain)
				}
			}
		}
	}
}

func TestMinWidthBreaksClusters(t *testing.T) {
	m := gen.Lap30()
	p2 := newPart(m, 4, 2)
	p8 := newPart(m, 4, 8)
	multi2, multi8 := 0, 0
	for ci := range p2.Clusters {
		if !p2.Clusters[ci].Single {
			multi2++
		}
	}
	for ci := range p8.Clusters {
		if !p8.Clusters[ci].Single {
			multi8++
		}
	}
	if multi8 >= multi2 {
		t.Errorf("width 8 has %d multi clusters, width 2 has %d; larger width must give fewer",
			multi8, multi2)
	}
	// With a huge width everything is single columns.
	pAll := newPart(m, 4, 10000)
	for ci := range pAll.Clusters {
		if !pAll.Clusters[ci].Single {
			t.Fatalf("cluster %d not single despite huge width", ci)
		}
	}
}

func TestFigure3Partition(t *testing.T) {
	// A synthetic cluster like Figure 3: one dense trailing supernode with
	// rectangles below. Build a matrix whose factor has a 6-column
	// supernode at columns 6..11 with two below-rectangles by construction:
	// columns 0..5 sparse, then a dense block.
	var edges [][2]int
	// Dense clique on 6..11 (the cluster triangle).
	for i := 6; i < 12; i++ {
		for j := 6; j < i; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	// Rows 12..13 and 15..16 dense against the clique (two rectangles,
	// split by the absent row 14).
	for _, r := range []int{12, 13, 15, 16} {
		for j := 6; j < 12; j++ {
			edges = append(edges, [2]int{r, j})
		}
	}
	// Node 17 hangs off column 12 only, so column 12's structure is not
	// nested in column 11's and the supernode ends at column 11 (otherwise
	// fill would extend the fundamental supernode through 12 and 13).
	edges = append(edges, [2]int{17, 12})
	m, err := sparse.NewPattern(18, edges)
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(m) // natural order keeps the layout
	p := NewPartition(f, Options{Grain: 4, MinClusterWidth: 4})
	// Find the multi-column cluster at 6..11.
	var cl *Cluster
	for ci := range p.Clusters {
		if !p.Clusters[ci].Single && p.Clusters[ci].ColLo == 6 {
			cl = &p.Clusters[ci]
		}
	}
	if cl == nil {
		t.Fatal("no cluster found at columns 6..11")
	}
	if cl.ColHi != 11 {
		t.Fatalf("cluster 6..%d, want 6..11", cl.ColHi)
	}
	// Two dense rectangles below: rows 12..13 and 15..16.
	if len(cl.Rects) != 2 || cl.Rects[0].RowLo != 12 || cl.Rects[0].RowHi != 13 ||
		cl.Rects[1].RowLo != 15 || cl.Rects[1].RowHi != 16 {
		t.Fatalf("rects = %+v, want rows 12..13 and 15..16", cl.Rects)
	}
	// Each 2x6 rectangle with g=4 splits into a 1x3 grid (r21 r22 r23 in
	// the figure's style).
	for ri := range cl.Rects {
		r := &cl.Rects[ri]
		if len(r.Units) != 1 || len(r.Units[0]) != 3 {
			t.Errorf("rect %d grid = %dx%d, want 1x3", ri, len(r.Units), len(r.Units[0]))
		}
	}
	// Triangle of 21 elements with g=4: Pd=5, b=2 -> 2 triangles + 1 rect.
	if len(cl.TriUnits) != 2 {
		t.Errorf("triangle bands = %d, want 2", len(cl.TriUnits))
	}
	if len(cl.TriAlloc) != 3 {
		t.Errorf("triangle partition units = %d, want 3", len(cl.TriAlloc))
	}
	// Allocation order: triangles first, then the band rectangle.
	if p.Units[cl.TriAlloc[0]].Kind != Triangle || p.Units[cl.TriAlloc[1]].Kind != Triangle ||
		p.Units[cl.TriAlloc[2]].Kind != Rectangle {
		t.Errorf("allocation order wrong: %v %v %v",
			p.Units[cl.TriAlloc[0]].Kind, p.Units[cl.TriAlloc[1]].Kind, p.Units[cl.TriAlloc[2]].Kind)
	}
}

func TestUnitOfMatchesElemUnit(t *testing.T) {
	m := gen.Grid9(8, 8)
	p := newPart(m, 4, 3)
	f := p.F
	for j := 0; j < f.N; j++ {
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			if got, want := p.UnitOf(f.RowInd[q], j), int(p.ElemUnit[q]); got != want {
				t.Fatalf("UnitOf(%d,%d) = %d, want %d", f.RowInd[q], j, got, want)
			}
		}
	}
}

// depsEqual compares the categorical engine output with the oracle.
func depsEqual(p *Partition, oracle [][]int32) (missing, extra int) {
	for ui := range p.Units {
		got := p.Units[ui].Preds
		want := oracle[ui]
		gi, wi := 0, 0
		for gi < len(got) && wi < len(want) {
			switch {
			case got[gi] == want[wi]:
				gi++
				wi++
			case got[gi] < want[wi]:
				extra++
				gi++
			default:
				missing++
				wi++
			}
		}
		extra += len(got) - gi
		missing += len(want) - wi
	}
	return
}

func TestDepsMatchOracleSuite(t *testing.T) {
	for _, tm := range gen.Suite() {
		for _, g := range []int{4, 25} {
			f := analyzedMatrix(tm.Build())
			p := NewPartition(f, Options{Grain: g, MinClusterWidth: 4})
			oracle := p.DepsOracle(model.NewOps(f))
			missing, extra := depsEqual(p, oracle)
			if missing != 0 {
				t.Errorf("%s g=%d: engine missing %d oracle dependencies", tm.Name, g, missing)
			}
			if extra != 0 {
				t.Errorf("%s g=%d: engine reports %d dependencies the oracle does not", tm.Name, g, extra)
			}
		}
	}
}

func TestDepsMatchOracleRandom(t *testing.T) {
	f := func(seed int64) bool {
		m := gen.Random(45, 1.5, seed)
		fac := analyzedMatrix(m)
		p := NewPartition(fac, Options{Grain: 3, MinClusterWidth: 2})
		oracle := p.DepsOracle(model.NewOps(fac))
		missing, extra := depsEqual(p, oracle)
		return missing == 0 && extra == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDepsAcyclicAndOrdered(t *testing.T) {
	// A unit's predecessors always have source columns at or before the
	// target's columns, so dependency edges never point forward in the
	// cluster/column order — the graph is acyclic by construction.
	m := gen.Lap30()
	p := newPart(m, 4, 4)
	for ui := range p.Units {
		u := &p.Units[ui]
		for _, pr := range u.Preds {
			v := &p.Units[pr]
			if v.ColLo > u.ColHi {
				t.Fatalf("unit %d (cols %d..%d) depends on later unit %d (cols %d..%d)",
					ui, u.ColLo, u.ColHi, pr, v.ColLo, v.ColHi)
			}
		}
	}
}

func TestIndependentColumnsExist(t *testing.T) {
	m := gen.Lap30()
	p := newPart(m, 4, 4)
	indep := 0
	for ui := range p.Units {
		if p.Units[ui].Kind == Column && len(p.Units[ui].Preds) == 0 {
			indep++
		}
	}
	if indep == 0 {
		t.Error("no independent columns found; leaf columns of the etree should qualify")
	}
}

func BenchmarkPartitionLap30(b *testing.B) {
	f := analyzedMatrix(gen.Lap30())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPartition(f, Options{Grain: 4, MinClusterWidth: 4})
	}
}

func BenchmarkDepsOracleLap30(b *testing.B) {
	f := analyzedMatrix(gen.Lap30())
	p := NewPartition(f, Options{Grain: 4, MinClusterWidth: 4})
	ops := model.NewOps(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DepsOracle(ops)
	}
}

func TestRelaxedPartitionMatchesOracle(t *testing.T) {
	// Relaxed (zero-padded) factors keep the blocks dense on their
	// extents, so the categorical engine must still match the oracle.
	m := gen.Lap30()
	perm := order.MMD(m)
	perm, err := symbolic.PostOrderPerm(m, perm)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(pm)
	p := NewPartition(f, Options{Grain: 25, MinClusterWidth: 4, RelaxZeros: 0.15})
	if p.Relax.Merges == 0 {
		t.Fatal("relaxation inactive; test needs merges")
	}
	oracle := p.DepsOracle(model.NewOps(p.F))
	missing, extra := depsEqual(p, oracle)
	if missing != 0 || extra != 0 {
		t.Errorf("relaxed partition: %d missing, %d extra dependencies", missing, extra)
	}
	checkInvariants(t, p)
}

func TestPartitionDeterministic(t *testing.T) {
	f := analyzedMatrix(gen.Lap30())
	a := NewPartition(f, Options{Grain: 4, MinClusterWidth: 4})
	b := NewPartition(f, Options{Grain: 4, MinClusterWidth: 4})
	if len(a.Units) != len(b.Units) {
		t.Fatal("unit counts differ between runs")
	}
	for i := range a.Units {
		ua, ub := a.Units[i], b.Units[i]
		if ua.RowLo != ub.RowLo || ua.ColLo != ub.ColLo || ua.Work != ub.Work ||
			len(ua.Preds) != len(ub.Preds) {
			t.Fatalf("unit %d differs between runs", i)
		}
		for k := range ua.Preds {
			if ua.Preds[k] != ub.Preds[k] {
				t.Fatalf("unit %d preds differ", i)
			}
		}
	}
}
