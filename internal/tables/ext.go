package tables

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/sched"
	"repro/internal/symbolic"
	"repro/internal/traffic"
)

// RelaxRow is one point of the cluster-relaxation ablation (Ext-D): the
// paper's "allowing some zeros to be part of a triangle", measured.
type RelaxRow struct {
	Frac       float64
	Merges     int
	PaddedNNZ  int
	Supernodes int
	Units      int
	Traffic    int64
	A          float64
	TotalWork  int64 // includes the cost of computing on padded zeros
}

// RelaxSweep measures cluster relaxation on an etree-postordered MMD
// ordering of the problem's matrix (postordering makes supernode parents
// adjacent, which is what gives relaxation room to merge).
func RelaxSweep(tm gen.TestMatrix, procs, grain int, fracs []float64) ([]RelaxRow, error) {
	if procs < 1 {
		return nil, fmt.Errorf("tables: invalid processor count %d", procs)
	}
	a := tm.Build()
	perm := order.MMD(a)
	perm, err := symbolic.PostOrderPerm(a, perm)
	if err != nil {
		return nil, err
	}
	pm, err := a.Permute(perm)
	if err != nil {
		return nil, err
	}
	f := symbolic.Analyze(pm)
	var rows []RelaxRow
	for _, frac := range fracs {
		part := core.NewPartition(f, core.Options{
			Grain: grain, MinClusterWidth: DefaultWidth, RelaxZeros: frac,
		})
		s := sched.BlockMap(part, procs)
		r := traffic.Simulate(model.NewOps(part.F), s)
		sn := part.F.Supernodes()
		rows = append(rows, RelaxRow{
			Frac: frac, Merges: part.Relax.Merges, PaddedNNZ: part.Relax.PaddedNNZ,
			Supernodes: len(sn) - 1, Units: len(part.Units),
			Traffic: r.Total, A: s.Imbalance(), TotalWork: part.TotalWork,
		})
	}
	return rows, nil
}

// FormatRelaxSweep renders the relaxation ablation.
func FormatRelaxSweep(name string, procs, grain int, rows []RelaxRow) string {
	mustProcs(procs)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ext-D: Cluster relaxation (allowed zeros), %s postordered, P=%d, g=%d\n",
		name, procs, grain)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Frac\tMerges\tPadded nnz\tSupernodes\tUnits\tTraffic\tA\tTotal work")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f\t%d\t%d\t%d\t%d\t%d\t%.2f\t%d\n",
			r.Frac, r.Merges, r.PaddedNNZ, r.Supernodes, r.Units, r.Traffic, r.A, r.TotalWork)
	}
	w.Flush()
	return sb.String()
}

// AllocRow compares the Section 3.4 allocator with the work-aware greedy
// variant (Ext-E, the paper's Section 5 suggestion).
type AllocRow struct {
	Name                     string
	P                        int
	A34, AGreedy             float64
	Traffic34, TrafficGreedy int64
}

// AllocCompare runs both allocators over the suite at grain 25.
func AllocCompare(problems []*Problem) []AllocRow {
	var rows []AllocRow
	for _, p := range problems {
		for _, np := range DefaultProcs {
			part := p.Part(25, DefaultWidth)
			s34 := sched.BlockMap(part, np)
			sgr := sched.BlockMapGreedy(part, np)
			r34 := traffic.Simulate(p.Ops, s34)
			rgr := traffic.Simulate(p.Ops, sgr)
			rows = append(rows, AllocRow{
				Name: p.Meta.Name, P: np,
				A34: s34.Imbalance(), AGreedy: sgr.Imbalance(),
				Traffic34: r34.Total, TrafficGreedy: rgr.Total,
			})
		}
	}
	return rows
}

// FormatAllocCompare renders the allocator ablation.
func FormatAllocCompare(rows []AllocRow) string {
	var sb strings.Builder
	sb.WriteString("Ext-E: Allocator ablation (Section 3.4 vs work-aware greedy), g=25\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tA §3.4\tA greedy\tTraffic §3.4\tTraffic greedy")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%d\t%d\n",
			r.Name, r.P, r.A34, r.AGreedy, r.Traffic34, r.TrafficGreedy)
	}
	w.Flush()
	return sb.String()
}

// OrderRow compares fill-reducing orderings end to end (Ext-F).
type OrderRow struct {
	Ordering     string
	FactorNNZ    int
	TotalWork    int64
	WrapTraffic  int64 // P=16
	BlockTraffic int64 // P=16, g=25
	BlockA       float64
}

// OrderCompare runs the pipeline for natural, RCM, MMD, postordered MMD
// and nested dissection orderings of one matrix.
func OrderCompare(tm gen.TestMatrix, procs int) ([]OrderRow, error) {
	if procs < 1 {
		return nil, fmt.Errorf("tables: invalid processor count %d", procs)
	}
	a := tm.Build()
	mmd := order.MMD(a)
	post, err := symbolic.PostOrderPerm(a, mmd)
	if err != nil {
		return nil, err
	}
	orderings := []struct {
		name string
		perm []int
	}{
		{"natural", order.Natural(a.N)},
		{"RCM", order.RCM(a)},
		{"MMD", mmd},
		{"MMD+post", post},
		{"ND", order.NestedDissection(a, 32)},
	}
	var rows []OrderRow
	for _, o := range orderings {
		pm, err := a.Permute(o.perm)
		if err != nil {
			return nil, err
		}
		f := symbolic.Analyze(pm)
		ops := model.NewOps(f)
		ew := model.ElementWork(ops)
		part := core.NewPartition(f, core.Options{Grain: 25, MinClusterWidth: DefaultWidth})
		bs := sched.BlockMap(part, procs)
		rows = append(rows, OrderRow{
			Ordering:     o.name,
			FactorNNZ:    f.NNZ(),
			TotalWork:    model.TotalWork(ew),
			WrapTraffic:  traffic.Simulate(ops, sched.WrapMap(f, ew, procs)).Total,
			BlockTraffic: traffic.Simulate(ops, bs).Total,
			BlockA:       bs.Imbalance(),
		})
	}
	return rows, nil
}

// FormatOrderCompare renders the ordering ablation.
func FormatOrderCompare(name string, procs int, rows []OrderRow) string {
	mustProcs(procs)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ext-F: Ordering ablation, %s, P=%d (block at g=25)\n", name, procs)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Ordering\tnnz(L)\tTotal work\tWrap traffic\tBlock traffic\tBlock A")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\n",
			r.Ordering, r.FactorNNZ, r.TotalWork, r.WrapTraffic, r.BlockTraffic, r.BlockA)
	}
	w.Flush()
	return sb.String()
}

// SolveRow reports triangular-solve load balance under the factorization's
// assignment (Ext-G, the paper's Section 5 remark).
type SolveRow struct {
	Name                      string
	P                         int
	FactorABlock, SolveABlock float64
	CombinedABlock            float64
	FactorAWrap, SolveAWrap   float64
}

// SolveBalance measures how the factorization assignment balances the
// solve phase, block (g=25) vs wrap.
func SolveBalance(problems []*Problem) []SolveRow {
	var rows []SolveRow
	for _, p := range problems {
		solveW := model.SolveElementWork(p.F)
		for _, np := range DefaultProcs {
			bs, _ := p.Block(25, DefaultWidth, np)
			ws, _ := p.Wrap(np)
			bSolve := bs.AccumulateElemWork(solveW)
			wSolve := ws.AccumulateElemWork(solveW)
			combined := make([]int64, np)
			for q := range combined {
				combined[q] = bs.Work[q] + bSolve[q]
			}
			rows = append(rows, SolveRow{
				Name: p.Meta.Name, P: np,
				FactorABlock: bs.Imbalance(), SolveABlock: sched.ImbalanceOf(bSolve),
				CombinedABlock: sched.ImbalanceOf(combined),
				FactorAWrap:    ws.Imbalance(), SolveAWrap: sched.ImbalanceOf(wSolve),
			})
		}
	}
	return rows
}

// FormatSolveBalance renders the solve-phase study.
func FormatSolveBalance(rows []SolveRow) string {
	var sb strings.Builder
	sb.WriteString("Ext-G: Triangular-solve load balance under the factorization assignment (block g=25)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tA factor (block)\tA solve (block)\tA combined\tA factor (wrap)\tA solve (wrap)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Name, r.P, r.FactorABlock, r.SolveABlock, r.CombinedABlock, r.FactorAWrap, r.SolveAWrap)
	}
	w.Flush()
	return sb.String()
}

// DynamicRow compares static scan-order execution with dynamic
// critical-path execution (Ext-H).
type DynamicRow struct {
	Name                  string
	P                     int
	Scheme                string
	StaticEff, DynamicEff float64
	CritPathEff           float64 // upper bound: TotalWork / (P * CritPath)
}

// DynamicCompare measures how much a dynamic ready-queue recovers over
// static scan-order execution for the block scheme (g=25) and wrap.
func DynamicCompare(problems []*Problem) []DynamicRow {
	var rows []DynamicRow
	for _, p := range problems {
		for _, np := range DefaultProcs {
			part := p.Part(25, DefaultWidth)
			bs := sched.BlockMap(part, np)
			tasks := exec.BlockTasks(part, bs)
			st := exec.SimulateMakespan(tasks, np)
			dy := exec.SimulateMakespanDynamic(tasks, np)
			cp := exec.CriticalPath(tasks)
			rows = append(rows, DynamicRow{
				Name: p.Meta.Name, P: np, Scheme: "block g=25",
				StaticEff: st.Efficiency, DynamicEff: dy.Efficiency,
				CritPathEff: exec.Efficiency(np, cp, st.TotalWork),
			})
			wtasks := exec.ColumnTasks(p.F, p.Ops, p.ElemWork, np)
			wst := exec.SimulateMakespan(wtasks, np)
			wdy := exec.SimulateMakespanDynamic(wtasks, np)
			wcp := exec.CriticalPath(wtasks)
			rows = append(rows, DynamicRow{
				Name: p.Meta.Name, P: np, Scheme: "wrap",
				StaticEff: wst.Efficiency, DynamicEff: wdy.Efficiency,
				CritPathEff: exec.Efficiency(np, wcp, wst.TotalWork),
			})
		}
	}
	return rows
}

// FormatDynamicCompare renders the static-vs-dynamic execution study.
func FormatDynamicCompare(rows []DynamicRow) string {
	var sb strings.Builder
	sb.WriteString("Ext-H: Static scan-order vs dynamic critical-path execution\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tScheme\tEff static\tEff dynamic\tEff bound (CP)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%.3f\t%.3f\t%.3f\n",
			r.Name, r.P, r.Scheme, r.StaticEff, r.DynamicEff, r.CritPathEff)
	}
	w.Flush()
	return sb.String()
}

// CrossoverRow is one machine point of the block-vs-wrap crossover study
// (Ext-I). The paper's Section 4 argues that "if the application is run on
// a system with high communication cost as compared to computation cost,
// the block-based partitioning can give good performance, i.e. the savings
// in communication will more than offset the disadvantage of load
// imbalance". Modeling per-processor time as
//
//	T = Wmax + commCost * maxPerProcTraffic
//
// (work units per flop-pair, commCost work units per fetched element)
// makes that claim quantitative: the study sweeps commCost and reports the
// estimated times and the winner.
type CrossoverRow struct {
	CommCost  float64
	BlockTime float64 // block mapping, g=25
	WrapTime  float64
	Winner    string
}

// Crossover sweeps the communication/computation cost ratio for one
// problem and processor count.
func Crossover(p *Problem, procs int, costs []float64) []CrossoverRow {
	mustProcs(procs)
	bs, br := p.Block(25, DefaultWidth, procs)
	ws, wr := p.Wrap(procs)
	var rows []CrossoverRow
	for _, c := range costs {
		bt := float64(bs.MaxWork()) + c*float64(br.MaxPerProc())
		wt := float64(ws.MaxWork()) + c*float64(wr.MaxPerProc())
		winner := "wrap"
		if bt < wt {
			winner = "block"
		}
		rows = append(rows, CrossoverRow{CommCost: c, BlockTime: bt, WrapTime: wt, Winner: winner})
	}
	return rows
}

// CrossoverPoint returns the communication cost at which the block scheme
// begins to beat wrap (binary search over the closed-form model), or -1 if
// it always/never wins on the probed range.
func CrossoverPoint(p *Problem, procs int) float64 {
	mustProcs(procs)
	bs, br := p.Block(25, DefaultWidth, procs)
	ws, wr := p.Wrap(procs)
	dw := float64(bs.MaxWork() - ws.MaxWork())       // block's balance penalty
	dc := float64(wr.MaxPerProc() - br.MaxPerProc()) // block's traffic saving
	if dc <= 0 {
		return -1 // block never wins
	}
	if dw <= 0 {
		return 0 // block always wins
	}
	return dw / dc
}

// FormatCrossover renders the machine-parameter study.
func FormatCrossover(name string, procs int, rows []CrossoverRow, point float64) string {
	mustProcs(procs)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ext-I: Block-vs-wrap crossover, %s, P=%d (T = Wmax + c*maxTraffic)\n", name, procs)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Comm cost c\tBlock time\tWrap time\tWinner")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f\t%.0f\t%.0f\t%s\n", r.CommCost, r.BlockTime, r.WrapTime, r.Winner)
	}
	w.Flush()
	fmt.Fprintf(&sb, "crossover at c = %.2f work units per fetched element\n", point)
	return sb.String()
}

// MessageRow reports the consolidation study (Ext-K): the fifth step of
// the paper's pipeline, grouping element fetches into messages.
type MessageRow struct {
	Name                        string
	P                           int
	BlockMsgs, WrapMsgs         int64
	BlockVolume, WrapVolume     int64
	BlockMeanSize, WrapMeanSize float64
}

// Messages runs the consolidation for block (g=25) and wrap schedules.
func Messages(problems []*Problem) []MessageRow {
	var rows []MessageRow
	for _, p := range problems {
		for _, np := range DefaultProcs {
			part := p.Part(25, DefaultWidth)
			bs := sched.BlockMap(part, np)
			ws := sched.WrapMap(p.F, p.ElemWork, np)
			b := traffic.Consolidate(part, p.Ops, bs)
			w := traffic.ConsolidateColumns(p.Ops, ws)
			rows = append(rows, MessageRow{
				Name: p.Meta.Name, P: np,
				BlockMsgs: b.Messages, WrapMsgs: w.Messages,
				BlockVolume: b.Elements, WrapVolume: w.Elements,
				BlockMeanSize: b.MeanSize, WrapMeanSize: w.MeanSize,
			})
		}
	}
	return rows
}

// FormatMessages renders the consolidation study.
func FormatMessages(rows []MessageRow) string {
	var sb strings.Builder
	sb.WriteString("Ext-K: Message consolidation (paper pipeline step 5), block g=25 vs wrap\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tBlock msgs\tWrap msgs\tBlock vol\tWrap vol\tBlock mean size\tWrap mean size")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.1f\n",
			r.Name, r.P, r.BlockMsgs, r.WrapMsgs, r.BlockVolume, r.WrapVolume,
			r.BlockMeanSize, r.WrapMeanSize)
	}
	w.Flush()
	return sb.String()
}

// CommMakespanRow is one point of the communication-aware makespan study
// (Ext-L): task durations include c work units per fetched element, so
// traffic and load balance combine into one simulated time.
type CommMakespanRow struct {
	Name                string
	P                   int
	CommCost            float64
	BlockSpan, WrapSpan int64
	Winner              string
}

// CommMakespan sweeps the per-element communication cost and simulates
// dynamic execution with communication-inflated task durations.
func CommMakespan(p *Problem, procs int, costs []float64) []CommMakespanRow {
	mustProcs(procs)
	part := p.Part(25, DefaultWidth)
	bs := sched.BlockMap(part, procs)
	bVol := traffic.FetchVolumes(part, p.Ops, bs)
	bTasks := exec.BlockTasks(part, bs)
	ws := sched.WrapMap(p.F, p.ElemWork, procs)
	wVol := traffic.FetchVolumesColumns(p.Ops, ws)
	wTasks := exec.ColumnTasks(p.F, p.Ops, p.ElemWork, procs)
	var rows []CommMakespanRow
	for _, c := range costs {
		bt := inflate(bTasks, bVol, c)
		wt := inflate(wTasks, wVol, c)
		bspan := exec.SimulateMakespanDynamic(bt, procs).Makespan
		wspan := exec.SimulateMakespanDynamic(wt, procs).Makespan
		winner := "wrap"
		if bspan < wspan {
			winner = "block"
		}
		rows = append(rows, CommMakespanRow{
			Name: p.Meta.Name, P: procs, CommCost: c,
			BlockSpan: bspan, WrapSpan: wspan, Winner: winner,
		})
	}
	return rows
}

// inflate copies tasks with durations work + c*volume.
func inflate(tasks []exec.Task, vol []int64, c float64) []exec.Task {
	out := make([]exec.Task, len(tasks))
	for i, t := range tasks {
		out[i] = t
		out[i].Work = t.Work + int64(c*float64(vol[i]))
	}
	return out
}

// FormatCommMakespan renders the communication-aware makespan study.
func FormatCommMakespan(name string, procs int, rows []CommMakespanRow) string {
	mustProcs(procs)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ext-L: Communication-aware makespan (dynamic exec), %s, P=%d, g=25\n", name, procs)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Comm cost c\tBlock makespan\tWrap makespan\tWinner")
	for _, r := range rows {
		fmt.Fprintf(w, "%.1f\t%d\t%d\t%s\n", r.CommCost, r.BlockSpan, r.WrapSpan, r.Winner)
	}
	w.Flush()
	return sb.String()
}
