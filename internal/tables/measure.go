package tables

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/part2d"
	"repro/internal/strategy"
)

// MeasureRow is one cell of the measured-vs-predicted study (Ext-W): one 2D
// strategy on one problem and processor count, executed for real by the
// parallel factorization engine (repeat-and-min wall clock, bit-identity
// verified against the serial factor on every run) next to the comm-aware
// static makespan prediction over the same task graph.
type MeasureRow struct {
	Name     string
	P        int
	Strategy string
	Repeats  int
	// SerialNs and ParallelNs are the fastest serial and parallel runs.
	SerialNs, ParallelNs int64
	// Speedup is the measured SerialNs / ParallelNs; PredSpeedup is
	// TotalWork / PredMakespan from the static comm-aware simulation of the
	// identical task graph (the engine executes each worker's tasks in ID
	// order, which is the static simulator's discipline).
	Speedup, PredSpeedup float64
	// PredMakespan is the comm-aware static makespan; Traffic the
	// deduplicated 2D fetch total.
	PredMakespan, Traffic int64
	// Profile summarizes the real per-task executions of the fastest run.
	Profile obs.ProfileSummary
}

// MeasureProcs is the processor sweep of the Ext-W study: serial parity at
// P=1 plus the Tile2D points where the prediction actually disagrees with
// the wall clock.
var MeasureProcs = []int{1, 4, 16, 64}

// Measured runs every native 2D tile mapper and every col2d lift through
// the real parallel engine across the processor sweep, pairing each
// measured wall-clock speedup with the comm-aware static prediction under
// cm (Ext-W). repeats <= 0 selects the engine default.
func Measured(p *Problem, procs []int, cm exec.CommModel, repeats int) ([]MeasureRow, error) {
	sys := p.StrategySys()
	type entry struct {
		label string
		opts  strategy.Options
		name  string
	}
	var entries []entry
	for _, name := range part2d.Names2D() {
		if name == "col2d" {
			continue // enumerated per base below
		}
		entries = append(entries, entry{label: name, name: name})
	}
	for _, base := range part2d.LiftBases() {
		entries = append(entries, entry{
			label: "col2d:" + base,
			name:  "col2d",
			opts:  strategy.Options{Base: base},
		})
	}
	var rows []MeasureRow
	for _, np := range procs {
		for _, e := range entries {
			s2, err := part2d.Map2D(e.name, sys, np, e.opts)
			if err != nil {
				return nil, fmt.Errorf("tables: 2D strategy %s on %s P=%d: %w",
					e.label, p.Meta.Name, np, err)
			}
			mes, err := part2d.Measure(p.Permuted, p.Ops, p.ElemWork, s2,
				exec.MeasureOptions{Repeats: repeats})
			if err != nil {
				return nil, fmt.Errorf("tables: measuring %s on %s P=%d: %w",
					e.label, p.Meta.Name, np, err)
			}
			pred := part2d.MakespanComm(p.Ops, p.ElemWork, s2, cm)
			prof, err := obs.RealProfile(mes.Events, s2.P)
			if err != nil {
				return nil, fmt.Errorf("tables: profiling %s on %s P=%d: %w",
					e.label, p.Meta.Name, np, err)
			}
			rows = append(rows, MeasureRow{
				Name: p.Meta.Name, P: np, Strategy: e.label,
				Repeats:    mes.Repeats,
				SerialNs:   mes.SerialNs,
				ParallelNs: mes.ParallelNs,
				Speedup:    mes.Speedup,
				PredSpeedup: float64(p.Total) /
					float64(max64(pred.Makespan, 1)),
				PredMakespan: pred.Makespan,
				Traffic:      part2d.Traffic(p.Ops, s2).Total,
				Profile:      prof.Summary(),
			})
		}
	}
	return rows, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// FormatMeasured renders the measured-vs-predicted study.
func FormatMeasured(name string, cm exec.CommModel, rows []MeasureRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ext-W: measured vs predicted (real engine, repeat-and-min, bit-identity verified), %s, alpha=%g, beta=%g\n",
		name, cm.Alpha, cm.Beta)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tStrategy\tSerial ns\tParallel ns\tSpeedup\tPred speedup\tPred span\tTraffic")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%.2f\t%.2f\t%d\t%d\n",
			r.Name, r.P, r.Strategy, r.SerialNs, r.ParallelNs, r.Speedup, r.PredSpeedup, r.PredMakespan, r.Traffic)
	}
	w.Flush()
	return sb.String()
}

// MeasureRecords converts measured rows into bench-ledger records (Kind
// "measure"): Makespan carries the prediction, Efficiency the measured
// speedup over P, and the real-run profile summary rides along.
func MeasureRecords(rows []MeasureRow, cm exec.CommModel) []obs.BenchRecord {
	recs := make([]obs.BenchRecord, 0, len(rows))
	for _, r := range rows {
		prof := r.Profile
		recs = append(recs, obs.BenchRecord{
			Matrix: r.Name, Strategy: r.Strategy, Kind: "measure",
			P: r.P, Alpha: cm.Alpha, Beta: cm.Beta,
			Makespan:   r.PredMakespan,
			Traffic:    r.Traffic,
			Efficiency: r.Speedup / float64(r.P),
			Profile:    &prof,

			SerialNs:        r.SerialNs,
			MeasuredNs:      r.ParallelNs,
			MeasuredSpeedup: r.Speedup,
			PredSpeedup:     r.PredSpeedup,
		})
	}
	return recs
}
