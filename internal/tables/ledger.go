package tables

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/part2d"
	"repro/internal/strategy"
)

// BenchLedger benchmarks every registered mapping strategy — the 1D
// registry with the paper's production partitioning knobs (grain 25,
// width 4) and the native 2D mappers (col2d excluded, it is
// parameterized) — on every problem and processor count, under the
// comm-aware dynamic makespan simulation with cm. Each run is traced and
// profiled, so every record carries the busy/comm/idle/stall breakdown
// and the critical-path attribution next to the headline makespan,
// traffic and efficiency numbers. The result is the machine-readable
// BENCH_*.json payload CI archives per PR.
func BenchLedger(problems []*Problem, procs []int, cm exec.CommModel) (*obs.Ledger, error) {
	ledger := obs.NewLedger()
	opts := strategy.Options{Part: core.Options{Grain: 25, MinClusterWidth: DefaultWidth}}
	for _, p := range problems {
		sys := p.StrategySys()
		for _, np := range procs {
			for _, name := range strategy.Names() {
				sc, err := strategy.Map(name, sys, np, opts)
				if err != nil {
					return nil, fmt.Errorf("tables: ledger %s on %s P=%d: %w", name, p.Meta.Name, np, err)
				}
				tr := strategy.Traffic(sys, opts, sc)
				tracer := obs.NewTracer()
				res := strategy.MakespanCommDynamicProbe(sys, opts, sc, cm, tracer)
				prof, err := obs.BuildProfile(tracer.Events, res)
				if err != nil {
					return nil, fmt.Errorf("tables: ledger %s on %s P=%d: %w", name, p.Meta.Name, np, err)
				}
				sum := prof.Summary()
				ledger.Add(obs.BenchRecord{
					Matrix: p.Meta.Name, Strategy: name, Kind: "strategy", P: np,
					Alpha: cm.Alpha, Beta: cm.Beta,
					Makespan: res.Makespan, Traffic: tr.Total, Efficiency: res.Efficiency,
					Profile: &sum,
				})
			}
			for _, name := range part2d.Names2D() {
				if name == "col2d" {
					continue // parameterized by a base; its lifts equal 1D rows
				}
				s2, err := part2d.Map2D(name, sys, np, strategy.Options{})
				if err != nil {
					return nil, fmt.Errorf("tables: ledger %s on %s P=%d: %w", name, p.Meta.Name, np, err)
				}
				tr := part2d.Traffic(p.Ops, s2)
				tracer := obs.NewTracer()
				res := part2d.MakespanCommDynamicProbe(p.Ops, p.ElemWork, s2, cm, tracer)
				prof, err := obs.BuildProfile(tracer.Events, res)
				if err != nil {
					return nil, fmt.Errorf("tables: ledger %s on %s P=%d: %w", name, p.Meta.Name, np, err)
				}
				sum := prof.Summary()
				ledger.Add(obs.BenchRecord{
					Matrix: p.Meta.Name, Strategy: name, Kind: "tile2d", P: np,
					Alpha: cm.Alpha, Beta: cm.Beta,
					Makespan: res.Makespan, Traffic: tr.Total, Efficiency: res.Efficiency,
					Profile: &sum,
				})
			}
		}
	}
	return ledger, nil
}
