package tables

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/calib"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/part2d"
	"repro/internal/strategy"
)

// CalibrationRow is one cell of the calibration study (Ext-Cal): one 2D
// strategy on one problem and processor count, with the measured wall
// clock next to two predictions of it — the uncalibrated work-unit model
// under the caller's CommModel (scaled by the measured serial rate, the
// convention of the Ext-W speedup column) and the calibrated model fitted
// to the study's own measured task durations.
type CalibrationRow struct {
	Name     string
	P        int
	Strategy string
	Repeats  int
	// SerialNs and ParallelNs are the fastest measured serial and parallel
	// runs; Speedup their ratio.
	SerialNs, ParallelNs int64
	Speedup              float64
	// UncalSpan/CalSpan are the comm-aware static makespans in work units
	// under the caller's model and the fitted model; UncalNs/CalNs their
	// wall-clock conversions (serial-rate scaling and NsPerWork).
	UncalSpan, CalSpan int64
	UncalNs, CalNs     int64
	// UncalSpeedup and CalSpeedup are the two predicted speedups the MAPE
	// columns score against the measured Speedup.
	UncalSpeedup, CalSpeedup float64
	// Traffic is the deduplicated 2D fetch total; Degenerate the run's
	// zero-duration measured events (clock resolution).
	Traffic    int64
	Degenerate int
}

// CalibrationStudy is the complete Ext-Cal result: the rows, the fitted
// model with its report, and the speedup MAPE of both predictors over
// the rows (what the acceptance gate compares).
type CalibrationStudy struct {
	Rows   []CalibrationRow
	Model  calib.CalibratedModel
	Report calib.FitReport
	// MAPEUncal and MAPECal are mean absolute percentage errors of the
	// uncalibrated and calibrated predicted speedups against the measured
	// ones, over all rows.
	MAPEUncal, MAPECal float64
}

// Calibration runs the Ext-Cal study: every native 2D tile mapper and
// every col2d lift is executed for real across the processor sweep (the
// same repeat-and-min, bit-identity-verified harness as Ext-W), all
// measured task durations feed one least-squares fit of {Alpha, Beta,
// Gamma} plus the nanosecond scale, and each row is then re-predicted
// under the fitted model. repeats <= 0 selects the engine default.
func Calibration(p *Problem, procs []int, cm exec.CommModel, repeats int) (*CalibrationStudy, error) {
	sys := p.StrategySys()
	type entry struct {
		label string
		opts  strategy.Options
		name  string
	}
	var entries []entry
	for _, name := range part2d.Names2D() {
		if name == "col2d" {
			continue // enumerated per base below
		}
		entries = append(entries, entry{label: name, name: name})
	}
	for _, base := range part2d.LiftBases() {
		entries = append(entries, entry{
			label: "col2d:" + base,
			name:  "col2d",
			opts:  strategy.Options{Base: base},
		})
	}
	// Pass 1: measure every (strategy, P) point and accumulate the fit
	// samples; the schedules are kept for the post-fit prediction pass.
	type run struct {
		e   entry
		p   int
		s2  *part2d.Schedule2D
		mes *exec.Measurement
		deg int
	}
	fitter := calib.NewFitter()
	var runs []run
	for _, np := range procs {
		for _, e := range entries {
			s2, err := part2d.Map2D(e.name, sys, np, e.opts)
			if err != nil {
				return nil, fmt.Errorf("tables: 2D strategy %s on %s P=%d: %w",
					e.label, p.Meta.Name, np, err)
			}
			mes, err := part2d.Measure(p.Permuted, p.Ops, p.ElemWork, s2,
				exec.MeasureOptions{Repeats: repeats})
			if err != nil {
				return nil, fmt.Errorf("tables: measuring %s on %s P=%d: %w",
					e.label, p.Meta.Name, np, err)
			}
			tasks, elemTask := part2d.Tasks(p.Ops, p.ElemWork, s2)
			tc := part2d.FetchStats(p.Ops, s2, len(tasks), elemTask)
			if err := fitter.Add(mes.Events, tasks, tc); err != nil {
				return nil, fmt.Errorf("tables: fitting %s on %s P=%d: %w",
					e.label, p.Meta.Name, np, err)
			}
			prof, err := obs.RealProfile(mes.Events, s2.P)
			if err != nil {
				return nil, fmt.Errorf("tables: profiling %s on %s P=%d: %w",
					e.label, p.Meta.Name, np, err)
			}
			runs = append(runs, run{e: e, p: np, s2: s2, mes: mes, deg: prof.Degenerate})
		}
	}
	model, report, err := fitter.Fit(calib.Options{})
	if err != nil {
		return nil, fmt.Errorf("tables: calibration fit on %s: %w", p.Meta.Name, err)
	}
	// Pass 2: re-simulate every point under both models and score the two
	// speedup predictions against the measured wall clock.
	study := &CalibrationStudy{Model: model, Report: report}
	var sumUncal, sumCal float64
	for _, r := range runs {
		uncal := part2d.MakespanComm(p.Ops, p.ElemWork, r.s2, cm).Makespan
		cal := part2d.MakespanComm(p.Ops, p.ElemWork, r.s2, model.Comm).Makespan
		uncalSpeedup := float64(p.Total) / float64(max64(uncal, 1))
		calNs := model.SpanNs(cal)
		calSpeedup := float64(r.mes.SerialNs) / math.Max(calNs, 1)
		row := CalibrationRow{
			Name: p.Meta.Name, P: r.p, Strategy: r.e.label,
			Repeats:      r.mes.Repeats,
			SerialNs:     r.mes.SerialNs,
			ParallelNs:   r.mes.ParallelNs,
			Speedup:      r.mes.Speedup,
			UncalSpan:    uncal,
			CalSpan:      cal,
			UncalNs:      int64(float64(r.mes.SerialNs) * float64(uncal) / float64(max64(p.Total, 1))),
			CalNs:        int64(calNs),
			UncalSpeedup: uncalSpeedup,
			CalSpeedup:   calSpeedup,
			Traffic:      part2d.Traffic(p.Ops, r.s2).Total,
			Degenerate:   r.deg,
		}
		study.Rows = append(study.Rows, row)
		sumUncal += ape(uncalSpeedup, row.Speedup)
		sumCal += ape(calSpeedup, row.Speedup)
	}
	n := float64(len(study.Rows))
	study.MAPEUncal = sumUncal / n
	study.MAPECal = sumCal / n
	return study, nil
}

// ape is the absolute percentage error of a prediction against a
// measured value (percent).
func ape(pred, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return 100 * math.Abs(pred-measured) / measured
}

// FormatCalibration renders the Ext-Cal study: the fitted model line,
// one row per (strategy, P) with both predictions and their errors, and
// the MAPE footer the acceptance gate reads.
func FormatCalibration(name string, cm exec.CommModel, st *CalibrationStudy) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ext-Cal: cost-model calibration (fit to measured task durations), %s, uncalibrated alpha=%g beta=%g\n",
		name, cm.Alpha, cm.Beta)
	fmt.Fprintf(&sb, "fit: alpha=%.4g beta=%.4g gamma=%.4g ns/work=%.4g R2=%.4f samples=%d dropped=%d terms=[%s]\n",
		st.Model.Comm.Alpha, st.Model.Comm.Beta, st.Model.Comm.Gamma,
		st.Model.NsPerWork, st.Report.R2, st.Report.Samples, st.Report.Dropped,
		strings.Join(st.Report.Terms, " "))
	fmt.Fprintf(&sb, "residual ns: p50=%d p90=%d p99=%d\n",
		st.Report.ResidualP50, st.Report.ResidualP90, st.Report.ResidualP99)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tStrategy\tMeasured ns\tUncal ns\tCal ns\tSpeedup\tUncal pred\tCal pred\tDegenerate")
	for _, r := range st.Rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\t%d\n",
			r.Name, r.P, r.Strategy, r.ParallelNs, r.UncalNs, r.CalNs,
			r.Speedup, r.UncalSpeedup, r.CalSpeedup, r.Degenerate)
	}
	w.Flush()
	fmt.Fprintf(&sb, "speedup MAPE: uncalibrated %.1f%%, calibrated %.1f%%\n", st.MAPEUncal, st.MAPECal)
	return sb.String()
}

// CalibrationRecords converts a study into bench-ledger records (Kind
// "calibrate"): Alpha/Beta/Makespan describe the fitted model and its
// calibrated span, the measured fields mirror the measure rows, and the
// calib block carries Gamma, the scale, the diagnostics and the MAPE
// columns (identical on every record of one study).
func CalibrationRecords(st *CalibrationStudy) []obs.BenchRecord {
	if st == nil {
		return nil
	}
	recs := make([]obs.BenchRecord, 0, len(st.Rows))
	for _, r := range st.Rows {
		recs = append(recs, obs.BenchRecord{
			Matrix: r.Name, Strategy: r.Strategy, Kind: "calibrate",
			P: r.P, Alpha: st.Model.Comm.Alpha, Beta: st.Model.Comm.Beta,
			Makespan:   r.CalSpan,
			Traffic:    r.Traffic,
			Efficiency: r.Speedup / float64(r.P),

			SerialNs:        r.SerialNs,
			MeasuredNs:      r.ParallelNs,
			MeasuredSpeedup: r.Speedup,
			PredSpeedup:     r.CalSpeedup,
			Calib: &obs.CalibSummary{
				Gamma:     st.Model.Comm.Gamma,
				NsPerWork: st.Model.NsPerWork,
				R2:        st.Report.R2,
				Samples:   st.Report.Samples,
				Dropped:   st.Report.Dropped,
				CalibNs:   r.CalNs,
				MAPEUncal: st.MAPEUncal,
				MAPECal:   st.MAPECal,
			},
		})
	}
	return recs
}
