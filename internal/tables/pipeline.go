package tables

import (
	"fmt"
	"time"

	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/strategy"
)

// PipelineBench is the staged-pipeline throughput study: the same solve
// request issued cold (empty artifact store: ordering, symbolic
// factorization, mapping and numeric factorization all run) and warm
// (every stage a cache hit: only the triangular sweeps run), which is
// the factor-many/solve-many scenario the staged pipeline exists for.
type PipelineBench struct {
	Name     string
	Strategy string
	P        int
	Solves   int   // warm requests timed
	ColdNs   int64 // one full cold request
	WarmNs   int64 // fastest warm request
	Speedup  float64
	Stats    map[string]artifact.Counts
}

// PipelineRecord runs the cold/warm study for one problem and converts it
// into the bench-ledger row (Kind "pipeline"): SerialNs carries the cold
// request, MeasuredNs the fastest warm request, MeasuredSpeedup their
// ratio, and Hits/Misses the store counters that prove the warm requests
// did zero symbolic, mapping and factorization work.
func PipelineRecord(p *Problem, strategyName string, np, solves int) (obs.BenchRecord, error) {
	pb, err := RunPipelineBench(p, strategyName, np, solves)
	if err != nil {
		return obs.BenchRecord{}, err
	}
	var hits, misses int64
	//repro:allow maporder -- commutative integer sums over the per-kind counters; order cannot change the totals
	for _, c := range pb.Stats {
		hits += c.Hits
		misses += c.Misses
	}
	pl, err := p.An.Plan(strategyName, np, strategy.Options{})
	if err != nil {
		return obs.BenchRecord{}, err
	}
	return obs.BenchRecord{
		Matrix: pb.Name, Strategy: strategyName, Kind: "pipeline", P: np,
		Makespan: pl.Makespan().Makespan, Traffic: pl.TrafficTotal(),
		Efficiency:      1 - float64(pb.WarmNs)/float64(pb.ColdNs), // fraction of the cold request the cache removes
		SerialNs:        pb.ColdNs,
		MeasuredNs:      pb.WarmNs,
		MeasuredSpeedup: pb.Speedup,
		Hits:            hits,
		Misses:          misses,
	}, nil
}

// RunPipelineBench times one cold staged request against repeated warm
// requests on the same pattern and values, through one shared cache.
func RunPipelineBench(p *Problem, strategyName string, np, solves int) (*PipelineBench, error) {
	if np < 1 {
		return nil, fmt.Errorf("tables: invalid processor count %d", np)
	}
	if solves < 1 {
		solves = 1
	}
	cache := pipeline.NewCache(0)
	b := make([]float64, p.A.N)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	opts := strategy.Options{}

	//repro:allow nondeterminism -- benchmark harness: wall-clock feeds only the reported cold/warm timings; the solved vectors are cache artifacts pinned by TestCacheServesIdenticalArtifacts
	start := time.Now()
	if _, err := cache.Solve(p.A, strategyName, np, opts, pipeline.Cholesky, b); err != nil {
		return nil, fmt.Errorf("tables: pipeline cold solve on %s: %w", p.Meta.Name, err)
	}
	coldNs := time.Since(start).Nanoseconds()

	warmNs := int64(0)
	for i := 0; i < solves; i++ {
		//repro:allow nondeterminism -- benchmark harness: warm-request timing only, never simulated results
		start = time.Now()
		if _, err := cache.Solve(p.A, strategyName, np, opts, pipeline.Cholesky, b); err != nil {
			return nil, fmt.Errorf("tables: pipeline warm solve on %s: %w", p.Meta.Name, err)
		}
		ns := time.Since(start).Nanoseconds()
		if warmNs == 0 || ns < warmNs {
			warmNs = ns
		}
	}
	if warmNs < 1 {
		warmNs = 1
	}
	return &PipelineBench{
		Name: p.Meta.Name, Strategy: strategyName, P: np, Solves: solves,
		ColdNs: coldNs, WarmNs: warmNs,
		Speedup: float64(coldNs) / float64(warmNs),
		Stats:   cache.StatsByKind(),
	}, nil
}
