package tables

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/obs"
)

// TestCalibrationShapes runs the Ext-Cal study end to end on the small
// golden problem: full strategy x P coverage, a usable fit, both
// predictions populated on every row, and rows surviving the ledger gate
// as kind "calibrate".
func TestCalibrationShapes(t *testing.T) {
	p := commGoldenProblem(t)
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	procs := []int{1, 2}
	st, err := Calibration(p, procs, cm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(st.Model.NsPerWork > 0) {
		t.Fatalf("fit produced non-positive scale: %+v", st.Model)
	}
	if st.Model.Comm.Alpha < 0 || st.Model.Comm.Beta < 0 || st.Model.Comm.Gamma < 0 {
		t.Fatalf("fit produced a negative coefficient: %+v", st.Model.Comm)
	}
	if st.Report.Samples < 10 {
		t.Fatalf("fit saw only %d samples", st.Report.Samples)
	}
	perP := make(map[int]int)
	for _, r := range st.Rows {
		perP[r.P]++
		if r.ParallelNs < 1 || !(r.Speedup > 0) {
			t.Errorf("%s P=%d: degenerate timing %+v", r.Strategy, r.P, r)
		}
		if !(r.UncalSpeedup > 0) || !(r.CalSpeedup > 0) {
			t.Errorf("%s P=%d: degenerate prediction %+v", r.Strategy, r.P, r)
		}
		if r.CalNs < 1 || r.UncalNs < 1 {
			t.Errorf("%s P=%d: degenerate ns prediction %+v", r.Strategy, r.P, r)
		}
		if r.CalSpan < r.UncalSpan {
			// The fitted model adds a non-negative Gamma to every task on
			// top of non-negative comm terms, but its Alpha/Beta can fit
			// below the caller's 2/10 — so no ordering between spans is
			// guaranteed in general; only positivity is.
			continue
		}
	}
	if len(perP) != len(procs) {
		t.Fatalf("P groups %v, want one per %v", perP, procs)
	}

	out := FormatCalibration(p.Meta.Name, cm, st)
	for _, want := range []string{"Ext-Cal", "rect2dcyclic", "speedup MAPE", "gamma="} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted study missing %q:\n%s", want, out)
		}
	}

	l := obs.NewLedger()
	for _, rec := range CalibrationRecords(st) {
		if rec.Kind != "calibrate" {
			t.Fatalf("record kind %q", rec.Kind)
		}
		if rec.Calib == nil {
			t.Fatal("calibrate record missing calib block")
		}
		l.Add(rec)
	}
	var sb strings.Builder
	if err := l.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateLedger([]byte(sb.String())); err != nil {
		t.Fatalf("calibrate records fail the ledger gate: %v", err)
	}
	if CalibrationRecords(nil) != nil {
		t.Error("nil study must produce no records")
	}
}

// TestCalibrationImprovesMAPE is the acceptance pin: on LAP30's measured
// runs the calibrated model's predicted-speedup MAPE must be strictly
// lower than the uncalibrated model's. The uncalibrated work-unit model
// over-predicts speedups by an order of magnitude at this scale (Ext-W),
// while the calibrated fit prices the measured per-task overhead, so the
// margin is large and stable despite wall-clock noise.
func TestCalibrationImprovesMAPE(t *testing.T) {
	if testing.Short() {
		t.Skip("real measured runs on LAP30")
	}
	p, err := LoadProblem(gen.TestMatrix{Name: "LAP30", Build: gen.Lap30})
	if err != nil {
		t.Fatal(err)
	}
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	st, err := Calibration(p, []int{1, 4, 16}, cm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(st.MAPECal < st.MAPEUncal) {
		t.Fatalf("calibrated MAPE %.1f%% not below uncalibrated %.1f%%", st.MAPECal, st.MAPEUncal)
	}
	t.Logf("LAP30 speedup MAPE: uncalibrated %.1f%%, calibrated %.1f%% (fit %+v, ns/work %.3g, R2 %.3f)",
		st.MAPEUncal, st.MAPECal, st.Model.Comm, st.Model.NsPerWork, st.Report.R2)
}
