package tables

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/obs"
)

// TestMeasuredShapes runs the Ext-W study end to end on the small golden
// problem: one row per (P, 2D strategy), sane timings, a positive
// prediction, and the rows surviving the ledger gate as kind "measure".
func TestMeasuredShapes(t *testing.T) {
	p := commGoldenProblem(t)
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	procs := []int{1, 2}
	rows, err := Measured(p, procs, cm, 1)
	if err != nil {
		t.Fatal(err)
	}
	perP := make(map[int]int)
	for _, r := range rows {
		perP[r.P]++
		if r.SerialNs < 1 || r.ParallelNs < 1 || !(r.Speedup > 0) {
			t.Errorf("%s P=%d: degenerate timing %+v", r.Strategy, r.P, r)
		}
		if r.PredMakespan < 1 || !(r.PredSpeedup > 0) {
			t.Errorf("%s P=%d: degenerate prediction %+v", r.Strategy, r.P, r)
		}
		if r.Repeats != 1 {
			t.Errorf("%s P=%d: repeats %d, want 1", r.Strategy, r.P, r.Repeats)
		}
		if r.P == 1 && r.Traffic != 0 {
			t.Errorf("P=1 row communicates: %+v", r)
		}
	}
	if len(perP) != len(procs) {
		t.Fatalf("P groups %v, want one per %v", perP, procs)
	}
	perEntry := perP[procs[0]]
	for _, np := range procs {
		if perP[np] != perEntry {
			t.Fatalf("uneven strategy coverage across P: %v", perP)
		}
	}

	out := FormatMeasured(p.Meta.Name, cm, rows)
	if !strings.Contains(out, "Ext-W") || !strings.Contains(out, "rect2dcyclic") {
		t.Fatalf("formatted study missing content:\n%s", out)
	}

	l := obs.NewLedger()
	for _, rec := range MeasureRecords(rows, cm) {
		if rec.Kind != "measure" {
			t.Fatalf("record kind %q", rec.Kind)
		}
		if rec.Profile == nil {
			t.Fatal("measure record missing real profile")
		}
		l.Add(rec)
	}
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateLedger(buf.Bytes()); err != nil {
		t.Fatalf("measure ledger rejected by the CI gate: %v", err)
	}
}
