package tables

// The published numbers of Venugopal & Naik (SC'91), transcribed from the
// ICASE Report 91-80 text. They are kept alongside the measured values so
// every regenerated table can print paper-vs-measured in one place
// (EXPERIMENTS.md is generated from these).

// PaperTable1 rows: matrix name -> {equations, nonzeros, factor nonzeros}.
var PaperTable1 = map[string][3]int{
	"BUS1138":  {1138, 2596, 3304},
	"CANN1072": {1072, 6758, 20512},
	"DWT512":   {512, 2007, 3786},
	"LAP30":    {900, 4322, 16697},
	"LSHP1009": {1009, 3937, 18268},
}

// paperComm is one paper entry of Table 2: total and mean data traffic for
// grain sizes 4 and 25.
type paperComm struct {
	TotalG4, TotalG25 int64
	MeanG4, MeanG25   int64
}

// PaperTable2 rows: matrix name -> processor count -> communication.
var PaperTable2 = map[string]map[int]paperComm{
	"BUS1138": {
		4:  {1335, 1194, 334, 298},
		16: {1818, 1567, 114, 98},
		32: {1910, 1649, 60, 103},
	},
	"CANN1072": {
		4:  {47545, 40716, 11886, 10179},
		16: {138453, 80334, 8653, 5021},
		32: {171965, 89042, 5374, 2783},
	},
	"DWT512": {
		4:  {5336, 3768, 1334, 942},
		16: {10328, 5482, 645, 342},
		32: {11305, 5950, 353, 185},
	},
	"LAP30": {
		4:  {38424, 29382, 9606, 7346},
		16: {100012, 44738, 6251, 2796},
		32: {113717, 48863, 3554, 1527},
	},
	"LSHP1009": {
		4:  {42044, 29899, 10511, 7475},
		16: {106973, 57773, 6686, 3611},
		32: {127612, 60243, 3988, 1883},
	},
}

// paperWork is one paper entry of Table 3: mean work and the load imbalance
// factor A at grain sizes 4 and 25.
type paperWork struct {
	Mean     int64
	AG4, AG5 float64 // AG5 is the g=25 column
}

// PaperTable3 rows: matrix name -> processor count -> work distribution.
var PaperTable3 = map[string]map[int]paperWork{
	"BUS1138": {
		4:  {2791, 0.77, 0.8},
		16: {698, 3.59, 3.59},
		32: {349, 6.3, 6.3},
	},
	"CANN1072": {
		4:  {151460, 0.07, 0.122},
		16: {37865, 0.13, 0.62},
		32: {18932, 0.38, 1.26},
	},
	"DWT512": {
		4:  {11701, 0.17, 0.18},
		16: {2925, 1.14, 1.37},
		32: {1462, 1.48, 3.67},
	},
	"LAP30": {
		4:  {108644, 0.12, 0.16},
		16: {27161, 0.13, 1.13},
		32: {13581, 0.48, 2.9},
	},
	"LSHP1009": {
		4:  {125392, 0.06, 0.24},
		16: {31348, 0.25, 0.74},
		32: {15674, 0.24, 2.04},
	},
}

// paperWidth is one paper entry of Table 4 (LAP30, g=4).
type paperWidth struct {
	Total, Mean, MeanWork int64
	A                     float64
}

// PaperTable4 rows: minimum cluster width -> processor count -> entry.
var PaperTable4 = map[int]map[int]paperWidth{
	2: {
		4:  {38936, 9734, 108644, 0.03},
		16: {96235, 6015, 27161, 0.167},
		32: {111519, 3485, 13580, 0.54},
	},
	4: {
		4:  {38424, 9606, 108644, 0.12},
		16: {100012, 6251, 27161, 0.13},
		32: {113717, 3554, 13580, 0.48},
	},
	8: {
		4:  {32569, 8142, 108644, 0.62},
		16: {88408, 5526, 27161, 1.35},
		32: {101725, 3179, 13580, 2.3},
	},
}

// paperWrap is one paper entry of Table 5.
type paperWrap struct {
	Total, Mean, MeanWork int64
	A                     float64
}

// PaperTable5 rows: matrix name -> processor count -> wrap-mapping entry.
var PaperTable5 = map[string]map[int]paperWrap{
	"BUS1138": {
		1:  {0, 0, 11164, 0},
		4:  {2485, 621, 2791, 0.02},
		16: {3705, 231, 698, 0.12},
		32: {3832, 120, 349, 0.35},
	},
	"CANN1072": {
		1:  {0, 0, 605840, 0},
		4:  {52363, 13090, 151460, 0.01},
		16: {171764, 10735, 37865, 0.05},
		32: {239646, 7489, 18932, 0.14},
	},
	"DWT512": {
		1:  {0, 0, 46804, 0},
		4:  {7599, 1900, 11701, 0.02},
		16: {17867, 1117, 2925, 0.26},
		32: {20990, 656, 1462, 0.32},
	},
	"LAP30": {
		1:  {0, 0, 434577, 0},
		4:  {42663, 10665, 108644, 0.01},
		16: {133720, 8357, 27161, 0.06},
		32: {177625, 5551, 13580, 0.11},
	},
	"LSHP1009": {
		1:  {0, 0, 501570, 0},
		4:  {46347, 11586, 125392, 0.01},
		16: {146322, 9145, 31348, 0.09},
		32: {192977, 6031, 15674, 0.24},
	},
}
