package tables

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/strategy"
)

// StrategyRow is one cell of the cross-strategy comparison (extension
// Ext-S): one registered mapping strategy evaluated on one test matrix at
// one processor count by all three of the repository's metrics.
type StrategyRow struct {
	Name        string
	P           int
	Strategy    string
	Total       int64   // data traffic
	Mean        float64 // traffic per processor
	A           float64 // load imbalance factor
	BoundEff    float64 // 1/(1+A)
	MakespanEff float64 // dependency-delay simulation efficiency
}

// StrategySys returns the strategy-subsystem view of a loaded problem —
// the analysis artifact's shared, goroutine-safe instance (one partition
// cache per problem, not one per call).
func (p *Problem) StrategySys() *strategy.Sys {
	return p.An.Sys()
}

// StrategyCompare evaluates every registered mapping strategy on every
// problem and processor count with the paper's base partitioning knobs
// (grain 25, the Tables 2-3 production setting). Strategies added through
// strategy.Register — most recently the communication-optimal pair, the
// symmetric rectilinear mapper and the total-traffic-optimal contiguous
// split — appear with no changes here.
func StrategyCompare(problems []*Problem, procs []int) ([]StrategyRow, error) {
	opts := strategy.Options{Part: core.Options{Grain: 25, MinClusterWidth: DefaultWidth}}
	var rows []StrategyRow
	for _, p := range problems {
		sys := p.StrategySys()
		for _, np := range procs {
			for _, name := range strategy.Names() {
				sc, err := strategy.Map(name, sys, np, opts)
				if err != nil {
					return nil, fmt.Errorf("tables: strategy %s on %s P=%d: %w",
						name, p.Meta.Name, np, err)
				}
				tr := strategy.Traffic(sys, opts, sc)
				ms := strategy.Makespan(sys, opts, sc)
				rows = append(rows, StrategyRow{
					Name: p.Meta.Name, P: np, Strategy: name,
					Total: tr.Total, Mean: tr.Mean(),
					A: sc.Imbalance(), BoundEff: sc.Efficiency(),
					MakespanEff: ms.Efficiency,
				})
			}
		}
	}
	return rows, nil
}

// FormatStrategyCompare renders the cross-strategy comparison.
func FormatStrategyCompare(rows []StrategyRow) string {
	var sb strings.Builder
	sb.WriteString("Ext-S: Cross-strategy comparison (every registered mapping strategy, g=25)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tStrategy\tTraffic\tMean/proc\tImbalance A\tBound 1/(1+A)\tMakespan eff")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%.1f\t%.4f\t%.3f\t%.3f\n",
			r.Name, r.P, r.Strategy, r.Total, r.Mean, r.A, r.BoundEff, r.MakespanEff)
	}
	w.Flush()
	return sb.String()
}
