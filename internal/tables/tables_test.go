package tables

import (
	"strings"
	"testing"
)

func loadLap(t testing.TB) *Problem {
	t.Helper()
	for _, tmName := range []string{"LAP30"} {
		_ = tmName
	}
	ps, err := LoadSuite()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if p.Meta.Name == "LAP30" {
			return p
		}
	}
	t.Fatal("LAP30 not in suite")
	return nil
}

func TestTable1AllRows(t *testing.T) {
	ps, err := LoadSuite()
	if err != nil {
		t.Fatal(err)
	}
	rows := Table1(ps)
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.PaperN == 0 {
			t.Errorf("%s: missing paper data", r.Name)
		}
		if r.N == 0 || r.FactorNNZ < r.NNZ {
			t.Errorf("%s: implausible stats %+v", r.Name, r)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "LAP30") || !strings.Contains(out, "16697") {
		t.Errorf("formatted table missing expected content:\n%s", out)
	}
}

func TestTable2Shape(t *testing.T) {
	lap := loadLap(t)
	rows := Table2([]*Problem{lap})
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 (P sweep)", len(rows))
	}
	for _, r := range rows {
		// The paper's qualitative shape: g=25 communicates less than g=4.
		if r.TotalG25 >= r.TotalG4 {
			t.Errorf("P=%d: total g=25 %d not below g=4 %d", r.P, r.TotalG25, r.TotalG4)
		}
		if r.MeanG4 != r.TotalG4/int64(r.P) {
			t.Errorf("mean inconsistent with total")
		}
	}
	// Totals increase with P.
	if !(rows[0].TotalG4 < rows[1].TotalG4 && rows[1].TotalG4 < rows[2].TotalG4) {
		t.Errorf("traffic not increasing with P: %+v", rows)
	}
	_ = FormatTable2(rows)
}

func TestTable3Shape(t *testing.T) {
	lap := loadLap(t)
	rows := Table3([]*Problem{lap})
	for _, r := range rows {
		if r.AG4 < 0 || r.AG25 < 0 {
			t.Errorf("negative imbalance: %+v", r)
		}
		if r.MeanWork != lap.Total/int64(r.P) {
			t.Errorf("mean work wrong: %+v", r)
		}
	}
	// Imbalance grows with P for both grains (paper's observation).
	if rows[2].AG25 <= rows[0].AG25 {
		t.Errorf("A(g25) not growing with P: %+v", rows)
	}
	_ = FormatTable3(rows)
}

func TestTable4Shape(t *testing.T) {
	lap := loadLap(t)
	rows := Table4(lap)
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9 (3 widths x 3 P)", len(rows))
	}
	// Mean work is width-independent.
	for _, r := range rows {
		if r.MeanWork != lap.Total/int64(r.P) {
			t.Errorf("mean work wrong: %+v", r)
		}
	}
	_ = FormatTable4(rows)
}

func TestTable5Shape(t *testing.T) {
	lap := loadLap(t)
	rows := Table5([]*Problem{lap})
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (P = 1,4,16,32)", len(rows))
	}
	if rows[0].P != 1 || rows[0].Total != 0 || rows[0].A != 0 {
		t.Errorf("P=1 row must be all zeros: %+v", rows[0])
	}
	// Wrap A stays small (paper: <= 0.35 across the suite at P<=32).
	for _, r := range rows {
		if r.A > 0.6 {
			t.Errorf("wrap imbalance %g implausibly high at P=%d", r.A, r.P)
		}
	}
	_ = FormatTable5(rows)
}

func TestBlockBeatsWrapHeadline(t *testing.T) {
	// Cross-table check of the paper's abstract: block-based partitioning
	// yields lower communication, wrap better balance.
	lap := loadLap(t)
	t2 := Table2([]*Problem{lap})
	t3 := Table3([]*Problem{lap})
	t5 := Table5([]*Problem{lap})
	for i, np := range DefaultProcs {
		var wrapRow *Table5Row
		for k := range t5 {
			if t5[k].P == np {
				wrapRow = &t5[k]
			}
		}
		if t2[i].TotalG25 >= wrapRow.Total {
			t.Errorf("P=%d: block g=25 traffic %d not below wrap %d", np, t2[i].TotalG25, wrapRow.Total)
		}
		if t3[i].AG25 <= wrapRow.A {
			t.Errorf("P=%d: block g=25 A %.3f not above wrap %.3f (trade-off)", np, t3[i].AG25, wrapRow.A)
		}
	}
}

func TestMakespanAndPartners(t *testing.T) {
	lap := loadLap(t)
	mk := Makespan([]*Problem{lap})
	if len(mk) != 9 { // 3 procs x (2 grains + wrap)
		t.Fatalf("%d makespan rows, want 9", len(mk))
	}
	for _, r := range mk {
		if r.Efficiency > r.BoundEff+1e-9 {
			t.Errorf("delay efficiency above bound: %+v", r)
		}
		if r.Makespan < r.CritPath {
			t.Errorf("makespan below critical path: %+v", r)
		}
	}
	_ = FormatMakespan(mk)

	pr := Partners([]*Problem{lap})
	for _, r := range pr {
		if r.BlockPartners > r.WrapPartners {
			t.Errorf("block partners %.1f above wrap %.1f at P=%d", r.BlockPartners, r.WrapPartners, r.P)
		}
	}
	_ = FormatPartners(pr)
}

func TestGrainSweepMonotoneTraffic(t *testing.T) {
	lap := loadLap(t)
	rows := GrainSweep(lap, 16, []int{2, 4, 8, 16, 25, 50, 100})
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Unit count decreases with grain.
	for i := 1; i < len(rows); i++ {
		if rows[i].Units > rows[i-1].Units {
			t.Errorf("units grew with grain: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	// Traffic at the largest grain is below the smallest.
	if rows[len(rows)-1].Total >= rows[0].Total {
		t.Errorf("traffic did not fall across the sweep: %+v", rows)
	}
	_ = FormatGrainSweep("LAP30", 16, rows)
}
