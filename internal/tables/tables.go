// Package tables regenerates every table of the paper's evaluation
// (Section 4) and the extension studies described in DESIGN.md, printing
// measured values side by side with the published ones.
package tables

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/traffic"
)

// DefaultProcs is the paper's processor sweep for Tables 2-4.
var DefaultProcs = []int{4, 16, 32}

// WrapProcs is the paper's sweep for Table 5.
var WrapProcs = []int{1, 4, 16, 32}

// DefaultGrains are the two grain sizes of Tables 2-3.
var DefaultGrains = []int{4, 25}

// DefaultWidth is the minimum cluster width used for Tables 2, 3 and 5.
const DefaultWidth = 4

// Problem is the table generators' view of one test matrix: the staged
// pattern analysis (ordering, symbolic factor, work model, partition
// cache) plus the permuted matrix with values for the numeric studies.
type Problem struct {
	Meta     gen.TestMatrix
	A        *sparse.Matrix
	Permuted *sparse.Matrix // permuted pattern with values installed
	An       *pipeline.Analysis
	F        *symbolic.Factor
	Ops      *model.Ops
	ElemWork []int64
	Total    int64
}

// LoadProblem runs ordering and symbolic factorization for a test matrix
// through the staged pipeline, so partitions, schedules and the strategy
// subsystem are all served from the analysis artifact's caches.
func LoadProblem(tm gen.TestMatrix) (*Problem, error) {
	a := tm.Build()
	an, err := pipeline.NewAnalysis(a)
	if err != nil {
		return nil, fmt.Errorf("tables: %s: %w", tm.Name, err)
	}
	pm, err := an.PermutedWithValues(a)
	if err != nil {
		return nil, fmt.Errorf("tables: %s: %w", tm.Name, err)
	}
	return &Problem{
		Meta:     tm,
		A:        a,
		Permuted: pm,
		An:       an,
		F:        an.F,
		Ops:      an.Ops,
		ElemWork: an.ElemWork,
		Total:    an.Total,
	}, nil
}

// LoadSuite loads all five test problems of Table 1.
func LoadSuite() ([]*Problem, error) {
	var out []*Problem
	for _, tm := range gen.Suite() {
		p, err := LoadProblem(tm)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Part returns the (grain, width) partition, computed once per option
// set in the analysis' goroutine-safe partition cache.
func (p *Problem) Part(g, w int) *core.Partition {
	return p.An.Sys().Partition(core.Options{Grain: g, MinClusterWidth: w})
}

// mustProcs panics on a non-positive processor count with the package
// prefix. The table builders take caller-chosen P values straight from
// CLI flags; validating here keeps the failure at the entry point rather
// than a zero-length per-processor slice deep in a simulator.
func mustProcs(procs int) {
	if procs < 1 {
		panic(fmt.Sprintf("tables: invalid processor count %d", procs))
	}
}

// Block runs the block mapping and its traffic simulation.
func (p *Problem) Block(g, w, procs int) (*sched.Schedule, *traffic.Result) {
	mustProcs(procs)
	s := sched.BlockMap(p.Part(g, w), procs)
	return s, traffic.Simulate(p.Ops, s)
}

// Wrap runs the wrap mapping and its traffic simulation.
func (p *Problem) Wrap(procs int) (*sched.Schedule, *traffic.Result) {
	mustProcs(procs)
	s := sched.WrapMap(p.F, p.ElemWork, procs)
	return s, traffic.Simulate(p.Ops, s)
}

// ---------------------------------------------------------------- Table 1

// Table1Row compares a generated matrix with the paper's Table 1.
type Table1Row struct {
	Name                           string
	N, NNZ, FactorNNZ              int
	PaperN, PaperNNZ, PaperFactNNZ int
	Description                    string
}

// Table1 computes the matrix statistics table.
func Table1(problems []*Problem) []Table1Row {
	var rows []Table1Row
	for _, p := range problems {
		paper := PaperTable1[p.Meta.Name]
		rows = append(rows, Table1Row{
			Name: p.Meta.Name,
			N:    p.A.N, NNZ: p.A.NNZ(), FactorNNZ: p.F.NNZ(),
			PaperN: paper[0], PaperNNZ: paper[1], PaperFactNNZ: paper[2],
			Description: p.Meta.Description,
		})
	}
	return rows
}

// FormatTable1 renders Table 1 with paper values alongside.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Test matrices (measured vs paper)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Application\tn\tnnz(A)\tnnz(L)\tpaper n\tpaper nnz(A)\tpaper nnz(L)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Name, r.N, r.NNZ, r.FactorNNZ, r.PaperN, r.PaperNNZ, r.PaperFactNNZ)
	}
	w.Flush()
	return sb.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row is block-mapping communication for one (matrix, P).
type Table2Row struct {
	Name              string
	P                 int
	TotalG4, TotalG25 int64
	MeanG4, MeanG25   int64
	Paper             paperComm
}

// Table2 computes block-mapping communication (grain 4 and 25, width 4).
func Table2(problems []*Problem) []Table2Row {
	var rows []Table2Row
	for _, p := range problems {
		for _, np := range DefaultProcs {
			_, r4 := p.Block(4, DefaultWidth, np)
			_, r25 := p.Block(25, DefaultWidth, np)
			rows = append(rows, Table2Row{
				Name: p.Meta.Name, P: np,
				TotalG4: r4.Total, TotalG25: r25.Total,
				MeanG4: r4.Total / int64(np), MeanG25: r25.Total / int64(np),
				Paper: PaperTable2[p.Meta.Name][np],
			})
		}
	}
	return rows
}

// FormatTable2 renders the block-mapping communication table.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Block mapping communication (width 4; measured | paper)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tTotal g=4\tTotal g=25\tMean g=4\tMean g=25\t|\tpTotal g=4\tpTotal g=25\tpMean g=4\tpMean g=25")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t|\t%d\t%d\t%d\t%d\n",
			r.Name, r.P, r.TotalG4, r.TotalG25, r.MeanG4, r.MeanG25,
			r.Paper.TotalG4, r.Paper.TotalG25, r.Paper.MeanG4, r.Paper.MeanG25)
	}
	w.Flush()
	return sb.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row is block-mapping work distribution for one (matrix, P).
type Table3Row struct {
	Name      string
	P         int
	MeanWork  int64
	AG4, AG25 float64
	Paper     paperWork
}

// Table3 computes the block-mapping work distribution (grain 4 and 25).
func Table3(problems []*Problem) []Table3Row {
	var rows []Table3Row
	for _, p := range problems {
		for _, np := range DefaultProcs {
			s4, _ := p.Block(4, DefaultWidth, np)
			s25, _ := p.Block(25, DefaultWidth, np)
			rows = append(rows, Table3Row{
				Name: p.Meta.Name, P: np,
				MeanWork: p.Total / int64(np),
				AG4:      s4.Imbalance(), AG25: s25.Imbalance(),
				Paper: PaperTable3[p.Meta.Name][np],
			})
		}
	}
	return rows
}

// FormatTable3 renders the work distribution table.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: Block mapping work distribution (measured | paper)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tMean\tA g=4\tA g=25\t|\tpMean\tpA g=4\tpA g=25")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.2f\t|\t%d\t%.2f\t%.2f\n",
			r.Name, r.P, r.MeanWork, r.AG4, r.AG25,
			r.Paper.Mean, r.Paper.AG4, r.Paper.AG5)
	}
	w.Flush()
	return sb.String()
}

// ---------------------------------------------------------------- Table 4

// Table4Row is the cluster-width variation for LAP30 at g=4.
type Table4Row struct {
	Width, P int
	Total    int64
	Mean     int64
	MeanWork int64
	A        float64
	Paper    paperWidth
}

// Table4 computes the width sweep for LAP30 (grain 4).
func Table4(lap *Problem) []Table4Row {
	var rows []Table4Row
	for _, width := range []int{2, 4, 8} {
		for _, np := range DefaultProcs {
			s, r := lap.Block(4, width, np)
			rows = append(rows, Table4Row{
				Width: width, P: np,
				Total: r.Total, Mean: r.Total / int64(np),
				MeanWork: lap.Total / int64(np), A: s.Imbalance(),
				Paper: PaperTable4[width][np],
			})
		}
	}
	return rows
}

// FormatTable4 renders the width variation table.
func FormatTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table 4: Variation with minimum cluster width, LAP30, g=4 (measured | paper)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Width\tP\tTotal\tMean\tMean work\tA\t|\tpTotal\tpMean\tpMean work\tpA")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.2f\t|\t%d\t%d\t%d\t%.2f\n",
			r.Width, r.P, r.Total, r.Mean, r.MeanWork, r.A,
			r.Paper.Total, r.Paper.Mean, r.Paper.MeanWork, r.Paper.A)
	}
	w.Flush()
	return sb.String()
}

// ---------------------------------------------------------------- Table 5

// Table5Row is the wrap-mapping behaviour for one (matrix, P).
type Table5Row struct {
	Name     string
	P        int
	Total    int64
	Mean     int64
	MeanWork int64
	A        float64
	Paper    paperWrap
}

// Table5 computes the wrap-mapping table.
func Table5(problems []*Problem) []Table5Row {
	var rows []Table5Row
	for _, p := range problems {
		for _, np := range WrapProcs {
			s, r := p.Wrap(np)
			rows = append(rows, Table5Row{
				Name: p.Meta.Name, P: np,
				Total: r.Total, Mean: r.Total / int64(np),
				MeanWork: p.Total / int64(np), A: s.Imbalance(),
				Paper: PaperTable5[p.Meta.Name][np],
			})
		}
	}
	return rows
}

// FormatTable5 renders the wrap-mapping table.
func FormatTable5(rows []Table5Row) string {
	var sb strings.Builder
	sb.WriteString("Table 5: Wrap mapping (measured | paper)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tTotal\tMean\tMean work\tA\t|\tpTotal\tpMean\tpMean work\tpA")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\t|\t%d\t%d\t%d\t%.2f\n",
			r.Name, r.P, r.Total, r.Mean, r.MeanWork, r.A,
			r.Paper.Total, r.Paper.Mean, r.Paper.MeanWork, r.Paper.A)
	}
	w.Flush()
	return sb.String()
}

// ------------------------------------------------------------- Extensions

// MakespanRow quantifies dependency delays (extension Ext-A): the paper
// asserts the allocator keeps idle time small; this measures it.
type MakespanRow struct {
	Name       string
	P          int
	Scheme     string // "block g=4", "block g=25", "wrap"
	Makespan   int64
	CritPath   int64
	Efficiency float64 // with dependency delays
	BoundEff   float64 // the paper's 1/(1+A) bound (no delays)
	IdlePct    float64
}

// Makespan computes the dependency-delay study.
func Makespan(problems []*Problem) []MakespanRow {
	var rows []MakespanRow
	for _, p := range problems {
		for _, np := range DefaultProcs {
			for _, g := range DefaultGrains {
				s, _ := p.Block(g, DefaultWidth, np)
				tasks := exec.BlockTasks(p.Part(g, DefaultWidth), s)
				r := exec.SimulateMakespan(tasks, np)
				rows = append(rows, MakespanRow{
					Name: p.Meta.Name, P: np, Scheme: fmt.Sprintf("block g=%d", g),
					Makespan: r.Makespan, CritPath: exec.CriticalPath(tasks),
					Efficiency: r.Efficiency, BoundEff: s.Efficiency(),
					IdlePct: r.IdlePct(),
				})
			}
			ws, _ := p.Wrap(np)
			tasks := exec.ColumnTasks(p.F, p.Ops, p.ElemWork, np)
			r := exec.SimulateMakespan(tasks, np)
			rows = append(rows, MakespanRow{
				Name: p.Meta.Name, P: np, Scheme: "wrap",
				Makespan: r.Makespan, CritPath: exec.CriticalPath(tasks),
				Efficiency: r.Efficiency, BoundEff: ws.Efficiency(),
				IdlePct: r.IdlePct(),
			})
		}
	}
	return rows
}

// FormatMakespan renders the dependency-delay table.
func FormatMakespan(rows []MakespanRow) string {
	var sb strings.Builder
	sb.WriteString("Ext-A: Dependency delays (makespan simulation; eff vs the paper's 1/(1+A) bound)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tScheme\tMakespan\tCritPath\tEff\tBound 1/(1+A)\tIdle%")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%.3f\t%.3f\t%.1f\n",
			r.Name, r.P, r.Scheme, r.Makespan, r.CritPath, r.Efficiency, r.BoundEff, r.IdlePct)
	}
	w.Flush()
	return sb.String()
}

// PartnersRow quantifies communication locality (extension Ext-B): the
// paper's Section 5 claims wrap mapping leads to many communication
// partners per processor while the block scheme confines traffic.
// The hop columns weight each fetched element by the hypercube distance
// between owner and reader (the topology of the paper's era).
type PartnersRow struct {
	Name            string
	P               int
	WrapPartners    float64
	BlockPartners   float64 // g=25
	WrapMaxTraffic  int64
	BlockMaxTraffic int64
	WrapHops        int64
	BlockHops       int64
}

// Partners computes the communication-partner study.
func Partners(problems []*Problem) []PartnersRow {
	var rows []PartnersRow
	for _, p := range problems {
		for _, np := range DefaultProcs {
			_, wr := p.Wrap(np)
			_, br := p.Block(25, DefaultWidth, np)
			rows = append(rows, PartnersRow{
				Name: p.Meta.Name, P: np,
				WrapPartners:    wr.MeanPartners(),
				BlockPartners:   br.MeanPartners(),
				WrapMaxTraffic:  wr.MaxPerProc(),
				BlockMaxTraffic: br.MaxPerProc(),
				WrapHops:        wr.HopWeightedTraffic(),
				BlockHops:       br.HopWeightedTraffic(),
			})
		}
	}
	return rows
}

// FormatPartners renders the partner study.
func FormatPartners(rows []PartnersRow) string {
	var sb strings.Builder
	sb.WriteString("Ext-B: Communication partners per processor (wrap vs block g=25)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tWrap partners\tBlock partners\tWrap max traffic\tBlock max traffic\tWrap hop-traffic\tBlock hop-traffic")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%d\t%d\t%d\t%d\n",
			r.Name, r.P, r.WrapPartners, r.BlockPartners, r.WrapMaxTraffic, r.BlockMaxTraffic,
			r.WrapHops, r.BlockHops)
	}
	w.Flush()
	return sb.String()
}

// GrainRow is one point of the grain-size ablation (extension Ext-C).
type GrainRow struct {
	Grain int
	Units int
	Total int64
	A     float64
}

// GrainSweep traces the communication / load-balance trade-off curve
// underlying Tables 2-3, for one matrix and processor count.
func GrainSweep(p *Problem, procs int, grains []int) []GrainRow {
	mustProcs(procs)
	var rows []GrainRow
	for _, g := range grains {
		s, r := p.Block(g, DefaultWidth, procs)
		rows = append(rows, GrainRow{
			Grain: g, Units: len(p.Part(g, DefaultWidth).Units),
			Total: r.Total, A: s.Imbalance(),
		})
	}
	return rows
}

// FormatGrainSweep renders the ablation curve.
func FormatGrainSweep(name string, procs int, rows []GrainRow) string {
	mustProcs(procs)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ext-C: Grain sweep, %s, P=%d (communication vs load balance)\n", name, procs)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Grain\tUnits\tTotal traffic\tA")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\n", r.Grain, r.Units, r.Total, r.A)
	}
	w.Flush()
	return sb.String()
}
