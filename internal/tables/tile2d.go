package tables

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/exec"
	"repro/internal/part2d"
	"repro/internal/strategy"
)

// Tile2DRow is one cell of the 2D tile-ownership study (Ext-T): one 2D
// strategy — a native tile mapper or a col2d-lifted 1D strategy — on one
// problem and processor count, measured by the tile-granular traffic
// simulator (deduplicated total split into fan-out and fan-in) and the
// comm-aware dynamic makespan over the merged tile-segment task graph.
type Tile2DRow struct {
	Name     string
	P        int
	Strategy string
	// R is the number of shared diagonal intervals (the tiling is R x R).
	R int
	// Traffic is the deduplicated 2D total; FanOut and FanIn partition it
	// by direction (sources along the target's tile row vs its tile
	// column).
	Traffic, FanOut, FanIn int64
	// A is the paper's load imbalance factor over the tile ownership.
	A float64
	// CommSpan is the comm-aware dynamic makespan under the study's
	// CommModel; ComputeSpan the same simulation with communication free.
	ComputeSpan, CommSpan int64
	// Best marks the lowest CommSpan among the strategies at this (Name, P).
	Best bool
}

// Tile2DProcs is the processor sweep of the Ext-T study: the paper's
// small/medium points plus P=64, where the 2D ownership's traffic
// advantage over column flattening is largest.
var Tile2DProcs = []int{4, 16, 64}

// Tile2D evaluates the native 2D tile mappers and the col2d lifts of the
// column-granular 1D strategies (part2d.LiftBases) across the processor
// sweep under one communication model (Ext-T).
func Tile2D(p *Problem, procs []int, cm exec.CommModel) ([]Tile2DRow, error) {
	sys := p.StrategySys()
	var rows []Tile2DRow
	type entry struct {
		label string
		opts  strategy.Options
		name  string
	}
	var entries []entry
	for _, name := range part2d.Names2D() {
		if name == "col2d" {
			continue // enumerated per base below
		}
		entries = append(entries, entry{label: name, name: name})
	}
	for _, base := range part2d.LiftBases() {
		entries = append(entries, entry{
			label: "col2d:" + base,
			name:  "col2d",
			opts:  strategy.Options{Base: base},
		})
	}
	for _, np := range procs {
		start := len(rows)
		for _, e := range entries {
			s2, err := part2d.Map2D(e.name, sys, np, e.opts)
			if err != nil {
				return nil, fmt.Errorf("tables: 2D strategy %s on %s P=%d: %w",
					e.label, p.Meta.Name, np, err)
			}
			tr := part2d.Traffic(sys.Ops, s2)
			comp := part2d.MakespanDynamic(sys.Ops, sys.ElemWork, s2)
			comm := part2d.MakespanCommDynamic(sys.Ops, sys.ElemWork, s2, cm)
			rows = append(rows, Tile2DRow{
				Name: p.Meta.Name, P: np, Strategy: e.label,
				R:       s2.R(),
				Traffic: tr.Total, FanOut: tr.TotalFanOut(), FanIn: tr.TotalFanIn(),
				A:           s2.Imbalance(),
				ComputeSpan: comp.Makespan, CommSpan: comm.Makespan,
			})
		}
		best := start
		for i := start + 1; i < len(rows); i++ {
			if rows[i].CommSpan < rows[best].CommSpan {
				best = i
			}
		}
		rows[best].Best = true
	}
	return rows, nil
}

// FormatTile2D renders the 2D tile-ownership study.
func FormatTile2D(name string, cm exec.CommModel, rows []Tile2DRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ext-T: 2D tile ownership (fan-out/fan-in traffic, comm-aware dynamic span), %s, alpha=%g, beta=%g\n",
		name, cm.Alpha, cm.Beta)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tStrategy\tR\tTraffic\tFan-out\tFan-in\tImbalance A\tSpan compute\tSpan comm\tBest")
	for _, r := range rows {
		best := ""
		if r.Best {
			best = "*"
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%d\t%d\t%.3f\t%d\t%d\t%s\n",
			r.Name, r.P, r.Strategy, r.R, r.Traffic, r.FanOut, r.FanIn, r.A, r.ComputeSpan, r.CommSpan, best)
	}
	w.Flush()
	return sb.String()
}
