package tables

import (
	"testing"

	"repro/internal/gen"
)

func lapMeta(t *testing.T) gen.TestMatrix {
	t.Helper()
	for _, tm := range gen.Suite() {
		if tm.Name == "LAP30" {
			return tm
		}
	}
	t.Fatal("LAP30 missing")
	return gen.TestMatrix{}
}

func TestRelaxSweepShapes(t *testing.T) {
	rows, err := RelaxSweep(lapMeta(t), 16, 25, []float64{0, 0.1, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Merges != 0 || rows[0].PaddedNNZ != 0 {
		t.Errorf("frac=0 row must be unrelaxed: %+v", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Supernodes > rows[i-1].Supernodes {
			t.Errorf("supernodes increased with padding budget: %+v -> %+v", rows[i-1], rows[i])
		}
		if rows[i].TotalWork < rows[0].TotalWork {
			t.Errorf("padded work below unpadded: %+v", rows[i])
		}
	}
	// Relaxation merges supernodes at the cost of extra (padded) work —
	// the honest trade-off under the paper's element-level cost model.
	last := rows[len(rows)-1]
	if last.Supernodes >= rows[0].Supernodes {
		t.Errorf("top budget did not reduce supernodes: %d vs %d",
			last.Supernodes, rows[0].Supernodes)
	}
	if last.TotalWork <= rows[0].TotalWork {
		t.Errorf("padding added no work: %d vs %d — stats look wrong",
			last.TotalWork, rows[0].TotalWork)
	}
	_ = FormatRelaxSweep("LAP30", 16, 25, rows)
}

func TestAllocCompareImproves(t *testing.T) {
	lap := loadLap(t)
	rows := AllocCompare([]*Problem{lap})
	var better, worse int
	for _, r := range rows {
		if r.AGreedy < r.A34 {
			better++
		}
		if r.AGreedy > r.A34 {
			worse++
		}
	}
	if better == 0 {
		t.Errorf("greedy allocator never improved balance: %+v", rows)
	}
	_ = FormatAllocCompare(rows)
}

func TestOrderCompareShapes(t *testing.T) {
	rows, err := OrderCompare(lapMeta(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]OrderRow{}
	for _, r := range rows {
		byName[r.Ordering] = r
	}
	if byName["MMD"].FactorNNZ >= byName["natural"].FactorNNZ {
		t.Error("MMD fill not below natural")
	}
	if byName["MMD+post"].FactorNNZ != byName["MMD"].FactorNNZ {
		t.Error("postordering changed fill")
	}
	if byName["ND"].FactorNNZ >= byName["natural"].FactorNNZ {
		t.Error("ND fill not below natural")
	}
	_ = FormatOrderCompare("LAP30", 16, rows)
}

func TestSolveBalanceShapes(t *testing.T) {
	lap := loadLap(t)
	rows := SolveBalance([]*Problem{lap})
	for _, r := range rows {
		// Combined imbalance is a work-weighted mix; it cannot exceed the
		// max of the two phases' imbalances by construction.
		max := r.FactorABlock
		if r.SolveABlock > max {
			max = r.SolveABlock
		}
		if r.CombinedABlock > max+1e-9 {
			t.Errorf("combined A %.3f above both phases: %+v", r.CombinedABlock, r)
		}
		if r.SolveAWrap > 0.6 {
			t.Errorf("wrap solve imbalance implausibly high: %+v", r)
		}
	}
	_ = FormatSolveBalance(rows)
}

func TestDynamicCompareRecovers(t *testing.T) {
	lap := loadLap(t)
	rows := DynamicCompare([]*Problem{lap})
	for _, r := range rows {
		if r.DynamicEff < r.StaticEff-1e-9 {
			t.Errorf("dynamic execution worse than static: %+v", r)
		}
		if r.DynamicEff > r.CritPathEff+1e-9 && r.CritPathEff <= 1 {
			t.Errorf("dynamic efficiency above critical-path bound: %+v", r)
		}
	}
	_ = FormatDynamicCompare(rows)
}

func TestCommMakespanShapes(t *testing.T) {
	lap := loadLap(t)
	rows := CommMakespan(lap, 16, []float64{0, 5, 20})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.BlockSpan <= 0 || r.WrapSpan <= 0 {
			t.Fatalf("nonpositive makespan: %+v", r)
		}
		if i > 0 {
			if r.BlockSpan < rows[i-1].BlockSpan || r.WrapSpan < rows[i-1].WrapSpan {
				t.Errorf("makespan decreased with higher comm cost: %+v", rows)
			}
		}
	}
	// The gap must widen with communication cost (block saves traffic).
	gap0 := float64(rows[0].WrapSpan) / float64(rows[0].BlockSpan)
	gapN := float64(rows[len(rows)-1].WrapSpan) / float64(rows[len(rows)-1].BlockSpan)
	if gapN <= gap0 {
		t.Errorf("wrap/block makespan ratio did not grow with comm cost: %.2f -> %.2f", gap0, gapN)
	}
	_ = FormatCommMakespan("LAP30", 16, rows)
}
