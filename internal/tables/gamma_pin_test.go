package tables

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/part2d"
	"repro/internal/strategy"
)

// TestZeroGammaBitIdentity pins the makespans of all six comm-aware
// simulators — the 1D static/dynamic strategy pair, the 2D static/dynamic
// pair, and the underlying exec static/dynamic pair over the merged
// tile-segment tasks — on BUS1138 at P in {1, 4, 16} against the values
// the two-parameter CommModel produced before the Gamma overhead term
// existed. A zero Gamma must charge exactly nothing, so these numbers can
// never move.
func TestZeroGammaBitIdentity(t *testing.T) {
	p, err := LoadProblem(gen.Suite()[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Meta.Name != "BUS1138" {
		t.Fatalf("suite matrix 0 is %s, goldens were pinned on BUS1138", p.Meta.Name)
	}
	cm := exec.CommModel{Alpha: 2, Beta: 10, Gamma: 0}
	sys := p.StrategySys()
	opts := strategy.Options{}
	// Pre-Gamma goldens: P, strategy comm static/dynamic (wrap), part2d
	// comm static/dynamic (rect2dcyclic), exec comm static/dynamic over the
	// same tile-segment tasks.
	golden := [][7]int64{
		{1, 33340, 33340, 33340, 33340, 33340, 33340},
		{4, 37349, 28467, 32812, 23009, 32812, 23009},
		{16, 46468, 44338, 34172, 19794, 34172, 19794},
	}
	for _, g := range golden {
		np := int(g[0])
		sc, err := strategy.Map("wrap", sys, np, opts)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := part2d.Map2D("rect2dcyclic", sys, np, opts)
		if err != nil {
			t.Fatal(err)
		}
		tasks, elemTask := part2d.Tasks(p.Ops, p.ElemWork, s2)
		tc := part2d.FetchStats(p.Ops, s2, len(tasks), elemTask)
		got := [6]int64{
			strategy.MakespanComm(sys, opts, sc, cm).Makespan,
			strategy.MakespanCommDynamic(sys, opts, sc, cm).Makespan,
			part2d.MakespanComm(p.Ops, p.ElemWork, s2, cm).Makespan,
			part2d.MakespanCommDynamic(p.Ops, p.ElemWork, s2, cm).Makespan,
			exec.SimulateMakespanComm(tasks, np, cm, tc.Vol, tc.Msgs).Makespan,
			exec.SimulateMakespanDynamicComm(tasks, np, cm, tc.Vol, tc.Msgs).Makespan,
		}
		for k, want := range g[1:] {
			if got[k] != want {
				t.Errorf("P=%d simulator %d: makespan %d, pre-Gamma golden %d", np, k, got[k], want)
			}
		}
		// A positive Gamma must strictly lengthen every simulator's span
		// (each task pays the overhead, so even P=1 chains grow).
		over := cm
		over.Gamma = 7
		if s := part2d.MakespanComm(p.Ops, p.ElemWork, s2, over).Makespan; s <= got[2] {
			t.Errorf("P=%d: Gamma=7 static 2D span %d not above zero-Gamma %d", np, s, got[2])
		}
		if s := strategy.MakespanCommDynamic(sys, opts, sc, over).Makespan; s <= got[1] {
			t.Errorf("P=%d: Gamma=7 dynamic 1D span %d not above zero-Gamma %d", np, s, got[1])
		}
	}
}
