package tables

import (
	"testing"

	"repro/internal/exec"
)

// TestTile2DShapes covers the Ext-T table's structural contract: one row
// per (P, 2D strategy), exactly one Best row per P, fan-out plus fan-in
// partitioning the traffic total on every row, P=1 rows communicating
// nothing, and the col2d:wrap lift reproducing the 1D wrap traffic of the
// Ext-M study's fetch attribution.
func TestTile2DShapes(t *testing.T) {
	p := commGoldenProblem(t)
	procs := []int{1, 4}
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	rows, err := Tile2D(p, procs, cm)
	if err != nil {
		t.Fatal(err)
	}
	perP := make(map[int]int)
	bestPerP := make(map[int]int)
	for _, r := range rows {
		perP[r.P]++
		if r.Best {
			bestPerP[r.P]++
		}
		if r.FanOut+r.FanIn != r.Traffic {
			t.Errorf("%s P=%d: fan-out %d + fan-in %d != traffic %d",
				r.Strategy, r.P, r.FanOut, r.FanIn, r.Traffic)
		}
		if r.CommSpan < r.ComputeSpan {
			t.Errorf("%s P=%d: comm span %d below compute span %d",
				r.Strategy, r.P, r.CommSpan, r.ComputeSpan)
		}
		if r.P == 1 && (r.Traffic != 0 || r.CommSpan != r.ComputeSpan) {
			t.Errorf("P=1 row communicates: %+v", r)
		}
		if r.R < 1 || r.R > p.F.N {
			t.Errorf("%s P=%d: implausible interval count R=%d", r.Strategy, r.P, r.R)
		}
	}
	nstrat := len(rows) / len(procs)
	for _, np := range procs {
		if perP[np] != nstrat {
			t.Errorf("P=%d: %d rows, want %d", np, perP[np], nstrat)
		}
		if bestPerP[np] != 1 {
			t.Errorf("P=%d: %d Best rows, want exactly 1", np, bestPerP[np])
		}
	}

	// The col2d:wrap row must agree with the 1D wrap fetch volume of the
	// Ext-M study (the lift is exact, not approximately equal).
	urows, err := UnifiedComm(p, []int{4}, []string{"wrap"}, cm)
	if err != nil {
		t.Fatal(err)
	}
	var lifted *Tile2DRow
	for i := range rows {
		if rows[i].P == 4 && rows[i].Strategy == "col2d:wrap" {
			lifted = &rows[i]
		}
	}
	if lifted == nil {
		t.Fatal("no col2d:wrap row at P=4")
	}
	if lifted.Traffic != urows[0].FetchVol {
		t.Errorf("col2d:wrap traffic %d != 1D wrap fetch volume %d", lifted.Traffic, urows[0].FetchVol)
	}
	if lifted.CommSpan != urows[0].CommSpan {
		t.Errorf("col2d:wrap comm span %d != 1D wrap comm span %d", lifted.CommSpan, urows[0].CommSpan)
	}
}
