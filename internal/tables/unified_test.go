package tables

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/sparse"
)

// commGoldenProblem is the pinned small problem of the Ext-M golden test:
// small enough that the full pipeline runs in milliseconds, big enough
// that every strategy communicates at P=4.
func commGoldenProblem(t *testing.T) *Problem {
	t.Helper()
	tm := gen.TestMatrix{Name: "GRID9-6", Build: func() *sparse.Matrix { return gen.Grid9(6, 6) }}
	p, err := LoadProblem(tm)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCommUnifiedGolden pins the exact rendered Ext-M table for a small
// problem, so any regression in the whole comm-aware pipeline — fetch
// attribution, message counting, cost model, dynamic simulation, table
// formatting — surfaces in go test, not in a silently-changed paperbench
// report. The pinned numbers also lock in the paper's qualitative claim:
// at P=4 wrap wins the compute-only span (1084 vs block's 1098) but loses
// the unified span once communication is charged (1994 vs 1370).
func TestCommUnifiedGolden(t *testing.T) {
	p := commGoldenProblem(t)
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	rows, err := UnifiedComm(p, []int{2, 4}, []string{"block", "contiguous", "wrap"}, cm)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatUnifiedComm("GRID9-6", cm, rows)
	const want = "Ext-M: Unified comm-aware makespan (dynamic exec), GRID9-6, g=25, alpha=2, beta=10\n" +
		"Appl     P  Strategy    Span compute  Span comm  Fetch vol  Msgs  Comm frac  Best\n" +
		"GRID9-6  2  block       1117          1247       68         5     0.108      *\n" +
		"GRID9-6  2  contiguous  1450          1582       82         5     0.123      \n" +
		"GRID9-6  2  wrap        1123          1463       158        18    0.245      \n" +
		"GRID9-6  4  block       1098          1370       131        10    0.191      *\n" +
		"GRID9-6  4  contiguous  1426          1768       192        15    0.259      \n" +
		"GRID9-6  4  wrap        1084          1994       371        48    0.444      \n"
	if got != want {
		t.Errorf("Ext-M golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCommUnifiedShapes covers the defaulting paths the golden test fixes:
// nil strategy names select every registered strategy, exactly one row per
// (P, strategy) is produced, and exactly one Best row per P.
func TestCommUnifiedShapes(t *testing.T) {
	p := commGoldenProblem(t)
	procs := []int{1, 4}
	rows, err := UnifiedComm(p, procs, nil, exec.CommModel{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	perP := make(map[int]int)
	bestPerP := make(map[int]int)
	for _, r := range rows {
		perP[r.P]++
		if r.Best {
			bestPerP[r.P]++
		}
		if r.CommSpan < r.ComputeSpan {
			t.Errorf("%s P=%d: comm span %d below compute span %d",
				r.Strategy, r.P, r.CommSpan, r.ComputeSpan)
		}
		if r.P == 1 && (r.FetchVol != 0 || r.Msgs != 0 || r.CommSpan != r.ComputeSpan) {
			t.Errorf("P=1 row communicates: %+v", r)
		}
	}
	nstrat := len(rows) / len(procs)
	for _, np := range procs {
		if perP[np] != nstrat {
			t.Errorf("P=%d: %d rows, want %d (one per registered strategy)", np, perP[np], nstrat)
		}
		if bestPerP[np] != 1 {
			t.Errorf("P=%d: %d Best rows, want exactly 1", np, bestPerP[np])
		}
	}
	// An empty non-nil names slice selects every registered strategy too.
	empty, err := UnifiedComm(p, []int{2}, []string{}, exec.CommModel{})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != nstrat {
		t.Errorf("empty names: %d rows, want %d", len(empty), nstrat)
	}
}
