package tables

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/strategy"
)

// UnifiedRow is one cell of the unified comm-aware makespan study (Ext-M):
// one registered strategy on one problem and processor count, timed by the
// dynamic makespan simulation with and without the α/β communication
// model. This is the table the paper's Section 4 gestures at but never
// prints — a single time estimate in which the block scheme's traffic
// savings and the wrap mapping's balance advantage compete directly.
type UnifiedRow struct {
	Name     string
	P        int
	Strategy string
	// ComputeSpan is the dynamic makespan with communication free
	// (CommModel zero); CommSpan charges the model's α/β costs.
	ComputeSpan int64
	CommSpan    int64
	// FetchVol and Msgs total the per-task fetch volumes and consolidated
	// message counts of the schedule.
	FetchVol int64
	Msgs     int64
	// CommFrac is the communication share of the total busy time.
	CommFrac float64
	// Best marks the lowest CommSpan among the strategies at this (Name, P).
	Best bool
}

// UnifiedComm evaluates the named strategies (all registered ones when
// names is nil or empty, which includes registry additions such as
// subcube automatically) across the processor sweep at the paper's
// production partitioning (g=25) under one communication model.
func UnifiedComm(p *Problem, procs []int, names []string, cm exec.CommModel) ([]UnifiedRow, error) {
	if len(names) == 0 {
		names = strategy.Names()
	}
	sys := p.StrategySys()
	opts := strategy.Options{Part: core.Options{Grain: 25, MinClusterWidth: DefaultWidth}}
	var rows []UnifiedRow
	for _, np := range procs {
		start := len(rows)
		for _, name := range names {
			sc, err := strategy.Map(name, sys, np, opts)
			if err != nil {
				return nil, fmt.Errorf("tables: strategy %s on %s P=%d: %w",
					name, p.Meta.Name, np, err)
			}
			tasks := strategy.Tasks(sys, opts, sc)
			tc := strategy.FetchStats(sys, opts, sc)
			comp := exec.SimulateMakespanDynamic(tasks, np)
			comm := exec.SimulateMakespanDynamicComm(tasks, np, cm, tc.Vol, tc.Msgs)
			frac := 0.0
			if comm.TotalWork > 0 {
				frac = float64(comm.Comm) / float64(comm.TotalWork)
			}
			rows = append(rows, UnifiedRow{
				Name: p.Meta.Name, P: np, Strategy: name,
				ComputeSpan: comp.Makespan, CommSpan: comm.Makespan,
				FetchVol: tc.TotalVol(), Msgs: tc.TotalMsgs(),
				CommFrac: frac,
			})
		}
		best := start
		for i := start + 1; i < len(rows); i++ {
			if rows[i].CommSpan < rows[best].CommSpan {
				best = i
			}
		}
		rows[best].Best = true
	}
	return rows, nil
}

// FormatUnifiedComm renders the unified comm-aware makespan study.
func FormatUnifiedComm(name string, cm exec.CommModel, rows []UnifiedRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ext-M: Unified comm-aware makespan (dynamic exec), %s, g=25, alpha=%g, beta=%g\n",
		name, cm.Alpha, cm.Beta)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Appl\tP\tStrategy\tSpan compute\tSpan comm\tFetch vol\tMsgs\tComm frac\tBest")
	for _, r := range rows {
		best := ""
		if r.Best {
			best = "*"
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%d\t%d\t%.3f\t%s\n",
			r.Name, r.P, r.Strategy, r.ComputeSpan, r.CommSpan, r.FetchVol, r.Msgs, r.CommFrac, best)
	}
	w.Flush()
	return sb.String()
}
