package hbio

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestParseFormat(t *testing.T) {
	cases := []struct {
		in      string
		perLine int
		kind    byte
		width   int
		prec    int
		wantErr bool
	}{
		{"(16I5)", 16, 'I', 5, 0, false},
		{"(10I8)", 10, 'I', 8, 0, false},
		{"(5E16.8)", 5, 'E', 16, 8, false},
		{"(4D20.12)", 4, 'D', 20, 12, false},
		{"(1P,5E16.8)", 5, 'E', 16, 8, false},
		{"(1P5E16.8)", 5, 'E', 16, 8, false},
		{" (3F10.4) ", 3, 'F', 10, 4, false},
		{"(I5)", 1, 'I', 5, 0, false},
		{"(4G20.12)", 4, 'E', 20, 12, false},
		{"(XYZ)", 0, 0, 0, 0, true},
		{"(5Q10)", 0, 0, 0, 0, true},
		{"(5E)", 0, 0, 0, 0, true},
	}
	for _, c := range cases {
		f, err := parseFormat(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseFormat(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseFormat(%q): %v", c.in, err)
			continue
		}
		if f.perLine != c.perLine || f.kind != c.kind || f.width != c.width || f.prec != c.prec {
			t.Errorf("parseFormat(%q) = %+v, want %+v", c.in, f, c)
		}
	}
}

func roundTrip(t *testing.T, m *sparse.Matrix, title, key string) (*sparse.Matrix, Header) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m, title, key); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, hdr, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v\nfile:\n%s", err, buf.String())
	}
	return got, hdr
}

func TestRoundTripWithValues(t *testing.T) {
	m := gen.Grid5(4, 4)
	got, hdr := roundTrip(t, m, "4x4 five-point grid", "GRID44")
	if hdr.Type != "RSA" || hdr.NRow != 16 || hdr.NNZ != m.NNZ() {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Title != "4x4 five-point grid" || hdr.Key != "GRID44" {
		t.Fatalf("title/key = %q/%q", hdr.Title, hdr.Key)
	}
	if !sparse.PatternEqual(m, got) {
		t.Fatal("pattern not preserved")
	}
	for k := range m.Val {
		if math.Abs(m.Val[k]-got.Val[k]) > 1e-10 {
			t.Fatalf("value %d: %g vs %g", k, m.Val[k], got.Val[k])
		}
	}
}

func TestRoundTripPatternOnly(t *testing.T) {
	m, _ := sparse.NewPattern(5, [][2]int{{0, 3}, {1, 4}, {2, 3}})
	got, hdr := roundTrip(t, m, "pattern", "PAT")
	if hdr.Type != "PSA" {
		t.Fatalf("type = %q, want PSA", hdr.Type)
	}
	if got.Val != nil {
		t.Fatal("pattern round trip produced values")
	}
	if !sparse.PatternEqual(m, got) {
		t.Fatal("pattern not preserved")
	}
}

func TestRoundTripSuiteProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := gen.Random(30, 1.2, seed)
		var buf bytes.Buffer
		if err := Write(&buf, m, "random", "RND"); err != nil {
			return false
		}
		got, _, err := Read(&buf)
		if err != nil {
			return false
		}
		if !sparse.PatternEqual(m, got) {
			return false
		}
		for k := range m.Val {
			if math.Abs(m.Val[k]-got.Val[k]) > 1e-9*(1+math.Abs(m.Val[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFortranDExponent(t *testing.T) {
	// Hand-written file using D exponents and a 16I5 index format.
	file := "" +
		"tiny                                                                    TINY    \n" +
		"             4             1             1             2             0\n" +
		"RSA                         2             2             3             0\n" +
		"(16I5)          (16I5)          (2D20.12)           \n" +
		"    1    3    4\n" +
		"    1    2    2\n" +
		"  0.400000000000D+01 -0.100000000000D+01\n" +
		"  0.500000000000D+01\n"
	m, hdr, err := Read(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Key != "TINY" {
		t.Errorf("key = %q", hdr.Key)
	}
	if m.N != 2 || m.NNZ() != 3 {
		t.Fatalf("parsed %v", m)
	}
	if m.At(0, 0) != 4 || m.At(1, 0) != -1 || m.At(1, 1) != 5 {
		t.Fatalf("values wrong: %v %v %v", m.At(0, 0), m.At(1, 0), m.At(1, 1))
	}
}

func TestReadSkipsRHS(t *testing.T) {
	// File with an RHS block that must be skipped (rhsCrd = 1).
	file := "" +
		"with rhs                                                                RHS1    \n" +
		"             5             1             1             1             1\n" +
		"RSA                         2             2             2             0\n" +
		"(16I5)          (16I5)          (2E20.12)           (2E20.12)          \n" +
		"F                           1             0\n" +
		"    1    2    3\n" +
		"    1    2\n" +
		"             1.0E+00             2.0E+00\n" +
		"             9.9E+00             9.9E+00\n"
	m, _, err := Read(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 2 || m.At(0, 0) != 1 || m.At(1, 1) != 2 {
		t.Fatalf("bad parse: %v", m)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"too short": "just one line\n",
		"bad type": "t\n" +
			"             4             1             1             2             0\n" +
			"RUA                         2             2             3             0\n" +
			"(16I5)          (16I5)          (2E20.12)           \n",
		"bad counts": "t\n" +
			"             x             y             z             w\n" +
			"RSA                         2             2             3             0\n" +
			"(16I5)          (16I5)          (2E20.12)           \n",
		"truncated body": "t\n" +
			"             9             3             3             3             0\n" +
			"RSA                         9             9             9             0\n" +
			"(16I5)          (16I5)          (2E20.12)           \n" +
			"    1\n",
	}
	for name, file := range cases {
		if _, _, err := Read(strings.NewReader(file)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteLongTitleTruncated(t *testing.T) {
	m, _ := sparse.NewPattern(2, nil)
	long := strings.Repeat("x", 100)
	var buf bytes.Buffer
	if err := Write(&buf, m, long, "KEYISLONGER"); err != nil {
		t.Fatal(err)
	}
	_, hdr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(hdr.Title) != 72 || hdr.Key != "KEYISLON" {
		t.Fatalf("title len %d key %q", len(hdr.Title), hdr.Key)
	}
}

func TestRoundTripFullSuite(t *testing.T) {
	for _, tm := range gen.Suite() {
		m := tm.Build()
		got, hdr := roundTrip(t, m, tm.Description, tm.Name)
		if !sparse.PatternEqual(m, got) {
			t.Errorf("%s: pattern not preserved", tm.Name)
		}
		if hdr.NNZ != m.NNZ() {
			t.Errorf("%s: nnz %d vs %d", tm.Name, hdr.NNZ, m.NNZ())
		}
	}
}

func BenchmarkWriteLap30(b *testing.B) {
	m := gen.Lap30()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, m, "lap30", "LAP30"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadLap30(b *testing.B) {
	m := gen.Lap30()
	var buf bytes.Buffer
	if err := Write(&buf, m, "lap30", "LAP30"); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReadNeverPanicsOnMutations(t *testing.T) {
	// Failure injection: truncations, deletions and byte flips of a valid
	// file must produce an error or a valid matrix — never a panic or a
	// structurally broken result.
	m := gen.Grid9(6, 6)
	var buf bytes.Buffer
	if err := Write(&buf, m, "mutation base", "MUT"); err != nil {
		t.Fatal(err)
	}
	base := buf.String()
	rng := rand.New(rand.NewSource(99))
	check := func(data string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Read panicked on mutated input: %v", r)
			}
		}()
		got, _, err := Read(strings.NewReader(data))
		if err == nil {
			if vErr := got.Validate(); vErr != nil {
				t.Fatalf("Read returned invalid matrix without error: %v", vErr)
			}
		}
	}
	// Truncations at every line boundary.
	lines := strings.SplitAfter(base, "\n")
	for cut := 0; cut < len(lines); cut++ {
		check(strings.Join(lines[:cut], ""))
	}
	// Random single-byte corruptions.
	for trial := 0; trial < 300; trial++ {
		b := []byte(base)
		pos := rng.Intn(len(b))
		b[pos] = byte(rng.Intn(96) + 32)
		check(string(b))
	}
	// Random line deletions.
	for trial := 0; trial < 50; trial++ {
		keep := make([]string, 0, len(lines))
		drop := rng.Intn(len(lines))
		for i, l := range lines {
			if i != drop {
				keep = append(keep, l)
			}
		}
		check(strings.Join(keep, ""))
	}
}
