// Package hbio reads and writes symmetric sparse matrices in the
// Harwell-Boeing exchange format.
//
// The paper's test problems come from the Harwell-Boeing collection
// [Duff, Grimes & Lewis 1989], distributed as fixed-format Fortran card
// images. This package implements the subset needed for the reproduction:
// assembled symmetric matrices, real (RSA) or pattern-only (PSA), stored as
// the lower triangle in compressed column form — the same convention as
// sparse.Matrix, so conversion is direct.
//
// The original data tapes are not distributable with this repository;
// cmd/matgen regenerates the synthetic equivalents and writes them as HB
// files so that downstream tools expecting the format keep working.
package hbio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// Header carries the identifying fields of a Harwell-Boeing file.
type Header struct {
	Title string // up to 72 characters
	Key   string // up to 8 characters
	Type  string // MXTYPE, e.g. "RSA" (real symmetric assembled) or "PSA"
	NRow  int
	NCol  int
	NNZ   int
}

// format is a parsed Fortran edit descriptor such as (16I5) or (5E16.8).
type format struct {
	perLine int
	kind    byte // 'I', 'E', 'D', 'F'
	width   int
	prec    int
}

func (f format) String() string {
	switch f.kind {
	case 'I':
		return fmt.Sprintf("(%dI%d)", f.perLine, f.width)
	default:
		return fmt.Sprintf("(%d%c%d.%d)", f.perLine, f.kind, f.width, f.prec)
	}
}

// parseFormat parses a Fortran format descriptor. Scale factors such as
// "1P" are accepted and ignored (they affect printing, not parsing).
func parseFormat(s string) (format, error) {
	orig := s
	s = strings.ToUpper(strings.TrimSpace(s))
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	// Drop scale factor prefix, e.g. "1P," or "1P".
	if i := strings.Index(s, "P"); i >= 0 && i+1 < len(s) && allDigits(s[:i]) {
		s = strings.TrimPrefix(s[i+1:], ",")
	}
	var f format
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i > 0 {
		n, err := strconv.Atoi(s[:i])
		if err != nil {
			return f, fmt.Errorf("hbio: bad format %q", orig)
		}
		f.perLine = n
	} else {
		f.perLine = 1
	}
	if i >= len(s) {
		return f, fmt.Errorf("hbio: bad format %q", orig)
	}
	f.kind = s[i]
	switch f.kind {
	case 'I', 'E', 'D', 'F', 'G':
		if f.kind == 'G' {
			f.kind = 'E'
		}
	default:
		return f, fmt.Errorf("hbio: unsupported format kind %q in %q", f.kind, orig)
	}
	rest := s[i+1:]
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		w, err := strconv.Atoi(rest)
		if err != nil {
			return f, fmt.Errorf("hbio: bad width in %q", orig)
		}
		f.width = w
		return f, nil
	}
	w, err := strconv.Atoi(rest[:dot])
	if err != nil {
		return f, fmt.Errorf("hbio: bad width in %q", orig)
	}
	p, err := strconv.Atoi(rest[dot+1:])
	if err != nil {
		return f, fmt.Errorf("hbio: bad precision in %q", orig)
	}
	f.width, f.prec = w, p
	return f, nil
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// Write emits m as a Harwell-Boeing file. Pattern-only matrices are
// written as PSA; matrices with values as RSA. title and key identify the
// matrix (truncated to 72 and 8 characters).
func Write(w io.Writer, m *sparse.Matrix, title, key string) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("hbio: refusing to write invalid matrix: %w", err)
	}
	bw := bufio.NewWriter(w)
	ptrFmt := format{perLine: 10, kind: 'I', width: 8}
	indFmt := format{perLine: 10, kind: 'I', width: 8}
	valFmt := format{perLine: 4, kind: 'E', width: 20, prec: 12}

	nnz := m.NNZ()
	ptrLines := cardCount(m.N+1, ptrFmt.perLine)
	indLines := cardCount(nnz, indFmt.perLine)
	valLines := 0
	mxtype := "PSA"
	if m.Val != nil {
		mxtype = "RSA"
		valLines = cardCount(nnz, valFmt.perLine)
	}
	total := ptrLines + indLines + valLines

	if len(title) > 72 {
		title = title[:72]
	}
	if len(key) > 8 {
		key = key[:8]
	}
	fmt.Fprintf(bw, "%-72s%-8s\n", title, key)
	fmt.Fprintf(bw, "%14d%14d%14d%14d%14d\n", total, ptrLines, indLines, valLines, 0)
	fmt.Fprintf(bw, "%-3s%11s%14d%14d%14d%14d\n", mxtype, "", m.N, m.N, nnz, 0)
	valStr := ""
	if m.Val != nil {
		valStr = valFmt.String()
	}
	fmt.Fprintf(bw, "%-16s%-16s%-20s%-20s\n", ptrFmt.String(), indFmt.String(), valStr, "")

	writeInts := func(xs []int, f format) {
		for k, x := range xs {
			fmt.Fprintf(bw, "%*d", f.width, x)
			if (k+1)%f.perLine == 0 || k == len(xs)-1 {
				bw.WriteByte('\n')
			}
		}
	}
	// 1-based pointers and indices, per the Fortran convention.
	ptr := make([]int, len(m.ColPtr))
	for i, p := range m.ColPtr {
		ptr[i] = p + 1
	}
	ind := make([]int, len(m.RowInd))
	for i, r := range m.RowInd {
		ind[i] = r + 1
	}
	writeInts(ptr, ptrFmt)
	writeInts(ind, indFmt)
	if m.Val != nil {
		for k, v := range m.Val {
			fmt.Fprintf(bw, "%*.*E", valFmt.width, valFmt.prec, v)
			if (k+1)%valFmt.perLine == 0 || k == len(m.Val)-1 {
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

func cardCount(n, perLine int) int {
	if n == 0 {
		return 0
	}
	return (n + perLine - 1) / perLine
}

// Read parses a Harwell-Boeing file holding an assembled symmetric matrix
// (MXTYPE RSA or PSA). Right-hand-side blocks, if present, are skipped.
func Read(r io.Reader) (*sparse.Matrix, Header, error) {
	var hdr Header
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, hdr, err
	}
	if len(lines) < 4 {
		return nil, hdr, errors.New("hbio: file too short for header")
	}
	l1 := lines[0]
	if len(l1) > 72 {
		hdr.Title = strings.TrimRight(l1[:72], " ")
		hdr.Key = strings.TrimSpace(l1[72:])
	} else {
		hdr.Title = strings.TrimRight(l1, " ")
	}
	c2 := strings.Fields(lines[1])
	if len(c2) < 4 {
		return nil, hdr, fmt.Errorf("hbio: bad card-count line %q", lines[1])
	}
	ptrCrd, err1 := strconv.Atoi(c2[1])
	indCrd, err2 := strconv.Atoi(c2[2])
	valCrd, err3 := strconv.Atoi(c2[3])
	rhsCrd := 0
	if len(c2) >= 5 {
		rhsCrd, _ = strconv.Atoi(c2[4])
	}
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, hdr, fmt.Errorf("hbio: bad card counts %q", lines[1])
	}
	l3 := lines[2]
	if len(l3) < 3 {
		return nil, hdr, fmt.Errorf("hbio: bad type line %q", l3)
	}
	hdr.Type = strings.ToUpper(strings.TrimSpace(l3[:3]))
	if hdr.Type != "RSA" && hdr.Type != "PSA" {
		return nil, hdr, fmt.Errorf("hbio: unsupported matrix type %q (want RSA or PSA)", hdr.Type)
	}
	c3 := strings.Fields(l3[3:])
	if len(c3) < 3 {
		return nil, hdr, fmt.Errorf("hbio: bad dimension line %q", l3)
	}
	hdr.NRow, err1 = strconv.Atoi(c3[0])
	hdr.NCol, err2 = strconv.Atoi(c3[1])
	hdr.NNZ, err3 = strconv.Atoi(c3[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, hdr, fmt.Errorf("hbio: bad dimensions %q", l3)
	}
	if hdr.NRow != hdr.NCol {
		return nil, hdr, fmt.Errorf("hbio: non-square symmetric matrix %dx%d", hdr.NRow, hdr.NCol)
	}
	l4 := lines[3]
	pad := func(s string, to int) string {
		for len(s) < to {
			s += " "
		}
		return s
	}
	l4 = pad(l4, 72)
	ptrFmt, err := parseFormat(l4[0:16])
	if err != nil {
		return nil, hdr, err
	}
	indFmt, err := parseFormat(l4[16:32])
	if err != nil {
		return nil, hdr, err
	}
	var valFmt format
	if valCrd > 0 {
		valFmt, err = parseFormat(l4[32:52])
		if err != nil {
			return nil, hdr, err
		}
	}
	body := 4
	if rhsCrd > 0 {
		body = 5 // skip the RHS descriptor card
	}
	need := body + ptrCrd + indCrd + valCrd
	if len(lines) < need {
		return nil, hdr, fmt.Errorf("hbio: file has %d lines, need %d", len(lines), need)
	}
	ptrBlock := lines[body : body+ptrCrd]
	indBlock := lines[body+ptrCrd : body+ptrCrd+indCrd]
	valBlock := lines[body+ptrCrd+indCrd : need]

	ptr, err := parseIntBlock(ptrBlock, ptrFmt, hdr.NCol+1)
	if err != nil {
		return nil, hdr, fmt.Errorf("hbio: pointer block: %w", err)
	}
	ind, err := parseIntBlock(indBlock, indFmt, hdr.NNZ)
	if err != nil {
		return nil, hdr, fmt.Errorf("hbio: index block: %w", err)
	}
	var vals []float64
	if valCrd > 0 {
		vals, err = parseFloatBlock(valBlock, valFmt, hdr.NNZ)
		if err != nil {
			return nil, hdr, fmt.Errorf("hbio: value block: %w", err)
		}
	}
	// Convert from 1-based CSC lower triangle. The HB convention stores
	// the lower triangle for symmetric types, matching sparse.Matrix.
	var rows, cols []int
	var tv []float64
	for j := 0; j < hdr.NCol; j++ {
		for p := ptr[j] - 1; p < ptr[j+1]-1; p++ {
			if p < 0 || p >= len(ind) {
				return nil, hdr, fmt.Errorf("hbio: pointer out of range at column %d", j)
			}
			rows = append(rows, ind[p]-1)
			cols = append(cols, j)
			if vals != nil {
				tv = append(tv, vals[p])
			}
		}
	}
	m, err := sparse.FromTriplets(hdr.NRow, rows, cols, tv)
	if err != nil {
		return nil, hdr, fmt.Errorf("hbio: %w", err)
	}
	return m, hdr, nil
}

func parseIntBlock(block []string, f format, want int) ([]int, error) {
	out := make([]int, 0, want)
	for _, line := range block {
		for pos := 0; pos+f.width <= len(line) || (pos < len(line) && len(out) < want); pos += f.width {
			end := pos + f.width
			if end > len(line) {
				end = len(line)
			}
			field := strings.TrimSpace(line[pos:end])
			if field == "" {
				continue
			}
			x, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("bad integer field %q: %w", field, err)
			}
			out = append(out, x)
			if len(out) == want {
				break
			}
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("parsed %d integers, want %d", len(out), want)
	}
	return out, nil
}

func parseFloatBlock(block []string, f format, want int) ([]float64, error) {
	out := make([]float64, 0, want)
	for _, line := range block {
		for pos := 0; pos < len(line) && len(out) < want; pos += f.width {
			end := pos + f.width
			if end > len(line) {
				end = len(line)
			}
			field := strings.TrimSpace(line[pos:end])
			if field == "" {
				continue
			}
			// Fortran D exponents are not understood by strconv.
			field = strings.ReplaceAll(strings.ReplaceAll(field, "D", "E"), "d", "e")
			x, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("bad float field %q: %w", field, err)
			}
			out = append(out, x)
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("parsed %d floats, want %d", len(out), want)
	}
	return out, nil
}
