package model

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

func analyzed(seed int64) *symbolic.Factor {
	m := gen.Random(35, 1.3, seed)
	pm, err := m.Permute(order.MMD(m))
	if err != nil {
		panic(err)
	}
	return symbolic.Analyze(pm)
}

func TestForEachUpdateCountMatchesFormula(t *testing.T) {
	f := func(seed int64) bool {
		fac := analyzed(seed)
		o := NewOps(fac)
		var count int64
		o.ForEachUpdate(func(Update) { count++ })
		return count == CountUpdates(fac)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatesAreValid(t *testing.T) {
	fac := analyzed(7)
	o := NewOps(fac)
	// For each update, verify the index algebra: Tgt=(i,j), SrcI=(i,k),
	// SrcJ=(j,k) with k < j <= i.
	colOf := make([]int, fac.NNZ())
	for j := 0; j < fac.N; j++ {
		for p := fac.ColPtr[j]; p < fac.ColPtr[j+1]; p++ {
			colOf[p] = j
		}
	}
	o.ForEachUpdate(func(u Update) {
		i := fac.RowInd[u.Tgt]
		j := colOf[u.Tgt]
		si, sk := fac.RowInd[u.SrcI], colOf[u.SrcI]
		sj, sk2 := fac.RowInd[u.SrcJ], colOf[u.SrcJ]
		if si != i || sj != j || sk != sk2 || sk >= j || j > i {
			t.Fatalf("bad update: tgt=(%d,%d) srcI=(%d,%d) srcJ=(%d,%d)", i, j, si, sk, sj, sk2)
		}
	})
}

func TestUpdateCountsDiagonal(t *testing.T) {
	// For the diagonal (j,j), the update count equals the number of
	// off-diagonal nonzeros in row j to the left of j.
	fac := analyzed(11)
	o := NewOps(fac)
	counts := o.UpdateCounts()
	for j := 0; j < fac.N; j++ {
		if got, want := counts[fac.ColPtr[j]], int32(len(o.RowCols(j))); got != want {
			t.Fatalf("diag count col %d = %d, want %d", j, got, want)
		}
	}
}

func TestElementWorkTotals(t *testing.T) {
	f := func(seed int64) bool {
		fac := analyzed(seed)
		o := NewOps(fac)
		ew := ElementWork(o)
		// Total = 2*U + nnz(L), the identity used to validate against the
		// paper's Table 5 P=1 work numbers.
		want := 2*CountUpdates(fac) + int64(fac.NNZ())
		if TotalWork(ew) != want {
			return false
		}
		cw := ColumnWork(fac, ew)
		var s int64
		for _, w := range cw {
			s += w
		}
		return s == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachScale(t *testing.T) {
	fac := analyzed(3)
	o := NewOps(fac)
	count := 0
	o.ForEachScale(func(tgt, diag int32) {
		if fac.RowInd[diag] > fac.RowInd[tgt] {
			t.Fatal("diag row exceeds target row")
		}
		count++
	})
	if count != fac.NNZ() {
		t.Fatalf("scale ops = %d, want nnz %d", count, fac.NNZ())
	}
}

func TestDenseWorkClosedForm(t *testing.T) {
	// For a dense matrix, work(i,j) = 2*(j) + 1 with 0-based j (j updates
	// from columns 0..j-1), so total = sum_j (n-j)*(2j+1).
	n := 10
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	sm, err := sparse.NewPattern(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOps(symbolic.Analyze(sm))
	ew := ElementWork(o)
	var want int64
	for j := 0; j < n; j++ {
		want += int64(n-j) * int64(2*j+1)
	}
	if got := TotalWork(ew); got != want {
		t.Fatalf("dense total work = %d, want %d", got, want)
	}
}

func BenchmarkForEachUpdateLap30(b *testing.B) {
	m := gen.Lap30()
	pm, _ := m.Permute(order.MMD(m))
	fac := symbolic.Analyze(pm)
	o := NewOps(fac)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		o.ForEachUpdate(func(u Update) { sink += int64(u.Tgt) })
	}
	_ = sink
}

func TestSolveElementWorkTotals(t *testing.T) {
	fac := analyzed(5)
	w := SolveElementWork(fac)
	var total int64
	for _, x := range w {
		total += x
	}
	// 2 per diagonal + 4 per off-diagonal, both sweeps combined.
	want := int64(2*fac.N) + 4*int64(fac.NNZ()-fac.N)
	if total != want {
		t.Fatalf("solve work total %d, want %d", total, want)
	}
}

func TestRowColsMatchColumnStructure(t *testing.T) {
	fac := analyzed(9)
	o := NewOps(fac)
	// (j in RowCols(r)) iff (r in Col(j) below diagonal).
	count := 0
	for r := 0; r < fac.N; r++ {
		for _, j := range o.RowCols(r) {
			if !fac.Has(r, int(j)) {
				t.Fatalf("RowCols(%d) lists %d but factor lacks the entry", r, j)
			}
			count++
		}
	}
	if count != fac.NNZ()-fac.N {
		t.Fatalf("row structure holds %d entries, want %d", count, fac.NNZ()-fac.N)
	}
}
