// Package model defines the computational model of sparse Cholesky
// factorization used throughout the reproduction: the enumeration of
// element-level update operations (Figure 1 of the paper) and the work
// model of Section 4.
//
// Work model, quoted from the paper: "The computation cost of updating an
// element of the matrix by a pair of off-diagonal elements is assumed to be
// two units; updating the element by the diagonal element is assumed to
// cost one unit."
//
// Concretely, for factor element (i, j) with i >= j:
//
//	work(i,j) = 2 * |{k < j : L[i,k] != 0 and L[j,k] != 0}| + 1
//
// where the +1 is the final update by the diagonal (the scale for
// off-diagonal elements, the square root for the diagonal itself).
package model

import "repro/internal/symbolic"

// Ops provides efficient enumeration of the element-level operations of a
// factorization over the symbolic structure f.
type Ops struct {
	F *symbolic.Factor
	// rowCols[r] lists the columns k < r with L[r,k] != 0, increasing.
	rowCols [][]int32
	// rowPos[r][t] is the factor nonzero position of (r, rowCols[r][t]).
	rowPos [][]int32
}

// NewOps prepares the operation enumerator for a factor structure.
func NewOps(f *symbolic.Factor) *Ops {
	n := f.N
	counts := make([]int, n)
	for j := 0; j < n; j++ {
		for _, i := range f.Col(j)[1:] {
			counts[i]++
		}
	}
	rows := make([][]int32, n)
	pos := make([][]int32, n)
	for i := range rows {
		rows[i] = make([]int32, 0, counts[i])
		pos[i] = make([]int32, 0, counts[i])
	}
	for j := 0; j < n; j++ {
		base := f.ColPtr[j]
		for t, i := range f.Col(j)[1:] {
			rows[i] = append(rows[i], int32(j))
			pos[i] = append(pos[i], int32(base+1+t))
		}
	}
	return &Ops{F: f, rowCols: rows, rowPos: pos}
}

// RowCols returns the columns k < r with L[r,k] != 0 (the factor's row
// structure), in increasing order. The slice aliases internal storage.
func (o *Ops) RowCols(r int) []int32 { return o.rowCols[r] }

// RowPositions returns, parallel to RowCols(r), the factor nonzero
// positions of row r's off-diagonal entries: RowPositions(r)[t] is the
// position of element (r, RowCols(r)[t]) in F.RowInd. The slice aliases
// internal storage.
func (o *Ops) RowPositions(r int) []int32 { return o.rowPos[r] }

// Update is one element-level operation L[tgt] -= L[srcI]*L[srcJ], where
// the fields are indices into the factor's nonzero array (positions in
// F.RowInd). For diagonal targets srcI == srcJ.
type Update struct {
	Tgt, SrcI, SrcJ int32
}

// ForEachUpdate calls fn for every pair-update operation of the
// factorization, in increasing source-column order. For target element
// (i, j) updated from column k, SrcI is the position of (i, k), SrcJ the
// position of (j, k), and Tgt the position of (i, j).
//
// Enumeration is column-driven over targets: for each target column j,
// every source column k in the row structure of j contributes updates to
// all elements (i, j) with i in struct(k), i >= j. The fill theorem
// guarantees every such (i, j) is present in the factor structure.
func (o *Ops) ForEachUpdate(fn func(u Update)) {
	f := o.F
	n := f.N
	// ptr[k] tracks the position of the current target column j within
	// column k; target columns visit k in increasing order, so the pointer
	// only advances.
	ptr := make([]int32, n)
	for j := 0; j < n; j++ {
		ptr[j] = int32(f.ColPtr[j]) // start at the diagonal
	}
	// pos scatters struct(j) into nonzero positions for the current j.
	pos := make([]int32, n)
	for j := 0; j < n; j++ {
		cj := f.Col(j)
		base := f.ColPtr[j]
		for t, i := range cj {
			pos[i] = int32(base + t)
		}
		for _, k := range o.rowCols[j] {
			// Advance column k's pointer to row j.
			p := ptr[k]
			end := int32(f.ColPtr[k+1])
			for p < end && f.RowInd[p] < j {
				p++
			}
			ptr[k] = p
			if p >= end || f.RowInd[p] != j {
				// Structure violation; cannot happen for a factor produced
				// by symbolic.Analyze.
				panic("model: row structure inconsistent with column structure")
			}
			srcJ := p
			for q := p; q < end; q++ {
				i := f.RowInd[q]
				fn(Update{Tgt: pos[i], SrcI: int32(q), SrcJ: srcJ})
			}
		}
	}
}

// ForEachScale calls fn for every final diagonal update: for each
// off-diagonal element (i, j), its scale by the diagonal (j, j); and for
// each diagonal element, its square root (diag position passed twice).
func (o *Ops) ForEachScale(fn func(tgt, diag int32)) {
	f := o.F
	for j := 0; j < f.N; j++ {
		base := int32(f.ColPtr[j])
		for q := base; q < int32(f.ColPtr[j+1]); q++ {
			fn(q, base)
		}
	}
}

// UpdateCounts returns, for every factor nonzero position, the number of
// pair updates it receives.
func (o *Ops) UpdateCounts() []int32 {
	counts := make([]int32, o.F.NNZ())
	o.ForEachUpdate(func(u Update) { counts[u.Tgt]++ })
	return counts
}

// ElementWork returns the work of every factor element under the paper's
// model: 2 units per pair update plus 1 unit for the diagonal update.
func ElementWork(o *Ops) []int64 {
	counts := o.UpdateCounts()
	w := make([]int64, len(counts))
	for p, c := range counts {
		w[p] = 2*int64(c) + 1
	}
	return w
}

// ColumnWork sums element work per column.
func ColumnWork(f *symbolic.Factor, elemWork []int64) []int64 {
	w := make([]int64, f.N)
	for j := 0; j < f.N; j++ {
		var s int64
		for p := f.ColPtr[j]; p < f.ColPtr[j+1]; p++ {
			s += elemWork[p]
		}
		w[j] = s
	}
	return w
}

// TotalWork sums all element work.
func TotalWork(elemWork []int64) int64 {
	var s int64
	for _, w := range elemWork {
		s += w
	}
	return s
}

// CountUpdates returns the total number of pair-update operations,
// sum over columns k of c_k*(c_k+1)/2 where c_k is the number of
// sub-diagonal nonzeros of column k. Used to cross-check enumeration.
func CountUpdates(f *symbolic.Factor) int64 {
	var u int64
	for k := 0; k < f.N; k++ {
		c := int64(f.ColLen(k) - 1)
		u += c * (c + 1) / 2
	}
	return u
}

// SolveElementWork returns the per-element work of the two triangular
// solves (Lu = b and Lᵀv = u, the paper's step 4). Under the same cost
// convention as the factorization model, every off-diagonal element
// performs one multiply-subtract in each sweep (2 units each, 4 total)
// and every diagonal element one division per sweep (1 unit each,
// 2 total). The paper's Section 5 points out that scheduling the solves
// adds flexibility for load balancing; this model makes that measurable.
func SolveElementWork(f *symbolic.Factor) []int64 {
	w := make([]int64, f.NNZ())
	for j := 0; j < f.N; j++ {
		base := f.ColPtr[j]
		w[base] = 2
		for q := base + 1; q < f.ColPtr[j+1]; q++ {
			w[q] = 4
		}
	}
	return w
}
