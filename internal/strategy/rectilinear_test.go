package strategy

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sparse"
)

// tileMax evaluates a symmetric cut structure: the maximum work over the
// lower-triangle tiles induced by sharing bounds between rows and
// columns — the objective RectilinearCuts minimizes.
func tileMax(ops *model.Ops, elemWork []int64, bounds []int) int64 {
	f := ops.F
	n := f.N
	iv := make([]int32, n)
	for k := 0; k+1 < len(bounds); k++ {
		for j := bounds[k]; j < bounds[k+1]; j++ {
			iv[j] = int32(k)
		}
	}
	p := len(bounds) - 1
	tiles := make([]int64, p*p)
	for x := 0; x < n; x++ {
		tiles[int(iv[x])*p+int(iv[x])] += elemWork[f.ColPtr[x]]
		pos := ops.RowPositions(x)
		for i, k := range ops.RowCols(x) {
			tiles[int(iv[x])*p+int(iv[k])] += elemWork[pos[i]]
		}
	}
	var m int64
	for _, v := range tiles {
		if v > m {
			m = v
		}
	}
	return m
}

// TestRectilinearCutsBruteForce compares the probe-refined cuts against
// exhaustive enumeration of every symmetric cut structure on small
// matrices (n <= 12): the probe may not beat the optimum (sanity), and
// on this fixed instance set it attains it exactly, which the test pins.
func TestRectilinearCutsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	matrices := []*sparse.Matrix{
		gen.Grid5(3, 3),
		gen.Grid5(3, 4),
		gen.Grid9(3, 3),
		gen.FEGrid5(2),
	}
	for trial := 0; trial < 20; trial++ {
		matrices = append(matrices, randomPattern(t, rng, 4+rng.Intn(9)))
	}
	for mi, m := range matrices {
		sys := newTestSys(t, m)
		n := sys.F.N
		for _, p := range []int{2, 3, 4} {
			bounds := RectilinearCuts(sys.Ops, sys.ElemWork, p)
			if len(bounds) != p+1 || bounds[0] != 0 || bounds[p] != n {
				t.Fatalf("matrix %d P=%d: malformed bounds %v", mi, p, bounds)
			}
			for k := 0; k < p; k++ {
				if bounds[k] > bounds[k+1] {
					t.Fatalf("matrix %d P=%d: non-monotone bounds %v", mi, p, bounds)
				}
			}
			got := tileMax(sys.Ops, sys.ElemWork, bounds)
			best := int64(-1)
			forEachSplit(n, p, func(b []int) {
				if tm := tileMax(sys.Ops, sys.ElemWork, b); best < 0 || tm < best {
					best = tm
				}
			})
			if got < best {
				t.Fatalf("matrix %d P=%d: probe tile max %d beats exhaustive optimum %d",
					mi, p, got, best)
			}
			if got != best {
				t.Errorf("matrix %d P=%d: probe tile max %d, exhaustive optimum %d",
					mi, p, got, best)
			}
		}
	}
}

// TestRectilinearLocalityLAP30: sharing the diagonal block structure
// keeps communication contiguous-like, far below wrap's scatter — the
// property the strategy exists for. Also pins that the symmetric cuts
// never leave the work balance unboundedly worse than wrap's near-
// perfect one (imbalance stays finite and the schedule well formed via
// the shared invariant tests).
func TestRectilinearLocalityLAP30(t *testing.T) {
	sys := newTestSys(t, gen.Lap30())
	for _, p := range []int{16, 32} {
		rect, err := Map("rectilinear", sys, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wrap, err := Map("wrap", sys, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rt, wt := Traffic(sys, Options{}, rect).Total, Traffic(sys, Options{}, wrap).Total
		if rt >= wt {
			t.Errorf("P=%d: rectilinear traffic %d >= wrap %d, want the symmetric blocks to cut it",
				p, rt, wt)
		}
	}
}

// TestSplitHelperContract locks the processor-count contract of the
// exported split helpers: all of them panic on p < 1 (mustProcs), while
// the registered mappers return an error (checkProcs) — tested for the
// whole registry by TestInvalidProcs.
func TestSplitHelperContract(t *testing.T) {
	sys := newTestSys(t, gen.Grid5(4, 4))
	work := sys.ColumnWork()
	mustPanicProcs := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s with p=0 did not panic", name)
			}
		}()
		fn()
	}
	mustPanicProcs("ContiguousSplit", func() { ContiguousSplit(work, 0) })
	mustPanicProcs("OptimalBottleneck", func() { OptimalBottleneck(work, 0) })
	mustPanicProcs("ContiguousSplitTotal", func() { ContiguousSplitTotal(work, nil, 0, 1, 0) })
	mustPanicProcs("RectilinearCuts", func() { RectilinearCuts(sys.Ops, sys.ElemWork, 0) })
	mustPanicProcs("SubcubeOwners", func() { SubcubeOwners(sys.F.Parent, work, 0) })
}
