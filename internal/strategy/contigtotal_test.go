package strategy

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
	"repro/internal/traffic"
)

// forEachSplit enumerates every contiguous partition of n items into
// exactly p (possibly empty) blocks, invoking fn with the boundary
// vector (length p+1, bounds[0] = 0, bounds[p] = n). The slice is reused
// across calls.
func forEachSplit(n, p int, fn func(bounds []int)) {
	bounds := make([]int, p+1)
	bounds[p] = n
	var rec func(k int)
	rec = func(k int) {
		if k == p {
			if bounds[p-1] <= n {
				fn(bounds)
			}
			return
		}
		for b := bounds[k-1]; b <= n; b++ {
			bounds[k] = b
			rec(k + 1)
		}
	}
	rec(1)
}

func splitMaxWork(work []int64, bounds []int) int64 {
	var m int64
	for k := 0; k+1 < len(bounds); k++ {
		var s int64
		for j := bounds[k]; j < bounds[k+1]; j++ {
			s += work[j]
		}
		if s > m {
			m = s
		}
	}
	return m
}

// randomPattern builds a random sparse symmetric pattern on n vertices:
// a spanning path (so MMD sees one component) plus extra random edges.
func randomPattern(t *testing.T, rng *rand.Rand, n int) *sparse.Matrix {
	t.Helper()
	var edges [][2]int
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v - 1, v})
	}
	for e := 0; e < n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	m, err := sparse.NewPattern(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	m.SetLaplacianValues(0.01)
	return m
}

// TestContigTotalBruteForce verifies the DP against exhaustive
// enumeration on small matrices (n <= 12): among all contiguous splits
// whose bottleneck stays within the optimal bottleneck B*, the mapper's
// schedule must attain the minimal simulated total traffic — and its own
// DP objective must agree with the traffic simulator on that schedule.
func TestContigTotalBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	matrices := []*sparse.Matrix{
		gen.Grid5(3, 3),
		gen.Grid5(3, 4),
		gen.FEGrid5(2),
	}
	for trial := 0; trial < 12; trial++ {
		matrices = append(matrices, randomPattern(t, rng, 4+rng.Intn(9))) // n in [4, 12]
	}
	for mi, m := range matrices {
		sys := newTestSys(t, m)
		n := sys.F.N
		if n > 12 {
			t.Fatalf("matrix %d: n = %d, want <= 12 for brute force", mi, n)
		}
		work := sys.ColumnWork()
		for _, p := range []int{1, 2, 3, 4} {
			bstar := OptimalBottleneck(work, p)
			best := int64(-1)
			forEachSplit(n, p, func(bounds []int) {
				if splitMaxWork(work, bounds) > bstar {
					return
				}
				sc := columnSchedule(sys, p, ownersFromBounds(n, bounds))
				if tr := Traffic(sys, Options{}, sc).Total; best < 0 || tr < best {
					best = tr
				}
			})
			sc, err := Map("contigtotal", sys, p, Options{})
			if err != nil {
				t.Fatalf("matrix %d P=%d: %v", mi, p, err)
			}
			got := Traffic(sys, Options{}, sc).Total
			if got != best {
				t.Errorf("matrix %d P=%d: contigtotal traffic %d, exhaustive optimum %d",
					mi, p, got, best)
			}
			if mw := sc.MaxWork(); mw > bstar {
				t.Errorf("matrix %d P=%d: contigtotal bottleneck %d exceeds B* %d", mi, p, mw, bstar)
			}
			// The DP's internal objective must equal the simulator's total
			// on the split it returns (oracle consistency).
			refs := traffic.ColumnRefs(sys.Ops)
			bounds := ContiguousSplitTotal(work, refs, p, bstar)
			sc2 := columnSchedule(sys, p, ownersFromBounds(n, bounds))
			if tr := Traffic(sys, Options{}, sc2).Total; tr != got {
				t.Errorf("matrix %d P=%d: helper split traffic %d, mapper traffic %d", mi, p, tr, got)
			}
		}
	}
}

// TestContigTotalLAP30Regression pins the headline property on the
// paper's LAP30 problem: at every P the total-traffic-optimal split
// communicates no more than the bottleneck-optimal one (it minimizes
// over a feasible set containing it), while keeping the same optimal
// bottleneck.
func TestContigTotalLAP30Regression(t *testing.T) {
	sys := newTestSys(t, gen.Lap30())
	work := sys.ColumnWork()
	for _, p := range []int{4, 16, 64} {
		cont, err := Map("contiguous", sys, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tot, err := Map("contigtotal", sys, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ct, tt := Traffic(sys, Options{}, cont).Total, Traffic(sys, Options{}, tot).Total
		if tt > ct {
			t.Errorf("P=%d: contigtotal traffic %d > contiguous %d", p, tt, ct)
		}
		bstar := OptimalBottleneck(work, p)
		if mw := tot.MaxWork(); mw > bstar {
			t.Errorf("P=%d: contigtotal bottleneck %d exceeds B* %d", p, mw, bstar)
		}
	}
}

// TestContigTotalSlackMonotone: widening the work-slack bound enlarges
// the DP's feasible set, so the achieved traffic never increases.
func TestContigTotalSlackMonotone(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(8, 8))
	const p = 8
	prev := int64(-1)
	for _, slack := range []float64{0, 0.1, 0.25, 0.5} {
		sc, err := Map("contigtotal", sys, p, Options{Slack: slack})
		if err != nil {
			t.Fatal(err)
		}
		tr := Traffic(sys, Options{}, sc).Total
		if prev >= 0 && tr > prev {
			t.Errorf("slack %g: traffic %d > traffic at smaller slack %d", slack, tr, prev)
		}
		prev = tr
	}
}

// TestContiguousSplitTotalInfeasible: a work bound below the heaviest
// single column makes covering impossible; the helper reports that with
// a nil result instead of a malformed split.
func TestContiguousSplitTotalInfeasible(t *testing.T) {
	sys := newTestSys(t, gen.Grid5(3, 3))
	work := sys.ColumnWork()
	refs := traffic.ColumnRefs(sys.Ops)
	var maxCol int64
	for _, w := range work {
		if w > maxCol {
			maxCol = w
		}
	}
	if bounds := ContiguousSplitTotal(work, refs, 3, maxCol-1); bounds != nil {
		t.Errorf("infeasible bound returned %v, want nil", bounds)
	}
}
