package strategy

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/traffic"
)

// forEachSplit enumerates every contiguous partition of n items into
// exactly p (possibly empty) blocks, invoking fn with the boundary
// vector (length p+1, bounds[0] = 0, bounds[p] = n). The slice is reused
// across calls.
func forEachSplit(n, p int, fn func(bounds []int)) {
	bounds := make([]int, p+1)
	bounds[p] = n
	var rec func(k int)
	rec = func(k int) {
		if k == p {
			if bounds[p-1] <= n {
				fn(bounds)
			}
			return
		}
		for b := bounds[k-1]; b <= n; b++ {
			bounds[k] = b
			rec(k + 1)
		}
	}
	rec(1)
}

func splitMaxWork(work []int64, bounds []int) int64 {
	var m int64
	for k := 0; k+1 < len(bounds); k++ {
		var s int64
		for j := bounds[k]; j < bounds[k+1]; j++ {
			s += work[j]
		}
		if s > m {
			m = s
		}
	}
	return m
}

// randomPattern builds a random sparse symmetric pattern on n vertices:
// a spanning path (so MMD sees one component) plus extra random edges.
func randomPattern(t *testing.T, rng *rand.Rand, n int) *sparse.Matrix {
	t.Helper()
	var edges [][2]int
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v - 1, v})
	}
	for e := 0; e < n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	m, err := sparse.NewPattern(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	m.SetLaplacianValues(0.01)
	return m
}

// TestContigTotalBruteForce verifies the DP against exhaustive
// enumeration on small matrices (n <= 12): among all contiguous splits
// whose bottleneck stays within the optimal bottleneck B*, the mapper's
// schedule must attain the minimal simulated total traffic — and its own
// DP objective must agree with the traffic simulator on that schedule.
func TestContigTotalBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	matrices := []*sparse.Matrix{
		gen.Grid5(3, 3),
		gen.Grid5(3, 4),
		gen.FEGrid5(2),
	}
	for trial := 0; trial < 12; trial++ {
		matrices = append(matrices, randomPattern(t, rng, 4+rng.Intn(9))) // n in [4, 12]
	}
	for mi, m := range matrices {
		sys := newTestSys(t, m)
		n := sys.F.N
		if n > 12 {
			t.Fatalf("matrix %d: n = %d, want <= 12 for brute force", mi, n)
		}
		work := sys.ColumnWork()
		for _, p := range []int{1, 2, 3, 4} {
			bstar := OptimalBottleneck(work, p)
			best := int64(-1)
			forEachSplit(n, p, func(bounds []int) {
				if splitMaxWork(work, bounds) > bstar {
					return
				}
				sc := columnSchedule(sys, p, ownersFromBounds(n, bounds))
				if tr := Traffic(sys, Options{}, sc).Total; best < 0 || tr < best {
					best = tr
				}
			})
			sc, err := Map("contigtotal", sys, p, Options{})
			if err != nil {
				t.Fatalf("matrix %d P=%d: %v", mi, p, err)
			}
			got := Traffic(sys, Options{}, sc).Total
			if got != best {
				t.Errorf("matrix %d P=%d: contigtotal traffic %d, exhaustive optimum %d",
					mi, p, got, best)
			}
			if mw := sc.MaxWork(); mw > bstar {
				t.Errorf("matrix %d P=%d: contigtotal bottleneck %d exceeds B* %d", mi, p, mw, bstar)
			}
			// The DP's internal objective must equal the simulator's total
			// on the split it returns (oracle consistency).
			refs := traffic.ColumnRefs(sys.Ops)
			bounds := ContiguousSplitTotal(work, refs, p, bstar, 0)
			sc2 := columnSchedule(sys, p, ownersFromBounds(n, bounds))
			if tr := Traffic(sys, Options{}, sc2).Total; tr != got {
				t.Errorf("matrix %d P=%d: helper split traffic %d, mapper traffic %d", mi, p, tr, got)
			}
		}
	}
}

// TestContigTotalLAP30Regression pins the headline property on the
// paper's LAP30 problem: at every P the total-traffic-optimal split
// communicates no more than the bottleneck-optimal one (it minimizes
// over a feasible set containing it), while keeping the same optimal
// bottleneck.
func TestContigTotalLAP30Regression(t *testing.T) {
	sys := newTestSys(t, gen.Lap30())
	work := sys.ColumnWork()
	for _, p := range []int{4, 16, 64} {
		cont, err := Map("contiguous", sys, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tot, err := Map("contigtotal", sys, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ct, tt := Traffic(sys, Options{}, cont).Total, Traffic(sys, Options{}, tot).Total
		if tt > ct {
			t.Errorf("P=%d: contigtotal traffic %d > contiguous %d", p, tt, ct)
		}
		bstar := OptimalBottleneck(work, p)
		if mw := tot.MaxWork(); mw > bstar {
			t.Errorf("P=%d: contigtotal bottleneck %d exceeds B* %d", p, mw, bstar)
		}
	}
}

// TestContigTotalSlackMonotone: widening the work-slack bound enlarges
// the DP's feasible set, so the achieved traffic never increases.
func TestContigTotalSlackMonotone(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(8, 8))
	const p = 8
	prev := int64(-1)
	for _, slack := range []float64{0, 0.1, 0.25, 0.5} {
		sc, err := Map("contigtotal", sys, p, Options{Slack: slack})
		if err != nil {
			t.Fatal(err)
		}
		tr := Traffic(sys, Options{}, sc).Total
		if prev >= 0 && tr > prev {
			t.Errorf("slack %g: traffic %d > traffic at smaller slack %d", slack, tr, prev)
		}
		prev = tr
	}
}

// splitMessages counts the total per-cut messages of a contiguous split:
// for every block, the number of distinct source columns left of its cut
// that some column of the block references — exactly the message term the
// Beta2-weighted DP objective charges.
func splitMessages(refs [][]traffic.ColRef, bounds []int) int64 {
	var msgs int64
	for k := 0; k+1 < len(bounds); k++ {
		lo, hi := bounds[k], bounds[k+1]
		seen := make(map[int32]bool)
		for j := lo; j < hi; j++ {
			for _, r := range refs[j] {
				if int(r.Col) < lo && !seen[r.Col] {
					seen[r.Col] = true
					msgs++
				}
			}
		}
	}
	return msgs
}

// TestContigTotalBeta2Monotonic pins the Beta2 knob's defining property
// on LAP30: raising the message weight never increases the optimal
// split's message count (and with Beta2 = 0 the split is the pure-volume
// optimum, so its volume is minimal). This is the scalarization exchange
// argument — for optima at weights b2 > b1, adding the two optimality
// inequalities forces msgs(b2) <= msgs(b1) — made executable.
func TestContigTotalBeta2Monotonic(t *testing.T) {
	sys := newTestSys(t, gen.Lap30())
	work := sys.ColumnWork()
	refs := traffic.ColumnRefs(sys.Ops)
	const p = 8
	// Work slack widens the feasible set so the DP has real
	// volume/message trades to make (at tight slack the message floor of
	// the feasible set is already reached by the pure-volume optimum).
	bound := OptimalBottleneck(work, p)
	bound += int64(1.0 * float64(bound))
	prevMsgs := int64(-1)
	baseVol := int64(-1)
	for _, beta2 := range []float64{0, 0.5, 2, 10, 100, 1000} {
		bounds := ContiguousSplitTotal(work, refs, p, bound, beta2)
		if bounds == nil {
			t.Fatalf("beta2=%g: no feasible split", beta2)
		}
		sc := columnSchedule(sys, p, ownersFromBounds(sys.F.N, bounds))
		vol := Traffic(sys, Options{}, sc).Total
		msgs := splitMessages(refs, bounds)
		if prevMsgs >= 0 && msgs > prevMsgs {
			t.Errorf("beta2=%g: %d messages > %d at smaller beta2", beta2, msgs, prevMsgs)
		}
		if baseVol < 0 {
			baseVol = vol
		} else if vol < baseVol {
			t.Errorf("beta2=%g: volume %d below the pure-volume optimum %d", beta2, vol, baseVol)
		}
		prevMsgs = msgs
	}
	// The knob must reach a strictly smaller message count somewhere on
	// LAP30, otherwise the test pins nothing.
	b0 := ContiguousSplitTotal(work, refs, p, bound, 0)
	bN := ContiguousSplitTotal(work, refs, p, bound, 1000)
	if m0, mN := splitMessages(refs, b0), splitMessages(refs, bN); mN >= m0 {
		t.Errorf("beta2=1000 did not reduce messages on LAP30: %d vs %d at beta2=0", mN, m0)
	}
}

// TestContigTotalBeta2Mapper covers the Options plumbing: the mapper's
// schedule under a large Beta2 matches the helper's split, and negative
// values select zero (the documented default).
func TestContigTotalBeta2Mapper(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(8, 8))
	const p = 8
	neg, err := Map("contigtotal", sys, p, Options{Beta2: -3})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Map("contigtotal", sys, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for q := range zero.ElemProc {
		if neg.ElemProc[q] != zero.ElemProc[q] {
			t.Fatalf("negative Beta2 changed the schedule at element %d", q)
		}
	}
	refs := traffic.ColumnRefs(sys.Ops)
	high, err := Map("contigtotal", sys, p, Options{Slack: 0.25, Beta2: 500})
	if err != nil {
		t.Fatal(err)
	}
	low, err := Map("contigtotal", sys, p, Options{Slack: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	boundsOf := func(sc *sched.Schedule) []int {
		own := columnOwners(sys.F, sc)
		bounds := []int{0}
		for j := 1; j < sys.F.N; j++ {
			if own[j] != own[j-1] {
				bounds = append(bounds, j)
			}
		}
		return append(bounds, sys.F.N)
	}
	if hm, lm := splitMessages(refs, boundsOf(high)), splitMessages(refs, boundsOf(low)); hm > lm {
		t.Errorf("mapper with Beta2=500 has %d messages > %d at Beta2=0", hm, lm)
	}
}

// TestContiguousSplitTotalInfeasible: a work bound below the heaviest
// single column makes covering impossible; the helper reports that with
// a nil result instead of a malformed split.
func TestContiguousSplitTotalInfeasible(t *testing.T) {
	sys := newTestSys(t, gen.Grid5(3, 3))
	work := sys.ColumnWork()
	refs := traffic.ColumnRefs(sys.Ops)
	var maxCol int64
	for _, w := range work {
		if w > maxCol {
			maxCol = w
		}
	}
	if bounds := ContiguousSplitTotal(work, refs, 3, maxCol-1, 0); bounds != nil {
		t.Errorf("infeasible bound returned %v, want nil", bounds)
	}
}
