package strategy

import (
	"repro/internal/sched"
)

// blockMapper adapts the paper's Section 3.4 unit-block allocator.
type blockMapper struct{}

func (blockMapper) Name() string { return "block" }

func (blockMapper) Map(sys *Sys, p int, opts Options) (*sched.Schedule, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	return sched.BlockMap(sys.Partition(opts.Part), p), nil
}

// blockGreedyMapper adapts the work-aware Section 3.4 variant.
type blockGreedyMapper struct{}

func (blockGreedyMapper) Name() string { return "blockgreedy" }

func (blockGreedyMapper) Map(sys *Sys, p int, opts Options) (*sched.Schedule, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	return sched.BlockMapGreedy(sys.Partition(opts.Part), p), nil
}

// wrapMapper adapts the classical wrap (cyclic) column mapping.
type wrapMapper struct{}

func (wrapMapper) Name() string { return "wrap" }

func (wrapMapper) Map(sys *Sys, p int, opts Options) (*sched.Schedule, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	return sched.WrapMap(sys.F, sys.ElemWork, p), nil
}

func init() {
	Register(blockMapper{})
	Register(blockGreedyMapper{})
	Register(wrapMapper{})
}
