package strategy

// Probe regression harness: tracing is strictly opt-in, so every probe
// entry point must be bit-identical to its untraced counterpart — with a
// nil probe (the zero-overhead path) and with a Tracer attached (probes
// observe, they cannot perturb). The event stream itself must satisfy the
// documented invariants: one event per task, duration == work + comm,
// Stall > 0 exactly when a Cause predecessor is recorded, and the totals
// reconciling with the SimResult.

import (
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// probeFixtures is the bit-identity fixture set: the comm harness
// matrices (generated grid + HB round-trip) plus the paper's LAP30.
func probeFixtures(t testing.TB) map[string]*sparse.Matrix {
	fx := commFixtures(t)
	fx["lap30"] = gen.Lap30()
	return fx
}

// checkProbeIdentity runs one simulator three ways — untraced, nil probe,
// Tracer attached — and demands all three SimResults are equal, then
// validates the collected event stream.
func checkProbeIdentity(t *testing.T, label string, p, ntasks int,
	plain func() exec.SimResult, probed func(exec.Probe) exec.SimResult) {
	t.Helper()
	want := plain()
	if got := probed(nil); got != want {
		t.Errorf("%s: nil probe %+v != untraced %+v", label, got, want)
	}
	tr := obs.NewTracer()
	if got := probed(tr); got != want {
		t.Errorf("%s: traced %+v != untraced %+v", label, got, want)
	}
	checkEvents(t, label, tr.Events, want, ntasks, p)
}

// checkEvents validates a complete event stream against its SimResult.
func checkEvents(t *testing.T, label string, events []exec.TaskEvent, res exec.SimResult, ntasks, p int) {
	t.Helper()
	if len(events) != ntasks {
		t.Errorf("%s: %d events for %d tasks", label, len(events), ntasks)
		return
	}
	seen := make(map[int32]bool, len(events))
	var work, comm, maxFinish int64
	for _, ev := range events {
		if seen[ev.Task] {
			t.Fatalf("%s: duplicate event for task %d", label, ev.Task)
		}
		seen[ev.Task] = true
		if ev.Proc < 0 || int(ev.Proc) >= p {
			t.Fatalf("%s: task %d on processor %d of %d", label, ev.Task, ev.Proc, p)
		}
		if ev.Finish-ev.Start != ev.Work+ev.Comm {
			t.Fatalf("%s: task %d duration %d != work %d + comm %d",
				label, ev.Task, ev.Finish-ev.Start, ev.Work, ev.Comm)
		}
		if ev.Start-ev.Stall < 0 {
			t.Fatalf("%s: task %d stall %d reaches before t=0 (start %d)", label, ev.Task, ev.Stall, ev.Start)
		}
		if (ev.Stall > 0) != (ev.Cause >= 0) {
			t.Fatalf("%s: task %d stall %d with cause %d (want stall>0 iff cause>=0)",
				label, ev.Task, ev.Stall, ev.Cause)
		}
		work += ev.Work
		comm += ev.Comm
		if ev.Finish > maxFinish {
			maxFinish = ev.Finish
		}
	}
	if comm != res.Comm {
		t.Errorf("%s: event comm sums to %d, SimResult.Comm %d", label, comm, res.Comm)
	}
	if work+comm != res.TotalWork {
		t.Errorf("%s: event work+comm sums to %d, SimResult.TotalWork %d", label, work+comm, res.TotalWork)
	}
	if ntasks > 0 && maxFinish != res.Makespan {
		t.Errorf("%s: latest event finish %d, SimResult.Makespan %d", label, maxFinish, res.Makespan)
	}
}

// TestProbeBitIdentity: for every registered strategy on the LAP30 and HB
// fixtures at P in {1, 4, 16}, all four makespan simulators return
// bit-identical SimResults untraced, with a nil probe, and with a Tracer
// attached — and the traced event stream reconciles with the result.
func TestProbeBitIdentity(t *testing.T) {
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	for mname, m := range probeFixtures(t) {
		sys := newTestSys(t, m)
		for _, name := range Names() {
			for _, p := range []int{1, 4, 16} {
				sc, err := Map(name, sys, p, Options{})
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", name, mname, p, err)
				}
				ntasks := len(Tasks(sys, Options{}, sc))
				label := fmt.Sprintf("%s/%s P=%d", name, mname, p)
				checkProbeIdentity(t, label+" static", p, ntasks,
					func() exec.SimResult { return Makespan(sys, Options{}, sc) },
					func(pr exec.Probe) exec.SimResult { return MakespanProbe(sys, Options{}, sc, pr) })
				checkProbeIdentity(t, label+" dynamic", p, ntasks,
					func() exec.SimResult { return MakespanDynamic(sys, Options{}, sc) },
					func(pr exec.Probe) exec.SimResult { return MakespanDynamicProbe(sys, Options{}, sc, pr) })
				checkProbeIdentity(t, label+" comm", p, ntasks,
					func() exec.SimResult { return MakespanComm(sys, Options{}, sc, cm) },
					func(pr exec.Probe) exec.SimResult { return MakespanCommProbe(sys, Options{}, sc, cm, pr) })
				checkProbeIdentity(t, label+" commdynamic", p, ntasks,
					func() exec.SimResult { return MakespanCommDynamic(sys, Options{}, sc, cm) },
					func(pr exec.Probe) exec.SimResult { return MakespanCommDynamicProbe(sys, Options{}, sc, cm, pr) })
			}
		}
	}
}

// TestTracerReset: a reused Tracer with Reset between runs collects only
// the second run's events.
func TestTracerReset(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(6, 6))
	sc, err := Map("wrap", sys, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	MakespanProbe(sys, Options{}, sc, tr)
	first := len(tr.Events)
	tr.Reset()
	if len(tr.Events) != 0 {
		t.Fatalf("Reset left %d events", len(tr.Events))
	}
	MakespanProbe(sys, Options{}, sc, tr)
	if len(tr.Events) != first {
		t.Errorf("second run collected %d events, first %d", len(tr.Events), first)
	}
}
