package strategy

import (
	"sort"

	"repro/internal/sched"
	"repro/internal/symbolic"
)

// subcubeMapper implements subtree-to-subcube allocation over the
// elimination tree (George/Liu/Ng's scheme, generalized to arbitrary
// processor counts by Pothen & Sun's proportional mapping): the whole
// processor set starts at the top of the tree, the shared top separator
// columns are wrap-mapped across all of its owners, and at every
// branching the set splits over the sibling subtrees proportionally to
// their subtree work. Once a subtree's set is a single processor, the
// entire subtree is local to it. Under a nested-dissection (or any
// fill-reducing) ordering this is the mapping the paper credits for the
// block scheme's locality at scale: independent subtrees never share
// owners, so their factorization communicates nothing.
type subcubeMapper struct{}

func (subcubeMapper) Name() string { return "subcube" }

func (subcubeMapper) Map(sys *Sys, p int, opts Options) (*sched.Schedule, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	owner := SubcubeOwners(sys.F.Parent, sys.ColumnWork(), p)
	return columnSchedule(sys, p, owner), nil
}

func init() { Register(subcubeMapper{}) }

// SubcubeOwners computes the subtree-to-subcube column-to-processor
// assignment for an elimination forest (Parent convention of
// symbolic.EliminationTree) with per-column work weights. Every column
// gets an owner in [0, p); with p greater than the number of columns the
// surplus processors are simply left idle, which keeps the schedule well
// formed at any scale. It panics on p < 1, the shared contract of the
// exported split helpers (see mustProcs).
func SubcubeOwners(parent []int, colWork []int64, p int) []int32 {
	mustProcs(p)
	children := symbolic.Children(parent)
	sub := symbolic.SubtreeSums(parent, colWork)
	owner := make([]int32, len(parent))

	// assignAll gives every column of the subtrees rooted at nodes to one
	// processor (the single-owner base case), iteratively to keep the
	// stack flat on chain-shaped trees.
	assignAll := func(nodes []int, proc int32) {
		stack := append([]int(nil), nodes...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			owner[v] = proc
			stack = append(stack, children[v]...)
		}
	}

	// assign maps the sibling subtrees rooted at nodes onto processors
	// [lo, hi).
	var assign func(nodes []int, lo, hi int)
	assign = func(nodes []int, lo, hi int) {
		if len(nodes) == 0 {
			return
		}
		if hi-lo == 1 {
			assignAll(nodes, int32(lo))
			return
		}
		// Peel the shared top separator: while the forest is a single
		// chain, its columns belong to every processor of the set; wrap
		// them across [lo, hi).
		wrapped := 0
		for len(nodes) == 1 {
			owner[nodes[0]] = int32(lo + wrapped%(hi-lo))
			wrapped++
			nodes = children[nodes[0]]
		}
		if len(nodes) == 0 {
			return
		}
		// A branching with at least two sibling subtrees and at least two
		// processors: split the set proportionally to subtree work.
		if hi-lo >= len(nodes) {
			splitProportional(nodes, sub, lo, hi, assign)
			return
		}
		// Fewer processors than subtrees: pack whole subtrees onto the
		// least-loaded processor of the set, heaviest first.
		packGreedy(nodes, sub, lo, hi, assignAll)
	}
	assign(symbolic.Roots(parent), 0, p)
	return owner
}

// splitProportional hands each of the k sibling subtrees a contiguous
// slice of [lo, hi), at least one processor each, with the surplus
// distributed by largest remainder of the subtrees' work shares (ties to
// the lower node index, keeping the split deterministic).
func splitProportional(nodes []int, sub []int64, lo, hi int, assign func(nodes []int, lo, hi int)) {
	k := len(nodes)
	extra := (hi - lo) - k
	var totW int64
	for _, v := range nodes {
		totW += sub[v]
	}
	counts := make([]int, k)
	rem := make([]int64, k)
	given := 0
	for i, v := range nodes {
		w := sub[v]
		if totW == 0 {
			w = 1 // degenerate zero-work forest: split evenly
		}
		div := totW
		if div == 0 {
			div = int64(k)
		}
		share := int64(extra) * w
		counts[i] = 1 + int(share/div)
		rem[i] = share % div
		given += counts[i] - 1
	}
	for given < extra {
		best := 0
		for i := 1; i < k; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		given++
	}
	at := lo
	for i, v := range nodes {
		assign([]int{v}, at, at+counts[i])
		at += counts[i]
	}
}

// packGreedy assigns each whole subtree to the currently least-loaded
// processor of [lo, hi), visiting subtrees in decreasing work order (the
// classical LPT rule), for the case where subtrees outnumber processors.
func packGreedy(nodes []int, sub []int64, lo, hi int, assignAll func(nodes []int, proc int32)) {
	order := append([]int(nil), nodes...)
	sort.Slice(order, func(a, b int) bool {
		if sub[order[a]] != sub[order[b]] {
			return sub[order[a]] > sub[order[b]]
		}
		return order[a] < order[b]
	})
	load := make([]int64, hi-lo)
	for _, v := range order {
		best := leastLoaded(load)
		load[best] += sub[v]
		assignAll([]int{v}, int32(lo+best))
	}
}
