package strategy

import (
	"repro/internal/sched"
)

// contiguousMapper assigns work-balanced contiguous column blocks:
// processor k owns the k-th block of consecutive columns, with the block
// boundaries chosen to minimize the bottleneck (the maximum per-block
// work). Contiguous partitions preserve the elimination-tree locality of
// a fill-reducing ordering — a column's row structure points mostly at
// nearby columns — so they trade the wrap mapping's perfect balance for
// far less communication without the paper's partitioning machinery.
type contiguousMapper struct{}

func (contiguousMapper) Name() string { return "contiguous" }

func (contiguousMapper) Map(sys *Sys, p int, opts Options) (*sched.Schedule, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	bounds := ContiguousSplit(sys.ColumnWork(), p)
	return columnSchedule(sys, p, ownersFromBounds(sys.F.N, bounds)), nil
}

// ContiguousSplit partitions items 0..n-1 into p contiguous blocks
// minimizing the bottleneck (the maximum block work sum), returning the
// block boundaries (length p+1, bounds[k] <= bounds[k+1], bounds[0] = 0,
// bounds[p] = n; trailing blocks may be empty when p > n). It panics on
// p < 1, the shared contract of the exported split helpers (see
// mustProcs); the mappers validate p and return an error instead.
//
// The optimal bottleneck B* is found by binary search over candidate
// bottleneck values, each probed with a greedy feasibility scan over the
// prefix work sums (can the items be covered by at most p blocks of sum
// <= B?) — the near-linear-time probe scheme of Ahrens (2020), shared
// with OptimalBottleneck. The returned split is the greedy left-packed
// partition at B*, which attains the optimum exactly.
func ContiguousSplit(work []int64, p int) []int {
	mustProcs(p)
	n := len(work)
	bounds := make([]int, p+1)
	bounds[p] = n
	if n == 0 {
		return bounds
	}
	b := OptimalBottleneck(work, p)
	// Greedy left-packing at the optimal bottleneck b.
	k, cur := 0, int64(0)
	for j, w := range work {
		if cur+w > b && k+1 < p {
			k++
			bounds[k] = j
			cur = 0
		}
		cur += w
	}
	for k++; k < p; k++ {
		bounds[k] = n
	}
	return bounds
}

func init() { Register(contiguousMapper{}) }
