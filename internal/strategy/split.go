package strategy

import "fmt"

// Split-helper contract: the exported low-level split helpers of this
// package — ContiguousSplit, ContiguousSplitTotal, RectilinearCuts and
// SubcubeOwners — all panic on a processor count below one (a programmer
// error, like an out-of-range index), while the Mapper.Map
// implementations wrapping them validate p first and return an error
// (checkProcs), the contract CLIs and the repro API rely on. mustProcs
// is the single enforcement point of the panic half.
func mustProcs(p int) {
	if p < 1 {
		panic(fmt.Sprintf("strategy: invalid processor count %d", p))
	}
}

// prefixWork returns the inclusive-exclusive prefix sums of work:
// pre[j] = work[0] + ... + work[j-1], so a contiguous block [i, j) has
// work pre[j] - pre[i].
func prefixWork(work []int64) []int64 {
	pre := make([]int64, len(work)+1)
	for j, w := range work {
		pre[j+1] = pre[j] + w
	}
	return pre
}

// OptimalBottleneck returns the minimal achievable maximum block work of
// any partition of the items into at most p contiguous blocks — the
// bottleneck B* that ContiguousSplit attains and the work bound
// ContiguousSplitTotal constrains its blocks by. Found by binary search
// over candidate bottlenecks, each probed with a greedy feasibility scan
// (Ahrens 2020's probe). It panics on p < 1 (see mustProcs).
func OptimalBottleneck(work []int64, p int) int64 {
	mustProcs(p)
	var lo, hi int64 // lo = max item (any block must hold it), hi = total
	for _, w := range work {
		if w > lo {
			lo = w
		}
		hi += w
	}
	feasible := func(b int64) bool {
		blocks, cur := 1, int64(0)
		for _, w := range work {
			if cur+w > b {
				blocks++
				if blocks > p {
					return false
				}
				cur = 0
			}
			cur += w
		}
		return true
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ownersFromBounds expands block boundaries (length p+1, as returned by
// the split helpers) into a column-to-processor assignment: columns
// [bounds[k], bounds[k+1]) belong to processor k.
func ownersFromBounds(n int, bounds []int) []int32 {
	owner := make([]int32, n)
	for k := 0; k+1 < len(bounds); k++ {
		for j := bounds[k]; j < bounds[k+1]; j++ {
			owner[j] = int32(k)
		}
	}
	return owner
}
