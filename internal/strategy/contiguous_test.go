package strategy

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// bruteBottleneck finds the optimal bottleneck of a contiguous partition
// into p blocks by exhaustive recursion (feasible for n <= 12).
func bruteBottleneck(work []int64, p int) int64 {
	if p <= 1 {
		var s int64
		for _, w := range work {
			s += w
		}
		return s
	}
	if len(work) == 0 {
		return 0
	}
	best := int64(-1)
	var first int64
	for cut := 0; cut <= len(work); cut++ {
		rest := bruteBottleneck(work[cut:], p-1)
		bot := first
		if rest > bot {
			bot = rest
		}
		if best < 0 || bot < best {
			best = bot
		}
		if cut < len(work) {
			first += work[cut]
		}
	}
	return best
}

func splitBottleneck(work []int64, bounds []int) int64 {
	var bot int64
	for k := 0; k+1 < len(bounds); k++ {
		var s int64
		for j := bounds[k]; j < bounds[k+1]; j++ {
			s += work[j]
		}
		if s > bot {
			bot = s
		}
	}
	return bot
}

// TestContiguousSplitOptimal cross-checks the binary-search split against
// brute force on random work vectors with n <= 12.
func TestContiguousSplitOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		p := 1 + rng.Intn(5)
		work := make([]int64, n)
		for i := range work {
			work[i] = int64(rng.Intn(21)) // include zeros
		}
		bounds := ContiguousSplit(work, p)
		if len(bounds) != p+1 || bounds[0] != 0 || bounds[p] != n {
			t.Fatalf("ContiguousSplit(%v, %d) bounds = %v", work, p, bounds)
		}
		for k := 0; k < p; k++ {
			if bounds[k] > bounds[k+1] {
				t.Fatalf("ContiguousSplit(%v, %d) non-monotone bounds %v", work, p, bounds)
			}
		}
		got := splitBottleneck(work, bounds)
		want := bruteBottleneck(work, p)
		if got != want {
			t.Fatalf("ContiguousSplit(%v, %d) bottleneck = %d, optimal = %d (bounds %v)",
				work, p, got, want, bounds)
		}
	}
}

func TestContiguousSplitEdges(t *testing.T) {
	cases := []struct {
		work []int64
		p    int
	}{
		{nil, 3},
		{[]int64{7}, 1},
		{[]int64{7}, 4},
		{[]int64{0, 0, 0}, 2},
		{[]int64{5, 5, 5, 5}, 2},
		{[]int64{100, 1, 1, 1}, 3},
	}
	for _, c := range cases {
		bounds := ContiguousSplit(c.work, c.p)
		if len(bounds) != c.p+1 || bounds[0] != 0 || bounds[c.p] != len(c.work) {
			t.Errorf("ContiguousSplit(%v, %d) = %v", c.work, c.p, bounds)
			continue
		}
		if got, want := splitBottleneck(c.work, bounds), bruteBottleneck(c.work, c.p); got != want {
			t.Errorf("ContiguousSplit(%v, %d) bottleneck = %d, optimal = %d", c.work, c.p, got, want)
		}
	}
}

// TestContiguousMapperOptimal checks the full mapper on small matrices
// (n <= 12): the schedule's maximum per-processor work must equal the
// brute-force optimal bottleneck of the column-work vector.
func TestContiguousMapperOptimal(t *testing.T) {
	matrices := map[string]int{ // name -> grid columns (rows fixed at 3)
		"grid5-3x3": 3,
		"grid5-3x4": 4,
	}
	for name, cols := range matrices {
		sys := newTestSys(t, gen.Grid5(3, cols))
		if sys.F.N > 12 {
			t.Fatalf("%s: n = %d, want <= 12 for brute force", name, sys.F.N)
		}
		colWork := sys.ColumnWork()
		for _, p := range []int{2, 3, 4} {
			sc, err := Map("contiguous", sys, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sc.MaxWork(), bruteBottleneck(colWork, p); got != want {
				t.Errorf("%s P=%d: contiguous bottleneck %d, brute-force optimum %d",
					name, p, got, want)
			}
		}
	}
}
