package strategy

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
)

var refineBases = []string{"block", "blockgreedy", "wrap", "contiguous", "blockcyclic", "subcube"}

// TestRefineNeverWorsensImbalance: with the imbalance objective, the
// refined schedule's maximum per-processor work (hence the paper's A)
// never exceeds the base schedule's, for every base strategy.
func TestRefineNeverWorsensImbalance(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(10, 10))
	for _, base := range refineBases {
		for _, p := range []int{4, 16} {
			opts := Options{Base: base}
			baseSc, err := Map(base, sys, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Map("refine", sys, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ref.MaxWork() > baseSc.MaxWork() {
				t.Errorf("refine(%s) P=%d: MaxWork %d > base %d",
					base, p, ref.MaxWork(), baseSc.MaxWork())
			}
			if ref.TotalWork() != baseSc.TotalWork() {
				t.Errorf("refine(%s) P=%d: total work changed %d -> %d",
					base, p, baseSc.TotalWork(), ref.TotalWork())
			}
			checkSchedule(t, sys, ref, "refine/"+base, p)
		}
	}
}

// TestRefineNeverWorsensTraffic: with the traffic objective, the refined
// schedule's simulated traffic never exceeds the base schedule's.
func TestRefineNeverWorsensTraffic(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(10, 10))
	for _, base := range refineBases {
		opts := Options{Base: base, Objective: "traffic"}
		const p = 4
		baseSc, err := Map(base, sys, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Map("refine", sys, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		baseT := Traffic(sys, opts, baseSc).Total
		refT := Traffic(sys, opts, ref).Total
		if refT > baseT {
			t.Errorf("refine(%s, traffic) P=%d: traffic %d > base %d", base, p, refT, baseT)
		}
		checkSchedule(t, sys, ref, "refine-traffic/"+base, p)
	}
}

// TestRefineImprovesBlockImbalance: on a matrix where the block heuristic
// is visibly imbalanced, refinement must actually help, not just not
// hurt.
func TestRefineImprovesBlockImbalance(t *testing.T) {
	sys := newTestSys(t, gen.Lap30())
	const p = 16
	opts := Options{Base: "block"}
	baseSc, err := Map("block", sys, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Map("refine", sys, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Imbalance() >= baseSc.Imbalance() {
		t.Errorf("refine(block) P=%d: imbalance %g did not improve on base %g",
			p, ref.Imbalance(), baseSc.Imbalance())
	}
}

// TestRefineLeavesBaseUntouched: Refine returns a new schedule; the base
// schedule's ownership and work vectors must not change.
func TestRefineLeavesBaseUntouched(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(8, 8))
	const p = 4
	baseSc, err := Map("block", sys, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	work := append([]int64(nil), baseSc.Work...)
	elem := append([]int32(nil), baseSc.ElemProc...)
	unit := append([]int32(nil), baseSc.UnitProc...)
	if _, err := Refine(sys, Options{}, baseSc); err != nil {
		t.Fatal(err)
	}
	for k := range work {
		if baseSc.Work[k] != work[k] {
			t.Fatalf("Refine mutated base Work[%d]", k)
		}
	}
	for q := range elem {
		if baseSc.ElemProc[q] != elem[q] {
			t.Fatalf("Refine mutated base ElemProc[%d]", q)
		}
	}
	for u := range unit {
		if baseSc.UnitProc[u] != unit[u] {
			t.Fatalf("Refine mutated base UnitProc[%d]", u)
		}
	}
}

// TestRefineNeverWorsensCommspan: with the commspan objective, the
// refined schedule's unified comm-aware dynamic span never exceeds the
// base schedule's, for every base strategy — the analogue of the
// imbalance and traffic monotonicity guarantees for the objective that
// minimizes the unified time estimate directly.
func TestRefineNeverWorsensCommspan(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(8, 8))
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	for _, base := range refineBases {
		opts := Options{Base: base, Objective: "commspan", Comm: cm}
		const p = 4
		baseSc, err := Map(base, sys, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Map("refine", sys, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		baseSpan := MakespanCommDynamic(sys, opts, baseSc, cm).Makespan
		refSpan := MakespanCommDynamic(sys, opts, ref, cm).Makespan
		if refSpan > baseSpan {
			t.Errorf("refine(%s, commspan) P=%d: span %d > base %d", base, p, refSpan, baseSpan)
		}
		checkSchedule(t, sys, ref, "refine-commspan/"+base, p)
	}
}

// TestRefineCommspanImproves: on a mapping with scattered communication
// the commspan objective must actually lower the unified span, not just
// not raise it.
func TestRefineCommspanImproves(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(10, 10))
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	opts := Options{Base: "wrap", Objective: "commspan", Comm: cm, MaxMoves: 200}
	const p = 8
	baseSc, err := Map("wrap", sys, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Map("refine", sys, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseSpan := MakespanCommDynamic(sys, opts, baseSc, cm).Makespan
	refSpan := MakespanCommDynamic(sys, opts, ref, cm).Makespan
	if refSpan >= baseSpan {
		t.Errorf("refine(wrap, commspan) P=%d: span %d did not improve on base %d",
			p, refSpan, baseSpan)
	}
}

// TestRefineCommspanZeroModel: with a zero Comm model the commspan
// objective degenerates to minimizing the compute-only dynamic span, and
// the monotonicity guarantee must still hold.
func TestRefineCommspanZeroModel(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(8, 8))
	opts := Options{Base: "wrap", Objective: "commspan"}
	const p = 4
	baseSc, err := Map("wrap", sys, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Map("refine", sys, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, base := MakespanDynamic(sys, opts, ref).Makespan, MakespanDynamic(sys, opts, baseSc).Makespan; got > base {
		t.Errorf("refine(wrap, commspan, zero model): dynamic span %d > base %d", got, base)
	}
}

// TestRefineCommspanRefineSchedule covers the public Refine entry point
// (repro's RefineSchedule): refining an existing schedule in place of a
// base-strategy re-run, the unified span never worsens and the input is
// left untouched.
func TestRefineCommspanRefineSchedule(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(8, 8))
	cm := exec.CommModel{Alpha: 1, Beta: 5}
	opts := Options{Objective: "commspan", Comm: cm}
	const p = 4
	baseSc, err := Map("block", sys, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int32(nil), baseSc.ElemProc...)
	ref, err := Refine(sys, opts, baseSc)
	if err != nil {
		t.Fatal(err)
	}
	if got, base := MakespanCommDynamic(sys, opts, ref, cm).Makespan, MakespanCommDynamic(sys, opts, baseSc, cm).Makespan; got > base {
		t.Errorf("Refine(commspan): span %d > input %d", got, base)
	}
	for q := range before {
		if baseSc.ElemProc[q] != before[q] {
			t.Fatalf("Refine(commspan) mutated its input at element %d", q)
		}
	}
}

func TestRefineErrors(t *testing.T) {
	sys := newTestSys(t, gen.Grid5(4, 4))
	if _, err := Map("refine", sys, 4, Options{Base: "refine"}); err == nil {
		t.Error("refine with itself as base succeeded, want error")
	}
	if _, err := Map("refine", sys, 4, Options{Base: "no-such"}); err == nil {
		t.Error("refine with unknown base succeeded, want error")
	}
	_, err := Map("refine", sys, 4, Options{Objective: "bogus"})
	if err == nil {
		t.Fatal("refine with unknown objective succeeded, want error")
	}
	// The error must advertise the actual objective set (derived from the
	// objective table, not a hardcoded list), so new objectives such as
	// commspan appear automatically.
	for _, want := range Objectives() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-objective error %q does not list objective %q", err, want)
		}
	}
}
