package strategy

import (
	"math"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// contigTotalMapper assigns contiguous column blocks minimizing the
// *total* communication volume — Ahrens (2020)'s other objective, the
// complement of the bottleneck-optimal "contiguous" strategy. The work
// constraint comes first: every block's work is bounded by
// (1 + opts.Slack) times the optimal contiguous bottleneck B*, so the
// mapper never trades away the load balance the bottleneck split would
// achieve. Within that feasible set it solves, by dynamic programming
// over candidate block boundaries, for the split whose simulated data
// traffic (the paper's Section 4 fetch-on-first-use model) is minimal —
// optimal by construction, not refined toward the objective.
//
// The cost oracle is traffic.ColumnRefs: a block fetches, per source
// column k owned to its left, the trailing elements of k from the
// block's first target row in struct(k) downward. Those per-cut volumes
// sum exactly to traffic.Simulate's total for the resulting schedule
// (regression-tested), which is what makes the DP's optimum the true
// traffic optimum over all work-feasible contiguous splits.
//
// Options.Beta2 mixes the per-cut message counts into the objective
// (volume + Beta2 x messages, one message per distinct source column a
// block fetches across its left cut), trading volume for message
// consolidation; the optimum's message count never increases with Beta2.
type contigTotalMapper struct{}

func (contigTotalMapper) Name() string { return "contigtotal" }

func (contigTotalMapper) Map(sys *Sys, p int, opts Options) (*sched.Schedule, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	work := sys.ColumnWork()
	bound := OptimalBottleneck(work, p)
	if slack := opts.Slack; slack > 0 {
		extra := slack * float64(bound)
		if extra >= float64(math.MaxInt64)-float64(bound) {
			bound = math.MaxInt64
		} else {
			bound += int64(extra)
		}
	}
	beta2 := opts.Beta2
	if beta2 < 0 {
		beta2 = 0
	}
	refs := traffic.ColumnRefs(sys.Ops)
	bounds := contiguousSplitTotal(work, refs, p, bound, beta2, opts.Search)
	return columnSchedule(sys, p, ownersFromBounds(sys.F.N, bounds)), nil
}

func init() { Register(contigTotalMapper{}) }

// ContiguousSplitTotal partitions columns 0..n-1 into p contiguous
// blocks minimizing the communication of the induced column schedule,
// subject to every block's work being at most maxWork. refs is the fetch
// attribution of traffic.ColumnRefs over the same factor the work vector
// came from; the minimized objective is volume + beta2 x messages, where
// the volume is the exact data traffic of the paper's fetch-on-first-use
// model and a block receives one message per distinct source column it
// fetches across its left cut. beta2 = 0 (the classical objective)
// minimizes pure volume; beta2 > 0 trades volume for message
// consolidation, and the optimal split's message count is non-increasing
// in beta2 (the scalarization exchange argument the regression test
// pins). The boundaries come back in ContiguousSplit's format (length
// p+1, bounds[0] = 0, bounds[p] = n, empty blocks allowed). It returns
// nil when no partition into at most p blocks of work <= maxWork exists
// (maxWork below OptimalBottleneck(work, p)); with maxWork >= B* a
// solution always exists. It panics on p < 1, the shared contract of
// the exported split helpers (see mustProcs).
//
// The DP runs over block end positions: dp[k][j] is the minimal total
// objective of covering columns [0, j) with k blocks, with transitions
// dp[k][j] = min over i of dp[k-1][i] + C(i, j) where C(i, j) is block
// [i, j)'s fetch objective — for every source column k' < i whose
// structure has a target in [i, j), the trailing volume of k' from the
// first such target plus beta2 for the message. C is evaluated
// incrementally per block start over the work-feasible window, so time
// and memory stay near n^2/p per layer. Costs are held in float64;
// with beta2 = 0 every value is an exactly-representable integer, so the
// float DP's decisions coincide with the original integer DP's.
func ContiguousSplitTotal(work []int64, refs [][]traffic.ColRef, p int, maxWork int64, beta2 float64) []int {
	return contiguousSplitTotal(work, refs, p, maxWork, beta2, nil)
}

// contiguousSplitTotal is ContiguousSplitTotal plus search telemetry: tel
// counts every DP transition relaxation as a trial (accepted when it
// improved the layer's best) and records the optimal objective as the
// trajectory's final point.
func contiguousSplitTotal(work []int64, refs [][]traffic.ColRef, p int, maxWork int64, beta2 float64, tel *obs.SearchTelemetry) []int {
	mustProcs(p)
	n := len(work)
	bounds := make([]int, p+1)
	bounds[p] = n
	if n == 0 {
		return bounds
	}
	pre := prefixWork(work)

	// cost[i][j-i] = C(i, j) for j in [i, jmax(i)], where jmax(i) is the
	// furthest end with block work pre[j]-pre[i] <= maxWork.
	cost := make([][]float64, n+1)
	cost[n] = []float64{0}
	// seen[k'] == i+1 marks source column k' already charged to the block
	// starting at i (epoch trick: no per-start reset).
	seen := make([]int, n)
	for i := 0; i < n; i++ {
		jmax := i
		for jmax < n && pre[jmax+1]-pre[i] <= maxWork {
			jmax++
		}
		row := make([]float64, jmax-i+1)
		var vol int64
		var msgs int64
		for j := i + 1; j <= jmax; j++ {
			x := j - 1 // column newly added to block [i, j)
			for _, r := range refs[x] {
				if int(r.Col) >= i {
					continue // source inside the block: local
				}
				if seen[r.Col] == i+1 {
					continue // already fetched for an earlier target
				}
				seen[r.Col] = i + 1
				vol += r.Vol
				msgs++
			}
			row[j-i] = float64(vol) + beta2*float64(msgs)
		}
		cost[i] = row
	}

	inf := math.Inf(1)
	dp := make([]float64, n+1)
	next := make([]float64, n+1)
	par := make([][]int32, p+1)
	for j := 1; j <= n; j++ {
		dp[j] = inf
	}
	for k := 1; k <= p; k++ {
		par[k] = make([]int32, n+1)
		for j := 0; j <= n; j++ {
			next[j] = inf
			par[k][j] = -1
		}
		for i := 0; i <= n; i++ {
			if math.IsInf(dp[i], 1) {
				continue
			}
			row := cost[i]
			for d, c := range row {
				j := i + d
				if cand := dp[i] + c; cand < next[j] {
					next[j] = cand
					par[k][j] = int32(i)
					tel.Trial(true)
				} else {
					tel.Trial(false)
				}
			}
		}
		dp, next = next, dp
	}
	if math.IsInf(dp[n], 1) {
		return nil
	}
	tel.Objective(int64(dp[n]))
	at := n
	for k := p; k >= 1; k-- {
		bounds[k] = at
		at = int(par[k][at])
	}
	bounds[0] = 0
	return bounds
}
