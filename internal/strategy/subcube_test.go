package strategy

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/symbolic"
	"repro/internal/traffic"
)

// TestSubcubeOwnersBalancedTree pins the mapper's defining behavior on a
// hand-built balanced forest: with two equal subtrees and two processors,
// each subtree becomes wholly local to one processor and the shared top
// separator chain is wrap-mapped across both.
func TestSubcubeOwnersBalancedTree(t *testing.T) {
	// Tree (parent pointers): 6 is the root, 5 its only child (separator
	// chain), with two equal subtrees {0,1->2} and {3,4->... } hanging off 5:
	//
	//        6
	//        |
	//        5
	//       / \
	//      2   4
	//     /|   |\
	//    0 1   3 7... (kept symmetric: 0,1 under 2; 3,7 under 4)
	parent := []int{2, 2, 5, 4, 5, 6, -1, 4}
	work := []int64{1, 1, 1, 1, 1, 1, 1, 1}
	own := SubcubeOwners(parent, work, 2)
	// Separator chain 6, 5 wraps across {0, 1}.
	if own[6] == own[5] {
		t.Errorf("separator chain not wrap-mapped: own[6]=%d own[5]=%d", own[6], own[5])
	}
	// Each subtree is local to a single processor, and the two subtrees
	// use distinct processors.
	left := map[int32]bool{own[2]: true, own[0]: true, own[1]: true}
	right := map[int32]bool{own[4]: true, own[3]: true, own[7]: true}
	if len(left) != 1 || len(right) != 1 {
		t.Fatalf("subtrees not local: left owners %v, right owners %v", left, right)
	}
	if own[2] == own[4] {
		t.Errorf("sibling subtrees share processor %d", own[2])
	}
	for j, o := range own {
		if o < 0 || o >= 2 {
			t.Fatalf("column %d owned by out-of-range processor %d", j, o)
		}
	}
}

// TestSubcubeOwnersMoreSubtreesThanProcs covers the packing fallback:
// with more sibling subtrees than processors every column still gets an
// owner in range and every processor receives work (LPT packing of whole
// subtrees).
func TestSubcubeOwnersMoreSubtreesThanProcs(t *testing.T) {
	// A forest of five independent chains with unequal weights.
	parent := []int{-1, 0, -1, 2, -1, 4, -1, 6, -1, 8}
	work := []int64{5, 5, 4, 4, 3, 3, 2, 2, 1, 1}
	const p = 2
	own := SubcubeOwners(parent, work, p)
	load := make([]int64, p)
	for j, o := range own {
		if o < 0 || o >= p {
			t.Fatalf("column %d owned by out-of-range processor %d", j, o)
		}
		load[o] += work[j]
		// Chains must stay whole: child and parent share an owner.
		if pr := parent[j]; pr != -1 && own[pr] != o {
			t.Errorf("chain split: own[%d]=%d but own[parent=%d]=%d", j, o, pr, own[pr])
		}
	}
	for k, l := range load {
		if l == 0 {
			t.Errorf("processor %d received no work under LPT packing", k)
		}
	}
}

// TestSubcubeOwnersInvalidProcs: the exported helper rejects p < 1 with
// a clear panic, like the sched mappers, instead of a cryptic
// divide-by-zero deep in the recursion.
func TestSubcubeOwnersInvalidProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SubcubeOwners(p=0) did not panic")
		}
	}()
	SubcubeOwners([]int{-1}, []int64{1}, 0)
}

// TestSubcubeConservation mirrors the cross-strategy comm harness
// explicitly for subcube on the grid and HB fixtures: per-task fetch
// volumes partition the traffic total, and a zero CommModel reproduces
// the compute-only simulators bit for bit.
func TestSubcubeConservation(t *testing.T) {
	for mname, m := range commFixtures(t) {
		sys := newTestSys(t, m)
		for _, p := range []int{2, 4, 16} {
			sc, err := Map("subcube", sys, p, Options{})
			if err != nil {
				t.Fatalf("%s P=%d: %v", mname, p, err)
			}
			checkSchedule(t, sys, sc, "subcube/"+mname, p)
			tc := FetchStats(sys, Options{}, sc)
			if got, want := tc.TotalVol(), Traffic(sys, Options{}, sc).Total; got != want {
				t.Errorf("%s P=%d: fetch volumes sum to %d, traffic total %d", mname, p, got, want)
			}
			var zero exec.CommModel
			if got, want := MakespanComm(sys, Options{}, sc, zero), Makespan(sys, Options{}, sc); got != want {
				t.Errorf("%s P=%d static: zero model %+v != compute-only %+v", mname, p, got, want)
			}
			if got, want := MakespanCommDynamic(sys, Options{}, sc, zero), MakespanDynamic(sys, Options{}, sc); got != want {
				t.Errorf("%s P=%d dynamic: zero model %+v != compute-only %+v", mname, p, got, want)
			}
		}
	}
}

// TestSubcubeLocalityLAP30 locks the paper's locality claim for the
// elimination-tree-aware mapping on the LAP30 fixture: at large P the
// subtree-to-subcube assignment both fetches far less data than wrap and
// achieves a unified comm-aware dynamic span no worse than wrap's — the
// regime where "the savings in communication more than offset the
// disadvantage of load imbalance".
func TestSubcubeLocalityLAP30(t *testing.T) {
	sys := newTestSys(t, gen.Lap30())
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	for _, p := range []int{16, 32} {
		var span, tr = map[string]int64{}, map[string]*traffic.Result{}
		for _, name := range []string{"subcube", "wrap"} {
			sc, err := Map(name, sys, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			span[name] = MakespanCommDynamic(sys, Options{}, sc, cm).Makespan
			tr[name] = Traffic(sys, Options{}, sc)
		}
		if span["subcube"] > span["wrap"] {
			t.Errorf("P=%d: subcube unified span %d > wrap %d", p, span["subcube"], span["wrap"])
		}
		if tr["subcube"].Total >= tr["wrap"].Total {
			t.Errorf("P=%d: subcube traffic %d >= wrap %d, want a clear locality win",
				p, tr["subcube"].Total, tr["wrap"].Total)
		}
	}
}

// TestSubcubeAsRefineBase: the mapper composes with the refine strategy
// like any other base, and the imbalance objective repairs the
// subtree-to-subcube trade-off (its known weakness) without touching the
// total work.
func TestSubcubeAsRefineBase(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(10, 10))
	const p = 8
	opts := Options{Base: "subcube"}
	baseSc, err := Map("subcube", sys, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Map("refine", sys, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.MaxWork() > baseSc.MaxWork() {
		t.Errorf("refine(subcube): MaxWork %d > base %d", ref.MaxWork(), baseSc.MaxWork())
	}
	if ref.TotalWork() != baseSc.TotalWork() {
		t.Errorf("refine(subcube): total work changed %d -> %d", baseSc.TotalWork(), ref.TotalWork())
	}
	checkSchedule(t, sys, ref, "refine/subcube", p)
}

// TestSubcubeNDOrderLAP30 is the ordering-aware regression: under a
// nested-dissection ordering — where the elimination tree's separators
// are explicit, the regime subtree-to-subcube mapping was designed for —
// the subcube unified comm-aware dynamic span stays at or below wrap's on
// LAP30 at P in {16, 32}, and its data traffic stays strictly below
// (independent subtrees of the dissection never share owners).
func TestSubcubeNDOrderLAP30(t *testing.T) {
	a := gen.Lap30()
	perm := order.NestedDissection(a, 0)
	pm, err := a.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSys(symbolic.Analyze(pm), nil, nil)
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	for _, p := range []int{16, 32} {
		span := map[string]int64{}
		tr := map[string]int64{}
		for _, name := range []string{"subcube", "wrap"} {
			sc, err := Map(name, sys, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			checkSchedule(t, sys, sc, name+"/ndorder", p)
			span[name] = MakespanCommDynamic(sys, Options{}, sc, cm).Makespan
			tr[name] = Traffic(sys, Options{}, sc).Total
		}
		if span["subcube"] > span["wrap"] {
			t.Errorf("NDOrder P=%d: subcube unified span %d > wrap %d", p, span["subcube"], span["wrap"])
		}
		if tr["subcube"] >= tr["wrap"] {
			t.Errorf("NDOrder P=%d: subcube traffic %d >= wrap %d", p, tr["subcube"], tr["wrap"])
		}
	}
}
