package strategy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Default move caps for the refinement objectives. Imbalance moves cost
// O(P + units-on-source); traffic moves each re-run the traffic
// simulation, so their budget is much smaller; commspan moves each re-run
// the fetch attribution plus the dynamic makespan simulation, the most
// expensive evaluation of the three.
const (
	defaultImbalanceMoves = 1024
	defaultTrafficMoves   = 64
	defaultCommspanMoves  = 48
)

// objectiveFunc is one refinement objective: it improves sc in place by
// moving movables between processors, never accepting a worsening move.
type objectiveFunc func(sys *Sys, opts Options, sc *sched.Schedule, mv []movable, own []int32, maxMoves int)

// objectives is the refinement-objective table; Refine derives both its
// dispatch and its unknown-objective error message from it, so a new
// objective registered here is automatically reachable and advertised.
var objectives = map[string]objectiveFunc{
	"imbalance": func(_ *Sys, opts Options, sc *sched.Schedule, mv []movable, own []int32, maxMoves int) {
		refineImbalance(sc, mv, own, maxMoves, opts.Search)
	},
	"traffic":  refineTraffic,
	"commspan": refineCommspan,
}

// Objectives returns the sorted names of the refinement objectives the
// refine strategy accepts, derived from the objective table (so CLIs can
// validate and advertise the set without hardcoding it).
func Objectives() []string {
	names := make([]string, 0, len(objectives))
	//repro:allow maporder -- key collection for the sort.Strings below; iteration order never escapes
	for n := range objectives {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// refineMapper composes a greedy local-refinement pass on top of any base
// strategy: it repeatedly moves one schedulable unit (a unit block for
// block-granular bases, a column otherwise) between processors while the
// move strictly improves the objective — the paper's load imbalance
// factor A by default, the simulated data traffic, or the unified
// comm-aware dynamic makespan. The pass never accepts a worsening move,
// so the refined schedule's objective is never worse than the base
// schedule's.
type refineMapper struct{}

func (refineMapper) Name() string { return "refine" }

func (refineMapper) Map(sys *Sys, p int, opts Options) (*sched.Schedule, error) {
	base := opts.Base
	if base == "" {
		base = "block"
	}
	if base == "refine" {
		return nil, fmt.Errorf("strategy: refine cannot use itself as base")
	}
	sc, err := Map(base, sys, p, opts)
	if err != nil {
		return nil, err
	}
	return Refine(sys, opts, sc)
}

func init() { Register(refineMapper{}) }

// movable is one unit the refinement pass may reassign: a unit block of
// the partition, or a whole column for column-granular schedules.
type movable struct {
	work  int64
	elems []int32 // factor nonzero positions owned by this unit
	preds []int32 // movable IDs this unit reads from (locality signal)
}

// Refine runs the greedy local-refinement pass of the "refine" strategy
// on an existing schedule, returning a new schedule (the input is left
// untouched). The granularity is inferred from the schedule: unit blocks
// when UnitProc is present (the partition comes from opts.Part), columns
// otherwise.
func Refine(sys *Sys, opts Options, base *sched.Schedule) (*sched.Schedule, error) {
	sc := cloneSchedule(base)
	mv, own, err := movables(sys, opts, sc)
	if err != nil {
		return nil, err
	}
	name := opts.Objective
	if name == "" {
		name = "imbalance"
	}
	obj, ok := objectives[name]
	if !ok {
		return nil, fmt.Errorf("strategy: unknown refine objective %q (want %s)",
			opts.Objective, strings.Join(Objectives(), ", "))
	}
	obj(sys, opts, sc, mv, own, opts.MaxMoves)
	return sc, nil
}

func cloneSchedule(s *sched.Schedule) *sched.Schedule {
	c := &sched.Schedule{
		P:        s.P,
		ElemProc: append([]int32(nil), s.ElemProc...),
		Work:     append([]int64(nil), s.Work...),
	}
	if s.UnitProc != nil {
		c.UnitProc = append([]int32(nil), s.UnitProc...)
	}
	return c
}

// movables builds the refinement units of a schedule and the current
// owner of each.
func movables(sys *Sys, opts Options, sc *sched.Schedule) ([]movable, []int32, error) {
	if sc.UnitProc != nil {
		part := sys.Partition(opts.Part)
		if len(sc.UnitProc) != len(part.Units) || len(sc.ElemProc) != part.F.NNZ() {
			return nil, nil, fmt.Errorf("strategy: schedule does not match the partition of opts.Part")
		}
		mv := make([]movable, len(part.Units))
		for i := range part.Units {
			u := &part.Units[i]
			mv[i] = movable{work: u.Work, preds: u.Preds}
		}
		for q, uid := range part.ElemUnit {
			mv[uid].elems = append(mv[uid].elems, int32(q))
		}
		return mv, append([]int32(nil), sc.UnitProc...), nil
	}
	f := sys.F
	if len(sc.ElemProc) != f.NNZ() {
		return nil, nil, fmt.Errorf("strategy: schedule does not match the analysis factor")
	}
	colWork := sys.ColumnWork()
	mv := make([]movable, f.N)
	for j := 0; j < f.N; j++ {
		elems := make([]int32, 0, f.ColPtr[j+1]-f.ColPtr[j])
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			elems = append(elems, int32(q))
		}
		mv[j] = movable{work: colWork[j], elems: elems, preds: sys.Ops.RowCols(j)}
	}
	return mv, columnOwners(f, sc), nil
}

// move reassigns movable u to processor dst, updating the schedule's
// element ownership and per-processor work in place.
func move(sc *sched.Schedule, mv []movable, own []int32, u int, dst int32) {
	src := own[u]
	own[u] = dst
	sc.Work[src] -= mv[u].work
	sc.Work[dst] += mv[u].work
	for _, q := range mv[u].elems {
		sc.ElemProc[q] = dst
	}
	if sc.UnitProc != nil {
		sc.UnitProc[u] = dst
	}
}

// refineImbalance repeatedly moves a unit from an overloaded processor to
// the least-loaded one when that strictly lowers the pair's bottleneck
// without raising the global maximum; each accepted move strictly
// decreases the sum of squared processor loads, so the pass terminates
// and the imbalance factor A never increases. tel, when non-nil, records
// one accepted trial per move and the bottleneck-work trajectory.
func refineImbalance(sc *sched.Schedule, mv []movable, own []int32, maxMoves int, tel *obs.SearchTelemetry) {
	if maxMoves <= 0 {
		maxMoves = defaultImbalanceMoves
	}
	p := sc.P
	if p < 2 {
		return
	}
	bottleneck := func() int64 {
		var m int64
		for _, w := range sc.Work {
			if w > m {
				m = w
			}
		}
		return m
	}
	tel.Objective(bottleneck())
	// byProc[k] lists the movables currently on processor k.
	byProc := make([][]int, p)
	for u := range mv {
		byProc[own[u]] = append(byProc[own[u]], u)
	}
	for moves := 0; moves < maxMoves; {
		dst := int32(leastLoaded(sc.Work))
		// Scan sources from most loaded down; the first source with an
		// improving move takes it.
		order := make([]int32, 0, p)
		for k := 0; k < p; k++ {
			if int32(k) != dst {
				order = append(order, int32(k))
			}
		}
		for a := 1; a < len(order); a++ {
			for b := a; b > 0 && sc.Work[order[b]] > sc.Work[order[b-1]]; b-- {
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
		moved := false
		for _, src := range order {
			gap := sc.Work[src] - sc.Work[dst]
			if gap <= 0 {
				break
			}
			// Best unit: minimize the pair bottleneck max(Wsrc-w, Wdst+w);
			// any unit with 0 < w < gap strictly improves it.
			best, bestBot := -1, sc.Work[src]
			for _, u := range byProc[src] {
				w := mv[u].work
				if w <= 0 || w >= gap {
					continue
				}
				bot := sc.Work[src] - w
				if d := sc.Work[dst] + w; d > bot {
					bot = d
				}
				if bot < bestBot {
					best, bestBot = u, bot
				}
			}
			if best < 0 {
				continue
			}
			move(sc, mv, own, best, dst)
			list := byProc[src]
			for i, u := range list {
				if u == best {
					list[i] = list[len(list)-1]
					byProc[src] = list[:len(list)-1]
					break
				}
			}
			byProc[dst] = append(byProc[dst], best)
			moves++
			moved = true
			tel.Trial(true)
			tel.Objective(bottleneck())
			break
		}
		if !moved {
			return
		}
	}
}

// buildSuccs inverts the movables' predecessor lists: succs[u] holds the
// movables reading from u, the other half of u's dependency neighborhood.
func buildSuccs(mv []movable) [][]int32 {
	succs := make([][]int32, len(mv))
	for u := range mv {
		for _, pr := range mv[u].preds {
			succs[pr] = append(succs[pr], int32(u))
		}
	}
	return succs
}

// pluralityOwner returns the processor owning the plurality of movable
// u's dependency neighborhood (predecessors plus successors), defaulting
// to u's current owner on a tie or an empty neighborhood. tally is a
// caller-provided scratch vector of length P.
func pluralityOwner(mv []movable, succs [][]int32, own []int32, u int, tally []int64) int32 {
	for k := range tally {
		tally[k] = 0
	}
	for _, pr := range mv[u].preds {
		tally[own[pr]]++
	}
	for _, sx := range succs[u] {
		tally[own[sx]]++
	}
	tgt := own[u]
	for k := range tally {
		if tally[k] > tally[tgt] {
			tgt = int32(k)
		}
	}
	return tgt
}

// refineTraffic tries moving each unit to the processor owning most of
// its dependency neighborhood (predecessors and successors), keeping a
// move only when the re-simulated total traffic strictly decreases.
func refineTraffic(sys *Sys, opts Options, sc *sched.Schedule, mv []movable, own []int32, maxMoves int) {
	if maxMoves <= 0 {
		maxMoves = defaultTrafficMoves
	}
	simulate := func() int64 { return Traffic(sys, opts, sc).Total }
	cur := simulate()
	opts.Search.Objective(cur)
	succs := buildSuccs(mv)
	tally := make([]int64, sc.P)
	moves := 0
	for {
		improved := false
		for u := range mv {
			if moves >= maxMoves {
				return
			}
			if mv[u].work == 0 && len(mv[u].elems) == 0 {
				continue
			}
			tgt := pluralityOwner(mv, succs, own, u, tally)
			if tgt == own[u] {
				continue
			}
			src := own[u]
			move(sc, mv, own, u, tgt)
			moves++
			if t := simulate(); t < cur {
				cur = t
				improved = true
				opts.Search.Trial(true)
				opts.Search.Objective(t)
			} else {
				move(sc, mv, own, u, src)
				opts.Search.Trial(false)
			}
		}
		if !improved {
			return
		}
	}
}

// refineCommspan hill-climbs the unified comm-aware dynamic makespan
// (the span of strategy.MakespanCommDynamic under opts.Comm): for each
// unit it tries the processor owning the plurality of its dependency
// neighborhood and the least-loaded processor, keeping a move only when
// the re-evaluated span strictly decreases. The task graph's topology and
// compute work never change across moves, so it is built once; each trial
// still re-runs the full fetch attribution (traffic.FetchStats over the
// updated ownership) and the list simulation, which is why
// defaultCommspanMoves is the smallest budget of the three objectives. A
// rejected trial is reverted, so the returned schedule's span never
// exceeds the input's.
func refineCommspan(sys *Sys, opts Options, sc *sched.Schedule, mv []movable, own []int32, maxMoves int) {
	if maxMoves <= 0 {
		maxMoves = defaultCommspanMoves
	}
	if sc.P < 2 {
		return
	}
	tasks := Tasks(sys, opts, sc)
	eval := func() int64 {
		tc := FetchStats(sys, opts, sc)
		return exec.SimulateMakespanDynamicComm(tasks, sc.P, opts.Comm, tc.Vol, tc.Msgs).Makespan
	}
	cur := eval()
	opts.Search.Objective(cur)
	succs := buildSuccs(mv)
	tally := make([]int64, sc.P)
	moves := 0
	for {
		improved := false
		for u := range mv {
			if moves >= maxMoves {
				return
			}
			if mv[u].work == 0 && len(mv[u].elems) == 0 {
				continue
			}
			near := pluralityOwner(mv, succs, own, u, tally)
			idle := int32(leastLoaded(sc.Work))
			for ci, tgt := range [...]int32{near, idle} {
				src := own[u]
				if tgt == src || (ci == 1 && tgt == near) {
					continue
				}
				move(sc, mv, own, u, tgt)
				tasks[u].Proc = tgt
				moves++
				if t := eval(); t < cur {
					cur = t
					improved = true
					opts.Search.Trial(true)
					opts.Search.Objective(t)
					break
				}
				move(sc, mv, own, u, src)
				tasks[u].Proc = src
				opts.Search.Trial(false)
				if moves >= maxMoves {
					return
				}
			}
		}
		if !improved {
			return
		}
	}
}
