package strategy

// The cross-simulator test harness of the communication-aware makespan
// model: every registered strategy, on generated-grid and Harwell-Boeing
// round-trip fixtures, must satisfy the properties that tie the three
// simulators (traffic, static makespan, dynamic makespan) together:
//
//   - conservation: per-task fetch volumes partition the traffic total;
//   - zero-cost regression: a zero CommModel reproduces the compute-only
//     simulators bit for bit;
//   - monotonicity and sanity: spans are non-decreasing in alpha and beta
//     and never below the compute-only span.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/hbio"
	"repro/internal/sparse"
)

// commFixtures returns the harness matrices: a generated 9-point grid and
// an HB-style fixture (a finite-element mesh round-tripped through the
// Harwell-Boeing reader, exercising the same path real HB inputs take).
func commFixtures(t testing.TB) map[string]*sparse.Matrix {
	t.Helper()
	var buf bytes.Buffer
	if err := hbio.Write(&buf, gen.FEGrid5(5), "comm harness fixture", "FEG5"); err != nil {
		t.Fatal(err)
	}
	hb, _, err := hbio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*sparse.Matrix{
		"grid9-8x8":  gen.Grid9(8, 8),
		"hb-fegrid5": hb,
	}
}

// commOpts returns per-strategy options worth covering, including a
// relaxed partition for the block family (schedules over a padded factor).
func commOpts(name string) []Options {
	opts := []Options{{}}
	switch name {
	case "block", "blockgreedy", "refine":
		opts = append(opts, Options{
			Part: core.Options{Grain: 25, MinClusterWidth: 4, RelaxZeros: 0.25},
			Base: "block",
		})
	case "blockcyclic":
		opts = append(opts, Options{BlockSize: 8})
	}
	return opts
}

// TestCommConservation: for every strategy x fixture x P, the per-task
// fetch volumes of FetchStats sum exactly to the simulated traffic total,
// and message counts are bounded by volumes and by P-1 sources per task.
func TestCommConservation(t *testing.T) {
	for mname, m := range commFixtures(t) {
		sys := newTestSys(t, m)
		for _, name := range Names() {
			for _, opts := range commOpts(name) {
				for _, p := range []int{2, 4, 16} {
					sc, err := Map(name, sys, p, opts)
					if err != nil {
						t.Fatalf("%s/%s P=%d: %v", name, mname, p, err)
					}
					tc := FetchStats(sys, opts, sc)
					if got, want := tc.TotalVol(), Traffic(sys, opts, sc).Total; got != want {
						t.Errorf("%s/%s P=%d: fetch volumes sum to %d, traffic total %d",
							name, mname, p, got, want)
					}
					if got, want := len(tc.Vol), len(Tasks(sys, opts, sc)); got != want {
						t.Errorf("%s/%s P=%d: stats cover %d tasks, graph has %d",
							name, mname, p, got, want)
					}
					for i := range tc.Vol {
						if tc.Msgs[i] > tc.Vol[i] || tc.Msgs[i] > int64(p-1) || tc.Vol[i] < 0 {
							t.Fatalf("%s/%s P=%d task %d: vol=%d msgs=%d out of bounds",
								name, mname, p, i, tc.Vol[i], tc.Msgs[i])
						}
					}
				}
			}
		}
	}
}

// TestCommZeroRegression: CommModel{0, 0} makespans equal the compute-only
// static and dynamic simulations exactly — every field, not just the span —
// for every registered strategy at P in {1, 4, 16}.
func TestCommZeroRegression(t *testing.T) {
	for mname, m := range commFixtures(t) {
		sys := newTestSys(t, m)
		for _, name := range Names() {
			for _, opts := range commOpts(name) {
				for _, p := range []int{1, 4, 16} {
					sc, err := Map(name, sys, p, opts)
					if err != nil {
						t.Fatalf("%s/%s P=%d: %v", name, mname, p, err)
					}
					var zero exec.CommModel
					if got, want := MakespanComm(sys, opts, sc, zero), Makespan(sys, opts, sc); got != want {
						t.Errorf("%s/%s P=%d static: zero model %+v != compute-only %+v",
							name, mname, p, got, want)
					}
					if got, want := MakespanCommDynamic(sys, opts, sc, zero), MakespanDynamic(sys, opts, sc); got != want {
						t.Errorf("%s/%s P=%d dynamic: zero model %+v != compute-only %+v",
							name, mname, p, got, want)
					}
				}
			}
		}
	}
}

// TestCommMonotonicity: the comm-aware makespan is non-decreasing in alpha
// and in beta, never below the compute-only makespan, and the comm time
// reported matches between static and dynamic runs of the same model.
func TestCommMonotonicity(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(8, 8))
	const p = 4
	for _, name := range Names() {
		sc, err := Map(name, sys, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base := Makespan(sys, Options{}, sc)
		baseDy := MakespanDynamic(sys, Options{}, sc)
		prevSt, prevDy := int64(-1), int64(-1)
		for _, a := range []float64{0, 0.5, 1, 2, 5} {
			cm := exec.CommModel{Alpha: a, Beta: 2}
			st := MakespanComm(sys, Options{}, sc, cm)
			dy := MakespanCommDynamic(sys, Options{}, sc, cm)
			if st.Makespan < base.Makespan || dy.Makespan < baseDy.Makespan {
				t.Errorf("%s alpha=%g: comm-aware span below compute-only (static %d<%d or dynamic %d<%d)",
					name, a, st.Makespan, base.Makespan, dy.Makespan, baseDy.Makespan)
			}
			if st.Makespan < prevSt {
				t.Errorf("%s alpha=%g: static span %d decreased from %d", name, a, st.Makespan, prevSt)
			}
			if dy.Makespan < prevDy {
				t.Errorf("%s alpha=%g: dynamic span %d decreased from %d", name, a, dy.Makespan, prevDy)
			}
			if st.Comm != dy.Comm {
				t.Errorf("%s alpha=%g: static comm %d != dynamic comm %d", name, a, st.Comm, dy.Comm)
			}
			prevSt, prevDy = st.Makespan, dy.Makespan
		}
		prevSt = -1
		for _, b := range []float64{0, 1, 5, 20} {
			cm := exec.CommModel{Alpha: 1, Beta: b}
			st := MakespanComm(sys, Options{}, sc, cm)
			if st.Makespan < prevSt {
				t.Errorf("%s beta=%g: static span %d decreased from %d", name, b, st.Makespan, prevSt)
			}
			prevSt = st.Makespan
		}
	}
}

// TestCommSpanBounds: under any cost model, both simulators stay within
// the classical list-scheduling envelope — at least the critical path of
// the inflated graph and the perfect-balance bound ceil(W/P), at most the
// serialized total W. (Strict dynamic <= static holds only on DAGs with
// recoverable slack — see exec's TestCommDynamicSlackDAG; on full
// factorization graphs the critical-path priority can lose a few percent
// to the scan order, the classical list-scheduling anomaly.)
func TestCommSpanBounds(t *testing.T) {
	for mname, m := range commFixtures(t) {
		sys := newTestSys(t, m)
		for _, name := range Names() {
			for _, p := range []int{4, 16} {
				sc, err := Map(name, sys, p, Options{})
				if err != nil {
					t.Fatal(err)
				}
				tc := FetchStats(sys, Options{}, sc)
				for _, cm := range []exec.CommModel{{}, {Alpha: 2, Beta: 10}} {
					inflated, _ := exec.InflateTasks(Tasks(sys, Options{}, sc), cm, tc.Vol, tc.Msgs)
					cp := exec.CriticalPath(inflated)
					var w int64
					for _, tk := range inflated {
						w += tk.Work
					}
					lower := cp
					if bal := (w + int64(p) - 1) / int64(p); bal > lower {
						lower = bal
					}
					st := MakespanComm(sys, Options{}, sc, cm)
					dy := MakespanCommDynamic(sys, Options{}, sc, cm)
					for _, r := range []struct {
						kind string
						res  exec.SimResult
					}{{"static", st}, {"dynamic", dy}} {
						if r.res.Makespan < lower || r.res.Makespan > w {
							t.Errorf("%s/%s P=%d model %+v %s: span %d outside [%d, %d]",
								name, mname, p, cm, r.kind, r.res.Makespan, lower, w)
						}
						if r.res.TotalWork != w {
							t.Errorf("%s/%s P=%d model %+v %s: total work %d, inflated graph has %d",
								name, mname, p, cm, r.kind, r.res.TotalWork, w)
						}
					}
				}
			}
		}
	}
}
