package strategy

import (
	"repro/internal/sched"
)

// DefaultBlockSize is the blockcyclic column-block size when
// Options.BlockSize is unset.
const DefaultBlockSize = 4

// blockCyclicMapper deals fixed-size blocks of consecutive columns to
// processors cyclically: column j belongs to processor (j/b) mod P. Block
// size 1 is exactly the wrap mapping; growing b trades the wrap mapping's
// fine-grained balance for supernode locality (consecutive columns of a
// cluster tend to land together), the classical ScaLAPACK-style
// compromise between cyclic and contiguous layouts.
type blockCyclicMapper struct{}

func (blockCyclicMapper) Name() string { return "blockcyclic" }

func (blockCyclicMapper) Map(sys *Sys, p int, opts Options) (*sched.Schedule, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	bs := opts.BlockSize
	if bs <= 0 {
		bs = DefaultBlockSize
	}
	owner := make([]int32, sys.F.N)
	for j := range owner {
		owner[j] = int32((j / bs) % p)
	}
	return columnSchedule(sys, p, owner), nil
}

func init() { Register(blockCyclicMapper{}) }
