package strategy

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// newTestSys runs the analysis pipeline (MMD ordering, symbolic
// factorization) on a matrix and wraps it for the strategy registry.
func newTestSys(t testing.TB, m *sparse.Matrix) *Sys {
	t.Helper()
	perm := order.MMD(m)
	pm, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	return NewSys(symbolic.Analyze(pm), nil, nil)
}

type testMapper struct{ name string }

func (m testMapper) Name() string { return m.name }
func (m testMapper) Map(*Sys, int, Options) (*sched.Schedule, error) {
	return nil, nil
}

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"block", "blockcyclic", "blockgreedy", "contiguous",
		"contigtotal", "rectilinear", "refine", "subcube", "wrap"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("Lookup(%q) = false, want registered", want)
		}
	}
	if len(names) < 5 {
		t.Errorf("Names() = %v, want at least the five shipped strategies", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
	if _, ok := Lookup("no-such-strategy"); ok {
		t.Error("Lookup of unknown strategy succeeded")
	}
	if _, err := Map("no-such-strategy", nil, 4, Options{}); err == nil ||
		!strings.Contains(err.Error(), "wrap") {
		t.Errorf("Map(unknown) error = %v, want one listing registered names", err)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, m Mapper) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic", name)
			}
		}()
		Register(m)
	}
	mustPanic("duplicate", testMapper{name: "wrap"})
	mustPanic("empty", testMapper{name: ""})
}

func TestInvalidProcs(t *testing.T) {
	sys := newTestSys(t, gen.Grid5(4, 4))
	for _, name := range Names() {
		if _, err := Map(name, sys, 0, Options{}); err == nil {
			t.Errorf("%s: Map with p=0 succeeded, want error", name)
		}
	}
}

// TestStrategyInvariants checks, for every registered strategy x matrix x
// P, that the schedule gives every factor nonzero exactly one owner in
// range, that the per-processor Work vector matches an element-level
// recomputation and sums to the total work, and that the imbalance factor
// is well formed.
func TestStrategyInvariants(t *testing.T) {
	matrices := map[string]*sparse.Matrix{
		"grid5-6x6": gen.Grid5(6, 6),
		"grid9-8x8": gen.Grid9(8, 8),
		"fegrid5-5": gen.FEGrid5(5),
		"lap30":     gen.Lap30(),
	}
	for mname, m := range matrices {
		sys := newTestSys(t, m)
		for _, name := range Names() {
			for _, p := range []int{2, 4, 16} {
				sc, err := Map(name, sys, p, Options{})
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", name, mname, p, err)
				}
				checkSchedule(t, sys, sc, name+"/"+mname, p)
			}
		}
	}
}

func checkSchedule(t *testing.T, sys *Sys, sc *sched.Schedule, label string, p int) {
	t.Helper()
	if sc.P != p || len(sc.Work) != p {
		t.Fatalf("%s P=%d: schedule has P=%d, len(Work)=%d", label, p, sc.P, len(sc.Work))
	}
	if len(sc.ElemProc) != sys.F.NNZ() {
		t.Fatalf("%s P=%d: ElemProc covers %d nonzeros, factor has %d",
			label, p, len(sc.ElemProc), sys.F.NNZ())
	}
	perProc := make([]int64, p)
	for q, proc := range sc.ElemProc {
		if proc < 0 || int(proc) >= p {
			t.Fatalf("%s P=%d: element %d owned by out-of-range processor %d", label, p, q, proc)
		}
		perProc[proc] += sys.ElemWork[q]
	}
	var total int64
	for k := 0; k < p; k++ {
		if perProc[k] != sc.Work[k] {
			t.Fatalf("%s P=%d: Work[%d] = %d, element-level recomputation = %d",
				label, p, k, sc.Work[k], perProc[k])
		}
		total += sc.Work[k]
	}
	if total != sys.Total {
		t.Fatalf("%s P=%d: total scheduled work %d, want %d", label, p, total, sys.Total)
	}
	if a := sc.Imbalance(); a < 0 {
		t.Fatalf("%s P=%d: Imbalance() = %g < 0", label, p, a)
	}
	if e := sc.Efficiency(); e <= 0 || e > 1 {
		t.Fatalf("%s P=%d: Efficiency() = %g outside (0, 1]", label, p, e)
	}
}

// TestMoreProcsThanColumns is the P >= n regression test: every
// registered strategy must return a well-formed schedule (surplus
// processors simply idle) at P equal to, just above, and double the
// column count — the regime where naive splits produce empty parts or
// zero-width blocks. 2n exceeds 64 on the fixture, so the wide
// (map-based) traffic and fetch-attribution paths are exercised too. The
// usual invariants must keep holding: exact work conservation, in-range
// owners, fetch volumes partitioning the traffic total, and a zero comm
// model reproducing the compute-only dynamic simulation.
func TestMoreProcsThanColumns(t *testing.T) {
	sys := newTestSys(t, gen.Grid5(6, 6))
	n := sys.F.N
	// The loop below covers every registered strategy, but the
	// communication-optimal mappers are the ones whose splits degenerate
	// to empty blocks here (contigtotal's DP and rectilinear's probe both
	// pad trailing empty intervals); fail loudly if either ever
	// unregisters rather than silently losing the regression.
	for _, want := range []string{"contigtotal", "rectilinear"} {
		if _, ok := Lookup(want); !ok {
			t.Fatalf("strategy %q is not registered; the P >= n regression must cover it", want)
		}
	}
	for _, name := range Names() {
		for _, p := range []int{n, n + 1, 2 * n} {
			sc, err := Map(name, sys, p, Options{})
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, p, err)
			}
			checkSchedule(t, sys, sc, name+"/overprovisioned", p)
			tc := FetchStats(sys, Options{}, sc)
			if got, want := tc.TotalVol(), Traffic(sys, Options{}, sc).Total; got != want {
				t.Errorf("%s P=%d: fetch volumes sum to %d, traffic total %d", name, p, got, want)
			}
			var zero exec.CommModel
			if got, want := MakespanCommDynamic(sys, Options{}, sc, zero), MakespanDynamic(sys, Options{}, sc); got != want {
				t.Errorf("%s P=%d: zero model dynamic %+v != compute-only %+v", name, p, got, want)
			}
		}
	}
}

// TestRelaxedPartitionStrategies exercises the relaxed-partition
// (RelaxZeros > 0) branches: block-based strategies map the padded
// factor, so schedules cover more nonzeros and more work than the
// analysis factor, and Traffic/Makespan must simulate against the padded
// structure.
func TestRelaxedPartitionStrategies(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(10, 10))
	opts := Options{Part: core.Options{Grain: 25, MinClusterWidth: 4, RelaxZeros: 0.25}}
	part := sys.Partition(opts.Part)
	if part.F == sys.F || part.Relax.PaddedNNZ == 0 {
		t.Fatalf("relaxation did not pad the factor (stats %v); pick a laxer setting", part.Relax)
	}
	for _, name := range []string{"block", "blockgreedy", "refine"} {
		const p = 4
		o := opts
		o.Base = "block"
		sc, err := Map(name, sys, p, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.ElemProc) != part.F.NNZ() {
			t.Fatalf("%s relaxed: ElemProc covers %d nonzeros, padded factor has %d",
				name, len(sc.ElemProc), part.F.NNZ())
		}
		if got := sc.TotalWork(); got != part.TotalWork {
			t.Fatalf("%s relaxed: total scheduled work %d, want padded total %d",
				name, got, part.TotalWork)
		}
		tr := Traffic(sys, o, sc)
		if tr.P != p || tr.Total < 0 {
			t.Fatalf("%s relaxed: traffic result P=%d Total=%d", name, tr.P, tr.Total)
		}
		ms := Makespan(sys, o, sc)
		if ms.TotalWork != part.TotalWork {
			t.Fatalf("%s relaxed: makespan total work %d, want %d", name, ms.TotalWork, part.TotalWork)
		}
	}
	// Refinement over the relaxed base never worsens the bottleneck.
	o := opts
	o.Base = "block"
	baseSc, err := Map("block", sys, 4, o)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Refine(sys, o, baseSc)
	if err != nil {
		t.Fatal(err)
	}
	if ref.MaxWork() > baseSc.MaxWork() {
		t.Errorf("relaxed refine: MaxWork %d > base %d", ref.MaxWork(), baseSc.MaxWork())
	}
}

// TestEvaluateOptsMismatch: evaluating a block-granular schedule with
// Options selecting a different partition must fail loudly, not index
// out of range or silently miscount.
func TestEvaluateOptsMismatch(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(8, 8))
	sc, err := Map("block", sys, 4, Options{Part: core.Options{Grain: 25}})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s with mismatched opts did not panic", name)
			} else if !strings.Contains(fmt.Sprint(r), "does not match") {
				t.Errorf("%s panic = %v, want a schedule/partition mismatch message", name, r)
			}
		}()
		fn()
	}
	mustPanic("Traffic", func() { Traffic(sys, Options{}, sc) })
	mustPanic("Makespan", func() { Makespan(sys, Options{}, sc) })
}

// TestPartitionCacheNormalized: zero options and explicit defaults are
// the same partitioning and must share one cache entry.
func TestPartitionCacheNormalized(t *testing.T) {
	sys := newTestSys(t, gen.Grid5(6, 6))
	if sys.Partition(core.Options{}) != sys.Partition(core.Options{Grain: 4, MinClusterWidth: 4}) {
		t.Error("Partition(zero options) and Partition(explicit defaults) are distinct cache entries")
	}
}

// TestUnitGranularity checks that block-granular schedules keep UnitProc
// and ElemProc consistent and that simulators accept every strategy's
// schedule.
func TestSimulatorsAcceptAll(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(8, 8))
	opts := Options{}
	for _, name := range Names() {
		sc, err := Map(name, sys, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		tr := Traffic(sys, opts, sc)
		if tr.Total < 0 || tr.P != 4 {
			t.Errorf("%s: traffic result P=%d Total=%d", name, tr.P, tr.Total)
		}
		ms := Makespan(sys, opts, sc)
		if ms.Efficiency <= 0 || ms.Efficiency > 1 {
			t.Errorf("%s: makespan efficiency %g outside (0, 1]", name, ms.Efficiency)
		}
		if ms.TotalWork != sys.Total {
			t.Errorf("%s: makespan total work %d, want %d", name, ms.TotalWork, sys.Total)
		}
	}
}
