package strategy

import (
	"repro/internal/model"
	"repro/internal/sched"
)

// rectilinearMapper implements symmetric rectilinear block partitioning
// (Yasar, Rajamanickam et al. 2020, "On Symmetric Rectilinear Matrix
// Partitioning"): one set of diagonal intervals is shared by the rows
// and the columns of the symmetric factor structure, tiling it into
// p(p+1)/2 lower-triangle blocks whose maximum work the partitioner
// minimizes. The cuts are found by binary search over a greedy probe
// (the 1D prefix-sum probe of the contiguous split, lifted to 2D): the
// probe grows each diagonal interval row by row, charging every factor
// element (x, k) to the tile formed by x's interval and k's interval,
// and closes the interval just before any tile would exceed the
// candidate bound. Each diagonal block's columns then go to one
// processor, so the 1D column schedule inherits the symmetric block
// structure: processor t owns the whole block column under tile (t, t),
// and every non-local fetch crosses one of the shared cut lines.
type rectilinearMapper struct{}

func (rectilinearMapper) Name() string { return "rectilinear" }

func (rectilinearMapper) Map(sys *Sys, p int, opts Options) (*sched.Schedule, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	bounds := RectilinearCuts(sys.Ops, sys.ElemWork, p)
	return columnSchedule(sys, p, ownersFromBounds(sys.F.N, bounds)), nil
}

func init() { Register(rectilinearMapper{}) }

// RectilinearCuts computes the shared row/column interval boundaries of
// a symmetric rectilinear partition into at most p diagonal intervals,
// minimizing (over the greedy probe's reachable splits) the maximum
// work of the induced lower-triangle tiles: factor element (i, j)
// belongs to the tile formed by i's interval and j's interval, weighted
// by elemWork. The boundaries come back in ContiguousSplit's format
// (length p+1, bounds[0] = 0, bounds[p] = n, trailing intervals empty
// when fewer than p are needed). It panics on p < 1, the shared
// contract of the exported split helpers (see mustProcs).
//
// The bound is refined by binary search: a candidate tile bound B is
// probed by growing intervals greedily (close an interval just before
// any of its tiles would exceed B) and is feasible when at most p
// intervals cover all n indices. The search keeps the cuts of the
// smallest feasible bound.
func RectilinearCuts(ops *model.Ops, elemWork []int64, p int) []int {
	mustProcs(p)
	n := ops.F.N
	bounds := make([]int, p+1)
	bounds[p] = n
	if n == 0 {
		return bounds
	}
	var total int64
	for _, w := range elemWork {
		total += w
	}
	var best []int
	lo, hi := int64(0), total
	for lo < hi {
		mid := lo + (hi-lo)/2
		if cuts, ok := rectProbe(ops, elemWork, p, mid); ok {
			best = cuts
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if best == nil {
		// hi = total is always feasible (a single interval holds all
		// work), so the search can only land here if it never probed a
		// feasible bound below it.
		best, _ = rectProbe(ops, elemWork, p, total)
	}
	copy(bounds, best)
	for k := len(best); k < p; k++ {
		bounds[k] = n
	}
	return bounds
}

// rectProbe greedily grows diagonal intervals under the tile-work bound
// b, returning the cut positions (0, c1, ..., n) and whether at most p
// intervals sufficed. Adding index x to the current interval t charges
// the diagonal element (x, x) to tile (t, t) and every off-diagonal row
// entry (x, k) to tile (t, interval(k)); if any tile would exceed b the
// interval is closed at x and x retried as the start of the next one. A
// single index overflowing a fresh interval makes the *probe* give up —
// under the cuts it already committed to; a different placement of the
// earlier cuts could split the offending source interval and spread the
// row's charges below b, which is why the probe is a greedy heuristic
// and the binary search around it settles on the smallest bound the
// probe can certify, not a proven optimum (the brute-force test pins
// that the two coincide on its instance set).
func rectProbe(ops *model.Ops, elemWork []int64, p int, b int64) ([]int, bool) {
	f := ops.F
	n := f.N
	ivl := make([]int32, n)     // interval of each accepted index
	tile := make([]int64, p)    // loads of tiles (t, u), u <= t, current t
	addLoad := make([]int64, p) // scratch: tentative additions per u
	touched := make([]int32, 0, p)
	cuts := make([]int, 1, p+1) // cuts[0] = 0
	t, s := 0, 0                // current interval index and start
	for x := 0; x < n; x++ {
		for attempt := 0; ; attempt++ {
			cols := ops.RowCols(x)
			pos := ops.RowPositions(x)
			addLoad[t] = elemWork[f.ColPtr[x]] // diagonal -> tile (t, t)
			touched = append(touched[:0], int32(t))
			for i, k := range cols {
				u := ivl[k]
				if addLoad[u] == 0 {
					touched = append(touched, u)
				}
				addLoad[u] += elemWork[pos[i]]
			}
			fits := true
			for _, u := range touched {
				if tile[u]+addLoad[u] > b {
					fits = false
				}
			}
			if fits {
				for _, u := range touched {
					tile[u] += addLoad[u]
					addLoad[u] = 0
				}
				ivl[x] = int32(t)
				break
			}
			for _, u := range touched {
				addLoad[u] = 0
			}
			if x == s || attempt > 0 {
				return nil, false // a lone index overflows the bound
			}
			if t+1 >= p {
				return nil, false // out of intervals
			}
			// Close interval t just before x and retry x as the start of
			// interval t+1 (its off-diagonal charges move to the tiles of
			// the new row, so they must be recomputed).
			cuts = append(cuts, x)
			t++
			s = x
			for u := range tile {
				tile[u] = 0
			}
		}
	}
	cuts = append(cuts, n)
	return cuts, true
}
