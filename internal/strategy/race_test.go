package strategy

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/symbolic"
)

// TestSysConcurrentMappingShared pins the goroutine-safety of Sys — in
// particular the per-option partition cache — under the service workload:
// many concurrent mapping, partition and evaluation calls sharing one
// analysis. Run with -race (the CI race job does), any unguarded map
// access here fails the build.
func TestSysConcurrentMappingShared(t *testing.T) {
	a := gen.Grid9(16, 16)
	pm, err := a.Permute(order.MMD(a))
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(pm)
	sys := NewSys(f, nil, nil)

	optsets := []Options{
		{},
		{Part: core.Options{Grain: 8, MinClusterWidth: 4}},
		{Part: core.Options{Grain: 25, MinClusterWidth: 4}},
		{Part: core.Options{Grain: 8, MinClusterWidth: 4, RelaxZeros: 4}},
	}
	names := []string{"block", "wrap", "contiguous", "blockcyclic"}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				opts := optsets[(g+i)%len(optsets)]
				name := names[(g+i)%len(names)]
				sc, err := Map(name, sys, 4, opts)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				// Evaluation paths exercise the partition cache again.
				Traffic(sys, opts, sc)
				FetchStats(sys, opts, sc)
				Makespan(sys, opts, sc)
				sys.Partition(opts.Part)
			}
		}(g)
	}
	wg.Wait()

	// The cache must have coalesced: one partition per distinct
	// normalized option set, shared by pointer across goroutines.
	seen := map[*core.Partition]bool{}
	for _, opts := range optsets {
		seen[sys.Partition(opts.Part)] = true
	}
	if len(seen) != len(optsets) {
		t.Fatalf("distinct partitions = %d, want %d", len(seen), len(optsets))
	}
}
