// Package strategy is a pluggable registry of partitioning/mapping
// strategies for the sparse Cholesky factorization pipeline.
//
// The paper compares exactly two mapping schemes — the Section 3.4 block
// heuristic and the classical wrap (cyclic) column mapping — and the rest
// of the repository measures them with scheme-agnostic simulators (data
// traffic, load imbalance, dependency-delay makespan). This package
// decouples "how work is assigned to processors" from "how an assignment
// is evaluated": every strategy is a Mapper producing an ordinary
// sched.Schedule, so the existing simulators evaluate any registered
// scheme unchanged.
//
// Nine strategies ship with the registry:
//
//   - block: the paper's Section 3.4 unit-block allocation heuristic.
//   - blockgreedy: its work-aware variant (every fallback decision picks
//     the least-loaded processor; see sched.BlockMapGreedy).
//   - wrap: the classical wrap mapping, column j -> processor j mod P.
//   - contiguous: work-balanced contiguous column blocks with the optimal
//     bottleneck (minimal maximum block work) found by binary search over
//     a greedy feasibility probe on prefix work sums, in the spirit of
//     Ahrens, "Contiguous Graph Partitioning For Optimal Total Or
//     Bottleneck Communication" (2020).
//   - contigtotal: contiguous column blocks minimizing the *total*
//     communication volume (Ahrens 2020's other objective) by dynamic
//     programming over candidate boundaries with the fetch-attribution
//     cost oracle of traffic.ColumnRefs, subject to every block's work
//     staying within (1 + Options.Slack) of the optimal bottleneck.
//   - rectilinear: symmetric rectilinear block partitioning (Yasar et
//     al. 2020, "On Symmetric Rectilinear Matrix Partitioning"): one
//     diagonal interval structure shared by rows and columns, found by
//     binary search over a greedy probe that bounds the work of every
//     induced 2D tile; each diagonal block's columns go to one
//     processor, so the 1D schedule inherits the symmetric structure.
//   - blockcyclic: column blocks of a tunable size dealt cyclically to
//     processors, interpolating between wrap (block size 1) and
//     contiguous-like locality (large blocks).
//   - subcube: subtree-to-subcube allocation over the elimination tree
//     (proportional mapping): the shared top separator columns are
//     wrap-mapped across the whole processor set, which recursively splits
//     over sibling subtrees proportionally to subtree work until single
//     processors own whole subtrees.
//   - refine: a greedy local-refinement pass (Pulp-style) over any base
//     strategy's schedule, moving boundary units between processors while
//     the move strictly improves the chosen objective — the paper's load
//     imbalance factor A, the simulated data traffic, or the unified
//     comm-aware dynamic makespan ("commspan").
//
// New strategies register themselves with Register (typically from an
// init function) and immediately become available to the repro API,
// cmd/sweep -kind strategy, cmd/paperbench -table strategy and the
// cross-strategy tables.
package strategy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/symbolic"
	"repro/internal/traffic"
)

// Sys bundles the analysis products of one matrix that mappers consume:
// the symbolic factor, its operation structure and the per-element work
// vector. It also caches partitions per option set so block-based
// strategies (and refinement passes over them) share one partitioning.
type Sys struct {
	F        *symbolic.Factor
	Ops      *model.Ops
	ElemWork []int64
	// Total is the summed element work (the paper's Wtot).
	Total int64

	mu    sync.Mutex
	parts map[core.Options]*partEntry
}

type partEntry struct {
	part *core.Partition
	ops  *model.Ops // ops of part.F (== Sys.Ops unless relaxed)
}

// NewSys builds a Sys from an analyzed factor. ops and elemWork may be
// nil, in which case they are recomputed from f.
func NewSys(f *symbolic.Factor, ops *model.Ops, elemWork []int64) *Sys {
	if ops == nil {
		ops = model.NewOps(f)
	}
	if elemWork == nil {
		elemWork = model.ElementWork(ops)
	}
	return &Sys{
		F: f, Ops: ops, ElemWork: elemWork,
		Total: model.TotalWork(elemWork),
		parts: make(map[core.Options]*partEntry),
	}
}

// Partition returns the (cached) unit-block partition for the given
// options.
func (s *Sys) Partition(opts core.Options) *core.Partition {
	return s.partition(opts).part
}

func (s *Sys) partition(opts core.Options) *partEntry {
	opts = opts.Normalized() // one cache entry per distinct partitioning
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.parts == nil {
		s.parts = make(map[core.Options]*partEntry)
	}
	pe, ok := s.parts[opts]
	if !ok {
		part := core.NewPartition(s.F, opts)
		ops := s.Ops
		if part.F != s.F {
			// Relaxation padded the factor; simulators need its own ops.
			ops = model.NewOps(part.F)
		}
		pe = &partEntry{part: part, ops: ops}
		s.parts[opts] = pe
	}
	return pe
}

// ColumnWork returns the per-column work vector of the analysis factor.
func (s *Sys) ColumnWork() []int64 {
	return model.ColumnWork(s.F, s.ElemWork)
}

// Options carries the per-strategy knobs. The zero value selects sensible
// defaults everywhere, so Options{} is always a valid argument.
type Options struct {
	// Part holds the partitioner knobs (grain, minimum cluster width,
	// relaxation) used by the block-based strategies and by refinement
	// over them. The zero value selects the paper's defaults.
	Part core.Options
	// BlockSize is the column-block size of the blockcyclic strategy
	// (<= 0 selects the default of 4).
	BlockSize int
	// Base names the strategy whose schedule the refine strategy starts
	// from (empty selects "block").
	Base string
	// Objective selects what refine improves: "imbalance" (the paper's
	// load-imbalance factor A; the default), "traffic" (the simulated
	// data traffic), or "commspan" (the unified comm-aware dynamic
	// makespan under the Comm model).
	Objective string
	// MaxMoves caps the number of refinement moves considered (<= 0
	// selects a per-objective default).
	MaxMoves int
	// Slack is the relative work slack of the contigtotal strategy:
	// every block's work is bounded by (1 + Slack) times the optimal
	// contiguous bottleneck, so larger values widen the feasible set the
	// total-traffic DP minimizes over (never increasing the optimum).
	// Values <= 0 select 0, i.e. only bottleneck-optimal splits.
	Slack float64
	// Beta2 weights per-cut message counts into the contigtotal
	// objective: the DP minimizes volume + Beta2 x messages, where a
	// block receives one message per distinct source column it fetches
	// across its left cut (the per-cut counts traffic.ColumnRefs
	// exposes). Zero (the default) minimizes pure volume; raising Beta2
	// never increases the optimal split's message count (a scalarization
	// exchange argument, regression-tested on LAP30).
	Beta2 float64
	// Comm is the communication-time model the "commspan" refine
	// objective minimizes the dynamic makespan under. The zero value
	// charges nothing, making commspan minimize the compute-only dynamic
	// span.
	Comm exec.CommModel
	// Search, when non-nil, collects search telemetry (trial moves,
	// accept/reject counts, the objective trajectory) from the strategies
	// that search: the refine hill-climbs and the contigtotal DP. Mapping
	// results are unaffected; nil (the default) records nothing.
	Search *obs.SearchTelemetry
}

// Mapper is one partitioning/mapping strategy. Map assigns the
// factorization work of sys to p processors and returns the schedule;
// the schedule's ElemProc must cover every nonzero of the factor the
// strategy worked on (sys.F, or the relaxed partition factor for
// block-based strategies).
type Mapper interface {
	Name() string
	Map(sys *Sys, p int, opts Options) (*sched.Schedule, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Mapper)
)

// Register adds a strategy to the registry. It panics on an empty name or
// a duplicate registration, mirroring database/sql.Register.
func Register(m Mapper) {
	regMu.Lock()
	defer regMu.Unlock()
	name := m.Name()
	if name == "" {
		panic("strategy: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("strategy: Register called twice for %q", name))
	}
	registry[name] = m
}

// Lookup returns the registered strategy with the given name.
func Lookup(name string) (Mapper, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := registry[name]
	return m, ok
}

// Names returns the sorted names of all registered strategies.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	//repro:allow maporder -- key collection for the sort.Strings below; iteration order never escapes
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Map runs the named strategy, returning a descriptive error when the
// name is unknown.
func Map(name string, sys *Sys, p int, opts Options) (*sched.Schedule, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	m, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("strategy: unknown strategy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return m.Map(sys, p, opts)
}

// checkProcs is the error half of the processor-count contract: every
// Mapper.Map validates p with it and returns the error, while the
// exported low-level split helpers panic via mustProcs (see split.go).
func checkProcs(p int) error {
	if p < 1 {
		return fmt.Errorf("strategy: invalid processor count %d", p)
	}
	return nil
}

// leastLoaded returns the index of the smallest entry of load, ties to
// the lowest index — the argmin scan the refinement passes and the
// subcube packer share.
func leastLoaded(load []int64) int {
	best := 0
	for i := 1; i < len(load); i++ {
		if load[i] < load[best] {
			best = i
		}
	}
	return best
}

// columnSchedule derives a schedule from a column-to-processor assignment
// (owner[j] is the processor of column j).
func columnSchedule(sys *Sys, p int, owner []int32) *sched.Schedule {
	f := sys.F
	s := &sched.Schedule{
		P:        p,
		ElemProc: make([]int32, f.NNZ()),
		Work:     make([]int64, p),
	}
	for j := 0; j < f.N; j++ {
		proc := owner[j]
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			s.ElemProc[q] = proc
			s.Work[proc] += sys.ElemWork[q]
		}
	}
	return s
}

// columnOwners recovers the column-to-processor assignment of a
// column-granular schedule (every element of a column shares one owner).
func columnOwners(f *symbolic.Factor, sc *sched.Schedule) []int32 {
	owner := make([]int32, f.N)
	for j := 0; j < f.N; j++ {
		owner[j] = sc.ElemProc[f.ColPtr[j]]
	}
	return owner
}

// checkPartMatch panics when a block-granular schedule does not belong
// to the partition selected by opts.Part (e.g. the schedule was mapped
// with different grain/width/relaxation options), the same loud failure
// traffic.FetchVolumes gives for schedule/partition mismatches.
func checkPartMatch(part *core.Partition, sc *sched.Schedule) {
	if len(sc.UnitProc) != len(part.Units) || len(sc.ElemProc) != part.F.NNZ() {
		panic(fmt.Sprintf(
			"strategy: schedule (units=%d, elems=%d) does not match the partition of opts.Part (units=%d, elems=%d); evaluate with the same Options the schedule was mapped with",
			len(sc.UnitProc), len(sc.ElemProc), len(part.Units), part.F.NNZ()))
	}
}

// Traffic simulates the data traffic of a strategy schedule, honoring
// relaxed partitions for block-granular schedules (the strategy analogue
// of repro's TrafficPart). opts must be the Options the schedule was
// mapped with.
func Traffic(sys *Sys, opts Options, sc *sched.Schedule) *traffic.Result {
	if sc.UnitProc != nil {
		pe := sys.partition(opts.Part)
		checkPartMatch(pe.part, sc)
		if pe.part.F != sys.F {
			return traffic.Simulate(pe.ops, sc)
		}
	}
	return traffic.Simulate(sys.Ops, sc)
}

// Tasks builds the makespan task graph of a strategy schedule: unit-block
// tasks for block-granular schedules, column tasks otherwise. opts must be
// the Options the schedule was mapped with.
func Tasks(sys *Sys, opts Options, sc *sched.Schedule) []exec.Task {
	if sc.UnitProc != nil {
		part := sys.Partition(opts.Part)
		checkPartMatch(part, sc)
		return exec.BlockTasks(part, sc)
	}
	owner := columnOwners(sys.F, sc)
	return exec.ColumnTasksMapped(sys.F, sys.Ops, sys.ElemWork, owner)
}

// FetchStats attributes the schedule's non-local fetches to its makespan
// tasks (per unit block or per column) with consolidated message counts,
// honoring relaxed partitions like Traffic does. The volumes partition
// Traffic(sys, opts, sc).Total exactly, which is what lets the comm-aware
// makespan charge every fetch exactly once. opts must be the Options the
// schedule was mapped with.
func FetchStats(sys *Sys, opts Options, sc *sched.Schedule) *traffic.TaskComm {
	if sc.UnitProc != nil {
		pe := sys.partition(opts.Part)
		checkPartMatch(pe.part, sc)
		return traffic.FetchStats(pe.part, pe.ops, sc)
	}
	return traffic.FetchStatsColumns(sys.Ops, sc)
}

// Makespan simulates dependency-delay execution of a strategy schedule:
// unit-block tasks for block-granular schedules, column tasks otherwise.
// opts must be the Options the schedule was mapped with.
func Makespan(sys *Sys, opts Options, sc *sched.Schedule) exec.SimResult {
	return MakespanProbe(sys, opts, sc, nil)
}

// MakespanProbe is Makespan with a tracing probe attached (one
// exec.TaskEvent per task). A nil probe reproduces Makespan bit for bit.
func MakespanProbe(sys *Sys, opts Options, sc *sched.Schedule, probe exec.Probe) exec.SimResult {
	return exec.SimulateMakespanProbe(Tasks(sys, opts, sc), sc.P, probe)
}

// MakespanDynamic is Makespan with the dynamic critical-path-priority
// ready queue on each processor instead of static scan order.
func MakespanDynamic(sys *Sys, opts Options, sc *sched.Schedule) exec.SimResult {
	return MakespanDynamicProbe(sys, opts, sc, nil)
}

// MakespanDynamicProbe is MakespanDynamic with a tracing probe attached.
func MakespanDynamicProbe(sys *Sys, opts Options, sc *sched.Schedule, probe exec.Probe) exec.SimResult {
	return exec.SimulateMakespanDynamicProbe(Tasks(sys, opts, sc), sc.P, probe)
}

// MakespanComm simulates dependency-delay execution with
// communication-aware task durations: every task is charged its compute
// work plus cm.Cost of the fetch volume and message count FetchStats
// attributes to it. With a zero model the result is identical to Makespan.
func MakespanComm(sys *Sys, opts Options, sc *sched.Schedule, cm exec.CommModel) exec.SimResult {
	return MakespanCommProbe(sys, opts, sc, cm, nil)
}

// MakespanCommProbe is MakespanComm with a tracing probe attached; events
// split each task's duration into its compute and comm shares.
func MakespanCommProbe(sys *Sys, opts Options, sc *sched.Schedule, cm exec.CommModel, probe exec.Probe) exec.SimResult {
	tc := FetchStats(sys, opts, sc)
	return exec.SimulateMakespanCommProbe(Tasks(sys, opts, sc), sc.P, cm, tc.Vol, tc.Msgs, probe)
}

// MakespanCommDynamic is MakespanComm with the dynamic ready queue; with a
// zero model it is identical to MakespanDynamic.
func MakespanCommDynamic(sys *Sys, opts Options, sc *sched.Schedule, cm exec.CommModel) exec.SimResult {
	return MakespanCommDynamicProbe(sys, opts, sc, cm, nil)
}

// MakespanCommDynamicProbe is MakespanCommDynamic with a tracing probe
// attached; events split each task's duration into its compute and comm
// shares.
func MakespanCommDynamicProbe(sys *Sys, opts Options, sc *sched.Schedule, cm exec.CommModel, probe exec.Probe) exec.SimResult {
	tc := FetchStats(sys, opts, sc)
	return exec.SimulateMakespanDynamicCommProbe(Tasks(sys, opts, sc), sc.P, cm, tc.Vol, tc.Msgs, probe)
}
