package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/artifact"
	"repro/internal/exec"
	"repro/internal/numeric"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// errNoValues reports a values-stage operation on a pattern-only matrix.
var errNoValues = errors.New("pipeline: matrix has no values")

// Kernel selects the numeric factorization kernel of a Factor.
type Kernel int

const (
	// Cholesky is A = L·Lᵀ (symmetric positive definite).
	Cholesky Kernel = iota
	// LDL is the square-root-free A = L·D·Lᵀ (symmetric indefinite).
	LDL
)

// String returns the kernel name ("cholesky" or "ldl").
func (k Kernel) String() string {
	switch k {
	case Cholesky:
		return "cholesky"
	case LDL:
		return "ldl"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

func (k Kernel) valid() error {
	if k != Cholesky && k != LDL {
		return fmt.Errorf("pipeline: unknown kernel %d", int(k))
	}
	return nil
}

// Factor is the numeric-stage artifact: factor values over a symbolic
// structure, carrying the Plan it was built from. Its solve methods never
// re-factorize — holding a Factor means factorization work is done.
type Factor struct {
	Plan   *Plan
	Kernel Kernel
	// F is the structure Val aligns with: the analysis factor, or the
	// plan's relaxed partition factor when the 1D block engine ran over a
	// zero-padded superset structure.
	F   *symbolic.Factor
	Val []float64
	// Key content-addresses this artifact by (pattern, ordering, values,
	// kernel) — plus the plan for block-engine factors, whose rounding
	// depends on the partition (serial and exact-chain-order parallel
	// factors are bit-identical and share one key).
	Key artifact.Key

	solveOnce sync.Once
	solveSch  *sched.Schedule
	solveErr  error
}

// FactorKey returns the content address of the Factor that Factorize
// (parallel=false) or FactorizeParallel (parallel=true) would build from
// this plan and a's values, without factorizing. Serial factors, 2D
// engine factors and lifted column-granular 1D factors share one key:
// those engines replay the exact serial update order (numeric.Chains)
// and are bit-for-bit interchangeable. The 1D block engine accumulates
// updates by structure intersection — and may run over a relaxed,
// zero-padded factor — so its key mixes in the plan.
func (pl *Plan) FactorKey(k Kernel, a *sparse.Matrix, parallel bool) artifact.Key {
	h := artifact.NewHasher("factor")
	h.Key(pl.An.Key)
	h.Str(k.String())
	h.Key(artifact.Key{Kind: "values", Sum: artifact.ValuesSum(a)})
	if parallel && pl.S2 == nil && pl.S1.UnitProc != nil {
		h.Str("blockengine")
		h.Key(pl.Key)
	}
	return h.Sum()
}

// Factorize computes the numeric factor of a — a matrix with this
// analysis' pattern — with the serial left-looking kernel. The values are
// bit-for-bit what the monolithic System.Factorize/FactorizeLDL produce.
func (pl *Plan) Factorize(a *sparse.Matrix, k Kernel) (*Factor, error) {
	if err := k.valid(); err != nil {
		return nil, err
	}
	pm, err := pl.An.PermutedWithValues(a)
	if err != nil {
		return nil, err
	}
	var val []float64
	switch k {
	case Cholesky:
		c, err := numeric.Factorize(pm, pl.An.F)
		if err != nil {
			return nil, err
		}
		val = c.Val
	case LDL:
		l, err := numeric.FactorizeLDL(pm, pl.An.F)
		if err != nil {
			return nil, err
		}
		val = l.Val
	}
	return &Factor{
		Plan: pl, Kernel: k, F: pl.An.F, Val: val,
		Key: pl.FactorKey(k, a, false),
	}, nil
}

// FactorizeParallel computes the numeric factor with one worker goroutine
// per processor of the plan. 2D plans and column-granular 1D plans run
// the exact-serial-chain-order engine (bit-identical to Factorize);
// block-granular 1D plans run the unit-block engine over the plan's
// partition, which may be a relaxed superset structure.
func (pl *Plan) FactorizeParallel(a *sparse.Matrix, k Kernel) (*Factor, error) {
	if err := k.valid(); err != nil {
		return nil, err
	}
	pm, err := pl.An.PermutedWithValues(a)
	if err != nil {
		return nil, err
	}
	tasks, elemTask, chain, err := pl.chainTasks()
	if err != nil {
		return nil, err
	}
	var nf *exec.NumericFactor
	if chain {
		if k == Cholesky {
			nf, err = exec.ParallelFactorize2D(pm, pl.An.F, pl.P, tasks, elemTask)
		} else {
			nf, err = exec.ParallelFactorize2DLDL(pm, pl.An.F, pl.P, tasks, elemTask)
		}
	} else {
		part := pl.An.sys.Partition(pl.Opts.Part)
		if k == Cholesky {
			nf, err = exec.ParallelFactorize(pm, part, pl.S1)
		} else {
			nf, err = exec.ParallelFactorizeLDL(pm, part, pl.S1)
		}
	}
	if err != nil {
		return nil, err
	}
	return &Factor{
		Plan: pl, Kernel: k, F: nf.F, Val: nf.Val,
		Key: pl.FactorKey(k, a, true),
	}, nil
}

// N returns the system dimension.
func (fa *Factor) N() int { return fa.F.N }

// permute maps a right-hand side into elimination order; unpermute maps a
// solution back.
func (fa *Factor) permute(b []float64) []float64 {
	pb := make([]float64, len(b))
	for k, old := range fa.Plan.An.Perm {
		pb[k] = b[old]
	}
	return pb
}

func (fa *Factor) unpermute(px []float64) []float64 {
	x := make([]float64, len(px))
	for k, old := range fa.Plan.An.Perm {
		x[old] = px[k]
	}
	return x
}

// solveSerial runs the serial triangular solves on a permuted rhs.
func (fa *Factor) solveSerial(pb []float64) []float64 {
	if fa.Kernel == LDL {
		return (&numeric.LDL{F: fa.F, Val: fa.Val}).Solve(pb)
	}
	return (&numeric.Cholesky{F: fa.F, Val: fa.Val}).Solve(pb)
}

// Solve solves A·x = b in the original variable order with the serial
// triangular sweeps. It performs no factorization work: the factor values
// are already held. For serial-kernel factors the result is bit-for-bit
// what the monolithic System.Solve produces.
func (fa *Factor) Solve(b []float64) ([]float64, error) {
	if len(b) != fa.F.N {
		return nil, fmt.Errorf("pipeline: rhs length %d, want %d", len(b), fa.F.N)
	}
	return fa.unpermute(fa.solveSerial(fa.permute(b))), nil
}

// SolveBatch solves one system per right-hand side, fanning the
// independent solves out over worker goroutines. Each solution is
// bit-for-bit identical to Solve on that rhs alone.
func (fa *Factor) SolveBatch(bs [][]float64) ([][]float64, error) {
	for i, b := range bs {
		if len(b) != fa.F.N {
			return nil, fmt.Errorf("pipeline: rhs %d length %d, want %d", i, len(b), fa.F.N)
		}
	}
	xs := make([][]float64, len(bs))
	workers := runtime.NumCPU()
	if workers > len(bs) {
		workers = len(bs)
	}
	if workers < 1 {
		workers = 1
	}
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//repro:allow nondeterminism -- each worker claims whole independent right-hand sides and writes only its own xs[i] slot; TestSolveBatchBitIdentical pins every solution against the serial Solve
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= len(bs) {
					return
				}
				xs[i] = fa.unpermute(fa.solveSerial(fa.permute(bs[i])))
			}
		}()
	}
	wg.Wait()
	return xs, nil
}

// solveSchedule derives the column-ownership schedule of the parallel
// sweeps from the plan, expanded over this factor's structure. Built once
// and reused by every SolveParallel call.
func (fa *Factor) solveSchedule() (*sched.Schedule, error) {
	fa.solveOnce.Do(func() {
		owner := fa.Plan.columnOwners()
		f := fa.F
		ep := make([]int32, f.NNZ())
		for j := 0; j < f.N; j++ {
			for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
				ep[q] = owner[j]
			}
		}
		fa.solveSch = &sched.Schedule{P: fa.Plan.P, ElemProc: ep}
	})
	return fa.solveSch, fa.solveErr
}

// SolveParallel solves A·x = b with the parallel fan-in triangular sweeps
// (one worker per processor of the plan, columns owned per the plan's
// diagonal ownership), for either kernel. Like Solve it never
// re-factorizes. The result is deterministic run to run; it differs from
// Solve only in floating-point summation order.
func (fa *Factor) SolveParallel(b []float64) ([]float64, error) {
	if len(b) != fa.F.N {
		return nil, fmt.Errorf("pipeline: rhs length %d, want %d", len(b), fa.F.N)
	}
	s, err := fa.solveSchedule()
	if err != nil {
		return nil, err
	}
	pb := fa.permute(b)
	var px []float64
	if fa.Kernel == LDL {
		px, err = exec.ParallelSolveLDL(&numeric.LDL{F: fa.F, Val: fa.Val}, s, pb)
	} else {
		px, err = exec.ParallelSolve(&numeric.Cholesky{F: fa.F, Val: fa.Val}, s, pb)
	}
	if err != nil {
		return nil, err
	}
	return fa.unpermute(px), nil
}
