package pipeline

import (
	"fmt"
	"sync"

	"repro/internal/artifact"
	"repro/internal/exec"
	"repro/internal/part2d"
	"repro/internal/sched"
	"repro/internal/strategy"
	"repro/internal/traffic"
)

// Plan is the mapping-stage artifact: one strategy's assignment of the
// analyzed factorization to P processors, plus the derived products the
// simulators and the parallel engines consume — the makespan task graph
// and the per-task fetch attribution. Exactly one of S1 (1D column/block
// schedule) and S2 (2D tile schedule) is non-nil.
type Plan struct {
	An       *Analysis
	Strategy string
	P        int
	Opts     strategy.Options
	S1       *sched.Schedule
	S2       *part2d.Schedule2D
	// Tasks is the makespan task graph of the schedule and Fetch its
	// fetch attribution (volumes summing to the traffic total, plus
	// consolidated message counts).
	Tasks []exec.Task
	Fetch *traffic.TaskComm
	// Key content-addresses this artifact: the analysis key plus the
	// strategy name, processor count and every mapping-relevant option.
	Key artifact.Key

	// elemTask maps factor elements to task IDs (2D plans only).
	elemTask []int32
	// lift caches the 2D lift of a column-granular 1D schedule, built on
	// first parallel factorization.
	liftOnce sync.Once
	lift     *part2d.Schedule2D
	liftErr  error
	liftTask []exec.Task
	liftElem []int32
}

// hashOptions mixes every mapping-relevant field of opts into h.
// Options.Search is telemetry, not a mapping parameter, and is excluded;
// Part is normalized first so option sets that select the same partition
// share a key.
func hashOptions(h *artifact.Hasher, opts strategy.Options) {
	po := opts.Part.Normalized()
	h.I64(int64(po.Grain))
	h.I64(int64(po.MinClusterWidth))
	h.I64(int64(po.RelaxZeros))
	h.I64(int64(opts.BlockSize))
	h.Str(opts.Base)
	h.Str(opts.Objective)
	h.I64(int64(opts.MaxMoves))
	h.F64(opts.Slack)
	h.F64(opts.Beta2)
	h.F64(opts.Comm.Alpha)
	h.F64(opts.Comm.Beta)
}

// checkProcs mirrors strategy.checkProcs at the pipeline entry points,
// so an invalid P surfaces as an error before any key is computed or any
// mapper runs.
func checkProcs(p int) error {
	if p < 1 {
		return fmt.Errorf("pipeline: invalid processor count %d", p)
	}
	return nil
}

// PlanKey returns the content address of the plan (name, p, opts) would
// build from this analysis; dim2 selects the 2D registry. Computing the
// key never runs the mapper, which is what lets a cache decide hit/miss
// first. An invalid P has no plan and therefore no address: PlanKey
// panics, and the error-returning entry points validate before keying.
func (an *Analysis) PlanKey(name string, p int, opts strategy.Options, dim2 bool) artifact.Key {
	if p < 1 {
		panic(fmt.Sprintf("pipeline: invalid processor count %d", p))
	}
	h := artifact.NewHasher("plan")
	h.Key(an.Key)
	if dim2 {
		h.Str("2d")
	} else {
		h.Str("1d")
	}
	h.Str(name)
	h.I64(int64(p))
	hashOptions(h, opts)
	return h.Sum()
}

// Plan maps the analysis with the named 1D strategy and derives the task
// graph and fetch stats the downstream stages need.
func (an *Analysis) Plan(name string, p int, opts strategy.Options) (*Plan, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	sc, err := strategy.Map(name, an.sys, p, opts)
	if err != nil {
		return nil, err
	}
	return &Plan{
		An: an, Strategy: name, P: p, Opts: opts, S1: sc,
		Tasks: strategy.Tasks(an.sys, opts, sc),
		Fetch: strategy.FetchStats(an.sys, opts, sc),
		Key:   an.PlanKey(name, p, opts, false),
	}, nil
}

// Plan2D maps the analysis with the named 2D strategy from the part2d
// registry.
func (an *Analysis) Plan2D(name string, p int, opts strategy.Options) (*Plan, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	s2, err := part2d.Map2D(name, an.sys, p, opts)
	if err != nil {
		return nil, err
	}
	tasks, elemTask := part2d.Tasks(an.Ops, an.ElemWork, s2)
	return &Plan{
		An: an, Strategy: name, P: p, Opts: opts, S2: s2,
		Tasks:    tasks,
		Fetch:    part2d.FetchStats(an.Ops, s2, len(tasks), elemTask),
		Key:      an.PlanKey(name, p, opts, true),
		elemTask: elemTask,
	}, nil
}

// Is2D reports whether the plan carries a 2D tile schedule.
func (pl *Plan) Is2D() bool { return pl.S2 != nil }

// TrafficTotal returns the simulated data-traffic total of the plan's
// schedule (the fetch volumes partition it exactly).
func (pl *Plan) TrafficTotal() int64 { return pl.Fetch.TotalVol() }

// Makespan simulates dependency-delay execution of the plan's task graph
// with static per-processor order.
func (pl *Plan) Makespan() exec.SimResult {
	return exec.SimulateMakespan(pl.Tasks, pl.P)
}

// MakespanComm is Makespan with communication-aware task durations under
// cm, charging each task its attributed fetch volume and message count.
func (pl *Plan) MakespanComm(cm exec.CommModel) exec.SimResult {
	return exec.SimulateMakespanComm(pl.Tasks, pl.P, cm, pl.Fetch.Vol, pl.Fetch.Msgs)
}

// columnOwners returns the processor owning each column's diagonal under
// this plan (over the structure the plan's schedule covers).
func (pl *Plan) columnOwners() []int32 {
	n := pl.An.F.N
	owner := make([]int32, n)
	switch {
	case pl.S2 != nil:
		for j := 0; j < n; j++ {
			b := int(pl.S2.BlockOf[j])
			owner[j] = pl.S2.Owner[part2d.TileID(b, b)]
		}
	case pl.S1.UnitProc != nil:
		f := pl.An.sys.Partition(pl.Opts.Part).F
		for j := 0; j < n; j++ {
			owner[j] = pl.S1.ElemProc[f.ColPtr[j]]
		}
	default:
		f := pl.An.F
		for j := 0; j < n; j++ {
			owner[j] = pl.S1.ElemProc[f.ColPtr[j]]
		}
	}
	return owner
}

// chainTasks returns a task graph driving the exact-serial-order 2D
// engine for this plan: the plan's own graph for 2D plans, or the lifted
// graph for column-granular 1D plans. Block-granular 1D plans (which may
// run over a relaxed factor) return ok=false and use the 1D block engine
// instead.
func (pl *Plan) chainTasks() (tasks []exec.Task, elemTask []int32, ok bool, err error) {
	if pl.S2 != nil {
		return pl.Tasks, pl.elemTask, true, nil
	}
	if pl.S1.UnitProc != nil {
		return nil, nil, false, nil
	}
	pl.liftOnce.Do(func() {
		s2, err := part2d.Lift(pl.An.sys, pl.S1, pl.Strategy)
		if err != nil {
			pl.liftErr = fmt.Errorf("pipeline: lifting %q schedule: %w", pl.Strategy, err)
			return
		}
		pl.lift = s2
		pl.liftTask, pl.liftElem = part2d.Tasks(pl.An.Ops, pl.An.ElemWork, s2)
	})
	if pl.liftErr != nil {
		return nil, nil, false, pl.liftErr
	}
	return pl.liftTask, pl.liftElem, true, nil
}
