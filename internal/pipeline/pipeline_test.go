package pipeline

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/numeric"
	"repro/internal/order"
	"repro/internal/strategy"
)

func bitEqual(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d differs bitwise: %g vs %g", what, i, got[i], want[i])
		}
	}
}

// TestAnalysisMatchesDirectPipeline pins the Analysis artifact against
// the hand-rolled pipeline: same ordering, same symbolic factor, and
// PermuteValues bitwise equal to a structural Permute.
func TestAnalysisMatchesDirectPipeline(t *testing.T) {
	a := gen.Lap30()
	an, err := NewAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	perm := order.MMD(a)
	for i := range perm {
		if an.Perm[i] != perm[i] {
			t.Fatalf("ordering differs at %d", i)
		}
	}
	pm, err := a.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if an.F.NNZ() == 0 || an.Permuted.NNZ() != pm.NNZ() {
		t.Fatal("permuted pattern differs")
	}
	pv, err := an.PermuteValues(a)
	if err != nil {
		t.Fatal(err)
	}
	bitEqual(t, pv, pm.Val, "PermuteValues vs Permute")
	if an.Pattern.Val != nil || an.Permuted.Val != nil {
		t.Fatal("analysis retained numeric values; it must be pattern-only")
	}
}

// TestFactorChainEnginesBitIdentical pins the key-sharing contract: the
// serial kernel, the 2D engine and the lifted column-granular 1D engine
// produce bitwise identical values (so one cache key serves all three),
// for both kernels.
func TestFactorChainEnginesBitIdentical(t *testing.T) {
	a := gen.Lap30()
	an, err := NewAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kernel{Cholesky, LDL} {
		base, err := an.Plan("wrap", 4, strategy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := base.Factorize(a, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 4, 16} {
			pl1, err := an.Plan("wrap", p, strategy.Options{})
			if err != nil {
				t.Fatal(err)
			}
			fa1, err := pl1.FactorizeParallel(a, k)
			if err != nil {
				t.Fatal(err)
			}
			bitEqual(t, fa1.Val, serial.Val, "lifted 1D engine "+k.String())
			if fa1.Key != serial.Key {
				t.Fatalf("lifted 1D factor key %s != serial key %s", fa1.Key, serial.Key)
			}
			pl2, err := an.Plan2D("rect2d", p, strategy.Options{})
			if err != nil {
				t.Fatal(err)
			}
			fa2, err := pl2.FactorizeParallel(a, k)
			if err != nil {
				t.Fatal(err)
			}
			bitEqual(t, fa2.Val, serial.Val, "2D engine "+k.String())
			if fa2.Key != serial.Key {
				t.Fatalf("2D factor key %s != serial key %s", fa2.Key, serial.Key)
			}
		}
	}
}

// TestFactorBlockEngineKeyIncludesPlan pins that the 1D block engine —
// whose rounding depends on the partition, and which may run over a
// relaxed structure — never shares a key with serial factors.
func TestFactorBlockEngineKeyIncludesPlan(t *testing.T) {
	a := gen.Grid9(15, 15)
	an, err := NewAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := an.Plan("block", 4, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.S1.UnitProc == nil {
		t.Fatal("block plan is not block-granular")
	}
	serial, err := pl.Factorize(a, Cholesky)
	if err != nil {
		t.Fatal(err)
	}
	par, err := pl.FactorizeParallel(a, Cholesky)
	if err != nil {
		t.Fatal(err)
	}
	if par.Key == serial.Key {
		t.Fatal("block-engine factor key must differ from the serial key")
	}
	// And it must solve correctly even over a relaxed factor.
	relaxed, err := an.Plan("block", 4, strategy.Options{Part: core.Options{RelaxZeros: 8}})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := relaxed.FactorizeParallel(a, LDL)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, an.N())
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x, err := fr.SolveParallel(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := numeric.ResidualNorm(a, x, b); r > 1e-8 {
		t.Fatalf("relaxed block LDL parallel solve residual %g", r)
	}
}

// TestSolveBatchBitIdentical pins SolveBatch against one-at-a-time Solve.
func TestSolveBatchBitIdentical(t *testing.T) {
	a := gen.Grid9(12, 12)
	an, err := NewAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := an.Plan("contiguous", 4, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := pl.Factorize(a, Cholesky)
	if err != nil {
		t.Fatal(err)
	}
	bs := make([][]float64, 9)
	for r := range bs {
		bs[r] = make([]float64, an.N())
		for i := range bs[r] {
			bs[r][i] = float64((i*(r+3))%13) - 6
		}
	}
	xs, err := fa.SolveBatch(bs)
	if err != nil {
		t.Fatal(err)
	}
	for r := range bs {
		want, err := fa.Solve(bs[r])
		if err != nil {
			t.Fatal(err)
		}
		bitEqual(t, xs[r], want, "batch rhs")
	}
}

// TestCacheServesIdenticalArtifacts is the cache-correctness pin: a
// Factor reached through cache-hit Analysis and Plan artifacts is bitwise
// identical to one built cold, and repeat requests do zero symbolic,
// mapping or factorization work (all counters, no rebuilds).
func TestCacheServesIdenticalArtifacts(t *testing.T) {
	a := gen.Lap30()
	cold, err := NewAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	coldPl, err := cold.Plan("wrap", 4, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldFa, err := coldPl.Factorize(a, Cholesky)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache(0)
	// First pass: three misses.
	an, err := c.Analysis(a)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := c.Plan(an, "wrap", 4, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := c.Factor(pl, a, Cholesky)
	if err != nil {
		t.Fatal(err)
	}
	bitEqual(t, fa.Val, coldFa.Val, "cached-path factor vs cold factor")
	st := c.Stats()
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("cold pass stats %+v, want 3 misses 0 hits", st)
	}

	// Second pass with a *different* matrix object of the same pattern
	// and values: all hits, same artifact pointers.
	a2 := gen.Lap30()
	an2, err := c.Analysis(a2)
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := c.Plan(an2, "wrap", 4, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fa2, err := c.Factor(pl2, a2, Cholesky)
	if err != nil {
		t.Fatal(err)
	}
	if an2 != an || pl2 != pl || fa2 != fa {
		t.Fatal("repeat requests rebuilt artifacts instead of hitting the cache")
	}
	st = c.Stats()
	if st.Misses != 3 || st.Hits != 3 {
		t.Fatalf("warm pass stats %+v, want 3 misses 3 hits", st)
	}
	byKind := c.StatsByKind()
	for _, kind := range []string{"analysis", "plan", "factor"} {
		if byKind[kind].Hits != 1 || byKind[kind].Misses != 1 {
			t.Fatalf("kind %s stats %+v, want 1 hit 1 miss", kind, byKind[kind])
		}
	}

	// Different values, same pattern: analysis and plan hit, factor
	// misses (values are part of the factor key).
	a3 := gen.Lap30()
	a3.Val[0] *= 2
	an3, err := c.Analysis(a3)
	if err != nil {
		t.Fatal(err)
	}
	if an3 != an {
		t.Fatal("same pattern with new values must reuse the analysis")
	}
	pl3, err := c.Plan(an3, "wrap", 4, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fa3, err := c.Factor(pl3, a3, Cholesky)
	if err != nil {
		t.Fatal(err)
	}
	if fa3 == fa {
		t.Fatal("different values must build a different factor")
	}
}

// TestKeyDeterminism is the hash-determinism pin: equal inputs collide,
// different inputs (pattern, permutation, strategy, P, options, kernel,
// values, engine) do not.
func TestKeyDeterminism(t *testing.T) {
	a := gen.Grid9(10, 10)
	b := gen.Grid9(10, 10)
	if AnalysisKey(a) != AnalysisKey(b) {
		t.Fatal("same pattern produced different analysis keys")
	}
	perm := order.MMD(a)
	pm, err := a.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if AnalysisKey(a) == AnalysisKey(pm) {
		t.Fatal("permuted pattern shares the analysis key")
	}
	if AnalysisKey(a) == AnalysisKey(gen.Grid9(10, 11)) {
		t.Fatal("different pattern shares the analysis key")
	}
	an, err := NewAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	anOrd, err := NewAnalysisOrdered(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	if an.Key == anOrd.Key {
		t.Fatal("explicit ordering shares the MMD analysis key")
	}
	base := an.PlanKey("wrap", 4, strategy.Options{}, false)
	if base != an.PlanKey("wrap", 4, strategy.Options{}, false) {
		t.Fatal("plan key not deterministic")
	}
	variants := []struct {
		name string
		key  interface{ String() string }
	}{
		{"strategy", an.PlanKey("block", 4, strategy.Options{}, false)},
		{"p", an.PlanKey("wrap", 8, strategy.Options{}, false)},
		{"dim", an.PlanKey("wrap", 4, strategy.Options{}, true)},
		{"opts", an.PlanKey("wrap", 4, strategy.Options{BlockSize: 8}, false)},
		{"analysis", anOrd.PlanKey("wrap", 4, strategy.Options{}, false)},
	}
	for _, v := range variants {
		if v.key == base {
			t.Fatalf("plan key ignores %s", v.name)
		}
	}
	// Telemetry must not influence the key; partition normalization must.
	withSearch := strategy.Options{}
	withSearch.Search = nil
	if an.PlanKey("wrap", 4, withSearch, false) != base {
		t.Fatal("plan key unstable under zero options")
	}
	defaulted := an.PlanKey("block", 4, strategy.Options{}, false)
	normalized := an.PlanKey("block", 4, strategy.Options{Part: core.Options{Grain: 4, MinClusterWidth: 4}}, false)
	if defaulted != normalized {
		t.Fatal("plan key must normalize partition options")
	}

	pl, err := an.Plan("wrap", 4, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fk := pl.FactorKey(Cholesky, a, false)
	if fk != pl.FactorKey(Cholesky, a, false) {
		t.Fatal("factor key not deterministic")
	}
	if fk != pl.FactorKey(Cholesky, a, true) {
		t.Fatal("chain-parallel factor must share the serial key")
	}
	if fk == pl.FactorKey(LDL, a, false) {
		t.Fatal("factor key ignores the kernel")
	}
	a4 := gen.Grid9(10, 10)
	a4.Val[3] += 0.5
	if fk == pl.FactorKey(Cholesky, a4, false) {
		t.Fatal("factor key ignores the values")
	}
}

// TestCacheConcurrent hammers one cache from many goroutines (run under
// -race): every solve must agree bitwise, and the store must end with
// exactly one build per distinct artifact.
func TestCacheConcurrent(t *testing.T) {
	a := gen.Grid9(14, 14)
	c := NewCache(64)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	want, err := c.Solve(a, "wrap", 4, strategy.Options{}, Cholesky, b)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				x, err := c.Solve(a, "wrap", 4, strategy.Options{}, Cholesky, b)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range want {
					if x[j] != want[j] {
						t.Errorf("concurrent solve diverged at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != 3 {
		t.Fatalf("concurrent solves rebuilt artifacts: %+v", st)
	}
}
