package pipeline

import (
	"repro/internal/artifact"
	"repro/internal/sparse"
	"repro/internal/strategy"
)

// Cache is the typed layer over an artifact.Store: it computes each
// stage's content address, serves hits, and builds misses with the staged
// constructors. One Cache is safe for arbitrary concurrent use, and
// concurrent requests for one key share a single build.
type Cache struct {
	store *artifact.Store
}

// NewCache builds a cache bounded to capacity artifacts across all stages
// (capacity <= 0 means unbounded).
func NewCache(capacity int) *Cache {
	return &Cache{store: artifact.NewStore(capacity)}
}

// Store exposes the underlying content-addressed store (counters, and the
// raw GetOrBuild surface a serving layer wraps).
func (c *Cache) Store() *artifact.Store { return c.store }

// Stats returns the store-wide hit/miss/eviction totals.
func (c *Cache) Stats() artifact.Counts { return c.store.Stats() }

// StatsByKind returns the per-stage ("analysis", "plan", "factor")
// hit/miss/eviction counters.
func (c *Cache) StatsByKind() map[string]artifact.Counts { return c.store.StatsByKind() }

// Analysis returns the cached analysis of a's pattern under MMD, building
// it on a miss. A repeat call with any matrix of the same pattern is a
// hit and performs zero symbolic work.
func (c *Cache) Analysis(a *sparse.Matrix) (*Analysis, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	v, _, err := c.store.GetOrBuild(AnalysisKey(a), func() (any, error) {
		return NewAnalysis(a)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Analysis), nil
}

// Plan returns the cached 1D plan for (name, p, opts) over an, mapping on
// a miss. A repeat call is a hit and performs zero mapping work.
func (c *Cache) Plan(an *Analysis, name string, p int, opts strategy.Options) (*Plan, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	v, _, err := c.store.GetOrBuild(an.PlanKey(name, p, opts, false), func() (any, error) {
		return an.Plan(name, p, opts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Plan), nil
}

// Plan2D is Plan over the 2D tile-strategy registry.
func (c *Cache) Plan2D(an *Analysis, name string, p int, opts strategy.Options) (*Plan, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	v, _, err := c.store.GetOrBuild(an.PlanKey(name, p, opts, true), func() (any, error) {
		return an.Plan2D(name, p, opts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Plan), nil
}

// Factor returns the cached serial-kernel factor of a under pl, keyed by
// (pattern, ordering, values, kernel). A repeat call with bitwise-equal
// values is a hit and performs zero factorization work.
func (c *Cache) Factor(pl *Plan, a *sparse.Matrix, k Kernel) (*Factor, error) {
	return c.factor(pl, a, k, false)
}

// FactorParallel is Factor built with the parallel engines. Chain-order
// engines share the serial key (the values are bit-identical); the 1D
// block engine's key mixes in the plan.
func (c *Cache) FactorParallel(pl *Plan, a *sparse.Matrix, k Kernel) (*Factor, error) {
	return c.factor(pl, a, k, true)
}

func (c *Cache) factor(pl *Plan, a *sparse.Matrix, k Kernel, parallel bool) (*Factor, error) {
	if err := k.valid(); err != nil {
		return nil, err
	}
	if a.Val == nil {
		return nil, errNoValues
	}
	v, _, err := c.store.GetOrBuild(pl.FactorKey(k, a, parallel), func() (any, error) {
		if parallel {
			return pl.FactorizeParallel(a, k)
		}
		return pl.Factorize(a, k)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Factor), nil
}

// Solve runs the full staged pipeline through the cache — analysis, 1D
// plan, serial-kernel factor, serial solve — so a repeat solve against a
// recurring pattern touches only the triangular sweeps. It is the
// one-call convenience the CLIs use; staged callers hold the artifacts
// themselves.
func (c *Cache) Solve(a *sparse.Matrix, name string, p int, opts strategy.Options, k Kernel, b []float64) ([]float64, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	an, err := c.Analysis(a)
	if err != nil {
		return nil, err
	}
	pl, err := c.Plan(an, name, p, opts)
	if err != nil {
		return nil, err
	}
	fa, err := c.Factor(pl, a, k)
	if err != nil {
		return nil, err
	}
	return fa.Solve(b)
}
