// Package pipeline is the staged solver pipeline of the paper's four-step
// direct method, split into immutable artifacts with explicit handoffs:
//
//	Analysis (pattern only)  ->  Plan (mapping)  ->  Factor (values)  ->  solves
//
// An Analysis derives from a matrix *pattern* alone: the fill-reducing
// ordering, the symbolic factor and the work model. A Plan derives from an
// Analysis: a 1D or 2D schedule plus its task graph and fetch attribution.
// A Factor derives from a Plan plus numeric values: Cholesky or LDLᵀ factor
// values from the serial kernels or the parallel engines. Each artifact
// carries the stage it was built from, so the solve methods on Factor
// never re-run symbolic analysis, mapping or factorization.
//
// Cache content-addresses the expensive stages in an artifact.Store —
// Analyses and Plans by pattern hash (plus stage parameters), Factors by
// (pattern, values, kernel) — which is the analyze-once / factor-many /
// solve-many split the factorization-as-a-service roadmap item calls for.
package pipeline

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/strategy"
	"repro/internal/symbolic"
)

// Analysis is the pattern-stage artifact: everything the pipeline derives
// from a sparsity pattern before any mapping or numeric value enters. It
// is immutable after construction and safe for concurrent use (the
// embedded strategy.Sys partition cache is mutex-guarded).
type Analysis struct {
	// Pattern is a pattern-only view of the analyzed matrix (shares the
	// caller's index slices; values are dropped).
	Pattern *sparse.Matrix
	// Perm is the elimination order (Perm[k] = original index of the k-th
	// eliminated variable) and Permuted the reordered pattern.
	Perm     []int
	Permuted *sparse.Matrix
	// F, Ops, ElemWork and Total are the symbolic products: factor
	// structure, operation structure, per-element work and the paper's
	// Wtot.
	F        *symbolic.Factor
	Ops      *model.Ops
	ElemWork []int64
	Total    int64
	// Key content-addresses this artifact: pattern digest plus ordering.
	Key artifact.Key

	// valPerm maps permuted value positions back to original ones:
	// permutedVal[q] = origVal[valPerm[q]].
	valPerm []int
	sys     *strategy.Sys
}

// AnalysisKey returns the content address NewAnalysis assigns to the
// analysis of a's pattern: the pattern digest plus the MMD ordering tag.
// Computing it never runs the ordering or the symbolic factorization.
func AnalysisKey(a *sparse.Matrix) artifact.Key {
	h := analysisHasher()
	mixPattern(h, a)
	return h.Sum()
}

func analysisHasher() *artifact.Hasher {
	h := artifact.NewHasher("analysis")
	h.I64(int64(0)) // ordering tag: 0 = MMD
	h.Str("mmd")
	return h
}

// mixPattern appends the pattern digest of a to an analysis hasher.
func mixPattern(h *artifact.Hasher, a *sparse.Matrix) {
	h.Str("pattern")
	h.Key(artifact.Key{Kind: "pattern", Sum: artifact.PatternSum(a)})
}

// NewAnalysis analyzes a matrix pattern under the multiple-minimum-degree
// ordering (the paper's choice for every experiment). Values of a, if
// any, are ignored: the artifact depends on the pattern alone.
func NewAnalysis(a *sparse.Matrix) (*Analysis, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: invalid matrix: %w", err)
	}
	return newAnalysis(a, order.MMD(a), analysisHasher())
}

// NewAnalysisOrdered is NewAnalysis with a caller-supplied elimination
// order. The order is mixed into the artifact key, so differently ordered
// analyses of one pattern never collide.
func NewAnalysisOrdered(a *sparse.Matrix, perm []int) (*Analysis, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: invalid matrix: %w", err)
	}
	if !order.IsPermutation(perm) || len(perm) != a.N {
		return nil, fmt.Errorf("pipeline: ordering is not a permutation of 0..%d", a.N-1)
	}
	h := artifact.NewHasher("analysis")
	h.I64(int64(1)) // ordering tag: 1 = explicit permutation
	h.Ints(perm)
	return newAnalysis(a, perm, h)
}

func newAnalysis(a *sparse.Matrix, perm []int, h *artifact.Hasher) (*Analysis, error) {
	mixPattern(h, a)
	// Permute an index-valued copy of the pattern: the permuted values
	// recover, for every permuted position, the original position its
	// value comes from (exact: positions stay far below 2^53).
	iv := make([]float64, a.NNZ())
	for i := range iv {
		iv[i] = float64(i)
	}
	idx := &sparse.Matrix{N: a.N, ColPtr: a.ColPtr, RowInd: a.RowInd, Val: iv}
	pidx, err := idx.Permute(perm)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	valPerm := make([]int, len(pidx.Val))
	for q, v := range pidx.Val {
		valPerm[q] = int(v)
	}
	pm := &sparse.Matrix{N: pidx.N, ColPtr: pidx.ColPtr, RowInd: pidx.RowInd}
	f := symbolic.Analyze(pm)
	ops := model.NewOps(f)
	ew := model.ElementWork(ops)
	return &Analysis{
		Pattern:  &sparse.Matrix{N: a.N, ColPtr: a.ColPtr, RowInd: a.RowInd},
		Perm:     append([]int(nil), perm...),
		Permuted: pm,
		F:        f,
		Ops:      ops,
		ElemWork: ew,
		Total:    model.TotalWork(ew),
		Key:      h.Sum(),
		valPerm:  valPerm,
		sys:      strategy.NewSys(f, ops, ew),
	}, nil
}

// Sys returns the strategy-subsystem view of this analysis (shared ops,
// element work and the goroutine-safe per-option partition cache).
func (an *Analysis) Sys() *strategy.Sys { return an.sys }

// N returns the system dimension.
func (an *Analysis) N() int { return an.Pattern.N }

// PermuteValues maps the values of a — a matrix with exactly this
// analysis' pattern — into the permuted value layout, without re-running
// the structural permutation. The result is bitwise identical to
// a.Permute(Perm).Val: values are moved, never recomputed.
func (an *Analysis) PermuteValues(a *sparse.Matrix) ([]float64, error) {
	if a.Val == nil {
		return nil, fmt.Errorf("pipeline: matrix has no values")
	}
	if !sparse.PatternEqual(a, an.Pattern) {
		return nil, fmt.Errorf("pipeline: matrix pattern does not match the analysis (key %s)", an.Key)
	}
	pv := make([]float64, len(an.valPerm))
	for q, src := range an.valPerm {
		pv[q] = a.Val[src]
	}
	return pv, nil
}

// PermutedWithValues returns the permuted matrix with a's values
// installed — the input of the numeric kernels. The index slices are
// shared with Permuted; only the value slice is fresh.
func (an *Analysis) PermutedWithValues(a *sparse.Matrix) (*sparse.Matrix, error) {
	pv, err := an.PermuteValues(a)
	if err != nil {
		return nil, err
	}
	return &sparse.Matrix{
		N: an.Permuted.N, ColPtr: an.Permuted.ColPtr,
		RowInd: an.Permuted.RowInd, Val: pv,
	}, nil
}
