// Package gen generates the test matrices of the reproduction.
//
// The paper's experiments use five Harwell-Boeing matrices (Table 1):
// BUS1138, CANN1072, DWT512, LAP30 and LSHP1009. The Harwell-Boeing data
// files are not distributable here, so this package builds each matrix from
// its published description:
//
//   - LAP30 is reproduced exactly: the 9-point discretization of the
//     Laplacian on the unit square with Dirichlet boundary conditions on a
//     30x30 grid has exactly 900 equations and 4322 lower-triangle nonzeros,
//     matching Table 1 of the paper.
//   - LSHP1009 is approximated by the same construction George's LSHAPE
//     problems use: a right-triangle mesh on an L-shaped domain.
//   - BUS1138, CANN1072 and DWT512 are approximated by synthetic graphs of
//     the same family (power network, irregular structural pattern, framed
//     shell) matched to the published dimension and nonzero counts.
//
// All generators are deterministic: random constructions take an explicit
// seed. Every returned matrix carries SPD Laplacian values (diagonal =
// degree + 1, off-diagonal = -1).
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sparse"
)

// value shift used for all generated SPD matrices.
const spdShift = 1.0

func finish(n int, edges [][2]int) *sparse.Matrix {
	m, err := sparse.NewPattern(n, edges)
	if err != nil {
		panic(fmt.Sprintf("gen: internal error: %v", err))
	}
	m.SetLaplacianValues(spdShift)
	return m
}

// Grid5 returns the 5-point Laplacian on an rows x cols grid with Dirichlet
// boundary conditions (each interior connection to N/S/E/W neighbours).
func Grid5(rows, cols int) *sparse.Matrix {
	id := func(r, c int) int { return r*cols + c }
	var edges [][2]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return finish(rows*cols, edges)
}

// Grid9 returns the 9-point Laplacian on an rows x cols grid with Dirichlet
// boundary conditions: each node couples to all eight surrounding nodes.
// Grid9(30, 30) reproduces the paper's LAP30 exactly: 900 equations and
// 4322 lower-triangle nonzeros.
func Grid9(rows, cols int) *sparse.Matrix {
	id := func(r, c int) int { return r*cols + c }
	var edges [][2]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
				if c+1 < cols {
					edges = append(edges, [2]int{id(r, c), id(r+1, c+1)})
				}
				if c > 0 {
					edges = append(edges, [2]int{id(r, c), id(r+1, c-1)})
				}
			}
		}
	}
	return finish(rows*cols, edges)
}

// Lap30 is the paper's LAP30 test problem: the 9-point Laplacian on the
// 30x30 grid (900 equations, 4322 lower-triangle nonzeros).
func Lap30() *sparse.Matrix { return Grid9(30, 30) }

// FEGrid5 returns the "5-point finite element grid" of the paper's
// Figure 2: an m x m grid of corner nodes plus an (m-1) x (m-1) grid of
// element-center nodes; every element couples its five nodes (four corners
// and the center) pairwise, as a finite-element assembly does. For m = 5
// this yields the 41-unknown matrix shown in Figure 2.
func FEGrid5(m int) *sparse.Matrix {
	corner := func(r, c int) int { return r*m + c }
	center := func(r, c int) int { return m*m + r*(m-1) + c }
	n := m*m + (m-1)*(m-1)
	var edges [][2]int
	for r := 0; r < m-1; r++ {
		for c := 0; c < m-1; c++ {
			nodes := []int{
				corner(r, c), corner(r, c+1),
				corner(r+1, c), corner(r+1, c+1),
				center(r, c),
			}
			for a := 0; a < len(nodes); a++ {
				for b := a + 1; b < len(nodes); b++ {
					edges = append(edges, [2]int{nodes[a], nodes[b]})
				}
			}
		}
	}
	return finish(n, edges)
}

// LShape returns a right-triangle mesh on an L-shaped domain, the
// construction behind Alan George's LSHAPE problems (the paper's LSHP1009).
// The domain is the (2m+1) x (2m+1) grid with the upper-right m x m block
// of nodes removed; each remaining unit square is split by a diagonal.
// LShape(18) has 1045 equations (paper's LSHP1009 has 1009) with the same
// 6-neighbour interior connectivity.
func LShape(m int) *sparse.Matrix {
	side := 2*m + 1
	idx := make(map[[2]int]int)
	var coords [][2]int
	keep := func(r, c int) bool { return !(r < m && c > m) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if keep(r, c) {
				idx[[2]int{r, c}] = len(coords)
				coords = append(coords, [2]int{r, c})
			}
		}
	}
	var edges [][2]int
	add := func(a, b [2]int) {
		ia, oka := idx[a]
		ib, okb := idx[b]
		if oka && okb {
			edges = append(edges, [2]int{ia, ib})
		}
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if !keep(r, c) {
				continue
			}
			add([2]int{r, c}, [2]int{r, c + 1})
			add([2]int{r, c}, [2]int{r + 1, c})
			// Split each unit square by its anti-diagonal. Only create the
			// diagonal when all four corners exist so triangles are valid.
			if keep(r, c+1) && keep(r+1, c) && keep(r+1, c+1) {
				add([2]int{r, c + 1}, [2]int{r + 1, c})
			}
		}
	}
	return finish(len(coords), edges)
}

// PowerBus returns a synthetic power-system network in the spirit of the
// Harwell-Boeing BUS matrices: a random spanning tree with degree-capped
// attachment plus extra "loop" lines. The result has n equations and
// exactly n + (n-1) + extra lower-triangle nonzeros (unless extra demands
// duplicate edges, which are skipped).
func PowerBus(n, extra int, seed int64) *sparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	deg := make([]int, n)
	var edges [][2]int
	have := make(map[[2]int]bool)
	addEdge := func(a, b int) bool {
		if a == b {
			return false
		}
		if a < b {
			a, b = b, a
		}
		if have[[2]int{a, b}] {
			return false
		}
		have[[2]int{a, b}] = true
		edges = append(edges, [2]int{a, b})
		deg[a]++
		deg[b]++
		return true
	}
	// Spanning tree: each new bus connects to a nearby existing bus with
	// degree below the cap; power grids are near-trees with low max degree
	// and strongly local structure (lines connect geographic neighbours).
	const degCap = 9
	for v := 1; v < n; v++ {
		window := 40
		for {
			lo := v - window
			if lo < 0 {
				lo = 0
			}
			u := lo + rng.Intn(v-lo)
			if deg[u] < degCap {
				addEdge(u, v)
				break
			}
			window *= 2 // widen if the local window is saturated
		}
	}
	// Loop lines: connect pairs at short index distance, imitating the
	// local interconnection loops of transmission grids.
	for added, tries := 0, 0; added < extra && tries < 200*extra; tries++ {
		u := rng.Intn(n)
		span := 1 + rng.Intn(16)
		v := u + span
		if v >= n {
			continue
		}
		if deg[u] >= degCap || deg[v] >= degCap {
			continue
		}
		if addEdge(u, v) {
			added++
		}
	}
	return finish(n, edges)
}

// Cannes returns a synthetic irregular structural pattern in the spirit of
// the Harwell-Boeing CANN* matrices (Lucien Marro's Cannes collection):
// an irregularly banded graph where each node connects to a random number
// of earlier nodes inside a local window. offDiag is the target number of
// strictly-lower-triangle nonzeros.
func Cannes(n, offDiag int, seed int64) *sparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	have := make(map[[2]int]bool)
	remaining := offDiag
	for v := 1; v < n; v++ {
		// Budget edges proportionally so the construction hits offDiag.
		want := remaining / (n - v)
		if want < 1 {
			want = 1
		}
		jitter := rng.Intn(2*want+1) - want/2
		k := want + jitter
		if k < 1 {
			k = 1
		}
		window := 10 + rng.Intn(30)
		added := 0
		for t := 0; t < 10*k && added < k; t++ {
			lo := v - window
			if lo < 0 {
				lo = 0
			}
			u := lo + rng.Intn(v-lo)
			key := [2]int{v, u}
			if have[key] {
				continue
			}
			have[key] = true
			edges = append(edges, [2]int{u, v})
			added++
			remaining--
			if remaining <= 0 {
				break
			}
		}
		if remaining <= 0 {
			break
		}
	}
	return finish(n, edges)
}

// Frame returns a braced cylindrical shell mesh in the spirit of the
// Harwell-Boeing DWT matrices (ship and submarine frames measured by the
// Naval Ship R&D Center): around x along nodes on a cylinder, quad shell
// edges plus one diagonal brace per cell and periodic ring closure.
func Frame(around, along int) *sparse.Matrix {
	id := func(a, l int) int { return l*around + a }
	n := around * along
	var edges [][2]int
	for l := 0; l < along; l++ {
		for a := 0; a < around; a++ {
			edges = append(edges, [2]int{id(a, l), id((a+1)%around, l)})
			if l+1 < along {
				edges = append(edges, [2]int{id(a, l), id(a, l+1)})
				edges = append(edges, [2]int{id(a, l), id((a+1)%around, l+1)})
			}
		}
	}
	return finish(n, edges)
}

// TestMatrix couples a generated matrix with the paper's published
// statistics for its Harwell-Boeing counterpart (Table 1).
type TestMatrix struct {
	Name string
	// Paper's Table 1 values for the Harwell-Boeing original.
	PaperN         int
	PaperNNZ       int
	PaperFactorNNZ int
	Description    string
	Exact          bool // true if the generated matrix reproduces the original exactly
	Build          func() *sparse.Matrix
}

// Suite returns the five test problems of the paper's Table 1, in the
// paper's order. Construction is deferred to the Build closures so callers
// can generate only what they need.
func Suite() []TestMatrix {
	return []TestMatrix{
		{
			Name: "BUS1138", PaperN: 1138, PaperNNZ: 2596, PaperFactorNNZ: 3304,
			Description: "Symmetric structure of power system networks",
			Build:       func() *sparse.Matrix { return PowerBus(1138, 321, 1138) },
		},
		{
			Name: "CANN1072", PaperN: 1072, PaperNNZ: 6758, PaperFactorNNZ: 20512,
			Description: "Symmetric pattern from Cannes, Lucien Marro",
			Build:       func() *sparse.Matrix { return Cannes(1072, 5686, 1072) },
		},
		{
			Name: "DWT512", PaperN: 512, PaperNNZ: 2007, PaperFactorNNZ: 3786,
			Description: "Symmetric submarine frame from Naval Ship R&D Center",
			Build:       func() *sparse.Matrix { return Frame(8, 64) },
		},
		{
			Name: "LAP30", PaperN: 900, PaperNNZ: 4322, PaperFactorNNZ: 16697,
			Description: "9-point discretization of the Laplacian on the unit square",
			Exact:       true,
			Build:       Lap30,
		},
		{
			Name: "LSHP1009", PaperN: 1009, PaperNNZ: 3937, PaperFactorNNZ: 18268,
			Description: "L-shaped triangular mesh from Alan George's LSHAPE problems",
			Build:       func() *sparse.Matrix { return LShape(18) },
		},
	}
}

// ByName builds the named test matrix from Suite. Lookup is
// case-insensitive on ASCII.
func ByName(name string) (*sparse.Matrix, TestMatrix, error) {
	for _, tm := range Suite() {
		if equalFold(tm.Name, name) {
			return tm.Build(), tm, nil
		}
	}
	var names []string
	for _, tm := range Suite() {
		names = append(names, tm.Name)
	}
	sort.Strings(names)
	return nil, TestMatrix{}, fmt.Errorf("gen: unknown matrix %q (known: %v)", name, names)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Random returns a random connected symmetric SPD matrix for property
// tests: n nodes, a random spanning tree plus roughly density*n extra
// edges.
func Random(n int, density float64, seed int64) *sparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{rng.Intn(v), v})
	}
	extra := int(density * float64(n))
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	return finish(n, edges)
}
