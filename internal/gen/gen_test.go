package gen

import (
	"testing"
	"testing/quick"
)

func TestLap30MatchesPaperExactly(t *testing.T) {
	m := Lap30()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N != 900 {
		t.Errorf("n = %d, want 900", m.N)
	}
	if m.NNZ() != 4322 {
		t.Errorf("nnz(lower) = %d, want 4322 (paper Table 1)", m.NNZ())
	}
}

func TestGrid5Counts(t *testing.T) {
	// rows*cols nodes; edges = rows*(cols-1) + (rows-1)*cols.
	m := Grid5(4, 7)
	if m.N != 28 {
		t.Fatalf("n = %d", m.N)
	}
	wantEdges := 4*6 + 3*7
	if got := m.OffDiagNNZ(); got != wantEdges {
		t.Errorf("off-diag nnz = %d, want %d", got, wantEdges)
	}
}

func TestGrid9Counts(t *testing.T) {
	// Interior node of a 3x3 grid connects to all 8 others around it.
	m := Grid9(3, 3)
	deg := m.Degrees()
	if deg[4] != 8 {
		t.Errorf("center degree = %d, want 8", deg[4])
	}
	if deg[0] != 3 {
		t.Errorf("corner degree = %d, want 3", deg[0])
	}
}

func TestFEGrid5Figure2Size(t *testing.T) {
	m := FEGrid5(5)
	if m.N != 41 {
		t.Errorf("n = %d, want 41 (the 41x41 matrix of Figure 2)", m.N)
	}
	// Center nodes couple to exactly their 4 corners.
	deg := m.Degrees()
	for c := 25; c < 41; c++ {
		if deg[c] != 4 {
			t.Errorf("center node %d degree = %d, want 4", c, deg[c])
		}
	}
	// An interior corner node touches 4 elements: 8 corner neighbours
	// + 4 centers.
	if deg[12] != 12 {
		t.Errorf("interior corner degree = %d, want 12", deg[12])
	}
}

func TestLShapeSizeNearPaper(t *testing.T) {
	m := LShape(18)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N != 1045 {
		t.Errorf("n = %d, want 1045 (paper LSHP1009 has 1009; same family)", m.N)
	}
	// Within 10%% of the paper's 3937 lower nonzeros.
	lo, hi := 3543, 4331
	if nz := m.NNZ(); nz < lo || nz > hi {
		t.Errorf("nnz = %d, want within [%d,%d]", nz, lo, hi)
	}
}

func TestLShapeDomainIsL(t *testing.T) {
	// For m=2: 5x5 grid minus the 2x2 upper-right block = 21 nodes.
	m := LShape(2)
	if m.N != 21 {
		t.Errorf("n = %d, want 21", m.N)
	}
}

func TestPowerBusMatchesCounts(t *testing.T) {
	m := PowerBus(1138, 321, 1138)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N != 1138 {
		t.Errorf("n = %d", m.N)
	}
	if got, want := m.NNZ(), 2596; got != want {
		t.Errorf("nnz = %d, want %d (paper BUS1138)", got, want)
	}
	// Degree cap honoured.
	for i, d := range m.Degrees() {
		if d > 9 {
			t.Errorf("node %d degree %d exceeds cap", i, d)
		}
	}
}

func TestCannesNearTarget(t *testing.T) {
	m := Cannes(1072, 5686, 1072)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	got := m.OffDiagNNZ()
	if got < 5400 || got > 5686 {
		t.Errorf("off-diag nnz = %d, want close to 5686 (paper CANN1072)", got)
	}
}

func TestFrameSize(t *testing.T) {
	m := Frame(8, 64)
	if m.N != 512 {
		t.Errorf("n = %d, want 512 (paper DWT512)", m.N)
	}
	// Paper DWT512 has 2007 lower nnz; the braced cylinder should be close.
	if nz := m.NNZ(); nz < 1800 || nz > 2210 {
		t.Errorf("nnz = %d, want near 2007", nz)
	}
}

func TestSuiteIsDeterministic(t *testing.T) {
	for _, tm := range Suite() {
		a, b := tm.Build(), tm.Build()
		if a.N != b.N || a.NNZ() != b.NNZ() {
			t.Errorf("%s: non-deterministic build", tm.Name)
		}
		for k := range a.RowInd {
			if a.RowInd[k] != b.RowInd[k] {
				t.Fatalf("%s: pattern differs between builds", tm.Name)
			}
		}
	}
}

func TestSuiteMatricesValid(t *testing.T) {
	for _, tm := range Suite() {
		m := tm.Build()
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", tm.Name, err)
		}
		if m.Val == nil {
			t.Errorf("%s: missing values", tm.Name)
		}
		if tm.Exact {
			if m.N != tm.PaperN || m.NNZ() != tm.PaperNNZ {
				t.Errorf("%s marked exact but n=%d nnz=%d vs paper n=%d nnz=%d",
					tm.Name, m.N, m.NNZ(), tm.PaperN, tm.PaperNNZ)
			}
		} else {
			// Approximations must be within 10% on both axes.
			if tooFar(m.N, tm.PaperN, 0.10) || tooFar(m.NNZ(), tm.PaperNNZ, 0.10) {
				t.Errorf("%s: n=%d nnz=%d too far from paper n=%d nnz=%d",
					tm.Name, m.N, m.NNZ(), tm.PaperN, tm.PaperNNZ)
			}
		}
	}
}

func tooFar(got, want int, tol float64) bool {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d > tol*float64(want)
}

func TestByName(t *testing.T) {
	m, tm, err := ByName("lap30")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Name != "LAP30" || m.N != 900 {
		t.Errorf("ByName returned %s n=%d", tm.Name, m.N)
	}
	if _, _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestRandomConnectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := Random(30, 1.5, seed)
		if m.Validate() != nil {
			return false
		}
		// Connectivity via BFS over adjacency.
		adj := m.Adjacency()
		seen := make([]bool, m.N)
		queue := []int{0}
		seen[0] = true
		count := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range adj[v] {
				if !seen[u] {
					seen[u] = true
					count++
					queue = append(queue, u)
				}
			}
		}
		return count == m.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSuiteBuild(b *testing.B) {
	for _, tm := range Suite() {
		b.Run(tm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tm.Build()
			}
		})
	}
}
