package calib

import (
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/traffic"
)

// synthEvents builds a noise-free measured run from a known ground-truth
// model: task i's duration is exactly scale*(work + alpha*vol + beta*msgs
// + gamma) nanoseconds. A deterministic LCG varies the regressors so the
// four columns are independent.
func synthEvents(n int, scale, alpha, beta, gamma float64) ([]exec.TaskEvent, []exec.Task, *traffic.TaskComm) {
	tasks := make([]exec.Task, n)
	tc := &traffic.TaskComm{Vol: make([]int64, n), Msgs: make([]int64, n)}
	events := make([]exec.TaskEvent, n)
	state := uint64(12345)
	next := func(mod int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64(state>>33) % mod
	}
	for i := 0; i < n; i++ {
		w := 1 + next(400)
		v := next(50)
		m := next(6)
		tasks[i] = exec.Task{ID: i, Work: w}
		tc.Vol[i], tc.Msgs[i] = v, m
		dur := int64(math.Round(scale * (float64(w) + alpha*float64(v) + beta*float64(m) + gamma)))
		events[i] = exec.TaskEvent{Task: int32(i), Proc: int32(i % 4), Start: 0, Finish: dur}
	}
	return events, tasks, tc
}

// TestCalibrateRecoversKnownModel is the synthetic golden test: a fit on
// noise-free events generated from a known {Alpha, Beta, Gamma, scale}
// must recover every parameter within 2%.
func TestCalibrateRecoversKnownModel(t *testing.T) {
	const scale, alpha, beta, gamma = 12.5, 2.0, 10.0, 40.0
	events, tasks, tc := synthEvents(500, scale, alpha, beta, gamma)
	model, report, err := Calibrate(events, tasks, tc)
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 0.02*want {
			t.Errorf("%s = %g, want %g within 2%%", name, got, want)
		}
	}
	within("NsPerWork", model.NsPerWork, scale)
	within("Alpha", model.Comm.Alpha, alpha)
	within("Beta", model.Comm.Beta, beta)
	within("Gamma", model.Comm.Gamma, gamma)
	if report.R2 < 0.999 {
		t.Errorf("R2 = %g on noise-free data, want ~1", report.R2)
	}
	if report.Samples != 500 || report.Dropped != 0 {
		t.Errorf("report samples=%d dropped=%d, want 500/0", report.Samples, report.Dropped)
	}
	if len(report.Terms) != 4 {
		t.Errorf("terms %v, want all four", report.Terms)
	}
	// Rounding noise only: the residual tail stays within the rounding of
	// the synthetic durations (sub-scale), and the histogram counts every
	// sample with a nonzero residual.
	if report.ResidualP99 > int64(math.Ceil(scale)) {
		t.Errorf("ResidualP99 = %d ns, want <= %g (rounding only)", report.ResidualP99, scale)
	}
	if report.Residuals.Count > int64(report.Samples) {
		t.Errorf("histogram count %d exceeds samples %d", report.Residuals.Count, report.Samples)
	}
}

// TestCalibrateDeterministic pins that the same events produce the same
// model, bit for bit — calib is on the determinism-critical path.
func TestCalibrateDeterministic(t *testing.T) {
	events, tasks, tc := synthEvents(200, 7.25, 1.5, 8, 25)
	m1, r1, err := Calibrate(events, tasks, tc)
	if err != nil {
		t.Fatal(err)
	}
	m2, r2, err := Calibrate(events, tasks, tc)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Comm != m2.Comm || m1.NsPerWork != m2.NsPerWork {
		t.Errorf("models differ across identical fits: %+v vs %+v", m1, m2)
	}
	if r1.R2 != r2.R2 || r1.ResidualP90 != r2.ResidualP90 {
		t.Errorf("reports differ across identical fits")
	}
}

// TestCalibrateClampsNegative feeds durations that depend only on work,
// with a vol column anti-correlated with duration — the unconstrained fit
// would price Vol negative; the clamp must drop it and keep the model
// non-negative.
func TestCalibrateClampsNegative(t *testing.T) {
	n := 100
	tasks := make([]exec.Task, n)
	tc := &traffic.TaskComm{Vol: make([]int64, n), Msgs: make([]int64, n)}
	events := make([]exec.TaskEvent, n)
	for i := 0; i < n; i++ {
		w := int64(1 + i)
		tasks[i] = exec.Task{ID: i, Work: w}
		tc.Vol[i] = int64(n - i) // anti-correlated with duration
		events[i] = exec.TaskEvent{Task: int32(i), Finish: 10 * w}
	}
	model, report, err := Calibrate(events, tasks, tc)
	if err != nil {
		t.Fatal(err)
	}
	if model.Comm.Alpha < 0 || model.Comm.Beta < 0 || model.Comm.Gamma < 0 {
		t.Errorf("clamp failed: %+v has a negative coefficient", model.Comm)
	}
	for _, term := range report.Terms {
		if term == "vol" {
			t.Errorf("anti-correlated vol column survived the clamp: %v", report.Terms)
		}
	}
}

// TestCalibrateDropsDegenerate counts zero- and negative-duration events
// as dropped instead of fitting them.
func TestCalibrateDropsDegenerate(t *testing.T) {
	events, tasks, tc := synthEvents(50, 10, 2, 10, 30)
	events[3].Finish = events[3].Start             // zero duration
	events[7].Finish = events[7].Start - 5         // negative duration
	_, report, err := Calibrate(events, tasks, tc) //nolint
	if err != nil {
		t.Fatal(err)
	}
	if report.Dropped != 2 {
		t.Errorf("dropped = %d, want 2", report.Dropped)
	}
	if report.Samples != 48 {
		t.Errorf("samples = %d, want 48", report.Samples)
	}
}

// TestFitterPerProc checks the heterogeneous pass: samples from a
// processor running 2x slower than the model must fit a speed near 0.5,
// and untouched processors stay at 1.
func TestFitterPerProc(t *testing.T) {
	events, tasks, tc := synthEvents(200, 10, 2, 10, 30)
	for i := range events {
		if events[i].Proc == 2 {
			events[i].Finish *= 2 // processor 2 is half speed
		}
	}
	f := NewFitter()
	if err := f.Add(events, tasks, tc); err != nil {
		t.Fatal(err)
	}
	model, _, err := f.Fit(Options{PerProc: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.ProcSpeed) != 4 {
		t.Fatalf("ProcSpeed has %d entries, want 4", len(model.ProcSpeed))
	}
	if s := model.ProcSpeed[2]; s > 0.7 {
		t.Errorf("slow processor speed = %g, want well below the others", s)
	}
	for q, s := range model.ProcSpeed {
		if q != 2 && (s < 0.8 || s > 1.6) {
			t.Errorf("processor %d speed = %g, want near 1", q, s)
		}
	}
}

// TestFitterErrors pins the failure modes: too few samples, out-of-range
// events, mismatched fetch stats.
func TestFitterErrors(t *testing.T) {
	f := NewFitter()
	if _, _, err := f.Fit(Options{}); err == nil {
		t.Error("Fit on empty fitter: no error")
	}
	tasks := []exec.Task{{ID: 0, Work: 5}}
	if err := f.Add([]exec.TaskEvent{{Task: 9, Finish: 10}}, tasks, nil); err == nil {
		t.Error("out-of-range event task: no error")
	}
	bad := &traffic.TaskComm{Vol: make([]int64, 3), Msgs: make([]int64, 3)}
	if err := f.Add([]exec.TaskEvent{{Task: 0, Finish: 10}}, tasks, bad); err == nil {
		t.Error("mismatched fetch stats: no error")
	}
}

// TestCalibrateNilFetchStats fits a work-plus-constant model when no
// fetch attribution is supplied.
func TestCalibrateNilFetchStats(t *testing.T) {
	n := 60
	tasks := make([]exec.Task, n)
	events := make([]exec.TaskEvent, n)
	for i := 0; i < n; i++ {
		w := int64(1 + (i*7)%97)
		tasks[i] = exec.Task{ID: i, Work: w}
		events[i] = exec.TaskEvent{Task: int32(i), Finish: 4*w + 100}
	}
	model, _, err := Calibrate(events, tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.NsPerWork-4) > 0.1 {
		t.Errorf("NsPerWork = %g, want ~4", model.NsPerWork)
	}
	if math.Abs(model.Comm.Gamma-25) > 1 {
		t.Errorf("Gamma = %g, want ~25 (100ns / 4ns-per-unit)", model.Comm.Gamma)
	}
}
