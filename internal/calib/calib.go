// Package calib fits the communication-time model of the makespan
// simulators (exec.CommModel, including the per-task fixed-overhead term
// Gamma) to the measured per-task durations the real parallel engine
// emits (exec.MeasureFactorize's TaskEvents). The fit is an ordinary
// least-squares regression of each task's wall-clock nanoseconds on its
// compute work, fetch volume, message count and a constant:
//
//	dur_ns ≈ s·work + a·vol + b·msgs + g
//
// The work coefficient s is the machine's serial rate in nanoseconds per
// work unit; dividing the other coefficients by it converts them into the
// simulators' work units, giving CalibratedModel{Comm: {Alpha: a/s,
// Beta: b/s, Gamma: g/s}, NsPerWork: s}. Coefficients the data drives
// negative are clamped by refitting without the offending regressor (the
// simulators require non-negative charges), and an optional per-processor
// pass fits a speed multiplier per processor for heterogeneous machines.
// Everything is deterministic given the samples: same events in, same
// model out.
package calib

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// Sample is one measured task execution: the regression target DurNs and
// the three regressors the cost model prices.
type Sample struct {
	DurNs int64 // measured wall-clock duration, nanoseconds
	Work  int64 // compute work units (multiply-add pairs)
	Vol   int64 // fetched non-local elements attributed to the task
	Msgs  int64 // consolidated messages received by the task
	Proc  int32 // executing processor (per-processor fit only)
}

// CalibratedModel is a fitted cost model: the work-unit CommModel the
// simulators consume, the nanosecond scale that converts simulated spans
// into predicted wall clock, and optional per-processor speed multipliers.
type CalibratedModel struct {
	// Comm carries the fitted Alpha, Beta and Gamma in work units; feed it
	// to any comm-aware makespan simulator unchanged.
	Comm exec.CommModel
	// NsPerWork is the fitted serial rate: nanoseconds per work unit.
	// Multiply a simulated span by it to predict wall-clock nanoseconds.
	NsPerWork float64
	// ProcSpeed[q], when non-nil, is processor q's fitted speed multiplier
	// relative to the homogeneous model (> 1 means faster: measured time
	// below prediction). Nil means the fit was homogeneous.
	ProcSpeed []float64
}

// PredictTaskNs returns the model's wall-clock prediction for one task.
func (m CalibratedModel) PredictTaskNs(work, vol, msgs int64) float64 {
	return m.NsPerWork * (float64(work) + float64(m.Comm.Cost(vol, msgs)))
}

// SpanNs converts a simulated makespan (work units under m.Comm) into
// predicted wall-clock nanoseconds.
func (m CalibratedModel) SpanNs(makespan int64) float64 {
	return m.NsPerWork * float64(makespan)
}

// FitReport carries the fit diagnostics: sample accounting, goodness of
// fit, and the distribution of absolute residuals in nanoseconds — the
// percentiles plus a power-of-two histogram in the obs.Profile bucket
// idiom.
type FitReport struct {
	Samples int // measured events that entered the fit
	Dropped int // zero- or negative-duration events excluded (clock resolution)
	// Terms lists the regressors the final fit kept, in design order out
	// of "work", "vol", "msgs", "const"; a term is dropped when the data
	// drives its coefficient negative.
	Terms []string
	// R2 is the coefficient of determination of the final fit.
	R2 float64
	// ResidualP50/P90/P99 are percentiles of |measured - predicted| in ns.
	ResidualP50, ResidualP90, ResidualP99 int64
	// Residuals is the power-of-two histogram of absolute residuals (ns),
	// the same bucket idiom as obs.Profile's idle-gap histogram.
	Residuals obs.Histogram
}

// Options configures Fitter.Fit.
type Options struct {
	// PerProc fits a speed multiplier per processor after the homogeneous
	// pass: ProcSpeed[q] = predicted_ns(q) / measured_ns(q) over q's
	// samples (1 for processors with no samples).
	PerProc bool
}

// Fitter accumulates samples across any number of measured runs — fitting
// several processor counts and mappers at once is what identifies Alpha
// and Beta separately from Gamma.
type Fitter struct {
	samples []Sample
	dropped int
	maxProc int32
}

// NewFitter returns an empty Fitter.
func NewFitter() *Fitter { return &Fitter{} }

// Add ingests one measured run: events are exec.MeasureFactorize's real
// TaskEvents, tasks the graph they executed, and tc the per-task fetch
// attribution (nil charges no communication). Zero- and negative-duration
// events — clock-resolution artifacts — are counted as dropped, not
// fitted.
func (f *Fitter) Add(events []exec.TaskEvent, tasks []exec.Task, tc *traffic.TaskComm) error {
	for _, ev := range events {
		if ev.Task < 0 || int(ev.Task) >= len(tasks) {
			return fmt.Errorf("calib: event for task %d, graph has %d tasks", ev.Task, len(tasks))
		}
		if tc != nil && (len(tc.Vol) != len(tasks) || len(tc.Msgs) != len(tasks)) {
			return fmt.Errorf("calib: fetch stats cover %d tasks, graph has %d", len(tc.Vol), len(tasks))
		}
		dur := ev.Finish - ev.Start
		if dur <= 0 {
			f.dropped++
			continue
		}
		s := Sample{DurNs: dur, Work: tasks[ev.Task].Work, Proc: ev.Proc}
		if tc != nil {
			s.Vol = tc.Vol[ev.Task]
			s.Msgs = tc.Msgs[ev.Task]
		}
		f.AddSample(s)
	}
	return nil
}

// AddSample ingests one pre-extracted sample; non-positive durations are
// counted as dropped.
func (f *Fitter) AddSample(s Sample) {
	if s.DurNs <= 0 {
		f.dropped++
		return
	}
	f.samples = append(f.samples, s)
	if s.Proc > f.maxProc {
		f.maxProc = s.Proc
	}
}

// Len reports the number of accumulated (fit-eligible) samples.
func (f *Fitter) Len() int { return len(f.samples) }

// Dropped reports the accumulated zero-/negative-duration event count.
func (f *Fitter) Dropped() int { return f.dropped }

// termNames indexes the design columns of the regression.
var termNames = [4]string{"work", "vol", "msgs", "const"}

// Fit solves the least-squares regression over the accumulated samples
// and returns the calibrated model with its report. It needs at least two
// samples and a positive fitted work rate; regressors driven negative are
// dropped and the remainder refitted.
func (f *Fitter) Fit(opts Options) (CalibratedModel, FitReport, error) {
	var model CalibratedModel
	report := FitReport{Samples: len(f.samples), Dropped: f.dropped}
	if len(f.samples) < 2 {
		return model, report, fmt.Errorf("calib: %d samples, need at least 2", len(f.samples))
	}
	// Active design columns: work, vol, msgs, const. Work must survive —
	// it anchors the ns-per-work-unit scale. Vol and msgs columns with no
	// variation across the samples are excluded up front (they are
	// collinear with the constant; their effect lands in Gamma), and the
	// rest are dropped one at a time (most negative first) until all
	// remaining coefficients are non-negative, the standard active-set
	// clamp for tiny NNLS systems.
	active := []int{0}
	if f.varies(func(s Sample) int64 { return s.Vol }) {
		active = append(active, 1)
	}
	if f.varies(func(s Sample) int64 { return s.Msgs }) {
		active = append(active, 2)
	}
	active = append(active, 3)
	var coef [4]float64
	for {
		sol, ok := f.solve(active)
		if !ok {
			// Singular normal equations: a collinear or all-zero column.
			// Drop the last non-work column and retry.
			if len(active) == 1 {
				return model, report, fmt.Errorf("calib: degenerate samples (no work variation)")
			}
			active = active[:len(active)-1]
			continue
		}
		worst, worstIdx := 0.0, -1
		for k, col := range active {
			if col == 0 {
				continue
			}
			if sol[k] < worst {
				worst, worstIdx = sol[k], k
			}
		}
		if worstIdx < 0 {
			for i := range coef {
				coef[i] = 0
			}
			for k, col := range active {
				coef[col] = sol[k]
			}
			break
		}
		active = append(active[:worstIdx], active[worstIdx+1:]...)
	}
	// Tiny or overhead-dominated sample sets can drive the work rate
	// itself negative (the regressors soak up what little work signal
	// there is). Shed the remaining non-work columns one at a time — the
	// work-only fit sum(w*d)/sum(w^2) is positive whenever any work is —
	// before giving up.
	for !(coef[0] > 0) && len(active) > 1 {
		active = active[:len(active)-1]
		sol, ok := f.solve(active)
		if !ok {
			continue
		}
		clamped := false
		for k, col := range active {
			if col != 0 && sol[k] < 0 {
				clamped = true
			}
		}
		if clamped {
			continue
		}
		for i := range coef {
			coef[i] = 0
		}
		for k, col := range active {
			coef[col] = sol[k]
		}
	}
	if !(coef[0] > 0) || math.IsInf(coef[0], 0) {
		return model, report, fmt.Errorf("calib: fitted work rate %g ns/unit not positive", coef[0])
	}
	model = CalibratedModel{
		Comm: exec.CommModel{
			Alpha: coef[1] / coef[0],
			Beta:  coef[2] / coef[0],
			Gamma: coef[3] / coef[0],
		},
		NsPerWork: coef[0],
	}
	for _, col := range activeCols(coef) {
		report.Terms = append(report.Terms, termNames[col])
	}
	f.residuals(model, &report)
	if opts.PerProc {
		model.ProcSpeed = f.procSpeeds(model)
	}
	return model, report, nil
}

// varies reports whether a regressor takes more than one value across
// the samples.
func (f *Fitter) varies(get func(Sample) int64) bool {
	for _, s := range f.samples[1:] {
		if get(s) != get(f.samples[0]) {
			return true
		}
	}
	return false
}

// activeCols lists the design columns with nonzero coefficients, always
// including work (column 0).
func activeCols(coef [4]float64) []int {
	out := []int{0}
	for col := 1; col < 4; col++ {
		if coef[col] != 0 {
			out = append(out, col)
		}
	}
	return out
}

// solve fits the least-squares coefficients over the active design
// columns by solving the normal equations with Gaussian elimination and
// partial pivoting. ok is false when the system is singular.
func (f *Fitter) solve(active []int) ([]float64, bool) {
	n := len(active)
	ata := make([][]float64, n)
	atb := make([]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	row := func(s Sample) [4]float64 {
		return [4]float64{float64(s.Work), float64(s.Vol), float64(s.Msgs), 1}
	}
	for _, s := range f.samples {
		x := row(s)
		y := float64(s.DurNs)
		for i, ci := range active {
			for j, cj := range active {
				ata[i][j] += x[ci] * x[cj]
			}
			atb[i] += x[ci] * y
		}
	}
	// Gaussian elimination with partial pivoting on the n x n system.
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(ata[r][col]) > math.Abs(ata[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(ata[pivot][col]) < 1e-12 {
			return nil, false
		}
		ata[col], ata[pivot] = ata[pivot], ata[col]
		atb[col], atb[pivot] = atb[pivot], atb[col]
		for r := col + 1; r < n; r++ {
			m := ata[r][col] / ata[col][col]
			for c := col; c < n; c++ {
				ata[r][c] -= m * ata[col][c]
			}
			atb[r] -= m * atb[col]
		}
	}
	sol := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := atb[r]
		for c := r + 1; c < n; c++ {
			v -= ata[r][c] * sol[c]
		}
		sol[r] = v / ata[r][r]
	}
	for _, v := range sol {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false
		}
	}
	return sol, true
}

// residuals fills the report's R², percentiles and histogram from the
// final model's per-sample predictions.
func (f *Fitter) residuals(m CalibratedModel, report *FitReport) {
	abs := make([]int64, 0, len(f.samples))
	var mean, ssr, sst float64
	for _, s := range f.samples {
		mean += float64(s.DurNs)
	}
	mean /= float64(len(f.samples))
	for _, s := range f.samples {
		pred := m.PredictTaskNs(s.Work, s.Vol, s.Msgs)
		r := float64(s.DurNs) - pred
		ssr += r * r
		d := float64(s.DurNs) - mean
		sst += d * d
		a := int64(math.Round(math.Abs(r)))
		abs = append(abs, a)
		report.Residuals.Add(a)
	}
	if sst > 0 {
		report.R2 = 1 - ssr/sst
	}
	sort.Slice(abs, func(a, b int) bool { return abs[a] < abs[b] })
	pct := func(q float64) int64 {
		idx := int(q * float64(len(abs)-1))
		return abs[idx]
	}
	report.ResidualP50 = pct(0.50)
	report.ResidualP90 = pct(0.90)
	report.ResidualP99 = pct(0.99)
}

// procSpeeds fits the per-processor speed multipliers of the homogeneous
// model: speed_q = predicted_ns(q) / measured_ns(q) over processor q's
// samples. Processors with no samples (or a degenerate ratio) get 1.
func (f *Fitter) procSpeeds(m CalibratedModel) []float64 {
	n := int(f.maxProc) + 1
	pred := make([]float64, n)
	meas := make([]float64, n)
	for _, s := range f.samples {
		pred[s.Proc] += m.PredictTaskNs(s.Work, s.Vol, s.Msgs)
		meas[s.Proc] += float64(s.DurNs)
	}
	speeds := make([]float64, n)
	for q := range speeds {
		speeds[q] = 1
		if meas[q] > 0 && pred[q] > 0 {
			speeds[q] = pred[q] / meas[q]
		}
	}
	return speeds
}

// Calibrate is the one-shot entry point: it fits the homogeneous model to
// a single measured run. events are exec.MeasureFactorize's per-task real
// TaskEvents, tasks the executed graph, tc the per-task fetch attribution
// (nil charges no communication). Accumulate several runs through a
// Fitter when fitting across processor counts or mappers.
func Calibrate(events []exec.TaskEvent, tasks []exec.Task, tc *traffic.TaskComm) (CalibratedModel, FitReport, error) {
	f := NewFitter()
	if err := f.Add(events, tasks, tc); err != nil {
		return CalibratedModel{}, FitReport{}, err
	}
	return f.Fit(Options{})
}
