package traffic

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

func pipeline(m *sparse.Matrix, g, w int) (*model.Ops, *core.Partition, []int64) {
	pm, err := m.Permute(order.MMD(m))
	if err != nil {
		panic(err)
	}
	f := symbolic.Analyze(pm)
	part := core.NewPartition(f, core.Options{Grain: g, MinClusterWidth: w})
	ops := model.NewOps(f)
	return ops, part, model.ElementWork(ops)
}

func TestSingleProcessorZeroTraffic(t *testing.T) {
	for _, tm := range gen.Suite() {
		ops, part, ew := pipeline(tm.Build(), 4, 4)
		if r := Simulate(ops, sched.WrapMap(ops.F, ew, 1)); r.Total != 0 {
			t.Errorf("%s wrap P=1 traffic = %d", tm.Name, r.Total)
		}
		if r := Simulate(ops, sched.BlockMap(part, 1)); r.Total != 0 {
			t.Errorf("%s block P=1 traffic = %d", tm.Name, r.Total)
		}
	}
}

func TestDense3x3WrapByHand(t *testing.T) {
	// Dense 3x3 with wrap over 3 processors: proc1 fetches (1,0),(2,0);
	// proc2 fetches (2,0),(2,1); all scales local. Total 4.
	var edges [][2]int
	for i := 0; i < 3; i++ {
		for j := 0; j < i; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	m, _ := sparse.NewPattern(3, edges)
	m.SetLaplacianValues(1)
	f := symbolic.Analyze(m)
	ops := model.NewOps(f)
	ew := model.ElementWork(ops)
	r := Simulate(ops, sched.WrapMap(f, ew, 3))
	if r.Total != 4 {
		t.Fatalf("traffic = %d, want 4", r.Total)
	}
	if r.PerProc[0] != 0 || r.PerProc[1] != 2 || r.PerProc[2] != 2 {
		t.Fatalf("per-proc = %v, want [0 2 2]", r.PerProc)
	}
	if r.Pair[0][1] != 2 || r.Pair[0][2] != 1 || r.Pair[1][2] != 1 {
		t.Fatalf("pair matrix = %v", r.Pair)
	}
}

// bruteTraffic recounts with a plain map, as an oracle.
func bruteTraffic(ops *model.Ops, s *sched.Schedule) int64 {
	seen := make(map[[2]int32]struct{})
	var total int64
	acc := func(elem, proc int32) {
		if s.ElemProc[elem] == proc {
			return
		}
		k := [2]int32{elem, proc}
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		total++
	}
	ops.ForEachUpdate(func(u model.Update) {
		acc(u.SrcI, s.ElemProc[u.Tgt])
		acc(u.SrcJ, s.ElemProc[u.Tgt])
	})
	ops.ForEachScale(func(tgt, diag int32) { acc(diag, s.ElemProc[tgt]) })
	return total
}

func TestSimulateMatchesBruteForce(t *testing.T) {
	fc := func(seed int64) bool {
		m := gen.Random(40, 1.3, seed)
		ops, part, ew := pipeline(m, 3, 3)
		for _, p := range []int{2, 5, 16} {
			ws := sched.WrapMap(ops.F, ew, p)
			if Simulate(ops, ws).Total != bruteTraffic(ops, ws) {
				return false
			}
			bs := sched.BlockMap(part, p)
			if Simulate(ops, bs).Total != bruteTraffic(ops, bs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestLargePPathMatchesBitmaskPath(t *testing.T) {
	m := gen.Grid9(7, 7)
	ops, _, ew := pipeline(m, 4, 4)
	// P=65 exercises the map path; P=49 and 64 the bitmask path. Compare
	// against the brute oracle for all.
	for _, p := range []int{49, 64, 65, 100} {
		s := sched.WrapMap(ops.F, ew, p)
		if got, want := Simulate(ops, s).Total, bruteTraffic(ops, s); got != want {
			t.Errorf("P=%d: total %d, want %d", p, got, want)
		}
	}
}

func TestPerProcSumsToTotal(t *testing.T) {
	ops, part, _ := pipeline(gen.Lap30(), 4, 4)
	r := Simulate(ops, sched.BlockMap(part, 16))
	var sum int64
	for _, x := range r.PerProc {
		sum += x
	}
	if sum != r.Total {
		t.Fatalf("per-proc sum %d != total %d", sum, r.Total)
	}
	var pairSum int64
	for _, row := range r.Pair {
		for _, x := range row {
			pairSum += x
		}
	}
	if pairSum != r.Total {
		t.Fatalf("pair sum %d != total %d", pairSum, r.Total)
	}
}

func TestBlockBeatsWrapOnCommunication(t *testing.T) {
	// The paper's headline communication result (Tables 2 vs 5): at g=25
	// the block scheme generates substantially less traffic than wrap.
	for _, tm := range gen.Suite() {
		ops, part, ew := pipeline(tm.Build(), 25, 4)
		for _, p := range []int{16, 32} {
			wrap := Simulate(ops, sched.WrapMap(ops.F, ew, p)).Total
			block := Simulate(ops, sched.BlockMap(part, p)).Total
			if block >= wrap {
				t.Errorf("%s P=%d: block traffic %d not below wrap %d", tm.Name, p, block, wrap)
			}
		}
	}
}

func TestTrafficGrowsWithProcessors(t *testing.T) {
	// Paper: "total communication increases with the number of processors".
	ops, part, ew := pipeline(gen.Lap30(), 4, 4)
	var prevWrap, prevBlock int64 = -1, -1
	for _, p := range []int{1, 4, 16, 32} {
		w := Simulate(ops, sched.WrapMap(ops.F, ew, p)).Total
		b := Simulate(ops, sched.BlockMap(part, p)).Total
		if w < prevWrap {
			t.Errorf("wrap traffic decreased at P=%d: %d < %d", p, w, prevWrap)
		}
		if b < prevBlock {
			t.Errorf("block traffic decreased at P=%d: %d < %d", p, b, prevBlock)
		}
		prevWrap, prevBlock = w, b
	}
}

func TestLargerGrainLessTraffic(t *testing.T) {
	// Paper Table 2: grain 25 communicates less than grain 4.
	opsA, partA, _ := pipeline(gen.Lap30(), 4, 4)
	opsB, partB, _ := pipeline(gen.Lap30(), 25, 4)
	for _, p := range []int{16, 32} {
		a := Simulate(opsA, sched.BlockMap(partA, p)).Total
		b := Simulate(opsB, sched.BlockMap(partB, p)).Total
		if b >= a {
			t.Errorf("P=%d: g=25 traffic %d not below g=4 traffic %d", p, b, a)
		}
	}
}

func TestBlockHasFewerPartners(t *testing.T) {
	// Paper Section 5: wrap leads to processors communicating with many
	// others; block confines communication to small groups.
	ops, part, ew := pipeline(gen.Lap30(), 25, 4)
	wrap := Simulate(ops, sched.WrapMap(ops.F, ew, 32))
	block := Simulate(ops, sched.BlockMap(part, 32))
	if block.MeanPartners() >= wrap.MeanPartners() {
		t.Errorf("block mean partners %.1f not below wrap %.1f",
			block.MeanPartners(), wrap.MeanPartners())
	}
}

func TestSimulatePanicsOnMismatch(t *testing.T) {
	ops, _, ew := pipeline(gen.Grid5(3, 3), 4, 4)
	other, _, _ := pipeline(gen.Grid5(5, 5), 4, 4)
	s := sched.WrapMap(other.F, make([]int64, other.F.NNZ()), 2)
	_ = ew
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on factor/schedule mismatch")
		}
	}()
	Simulate(ops, s)
}

func BenchmarkSimulateWrapLap30(b *testing.B) {
	ops, _, ew := pipeline(gen.Lap30(), 4, 4)
	s := sched.WrapMap(ops.F, ew, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(ops, s)
	}
}

func BenchmarkSimulateBlockLap30(b *testing.B) {
	ops, part, _ := pipeline(gen.Lap30(), 4, 4)
	s := sched.BlockMap(part, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(ops, s)
	}
}

func TestHopWeightedTraffic(t *testing.T) {
	// Hand-checkable: a 4-proc hypercube (2D): distance(0,3)=2.
	r := &Result{P: 4, Pair: [][]int64{
		{0, 1, 0, 5},
		{0, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 0, 0, 0},
	}}
	// 1*h(0,1) + 5*h(0,3) + 2*h(2,3) = 1*1 + 5*2 + 2*1 = 13.
	if got := r.HopWeightedTraffic(); got != 13 {
		t.Fatalf("hop-weighted = %d, want 13", got)
	}
}

func TestHopWeightedBlockLocality(t *testing.T) {
	// On the hypercube metric the block scheme's per-element cost must
	// stay no worse than wrap's (block confines traffic to groups).
	ops, part, ew := pipeline(gen.Lap30(), 25, 4)
	bs := sched.BlockMap(part, 32)
	ws := sched.WrapMap(ops.F, ew, 32)
	br := Simulate(ops, bs)
	wr := Simulate(ops, ws)
	bHops := float64(br.HopWeightedTraffic()) / float64(br.Total)
	wHops := float64(wr.HopWeightedTraffic()) / float64(wr.Total)
	t.Logf("mean hops per element: block %.2f, wrap %.2f", bHops, wHops)
	if bHops > wHops*1.15 {
		t.Errorf("block mean hops %.2f much worse than wrap %.2f", bHops, wHops)
	}
	if br.HopWeightedTraffic() >= wr.HopWeightedTraffic() {
		t.Errorf("block hop-weighted traffic %d not below wrap %d",
			br.HopWeightedTraffic(), wr.HopWeightedTraffic())
	}
}
