package traffic

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sched"
)

// TestCommFetchStatsConservation: the per-task fetch volumes partition the
// traffic total exactly (every distinct (processor, element) fetch is
// charged to exactly one task), for block and column granularities alike.
func TestCommFetchStatsConservation(t *testing.T) {
	fc := func(seed int64) bool {
		m := gen.Random(45, 1.4, seed)
		ops, part, ew := pipeline(m, 4, 3)
		for _, p := range []int{2, 8, 16} {
			bs := sched.BlockMap(part, p)
			if FetchStats(part, ops, bs).TotalVol() != Simulate(ops, bs).Total {
				return false
			}
			ws := sched.WrapMap(ops.F, ew, p)
			if FetchStatsColumns(ops, ws).TotalVol() != Simulate(ops, ws).Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestCommFetchStatsBasics: per-task message counts are sane (at most one
// message per fetched element, at most P-1 source processors per task) and
// the FetchVolumes helpers are exactly the Vol slice of FetchStats.
func TestCommFetchStatsBasics(t *testing.T) {
	ops, part, ew := pipeline(gen.Lap30(), 25, 4)
	const p = 16
	bs := sched.BlockMap(part, p)
	tc := FetchStats(part, ops, bs)
	if len(tc.Vol) != len(part.Units) || len(tc.Msgs) != len(part.Units) {
		t.Fatalf("per-unit stats cover %d/%d tasks, partition has %d units",
			len(tc.Vol), len(tc.Msgs), len(part.Units))
	}
	checkTaskComm(t, tc, p)
	if tc.TotalMsgs() <= 0 {
		t.Error("block schedule at P=16 produced no messages")
	}
	for i, v := range FetchVolumes(part, ops, bs) {
		if v != tc.Vol[i] {
			t.Fatalf("FetchVolumes[%d] = %d, FetchStats Vol = %d", i, v, tc.Vol[i])
		}
	}
	ws := sched.WrapMap(ops.F, ew, p)
	wc := FetchStatsColumns(ops, ws)
	if len(wc.Vol) != ops.F.N {
		t.Fatalf("per-column stats cover %d tasks, factor has %d columns", len(wc.Vol), ops.F.N)
	}
	checkTaskComm(t, wc, p)
	for j, v := range FetchVolumesColumns(ops, ws) {
		if v != wc.Vol[j] {
			t.Fatalf("FetchVolumesColumns[%d] = %d, FetchStats Vol = %d", j, v, wc.Vol[j])
		}
	}
}

func checkTaskComm(t *testing.T, tc *TaskComm, p int) {
	t.Helper()
	for i := range tc.Vol {
		if tc.Vol[i] < 0 || tc.Msgs[i] < 0 {
			t.Fatalf("task %d: negative stats vol=%d msgs=%d", i, tc.Vol[i], tc.Msgs[i])
		}
		if tc.Msgs[i] > tc.Vol[i] {
			t.Fatalf("task %d: %d messages for %d fetched elements", i, tc.Msgs[i], tc.Vol[i])
		}
		if tc.Msgs[i] > int64(p-1) {
			t.Fatalf("task %d: %d messages from at most %d other processors", i, tc.Msgs[i], p-1)
		}
	}
}

// TestCommFetchStatsSingleProc: with one processor everything is local.
func TestCommFetchStatsSingleProc(t *testing.T) {
	ops, part, ew := pipeline(gen.Grid9(6, 6), 4, 3)
	bs := sched.BlockMap(part, 1)
	if tc := FetchStats(part, ops, bs); tc.TotalVol() != 0 || tc.TotalMsgs() != 0 {
		t.Errorf("P=1 block: vol %d msgs %d, want 0", tc.TotalVol(), tc.TotalMsgs())
	}
	ws := sched.WrapMap(ops.F, ew, 1)
	if tc := FetchStatsColumns(ops, ws); tc.TotalVol() != 0 || tc.TotalMsgs() != 0 {
		t.Errorf("P=1 wrap: vol %d msgs %d, want 0", tc.TotalVol(), tc.TotalMsgs())
	}
}
