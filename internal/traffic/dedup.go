package traffic

import "fmt"

// FetchDedup tracks distinct (element, processor) first fetches — the
// deduplication rule of the paper's caching model ("once a data element
// is fetched, that element is stored locally"), shared by every traffic
// simulator in this package and by the 2D tile simulator
// (part2d.Traffic). Processor counts of at most 64 use a per-element
// bitmask; wider counts fall back to a map keyed elem<<16|proc, which
// bounds supported processor counts at 65536.
type FetchDedup struct {
	mask []uint64
	wide map[int64]struct{}
}

// NewFetchDedup sizes the tracker for a factor with nnz elements
// scheduled on p processors.
func NewFetchDedup(p, nnz int) *FetchDedup {
	if p < 1 {
		panic(fmt.Sprintf("traffic: invalid processor count %d", p))
	}
	if p > 64 {
		return &FetchDedup{wide: make(map[int64]struct{})}
	}
	return &FetchDedup{mask: make([]uint64, nnz)}
}

// FirstFetch reports whether processor proc fetches elem for the first
// time, marking the pair seen.
func (d *FetchDedup) FirstFetch(elem, proc int32) bool {
	if d.wide != nil {
		key := int64(elem)<<16 | int64(proc)
		if _, ok := d.wide[key]; ok {
			return false
		}
		d.wide[key] = struct{}{}
		return true
	}
	bit := uint64(1) << uint(proc)
	if d.mask[elem]&bit != 0 {
		return false
	}
	d.mask[elem] |= bit
	return true
}
