package traffic

import (
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sched"
)

// MessageStats is the outcome of the consolidation step — the fifth step
// of the paper's pipeline: "Consolidate the non-local memory access
// information for each processor so as to minimize communication
// overhead." Element fetches with the same (owning group, destination
// processor) pair travel together as one message, so the message count —
// the latency-bound component of communication cost — can be far smaller
// than the element volume; how much smaller is precisely the
// consolidation benefit the block partitioning buys.
type MessageStats struct {
	P int
	// Messages is the total number of consolidated messages (distinct
	// (source group, destination processor) pairs with at least one
	// fetched element).
	Messages int64
	// Elements is the total element volume (equals Result.Total).
	Elements int64
	// PerProc counts messages received by each processor.
	PerProc []int64
	// MeanSize is the average number of elements per message; MaxSize the
	// largest single message.
	MeanSize float64
	MaxSize  int64
}

// consolidate runs the element-fetch simulation and groups distinct
// fetches into messages keyed by (groupOf(element), destination).
func consolidate(ops *model.Ops, s *sched.Schedule, groupOf func(elem int32) int32) *MessageStats {
	nnz := ops.F.NNZ()
	if len(s.ElemProc) != nnz {
		panic("traffic: schedule covers a different factor")
	}
	type key struct {
		group int32
		proc  int32
	}
	sizes := make(map[key]int64)
	fetched := NewFetchDedup(s.P, nnz)
	access := func(elem int32, proc int32) {
		if s.ElemProc[elem] == proc || !fetched.FirstFetch(elem, proc) {
			return
		}
		sizes[key{groupOf(elem), proc}]++
	}
	ops.ForEachUpdate(func(u model.Update) {
		proc := s.ElemProc[u.Tgt]
		access(u.SrcI, proc)
		access(u.SrcJ, proc)
	})
	ops.ForEachScale(func(tgt, diag int32) {
		access(diag, s.ElemProc[tgt])
	})
	st := &MessageStats{P: s.P, PerProc: make([]int64, s.P)}
	//repro:allow maporder -- commutative counts, sums and max over consolidated messages; order cannot change any statistic
	for k, sz := range sizes {
		st.Messages++
		st.Elements += sz
		st.PerProc[k.proc]++
		if sz > st.MaxSize {
			st.MaxSize = sz
		}
	}
	if st.Messages > 0 {
		st.MeanSize = float64(st.Elements) / float64(st.Messages)
	}
	return st
}

// Consolidate groups the non-local fetches of a block-partitioned
// schedule into messages, one per (source unit block, destination
// processor) pair.
func Consolidate(part *core.Partition, ops *model.Ops, s *sched.Schedule) *MessageStats {
	if len(part.ElemUnit) != ops.F.NNZ() {
		panic("traffic: partition built over a different factor")
	}
	return consolidate(ops, s, func(elem int32) int32 { return part.ElemUnit[elem] })
}

// ConsolidateColumns groups the fetches of a column-mapped (wrap)
// schedule into messages, one per (source column, destination processor)
// pair — the natural consolidation unit when whole columns live on one
// processor.
func ConsolidateColumns(ops *model.Ops, s *sched.Schedule) *MessageStats {
	f := ops.F
	colOf := make([]int32, f.NNZ())
	for j := 0; j < f.N; j++ {
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			colOf[q] = int32(j)
		}
	}
	return consolidate(ops, s, func(elem int32) int32 { return colOf[elem] })
}

// AlphaBetaCost evaluates the classical linear communication model for
// the busiest processor: alpha per received message plus beta per
// received element, alpha and beta in work units.
func AlphaBetaCost(st *MessageStats, r *Result, alpha, beta float64) float64 {
	var maxMsgs int64
	for _, m := range st.PerProc {
		if m > maxMsgs {
			maxMsgs = m
		}
	}
	return alpha*float64(maxMsgs) + beta*float64(r.MaxPerProc())
}

// FetchVolumes attributes every distinct non-local element fetch to the
// unit block whose update first requires it (fetch-on-first-use, matching
// the caching model of Simulate), returning the per-unit fetch counts.
// Feeding these into the makespan simulation with a per-element
// communication cost unifies the paper's two separate metrics — traffic
// and load balance — into a single time estimate (EXPERIMENTS.md Ext-L).
// FetchStats additionally reports per-unit message counts for the
// latency term of exec.CommModel.
func FetchVolumes(part *core.Partition, ops *model.Ops, s *sched.Schedule) []int64 {
	return FetchStats(part, ops, s).Vol
}

// FetchVolumesColumns is FetchVolumes for column-mapped schedules,
// returning per-column fetch counts.
func FetchVolumesColumns(ops *model.Ops, s *sched.Schedule) []int64 {
	return FetchStatsColumns(ops, s).Vol
}
