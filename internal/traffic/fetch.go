package traffic

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sched"
)

// TaskComm attributes the communication of a schedule to its makespan
// tasks (unit blocks for block-granular schedules, columns for
// column-granular ones). It is the bridge between the paper's two cost
// components: Vol carries the bandwidth term (Section 4's data traffic,
// split per task) and Msgs the latency term (Section 2's consolidation
// step, counted per task). Feeding both through exec.CommModel turns the
// compute-only makespan simulators into the unified time estimate.
type TaskComm struct {
	// Vol[t] is the number of distinct non-local elements first fetched
	// for task t's updates (fetch-on-first-use, matching the caching
	// model of Simulate). Summed over tasks it equals Result.Total.
	Vol []int64
	// Msgs[t] is the number of consolidated messages task t receives:
	// one per distinct source processor among its first-use fetches.
	Msgs []int64
}

// TotalVol returns the summed per-task fetch volume, which equals the
// system-wide data traffic of Simulate on the same schedule.
func (tc *TaskComm) TotalVol() int64 {
	var s int64
	for _, v := range tc.Vol {
		s += v
	}
	return s
}

// TotalMsgs returns the summed per-task message count.
func (tc *TaskComm) TotalMsgs() int64 {
	var s int64
	for _, m := range tc.Msgs {
		s += m
	}
	return s
}

// fetchPerTask runs the element-fetch simulation once, attributing every
// distinct (processor, element) fetch to taskOf(tgt) of the update that
// first requires it. The dedup rule is identical to Simulate's, so the
// per-task volumes partition the traffic total exactly.
func fetchPerTask(ops *model.Ops, s *sched.Schedule, ntasks int, taskOf func(tgt int32) int32) *TaskComm {
	nnz := ops.F.NNZ()
	if len(s.ElemProc) != nnz {
		panic(fmt.Sprintf("traffic: schedule covers %d elements, factor has %d", len(s.ElemProc), nnz))
	}
	tc := &TaskComm{Vol: make([]int64, ntasks), Msgs: make([]int64, ntasks)}
	fetched := NewFetchDedup(s.P, nnz)
	msgSeen := make(map[int64]struct{}) // distinct (source processor, task) pairs
	access := func(elem, tgt int32) {
		proc := s.ElemProc[tgt]
		owner := s.ElemProc[elem]
		if owner == proc || !fetched.FirstFetch(elem, proc) {
			return
		}
		task := taskOf(tgt)
		tc.Vol[task]++
		mk := int64(owner)<<32 | int64(task)
		if _, ok := msgSeen[mk]; !ok {
			msgSeen[mk] = struct{}{}
			tc.Msgs[task]++
		}
	}
	ops.ForEachUpdate(func(u model.Update) {
		access(u.SrcI, u.Tgt)
		access(u.SrcJ, u.Tgt)
	})
	ops.ForEachScale(func(tgt, diag int32) {
		access(diag, tgt)
	})
	return tc
}

// FetchStatsTasks attributes every distinct non-local fetch of a schedule
// to an arbitrary task granularity: taskOf maps the factor nonzero
// position of an update's target to the task charged for the fetch. The
// dedup rule is identical to Simulate's, so the per-task volumes
// partition the traffic total exactly whatever the granularity — unit
// blocks (FetchStats), columns (FetchStatsColumns), or the merged
// tile-segment tasks of the 2D subsystem (part2d.FetchStats).
func FetchStatsTasks(ops *model.Ops, s *sched.Schedule, ntasks int, taskOf func(tgt int32) int32) *TaskComm {
	return fetchPerTask(ops, s, ntasks, taskOf)
}

// FetchStats attributes every distinct non-local fetch of a
// block-partitioned schedule to the unit block whose update first requires
// it, with per-unit message counts (one message per distinct source
// processor feeding a unit).
func FetchStats(part *core.Partition, ops *model.Ops, s *sched.Schedule) *TaskComm {
	if len(part.ElemUnit) != ops.F.NNZ() {
		panic("traffic: schedule/partition/factor mismatch")
	}
	return fetchPerTask(ops, s, len(part.Units), func(tgt int32) int32 { return part.ElemUnit[tgt] })
}

// FetchStatsColumns is FetchStats for column-mapped schedules, attributing
// fetches and messages to columns.
func FetchStatsColumns(ops *model.Ops, s *sched.Schedule) *TaskComm {
	f := ops.F
	colOf := make([]int32, f.NNZ())
	for j := 0; j < f.N; j++ {
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			colOf[q] = int32(j)
		}
	}
	return fetchPerTask(ops, s, f.N, func(tgt int32) int32 { return colOf[tgt] })
}
