package traffic

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

func refsTestOps(t *testing.T, m *sparse.Matrix) *model.Ops {
	t.Helper()
	perm := order.MMD(m)
	pm, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	return model.NewOps(symbolic.Analyze(pm))
}

// columnOwnerSchedule builds a column-granular schedule from an explicit
// column-to-processor assignment (work left zero; Simulate ignores it).
func columnOwnerSchedule(f *symbolic.Factor, p int, owner []int32) *sched.Schedule {
	s := &sched.Schedule{P: p, ElemProc: make([]int32, f.NNZ()), Work: make([]int64, p)}
	for j := 0; j < f.N; j++ {
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			s.ElemProc[q] = owner[j]
		}
	}
	return s
}

// refsTotal computes the deduplicated traffic of a column schedule from
// ColumnRefs alone: per (source column, fetching processor), the volume
// of the processor's smallest target column (reference sets are nested
// suffixes, so the first fetch covers all later ones).
func refsTotal(ops *model.Ops, refs [][]ColRef, owner []int32) int64 {
	n := ops.F.N
	seen := make(map[int64]struct{})
	var total int64
	for j := 0; j < n; j++ { // increasing j == increasing target column
		for _, r := range refs[j] {
			if owner[r.Col] == owner[j] {
				continue
			}
			key := int64(r.Col)<<32 | int64(owner[j])
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			total += r.Vol
		}
	}
	return total
}

// TestColumnRefsVolumes cross-checks every reference volume against a
// brute-force scan of the column structure.
func TestColumnRefsVolumes(t *testing.T) {
	ops := refsTestOps(t, gen.Grid9(6, 6))
	f := ops.F
	refs := ColumnRefs(ops)
	if len(refs) != f.N {
		t.Fatalf("ColumnRefs returned %d targets, factor has %d columns", len(refs), f.N)
	}
	for j := 0; j < f.N; j++ {
		rc := ops.RowCols(j)
		if len(refs[j]) != len(rc) {
			t.Fatalf("column %d: %d refs, row structure has %d entries", j, len(refs[j]), len(rc))
		}
		for t2, r := range refs[j] {
			if r.Col != rc[t2] {
				t.Fatalf("column %d ref %d: Col = %d, want %d", j, t2, r.Col, rc[t2])
			}
			var want int64
			for _, i := range f.Col(int(r.Col)) {
				if i >= j {
					want++
				}
			}
			if r.Vol != want {
				t.Fatalf("column %d <- column %d: Vol = %d, brute count %d", j, r.Col, r.Vol, want)
			}
		}
	}
}

// TestColumnRefsReproduceSimulate: the refs-derived dedup total must
// equal Simulate's traffic for column-granular schedules — the identity
// that makes ColumnRefs a valid cost oracle for contiguous splits. The
// one-column-per-processor case (P = n > 64) also exercises Simulate's
// wide path.
func TestColumnRefsReproduceSimulate(t *testing.T) {
	for name, m := range map[string]*sparse.Matrix{
		"grid5-6x6":   gen.Grid5(6, 6),
		"grid9-10x10": gen.Grid9(10, 10),
	} {
		ops := refsTestOps(t, m)
		f := ops.F
		refs := ColumnRefs(ops)
		schedules := map[string][]int32{}
		ident := make([]int32, f.N)
		wrap3 := make([]int32, f.N)
		contig4 := make([]int32, f.N)
		for j := 0; j < f.N; j++ {
			ident[j] = int32(j)
			wrap3[j] = int32(j % 3)
			contig4[j] = int32(j * 4 / f.N)
		}
		schedules["one-col-per-proc"] = ident
		schedules["wrap3"] = wrap3
		schedules["contig4"] = contig4
		procs := map[string]int{"one-col-per-proc": f.N, "wrap3": 3, "contig4": 4}
		for sname, owner := range schedules {
			p := procs[sname]
			sc := columnOwnerSchedule(f, p, owner)
			if got, want := refsTotal(ops, refs, owner), Simulate(ops, sc).Total; got != want {
				t.Errorf("%s/%s: refs-derived total %d, Simulate total %d", name, sname, got, want)
			}
		}
	}
}
