package traffic

import "repro/internal/model"

// ColRef is one column-level source reference of the fetch attribution:
// target column Tgt (the index into the ColumnRefs result) reads the
// trailing Vol elements of source column Col — every factor element
// (i, Col) with i >= Tgt, which is exactly the set of sources the
// owner-computes updates of column Tgt touch in column Col (Figure 1's
// pair updates: sources (i, Col) and (Tgt, Col) for all i in
// struct(Col), i >= Tgt).
type ColRef struct {
	Col int32
	Vol int64
}

// ColumnRefs returns, for every target column j, its source references:
// one ColRef per column k < j with L[j,k] != 0, carrying the fetch
// volume Vol = |{i in struct(k) : i >= j}| that a processor owning j but
// not k must transfer under the paper's fetch-on-first-use traffic
// model.
//
// Because the reference sets of two targets j1 < j2 in the same source
// column are nested suffixes (suffix(j1) contains suffix(j2)), the
// deduplicated traffic a processor q != owner(k) is charged for column k
// is the Vol of q's smallest target column in struct(k). Summing that
// over source columns and processors reproduces Simulate's total for any
// column-granular schedule; for contiguous column blocks it is the cut
// cost oracle of the total-communication-optimal split
// (strategy.ContiguousSplitTotal).
func ColumnRefs(ops *model.Ops) [][]ColRef {
	f := ops.F
	refs := make([][]ColRef, f.N)
	for j := 0; j < f.N; j++ {
		cols := ops.RowCols(j)
		pos := ops.RowPositions(j)
		if len(cols) == 0 {
			continue
		}
		rj := make([]ColRef, len(cols))
		for t, k := range cols {
			// pos[t] is the position of (j, k) in column k; the suffix
			// from there to the end of the column is the reference set.
			rj[t] = ColRef{Col: k, Vol: int64(f.ColPtr[k+1]) - int64(pos[t])}
		}
		refs[j] = rj
	}
	return refs
}
