package traffic

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sched"
)

func TestConsolidateVolumeMatchesSimulate(t *testing.T) {
	// Message consolidation regroups the same element fetches, so the
	// element volume must equal Simulate's total exactly.
	fc := func(seed int64) bool {
		m := gen.Random(45, 1.4, seed)
		ops, part, ew := pipeline(m, 4, 3)
		for _, p := range []int{2, 8, 16} {
			bs := sched.BlockMap(part, p)
			if Consolidate(part, ops, bs).Elements != Simulate(ops, bs).Total {
				return false
			}
			ws := sched.WrapMap(ops.F, ew, p)
			if ConsolidateColumns(ops, ws).Elements != Simulate(ops, ws).Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestConsolidateBasics(t *testing.T) {
	ops, part, _ := pipeline(gen.Lap30(), 25, 4)
	s := sched.BlockMap(part, 16)
	st := Consolidate(part, ops, s)
	if st.Messages <= 0 || st.Messages > st.Elements {
		t.Fatalf("messages %d, elements %d", st.Messages, st.Elements)
	}
	var sum int64
	for _, x := range st.PerProc {
		sum += x
	}
	if sum != st.Messages {
		t.Fatalf("per-proc messages sum %d != total %d", sum, st.Messages)
	}
	if st.MeanSize < 1 || float64(st.MaxSize) < st.MeanSize {
		t.Fatalf("implausible sizes: mean %.1f max %d", st.MeanSize, st.MaxSize)
	}
}

func TestBlockConsolidatesBetterThanWrap(t *testing.T) {
	// The point of step 5: the block scheme's fetches coalesce into
	// fewer, larger messages than wrap's column-granular traffic.
	for _, tm := range gen.Suite() {
		ops, part, ew := pipeline(tm.Build(), 25, 4)
		bs := sched.BlockMap(part, 16)
		ws := sched.WrapMap(ops.F, ew, 16)
		b := Consolidate(part, ops, bs)
		w := ConsolidateColumns(ops, ws)
		if b.Messages >= w.Messages {
			t.Errorf("%s: block messages %d not below wrap %d", tm.Name, b.Messages, w.Messages)
		}
		t.Logf("%s: messages %d vs %d (ratio %.2f), volume ratio %.2f, mean size %.1f vs %.1f",
			tm.Name, b.Messages, w.Messages,
			float64(b.Messages)/float64(w.Messages),
			float64(b.Elements)/float64(w.Elements), b.MeanSize, w.MeanSize)
	}
}

func TestConsolidateSingleProcessor(t *testing.T) {
	ops, part, _ := pipeline(gen.Grid9(8, 8), 4, 4)
	s := sched.BlockMap(part, 1)
	st := Consolidate(part, ops, s)
	if st.Messages != 0 || st.Elements != 0 {
		t.Fatalf("P=1 produced messages: %+v", st)
	}
}

func TestAlphaBetaCost(t *testing.T) {
	ops, part, _ := pipeline(gen.Lap30(), 25, 4)
	s := sched.BlockMap(part, 16)
	st := Consolidate(part, ops, s)
	r := Simulate(ops, s)
	// beta-only equals beta * max per-proc elements.
	if got, want := AlphaBetaCost(st, r, 0, 2), 2*float64(r.MaxPerProc()); got != want {
		t.Errorf("beta-only cost %g, want %g", got, want)
	}
	// alpha-only is proportional to the max per-proc message count.
	var maxMsgs int64
	for _, m := range st.PerProc {
		if m > maxMsgs {
			maxMsgs = m
		}
	}
	if got, want := AlphaBetaCost(st, r, 3, 0), 3*float64(maxMsgs); got != want {
		t.Errorf("alpha-only cost %g, want %g", got, want)
	}
}

func BenchmarkConsolidateLap30(b *testing.B) {
	ops, part, _ := pipeline(gen.Lap30(), 25, 4)
	s := sched.BlockMap(part, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Consolidate(part, ops, s)
	}
}

func TestFetchVolumesSumToTotal(t *testing.T) {
	fc := func(seed int64) bool {
		m := gen.Random(40, 1.3, seed)
		ops, part, ew := pipeline(m, 4, 3)
		for _, p := range []int{2, 8} {
			bs := sched.BlockMap(part, p)
			vol := FetchVolumes(part, ops, bs)
			var sum int64
			for _, v := range vol {
				sum += v
			}
			if sum != Simulate(ops, bs).Total {
				return false
			}
			ws := sched.WrapMap(ops.F, ew, p)
			cvol := FetchVolumesColumns(ops, ws)
			sum = 0
			for _, v := range cvol {
				sum += v
			}
			if sum != Simulate(ops, ws).Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFetchVolumesZeroOnOneProc(t *testing.T) {
	ops, part, _ := pipeline(gen.Grid9(8, 8), 4, 4)
	s := sched.BlockMap(part, 1)
	for u, v := range FetchVolumes(part, ops, s) {
		if v != 0 {
			t.Fatalf("unit %d has fetch volume %d on one processor", u, v)
		}
	}
}
