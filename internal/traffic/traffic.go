// Package traffic simulates the communication behaviour of a scheduled
// sparse Cholesky factorization on a distributed-memory machine, using the
// paper's data-traffic model (Section 4):
//
//	"The data traffic is defined as a count of all the non-local data
//	accesses. Accessing a single non-local element constitutes a unit
//	data traffic irrespective of the location from where it is fetched.
//	Once a data element is fetched, that element is stored locally and
//	subsequent usage of that element in the local computations does not
//	add to the data traffic."
//
// The processor owning a target element performs its updates
// (owner-computes), so it must access the two source elements of every
// pair update (Figure 1) and the diagonal element of the final scaling.
// Each distinct (processor, element) non-local pair costs one unit.
//
// Beyond the paper's totals, the simulator records the full
// processor-to-processor traffic matrix, which quantifies the paper's
// closing claim that wrap mappings "lead to processors communicating with
// a large number of other processors" while block schemes confine traffic
// to small groups.
package traffic

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sched"
)

// Result aggregates the traffic simulation.
type Result struct {
	P int
	// Total is the system-wide data traffic: the number of distinct
	// (processor, non-local element) accesses.
	Total int64
	// PerProc[p] is the traffic charged to processor p (its fetches).
	PerProc []int64
	// Pair[o][a] counts distinct elements owned by o and fetched by a.
	Pair [][]int64
}

// Mean returns the mean traffic per processor.
func (r *Result) Mean() float64 { return float64(r.Total) / float64(r.P) }

// MaxPerProc returns the largest per-processor traffic.
func (r *Result) MaxPerProc() int64 {
	var m int64
	for _, t := range r.PerProc {
		if t > m {
			m = t
		}
	}
	return m
}

// Partners returns, for each processor, the number of distinct processors
// it exchanges data with (in either direction).
func (r *Result) Partners() []int {
	out := make([]int, r.P)
	for a := 0; a < r.P; a++ {
		for b := 0; b < r.P; b++ {
			if a != b && (r.Pair[a][b] > 0 || r.Pair[b][a] > 0) {
				out[a]++
			}
		}
	}
	return out
}

// MeanPartners returns the average number of communication partners.
func (r *Result) MeanPartners() float64 {
	ps := r.Partners()
	sum := 0
	for _, p := range ps {
		sum += p
	}
	return float64(sum) / float64(r.P)
}

// Simulate runs the traffic model for a schedule. The factor ops must be
// built over the same symbolic factor the schedule was computed from.
// Processor counts above 64 are supported but use a slower path.
func Simulate(ops *model.Ops, s *sched.Schedule) *Result {
	nnz := ops.F.NNZ()
	if len(s.ElemProc) != nnz {
		panic(fmt.Sprintf("traffic: schedule covers %d elements, factor has %d", len(s.ElemProc), nnz))
	}
	r := &Result{
		P:       s.P,
		PerProc: make([]int64, s.P),
		Pair:    make([][]int64, s.P),
	}
	for i := range r.Pair {
		r.Pair[i] = make([]int64, s.P)
	}
	fetched := NewFetchDedup(s.P, nnz)
	access := func(elem int32, proc int32) {
		owner := s.ElemProc[elem]
		if owner == proc || !fetched.FirstFetch(elem, proc) {
			return
		}
		r.Total++
		r.PerProc[proc]++
		r.Pair[owner][proc]++
	}
	ops.ForEachUpdate(func(u model.Update) {
		proc := s.ElemProc[u.Tgt]
		access(u.SrcI, proc)
		access(u.SrcJ, proc)
	})
	ops.ForEachScale(func(tgt, diag int32) {
		access(diag, s.ElemProc[tgt])
	})
	return r
}

// HopWeightedTraffic weighs the processor-pair traffic matrix by hypercube
// hop distance: processors are identified with the vertices of a
// log2(P)-dimensional hypercube (the message-passing topology of the
// paper's era — its reference [8] factors on a hypercube), and each
// fetched element costs one unit per hop between owner and reader. For
// non-power-of-two P the Hamming distance of the processor indices is
// still a valid embedding metric. Lower hop-weighted totals mean the
// mapping's communication is topologically local.
func (r *Result) HopWeightedTraffic() int64 {
	var total int64
	for o := 0; o < r.P; o++ {
		for a := 0; a < r.P; a++ {
			if v := r.Pair[o][a]; v > 0 {
				total += v * int64(hamming(uint(o), uint(a)))
			}
		}
	}
	return total
}

func hamming(a, b uint) int {
	x := a ^ b
	d := 0
	for x != 0 {
		x &= x - 1
		d++
	}
	return d
}
