// Package interval implements an augmented, self-balancing interval tree.
//
// The partitioner of Venugopal & Naik computes the block-level dependencies
// of Section 3.3 "using this classification and the interval tree
// structure". Unit blocks are dense on integer row/column extents, so every
// dependency test in the ten categories reduces to interval-intersection
// queries; this package supplies those queries in O(log n + k).
//
// Intervals are closed integer ranges [Lo, Hi] carrying an integer payload
// (typically a unit-block index). The tree is an AVL tree keyed on
// (Lo, Hi, ID) and augmented with the subtree maximum of Hi, the classical
// CLRS construction.
package interval

import "fmt"

// Interval is a closed integer range [Lo, Hi] with a payload ID.
type Interval struct {
	Lo, Hi int
	ID     int
}

// Overlaps reports whether the closed ranges [a.Lo, a.Hi] and [lo, hi]
// intersect.
func (a Interval) Overlaps(lo, hi int) bool { return a.Lo <= hi && lo <= a.Hi }

// Contains reports whether x lies in [a.Lo, a.Hi].
func (a Interval) Contains(x int) bool { return a.Lo <= x && x <= a.Hi }

type node struct {
	iv          Interval
	maxHi       int
	height      int
	left, right *node
}

// Tree is an augmented AVL interval tree. The zero value is an empty tree
// ready to use.
type Tree struct {
	root *node
	size int
}

// Len returns the number of stored intervals.
func (t *Tree) Len() int { return t.size }

// Insert adds the interval [lo, hi] with payload id. Duplicate intervals
// (even with equal ids) are allowed. It panics if lo > hi.
func (t *Tree) Insert(lo, hi, id int) {
	if lo > hi {
		panic(fmt.Sprintf("interval: invalid range [%d,%d]", lo, hi))
	}
	t.root = insert(t.root, Interval{lo, hi, id})
	t.size++
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func maxHi(n *node) int {
	if n == nil {
		return -1 << 62
	}
	return n.maxHi
}

func (n *node) update() {
	n.height = 1 + max(height(n.left), height(n.right))
	n.maxHi = n.iv.Hi
	if m := maxHi(n.left); m > n.maxHi {
		n.maxHi = m
	}
	if m := maxHi(n.right); m > n.maxHi {
		n.maxHi = m
	}
}

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	y.update()
	x.update()
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	x.update()
	y.update()
	return y
}

func balance(n *node) *node {
	n.update()
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func less(a, b Interval) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.ID < b.ID
}

func insert(n *node, iv Interval) *node {
	if n == nil {
		nn := &node{iv: iv}
		nn.update()
		return nn
	}
	if less(iv, n.iv) {
		n.left = insert(n.left, iv)
	} else {
		n.right = insert(n.right, iv)
	}
	return balance(n)
}

// Overlap appends to dst the payload IDs of all intervals overlapping the
// closed range [lo, hi] and returns the extended slice. The order of
// results follows the tree's in-order traversal (sorted by Lo, then Hi,
// then ID).
func (t *Tree) Overlap(lo, hi int, dst []int) []int {
	return overlap(t.root, lo, hi, dst)
}

func overlap(n *node, lo, hi int, dst []int) []int {
	if n == nil || n.maxHi < lo {
		return dst
	}
	dst = overlap(n.left, lo, hi, dst)
	if n.iv.Overlaps(lo, hi) {
		dst = append(dst, n.iv.ID)
	}
	if n.iv.Lo <= hi {
		dst = overlap(n.right, lo, hi, dst)
	}
	return dst
}

// OverlapIntervals is like Overlap but returns the full intervals.
func (t *Tree) OverlapIntervals(lo, hi int, dst []Interval) []Interval {
	return overlapIv(t.root, lo, hi, dst)
}

func overlapIv(n *node, lo, hi int, dst []Interval) []Interval {
	if n == nil || n.maxHi < lo {
		return dst
	}
	dst = overlapIv(n.left, lo, hi, dst)
	if n.iv.Overlaps(lo, hi) {
		dst = append(dst, n.iv)
	}
	if n.iv.Lo <= hi {
		dst = overlapIv(n.right, lo, hi, dst)
	}
	return dst
}

// Stab appends the payload IDs of all intervals containing the point x.
func (t *Tree) Stab(x int, dst []int) []int { return t.Overlap(x, x, dst) }

// AnyOverlap reports whether at least one stored interval overlaps [lo, hi].
func (t *Tree) AnyOverlap(lo, hi int) bool {
	for n := t.root; n != nil; {
		if n.iv.Overlaps(lo, hi) {
			return true
		}
		if n.left != nil && n.left.maxHi >= lo {
			n = n.left
		} else {
			n = n.right
		}
	}
	return false
}

// Visit calls f on every stored interval in sorted order. If f returns
// false the traversal stops.
func (t *Tree) Visit(f func(Interval) bool) {
	var walk func(*node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && f(n.iv) && walk(n.right)
	}
	walk(t.root)
}

// checkInvariants verifies AVL balance and max-augmentation; used by tests.
func (t *Tree) checkInvariants() error {
	var walk func(n *node) (h, mx int, err error)
	walk = func(n *node) (int, int, error) {
		if n == nil {
			return 0, -1 << 62, nil
		}
		lh, lm, err := walk(n.left)
		if err != nil {
			return 0, 0, err
		}
		rh, rm, err := walk(n.right)
		if err != nil {
			return 0, 0, err
		}
		if lh-rh > 1 || rh-lh > 1 {
			return 0, 0, fmt.Errorf("interval: unbalanced node [%d,%d]", n.iv.Lo, n.iv.Hi)
		}
		mx := n.iv.Hi
		if lm > mx {
			mx = lm
		}
		if rm > mx {
			mx = rm
		}
		if mx != n.maxHi {
			return 0, 0, fmt.Errorf("interval: bad maxHi at [%d,%d]: have %d want %d", n.iv.Lo, n.iv.Hi, n.maxHi, mx)
		}
		h := 1 + max(lh, rh)
		if h != n.height {
			return 0, 0, fmt.Errorf("interval: bad height at [%d,%d]", n.iv.Lo, n.iv.Hi)
		}
		return h, mx, nil
	}
	_, _, err := walk(t.root)
	return err
}
