package interval

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Fatal("empty tree has nonzero length")
	}
	if got := tr.Overlap(0, 100, nil); len(got) != 0 {
		t.Fatalf("Overlap on empty tree = %v", got)
	}
	if tr.AnyOverlap(0, 100) {
		t.Fatal("AnyOverlap true on empty tree")
	}
}

func TestInsertPanicsOnInvalid(t *testing.T) {
	var tr Tree
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo > hi")
		}
	}()
	tr.Insert(5, 4, 0)
}

func TestBasicQueries(t *testing.T) {
	var tr Tree
	tr.Insert(1, 3, 10)
	tr.Insert(5, 8, 11)
	tr.Insert(2, 6, 12)
	tr.Insert(9, 9, 13)

	cases := []struct {
		lo, hi int
		want   []int
	}{
		{0, 0, nil},
		{3, 3, []int{10, 12}},
		{4, 4, []int{12}},
		{7, 10, []int{11, 13}},
		{0, 100, []int{10, 12, 11, 13}},
		{9, 9, []int{13}},
	}
	for _, c := range cases {
		got := tr.Overlap(c.lo, c.hi, nil)
		if len(got) != len(c.want) {
			t.Errorf("Overlap(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
			continue
		}
		sort.Ints(got)
		want := append([]int(nil), c.want...)
		sort.Ints(want)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("Overlap(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
				break
			}
		}
		if tr.AnyOverlap(c.lo, c.hi) != (len(c.want) > 0) {
			t.Errorf("AnyOverlap(%d,%d) inconsistent", c.lo, c.hi)
		}
	}
	if got := tr.Stab(2, nil); len(got) != 2 {
		t.Errorf("Stab(2) = %v, want two results", got)
	}
}

func TestVisitOrderAndEarlyStop(t *testing.T) {
	var tr Tree
	for i := 10; i >= 0; i-- {
		tr.Insert(i, i+2, i)
	}
	var seen []int
	tr.Visit(func(iv Interval) bool {
		seen = append(seen, iv.Lo)
		return true
	})
	if !sort.IntsAreSorted(seen) {
		t.Fatalf("Visit not in order: %v", seen)
	}
	if len(seen) != 11 {
		t.Fatalf("visited %d, want 11", len(seen))
	}
	count := 0
	tr.Visit(func(Interval) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

// brute is the reference implementation.
type brute []Interval

func (b brute) overlap(lo, hi int) []int {
	var out []int
	for _, iv := range b {
		if iv.Overlaps(lo, hi) {
			out = append(out, iv.ID)
		}
	}
	sort.Ints(out)
	return out
}

func TestRandomizedAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tree
		var ref brute
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			lo := rng.Intn(100)
			hi := lo + rng.Intn(30)
			tr.Insert(lo, hi, i)
			ref = append(ref, Interval{lo, hi, i})
		}
		if err := tr.checkInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		if tr.Len() != n {
			return false
		}
		for q := 0; q < 50; q++ {
			lo := rng.Intn(120) - 10
			hi := lo + rng.Intn(40)
			got := tr.Overlap(lo, hi, nil)
			sort.Ints(got)
			want := ref.overlap(lo, hi)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			if tr.AnyOverlap(lo, hi) != (len(want) > 0) {
				return false
			}
			ivs := tr.OverlapIntervals(lo, hi, nil)
			if len(ivs) != len(want) {
				return false
			}
			for _, iv := range ivs {
				if !iv.Overlaps(lo, hi) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedInsertionStaysBalanced(t *testing.T) {
	var tr Tree
	const n = 4096
	for i := 0; i < n; i++ {
		tr.Insert(i, i, i)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if h := height(tr.root); h > 14 { // AVL height bound ~1.44 log2(n)
		t.Fatalf("tree height %d too large for %d sorted inserts", h, n)
	}
	got := tr.Overlap(1000, 1002, nil)
	if len(got) != 3 {
		t.Fatalf("Overlap after sorted insert = %v", got)
	}
}

func TestDuplicateIntervals(t *testing.T) {
	var tr Tree
	for i := 0; i < 5; i++ {
		tr.Insert(3, 7, 42)
	}
	if got := tr.Stab(5, nil); len(got) != 5 {
		t.Fatalf("Stab over duplicates = %v, want 5 hits", got)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		var tr Tree
		for k := 0; k < 1000; k++ {
			lo := rng.Intn(10000)
			tr.Insert(lo, lo+rng.Intn(100), k)
		}
	}
}

func BenchmarkOverlapQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var tr Tree
	for k := 0; k < 10000; k++ {
		lo := rng.Intn(100000)
		tr.Insert(lo, lo+rng.Intn(1000), k)
	}
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Intn(100000)
		buf = tr.Overlap(lo, lo+500, buf[:0])
	}
}
