package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

func TestFactorizeKnown2x2(t *testing.T) {
	// A = [4 2; 2 5] => L = [2 0; 1 2].
	m, err := sparse.FromTriplets(2, []int{0, 1, 1}, []int{0, 0, 1}, []float64{4, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(m)
	c, err := Factorize(m, f)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 2}
	for k, w := range want {
		if math.Abs(c.Val[k]-w) > 1e-12 {
			t.Errorf("Val[%d] = %g, want %g", k, c.Val[k], w)
		}
	}
}

func TestFactorizeIdentity(t *testing.T) {
	m, _ := sparse.NewPattern(5, nil)
	m.SetLaplacianValues(1) // diag = 1 (degree 0 + 1)
	f := symbolic.Analyze(m)
	c, err := Factorize(m, f)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		if math.Abs(c.Val[f.ColPtr[j]]-1) > 1e-15 {
			t.Errorf("identity factor diagonal %d = %g", j, c.Val[f.ColPtr[j]])
		}
	}
}

func TestFactorizeNotSPD(t *testing.T) {
	m, err := sparse.FromTriplets(2, []int{0, 1, 1}, []int{0, 0, 1}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(m)
	_, err = Factorize(m, f)
	if err == nil {
		t.Fatal("expected not-positive-definite error")
	}
	var npd *NotPositiveDefiniteError
	if e, ok := err.(*NotPositiveDefiniteError); ok {
		npd = e
	} else {
		t.Fatalf("error type %T, want *NotPositiveDefiniteError", err)
	}
	if npd.Column != 1 {
		t.Errorf("failure column = %d, want 1", npd.Column)
	}
}

func TestFactorizeRejectsPatternOnly(t *testing.T) {
	m, _ := sparse.NewPattern(3, nil)
	f := symbolic.Analyze(m)
	if _, err := Factorize(m, f); err == nil {
		t.Fatal("expected error for pattern-only matrix")
	}
}

func TestFactorResidualRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := gen.Random(40, 1.5, seed)
		p := order.MMD(m)
		pm, err := m.Permute(p)
		if err != nil {
			return false
		}
		fac := symbolic.Analyze(pm)
		c, err := Factorize(pm, fac)
		if err != nil {
			return false
		}
		return FactorResidual(pm, c) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := gen.Random(50, 1.0, seed)
		fac := symbolic.Analyze(m)
		c, err := Factorize(m, fac)
		if err != nil {
			return false
		}
		xTrue := make([]float64, m.N)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := MatVec(m, xTrue)
		x := c.Solve(b)
		return ResidualNorm(m, x, b) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSuiteMatrices(t *testing.T) {
	for _, tm := range gen.Suite() {
		m := tm.Build()
		pm, err := m.Permute(order.MMD(m))
		if err != nil {
			t.Fatal(err)
		}
		fac := symbolic.Analyze(pm)
		c, err := Factorize(pm, fac)
		if err != nil {
			t.Fatalf("%s: %v", tm.Name, err)
		}
		b := make([]float64, pm.N)
		for i := range b {
			b[i] = float64(i%7) - 3
		}
		x := c.Solve(b)
		if r := ResidualNorm(pm, x, b); r > 1e-9 {
			t.Errorf("%s: solve residual %g", tm.Name, r)
		}
	}
}

func TestLowerUpperSolveConsistency(t *testing.T) {
	m := gen.Grid5(5, 5)
	fac := symbolic.Analyze(m)
	c, err := Factorize(m, fac)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	b[0] = 1
	y := c.LowerSolve(b)
	// L*y must equal b.
	lm := c.L()
	n := m.N
	got := make([]float64, n)
	for j := 0; j < n; j++ {
		cj := lm.Col(j)
		vj := lm.ColVal(j)
		for k, i := range cj {
			got[i] += vj[k] * y[j]
		}
	}
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-12 {
			t.Fatalf("L*y != b at %d: %g vs %g", i, got[i], b[i])
		}
	}
}

func TestMatVecSymmetry(t *testing.T) {
	// xᵀ(Ay) == yᵀ(Ax) for symmetric A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := gen.Random(20, 1.0, seed)
		x := make([]float64, m.N)
		y := make([]float64, m.N)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		ax := MatVec(m, x)
		ay := MatVec(m, y)
		var d1, d2 float64
		for i := range x {
			d1 += x[i] * ay[i]
			d2 += y[i] * ax[i]
		}
		return math.Abs(d1-d2) < 1e-8*(1+math.Abs(d1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDimensionMismatch(t *testing.T) {
	m := gen.Grid5(3, 3)
	other := gen.Grid5(2, 2)
	f := symbolic.Analyze(other)
	if _, err := Factorize(m, f); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func BenchmarkFactorizeLap30(b *testing.B) {
	m := gen.Lap30()
	pm, _ := m.Permute(order.MMD(m))
	fac := symbolic.Analyze(pm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(pm, fac); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveLap30(b *testing.B) {
	m := gen.Lap30()
	pm, _ := m.Permute(order.MMD(m))
	fac := symbolic.Analyze(pm)
	c, err := Factorize(pm, fac)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, pm.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Solve(rhs)
	}
}

func TestMultifrontalMatchesLeftLooking(t *testing.T) {
	// Two algorithmically independent factorizations must agree to
	// rounding on every test family.
	fc := func(seed int64) bool {
		m := gen.Random(45, 1.4, seed)
		pm, err := m.Permute(order.MMD(m))
		if err != nil {
			return false
		}
		f := symbolic.Analyze(pm)
		left, err := Factorize(pm, f)
		if err != nil {
			return false
		}
		multi, err := FactorizeMultifrontal(pm, f)
		if err != nil {
			return false
		}
		for k := range left.Val {
			if math.Abs(left.Val[k]-multi.Val[k]) > 1e-9*(1+math.Abs(left.Val[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMultifrontalSuite(t *testing.T) {
	for _, tm := range gen.Suite() {
		m := tm.Build()
		pm, err := m.Permute(order.MMD(m))
		if err != nil {
			t.Fatal(err)
		}
		f := symbolic.Analyze(pm)
		c, err := FactorizeMultifrontal(pm, f)
		if err != nil {
			t.Fatalf("%s: %v", tm.Name, err)
		}
		if r := FactorResidual(pm, c); r > 1e-8 {
			t.Errorf("%s: multifrontal residual %g", tm.Name, r)
		}
	}
}

func TestMultifrontalNotSPD(t *testing.T) {
	m, err := sparse.FromTriplets(2, []int{0, 1, 1}, []int{0, 0, 1}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(m)
	if _, err := FactorizeMultifrontal(m, f); err == nil {
		t.Fatal("expected not-SPD error")
	}
	bare, _ := sparse.NewPattern(2, nil)
	if _, err := FactorizeMultifrontal(bare, symbolic.Analyze(bare)); err == nil {
		t.Fatal("expected pattern-only error")
	}
}

func BenchmarkMultifrontalLap30(b *testing.B) {
	m := gen.Lap30()
	pm, _ := m.Permute(order.MMD(m))
	f := symbolic.Analyze(pm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorizeMultifrontal(pm, f); err != nil {
			b.Fatal(err)
		}
	}
}
