package numeric

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// Regression: FactorizeLDL rejected zero and NaN pivots but let ±Inf
// through, silently producing an Inf/NaN factor. A = [1e-308 1e8; 1e8 1]
// overflows: L10 = 1e8/1e-308 = +Inf, then D1 = 1 - Inf·1e-308·Inf = -Inf.
func TestLDLRejectsOverflowPivot(t *testing.T) {
	m, err := sparse.FromTriplets(2, []int{0, 1, 1}, []int{0, 0, 1}, []float64{1e-308, 1e8, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(m)
	if _, err := FactorizeLDL(m, f); err == nil {
		t.Fatal("expected error for overflowing pivot, got a silent Inf factor")
	} else if !strings.Contains(err.Error(), "pivot") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// The same audit for Cholesky: diagonal updates only subtract squares, so
// a +Inf pivot is reachable only through an Inf input — which sqrt
// silently accepted before the finiteness check.
func TestCholeskyRejectsInfPivot(t *testing.T) {
	m, err := sparse.FromTriplets(1, []int{0}, []int{0}, []float64{math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(m)
	if _, err := Factorize(m, f); err == nil {
		t.Fatal("expected error for +Inf pivot, got a silent Inf factor")
	}
}

func TestLDLRejectsNaNPivot(t *testing.T) {
	m, err := sparse.FromTriplets(1, []int{0}, []int{0}, []float64{math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(m)
	if _, err := FactorizeLDL(m, f); err == nil {
		t.Fatal("expected error for NaN pivot")
	}
}
