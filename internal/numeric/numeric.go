// Package numeric implements sequential sparse Cholesky factorization and
// triangular solves on top of the symbolic structure.
//
// The paper's partitioner never runs numbers — it schedules the update
// operations of Figure 1 (L[i,j] -= L[i,k]*L[j,k], then a scale by the
// square root of the diagonal). This package executes exactly those
// operations sequentially, which serves two purposes in the reproduction:
// it validates the pipeline end-to-end (the block-parallel executor in
// internal/exec must produce the same factor), and it grounds the work
// model used by the scheduler (2 units per off-diagonal pair update, 1 unit
// per diagonal update).
package numeric

import (
	"fmt"
	"math"

	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// Cholesky is a numeric Cholesky factor: values aligned with the row
// indices of the symbolic factor structure F, so that
// A = L*Lᵀ with L lower triangular.
type Cholesky struct {
	F   *symbolic.Factor
	Val []float64
}

// NotPositiveDefiniteError reports a nonpositive pivot during factorization.
type NotPositiveDefiniteError struct {
	Column int
	Pivot  float64
}

func (e *NotPositiveDefiniteError) Error() string {
	return fmt.Sprintf("numeric: nonpositive pivot %g at column %d", e.Pivot, e.Column)
}

// Factorize computes the numeric Cholesky factor of m using the symbolic
// structure f (which must be Analyze(m) or a superset of the true
// structure). It implements the classical left-looking column algorithm:
// column j receives one update from every column k < j with L[j][k] != 0,
// then is scaled by the square root of its diagonal.
func Factorize(m *sparse.Matrix, f *symbolic.Factor) (*Cholesky, error) {
	if m.Val == nil {
		return nil, fmt.Errorf("numeric: matrix has no values")
	}
	if m.N != f.N {
		return nil, fmt.Errorf("numeric: dimension mismatch %d vs %d", m.N, f.N)
	}
	n := m.N
	val := make([]float64, f.NNZ())
	w := make([]float64, n)   // dense accumulator for the current column
	ptr := make([]int, n)     // per-column pointer to next update row
	link := make([]int, n)    // link[r]: head of column chain keyed by row r
	nextCol := make([]int, n) // chain links
	for i := range link {
		link[i] = -1
		nextCol[i] = -1
	}
	for j := 0; j < n; j++ {
		cj := f.Col(j)
		// Scatter A's column j into w.
		for _, i := range cj {
			w[i] = 0
		}
		acol := m.Col(j)
		avals := m.ColVal(j)
		for k, i := range acol {
			w[i] = avals[k]
		}
		// Apply updates from all columns k with L[j][k] != 0.
		for k := link[j]; k != -1; {
			nk := nextCol[k]
			p := ptr[k]
			end := f.ColPtr[k+1]
			ljk := val[p]
			for q := p; q < end; q++ {
				w[f.RowInd[q]] -= val[q] * ljk
			}
			// Advance column k to its next row block.
			ptr[k] = p + 1
			if p+1 < end {
				r := f.RowInd[p+1]
				nextCol[k] = link[r]
				link[r] = k
			}
			k = nk
		}
		// Scale. The pivot must be finite and positive: besides the
		// nonpositive/NaN cases, +Inf (an overflowed or Inf-contaminated
		// diagonal) would silently survive the square root and poison the
		// factor.
		pivot := w[j]
		if pivot <= 0 || math.IsNaN(pivot) || math.IsInf(pivot, 0) {
			return nil, &NotPositiveDefiniteError{Column: j, Pivot: pivot}
		}
		d := math.Sqrt(pivot)
		base := f.ColPtr[j]
		val[base] = d
		for q := base + 1; q < f.ColPtr[j+1]; q++ {
			val[q] = w[f.RowInd[q]] / d
		}
		// Register column j for its first sub-diagonal row.
		if f.ColPtr[j+1] > base+1 {
			ptr[j] = base + 1
			r := f.RowInd[base+1]
			nextCol[j] = link[r]
			link[r] = j
		}
	}
	return &Cholesky{F: f, Val: val}, nil
}

// LowerSolve solves L*y = b in place of a fresh slice and returns y.
func (c *Cholesky) LowerSolve(b []float64) []float64 {
	n := c.F.N
	y := append([]float64(nil), b...)
	for j := 0; j < n; j++ {
		base := c.F.ColPtr[j]
		y[j] /= c.Val[base]
		yj := y[j]
		for q := base + 1; q < c.F.ColPtr[j+1]; q++ {
			y[c.F.RowInd[q]] -= c.Val[q] * yj
		}
	}
	return y
}

// UpperSolve solves Lᵀ*x = y and returns x.
func (c *Cholesky) UpperSolve(y []float64) []float64 {
	n := c.F.N
	x := append([]float64(nil), y...)
	for j := n - 1; j >= 0; j-- {
		base := c.F.ColPtr[j]
		sum := x[j]
		for q := base + 1; q < c.F.ColPtr[j+1]; q++ {
			sum -= c.Val[q] * x[c.F.RowInd[q]]
		}
		x[j] = sum / c.Val[base]
	}
	return x
}

// Solve solves A*x = b for the matrix that was factorized.
func (c *Cholesky) Solve(b []float64) []float64 {
	return c.UpperSolve(c.LowerSolve(b))
}

// L returns the factor as a lower-triangular sparse matrix with values.
func (c *Cholesky) L() *sparse.Matrix {
	return &sparse.Matrix{
		N:      c.F.N,
		ColPtr: append([]int(nil), c.F.ColPtr...),
		RowInd: append([]int(nil), c.F.RowInd...),
		Val:    append([]float64(nil), c.Val...),
	}
}

// MatVec computes y = A*x for the full symmetric matrix stored as its
// lower triangle.
func MatVec(m *sparse.Matrix, x []float64) []float64 {
	y := make([]float64, m.N)
	for j := 0; j < m.N; j++ {
		cj := m.Col(j)
		vj := m.ColVal(j)
		y[j] += vj[0] * x[j]
		for k := 1; k < len(cj); k++ {
			i := cj[k]
			y[i] += vj[k] * x[j]
			y[j] += vj[k] * x[i]
		}
	}
	return y
}

// ResidualNorm returns ‖A·x − b‖∞ / ‖b‖∞ (or the absolute norm when b is
// zero), a convergence check for tests and examples.
func ResidualNorm(m *sparse.Matrix, x, b []float64) float64 {
	ax := MatVec(m, x)
	var rmax, bmax float64
	for i := range b {
		r := math.Abs(ax[i] - b[i])
		if r > rmax {
			rmax = r
		}
		if a := math.Abs(b[i]); a > bmax {
			bmax = a
		}
	}
	if bmax == 0 {
		return rmax
	}
	return rmax / bmax
}

// FactorResidual returns max |(L·Lᵀ − A)[i][j]| over the structure of A,
// used to validate factorizations in tests.
func FactorResidual(m *sparse.Matrix, c *Cholesky) float64 {
	// Compute (L Lᵀ)[i][j] for every stored position of A.
	// For position (i, j): sum over k <= j of L[i][k]*L[j][k].
	// Using column access of L: iterate columns k, and for each pair of
	// entries (i, k), (j, k) accumulate into a map keyed by A's positions.
	n := m.N
	// Map from (i,j) to accumulated value, restricted to A's pattern.
	acc := make(map[[2]int]float64, m.NNZ())
	for j := 0; j < n; j++ {
		for _, i := range m.Col(j) {
			acc[[2]int{i, j}] = 0
		}
	}
	for k := 0; k < n; k++ {
		col := c.F.Col(k)
		base := c.F.ColPtr[k]
		for a := 0; a < len(col); a++ {
			for b := a; b < len(col); b++ {
				key := [2]int{col[b], col[a]}
				if _, ok := acc[key]; ok {
					acc[key] += c.Val[base+a] * c.Val[base+b]
				}
			}
		}
	}
	var worst float64
	for j := 0; j < n; j++ {
		cj := m.Col(j)
		vj := m.ColVal(j)
		for k, i := range cj {
			d := math.Abs(acc[[2]int{i, j}] - vj[k])
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
