package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// replayFactorize re-runs the left-looking Cholesky using only the
// precomputed chain schedule (Chains) instead of the live link/ptr
// bookkeeping. Bitwise agreement with Factorize is what entitles the
// parallel 2D engine to claim bit-for-bit reproducibility: both walk the
// identical update sequence in the identical order.
func replayFactorize(t *testing.T, m *gridCase) {
	t.Helper()
	f := m.f
	head, pos := Chains(f)
	colOf := ColIndex(f)
	val := ScatterA(m.m, f)
	n := f.N
	tpos := make([]int32, n)
	stamp := make([]int32, n)
	for j := 0; j < n; j++ {
		round := int32(j + 1)
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			tpos[f.RowInd[q]] = int32(q)
			stamp[f.RowInd[q]] = round
		}
		for ci := head[j]; ci < head[j+1]; ci++ {
			p := pos[ci]
			k := int(colOf[p])
			ljk := val[p]
			for q := p; q < int32(f.ColPtr[k+1]); q++ {
				i := f.RowInd[q]
				if stamp[i] != round {
					continue
				}
				val[tpos[i]] -= val[q] * ljk
			}
		}
		diag := f.ColPtr[j]
		pivot := val[diag]
		if pivot <= 0 || math.IsNaN(pivot) || math.IsInf(pivot, 0) {
			t.Fatalf("replay: bad pivot %g at column %d", pivot, j)
		}
		d := math.Sqrt(pivot)
		val[diag] = d
		for q := diag + 1; q < f.ColPtr[j+1]; q++ {
			val[q] /= d
		}
	}
	want, err := Factorize(m.m, f)
	if err != nil {
		t.Fatal(err)
	}
	for q := range want.Val {
		if math.Float64bits(val[q]) != math.Float64bits(want.Val[q]) {
			t.Fatalf("replay diverged at position %d: %g vs %g", q, val[q], want.Val[q])
		}
	}
}

type gridCase struct {
	m *sparse.Matrix
	f *symbolic.Factor
}

func TestChainsReplayMatchesFactorize(t *testing.T) {
	for _, build := range []func() *sparse.Matrix{
		func() *sparse.Matrix { return gen.Lap30() },
		func() *sparse.Matrix { return gen.Grid5(8, 8) },
	} {
		m := build()
		pm, err := m.Permute(order.MMD(m))
		if err != nil {
			t.Fatal(err)
		}
		replayFactorize(t, &gridCase{m: pm, f: symbolic.Analyze(pm)})
	}
}

func TestChainsReplayRandomProperty(t *testing.T) {
	fc := func(seed int64) bool {
		m := gen.Random(40, 1.3, seed)
		pm, err := m.Permute(order.MMD(m))
		if err != nil {
			return false
		}
		f := symbolic.Analyze(pm)
		// Run the replay in a subtest-free way: reuse the helper, treating a
		// Fatal as a property failure is fine here because failures abort.
		replayFactorize(t, &gridCase{m: pm, f: f})
		return true
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(fc, cfg); err != nil {
		t.Fatal(err)
	}
}

// Chains' per-column segments must cover every below-diagonal update
// source exactly once, and ColIndex must invert ColPtr.
func TestChainsShape(t *testing.T) {
	m := gen.Lap30()
	pm, err := m.Permute(order.MMD(m))
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(pm)
	head, pos := Chains(f)
	if len(head) != f.N+1 || head[0] != 0 || int(head[f.N]) != len(pos) {
		t.Fatalf("head shape: len %d, head[0]=%d, head[n]=%d, len(pos)=%d",
			len(head), head[0], head[f.N], len(pos))
	}
	colOf := ColIndex(f)
	seen := make(map[int32]bool, len(pos))
	for j := 0; j < f.N; j++ {
		for ci := head[j]; ci < head[j+1]; ci++ {
			p := pos[ci]
			if seen[p] {
				t.Fatalf("position %d appears in two chains", p)
			}
			seen[p] = true
			k := int(colOf[p])
			if k >= j {
				t.Fatalf("column %d sourced from non-earlier column %d", j, k)
			}
			if f.RowInd[p] != j {
				t.Fatalf("chain of column %d points at row %d", j, f.RowInd[p])
			}
		}
	}
	// Every strictly-below-diagonal position is the head of exactly one
	// update chain segment for its row's column.
	var want int
	for j := 0; j < f.N; j++ {
		want += f.ColPtr[j+1] - f.ColPtr[j] - 1
	}
	if len(pos) != want {
		t.Fatalf("chain covers %d positions, want %d", len(pos), want)
	}
}
