package numeric

import (
	"fmt"
	"math"

	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// FactorizeMultifrontal computes the Cholesky factor with the multifrontal
// method: each column assembles a dense frontal matrix from its entries of
// A and the update matrices of its elimination-tree children (the
// "extend-add" operation), eliminates its pivot, and passes the Schur
// complement to its parent.
//
// The method is algorithmically independent of the left-looking kernel in
// Factorize — updates flow through dense frontal matrices along the etree
// rather than through column scatter/gather — so agreement between the two
// is a strong cross-validation of both, and of the symbolic structure
// (frontal row sets are exactly the factor's column structures).
func FactorizeMultifrontal(m *sparse.Matrix, f *symbolic.Factor) (*Cholesky, error) {
	if m.Val == nil {
		return nil, fmt.Errorf("numeric: matrix has no values")
	}
	if m.N != f.N {
		return nil, fmt.Errorf("numeric: dimension mismatch %d vs %d", m.N, f.N)
	}
	n := m.N
	val := make([]float64, f.NNZ())
	// update[j] is the Schur complement produced by column j: a dense
	// symmetric matrix over rows f.Col(j)[1:], stored as its lower
	// triangle in row-major packed order. It is consumed (and released)
	// by j's parent.
	update := make([][]float64, n)
	// Children lists from the elimination tree.
	childHead := make([]int, n)
	childNext := make([]int, n)
	for i := range childHead {
		childHead[i] = -1
		childNext[i] = -1
	}
	for j := n - 1; j >= 0; j-- {
		if p := f.Parent[j]; p != -1 {
			childNext[j] = childHead[p]
			childHead[p] = j
		}
	}
	// pos maps global row index -> position in the current front.
	pos := make([]int, n)
	for j := 0; j < n; j++ {
		front := f.Col(j) // rows of the frontal matrix, front[0] == j
		k := len(front)
		for t, r := range front {
			pos[r] = t
		}
		// Dense frontal matrix, lower triangle packed row-major:
		// F[r][c] at frontBuf[r*(r+1)/2 + c] for c <= r (front-local
		// indices).
		frontBuf := make([]float64, k*(k+1)/2)
		// Assemble A's column j (A's symmetric part within the front is
		// only its column j, since rows of A(i,j) with i in front and
		// j' in front, j' > j belong to later columns).
		acol := m.Col(j)
		avals := m.ColVal(j)
		for t, i := range acol {
			frontBuf[pos[i]*(pos[i]+1)/2] += avals[t] // column 0 of the front
		}
		// Extend-add the children's update matrices.
		for c := childHead[j]; c != -1; c = childNext[c] {
			crows := f.Col(c)[1:] // rows of c's update matrix
			u := update[c]
			for a := 0; a < len(crows); a++ {
				pa := pos[crows[a]]
				for b := 0; b <= a; b++ {
					pb := pos[crows[b]]
					ra, rb := pa, pb
					if ra < rb {
						ra, rb = rb, ra
					}
					frontBuf[ra*(ra+1)/2+rb] += u[a*(a+1)/2+b]
				}
			}
			update[c] = nil // release
		}
		// Eliminate the pivot (front-local row/column 0).
		pivot := frontBuf[0]
		if pivot <= 0 || math.IsNaN(pivot) {
			return nil, &NotPositiveDefiniteError{Column: j, Pivot: pivot}
		}
		d := math.Sqrt(pivot)
		base := f.ColPtr[j]
		val[base] = d
		for r := 1; r < k; r++ {
			val[base+r] = frontBuf[r*(r+1)/2] / d
		}
		// Schur complement over the remaining k-1 rows.
		if k > 1 {
			u := make([]float64, (k-1)*k/2)
			for r := 1; r < k; r++ {
				lr := val[base+r]
				for c := 1; c <= r; c++ {
					u[(r-1)*r/2+(c-1)] = frontBuf[r*(r+1)/2+c] - lr*val[base+c]
				}
			}
			update[j] = u
		}
	}
	return &Cholesky{F: f, Val: val}, nil
}
