package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

func TestLDLKnown2x2(t *testing.T) {
	// A = [4 2; 2 5] = L D L^T with L = [1 0; 0.5 1], D = diag(4, 4).
	m, err := sparse.FromTriplets(2, []int{0, 1, 1}, []int{0, 0, 1}, []float64{4, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(m)
	l, err := FactorizeLDL(m, f)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 0.5, 4}
	for k, w := range want {
		if math.Abs(l.Val[k]-w) > 1e-12 {
			t.Errorf("Val[%d] = %g, want %g", k, l.Val[k], w)
		}
	}
}

func TestLDLMatchesCholeskyOnSPD(t *testing.T) {
	// For SPD matrices, L_ldl * sqrt(D) == L_chol.
	fc := func(seed int64) bool {
		m := gen.Random(35, 1.3, seed)
		pm, err := m.Permute(order.MMD(m))
		if err != nil {
			return false
		}
		f := symbolic.Analyze(pm)
		chol, err := Factorize(pm, f)
		if err != nil {
			return false
		}
		ldl, err := FactorizeLDL(pm, f)
		if err != nil {
			return false
		}
		for j := 0; j < f.N; j++ {
			base := f.ColPtr[j]
			d := math.Sqrt(ldl.Val[base])
			if math.Abs(d-chol.Val[base]) > 1e-9 {
				return false
			}
			for q := base + 1; q < f.ColPtr[j+1]; q++ {
				if math.Abs(ldl.Val[q]*d-chol.Val[q]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLDLSolve(t *testing.T) {
	fc := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := gen.Random(40, 1.2, seed)
		f := symbolic.Analyze(m)
		l, err := FactorizeLDL(m, f)
		if err != nil {
			return false
		}
		xTrue := make([]float64, m.N)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := MatVec(m, xTrue)
		x := l.Solve(b)
		return ResidualNorm(m, x, b) < 1e-10
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLDLIndefinite(t *testing.T) {
	// LDL^T handles symmetric indefinite matrices Cholesky rejects
	// (as long as no pivot hits zero). A = [1 2; 2 1]: eigenvalues 3, -1.
	m, err := sparse.FromTriplets(2, []int{0, 1, 1}, []int{0, 0, 1}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(m)
	if _, err := Factorize(m, f); err == nil {
		t.Fatal("Cholesky should reject an indefinite matrix")
	}
	l, err := FactorizeLDL(m, f)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg, zero := l.Inertia()
	if pos != 1 || neg != 1 || zero != 0 {
		t.Errorf("inertia = (%d,%d,%d), want (1,1,0)", pos, neg, zero)
	}
	x := l.Solve([]float64{1, 0})
	if r := ResidualNorm(m, x, []float64{1, 0}); r > 1e-12 {
		t.Errorf("indefinite solve residual %g", r)
	}
}

func TestLDLInertiaSPD(t *testing.T) {
	m := gen.Lap30()
	f := symbolic.Analyze(m)
	l, err := FactorizeLDL(m, f)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg, zero := l.Inertia()
	if pos != m.N || neg != 0 || zero != 0 {
		t.Errorf("SPD inertia = (%d,%d,%d), want (%d,0,0)", pos, neg, zero, m.N)
	}
}

func TestLDLErrors(t *testing.T) {
	m, _ := sparse.NewPattern(3, nil)
	f := symbolic.Analyze(m)
	if _, err := FactorizeLDL(m, f); err == nil {
		t.Fatal("expected error for pattern-only matrix")
	}
	// Zero pivot: A = [0].
	z, _ := sparse.FromTriplets(1, []int{0}, []int{0}, []float64{0})
	fz := symbolic.Analyze(z)
	if _, err := FactorizeLDL(z, fz); err == nil {
		t.Fatal("expected zero-pivot error")
	}
}

func BenchmarkFactorizeLDLLap30(b *testing.B) {
	m := gen.Lap30()
	pm, _ := m.Permute(order.MMD(m))
	f := symbolic.Analyze(pm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorizeLDL(pm, f); err != nil {
			b.Fatal(err)
		}
	}
}
