package numeric

import (
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// Chains replays the link/ptr chain bookkeeping of the left-looking column
// algorithm (Factorize and FactorizeLDL share it verbatim) over the
// symbolic structure alone, recording the exact update schedule the serial
// factorization executes: for every target column j, the chain entries
// head[j] <= c < head[j+1] list — in serial application order — the value
// position pos[c] of the element (j, k) whose source column k updates j.
// The update itself then reads column k from pos[c] to its end.
//
// Floating-point subtraction is order-sensitive, so any executor that
// wants to reproduce the serial factor bit for bit must apply each
// column's updates in exactly this order; the parallel 2D engine in
// internal/exec does, which is what makes its bit-identity guarantee hold
// rather than a tolerance comparison. The source column of entry c is
// recoverable as the column containing pos[c] (see ColIndex).
func Chains(f *symbolic.Factor) (head, pos []int32) {
	n := f.N
	ptr := make([]int, n)
	link := make([]int, n)
	nextCol := make([]int, n)
	for i := range link {
		link[i] = -1
		nextCol[i] = -1
	}
	head = make([]int32, n+1)
	for j := 0; j < n; j++ {
		for k := link[j]; k != -1; {
			nk := nextCol[k]
			p := ptr[k]
			pos = append(pos, int32(p))
			// Advance column k to its next row block, exactly as the
			// numeric loops do.
			ptr[k] = p + 1
			if p+1 < f.ColPtr[k+1] {
				r := f.RowInd[p+1]
				nextCol[k] = link[r]
				link[r] = k
			}
			k = nk
		}
		head[j+1] = int32(len(pos))
		// Register column j for its first sub-diagonal row.
		base := f.ColPtr[j]
		if f.ColPtr[j+1] > base+1 {
			ptr[j] = base + 1
			r := f.RowInd[base+1]
			nextCol[j] = link[r]
			link[r] = j
		}
	}
	return head, pos
}

// ColIndex maps every factor nonzero position to its column.
func ColIndex(f *symbolic.Factor) []int32 {
	colOf := make([]int32, f.NNZ())
	for j := 0; j < f.N; j++ {
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			colOf[q] = int32(j)
		}
	}
	return colOf
}

// ScatterA scatters the lower-triangle values of m into factor positions:
// the returned slice is aligned with f's structure, holding A's value at
// every position in A's pattern and zero elsewhere — the starting state of
// every left-looking factorization. m's pattern must be a subset of f's
// (f is Analyze(m) or a superset).
func ScatterA(m *sparse.Matrix, f *symbolic.Factor) []float64 {
	val := make([]float64, f.NNZ())
	for j := 0; j < m.N; j++ {
		cj := m.Col(j)
		vj := m.ColVal(j)
		fc := f.Col(j)
		base := f.ColPtr[j]
		t := 0
		for k, i := range cj {
			for fc[t] != i {
				t++
			}
			val[base+t] = vj[k]
		}
	}
	return val
}
