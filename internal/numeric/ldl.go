package numeric

import (
	"fmt"
	"math"

	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// LDL is a square-root-free factorization A = L·D·Lᵀ with unit lower
// triangular L and diagonal D. The paper's Section 5 claims the
// partitioning/scheduling methodology "can very easily be adapted to other
// factoring methods used in sparse matrix computations"; LDLᵀ has exactly
// the same element-level dependency structure as Cholesky (Figure 1), so
// the same symbolic factor, partition and schedule drive it unchanged —
// which the tests verify by running the block-parallel executor with the
// LDL kernel.
//
// Val is aligned with the symbolic structure: the diagonal position of
// column j stores D[j]; off-diagonal positions store L[i,j] (the implicit
// unit diagonal of L is not stored).
type LDL struct {
	F   *symbolic.Factor
	Val []float64
}

// FactorizeLDL computes the LDLᵀ factorization with the left-looking
// column algorithm. Unlike Cholesky it succeeds for any symmetric matrix
// whose leading minors are nonsingular (D may carry negative entries);
// a zero pivot is reported as an error.
func FactorizeLDL(m *sparse.Matrix, f *symbolic.Factor) (*LDL, error) {
	if m.Val == nil {
		return nil, fmt.Errorf("numeric: matrix has no values")
	}
	if m.N != f.N {
		return nil, fmt.Errorf("numeric: dimension mismatch %d vs %d", m.N, f.N)
	}
	n := m.N
	val := make([]float64, f.NNZ())
	w := make([]float64, n)
	ptr := make([]int, n)
	link := make([]int, n)
	nextCol := make([]int, n)
	for i := range link {
		link[i] = -1
		nextCol[i] = -1
	}
	for j := 0; j < n; j++ {
		cj := f.Col(j)
		for _, i := range cj {
			w[i] = 0
		}
		acol := m.Col(j)
		avals := m.ColVal(j)
		for k, i := range acol {
			w[i] = avals[k]
		}
		for k := link[j]; k != -1; {
			nk := nextCol[k]
			p := ptr[k]
			end := f.ColPtr[k+1]
			dk := val[f.ColPtr[k]] // D[k]
			ljk := val[p]
			for q := p; q < end; q++ {
				w[f.RowInd[q]] -= val[q] * dk * ljk
			}
			ptr[k] = p + 1
			if p+1 < end {
				r := f.RowInd[p+1]
				nextCol[k] = link[r]
				link[r] = k
			}
			k = nk
		}
		// The pivot must be finite and nonzero: ±Inf (overflow in the
		// update sums) would otherwise divide the off-diagonals into
		// zeros/NaNs and silently pollute Val.
		pivot := w[j]
		if pivot == 0 || math.IsNaN(pivot) || math.IsInf(pivot, 0) {
			return nil, fmt.Errorf("numeric: unusable pivot %g at column %d (want finite nonzero)", pivot, j)
		}
		base := f.ColPtr[j]
		val[base] = pivot
		for q := base + 1; q < f.ColPtr[j+1]; q++ {
			val[q] = w[f.RowInd[q]] / pivot
		}
		if f.ColPtr[j+1] > base+1 {
			ptr[j] = base + 1
			r := f.RowInd[base+1]
			nextCol[j] = link[r]
			link[r] = j
		}
	}
	return &LDL{F: f, Val: val}, nil
}

// Solve solves A·x = b using the computed factorization: L·z = b,
// w = D⁻¹·z, Lᵀ·x = w.
func (l *LDL) Solve(b []float64) []float64 {
	n := l.F.N
	x := append([]float64(nil), b...)
	// Forward: L z = b (unit diagonal).
	for j := 0; j < n; j++ {
		base := l.F.ColPtr[j]
		zj := x[j]
		for q := base + 1; q < l.F.ColPtr[j+1]; q++ {
			x[l.F.RowInd[q]] -= l.Val[q] * zj
		}
	}
	// Diagonal.
	for j := 0; j < n; j++ {
		x[j] /= l.Val[l.F.ColPtr[j]]
	}
	// Backward: Lᵀ x = w.
	for j := n - 1; j >= 0; j-- {
		base := l.F.ColPtr[j]
		sum := x[j]
		for q := base + 1; q < l.F.ColPtr[j+1]; q++ {
			sum -= l.Val[q] * x[l.F.RowInd[q]]
		}
		x[j] = sum
	}
	return x
}

// D returns the diagonal of the factorization.
func (l *LDL) D() []float64 {
	d := make([]float64, l.F.N)
	for j := 0; j < l.F.N; j++ {
		d[j] = l.Val[l.F.ColPtr[j]]
	}
	return d
}

// Inertia returns the number of positive, negative and zero entries of D,
// which by Sylvester's law equals the inertia of A.
func (l *LDL) Inertia() (pos, neg, zero int) {
	for _, d := range l.D() {
		switch {
		case d > 0:
			pos++
		case d < 0:
			neg++
		default:
			zero++
		}
	}
	return
}
