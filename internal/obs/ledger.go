package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// LedgerSchema identifies the bench ledger format; bump it on any
// incompatible change to BenchRecord.
const LedgerSchema = "repro-bench/v1"

// ProfileSummary is the compact per-run slice of a Profile that goes into
// the bench ledger: the global time breakdown plus the critical-path
// attribution.
type ProfileSummary struct {
	Busy         int64 `json:"busy"`
	Comm         int64 `json:"comm"`
	Idle         int64 `json:"idle"`
	Stall        int64 `json:"stall"`
	CriticalLen  int   `json:"critical_len"`
	CriticalWork int64 `json:"critical_work"`
	CriticalComm int64 `json:"critical_comm"`
	// Degenerate counts zero-duration measured events (clock resolution),
	// nonzero only on real-run profiles.
	Degenerate int `json:"degenerate,omitempty"`
}

// Summary collapses a Profile into its ledger form.
func (p *Profile) Summary() ProfileSummary {
	return ProfileSummary{
		Busy:         p.Busy(),
		Comm:         p.Comm(),
		Idle:         p.Idle(),
		Stall:        p.Stall(),
		CriticalLen:  len(p.Critical),
		CriticalWork: p.CriticalWork(),
		CriticalComm: p.CriticalComm(),
		Degenerate:   p.Degenerate,
	}
}

// CalibSummary is the fit block every kind "calibrate" record carries:
// the fitted cost-model parameters (Alpha and Beta live in the record's
// own fields), the fit diagnostics, and the row's calibrated wall-clock
// prediction next to the speedup MAPE of the whole study. None of its
// fields are omitempty — ValidateLedger insists on the block's keys, and
// a legitimately zero Gamma must still serialize.
type CalibSummary struct {
	Gamma     float64 `json:"gamma"`       // fitted per-task overhead, work units
	NsPerWork float64 `json:"ns_per_work"` // fitted serial rate, ns per work unit
	R2        float64 `json:"r2"`
	Samples   int     `json:"samples"`
	Dropped   int     `json:"dropped"`       // zero-/negative-duration events excluded
	CalibNs   int64   `json:"calibrated_ns"` // this row's calibrated span prediction, ns
	MAPEUncal float64 `json:"mape_uncalibrated"`
	MAPECal   float64 `json:"mape_calibrated"`
}

// BenchRecord is one benchmarked run in the ledger: a (matrix, strategy,
// P, comm model) point with its makespan, traffic, efficiency and profile
// summary. Kind distinguishes the mapping family ("strategy" for the 1D
// column mappers, "tile2d" for the native 2D mappers) — or "measure" for a
// real wall-clock execution, whose rows additionally carry the measured
// times and the measured-vs-predicted speedups (and whose Makespan is the
// simulator's prediction, Efficiency the measured speedup over P, Profile
// the real-run breakdown).
type BenchRecord struct {
	Matrix     string          `json:"matrix"`
	Strategy   string          `json:"strategy"`
	Kind       string          `json:"kind"`
	P          int             `json:"p"`
	Alpha      float64         `json:"alpha"`
	Beta       float64         `json:"beta"`
	Makespan   int64           `json:"makespan"`
	Traffic    int64           `json:"traffic"`
	Efficiency float64         `json:"efficiency"`
	Profile    *ProfileSummary `json:"profile,omitempty"`
	// Real-execution fields, set on Kind "measure" and "pipeline" records.
	SerialNs        int64   `json:"serial_ns,omitempty"`
	MeasuredNs      int64   `json:"measured_ns,omitempty"`
	MeasuredSpeedup float64 `json:"measured_speedup,omitempty"`
	PredSpeedup     float64 `json:"predicted_speedup,omitempty"`
	// Artifact-cache counters, set only on Kind "pipeline" records (the
	// staged analyze-once/factor-many benchmark): store hits and misses
	// accumulated across the benchmarked request sequence.
	Hits   int64 `json:"hits,omitempty"`
	Misses int64 `json:"misses,omitempty"`
	// Calib is the fit block of Kind "calibrate" records: the record's
	// Alpha/Beta/Makespan then describe the *fitted* model and its
	// calibrated span, and Calib carries Gamma, the nanosecond scale, the
	// fit diagnostics and the study's MAPE columns.
	Calib *CalibSummary `json:"calib,omitempty"`
}

// Ledger is the machine-readable bench output, written as BENCH_*.json:
// a schema tag plus one BenchRecord per run.
type Ledger struct {
	Schema  string        `json:"schema"`
	Records []BenchRecord `json:"records"`
}

// NewLedger returns an empty ledger carrying the current schema tag.
func NewLedger() *Ledger { return &Ledger{Schema: LedgerSchema, Records: []BenchRecord{}} }

// Add appends one run record.
func (l *Ledger) Add(r BenchRecord) { l.Records = append(l.Records, r) }

// Write emits the ledger as indented JSON.
func (l *Ledger) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(l)
}

// ledgerRequiredKeys are the per-record keys ValidateLedger insists on;
// downstream tooling (the CI trend check) reads exactly these.
var ledgerRequiredKeys = []string{
	"matrix", "strategy", "kind", "p", "alpha", "beta",
	"makespan", "traffic", "efficiency",
}

// measureRequiredKeys are additionally required on kind "measure" records:
// a real-execution row without its measured times is useless to the
// measured-vs-predicted trend check.
var measureRequiredKeys = []string{
	"serial_ns", "measured_ns", "measured_speedup", "predicted_speedup",
}

// pipelineRequiredKeys are additionally required on kind "pipeline"
// records: the staged-pipeline row pairs cold/warm wall-clock times
// (serial_ns = cold, measured_ns = warm) with the artifact-store
// counters that prove the warm path did no symbolic or numeric work.
var pipelineRequiredKeys = []string{
	"serial_ns", "measured_ns", "measured_speedup", "hits", "misses",
}

// calibrateRequiredKeys are additionally required on kind "calibrate"
// records: the measured times the fit consumed plus the calib block.
var calibrateRequiredKeys = []string{
	"serial_ns", "measured_ns", "measured_speedup", "predicted_speedup", "calib",
}

// calibBlockRequiredKeys are required inside the calib block itself —
// a fit record without its parameters or MAPE is useless to the
// calibration trend check.
var calibBlockRequiredKeys = []string{
	"gamma", "ns_per_work", "r2", "samples", "dropped",
	"calibrated_ns", "mape_uncalibrated", "mape_calibrated",
}

// ValidateLedger checks that data is a parseable ledger with the current
// schema tag, at least one record, and every required key present in every
// record. It decodes into generic maps on purpose: the check guards the
// bytes on disk (what CI archives and tooling reads), not the Go structs.
func ValidateLedger(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: ledger is not valid JSON: %w", err)
	}
	schema, _ := doc["schema"].(string)
	if schema != LedgerSchema {
		return fmt.Errorf("obs: ledger schema %q, want %q", schema, LedgerSchema)
	}
	recs, ok := doc["records"].([]any)
	if !ok {
		return fmt.Errorf("obs: ledger has no records array")
	}
	if len(recs) == 0 {
		return fmt.Errorf("obs: ledger has zero records")
	}
	for i, r := range recs {
		rec, ok := r.(map[string]any)
		if !ok {
			return fmt.Errorf("obs: ledger record %d is not an object", i)
		}
		var missing []string
		for _, k := range ledgerRequiredKeys {
			if _, ok := rec[k]; !ok {
				missing = append(missing, k)
			}
		}
		switch kind, _ := rec["kind"].(string); kind {
		case "measure":
			for _, k := range measureRequiredKeys {
				if _, ok := rec[k]; !ok {
					missing = append(missing, k)
				}
			}
		case "pipeline":
			for _, k := range pipelineRequiredKeys {
				if _, ok := rec[k]; !ok {
					missing = append(missing, k)
				}
			}
		case "calibrate":
			for _, k := range calibrateRequiredKeys {
				if _, ok := rec[k]; !ok {
					missing = append(missing, k)
				}
			}
			if blk, ok := rec["calib"].(map[string]any); ok {
				for _, k := range calibBlockRequiredKeys {
					if _, ok := blk[k]; !ok {
						missing = append(missing, "calib."+k)
					}
				}
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("obs: ledger record %d missing keys: %s", i, strings.Join(missing, ", "))
		}
	}
	return nil
}
