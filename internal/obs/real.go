package obs

import (
	"fmt"
	"sort"

	"repro/internal/exec"
)

// RealProfile aggregates the events of one real (wall-clock) execution —
// exec.MeasureFactorize's per-task timings — into a Profile. It is the
// tolerant sibling of BuildProfile: real events live on a nanosecond
// timeline where a worker's first task can start after t = 0 with no
// causing predecessor (goroutine startup, OS scheduling), so the
// time-contiguity invariants BuildProfile enforces do not hold and no
// critical path is extracted (Critical stays nil). Everything else — the
// per-processor busy/comm/stall/idle breakdown and the idle-gap histogram
// — carries over, with the makespan taken as the latest finish.
//
// Events whose measured duration collapsed to zero nanoseconds (the clock
// resolution swallowed a sub-tick task) are counted in the profile's
// Degenerate field rather than dropped silently: they still count toward
// Tasks but add nothing to Busy, so the count is what makes the
// clock-resolution artifact visible.
func RealProfile(events []exec.TaskEvent, p int) (*Profile, error) {
	if p < 1 {
		return nil, fmt.Errorf("obs: invalid processor count %d", p)
	}
	prof := &Profile{P: p, Procs: make([]ProcProfile, p)}
	for i := range prof.Procs {
		prof.Procs[i].Proc = i
	}
	perProc := make([][]exec.TaskEvent, p)
	for _, ev := range events {
		if ev.Proc < 0 || int(ev.Proc) >= p {
			return nil, fmt.Errorf("obs: event for task %d on processor %d, run had %d", ev.Task, ev.Proc, p)
		}
		if ev.Finish < ev.Start {
			return nil, fmt.Errorf("obs: task %d finishes at %d before its start %d", ev.Task, ev.Finish, ev.Start)
		}
		if ev.Finish == ev.Start {
			prof.Degenerate++
		}
		if ev.Finish > prof.Makespan {
			prof.Makespan = ev.Finish
		}
		perProc[ev.Proc] = append(perProc[ev.Proc], ev)
	}
	for proc := range perProc {
		evs := perProc[proc]
		sort.Slice(evs, func(a, b int) bool {
			if evs[a].Start != evs[b].Start {
				return evs[a].Start < evs[b].Start
			}
			return evs[a].Task < evs[b].Task
		})
		pp := &prof.Procs[proc]
		pp.Tasks = len(evs)
		var last int64
		for _, ev := range evs {
			pp.Busy += ev.Work
			pp.Comm += ev.Comm
			if ev.Cause >= 0 {
				pp.Stall += ev.Stall
			}
			if gap := ev.Start - last; gap > 0 {
				prof.IdleGaps.Add(gap)
			}
			last = ev.Finish
		}
		if gap := prof.Makespan - last; gap > 0 {
			prof.IdleGaps.Add(gap)
		}
		pp.Idle = prof.Makespan - pp.Busy - pp.Comm
	}
	return prof, nil
}
