package obs_test

// Bench-ledger and search-telemetry tests: the ledger round-trips through
// its own validator (the CI gate) and the validator rejects each
// malformed shape with a useful message; SearchTelemetry is nil-safe,
// counts trials consistently, and — attached to the real searches — never
// perturbs the mapping it observes.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/part2d"
	"repro/internal/strategy"
)

func TestLedgerRoundTrip(t *testing.T) {
	l := obs.NewLedger()
	sum := obs.ProfileSummary{Busy: 90, Comm: 10, Idle: 20, Stall: 5, CriticalLen: 3, CriticalWork: 25, CriticalComm: 5}
	l.Add(obs.BenchRecord{
		Matrix: "LAP30", Strategy: "wrap", Kind: "strategy", P: 4,
		Alpha: 2, Beta: 10, Makespan: 30, Traffic: 50, Efficiency: 0.83,
		Profile: &sum,
	})
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateLedger(buf.Bytes()); err != nil {
		t.Errorf("round-tripped ledger rejected: %v", err)
	}
	if !strings.Contains(buf.String(), obs.LedgerSchema) {
		t.Errorf("serialized ledger missing schema tag %q", obs.LedgerSchema)
	}
}

func TestValidateLedgerRejects(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"not json", "{", "not valid JSON"},
		{"wrong schema", `{"schema":"repro-bench/v0","records":[{}]}`, "schema"},
		{"no records array", `{"schema":"repro-bench/v1"}`, "no records"},
		{"zero records", `{"schema":"repro-bench/v1","records":[]}`, "zero records"},
		{"record not object", `{"schema":"repro-bench/v1","records":[3]}`, "not an object"},
		{"missing keys", `{"schema":"repro-bench/v1","records":[{"matrix":"X","p":4}]}`, "missing keys"},
	}
	for _, tc := range cases {
		err := obs.ValidateLedger([]byte(tc.data))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestSearchTelemetryNil: every method is a no-op on a nil collector —
// the disabled path instrumented searches take unconditionally.
func TestSearchTelemetryNil(t *testing.T) {
	var tel *obs.SearchTelemetry
	tel.Trial(true)
	tel.Trial(false)
	tel.Objective(42)
	if tel.Best() != 0 {
		t.Errorf("nil Best() = %d, want 0", tel.Best())
	}
}

func TestSearchTelemetryCounts(t *testing.T) {
	tel := &obs.SearchTelemetry{}
	tel.Objective(100)
	tel.Trial(true)
	tel.Objective(90)
	tel.Trial(false)
	tel.Trial(true)
	tel.Objective(85)
	if tel.Trials != 3 || tel.Accepted != 2 || tel.Rejected != 1 {
		t.Errorf("counters = %d/%d/%d, want 3/2/1", tel.Trials, tel.Accepted, tel.Rejected)
	}
	if got := tel.Trajectory; len(got) != 3 || got[0] != 100 || got[2] != 85 {
		t.Errorf("trajectory = %v", got)
	}
	if tel.Best() != 85 {
		t.Errorf("Best() = %d, want 85", tel.Best())
	}
}

// TestSearchTelemetryAttached runs the instrumented searches for real:
// counters must be consistent (Trials == Accepted + Rejected), the
// trajectory must start with the initial objective and improve
// monotonically where the search is strictly improving, and attaching a
// collector must not change the mapping produced.
func TestSearchTelemetryAttached(t *testing.T) {
	sys := newSys(t, gen.Grid9(8, 8))
	const p = 4
	for _, name := range []string{"refine", "contigtotal"} {
		tel := &obs.SearchTelemetry{}
		scT, err := strategy.Map(name, sys, p, strategy.Options{Search: tel})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sc, err := strategy.Map(name, sys, p, strategy.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tel.Trials != tel.Accepted+tel.Rejected {
			t.Errorf("%s: trials %d != accepted %d + rejected %d", name, tel.Trials, tel.Accepted, tel.Rejected)
		}
		if len(tel.Trajectory) == 0 {
			t.Errorf("%s: no objective trajectory recorded", name)
		} else if tel.Best() != tel.Trajectory[len(tel.Trajectory)-1] {
			t.Errorf("%s: Best() %d != trajectory tail %d", name, tel.Best(), tel.Trajectory[len(tel.Trajectory)-1])
		}
		got := strategy.Makespan(sys, strategy.Options{}, scT)
		want := strategy.Makespan(sys, strategy.Options{}, sc)
		if got != want {
			t.Errorf("%s: telemetry perturbed the mapping: %+v != %+v", name, got, want)
		}
	}

	// The rect2d ownership descent: a strictly-improving traffic search,
	// so the trajectory is non-increasing.
	tel := &obs.SearchTelemetry{}
	s2T, err := part2d.Map2D("rect2d", sys, p, strategy.Options{Search: tel})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := part2d.Map2D("rect2d", sys, p, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tel.Trials != tel.Accepted+tel.Rejected {
		t.Errorf("rect2d: trials %d != accepted %d + rejected %d", tel.Trials, tel.Accepted, tel.Rejected)
	}
	if len(tel.Trajectory) == 0 {
		t.Error("rect2d: no objective trajectory recorded")
	}
	for i := 1; i < len(tel.Trajectory); i++ {
		if tel.Trajectory[i] > tel.Trajectory[i-1] {
			t.Errorf("rect2d: trajectory rose at %d: %v", i, tel.Trajectory)
		}
	}
	got := part2d.Makespan(sys.Ops, sys.ElemWork, s2T)
	want := part2d.Makespan(sys.Ops, sys.ElemWork, s2)
	if got != want {
		t.Errorf("rect2d: telemetry perturbed the mapping: %+v != %+v", got, want)
	}
}
