package obs_test

// Profile reconciliation: BuildProfile must conserve time exactly against
// the SimResult it aggregates — per processor and in total — and its
// critical path must be a time-contiguous chain from t = 0 to the
// makespan. The tests run the real simulators on a real factorization
// fixture, then pin the error paths on hand-built event sets.

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/strategy"
	"repro/internal/symbolic"
)

// newSys runs the analysis pipeline on a matrix (the same helper idiom as
// the strategy and part2d test harnesses).
func newSys(t testing.TB, m *sparse.Matrix) *strategy.Sys {
	t.Helper()
	perm := order.MMD(m)
	pm, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	return strategy.NewSys(symbolic.Analyze(pm), nil, nil)
}

// tracedRun maps a strategy and runs one simulator variant with a Tracer.
func tracedRun(t *testing.T, sys *strategy.Sys, name string, p int, kind string, cm exec.CommModel) (exec.SimResult, []exec.TaskEvent) {
	t.Helper()
	sc, err := strategy.Map(name, sys, p, strategy.Options{})
	if err != nil {
		t.Fatalf("%s P=%d: %v", name, p, err)
	}
	tr := obs.NewTracer()
	var res exec.SimResult
	switch kind {
	case "static":
		res = strategy.MakespanProbe(sys, strategy.Options{}, sc, tr)
	case "dynamic":
		res = strategy.MakespanDynamicProbe(sys, strategy.Options{}, sc, tr)
	case "comm":
		res = strategy.MakespanCommProbe(sys, strategy.Options{}, sc, cm, tr)
	case "commdynamic":
		res = strategy.MakespanCommDynamicProbe(sys, strategy.Options{}, sc, cm, tr)
	}
	return res, tr.Events
}

// TestProfileReconciliation: for every strategy x simulator x P, the
// profile totals reconcile with the SimResult exactly — Busy+Comm ==
// TotalWork, Comm == Comm, Idle == Idle, Busy+Comm+Idle == Makespan on
// every processor with Stall within Idle — and the critical path is a
// contiguous chain whose durations sum to the makespan.
func TestProfileReconciliation(t *testing.T) {
	sys := newSys(t, gen.Grid9(8, 8))
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	for _, name := range strategy.Names() {
		for _, kind := range []string{"static", "dynamic", "comm", "commdynamic"} {
			for _, p := range []int{1, 4, 16} {
				res, events := tracedRun(t, sys, name, p, kind, cm)
				prof, err := obs.BuildProfile(events, res)
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", name, kind, p, err)
				}
				label := name + "/" + kind
				if prof.P != res.P || prof.Makespan != res.Makespan {
					t.Fatalf("%s P=%d: profile header %d/%d != result %d/%d",
						label, p, prof.P, prof.Makespan, res.P, res.Makespan)
				}
				if got := prof.Busy() + prof.Comm(); got != res.TotalWork {
					t.Errorf("%s P=%d: busy+comm %d != TotalWork %d", label, p, got, res.TotalWork)
				}
				if prof.Comm() != res.Comm {
					t.Errorf("%s P=%d: comm %d != SimResult.Comm %d", label, p, prof.Comm(), res.Comm)
				}
				if prof.Idle() != res.Idle {
					t.Errorf("%s P=%d: idle %d != SimResult.Idle %d", label, p, prof.Idle(), res.Idle)
				}
				tasks := 0
				for i := range prof.Procs {
					pp := &prof.Procs[i]
					tasks += pp.Tasks
					if pp.Busy+pp.Comm+pp.Idle != prof.Makespan {
						t.Errorf("%s P=%d proc %d: busy %d + comm %d + idle %d != makespan %d",
							label, p, pp.Proc, pp.Busy, pp.Comm, pp.Idle, prof.Makespan)
					}
					if pp.Stall < 0 || pp.Stall > pp.Idle {
						t.Errorf("%s P=%d proc %d: stall %d outside [0, idle %d]",
							label, p, pp.Proc, pp.Stall, pp.Idle)
					}
				}
				if tasks != len(events) {
					t.Errorf("%s P=%d: per-proc task counts sum to %d, %d events", label, p, tasks, len(events))
				}
				checkCritical(t, label, p, prof)
			}
		}
	}
}

// checkCritical pins the critical-path contract: a chain starting at
// t = 0 with a "start" edge, each later link beginning exactly at its
// predecessor's finish via a "processor" or "dependency" edge, ending at
// the makespan, with durations summing to it.
func checkCritical(t *testing.T, label string, p int, prof *obs.Profile) {
	t.Helper()
	cp := prof.Critical
	if len(cp) == 0 {
		if prof.Makespan != 0 {
			t.Errorf("%s P=%d: empty critical path with makespan %d", label, p, prof.Makespan)
		}
		return
	}
	if cp[0].Start != 0 || cp[0].Edge != "start" {
		t.Errorf("%s P=%d: critical head starts at %d with edge %q, want 0/start",
			label, p, cp[0].Start, cp[0].Edge)
	}
	for i := 1; i < len(cp); i++ {
		if cp[i].Start != cp[i-1].Finish {
			t.Errorf("%s P=%d: critical link %d starts at %d, predecessor finishes at %d",
				label, p, i, cp[i].Start, cp[i-1].Finish)
		}
		if cp[i].Edge != "processor" && cp[i].Edge != "dependency" {
			t.Errorf("%s P=%d: critical link %d edge %q", label, p, i, cp[i].Edge)
		}
	}
	if last := cp[len(cp)-1]; last.Finish != prof.Makespan {
		t.Errorf("%s P=%d: critical path ends at %d, makespan %d", label, p, last.Finish, prof.Makespan)
	}
	if got := prof.CriticalWork() + prof.CriticalComm(); got != prof.Makespan {
		t.Errorf("%s P=%d: critical work+comm %d != makespan %d", label, p, got, prof.Makespan)
	}
}

// TestBuildProfileEmpty: no events and a zero result is legal (an empty
// task list) and yields an all-zero profile with no critical path.
func TestBuildProfileEmpty(t *testing.T) {
	prof, err := obs.BuildProfile(nil, exec.SimResult{P: 2, Efficiency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Busy() != 0 || prof.Idle() != 0 || len(prof.Critical) != 0 || prof.IdleGaps.Count != 0 {
		t.Errorf("empty profile not all-zero: %+v", prof)
	}
}

// TestBuildProfileErrors pins the malformed-input diagnostics.
func TestBuildProfileErrors(t *testing.T) {
	cases := []struct {
		name   string
		events []exec.TaskEvent
		res    exec.SimResult
		want   string
	}{
		{"processor out of range",
			[]exec.TaskEvent{{Task: 0, Proc: 5, Finish: 4, Work: 4, Cause: -1}},
			exec.SimResult{P: 2, Makespan: 4}, "processor"},
		{"duration mismatch",
			[]exec.TaskEvent{{Task: 0, Proc: 0, Finish: 5, Work: 3, Comm: 1, Cause: -1}},
			exec.SimResult{P: 1, Makespan: 5}, "duration"},
		{"cyclic cause chain",
			[]exec.TaskEvent{
				{Task: 0, Proc: 0, Start: 5, Finish: 10, Work: 5, Stall: 5, Cause: 1},
				{Task: 1, Proc: 1, Start: 5, Finish: 10, Work: 5, Stall: 5, Cause: 0},
			},
			exec.SimResult{P: 2, Makespan: 10}, "terminate"},
		{"missing cause event",
			[]exec.TaskEvent{{Task: 1, Proc: 0, Start: 6, Finish: 9, Work: 3, Stall: 6, Cause: 0}},
			exec.SimResult{P: 1, Makespan: 9}, "no event"},
		{"head off origin",
			[]exec.TaskEvent{{Task: 0, Proc: 0, Start: 3, Finish: 7, Work: 4, Cause: -1}},
			exec.SimResult{P: 1, Makespan: 7}, "want 0"},
	}
	for _, tc := range cases {
		_, err := obs.BuildProfile(tc.events, tc.res)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestHistogram: power-of-two bucketing, non-positive values ignored, and
// a renderable summary.
func TestHistogram(t *testing.T) {
	var h obs.Histogram
	h.Add(0)
	h.Add(-3)
	if h.Count != 0 {
		t.Fatalf("non-positive values counted: %+v", h)
	}
	for _, v := range []int64{1, 1, 3, 8, 9, 15, 1000} {
		h.Add(v)
	}
	if h.Count != 7 || h.Sum != 1+1+3+8+9+15+1000 || h.Max != 1000 {
		t.Errorf("summary fields wrong: %+v", h)
	}
	// Buckets: [1,2): two 1s; [2,4): 3; [8,16): 8, 9, 15; [512,1024): 1000.
	wantBuckets := map[int]int64{0: 2, 1: 1, 3: 3, 9: 1}
	for k, want := range wantBuckets {
		if k >= len(h.Buckets) || h.Buckets[k] != want {
			t.Errorf("bucket %d = %v, want %d (buckets %v)", k, nil, want, h.Buckets)
		}
	}
	if s := h.String(); !strings.Contains(s, "7 gaps") || !strings.Contains(s, "#") {
		t.Errorf("histogram render: %q", s)
	}
	var empty obs.Histogram
	if s := empty.String(); !strings.Contains(s, "no idle gaps") {
		t.Errorf("empty histogram render: %q", s)
	}
}

// TestFormatProfile smoke-checks the terminal report on a real run.
func TestFormatProfile(t *testing.T) {
	sys := newSys(t, gen.Grid9(6, 6))
	res, events := tracedRun(t, sys, "wrap", 4, "commdynamic", exec.CommModel{Alpha: 2, Beta: 10})
	prof, err := obs.BuildProfile(events, res)
	if err != nil {
		t.Fatal(err)
	}
	out := obs.FormatProfile(prof)
	for _, want := range []string{"P=4", "busy", "critical path:", "idle gaps:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
