package obs

import (
	"strings"
	"testing"

	"repro/internal/exec"
)

// TestRealProfileDegenerateCount checks that zero-duration measured
// events are counted and reported instead of silently contributing
// nothing, while normal events leave the count at zero.
func TestRealProfileDegenerateCount(t *testing.T) {
	events := []exec.TaskEvent{
		{Task: 0, Proc: 0, Start: 0, Finish: 10, Work: 10},
		{Task: 1, Proc: 0, Start: 10, Finish: 10}, // clock swallowed it
		{Task: 2, Proc: 1, Start: 5, Finish: 5},   // and this one
		{Task: 3, Proc: 1, Start: 5, Finish: 9, Work: 4},
	}
	prof, err := RealProfile(events, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Degenerate != 2 {
		t.Errorf("Degenerate = %d, want 2", prof.Degenerate)
	}
	if prof.Procs[0].Tasks != 2 || prof.Procs[1].Tasks != 2 {
		t.Errorf("degenerate events must still count as tasks: %+v", prof.Procs)
	}
	if got := prof.Summary().Degenerate; got != 2 {
		t.Errorf("Summary().Degenerate = %d, want 2", got)
	}
	if out := FormatProfile(prof); !strings.Contains(out, "degenerate events: 2") {
		t.Errorf("FormatProfile does not report the degenerate count:\n%s", out)
	}
	clean, err := RealProfile(events[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degenerate != 0 {
		t.Errorf("Degenerate = %d on a clean run, want 0", clean.Degenerate)
	}
	if out := FormatProfile(clean); strings.Contains(out, "degenerate") {
		t.Errorf("FormatProfile mentions degenerate events on a clean run:\n%s", out)
	}
}

// calibRecord returns a fully-populated kind "calibrate" record.
func calibRecord() BenchRecord {
	return BenchRecord{
		Matrix: "LAP30", Strategy: "rect2dcyclic", Kind: "calibrate", P: 4,
		Alpha: 0.1, Beta: 0.2, Makespan: 1000, Traffic: 50, Efficiency: 0.5,
		SerialNs: 100000, MeasuredNs: 50000, MeasuredSpeedup: 2, PredSpeedup: 2.1,
		Calib: &CalibSummary{
			Gamma: 0, NsPerWork: 3.5, R2: 0.97, Samples: 900, Dropped: 3,
			CalibNs: 48000, MAPEUncal: 90, MAPECal: 12,
		},
	}
}

// TestValidateLedgerCalibrate checks the calibrate-kind gate: a complete
// record passes, a record without its calib block fails, and a calib
// block missing a key fails naming it. A zero Gamma must survive — the
// block's keys never omitempty away.
func TestValidateLedgerCalibrate(t *testing.T) {
	l := NewLedger()
	l.Add(calibRecord())
	var sb strings.Builder
	if err := l.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if err := ValidateLedger([]byte(sb.String())); err != nil {
		t.Fatalf("complete calibrate record rejected: %v", err)
	}
	if !strings.Contains(sb.String(), `"gamma": 0`) {
		t.Errorf("zero Gamma omitted from the serialized calib block:\n%s", sb.String())
	}

	noBlock := calibRecord()
	noBlock.Calib = nil
	l2 := NewLedger()
	l2.Add(noBlock)
	sb.Reset()
	if err := l2.Write(&sb); err != nil {
		t.Fatal(err)
	}
	err := ValidateLedger([]byte(sb.String()))
	if err == nil || !strings.Contains(err.Error(), "calib") {
		t.Errorf("calibrate record without calib block: err = %v, want missing calib", err)
	}

	// Strip one key inside the block: the validator must name it.
	var sb3 strings.Builder
	l3 := NewLedger()
	l3.Add(calibRecord())
	if err := l3.Write(&sb3); err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(sb3.String(), `"mape_calibrated"`, `"mape_renamed"`, 1)
	err = ValidateLedger([]byte(broken))
	if err == nil || !strings.Contains(err.Error(), "calib.mape_calibrated") {
		t.Errorf("calib block missing mape_calibrated: err = %v", err)
	}
}
