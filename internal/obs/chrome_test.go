package obs_test

// Chrome trace export: the golden test pins the emitted bytes (field
// order, indentation, metadata shape), and the shape test checks the
// Perfetto-relevant structural requirements on a real simulation — one
// named lane per processor and globally non-decreasing timestamps.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a tiny deterministic run: two processors, one plain
// compute task, one with a comm tail, and one dependency-stalled task.
func goldenEvents() ([]exec.TaskEvent, int) {
	return []exec.TaskEvent{
		{Task: 0, Proc: 0, Start: 0, Finish: 10, Work: 10, Cause: -1},
		{Task: 1, Proc: 1, Start: 0, Finish: 8, Work: 6, Comm: 2, Cause: -1},
		{Task: 2, Proc: 1, Start: 10, Finish: 18, Work: 5, Comm: 3, Stall: 2, Cause: 0},
	}, 2
}

func TestChromeTraceGolden(t *testing.T) {
	events, p := goldenEvents()
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, events, p); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden (run with -update if intended)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// chromeDoc mirrors the emitted JSON for structural checks.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestChromeTraceShape: on a real traced simulation the export has
// exactly one thread_name metadata record per processor (naming the
// lane), every slice lands on a valid lane with non-negative duration,
// timestamps are globally non-decreasing past the metadata prologue, and
// the task-slice count matches the task count.
func TestChromeTraceShape(t *testing.T) {
	sys := newSys(t, gen.Grid9(6, 6))
	const p = 4
	res, events := tracedRun(t, sys, "wrap", p, "commdynamic", exec.CommModel{Alpha: 2, Beta: 10})
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, events, res.P); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < p {
		t.Fatalf("only %d events emitted", len(doc.TraceEvents))
	}
	for proc := 0; proc < p; proc++ {
		meta := doc.TraceEvents[proc]
		if meta.Ph != "M" || meta.Name != "thread_name" || meta.Tid != proc {
			t.Fatalf("prologue entry %d is %+v, want thread_name metadata for tid %d", proc, meta, proc)
		}
		if name, _ := meta.Args["name"].(string); name != fmt.Sprintf("P%02d", proc) {
			t.Errorf("lane %d named %q, want %q", proc, name, fmt.Sprintf("P%02d", proc))
		}
	}
	tasks := 0
	lastTs := int64(-1)
	for _, ev := range doc.TraceEvents[p:] {
		if ev.Ph != "X" {
			t.Errorf("non-slice event %+v after metadata prologue", ev)
		}
		if ev.Tid < 0 || ev.Tid >= p {
			t.Errorf("slice %q on lane %d of %d", ev.Name, ev.Tid, p)
		}
		if ev.Ts < lastTs {
			t.Errorf("timestamp regressed: %d after %d (%q)", ev.Ts, lastTs, ev.Name)
		}
		lastTs = ev.Ts
		if ev.Dur < 0 {
			t.Errorf("slice %q has negative duration %d", ev.Name, ev.Dur)
		}
		if ev.Cat == "task" {
			tasks++
		}
	}
	if tasks != len(events) {
		t.Errorf("%d task slices for %d traced tasks", tasks, len(events))
	}
}

// TestWriteTraceDispatch: the format switch serves both formats and
// refuses unknown names with the supported list.
func TestWriteTraceDispatch(t *testing.T) {
	events, p := goldenEvents()
	res := exec.SimResult{P: p, Makespan: 18}
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, "chrome", events, res); err != nil {
		t.Errorf("chrome: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("chrome dispatch produced invalid JSON")
	}
	buf.Reset()
	if err := obs.WriteTrace(&buf, "gantt", events, res); err != nil {
		t.Errorf("gantt: %v", err)
	}
	if !strings.Contains(buf.String(), "gantt:") {
		t.Errorf("gantt dispatch output: %q", buf.String())
	}
	err := obs.WriteTrace(&buf, "svg", events, res)
	if err == nil || !strings.Contains(err.Error(), "chrome") {
		t.Errorf("unknown format error = %v, want one listing supported formats", err)
	}
	if got := obs.TraceFormats(); len(got) != 2 || got[0] != "chrome" || got[1] != "gantt" {
		t.Errorf("TraceFormats() = %v", got)
	}
}

// TestGantt pins the ASCII chart cell-exactly on the golden events
// (makespan 20 over 20 cells makes one cell one time unit).
func TestGantt(t *testing.T) {
	events, p := goldenEvents()
	out := obs.Gantt(events, p, 20, 20)
	want := strings.Join([]string{
		"gantt: P=2 makespan=20 (20 cells, #=compute ~=comm %=stall .=idle)",
		"P00 |##########..........|",
		"P01 |######~~%%#####~~~..|",
		"",
	}, "\n")
	if out != want {
		t.Errorf("gantt chart:\n%s\nwant:\n%s", out, want)
	}
	// Degenerate inputs: zero makespan renders all-idle rows, and a
	// non-positive width falls back to the 80-cell default.
	out = obs.Gantt(nil, 2, 0, 10)
	if !strings.Contains(out, "P00 |..........|") {
		t.Errorf("zero-makespan chart:\n%s", out)
	}
	out = obs.Gantt(events, p, 20, 0)
	if !strings.Contains(out, "(80 cells") {
		t.Errorf("default width chart header:\n%s", out)
	}
}
