// Package obs is the observability layer of the simulation stack: tracing,
// profiling and telemetry for the makespan simulators and the mapper
// searches, plus the machine-readable bench ledger the per-PR performance
// trajectory is recorded in.
//
// The paper's core claims are about where time goes — load imbalance
// versus communication versus dependency stalls (Section 4's idle-time
// argument) — yet a SimResult collapses a full execution into five
// numbers. This package keeps the execution: a Tracer attached to any of
// the six makespan simulators (exec.SimulateMakespan, ...Dynamic, the two
// ...Comm variants, and the part2d 2D simulators via their Probe entry
// points) collects one exec.TaskEvent per task, and from those events
//
//   - BuildProfile aggregates the per-processor busy/comm/stall/idle
//     breakdown (conserving busy+comm+idle = P x Makespan exactly), an
//     idle-gap histogram, and the critical path: the time-contiguous chain
//     of tasks realizing the makespan, each link attributed to compute,
//     communication, or the dependency/processor constraint that bound its
//     start;
//   - WriteChromeTrace exports a Chrome trace-event JSON file loadable in
//     Perfetto (https://ui.perfetto.dev) or chrome://tracing, one lane per
//     processor with compute/comm/stall slices;
//   - Gantt renders the same timeline as an ASCII per-processor chart for
//     terminal use.
//
// Tracing is strictly opt-in: with a nil probe the simulators build no
// events and return bit-identical results (regression-tested), so the
// layer costs nothing when disabled.
//
// SearchTelemetry instruments the other half of the system, the mapper
// searches: the refine hill-climbs, the rect2d ownership descent and the
// contigtotal DP count their trial moves and record the objective
// trajectory when a collector is attached via strategy.Options.Search.
//
// Ledger is the bench output format: one BenchRecord per (matrix,
// strategy, P, comm model) run with makespan, traffic, efficiency and a
// profile summary, written as BENCH_*.json and validated by
// ValidateLedger (the check CI runs before archiving).
package obs

import "repro/internal/exec"

// Tracer collects the TaskEvents of one simulation run; it implements
// exec.Probe. The zero value is ready to use. A Tracer is not safe for
// concurrent use; attach a fresh one per simulation (or Reset between
// runs).
type Tracer struct {
	Events []exec.TaskEvent
}

// NewTracer returns an empty Tracer.
func NewTracer() *Tracer { return &Tracer{} }

// OnTask implements exec.Probe by recording the event.
func (t *Tracer) OnTask(ev exec.TaskEvent) { t.Events = append(t.Events, ev) }

// Reset discards the collected events, keeping the backing storage.
func (t *Tracer) Reset() { t.Events = t.Events[:0] }

// SearchTelemetry counts the trial moves of a mapper search (a refine
// hill-climb, the rect2d ownership descent, or the contigtotal DP's
// transition relaxations) and records the objective trajectory. All
// methods are nil-receiver safe, so instrumented searches call them
// unconditionally and a nil collector — the default — costs one pointer
// test per trial.
type SearchTelemetry struct {
	// Trials counts objective evaluations: candidate moves tried by a
	// hill-climb, or transitions relaxed by the DP. Accepted counts the
	// ones that improved (were kept), Rejected the reverted/discarded
	// ones; Trials == Accepted + Rejected.
	Trials   int64
	Accepted int64
	Rejected int64
	// Trajectory records the objective value over the search: the starting
	// value first (recorded by Objective before any trial), then one entry
	// per accepted improvement. A strictly-improving search therefore
	// yields a strictly monotone trajectory — the convergence curve.
	Trajectory []int64
}

// Trial records one objective evaluation and whether the move was kept.
func (t *SearchTelemetry) Trial(accepted bool) {
	if t == nil {
		return
	}
	t.Trials++
	if accepted {
		t.Accepted++
	} else {
		t.Rejected++
	}
}

// Objective appends a point to the objective trajectory.
func (t *SearchTelemetry) Objective(v int64) {
	if t == nil {
		return
	}
	t.Trajectory = append(t.Trajectory, v)
}

// Best returns the last trajectory point (the final objective), or 0 when
// nothing was recorded.
func (t *SearchTelemetry) Best() int64 {
	if t == nil || len(t.Trajectory) == 0 {
		return 0
	}
	return t.Trajectory[len(t.Trajectory)-1]
}
