package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/obs"
)

func TestRealProfileAggregates(t *testing.T) {
	// Two processors; proc 0 starts late (uncaused startup gap), proc 1
	// has a caused stall between its tasks.
	events := []exec.TaskEvent{
		{Task: 0, Proc: 0, Start: 5, Finish: 15, Work: 10, Stall: 5, Cause: -1},
		{Task: 1, Proc: 1, Start: 0, Finish: 8, Work: 8, Stall: 0, Cause: -1},
		{Task: 2, Proc: 1, Start: 16, Finish: 20, Work: 4, Stall: 8, Cause: 0},
	}
	prof, err := obs.RealProfile(events, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Makespan != 20 {
		t.Fatalf("makespan %d, want 20", prof.Makespan)
	}
	if prof.Busy() != 22 {
		t.Fatalf("busy %d, want 22", prof.Busy())
	}
	// Only the caused stall counts; proc 0's startup gap is idle, not stall.
	if prof.Stall() != 8 {
		t.Fatalf("stall %d, want 8", prof.Stall())
	}
	if prof.Procs[0].Idle != 10 || prof.Procs[1].Idle != 8 {
		t.Fatalf("idle split %d/%d, want 10/8", prof.Procs[0].Idle, prof.Procs[1].Idle)
	}
	if prof.Critical != nil {
		t.Fatal("real profile must not extract a critical path")
	}
}

func TestRealProfileRejects(t *testing.T) {
	if _, err := obs.RealProfile(nil, 0); err == nil {
		t.Error("expected error for p = 0")
	}
	bad := []exec.TaskEvent{{Task: 0, Proc: 3, Start: 0, Finish: 1}}
	if _, err := obs.RealProfile(bad, 2); err == nil {
		t.Error("expected error for out-of-range processor")
	}
	rev := []exec.TaskEvent{{Task: 0, Proc: 0, Start: 5, Finish: 2}}
	if _, err := obs.RealProfile(rev, 1); err == nil {
		t.Error("expected error for finish before start")
	}
}

// Measure-kind records demand the measured fields: a ledger that labels a
// row "measure" without its wall-clock numbers fails the CI gate.
func TestValidateLedgerMeasureKind(t *testing.T) {
	l := obs.NewLedger()
	l.Add(obs.BenchRecord{
		Matrix: "LAP30", Strategy: "rect2dcyclic", Kind: "measure", P: 4,
		Alpha: 2, Beta: 10, Makespan: 30, Traffic: 50, Efficiency: 0.2,
		SerialNs: 1000, MeasuredNs: 1200, MeasuredSpeedup: 0.83, PredSpeedup: 3.1,
	})
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateLedger(buf.Bytes()); err != nil {
		t.Errorf("complete measure record rejected: %v", err)
	}

	// The same record without measured fields: omitempty drops them from
	// the JSON, and the validator must notice.
	l2 := obs.NewLedger()
	l2.Add(obs.BenchRecord{
		Matrix: "LAP30", Strategy: "rect2dcyclic", Kind: "measure", P: 4,
		Alpha: 2, Beta: 10, Makespan: 30, Traffic: 50, Efficiency: 0.2,
	})
	buf.Reset()
	if err := l2.Write(&buf); err != nil {
		t.Fatal(err)
	}
	err := obs.ValidateLedger(buf.Bytes())
	if err == nil || !strings.Contains(err.Error(), "measured_ns") {
		t.Errorf("incomplete measure record: error = %v, want missing measured_ns", err)
	}

	// Non-measure kinds stay valid without the measured fields.
	l3 := obs.NewLedger()
	l3.Add(obs.BenchRecord{
		Matrix: "LAP30", Strategy: "wrap", Kind: "strategy", P: 4,
		Alpha: 2, Beta: 10, Makespan: 30, Traffic: 50, Efficiency: 0.8,
	})
	buf.Reset()
	if err := l3.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateLedger(buf.Bytes()); err != nil {
		t.Errorf("strategy record rejected: %v", err)
	}
}
