package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/exec"
)

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Field order is fixed by the struct, so the emitted JSON is byte-stable
// (the golden test pins it).
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Pid  int    `json:"pid"`
	Tid  int32  `json:"tid"`
	Args any    `json:"args,omitempty"`
}

// chromeArgs values marshal with sorted keys (encoding/json's map rule),
// keeping the output byte-stable.
type chromeArgs map[string]int64

// threadName is the metadata args payload naming a processor lane.
type threadName struct {
	Name string `json:"name"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports a traced simulation in the Chrome trace-event
// JSON format, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. Each of the p processors is one lane (pid 0, tid =
// processor): every task becomes a complete ("X") slice named t<ID> whose
// args carry the work/comm/stall split, with a nested "comm" child slice
// when the task was charged communication time and a "stall" slice filling
// the idle gap before a dependency-bound start. Timestamps are the
// simulation's work units (reported as microseconds, the format's native
// unit) and are emitted in non-decreasing order.
func WriteChromeTrace(w io.Writer, events []exec.TaskEvent, p int) error {
	if p < 1 {
		return fmt.Errorf("obs: invalid processor count %d", p)
	}
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for proc := 0; proc < p; proc++ {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: int32(proc),
			Args: threadName{Name: fmt.Sprintf("P%02d", proc)},
		})
	}
	sorted := append([]exec.TaskEvent(nil), events...)
	sort.SliceStable(sorted, func(a, b int) bool {
		sa, sb := sorted[a].Start-sorted[a].Stall, sorted[b].Start-sorted[b].Stall
		if sa != sb {
			return sa < sb
		}
		if sorted[a].Proc != sorted[b].Proc {
			return sorted[a].Proc < sorted[b].Proc
		}
		return sorted[a].Task < sorted[b].Task
	})
	var slices []chromeEvent
	for _, ev := range sorted {
		if ev.Stall > 0 {
			slices = append(slices, chromeEvent{
				Name: fmt.Sprintf("stall t%d", ev.Cause), Cat: "stall", Ph: "X",
				Ts: ev.Start - ev.Stall, Dur: ev.Stall, Pid: 0, Tid: ev.Proc,
				Args: chromeArgs{"cause": int64(ev.Cause)},
			})
		}
		args := chromeArgs{"work": ev.Work, "comm": ev.Comm, "stall": ev.Stall}
		if ev.Cause >= 0 {
			args["cause"] = int64(ev.Cause)
		}
		slices = append(slices, chromeEvent{
			Name: fmt.Sprintf("t%d", ev.Task), Cat: "task", Ph: "X",
			Ts: ev.Start, Dur: ev.Finish - ev.Start, Pid: 0, Tid: ev.Proc,
			Args: args,
		})
		if ev.Comm > 0 {
			slices = append(slices, chromeEvent{
				Name: "comm", Cat: "comm", Ph: "X",
				Ts: ev.Start, Dur: ev.Comm, Pid: 0, Tid: ev.Proc,
				Args: chromeArgs{"vol": ev.Comm},
			})
		}
	}
	// Global timestamp monotonicity (a Perfetto requirement for clean
	// imports): stable-sort the slices by start time only, preserving the
	// parent-before-child emission order at equal timestamps.
	sort.SliceStable(slices, func(a, b int) bool { return slices[a].Ts < slices[b].Ts })
	trace.TraceEvents = append(trace.TraceEvents, slices...)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(trace)
}

// TraceFormats lists the supported trace export formats, the values the
// CLIs' -traceformat flags validate against.
func TraceFormats() []string { return []string{"chrome", "gantt"} }

// WriteTrace exports a traced simulation in the named format: "chrome"
// (WriteChromeTrace) or "gantt" (the ASCII per-processor chart). Unknown
// formats are refused with an error listing the supported set.
func WriteTrace(w io.Writer, format string, events []exec.TaskEvent, res exec.SimResult) error {
	switch format {
	case "chrome":
		return WriteChromeTrace(w, events, res.P)
	case "gantt":
		_, err := io.WriteString(w, Gantt(events, res.P, res.Makespan, 100))
		return err
	default:
		return fmt.Errorf("obs: unknown trace format %q (supported: %s)",
			format, strings.Join(TraceFormats(), ", "))
	}
}
