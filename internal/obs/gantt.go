package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
)

// Gantt renders a traced simulation as an ASCII per-processor timeline,
// one row per processor and width cells spanning [0, makespan):
//
//	'#'  compute
//	'~'  communication
//	'%'  dependency stall (idle, waiting on a predecessor)
//	'.'  idle (no assigned ready work)
//
// Each nonzero segment paints at least one cell, so short tasks remain
// visible at the cost of exact proportionality; later segments overwrite
// earlier ones within a cell, making the busy share the visible one.
func Gantt(events []exec.TaskEvent, p int, makespan int64, width int) string {
	if p < 1 {
		return fmt.Sprintf("gantt: invalid processor count %d\n", p)
	}
	if width <= 0 {
		width = 80
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "gantt: P=%d makespan=%d (%d cells, #=compute ~=comm %%=stall .=idle)\n",
		p, makespan, width)
	if makespan <= 0 {
		for proc := 0; proc < p; proc++ {
			fmt.Fprintf(&sb, "P%02d |%s|\n", proc, strings.Repeat(".", width))
		}
		return sb.String()
	}
	perProc := make([][]exec.TaskEvent, p)
	for _, ev := range events {
		if ev.Proc >= 0 && int(ev.Proc) < p {
			perProc[ev.Proc] = append(perProc[ev.Proc], ev)
		}
	}
	// cell maps a time interval [a, b) to cell indices [c0, c1); a nonzero
	// interval always covers at least one cell.
	cell := func(a, b int64) (int, int) {
		c0 := int(a * int64(width) / makespan)
		c1 := int(b * int64(width) / makespan)
		if c1 > width {
			c1 = width
		}
		if b > a && c1 <= c0 {
			c1 = c0 + 1
			if c1 > width {
				c0, c1 = width-1, width
			}
		}
		return c0, c1
	}
	for proc := 0; proc < p; proc++ {
		row := []byte(strings.Repeat(".", width))
		paint := func(a, b int64, ch byte) {
			c0, c1 := cell(a, b)
			for c := c0; c < c1; c++ {
				row[c] = ch
			}
		}
		evs := perProc[proc]
		sort.Slice(evs, func(a, b int) bool { return evs[a].Start < evs[b].Start })
		for _, ev := range evs {
			if ev.Stall > 0 && ev.Cause >= 0 {
				paint(ev.Start-ev.Stall, ev.Start, '%')
			}
			paint(ev.Start, ev.Start+ev.Work, '#')
			if ev.Comm > 0 {
				paint(ev.Start+ev.Work, ev.Finish, '~')
			}
		}
		fmt.Fprintf(&sb, "P%02d |%s|\n", proc, row)
	}
	return sb.String()
}
