package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/exec"
)

// ProcProfile is the time breakdown of one processor over a traced
// simulation. Busy + Comm + Idle == Makespan exactly (Idle is derived),
// and Stall <= Idle is the share of the idle time spent waiting on a
// specific dependency (the gaps the simulators attribute to a Cause task)
// as opposed to having no assigned ready work at all.
type ProcProfile struct {
	Proc  int
	Tasks int
	Busy  int64 // compute time
	Comm  int64 // communication time charged to this processor's tasks
	Stall int64 // dependency-wait share of Idle
	Idle  int64 // Makespan - Busy - Comm
}

// PathLink is one task on the critical path, oldest first. Edge records
// the constraint that bound the task's start: "start" for the chain head
// (t = 0), "processor" when the previous task on the same processor
// finished exactly then, "dependency" when a predecessor on another chain
// link did. Work and Comm split the link's duration, so summing Work+Comm
// over the path reproduces the makespan exactly (the chain is
// time-contiguous).
type PathLink struct {
	Task   int32
	Proc   int32
	Start  int64
	Finish int64
	Work   int64
	Comm   int64
	Edge   string
}

// Profile aggregates one traced simulation: the per-processor breakdown,
// the idle-gap histogram and the critical path.
type Profile struct {
	P        int
	Makespan int64
	Procs    []ProcProfile
	// IdleGaps is the histogram of every idle interval observed on any
	// processor: pre-task stalls, scheduling gaps, and the tail idle
	// between a processor's last finish and the makespan.
	IdleGaps Histogram
	// Critical is the chain of tasks whose finish times realize the
	// makespan, oldest first.
	Critical []PathLink
	// Degenerate counts measured events whose duration collapsed to zero
	// nanoseconds (Finish == Start), a clock-resolution artifact of real
	// runs: the task executed but contributed nothing to Busy and is
	// invisible in the idle-gap histogram. Only RealProfile sets it;
	// simulator events always have positive durations.
	Degenerate int
}

// Busy, Comm, Stall and Idle sum the per-processor fields.
func (p *Profile) Busy() int64  { return p.sum(func(pp *ProcProfile) int64 { return pp.Busy }) }
func (p *Profile) Comm() int64  { return p.sum(func(pp *ProcProfile) int64 { return pp.Comm }) }
func (p *Profile) Stall() int64 { return p.sum(func(pp *ProcProfile) int64 { return pp.Stall }) }
func (p *Profile) Idle() int64  { return p.sum(func(pp *ProcProfile) int64 { return pp.Idle }) }

func (p *Profile) sum(f func(*ProcProfile) int64) int64 {
	var s int64
	for i := range p.Procs {
		s += f(&p.Procs[i])
	}
	return s
}

// CriticalWork and CriticalComm sum the compute and communication time
// along the critical path; CriticalWork + CriticalComm == Makespan.
func (p *Profile) CriticalWork() int64 {
	var s int64
	for _, l := range p.Critical {
		s += l.Work
	}
	return s
}

func (p *Profile) CriticalComm() int64 {
	var s int64
	for _, l := range p.Critical {
		s += l.Comm
	}
	return s
}

// BuildProfile aggregates the events of one traced simulation into a
// Profile. events must be the complete event set of a single simulator
// run (one event per task) and res its SimResult; the per-processor
// totals then reconcile with res exactly: sum(Busy)+sum(Comm) ==
// res.TotalWork, sum(Comm) == res.Comm, sum(Idle) == res.Idle, and
// Busy+Comm+Idle == Makespan on every processor.
func BuildProfile(events []exec.TaskEvent, res exec.SimResult) (*Profile, error) {
	p := res.P
	prof := &Profile{P: p, Makespan: res.Makespan, Procs: make([]ProcProfile, p)}
	for i := range prof.Procs {
		prof.Procs[i].Proc = i
	}
	// Per-processor event lists ordered by start time (simulators emit
	// per-processor events in start order already; sort to stay agnostic).
	perProc := make([][]exec.TaskEvent, p)
	for _, ev := range events {
		if ev.Proc < 0 || int(ev.Proc) >= p {
			return nil, fmt.Errorf("obs: event for task %d on processor %d, simulation had %d", ev.Task, ev.Proc, p)
		}
		if ev.Finish-ev.Start != ev.Work+ev.Comm {
			return nil, fmt.Errorf("obs: task %d duration %d != work %d + comm %d",
				ev.Task, ev.Finish-ev.Start, ev.Work, ev.Comm)
		}
		perProc[ev.Proc] = append(perProc[ev.Proc], ev)
	}
	for proc := range perProc {
		evs := perProc[proc]
		sort.Slice(evs, func(a, b int) bool {
			if evs[a].Start != evs[b].Start {
				return evs[a].Start < evs[b].Start
			}
			return evs[a].Task < evs[b].Task
		})
		pp := &prof.Procs[proc]
		pp.Tasks = len(evs)
		var last int64
		for _, ev := range evs {
			pp.Busy += ev.Work
			pp.Comm += ev.Comm
			if ev.Cause >= 0 {
				pp.Stall += ev.Stall
			}
			if gap := ev.Start - last; gap > 0 {
				prof.IdleGaps.Add(gap)
			}
			last = ev.Finish
		}
		if gap := prof.Makespan - last; gap > 0 {
			prof.IdleGaps.Add(gap) // tail idle (whole makespan for empty procs)
		}
		pp.Idle = prof.Makespan - pp.Busy - pp.Comm
	}
	cp, err := criticalPath(perProc, events)
	if err != nil {
		return nil, err
	}
	prof.Critical = cp
	return prof, nil
}

// criticalPath walks the makespan-realizing chain backwards: from the
// event with the latest finish, each step follows either the Cause
// predecessor that bound the start (a dependency edge) or the previous
// task on the same processor (a processor edge), both of which finish
// exactly at the current start — so the chain is time-contiguous back to
// t = 0 and its durations sum to the makespan.
func criticalPath(perProc [][]exec.TaskEvent, events []exec.TaskEvent) ([]PathLink, error) {
	if len(events) == 0 {
		return nil, nil
	}
	byTask := make(map[int32]exec.TaskEvent, len(events))
	// prevOn[task] is the event finishing exactly when task starts on the
	// same processor, if any.
	prevOn := make(map[int32]int32, len(events))
	for _, evs := range perProc {
		for i, ev := range evs {
			byTask[ev.Task] = ev
			if i > 0 && evs[i-1].Finish == ev.Start {
				prevOn[ev.Task] = evs[i-1].Task
			}
		}
	}
	last := events[0]
	for _, ev := range events[1:] {
		if ev.Finish > last.Finish || (ev.Finish == last.Finish && ev.Task < last.Task) {
			last = ev
		}
	}
	var rev []PathLink
	cur := last
	for steps := 0; ; steps++ {
		if steps > len(events) {
			return nil, fmt.Errorf("obs: critical path does not terminate (cyclic cause chain)")
		}
		link := PathLink{
			Task: cur.Task, Proc: cur.Proc,
			Start: cur.Start, Finish: cur.Finish,
			Work: cur.Work, Comm: cur.Comm,
		}
		switch {
		case cur.Stall > 0 && cur.Cause >= 0:
			link.Edge = "dependency"
			next, ok := byTask[cur.Cause]
			if !ok {
				return nil, fmt.Errorf("obs: task %d stalls on task %d with no event", cur.Task, cur.Cause)
			}
			rev = append(rev, link)
			cur = next
		default:
			if prev, ok := prevOn[cur.Task]; ok {
				link.Edge = "processor"
				rev = append(rev, link)
				cur = byTask[prev]
				continue
			}
			link.Edge = "start"
			rev = append(rev, link)
			if cur.Start != 0 {
				return nil, fmt.Errorf("obs: critical path head task %d starts at %d, want 0", cur.Task, cur.Start)
			}
			out := make([]PathLink, len(rev))
			for i, l := range rev {
				out[len(rev)-1-i] = l
			}
			return out, nil
		}
	}
}

// Histogram is a power-of-two bucketed histogram of positive durations:
// Buckets[k] counts values v with 2^k <= v < 2^(k+1).
type Histogram struct {
	Buckets []int64
	Count   int64
	Sum     int64
	Max     int64
}

// Add records a value; non-positive values are ignored.
func (h *Histogram) Add(v int64) {
	if v <= 0 {
		return
	}
	k := bits.Len64(uint64(v)) - 1
	for len(h.Buckets) <= k {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[k]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// String renders the histogram one bucket per line with a proportional
// bar, e.g. "[   16,    32)   5 #####".
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "(no idle gaps)\n"
	}
	var peak int64
	for _, c := range h.Buckets {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d gaps, sum %d, max %d\n", h.Count, h.Sum, h.Max)
	for k, c := range h.Buckets {
		if c == 0 {
			continue
		}
		bar := int(c * 40 / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "[%8d, %8d) %6d %s\n", int64(1)<<k, int64(1)<<(k+1), c, strings.Repeat("#", bar))
	}
	return sb.String()
}

// FormatProfile renders the per-processor breakdown, the critical-path
// attribution and the idle-gap histogram as a terminal report.
func FormatProfile(p *Profile) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "P=%d makespan=%d\n", p.P, p.Makespan)
	fmt.Fprintf(&sb, "%-5s %7s %12s %12s %12s %12s\n", "proc", "tasks", "busy", "comm", "stall", "idle")
	for i := range p.Procs {
		pp := &p.Procs[i]
		fmt.Fprintf(&sb, "P%-4d %7d %12d %12d %12d %12d\n", pp.Proc, pp.Tasks, pp.Busy, pp.Comm, pp.Stall, pp.Idle)
	}
	fmt.Fprintf(&sb, "total busy=%d comm=%d stall=%d idle=%d (busy+comm+idle = P*makespan = %d)\n",
		p.Busy(), p.Comm(), p.Stall(), p.Idle(), int64(p.P)*p.Makespan)
	deps := 0
	for _, l := range p.Critical {
		if l.Edge == "dependency" {
			deps++
		}
	}
	fmt.Fprintf(&sb, "critical path: %d tasks (compute %d + comm %d = makespan), %d dependency hops\n",
		len(p.Critical), p.CriticalWork(), p.CriticalComm(), deps)
	if p.Degenerate > 0 {
		fmt.Fprintf(&sb, "degenerate events: %d (zero measured duration, clock resolution)\n", p.Degenerate)
	}
	sb.WriteString("idle gaps: ")
	sb.WriteString(p.IdleGaps.String())
	return sb.String()
}
