package exec

import "testing"

// TestGammaCost pins the per-task overhead semantics of CommModel.Gamma:
// Cost charges exactly int64(Gamma) on top of the two comm terms, a
// zero-Gamma model reproduces the two-parameter formula bit for bit, and
// IsZero only reports a model that charges nothing at all.
func TestGammaCost(t *testing.T) {
	two := CommModel{Alpha: 2, Beta: 10}
	withZero := CommModel{Alpha: 2, Beta: 10, Gamma: 0}
	for _, c := range []struct{ vol, msgs int64 }{{0, 0}, {10, 2}, {1000, 50}} {
		if got, want := withZero.Cost(c.vol, c.msgs), two.Cost(c.vol, c.msgs); got != want {
			t.Errorf("Cost(%d, %d) with Gamma=0: %d, want two-parameter %d", c.vol, c.msgs, got, want)
		}
		over := CommModel{Alpha: 2, Beta: 10, Gamma: 7}
		if got, want := over.Cost(c.vol, c.msgs), two.Cost(c.vol, c.msgs)+7; got != want {
			t.Errorf("Cost(%d, %d) with Gamma=7: %d, want %d", c.vol, c.msgs, got, want)
		}
	}
	// Gamma truncates to integer work units like Alpha and Beta terms do.
	if got := (CommModel{Gamma: 3.9}).Cost(0, 0); got != 3 {
		t.Errorf("Cost with Gamma=3.9: %d, want 3", got)
	}
	if !(CommModel{}).IsZero() {
		t.Error("zero model: IsZero() = false")
	}
	if (CommModel{Gamma: 1}).IsZero() {
		t.Error("Gamma-only model: IsZero() = true")
	}
}

// TestGammaInflation checks that InflateTasks charges the fixed overhead
// to every task — including tasks with no communication at all — and that
// the comm total grows by exactly ntasks * Gamma.
func TestGammaInflation(t *testing.T) {
	tasks := []Task{
		{ID: 0, Work: 5},
		{ID: 1, Work: 3, Preds: []int32{0}},
		{ID: 2, Work: 8, Preds: []int32{0}},
	}
	vol := []int64{0, 4, 0}
	msgs := []int64{0, 1, 0}
	base := CommModel{Alpha: 2, Beta: 10}
	over := CommModel{Alpha: 2, Beta: 10, Gamma: 6}
	b, bcomm := InflateTasks(tasks, base, vol, msgs)
	o, ocomm := InflateTasks(tasks, over, vol, msgs)
	for i := range tasks {
		if o[i].Work != b[i].Work+6 {
			t.Errorf("task %d: inflated work %d, want %d + Gamma 6", i, o[i].Work, b[i].Work)
		}
	}
	if ocomm != bcomm+6*int64(len(tasks)) {
		t.Errorf("comm total %d, want %d + ntasks*Gamma %d", ocomm, bcomm, 6*int64(len(tasks)))
	}
	// Gamma-only models are charged even with nil vol/msgs vectors.
	g, gcomm := InflateTasks(tasks, CommModel{Gamma: 2}, nil, nil)
	for i := range tasks {
		if g[i].Work != tasks[i].Work+2 {
			t.Errorf("task %d: Gamma-only inflated work %d, want %d", i, g[i].Work, tasks[i].Work+2)
		}
	}
	if gcomm != 2*int64(len(tasks)) {
		t.Errorf("Gamma-only comm total %d, want %d", gcomm, 2*int64(len(tasks)))
	}
}
