package exec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/order"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

type pipe struct {
	m    *sparse.Matrix
	f    *symbolic.Factor
	part *core.Partition
	ops  *model.Ops
	ew   []int64
}

func buildPipe(m *sparse.Matrix, g, w int) *pipe {
	pm, err := m.Permute(order.MMD(m))
	if err != nil {
		panic(err)
	}
	f := symbolic.Analyze(pm)
	ops := model.NewOps(f)
	return &pipe{
		m:    pm,
		f:    f,
		part: core.NewPartition(f, core.Options{Grain: g, MinClusterWidth: w}),
		ops:  ops,
		ew:   model.ElementWork(ops),
	}
}

func TestMakespanSingleProcEqualsTotal(t *testing.T) {
	p := buildPipe(gen.Lap30(), 4, 4)
	s := sched.BlockMap(p.part, 1)
	r := SimulateMakespan(BlockTasks(p.part, s), 1)
	if r.Makespan != r.TotalWork || r.Idle != 0 {
		t.Fatalf("P=1: makespan %d, total %d, idle %d", r.Makespan, r.TotalWork, r.Idle)
	}
	if r.Efficiency != 1 {
		t.Fatalf("P=1 efficiency %g", r.Efficiency)
	}
}

func TestMakespanBounds(t *testing.T) {
	// Makespan is at least max(critical path, Wmax) and at most total work.
	fc := func(seed int64) bool {
		p := buildPipe(gen.Random(60, 1.4, seed), 4, 3)
		for _, np := range []int{2, 4, 8} {
			s := sched.BlockMap(p.part, np)
			tasks := BlockTasks(p.part, s)
			r := SimulateMakespan(tasks, np)
			cp := CriticalPath(tasks)
			if r.Makespan < cp || r.Makespan < s.MaxWork() || r.Makespan > r.TotalWork {
				return false
			}
			if r.Idle != int64(np)*r.Makespan-r.TotalWork {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanWrapColumnTasks(t *testing.T) {
	p := buildPipe(gen.Lap30(), 4, 4)
	for _, np := range []int{4, 16} {
		tasks := ColumnTasks(p.f, p.ops, p.ew, np)
		r := SimulateMakespan(tasks, np)
		if r.Makespan <= 0 || r.Efficiency <= 0 || r.Efficiency > 1 {
			t.Fatalf("P=%d: implausible result %+v", np, r)
		}
	}
}

func TestDelayEfficiencyBelowBalanceBound(t *testing.T) {
	// Efficiency with dependency delays can never beat the paper's
	// no-delay bound e = 1/(1+A).
	p := buildPipe(gen.Lap30(), 25, 4)
	for _, np := range []int{4, 16, 32} {
		s := sched.BlockMap(p.part, np)
		r := SimulateMakespan(BlockTasks(p.part, s), np)
		bound := s.Efficiency()
		if r.Efficiency > bound+1e-9 {
			t.Errorf("P=%d: delay efficiency %.4f above bound %.4f", np, r.Efficiency, bound)
		}
	}
}

func TestCriticalPathChain(t *testing.T) {
	tasks := []Task{
		{ID: 0, Proc: 0, Work: 5},
		{ID: 1, Proc: 1, Work: 3, Preds: []int32{0}},
		{ID: 2, Proc: 0, Work: 2, Preds: []int32{1}},
		{ID: 3, Proc: 1, Work: 1},
	}
	if cp := CriticalPath(tasks); cp != 10 {
		t.Fatalf("critical path = %d, want 10", cp)
	}
	r := SimulateMakespan(tasks, 2)
	if r.Makespan != 10 {
		t.Fatalf("makespan = %d, want 10 (chain dominates)", r.Makespan)
	}
}

func TestParallelFactorizeMatchesSequential(t *testing.T) {
	for _, tm := range gen.Suite() {
		p := buildPipe(tm.Build(), 25, 4)
		s := sched.BlockMap(p.part, 8)
		got, err := ParallelFactorize(p.m, p.part, s)
		if err != nil {
			t.Fatalf("%s: %v", tm.Name, err)
		}
		want, err := numeric.Factorize(p.m, p.f)
		if err != nil {
			t.Fatalf("%s: sequential: %v", tm.Name, err)
		}
		var worst float64
		for k := range want.Val {
			if d := math.Abs(got.Val[k] - want.Val[k]); d > worst {
				worst = d
			}
		}
		if worst > 1e-9 {
			t.Errorf("%s: parallel factor deviates from sequential by %g", tm.Name, worst)
		}
	}
}

func TestParallelFactorizeRandomProperty(t *testing.T) {
	fc := func(seed int64) bool {
		m := gen.Random(45, 1.3, seed)
		p := buildPipe(m, 3, 3)
		s := sched.BlockMap(p.part, 4)
		got, err := ParallelFactorize(p.m, p.part, s)
		if err != nil {
			return false
		}
		want, err := numeric.Factorize(p.m, p.f)
		if err != nil {
			return false
		}
		for k := range want.Val {
			if math.Abs(got.Val[k]-want.Val[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelFactorizeRejectsPatternOnly(t *testing.T) {
	p := buildPipe(gen.Grid5(3, 3), 4, 4)
	bare := &sparse.Matrix{N: p.m.N, ColPtr: p.m.ColPtr, RowInd: p.m.RowInd}
	s := sched.BlockMap(p.part, 2)
	if _, err := ParallelFactorize(bare, p.part, s); err == nil {
		t.Fatal("expected error for pattern-only matrix")
	}
}

func TestParallelFactorizeNotSPD(t *testing.T) {
	m := gen.Grid5(4, 4)
	// Make it indefinite.
	m.Val[0] = -100
	p := &pipe{m: m, f: symbolic.Analyze(m)}
	p.part = core.NewPartition(p.f, core.Options{Grain: 4, MinClusterWidth: 4})
	s := sched.BlockMap(p.part, 3)
	if _, err := ParallelFactorize(m, p.part, s); err == nil {
		t.Fatal("expected not-SPD error")
	}
}

func BenchmarkParallelFactorizeLap30(b *testing.B) {
	p := buildPipe(gen.Lap30(), 25, 4)
	s := sched.BlockMap(p.part, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParallelFactorize(p.m, p.part, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakespanLap30(b *testing.B) {
	p := buildPipe(gen.Lap30(), 4, 4)
	s := sched.BlockMap(p.part, 16)
	tasks := BlockTasks(p.part, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateMakespan(tasks, 16)
	}
}

func TestParallelLDLMatchesSequential(t *testing.T) {
	// The Section 5 generality claim: the same partition, schedule and
	// dependency graph drive a different factorization kernel.
	for _, tm := range gen.Suite()[:3] {
		p := buildPipe(tm.Build(), 25, 4)
		s := sched.BlockMap(p.part, 8)
		got, err := ParallelFactorizeLDL(p.m, p.part, s)
		if err != nil {
			t.Fatalf("%s: %v", tm.Name, err)
		}
		want, err := numeric.FactorizeLDL(p.m, p.f)
		if err != nil {
			t.Fatalf("%s: %v", tm.Name, err)
		}
		var worst float64
		for k := range want.Val {
			if d := math.Abs(got.Val[k] - want.Val[k]); d > worst {
				worst = d
			}
		}
		if worst > 1e-9 {
			t.Errorf("%s: parallel LDL deviates by %g", tm.Name, worst)
		}
	}
}

func TestParallelLDLIndefinite(t *testing.T) {
	// An indefinite diagonal shift: Cholesky fails, LDL^T succeeds in
	// parallel too (natural ordering keeps the test deterministic).
	m := gen.Grid5(6, 6)
	m.Val[0] = -3 // perturb one diagonal entry to flip an eigenvalue
	f := symbolic.Analyze(m)
	part := core.NewPartition(f, core.Options{Grain: 8, MinClusterWidth: 4})
	s := sched.BlockMap(part, 4)
	if _, err := ParallelFactorize(m, part, s); err == nil {
		t.Fatal("parallel Cholesky should reject the indefinite matrix")
	}
	got, err := ParallelFactorizeLDL(m, part, s)
	if err != nil {
		t.Fatalf("parallel LDL: %v", err)
	}
	want, err := numeric.FactorizeLDL(m, f)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.Val {
		if math.Abs(got.Val[k]-want.Val[k]) > 1e-9 {
			t.Fatalf("value %d differs", k)
		}
	}
}

func TestParallelSolveMatchesSequential(t *testing.T) {
	fc := func(seed int64) bool {
		m := gen.Random(50, 1.3, seed)
		p := buildPipe(m, 4, 3)
		chol, err := numeric.Factorize(p.m, p.f)
		if err != nil {
			return false
		}
		b := make([]float64, p.m.N)
		for i := range b {
			b[i] = float64((i*13)%7) - 3
		}
		want := chol.Solve(b)
		var scale float64
		for i := range want {
			if a := math.Abs(want[i]); a > scale {
				scale = a
			}
		}
		for _, np := range []int{2, 4, 8} {
			for _, s := range []*sched.Schedule{
				sched.BlockMap(p.part, np),
				sched.WrapMap(p.f, p.ew, np),
			} {
				got, err := ParallelSolve(chol, s, b)
				if err != nil {
					return false
				}
				for i := range want {
					// Different summation orders across the sweeps; allow a
					// conditioning-scaled tolerance.
					if math.Abs(got[i]-want[i]) > 1e-7*(1+scale) {
						return false
					}
				}
			}
		}
		return true
	}
	// Fixed source: numeric comparisons must not depend on quick's
	// time-based default seeding.
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(fc, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParallelSolveSuite(t *testing.T) {
	for _, tm := range gen.Suite()[:2] {
		p := buildPipe(tm.Build(), 25, 4)
		chol, err := numeric.Factorize(p.m, p.f)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, p.m.N)
		for i := range b {
			b[i] = 1
		}
		s := sched.BlockMap(p.part, 8)
		x, err := ParallelSolve(chol, s, b)
		if err != nil {
			t.Fatalf("%s: %v", tm.Name, err)
		}
		if r := numeric.ResidualNorm(p.m, x, b); r > 1e-9 {
			t.Errorf("%s: parallel solve residual %g", tm.Name, r)
		}
	}
}

func TestParallelSolveErrors(t *testing.T) {
	p := buildPipe(gen.Grid5(4, 4), 4, 4)
	chol, err := numeric.Factorize(p.m, p.f)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.BlockMap(p.part, 2)
	if _, err := ParallelSolve(chol, s, make([]float64, 3)); err == nil {
		t.Fatal("expected rhs length error")
	}
}
