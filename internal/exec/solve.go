package exec

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/sched"
	"repro/internal/symbolic"
)

// solveSetup validates the rhs and schedule against the factor structure
// and derives what both parallel triangular solvers share: the
// per-processor column lists (a column belongs to the owner of its
// diagonal element), the row-structure ops, the backward-sweep dependency
// lists, and a positional lookup for L[i][j].
func solveSetup(f *symbolic.Factor, s *sched.Schedule, b []float64) (ops *model.Ops, perProc [][]int, backDeps [][]int32, posOf func(i, j int) int, err error) {
	n := f.N
	if len(b) != n {
		return nil, nil, nil, nil, fmt.Errorf("exec: rhs length %d, want %d", len(b), n)
	}
	if len(s.ElemProc) != f.NNZ() {
		return nil, nil, nil, nil, fmt.Errorf("exec: schedule covers a different factor")
	}
	if err := checkProcCount(s.P); err != nil {
		return nil, nil, nil, nil, err
	}
	ops = model.NewOps(f)
	perProc = make([][]int, s.P)
	for j := 0; j < n; j++ {
		p := s.ElemProc[f.ColPtr[j]]
		if err := checkProc(p, s.P); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("exec: column %d: %w", j, err)
		}
		perProc[p] = append(perProc[p], j)
	}
	// Backward-sweep dependencies: struct(j) below the diagonal.
	backDeps = make([][]int32, n)
	for j := 0; j < n; j++ {
		col := f.Col(j)[1:]
		deps := make([]int32, len(col))
		for t, i := range col {
			deps[t] = int32(i)
		}
		backDeps[j] = deps
	}
	// posOf(i, j): value index of L[i][j].
	posOf = func(i, j int) int {
		col := f.Col(j)
		lo, hi := 0, len(col)
		for lo < hi {
			mid := (lo + hi) / 2
			if col[mid] < i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return f.ColPtr[j] + lo
	}
	return ops, perProc, backDeps, posOf, nil
}

// ParallelSolve runs the two triangular solves of the paper's step 4
// (L·y = b, then Lᵀ·x = y) with one worker goroutine per simulated
// processor, each owning the columns the schedule assigns to it (a column
// belongs to the owner of its diagonal element).
//
// Both sweeps use the fan-in formulation, so every solution component is
// written exactly once by its owner:
//
//	forward:  y[j] = (b[j] - Σ_{k in rowstruct(j)} L[j,k]·y[k]) / L[j,j]
//	backward: x[j] = (y[j] - Σ_{i in struct(j), i>j} L[i,j]·x[i]) / L[j,j]
//
// The forward sweep's dependencies are the factor's row structure; the
// backward sweep's are the column structure, traversed in reverse.
func ParallelSolve(chol *numeric.Cholesky, s *sched.Schedule, b []float64) ([]float64, error) {
	f := chol.F
	n := f.N
	ops, perProc, backDeps, posOf, err := solveSetup(f, s, b)
	if err != nil {
		return nil, err
	}

	// Forward sweep.
	y := make([]float64, n)
	runSweep(s.P, perProc, false, func(j int) {
		sum := b[j]
		for _, k := range ops.RowCols(j) {
			sum -= chol.Val[posOf(j, int(k))] * y[k]
		}
		y[j] = sum / chol.Val[f.ColPtr[j]]
	}, func(j int) []int32 { return ops.RowCols(j) }, n)

	// Backward sweep: dependencies are struct(j) below the diagonal,
	// traversed in decreasing column order.
	x := make([]float64, n)
	runSweep(s.P, perProc, true, func(j int) {
		sum := y[j]
		for q := f.ColPtr[j] + 1; q < f.ColPtr[j+1]; q++ {
			sum -= chol.Val[q] * x[f.RowInd[q]]
		}
		x[j] = sum / chol.Val[f.ColPtr[j]]
	}, func(j int) []int32 { return backDeps[j] }, n)
	return x, nil
}

// ParallelSolveLDL is ParallelSolve for an LDLᵀ factorization: the same
// fan-in sweeps adapted to the unit lower triangle and explicit diagonal
// (L·z = b, w = D⁻¹·z folded into the backward start, Lᵀ·x = w):
//
//	forward:  z[j] = b[j] - Σ_{k in rowstruct(j)} L[j,k]·z[k]
//	backward: x[j] = z[j]/D[j] - Σ_{i in struct(j), i>j} L[i,j]·x[i]
//
// Together with ParallelFactorizeLDL / ParallelFactorize2DLDL this closes
// the LDLᵀ pipeline: both kernels now factor *and* solve in parallel
// under any column-ownership schedule.
func ParallelSolveLDL(ldl *numeric.LDL, s *sched.Schedule, b []float64) ([]float64, error) {
	f := ldl.F
	n := f.N
	ops, perProc, backDeps, posOf, err := solveSetup(f, s, b)
	if err != nil {
		return nil, err
	}

	// Forward sweep over the unit lower triangle (no diagonal divide).
	z := make([]float64, n)
	runSweep(s.P, perProc, false, func(j int) {
		sum := b[j]
		for _, k := range ops.RowCols(j) {
			sum -= ldl.Val[posOf(j, int(k))] * z[k]
		}
		z[j] = sum
	}, func(j int) []int32 { return ops.RowCols(j) }, n)

	// Backward sweep; the diagonal solve w = D⁻¹·z is folded into each
	// column's starting value.
	x := make([]float64, n)
	runSweep(s.P, perProc, true, func(j int) {
		sum := z[j] / ldl.Val[f.ColPtr[j]]
		for q := f.ColPtr[j] + 1; q < f.ColPtr[j+1]; q++ {
			sum -= ldl.Val[q] * x[f.RowInd[q]]
		}
		x[j] = sum
	}, func(j int) []int32 { return backDeps[j] }, n)
	return x, nil
}

// runSweep executes one triangular sweep: each processor's worker walks
// its columns (reversed for the backward sweep) and blocks until the
// column's dependencies are done.
func runSweep(p int, perProc [][]int, reverse bool, compute func(j int), deps func(j int) []int32, n int) {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	done := make([]bool, n)
	var wg sync.WaitGroup
	for proc := 0; proc < p; proc++ {
		cols := perProc[proc]
		wg.Add(1)
		//repro:allow nondeterminism -- per-processor sweep workers synchronize on the done/cond column flags; each column is computed exactly once from finished dependencies, pinned by TestParallelSolveLDLDeterministic and TestParallelSolveMatchesSequential
		go func(cols []int) {
			defer wg.Done()
			order := cols
			if reverse {
				order = make([]int, len(cols))
				for i, j := range cols {
					order[len(cols)-1-i] = j
				}
			}
			for _, j := range order {
				mu.Lock()
				for !allDone(done, deps(j)) {
					cond.Wait()
				}
				mu.Unlock()
				compute(j)
				mu.Lock()
				done[j] = true
				cond.Broadcast()
				mu.Unlock()
			}
		}(cols)
	}
	wg.Wait()
}
