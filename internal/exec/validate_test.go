package exec

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/numeric"
	"repro/internal/sched"
)

// Regression: ParallelSolve used to index its per-processor buckets with
// schedule-supplied owner ids without validating them, so a schedule with
// P = 0 or an out-of-range owner panicked instead of returning an error.
func TestParallelSolveRejectsZeroProcs(t *testing.T) {
	p := buildPipe(gen.Grid5(4, 4), 4, 4)
	chol, err := numeric.Factorize(p.m, p.f)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.BlockMap(p.part, 2)
	bad := &sched.Schedule{P: 0, ElemProc: s.ElemProc}
	if _, err := ParallelSolve(chol, bad, make([]float64, p.m.N)); err == nil {
		t.Fatal("expected error for P=0 schedule")
	} else if !strings.Contains(err.Error(), "processor count") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestParallelSolveRejectsOutOfRangeOwner(t *testing.T) {
	p := buildPipe(gen.Grid5(4, 4), 4, 4)
	chol, err := numeric.Factorize(p.m, p.f)
	if err != nil {
		t.Fatal(err)
	}
	for _, owner := range []int32{-1, 2, 99} {
		s := sched.BlockMap(p.part, 2)
		ep := make([]int32, len(s.ElemProc))
		copy(ep, s.ElemProc)
		ep[p.f.ColPtr[0]] = owner // corrupt column 0's diagonal owner
		bad := &sched.Schedule{P: 2, ElemProc: ep}
		if _, err := ParallelSolve(chol, bad, make([]float64, p.m.N)); err == nil {
			t.Fatalf("expected error for owner %d on P=2", owner)
		} else if !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("owner %d: unexpected error: %v", owner, err)
		}
	}
}

// The 1D block engine shares the validator: corrupt unit owners error out
// instead of racing or panicking.
func TestParallelFactorizeRejectsBadOwners(t *testing.T) {
	p := buildPipe(gen.Grid5(4, 4), 4, 4)
	s := sched.BlockMap(p.part, 2)
	s.UnitProc[0] = 7
	if _, err := ParallelFactorize(p.m, p.part, s); err == nil {
		t.Fatal("expected error for out-of-range unit owner")
	}
	s.P = 0
	if _, err := ParallelFactorize(p.m, p.part, s); err == nil {
		t.Fatal("expected error for P=0 schedule")
	}
}

// serialColumnTasks builds the trivially valid task graph for the 2D
// engine: one task per column on one processor, ID order = column order.
func serialColumnTasks(p *pipe) ([]Task, []int32) {
	tasks := make([]Task, p.f.N)
	elemTask := make([]int32, p.f.NNZ())
	for j := 0; j < p.f.N; j++ {
		tasks[j] = Task{ID: j, Proc: 0, Work: 1}
		if j > 0 {
			tasks[j].Preds = []int32{int32(j - 1)}
		}
		for q := p.f.ColPtr[j]; q < p.f.ColPtr[j+1]; q++ {
			elemTask[q] = int32(j)
		}
	}
	return tasks, elemTask
}

func TestParallelFactorize2DSerialGraph(t *testing.T) {
	p := buildPipe(gen.Lap30(), 4, 4)
	tasks, elemTask := serialColumnTasks(p)
	want, err := numeric.Factorize(p.m, p.f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParallelFactorize2D(p.m, p.f, 1, tasks, elemTask)
	if err != nil {
		t.Fatal(err)
	}
	for q := range want.Val {
		if math.Float64bits(got.Val[q]) != math.Float64bits(want.Val[q]) {
			t.Fatalf("position %d: %g vs %g", q, got.Val[q], want.Val[q])
		}
	}
}

func TestParallelFactorize2DRejectsMalformed(t *testing.T) {
	p := buildPipe(gen.Grid5(4, 4), 4, 4)
	tasks, elemTask := serialColumnTasks(p)
	cases := []struct {
		name string
		run  func() error
	}{
		{"zero procs", func() error {
			_, err := ParallelFactorize2D(p.m, p.f, 0, tasks, elemTask)
			return err
		}},
		{"no values", func() error {
			pat := *p.m
			pat.Val = nil
			_, err := ParallelFactorize2D(&pat, p.f, 1, tasks, elemTask)
			return err
		}},
		{"short elemTask", func() error {
			_, err := ParallelFactorize2D(p.m, p.f, 1, tasks, elemTask[:3])
			return err
		}},
		{"task out of range", func() error {
			bad := make([]int32, len(elemTask))
			copy(bad, elemTask)
			bad[0] = int32(len(tasks))
			_, err := ParallelFactorize2D(p.m, p.f, 1, tasks, bad)
			return err
		}},
		{"task spans columns", func() error {
			bad := make([]int32, len(elemTask))
			copy(bad, elemTask)
			bad[p.f.ColPtr[1]] = 0 // column 1's diagonal into column 0's task
			_, err := ParallelFactorize2D(p.m, p.f, 1, tasks, bad)
			return err
		}},
		{"proc out of range", func() error {
			bad := make([]Task, len(tasks))
			copy(bad, tasks)
			bad[0].Proc = 5
			_, err := ParallelFactorize2D(p.m, p.f, 1, bad, elemTask)
			return err
		}},
		{"forward pred", func() error {
			bad := make([]Task, len(tasks))
			copy(bad, tasks)
			bad[0].Preds = []int32{1}
			_, err := ParallelFactorize2D(p.m, p.f, 1, bad, elemTask)
			return err
		}},
		{"task ID out of order", func() error {
			bad := make([]Task, len(tasks))
			copy(bad, tasks)
			bad[0].ID = 3
			_, err := ParallelFactorize2D(p.m, p.f, 1, bad, elemTask)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// The 2D kernel applies the same pivot rules as the serial kernels: a
// non-finite or nonpositive pivot is an error, not a silent NaN factor.
func TestParallelFactorize2DRejectsBadPivot(t *testing.T) {
	p := buildPipe(gen.Grid5(3, 3), 4, 4)
	tasks, elemTask := serialColumnTasks(p)
	m := *p.m
	m.Val = make([]float64, len(p.m.Val))
	copy(m.Val, p.m.Val)
	m.Val[m.ColPtr[0]] = math.Inf(1)
	if _, err := ParallelFactorize2D(&m, p.f, 1, tasks, elemTask); err == nil {
		t.Fatal("Cholesky: expected pivot error for +Inf diagonal")
	}
	if _, err := ParallelFactorize2DLDL(&m, p.f, 1, tasks, elemTask); err == nil {
		t.Fatal("LDL: expected pivot error for +Inf diagonal")
	}
}

// Zero-span runs must report Efficiency 1 / Idle 0 — never NaN, which
// encoding/json refuses and which used to leak out of the derived tables.
func TestZeroSpanEfficiencyPinned(t *testing.T) {
	if e := Efficiency(4, 0, 0); e != 1 {
		t.Fatalf("Efficiency(4, 0, 0) = %g, want 1", e)
	}
	r := SimResult{P: 4}
	if pct := r.IdlePct(); pct != 0 {
		t.Fatalf("zero-span IdlePct = %g, want 0", pct)
	}
	if _, err := json.Marshal(struct {
		Eff  float64
		Idle float64
	}{Efficiency(4, 0, 0), r.IdlePct()}); err != nil {
		t.Fatalf("zero-span summary is not JSON-encodable: %v", err)
	}
}

func TestMeasureFactorizeSmoke(t *testing.T) {
	p := buildPipe(gen.Grid5(6, 6), 4, 4)
	tasks, elemTask := serialColumnTasks(p)
	mes, err := MeasureFactorize(p.m, p.f, 1, tasks, elemTask, MeasureOptions{Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mes.SerialNs < 1 || mes.ParallelNs < 1 || !(mes.Speedup > 0) {
		t.Fatalf("degenerate measurement: %+v", mes)
	}
	if mes.Repeats != 2 || mes.P != 1 {
		t.Fatalf("measurement metadata: %+v", mes)
	}
	if len(mes.Events) != len(tasks) {
		t.Fatalf("events %d, want one per task (%d)", len(mes.Events), len(tasks))
	}
	for i, ev := range mes.Events {
		if int(ev.Task) != i || ev.Finish < ev.Start || ev.Work != ev.Finish-ev.Start {
			t.Fatalf("event %d malformed: %+v", i, ev)
		}
	}
}
