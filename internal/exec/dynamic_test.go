package exec

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sched"
)

func TestDynamicNeverWorseThanStatic(t *testing.T) {
	// Dynamic ready-queue execution can only remove order-induced stalls,
	// never add them, for the same assignment.
	fc := func(seed int64) bool {
		p := buildPipe(gen.Random(60, 1.4, seed), 4, 3)
		for _, np := range []int{2, 4, 8} {
			s := sched.BlockMap(p.part, np)
			tasks := BlockTasks(p.part, s)
			st := SimulateMakespan(tasks, np)
			dy := SimulateMakespanDynamic(tasks, np)
			if dy.Makespan > st.Makespan {
				return false
			}
			if dy.Makespan < CriticalPath(tasks) || dy.Makespan < s.MaxWork() {
				return false
			}
			if dy.TotalWork != st.TotalWork {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicSingleProc(t *testing.T) {
	p := buildPipe(gen.Lap30(), 25, 4)
	s := sched.BlockMap(p.part, 1)
	r := SimulateMakespanDynamic(BlockTasks(p.part, s), 1)
	if r.Makespan != r.TotalWork || r.Idle != 0 || r.Efficiency != 1 {
		t.Fatalf("P=1 dynamic: %+v", r)
	}
}

func TestDynamicKnownSchedule(t *testing.T) {
	// Two independent chains on one processor plus a cross dependency:
	//   t0 (5) -> t2 (2)   on proc 0: t0, t1, t2; proc 1: t3 (dep t1).
	//   t1 (1)
	// Static order on proc 0 runs t0, t1, t2 -> t1 done at 6, so t3
	// starts at 6. Dynamic priority puts t1 first when profitable.
	tasks := []Task{
		{ID: 0, Proc: 0, Work: 5},
		{ID: 1, Proc: 0, Work: 1},
		{ID: 2, Proc: 0, Work: 2, Preds: []int32{0}},
		{ID: 3, Proc: 1, Work: 10, Preds: []int32{1}},
	}
	st := SimulateMakespan(tasks, 2)
	dy := SimulateMakespanDynamic(tasks, 2)
	// Bottom levels: t1 has 1+10=11 > t0's 5+2=7, so dynamic runs t1
	// first: t1 done at 1, t3 done at 11; proc0: t0 at 6, t2 at 8.
	if dy.Makespan != 11 {
		t.Errorf("dynamic makespan = %d, want 11", dy.Makespan)
	}
	// Static: t0 at 5, t1 at 6, t3 at 16.
	if st.Makespan != 16 {
		t.Errorf("static makespan = %d, want 16", st.Makespan)
	}
}

func TestDynamicColumnTasks(t *testing.T) {
	p := buildPipe(gen.Lap30(), 4, 4)
	for _, np := range []int{4, 16} {
		tasks := ColumnTasks(p.f, p.ops, p.ew, np)
		st := SimulateMakespan(tasks, np)
		dy := SimulateMakespanDynamic(tasks, np)
		if dy.Makespan > st.Makespan {
			t.Errorf("P=%d: dynamic %d worse than static %d", np, dy.Makespan, st.Makespan)
		}
	}
}

func BenchmarkDynamicMakespanLap30(b *testing.B) {
	p := buildPipe(gen.Lap30(), 4, 4)
	s := sched.BlockMap(p.part, 16)
	tasks := BlockTasks(p.part, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateMakespanDynamic(tasks, 16)
	}
}
