package exec

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/sched"
)

// TestParallelFactorizeDeterminism pins bit-for-bit stability of the
// parallel engine across repeated runs on the same schedule: the worker
// goroutines synchronize on the execPreds unit graph, which is built by
// insertion-order deduplication plus an explicit sort (exec.go), never by
// map iteration. If scheduling order ever leaked into the numerics, two
// runs would disagree in the low bits here. CI runs this with -race and
// -count=2.
func TestParallelFactorizeDeterminism(t *testing.T) {
	for _, tm := range gen.Suite() {
		p := buildPipe(tm.Build(), 25, 4)
		s := sched.BlockMap(p.part, 8)
		first, err := ParallelFactorize(p.m, p.part, s)
		if err != nil {
			t.Fatalf("%s: %v", tm.Name, err)
		}
		for rep := 0; rep < 3; rep++ {
			got, err := ParallelFactorize(p.m, p.part, s)
			if err != nil {
				t.Fatalf("%s: rep %d: %v", tm.Name, rep, err)
			}
			for k := range first.Val {
				if math.Float64bits(got.Val[k]) != math.Float64bits(first.Val[k]) {
					t.Fatalf("%s: rep %d diverged at value %d: %x vs %x",
						tm.Name, rep, k, math.Float64bits(got.Val[k]), math.Float64bits(first.Val[k]))
				}
			}
		}
	}
}
