package exec

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/numeric"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// ParallelFactorize2D executes the numeric Cholesky factorization with one
// worker goroutine per processor over an arbitrary column-partitioned task
// graph — in particular the merged tile-segment graph of a 2D tile
// schedule (part2d.Tasks). Each task owns a set of elements of one target
// column; its worker waits on the task's predecessors (per-task done
// channels, closed on completion), applies the column's updates to its
// elements, and scales them.
//
// The result is bit-for-bit equal to numeric.Factorize: updates are
// applied in the serial left-looking chain order (numeric.Chains) with the
// identical association, so every element sees exactly the serial sequence
// of floating-point operations regardless of how the tasks interleave.
// That makes the run deterministic and the comm-aware makespan simulators
// falsifiable — the same task graph they predict is what actually runs.
//
// tasks must be topologically ordered by ID with processors in [0, p), and
// elemTask must assign every factor position to a task of its own column;
// malformed inputs are reported as errors (the validator is shared with
// ParallelSolve), never as panics or races.
func ParallelFactorize2D(m *sparse.Matrix, f *symbolic.Factor, p int, tasks []Task, elemTask []int32) (*NumericFactor, error) {
	nf, _, err := runFactorize2D(m, f, p, tasks, elemTask, false, false)
	return nf, err
}

// ParallelFactorize2DLDL is ParallelFactorize2D with the square-root-free
// LDLᵀ kernel; its result is bit-for-bit equal to numeric.FactorizeLDL.
func ParallelFactorize2DLDL(m *sparse.Matrix, f *symbolic.Factor, p int, tasks []Task, elemTask []int32) (*NumericFactor, error) {
	nf, _, err := runFactorize2D(m, f, p, tasks, elemTask, true, false)
	return nf, err
}

// engine2D is the shared state of one parallel 2D factorization run.
type engine2D struct {
	f         *symbolic.Factor
	val       []float64
	colOf     []int32
	head, pos []int32 // the serial update schedule (numeric.Chains)
	ldl       bool
}

// runFactorize2D validates the inputs, builds the run state and executes
// the task graph. With record set it timestamps every task execution
// (nanoseconds since the workers started) and returns the events sorted by
// task ID.
func runFactorize2D(m *sparse.Matrix, f *symbolic.Factor, p int, tasks []Task, elemTask []int32, ldl, record bool) (*NumericFactor, []TaskEvent, error) {
	if m.Val == nil {
		return nil, nil, fmt.Errorf("exec: matrix has no values")
	}
	if m.N != f.N {
		return nil, nil, fmt.Errorf("exec: dimension mismatch %d vs %d", m.N, f.N)
	}
	if err := checkProcCount(p); err != nil {
		return nil, nil, err
	}
	if err := checkTasks(tasks, p); err != nil {
		return nil, nil, err
	}
	if len(elemTask) != f.NNZ() {
		return nil, nil, fmt.Errorf("exec: element-task map covers %d positions, factor has %d", len(elemTask), f.NNZ())
	}
	// Group every task's elements (ascending positions) and pin the
	// one-column-per-task invariant the kernel relies on.
	taskElems := make([][]int32, len(tasks))
	taskCol := make([]int32, len(tasks))
	for i := range taskCol {
		taskCol[i] = -1
	}
	for j := 0; j < f.N; j++ {
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			t := elemTask[q]
			if t < 0 || int(t) >= len(tasks) {
				return nil, nil, fmt.Errorf("exec: position %d mapped to out-of-range task %d", q, t)
			}
			if taskCol[t] >= 0 && taskCol[t] != int32(j) {
				return nil, nil, fmt.Errorf("exec: task %d spans columns %d and %d", t, taskCol[t], j)
			}
			taskCol[t] = int32(j)
			taskElems[t] = append(taskElems[t], int32(q))
		}
	}
	head, pos := numeric.Chains(f)
	e := &engine2D{
		f:     f,
		val:   numeric.ScatterA(m, f),
		colOf: numeric.ColIndex(f),
		head:  head,
		pos:   pos,
		ldl:   ldl,
	}
	perProc := make([][]int32, p)
	for i := range tasks {
		perProc[tasks[i].Proc] = append(perProc[tasks[i].Proc], int32(i))
	}
	done := make([]chan struct{}, len(tasks))
	for i := range done {
		done[i] = make(chan struct{})
	}
	abort := make(chan struct{})
	var failOnce sync.Once
	var firstErr error
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			close(abort)
		})
	}

	var events [][]TaskEvent
	var t0 time.Time
	if record {
		events = make([][]TaskEvent, p)
		//repro:allow nondeterminism -- t0 anchors measurement-only trace timestamps; factor values never see it (TestMeasureRealEvents checks the trace, TestParallelFactorizeBitIdentity pins the numerics)
		t0 = time.Now()
	}
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		//repro:allow nondeterminism -- one worker per processor over the 2D tile DAG; updates to a column are serialized by its dependency counter and ordered by tile id, pinned bitwise by TestParallelFactorizeBitIdentity under -race
		go func(proc int) {
			defer wg.Done()
			mine := perProc[proc]
			if len(mine) == 0 {
				return
			}
			// Per-worker scatter of the task's rows; stamp keys validity.
			tpos := make([]int32, f.N)
			stamp := make([]int32, f.N)
			round := int32(0)
			var prevFinish int64
			for _, ti := range mine {
				cause := int32(-1)
				for _, pr := range tasks[ti].Preds {
					select {
					case <-done[pr]:
					default:
						// This predecessor actually blocks us: record it
						// as the stall cause, like the simulators do.
						select {
						case <-done[pr]:
							cause = pr
						case <-abort:
							return
						}
					}
				}
				var start int64
				if record {
					start = time.Since(t0).Nanoseconds()
				}
				round++
				if err := e.computeTask(taskElems[ti], tpos, stamp, round); err != nil {
					fail(err)
					return
				}
				close(done[ti])
				if record {
					finish := time.Since(t0).Nanoseconds()
					events[proc] = append(events[proc], TaskEvent{
						Task: ti, Proc: int32(proc),
						Start: start, Finish: finish,
						Work:  finish - start,
						Stall: start - prevFinish, Cause: cause,
					})
					prevFinish = finish
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	var evs []TaskEvent
	if record {
		for _, pe := range events {
			evs = append(evs, pe...)
		}
		sort.Slice(evs, func(a, b int) bool { return evs[a].Task < evs[b].Task })
	}
	return &NumericFactor{F: f, Val: e.val}, evs, nil
}

// computeTask runs one merged tile-segment task: apply the target column's
// updates to the task's elements in the serial chain order, then scale.
// elems are ascending positions of a single column; round stamps the
// worker-local scatter arrays.
func (e *engine2D) computeTask(elems []int32, tpos, stamp []int32, round int32) error {
	if len(elems) == 0 {
		return nil
	}
	f := e.f
	val := e.val
	j := int(e.colOf[elems[0]])
	diag := int32(f.ColPtr[j])
	for _, q := range elems {
		i := f.RowInd[q]
		tpos[i] = q
		stamp[i] = round
	}
	for ci := e.head[j]; ci < e.head[j+1]; ci++ {
		p := e.pos[ci]
		k := int(e.colOf[p])
		end := int32(f.ColPtr[k+1])
		// ljk (and D[k] for LDL) are loaded lazily, on the first row this
		// task owns: the update (i, j) <- (i, k), (j, k) then guarantees
		// both source tasks are among this task's predecessors, so the
		// reads are synchronized. A chain entry touching none of the
		// task's rows must not read column k at all — its tasks may still
		// be in flight.
		loaded := false
		var ljk, dk float64
		for q := p; q < end; q++ {
			i := f.RowInd[q]
			if stamp[i] != round {
				continue
			}
			if !loaded {
				ljk = val[p]
				if e.ldl {
					dk = val[f.ColPtr[k]]
				}
				loaded = true
			}
			if e.ldl {
				val[tpos[i]] -= val[q] * dk * ljk
			} else {
				val[tpos[i]] -= val[q] * ljk
			}
		}
	}
	if elems[0] == diag {
		// This task owns the diagonal: compute the pivot (identical checks
		// to the serial kernels, rejecting non-finite pivots) and scale its
		// own off-diagonal elements.
		pivot := val[diag]
		var d float64
		if e.ldl {
			if pivot == 0 || math.IsNaN(pivot) || math.IsInf(pivot, 0) {
				return fmt.Errorf("exec: unusable pivot %g at column %d (want finite nonzero)", pivot, j)
			}
			d = pivot
		} else {
			if pivot <= 0 || math.IsNaN(pivot) || math.IsInf(pivot, 0) {
				return fmt.Errorf("exec: unusable pivot %g at column %d (want finite positive)", pivot, j)
			}
			d = math.Sqrt(pivot)
			val[diag] = d
		}
		for _, q := range elems[1:] {
			val[q] /= d
		}
	} else {
		// The diagonal belongs to another task; the scale dependency
		// (ForEachScale in the task graph) guarantees it is final.
		d := val[diag]
		for _, q := range elems {
			val[q] /= d
		}
	}
	return nil
}
