package exec

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/numeric"
	"repro/internal/sched"
)

func TestParallelSolveLDLMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		m := gen.Random(60, 1.4, seed)
		p := buildPipe(m, 4, 3)
		ldl, err := numeric.FactorizeLDL(p.m, p.f)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, p.m.N)
		for i := range b {
			b[i] = float64((i*17)%11) - 5
		}
		want := ldl.Solve(b)
		var scale float64
		for i := range want {
			if a := math.Abs(want[i]); a > scale {
				scale = a
			}
		}
		for _, np := range []int{1, 2, 4, 8} {
			for _, s := range []*sched.Schedule{
				sched.BlockMap(p.part, np),
				sched.WrapMap(p.f, p.ew, np),
			} {
				got, err := ParallelSolveLDL(ldl, s, b)
				if err != nil {
					t.Fatalf("seed %d P=%d: %v", seed, np, err)
				}
				for i := range want {
					// Fan-in vs scatter summation order; allow a
					// conditioning-scaled tolerance.
					if math.Abs(got[i]-want[i]) > 1e-7*(1+scale) {
						t.Fatalf("seed %d P=%d: x[%d] = %g, serial %g", seed, np, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestParallelSolveLDLDeterministic pins run-to-run bit-identity: every
// component is computed by one owner with a fixed reduction order, so the
// result must not depend on goroutine interleaving.
func TestParallelSolveLDLDeterministic(t *testing.T) {
	p := buildPipe(gen.Grid9(12, 12), 16, 4)
	ldl, err := numeric.FactorizeLDL(p.m, p.f)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, p.m.N)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	s := sched.WrapMap(p.f, p.ew, 8)
	first, err := ParallelSolveLDL(ldl, s, b)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		again, err := ParallelSolveLDL(ldl, s, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d: x[%d] changed bitwise: %g vs %g", r, i, again[i], first[i])
			}
		}
	}
}

// TestParallelSolveLDLIndefinite exercises the case Cholesky cannot
// reach: a symmetric indefinite system solved end to end in parallel.
func TestParallelSolveLDLIndefinite(t *testing.T) {
	m := gen.Grid5(6, 6)
	m.Val[0] = -3 // flip one eigenvalue
	p := buildPipe(m, 8, 4)
	if _, err := numeric.Factorize(p.m, p.f); err == nil {
		t.Fatal("matrix unexpectedly positive definite")
	}
	ldl, err := numeric.FactorizeLDL(p.m, p.f)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, p.m.N)
	for i := range b {
		b[i] = 1
	}
	s := sched.BlockMap(p.part, 4)
	x, err := ParallelSolveLDL(ldl, s, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := numeric.ResidualNorm(p.m, x, b); r > 1e-8 {
		t.Fatalf("indefinite parallel LDL solve residual %g", r)
	}
}

func TestParallelSolveLDLErrors(t *testing.T) {
	p := buildPipe(gen.Grid5(4, 4), 4, 4)
	ldl, err := numeric.FactorizeLDL(p.m, p.f)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.BlockMap(p.part, 2)
	if _, err := ParallelSolveLDL(ldl, s, make([]float64, 3)); err == nil {
		t.Fatal("expected rhs length error")
	}
	bad := &sched.Schedule{P: 0, ElemProc: make([]int32, p.f.NNZ())}
	if _, err := ParallelSolveLDL(ldl, bad, make([]float64, p.f.N)); err == nil {
		t.Fatal("expected processor count error")
	}
}
