package exec

import "fmt"

// checkProcCount mirrors the strategy registry's processor-count contract
// (strategy.checkProcs): library entry points return an error on a
// non-positive P instead of panicking later on a zero-length per-processor
// slice.
func checkProcCount(p int) error {
	if p < 1 {
		return fmt.Errorf("exec: invalid processor count %d", p)
	}
	return nil
}

// mustProcs is checkProcCount for entry points with no error return (the
// simulators and task-graph builders): a non-positive P is a caller bug
// and panics with the package prefix, mirroring sched's contract.
func mustProcs(p int) {
	if p < 1 {
		panic(fmt.Sprintf("exec: invalid processor count %d", p))
	}
}

// checkProc validates one schedule-supplied owner id against the
// processor count. Schedules are caller-constructed data; an out-of-range
// owner must surface as an error, not an index-out-of-range panic.
func checkProc(owner int32, p int) error {
	if owner < 0 || int(owner) >= p {
		return fmt.Errorf("exec: processor %d out of range [0, %d)", owner, p)
	}
	return nil
}

// checkTasks validates a task graph for execution: IDs must equal the
// slice index (topological order), every processor in [0, p), and every
// predecessor a strictly earlier task. The simulators panic on these
// conditions (they only ever see graphs the package itself built); the
// real executors accept caller-supplied graphs and return errors.
func checkTasks(tasks []Task, p int) error {
	for i := range tasks {
		t := &tasks[i]
		if t.ID != i {
			return fmt.Errorf("exec: task %d out of order (ID %d)", i, t.ID)
		}
		if err := checkProc(t.Proc, p); err != nil {
			return fmt.Errorf("exec: task %d: %w", i, err)
		}
		for _, pr := range t.Preds {
			if pr < 0 || int(pr) >= i {
				return fmt.Errorf("exec: task %d depends on non-earlier task %d", i, pr)
			}
		}
	}
	return nil
}
