package exec

// SimResult degenerate-case pins: finalize is the single place the
// summary fields are derived, and these tests lock its contract — a
// zero-span run (empty task list, or all-zero work) reports Idle = 0 and
// Efficiency = 1; with more processors than tasks Idle stays non-negative
// and exactly P*Makespan - TotalWork. All four simulators (static and
// dynamic, compute-only and comm-aware) share the same finalize.

import (
	"fmt"
	"testing"
)

// edgeSims enumerates the four simulators behind a uniform signature
// (the comm-aware pair gets zero per-task volumes and messages).
func edgeSims(cm CommModel) []struct {
	name string
	run  func(tasks []Task, p int) SimResult
} {
	zeroVec := func(n int) []int64 { return make([]int64, n) }
	return []struct {
		name string
		run  func(tasks []Task, p int) SimResult
	}{
		{"static", func(ts []Task, p int) SimResult { return SimulateMakespan(ts, p) }},
		{"dynamic", func(ts []Task, p int) SimResult { return SimulateMakespanDynamic(ts, p) }},
		{"comm", func(ts []Task, p int) SimResult {
			return SimulateMakespanComm(ts, p, cm, zeroVec(len(ts)), zeroVec(len(ts)))
		}},
		{"commdynamic", func(ts []Task, p int) SimResult {
			return SimulateMakespanDynamicComm(ts, p, cm, zeroVec(len(ts)), zeroVec(len(ts)))
		}},
	}
}

// TestSimulateEmptyTaskList: an empty task list is a degenerate but legal
// input; every simulator must report Makespan 0, Idle 0 and Efficiency 1
// (not 0/0 = NaN) at any P.
func TestSimulateEmptyTaskList(t *testing.T) {
	cm := CommModel{Alpha: 2, Beta: 10}
	for _, sim := range edgeSims(cm) {
		for _, p := range []int{1, 4, 16} {
			got := sim.run(nil, p)
			want := SimResult{P: p, Efficiency: 1}
			if got != want {
				t.Errorf("%s P=%d on empty task list: %+v, want %+v", sim.name, p, got, want)
			}
		}
	}
}

// TestSimulateZeroWork: tasks exist but carry no work, so the span is 0;
// the degenerate contract (Idle 0, Efficiency 1) applies, and the probe
// still sees one event per task.
func TestSimulateZeroWork(t *testing.T) {
	cm := CommModel{Alpha: 2, Beta: 10}
	tasks := []Task{
		{ID: 0, Proc: 0},
		{ID: 1, Proc: 1, Preds: []int32{0}},
		{ID: 2, Proc: 0, Preds: []int32{1}},
	}
	for _, sim := range edgeSims(cm) {
		got := sim.run(tasks, 4)
		want := SimResult{P: 4, Efficiency: 1}
		if got != want {
			t.Errorf("%s on zero-work tasks: %+v, want %+v", sim.name, got, want)
		}
	}
	var events []TaskEvent
	probe := probeFunc(func(ev TaskEvent) { events = append(events, ev) })
	SimulateMakespanProbe(tasks, 4, probe)
	if len(events) != len(tasks) {
		t.Errorf("probe saw %d events for %d zero-work tasks", len(events), len(tasks))
	}
}

type probeFunc func(TaskEvent)

func (f probeFunc) OnTask(ev TaskEvent) { f(ev) }

// TestSimulateMoreProcsThanTasks: P far above the task count leaves most
// processors idle forever; Idle must be exactly P*Makespan - TotalWork
// (never negative) and Efficiency the matching ratio. The two-task chain
// also pins the stall attribution: the dependent task's event records the
// full wait with its causing predecessor.
func TestSimulateMoreProcsThanTasks(t *testing.T) {
	cm := CommModel{Alpha: 2, Beta: 10}
	tasks := []Task{
		{ID: 0, Proc: 0, Work: 7},
		{ID: 1, Proc: 3, Work: 5, Preds: []int32{0}},
	}
	const p = 16
	want := SimResult{P: p, Makespan: 12, TotalWork: 12, Idle: 16*12 - 12, Efficiency: 12.0 / (16 * 12)}
	for _, sim := range edgeSims(cm) {
		if got := sim.run(tasks, p); got != want {
			t.Errorf("%s P=%d: %+v, want %+v", sim.name, p, got, want)
		}
	}
	for _, probed := range []struct {
		name string
		run  func(Probe) SimResult
	}{
		{"static", func(pr Probe) SimResult { return SimulateMakespanProbe(tasks, p, pr) }},
		{"dynamic", func(pr Probe) SimResult { return SimulateMakespanDynamicProbe(tasks, p, pr) }},
	} {
		var events []TaskEvent
		res := probed.run(probeFunc(func(ev TaskEvent) { events = append(events, ev) }))
		if res != want {
			t.Errorf("%s probed: %+v, want %+v", probed.name, res, want)
		}
		if len(events) != 2 {
			t.Fatalf("%s: %d events, want 2", probed.name, len(events))
		}
		for _, ev := range events {
			if ev.Task == 1 {
				if ev.Stall != 7 || ev.Cause != 0 {
					t.Errorf("%s: dependent task stall=%d cause=%d, want stall=7 cause=0 %s",
						probed.name, ev.Stall, ev.Cause, fmt.Sprintf("(event %+v)", ev))
				}
			}
		}
	}
}

// TestSimulateSingleTask sanity-pins the non-degenerate formulas on the
// smallest real input: one task on one of two processors.
func TestSimulateSingleTask(t *testing.T) {
	tasks := []Task{{ID: 0, Proc: 1, Work: 10}}
	want := SimResult{P: 2, Makespan: 10, TotalWork: 10, Idle: 10, Efficiency: 0.5}
	if got := SimulateMakespan(tasks, 2); got != want {
		t.Errorf("static: %+v, want %+v", got, want)
	}
	if got := SimulateMakespanDynamic(tasks, 2); got != want {
		t.Errorf("dynamic: %+v, want %+v", got, want)
	}
}
