package exec

import (
	"container/heap"
	"fmt"
)

// SimulateMakespanDynamic runs an event-driven list simulation in which
// each processor, when idle, starts its highest-priority *ready* assigned
// task instead of stalling on the static scan order. Priority is the
// bottom level (the longest work-weighted path from the task to a sink),
// the classical critical-path heuristic.
//
// Comparing this against SimulateMakespan separates two sources of idle
// time: stalls caused by the static intra-processor order (recovered
// here) and stalls intrinsic to the dependency graph and assignment
// (not recoverable by any intra-processor reordering).
func SimulateMakespanDynamic(tasks []Task, p int) SimResult {
	n := len(tasks)
	// Bottom levels, successors and indegrees.
	succs := make([][]int32, n)
	indeg := make([]int, n)
	var total int64
	for i := range tasks {
		if tasks[i].ID != i {
			panic(fmt.Sprintf("exec: task %d out of order", tasks[i].ID))
		}
		total += tasks[i].Work
		for _, pr := range tasks[i].Preds {
			succs[pr] = append(succs[pr], int32(i))
			indeg[i]++
		}
	}
	bottom := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		var out int64
		for _, s := range succs[i] {
			if bottom[s] > out {
				out = bottom[s]
			}
		}
		bottom[i] = out + tasks[i].Work
	}

	// Per-processor ready heaps ordered by descending bottom level.
	ready := make([]taskHeap, p)
	for i := range tasks {
		if indeg[i] == 0 {
			pr := tasks[i].Proc
			heap.Push(&ready[pr], heapItem{id: int32(i), prio: bottom[i]})
		}
	}
	procBusyUntil := make([]int64, p) // completion time of the running task
	running := make([]int32, p)       // task id or -1
	for i := range running {
		running[i] = -1
	}
	var eventQ eventHeap
	now := int64(0)
	remaining := n
	start := func(proc int) {
		if running[proc] != -1 || ready[proc].Len() == 0 {
			return
		}
		it := heap.Pop(&ready[proc]).(heapItem)
		running[proc] = it.id
		procBusyUntil[proc] = now + tasks[it.id].Work
		heap.Push(&eventQ, event{t: procBusyUntil[proc], proc: int32(proc)})
	}
	for proc := 0; proc < p; proc++ {
		start(proc)
	}
	var span int64
	for remaining > 0 {
		if eventQ.Len() == 0 {
			panic("exec: dynamic simulation deadlocked (dependency cycle?)")
		}
		ev := heap.Pop(&eventQ).(event)
		now = ev.t
		proc := int(ev.proc)
		done := running[proc]
		if done == -1 {
			continue // stale event
		}
		running[proc] = -1
		remaining--
		if now > span {
			span = now
		}
		for _, s := range succs[done] {
			indeg[s]--
			if indeg[s] == 0 {
				sp := tasks[s].Proc
				heap.Push(&ready[sp], heapItem{id: s, prio: bottom[s]})
				if running[sp] == -1 {
					start(int(sp))
				}
			}
		}
		start(proc)
	}
	res := SimResult{P: p, Makespan: span, TotalWork: total}
	res.Idle = int64(p)*span - total
	if span > 0 {
		res.Efficiency = float64(total) / (float64(p) * float64(span))
	} else {
		res.Efficiency = 1
	}
	return res
}

type heapItem struct {
	id   int32
	prio int64
}

type taskHeap []heapItem

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(a, b int) bool {
	if h[a].prio != h[b].prio {
		return h[a].prio > h[b].prio // larger bottom level first
	}
	return h[a].id < h[b].id
}
func (h taskHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type event struct {
	t    int64
	proc int32
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].t != h[b].t {
		return h[a].t < h[b].t
	}
	return h[a].proc < h[b].proc
}
func (h eventHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
