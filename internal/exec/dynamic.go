package exec

import (
	"container/heap"
	"fmt"
)

// SimulateMakespanDynamic runs an event-driven list simulation in which
// each processor, when idle, starts its highest-priority *ready* assigned
// task instead of stalling on the static scan order. Priority is the
// bottom level (the longest work-weighted path from the task to a sink),
// the classical critical-path heuristic.
//
// Comparing this against SimulateMakespan separates two sources of idle
// time: stalls caused by the static intra-processor order (recovered
// here) and stalls intrinsic to the dependency graph and assignment
// (not recoverable by any intra-processor reordering).
func SimulateMakespanDynamic(tasks []Task, p int) SimResult {
	return simulateDynamic(tasks, p, nil, nil)
}

// SimulateMakespanDynamicProbe is SimulateMakespanDynamic with a tracing
// probe attached: one TaskEvent per task, emitted at its start time (so
// events arrive ordered by start within each processor). A nil probe is
// allowed and reproduces SimulateMakespanDynamic bit for bit.
func SimulateMakespanDynamicProbe(tasks []Task, p int, probe Probe) SimResult {
	return simulateDynamic(tasks, p, nil, probe)
}

// simulateDynamic is the event-driven simulation shared by the
// compute-only and comm-aware entry points. comm, when non-nil, holds the
// communication share of each task's Work (already included in it) so
// events can split the duration; it never changes the simulated times.
func simulateDynamic(tasks []Task, p int, comm []int64, probe Probe) SimResult {
	mustProcs(p)
	n := len(tasks)
	// Bottom levels, successors and indegrees.
	succs := make([][]int32, n)
	indeg := make([]int, n)
	var total int64
	for i := range tasks {
		if tasks[i].ID != i {
			panic(fmt.Sprintf("exec: task %d out of order", tasks[i].ID))
		}
		total += tasks[i].Work
		for _, pr := range tasks[i].Preds {
			succs[pr] = append(succs[pr], int32(i))
			indeg[i]++
		}
	}
	bottom := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		var out int64
		for _, s := range succs[i] {
			if bottom[s] > out {
				out = bottom[s]
			}
		}
		bottom[i] = out + tasks[i].Work
	}

	// Per-processor ready heaps ordered by descending bottom level.
	ready := make([]taskHeap, p)
	for i := range tasks {
		if indeg[i] == 0 {
			pr := tasks[i].Proc
			heap.Push(&ready[pr], heapItem{id: int32(i), prio: bottom[i]})
		}
	}
	// Probe-only state: the finish time of each processor's last completed
	// task (for stall gaps) and the predecessor whose completion made each
	// task ready (the dependency a stalled start is attributed to).
	var lastFinish []int64
	var readyCause []int32
	if probe != nil {
		lastFinish = make([]int64, p)
		readyCause = make([]int32, n)
		for i := range readyCause {
			readyCause[i] = -1
		}
	}
	procBusyUntil := make([]int64, p) // completion time of the running task
	running := make([]int32, p)       // task id or -1
	for i := range running {
		running[i] = -1
	}
	var eventQ eventHeap
	now := int64(0)
	remaining := n
	start := func(proc int) {
		if running[proc] != -1 || ready[proc].Len() == 0 {
			return
		}
		it := heap.Pop(&ready[proc]).(heapItem)
		running[proc] = it.id
		procBusyUntil[proc] = now + tasks[it.id].Work
		if probe != nil {
			stall := now - lastFinish[proc]
			cause := int32(-1)
			if stall > 0 {
				// The processor idled past its last finish, so this task
				// started the moment it became ready: the readying
				// predecessor is the dependency it stalled on.
				cause = readyCause[it.id]
			}
			var c int64
			if comm != nil {
				c = comm[it.id]
			}
			probe.OnTask(TaskEvent{
				Task: it.id, Proc: int32(proc),
				Start: now, Finish: procBusyUntil[proc],
				Work: tasks[it.id].Work - c, Comm: c,
				Stall: stall, Cause: cause,
			})
		}
		heap.Push(&eventQ, event{t: procBusyUntil[proc], proc: int32(proc)})
	}
	for proc := 0; proc < p; proc++ {
		start(proc)
	}
	var span int64
	for remaining > 0 {
		if eventQ.Len() == 0 {
			panic("exec: dynamic simulation deadlocked (dependency cycle?)")
		}
		ev := heap.Pop(&eventQ).(event)
		now = ev.t
		proc := int(ev.proc)
		done := running[proc]
		if done == -1 {
			continue // stale event
		}
		running[proc] = -1
		remaining--
		if probe != nil {
			lastFinish[proc] = now
		}
		if now > span {
			span = now
		}
		for _, s := range succs[done] {
			indeg[s]--
			if indeg[s] == 0 {
				if probe != nil {
					readyCause[s] = done
				}
				sp := tasks[s].Proc
				heap.Push(&ready[sp], heapItem{id: s, prio: bottom[s]})
				if running[sp] == -1 {
					start(int(sp))
				}
			}
		}
		start(proc)
	}
	return finalize(p, span, total)
}

type heapItem struct {
	id   int32
	prio int64
}

type taskHeap []heapItem

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(a, b int) bool {
	if h[a].prio != h[b].prio {
		return h[a].prio > h[b].prio // larger bottom level first
	}
	return h[a].id < h[b].id
}
func (h taskHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type event struct {
	t    int64
	proc int32
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].t != h[b].t {
		return h[a].t < h[b].t
	}
	return h[a].proc < h[b].proc
}
func (h eventHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
