package exec

import "testing"

// slackDAG is a three-task graph with intra-processor slack: processor 1's
// first task in scan order depends on a long task on processor 0, while
// its second task is free. Static order stalls on the dependency; the
// dynamic ready queue runs the free task first.
func slackDAG() []Task {
	return []Task{
		{ID: 0, Proc: 0, Work: 10},
		{ID: 1, Proc: 1, Work: 1, Preds: []int32{0}},
		{ID: 2, Proc: 1, Work: 5},
	}
}

func TestCommModelCost(t *testing.T) {
	var zero CommModel
	if !zero.IsZero() {
		t.Error("zero CommModel: IsZero() = false")
	}
	if got := zero.Cost(1000, 50); got != 0 {
		t.Errorf("zero model Cost = %d, want 0", got)
	}
	cm := CommModel{Alpha: 1.5, Beta: 2}
	if cm.IsZero() {
		t.Error("nonzero CommModel: IsZero() = true")
	}
	if got := cm.Cost(10, 2); got != 19 {
		t.Errorf("Cost(10, 2) = %d, want 15+4 = 19", got)
	}
	// Monotone in every argument.
	if cm.Cost(11, 2) < cm.Cost(10, 2) || cm.Cost(10, 3) < cm.Cost(10, 2) {
		t.Error("Cost not monotone in vol/msgs")
	}
	if (CommModel{Alpha: 2, Beta: 2}).Cost(10, 2) < cm.Cost(10, 2) {
		t.Error("Cost not monotone in Alpha")
	}
}

func TestCommInflateTasks(t *testing.T) {
	tasks := slackDAG()
	vol := []int64{4, 0, 2}
	msgs := []int64{2, 0, 1}
	cm := CommModel{Alpha: 2, Beta: 10}
	inflated, comm := InflateTasks(tasks, cm, vol, msgs)
	wantWork := []int64{10 + 8 + 20, 1, 5 + 4 + 10}
	var wantComm int64 = 28 + 0 + 14
	for i := range inflated {
		if inflated[i].Work != wantWork[i] {
			t.Errorf("inflated[%d].Work = %d, want %d", i, inflated[i].Work, wantWork[i])
		}
	}
	if comm != wantComm {
		t.Errorf("comm total = %d, want %d", comm, wantComm)
	}
	// The input tasks are untouched.
	if tasks[0].Work != 10 || tasks[2].Work != 5 {
		t.Errorf("InflateTasks modified its input: %+v", tasks)
	}
	// nil vol/msgs mean no communication for that term.
	if _, c := InflateTasks(tasks, cm, nil, msgs); c != 30 {
		t.Errorf("nil vol: comm = %d, want 30", c)
	}
	if _, c := InflateTasks(tasks, cm, vol, nil); c != 12 {
		t.Errorf("nil msgs: comm = %d, want 12", c)
	}
}

// TestCommZeroIdentityDAG: a zero model reproduces the compute-only
// simulators bit for bit, including nonzero volumes being ignored.
func TestCommZeroIdentityDAG(t *testing.T) {
	tasks := slackDAG()
	vol := []int64{100, 200, 300}
	msgs := []int64{7, 8, 9}
	const p = 2
	if got, want := SimulateMakespanComm(tasks, p, CommModel{}, vol, msgs), SimulateMakespan(tasks, p); got != want {
		t.Errorf("static zero model: %+v != %+v", got, want)
	}
	if got, want := SimulateMakespanDynamicComm(tasks, p, CommModel{}, vol, msgs), SimulateMakespanDynamic(tasks, p); got != want {
		t.Errorf("dynamic zero model: %+v != %+v", got, want)
	}
}

// TestCommMonotonicStaticDAG: the static makespan is non-decreasing in
// both model parameters (task finish times are monotone in durations under
// static list scheduling).
func TestCommMonotonicStaticDAG(t *testing.T) {
	tasks := slackDAG()
	vol := []int64{4, 1, 2}
	msgs := []int64{2, 1, 1}
	const p = 2
	prev := int64(-1)
	for _, a := range []float64{0, 0.5, 1, 2, 5, 10} {
		span := SimulateMakespanComm(tasks, p, CommModel{Alpha: a, Beta: 3}, vol, msgs).Makespan
		if span < prev {
			t.Errorf("alpha=%g: static span %d < previous %d", a, span, prev)
		}
		prev = span
	}
	prev = -1
	for _, b := range []float64{0, 1, 5, 20} {
		span := SimulateMakespanComm(tasks, p, CommModel{Alpha: 1, Beta: b}, vol, msgs).Makespan
		if span < prev {
			t.Errorf("beta=%g: static span %d < previous %d", b, span, prev)
		}
		prev = span
	}
}

// TestCommDynamicSlackDAG: on a DAG with intra-processor slack the dynamic
// ready queue recovers the stall, under the compute-only model and under
// comm-inflated durations alike.
func TestCommDynamicSlackDAG(t *testing.T) {
	tasks := slackDAG()
	const p = 2
	st := SimulateMakespan(tasks, p)
	dy := SimulateMakespanDynamic(tasks, p)
	if st.Makespan != 16 || dy.Makespan != 11 {
		t.Fatalf("slack DAG spans: static %d (want 16), dynamic %d (want 11)",
			st.Makespan, dy.Makespan)
	}
	vol := []int64{4, 1, 2}
	msgs := []int64{2, 1, 1}
	for _, cm := range []CommModel{{}, {Alpha: 1}, {Alpha: 2, Beta: 10}, {Beta: 5}} {
		cst := SimulateMakespanComm(tasks, p, cm, vol, msgs)
		cdy := SimulateMakespanDynamicComm(tasks, p, cm, vol, msgs)
		if cdy.Makespan > cst.Makespan {
			t.Errorf("model %+v: dynamic span %d > static %d", cm, cdy.Makespan, cst.Makespan)
		}
		if cst.Makespan < st.Makespan || cdy.Makespan < dy.Makespan {
			t.Errorf("model %+v: comm-aware span below compute-only (static %d<%d or dynamic %d<%d)",
				cm, cst.Makespan, st.Makespan, cdy.Makespan, dy.Makespan)
		}
		if cst.Comm != cdy.Comm {
			t.Errorf("model %+v: static comm %d != dynamic comm %d", cm, cst.Comm, cdy.Comm)
		}
	}
}
