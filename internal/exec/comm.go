package exec

// CommModel is the linear communication-time model of the makespan
// simulators: fetching one non-local element costs Alpha work units
// (the bandwidth term, the paper's per-element data traffic) and every
// consolidated message costs Beta work units (the latency term, the
// paper's step-5 consolidation unit). Both are measured in the same units
// as Task.Work (one unit per multiply-add pair).
//
// The paper keeps data traffic (Section 4.1) and load balance (Section
// 4.2) as separate metrics and argues informally that "the savings in
// communication will more than offset the disadvantage of load imbalance"
// on machines where communication is expensive. CommModel makes that
// argument executable: each task's duration becomes its compute work plus
// the time to fetch its non-local operands, so the same list simulations
// that measure dependency delays produce a single unified time estimate in
// which traffic, latency, balance and dependency structure all interact.
// The zero value charges nothing, reproducing the compute-only simulators
// bit for bit.
//
// Gamma is the per-task fixed overhead the real engine measures and the
// paper's model lacks: every task pays Gamma work units regardless of its
// volume or message count (synchronization, wakeup and dispatch cost, the
// term that dominates sub-microsecond tasks at LAP30 scale). It is fitted
// from measured TaskEvent durations by internal/calib; a zero Gamma
// charges exactly nothing, keeping every simulator bit-identical to the
// two-parameter model.
type CommModel struct {
	Alpha float64 // work units per fetched non-local element
	Beta  float64 // work units per received message
	Gamma float64 // work units of fixed overhead per task
}

// IsZero reports whether the model charges nothing.
func (c CommModel) IsZero() bool { return c.Alpha == 0 && c.Beta == 0 && c.Gamma == 0 }

// Cost returns the non-compute time of a task that fetches vol elements
// in msgs messages: the comm terms plus the per-task fixed overhead. The
// value is truncated to integer work units (the convention of the Ext-L
// study), so a zero model adds exactly nothing and costs are monotone in
// Alpha, Beta, Gamma, vol and msgs.
func (c CommModel) Cost(vol, msgs int64) int64 {
	return int64(c.Alpha*float64(vol)) + int64(c.Beta*float64(msgs)) + int64(c.Gamma)
}

// InflateTasks returns a copy of tasks whose durations include the comm
// cost of their fetch volumes and message counts, plus the total comm time
// added. vol and msgs may be nil (no communication charged for that term);
// when non-nil they must align with tasks by ID.
func InflateTasks(tasks []Task, cm CommModel, vol, msgs []int64) ([]Task, int64) {
	out, _, comm := inflateTasks(tasks, cm, vol, msgs)
	return out, comm
}

// inflateTasks is InflateTasks plus the per-task comm vector, which the
// probe-aware simulators use to split each event's duration into compute
// and communication.
func inflateTasks(tasks []Task, cm CommModel, vol, msgs []int64) ([]Task, []int64, int64) {
	out := make([]Task, len(tasks))
	per := make([]int64, len(tasks))
	var comm int64
	for i, t := range tasks {
		out[i] = t
		var v, m int64
		if vol != nil {
			v = vol[i]
		}
		if msgs != nil {
			m = msgs[i]
		}
		c := cm.Cost(v, m)
		out[i].Work = t.Work + c
		per[i] = c
		comm += c
	}
	return out, per, comm
}

// SimulateMakespanComm runs the static-order list simulation with
// communication-aware task durations: work + cm.Cost(vol[i], msgs[i]).
// With a zero model the result is identical to SimulateMakespan(tasks, p).
// The result's TotalWork (and hence Efficiency) counts comm time as busy
// time; Comm reports the communication share.
func SimulateMakespanComm(tasks []Task, p int, cm CommModel, vol, msgs []int64) SimResult {
	return SimulateMakespanCommProbe(tasks, p, cm, vol, msgs, nil)
}

// SimulateMakespanCommProbe is SimulateMakespanComm with a tracing probe
// attached; each event's duration is split into its compute and comm
// shares. A nil probe reproduces SimulateMakespanComm bit for bit.
func SimulateMakespanCommProbe(tasks []Task, p int, cm CommModel, vol, msgs []int64, probe Probe) SimResult {
	inflated, per, comm := inflateTasks(tasks, cm, vol, msgs)
	res := simulateStatic(inflated, p, per, probe)
	res.Comm = comm
	return res
}

// SimulateMakespanDynamicComm is SimulateMakespanComm with the dynamic
// critical-path-priority ready queue of SimulateMakespanDynamic.
func SimulateMakespanDynamicComm(tasks []Task, p int, cm CommModel, vol, msgs []int64) SimResult {
	return SimulateMakespanDynamicCommProbe(tasks, p, cm, vol, msgs, nil)
}

// SimulateMakespanDynamicCommProbe is SimulateMakespanDynamicComm with a
// tracing probe attached; each event's duration is split into its compute
// and comm shares. A nil probe reproduces SimulateMakespanDynamicComm bit
// for bit.
func SimulateMakespanDynamicCommProbe(tasks []Task, p int, cm CommModel, vol, msgs []int64, probe Probe) SimResult {
	inflated, per, comm := inflateTasks(tasks, cm, vol, msgs)
	res := simulateDynamic(inflated, p, per, probe)
	res.Comm = comm
	return res
}
