package exec

// TaskEvent describes one task execution inside a makespan simulation:
// where it ran, when, how its duration splits into compute and
// communication, and what bound its start time. The makespan simulators
// emit one event per task to an attached Probe; with a nil probe no event
// is built and the simulation is bit-identical to the un-instrumented
// path (regression-tested), so tracing is strictly opt-in.
type TaskEvent struct {
	Task int32 // task ID
	Proc int32 // executing processor
	// Start and Finish delimit the task's execution interval;
	// Finish-Start == Work+Comm always.
	Start  int64
	Finish int64
	// Work is the compute portion of the duration and Comm the
	// communication portion (nonzero only under a comm-aware simulator,
	// which charges each task its fetch volume and message cost up front).
	Work int64
	Comm int64
	// Stall is the idle gap on Proc immediately before Start: the time the
	// processor spent waiting between finishing its previous task and
	// starting this one. Zero when the task started the moment the
	// processor freed up.
	Stall int64
	// Cause is the predecessor task whose completion bound Start, i.e. the
	// dependency this task (and its processor) stalled on; -1 when the
	// start was bound by the processor itself (Stall == 0). Stall > 0
	// implies Cause >= 0 in both the static and the dynamic simulator,
	// which is what lets the critical-path extraction walk a
	// time-contiguous chain back to t = 0.
	Cause int32
}

// Probe receives per-task events from a makespan simulation. Implementors
// must not retain the event past the call (it may be a reused value) —
// copy it, as the obs.Tracer does. Probes observe; they cannot change the
// simulation, whose results are identical with and without one attached.
type Probe interface {
	OnTask(ev TaskEvent)
}

// finalize derives the summary fields of a SimResult from the simulated
// span and the summed task work, pinning the degenerate edge cases in one
// place: a zero-span simulation (empty task list, or every task carrying
// zero work) reports Idle = 0 and Efficiency = 1, so Idle can never go
// negative and the two fields can never disagree about whether the run
// was degenerate. For span > 0 the fields are exactly the documented
// formulas (Idle = P*Makespan - TotalWork, Efficiency = TotalWork /
// (P*Makespan)); work conservation guarantees TotalWork <= P*Makespan, so
// Idle is non-negative there too.
func finalize(p int, span, total int64) SimResult {
	mustProcs(p)
	res := SimResult{P: p, Makespan: span, TotalWork: total}
	if span > 0 {
		res.Idle = int64(p)*span - total
		res.Efficiency = float64(total) / (float64(p) * float64(span))
	} else {
		res.Efficiency = 1
	}
	return res
}

// Efficiency is the exported form of finalize's efficiency rule: TotalWork
// / (P * span) with the zero-span case pinned to 1, never NaN. Derived
// tables (critical-path efficiency bounds in particular) must route
// through this instead of dividing directly, or a degenerate zero-work run
// poisons rendered tables and the JSON ledger (encoding/json rejects NaN).
func Efficiency(p int, span, total int64) float64 {
	return finalize(p, span, total).Efficiency
}

// IdlePct is the idle percentage of the run, 100 * Idle / (P * Makespan),
// with the zero-span case pinned to 0 by the same rule finalize applies
// (a degenerate run has no idle time, not an undefined one).
func (r SimResult) IdlePct() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return 100 * float64(r.Idle) / (float64(r.P) * float64(r.Makespan))
}
