// Package exec studies the effect the paper's metrics deliberately leave
// out: dependency delays. Section 4 argues that "if the number of
// processors is relatively small compared to the number of schedulable
// units, then the allocation scheme described here provides enough
// parallelism to keep the idle time to a minimum"; this package tests that
// claim two ways.
//
// Makespan simulation: every task (unit block, or column for wrap mapping)
// runs on its assigned processor for a duration equal to its work;
// processors execute their tasks in the static scan order and stall until
// a task's predecessors complete. The resulting makespan, idle fraction
// and delay-aware efficiency refine the paper's A-based efficiency bound.
//
// Parallel execution: a real multi-goroutine factorization executes the
// unit blocks concurrently, one worker per simulated processor,
// synchronizing only on the block dependency graph. Matching the
// sequential factor numerically proves the dependency graph of
// core.Partition is sufficient for correct parallel execution.
package exec

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// Task is a schedulable piece of work for the makespan simulation.
type Task struct {
	ID    int
	Proc  int32
	Work  int64
	Preds []int32
}

// SimResult summarizes a makespan simulation.
type SimResult struct {
	P         int
	Makespan  int64
	TotalWork int64
	// Idle is the summed processor idle time, P*Makespan - TotalWork.
	Idle int64
	// Efficiency is TotalWork / (P * Makespan).
	Efficiency float64
	// Comm is the summed communication time charged to tasks; zero for the
	// compute-only simulators, and included in TotalWork (as busy time)
	// for the comm-aware ones.
	Comm int64
}

// SimulateMakespan runs the static-order list simulation. Tasks must be
// topologically ordered by ID (predecessor IDs smaller than successor
// IDs); both the unit-block and the column task graphs satisfy this by
// construction.
func SimulateMakespan(tasks []Task, p int) SimResult {
	return simulateStatic(tasks, p, nil, nil)
}

// SimulateMakespanProbe is SimulateMakespan with a tracing probe attached:
// one TaskEvent per task, emitted in scan (ID) order. A nil probe is
// allowed and reproduces SimulateMakespan bit for bit.
func SimulateMakespanProbe(tasks []Task, p int, probe Probe) SimResult {
	return simulateStatic(tasks, p, nil, probe)
}

// simulateStatic is the static-order list simulation shared by the
// compute-only and comm-aware entry points. comm, when non-nil, holds the
// communication share of each task's Work (already included in it) so
// events can split the duration; it never changes the simulated times.
func simulateStatic(tasks []Task, p int, comm []int64, probe Probe) SimResult {
	mustProcs(p)
	procFree := make([]int64, p)
	finish := make([]int64, len(tasks))
	var total int64
	for i := range tasks {
		t := &tasks[i]
		if t.ID != i {
			panic(fmt.Sprintf("exec: task %d out of order", t.ID))
		}
		free := procFree[t.Proc]
		start := free
		cause := int32(-1)
		for _, pr := range t.Preds {
			if int(pr) >= i {
				panic(fmt.Sprintf("exec: task %d depends on later task %d", i, pr))
			}
			if finish[pr] > start {
				start = finish[pr]
				cause = pr
			}
		}
		finish[i] = start + t.Work
		procFree[t.Proc] = finish[i]
		total += t.Work
		if probe != nil {
			var c int64
			if comm != nil {
				c = comm[i]
			}
			probe.OnTask(TaskEvent{
				Task: int32(i), Proc: t.Proc,
				Start: start, Finish: finish[i],
				Work: t.Work - c, Comm: c,
				Stall: start - free, Cause: cause,
			})
		}
	}
	var span int64
	for _, f := range procFree {
		if f > span {
			span = f
		}
	}
	return finalize(p, span, total)
}

// BlockTasks converts a partitioned, scheduled factorization into makespan
// tasks (one per unit block).
func BlockTasks(part *core.Partition, s *sched.Schedule) []Task {
	tasks := make([]Task, len(part.Units))
	for i := range part.Units {
		u := &part.Units[i]
		tasks[i] = Task{ID: i, Proc: s.UnitProc[i], Work: u.Work, Preds: u.Preds}
	}
	return tasks
}

// ColumnTasks builds the task graph of the wrap-mapped column algorithm:
// one task per column, depending on every column of its row structure.
func ColumnTasks(f *symbolic.Factor, ops *model.Ops, elemWork []int64, p int) []Task {
	mustProcs(p)
	owner := make([]int32, f.N)
	for j := range owner {
		owner[j] = int32(j % p)
	}
	return ColumnTasksMapped(f, ops, elemWork, owner)
}

// ColumnTasksMapped is ColumnTasks for an arbitrary column-to-processor
// assignment (owner[j] is the processor of column j), the task graph of
// any column-granular mapping strategy.
func ColumnTasksMapped(f *symbolic.Factor, ops *model.Ops, elemWork []int64, owner []int32) []Task {
	colWork := model.ColumnWork(f, elemWork)
	tasks := make([]Task, f.N)
	for j := 0; j < f.N; j++ {
		tasks[j] = Task{
			ID:    j,
			Proc:  owner[j],
			Work:  colWork[j],
			Preds: ops.RowCols(j),
		}
	}
	return tasks
}

// CriticalPath returns the longest work-weighted path through the task
// graph, the P-independent lower bound on the makespan.
func CriticalPath(tasks []Task) int64 {
	longest := make([]int64, len(tasks))
	var best int64
	for i := range tasks {
		var in int64
		for _, pr := range tasks[i].Preds {
			if longest[pr] > in {
				in = longest[pr]
			}
		}
		longest[i] = in + tasks[i].Work
		if longest[i] > best {
			best = longest[i]
		}
	}
	return best
}

// ParallelFactorize executes the numeric factorization concurrently: one
// worker goroutine per processor, each processing its assigned unit blocks
// in scan order, blocking until a block's predecessors (augmented with the
// diagonal-scale dependencies) are complete. The element kernel computes
//
//	L[i,j] = (A[i,j] - sum_{k<j} L[i,k]*L[j,k]) / L[j,j]
//
// by intersecting the row structures of i and j, so a unit only reads
// elements owned by its predecessors or earlier elements of itself.
func ParallelFactorize(m *sparse.Matrix, part *core.Partition, s *sched.Schedule) (*NumericFactor, error) {
	return parallelFactorize(m, part, s, false)
}

// ParallelFactorizeLDL executes the square-root-free LDL^T factorization
// over the same partition, schedule and dependency graph. The paper's
// Section 5 claims the methodology adapts "very easily ... to other
// factoring methods"; this is that adaptation — only the element kernel
// changes. The returned values follow numeric.LDL's convention (diagonal
// positions hold D, off-diagonals hold unit-L entries).
func ParallelFactorizeLDL(m *sparse.Matrix, part *core.Partition, s *sched.Schedule) (*NumericFactor, error) {
	return parallelFactorize(m, part, s, true)
}

func parallelFactorize(m *sparse.Matrix, part *core.Partition, s *sched.Schedule, ldl bool) (*NumericFactor, error) {
	if m.Val == nil {
		return nil, fmt.Errorf("exec: matrix has no values")
	}
	f := part.F
	if m.N != f.N {
		return nil, fmt.Errorf("exec: dimension mismatch")
	}
	if err := checkProcCount(s.P); err != nil {
		return nil, err
	}
	for ui, pr := range s.UnitProc {
		if err := checkProc(pr, s.P); err != nil {
			return nil, fmt.Errorf("exec: unit %d: %w", ui, err)
		}
	}
	ops := model.NewOps(f)
	// Execution dependencies: the update-pair preds plus the unit of the
	// diagonal element of every column a unit touches (for the scale).
	execPreds := make([][]int32, len(part.Units))
	for ui := range part.Units {
		u := &part.Units[ui]
		// Deduplicate in insertion order (never by map iteration — the
		// worker synchronization below must see one deterministic graph),
		// then sort; TestParallelFactorizeDeterminism pins the bit-stability
		// of the resulting factors across runs.
		seen := make(map[int32]bool, len(u.Preds))
		ep := make([]int32, 0, len(u.Preds))
		add := func(pr int32) {
			if !seen[pr] {
				seen[pr] = true
				ep = append(ep, pr)
			}
		}
		for _, pr := range u.Preds {
			add(pr)
		}
		for j := u.ColLo; j <= u.ColHi && j < f.N; j++ {
			if du := part.ElemUnit[f.ColPtr[j]]; int(du) != ui {
				add(du)
			}
		}
		sort.Slice(ep, func(a, b int) bool { return ep[a] < ep[b] })
		execPreds[ui] = ep
	}
	// Per-processor unit lists in scan (ID) order.
	perProc := make([][]int, s.P)
	for ui, pr := range s.UnitProc {
		perProc[pr] = append(perProc[pr], ui)
	}
	// Unit -> its elements (positions), grouped by column in ascending
	// column then row order, which is the order ElemUnit was built in.
	unitElems := make([][]int32, len(part.Units))
	for q := range part.ElemUnit {
		u := part.ElemUnit[q]
		unitElems[u] = append(unitElems[u], int32(q))
	}
	val := numeric.ScatterA(m, f)
	colOf := numeric.ColIndex(f)
	// position lookup: for (r, c) find the value index.
	posOf := func(r, c int) int {
		col := f.Col(c)
		lo, hi := 0, len(col)
		for lo < hi {
			mid := (lo + hi) / 2
			if col[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return f.ColPtr[c] + lo
	}

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	done := make([]bool, len(part.Units))
	var firstErr error

	computeUnit := func(ui int) error {
		for _, q := range unitElems[ui] {
			i := f.RowInd[q]
			j := int(colOf[q])
			sum := val[q]
			// Intersect row structures of i and j for columns k < j.
			ri, rj := ops.RowCols(i), ops.RowCols(j)
			a, b := 0, 0
			for a < len(ri) && b < len(rj) {
				switch {
				case ri[a] < rj[b]:
					a++
				case ri[a] > rj[b]:
					b++
				default:
					k := int(ri[a])
					prod := val[posOf(i, k)] * val[posOf(j, k)]
					if ldl {
						prod *= val[f.ColPtr[k]] // D[k]
					}
					sum -= prod
					a++
					b++
				}
			}
			if i == j {
				if ldl {
					if sum == 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
						return fmt.Errorf("exec: unusable pivot %g at column %d (want finite nonzero)", sum, j)
					}
					val[q] = sum
				} else {
					if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
						return fmt.Errorf("exec: unusable pivot %g at column %d (want finite positive)", sum, j)
					}
					val[q] = math.Sqrt(sum)
				}
			} else {
				val[q] = sum / val[f.ColPtr[j]]
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	for p := 0; p < s.P; p++ {
		wg.Add(1)
		//repro:allow nondeterminism -- one worker per processor over the pred-synchronized unit graph; factors are pinned bitwise against numeric.Factorize by TestParallelFactorizeMatchesSequential and TestParallelFactorizeDeterminism under -race
		go func(units []int) {
			defer wg.Done()
			for _, ui := range units {
				mu.Lock()
				for !allDone(done, execPreds[ui]) && firstErr == nil {
					cond.Wait()
				}
				if firstErr != nil {
					mu.Unlock()
					return
				}
				mu.Unlock()
				err := computeUnit(ui)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				done[ui] = true
				cond.Broadcast()
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(perProc[p])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &NumericFactor{F: f, Val: val}, nil
}

func allDone(done []bool, preds []int32) bool {
	for _, p := range preds {
		if !done[p] {
			return false
		}
	}
	return true
}

// NumericFactor is the numeric output of the parallel execution; Val
// aligns with the row indices of the symbolic structure F.
type NumericFactor struct {
	F   *symbolic.Factor
	Val []float64
}
