package exec

import (
	"fmt"
	"math"
	"time"

	"repro/internal/numeric"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// MeasureOptions configures MeasureFactorize.
type MeasureOptions struct {
	// LDL selects the square-root-free LDLᵀ kernel (and
	// numeric.FactorizeLDL as the serial reference) instead of Cholesky.
	LDL bool
	// Repeats is the repeat-and-min count applied to both the serial and
	// the parallel timing; <= 0 selects 3.
	Repeats int
}

// Measurement is the outcome of one wall-clock comparison between the
// serial factorization and the parallel 2D engine on the same matrix and
// task graph. Times are minima over Repeats runs (repeat-and-min filters
// scheduler noise); every parallel run is verified bit-for-bit against the
// serial factor before its time is accepted.
type Measurement struct {
	P          int
	Repeats    int
	SerialNs   int64   // fastest serial run, nanoseconds
	ParallelNs int64   // fastest parallel run, nanoseconds
	Speedup    float64 // SerialNs / ParallelNs
	// Events hold the per-task real executions of the fastest parallel
	// run, on a nanosecond timeline starting when the workers launched.
	// Unlike simulator events, a real event's Stall is the measured gap
	// since the worker's previous finish and may be positive with Cause ==
	// -1 (startup or scheduling delay rather than a blocking predecessor),
	// so they aggregate through obs.RealProfile, not obs.BuildProfile; the
	// Chrome-trace and Gantt exporters accept them directly.
	Events []TaskEvent
	// Factor is the parallel result (bit-identical to the serial factor).
	Factor *NumericFactor
}

// MeasureFactorize times the serial reference factorization against the
// parallel 2D engine on the same inputs, verifying bit-identity on every
// parallel run. This is what makes the makespan simulators falsifiable:
// the predicted schedule and the measured execution share one task graph.
func MeasureFactorize(m *sparse.Matrix, f *symbolic.Factor, p int, tasks []Task, elemTask []int32, opts MeasureOptions) (*Measurement, error) {
	reps := opts.Repeats
	if reps <= 0 {
		reps = 3
	}
	var serialVal []float64
	serialNs := int64(math.MaxInt64)
	for r := 0; r < reps; r++ {
		//repro:allow nondeterminism -- measurement harness: wall-clock feeds only the reported SerialNs timing, never factor values; the parallel/serial bit-comparison below is the determinism check itself
		start := time.Now()
		var val []float64
		if opts.LDL {
			l, err := numeric.FactorizeLDL(m, f)
			if err != nil {
				return nil, err
			}
			val = l.Val
		} else {
			c, err := numeric.Factorize(m, f)
			if err != nil {
				return nil, err
			}
			val = c.Val
		}
		if d := time.Since(start).Nanoseconds(); d < serialNs {
			serialNs = d
		}
		serialVal = val
	}
	parallelNs := int64(math.MaxInt64)
	var best *NumericFactor
	var bestEvents []TaskEvent
	for r := 0; r < reps; r++ {
		//repro:allow nondeterminism -- measurement harness: wall-clock feeds only the reported ParallelNs timing; every rep's values are compared bit-for-bit against the serial factor right below
		start := time.Now()
		nf, events, err := runFactorize2D(m, f, p, tasks, elemTask, opts.LDL, true)
		d := time.Since(start).Nanoseconds()
		if err != nil {
			return nil, err
		}
		for q := range serialVal {
			if math.Float64bits(nf.Val[q]) != math.Float64bits(serialVal[q]) {
				return nil, fmt.Errorf("exec: parallel run %d diverged from serial at position %d: %g vs %g",
					r, q, nf.Val[q], serialVal[q])
			}
		}
		if d < parallelNs {
			parallelNs, best, bestEvents = d, nf, events
		}
	}
	// Clock granularity can report 0 ns on degenerate inputs; pin to 1 so
	// the speedup stays finite.
	if serialNs < 1 {
		serialNs = 1
	}
	if parallelNs < 1 {
		parallelNs = 1
	}
	return &Measurement{
		P: p, Repeats: reps,
		SerialNs: serialNs, ParallelNs: parallelNs,
		Speedup: float64(serialNs) / float64(parallelNs),
		Events:  bestEvents, Factor: best,
	}, nil
}
