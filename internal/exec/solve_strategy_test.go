// External test package: strategy imports exec, so the cross-registry
// solve sweep cannot live inside package exec.
package exec_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/strategy"
	"repro/internal/symbolic"
)

// TestParallelSolveEveryStrategy runs the parallel triangular solves under
// every registered 1D mapping strategy at P in {1, 4, 16, 64}, on LAP30
// and on a small matrix where P >= n, checking each solution against the
// serial solve (summation orders differ across owners, so the comparison
// is tolerance-based, scaled by the solution magnitude). Under -race this
// is the solver's data-race exercise across the whole registry.
func TestParallelSolveEveryStrategy(t *testing.T) {
	type fixture struct {
		name string
		m    *sparse.Matrix
	}
	for _, fx := range []fixture{
		{"LAP30", gen.Lap30()},
		{"grid9-6x6", gen.Grid9(6, 6)}, // n = 36 < 64: exercises P >= n
	} {
		pm, err := fx.m.Permute(order.MMD(fx.m))
		if err != nil {
			t.Fatal(err)
		}
		f := symbolic.Analyze(pm)
		ops := model.NewOps(f)
		ew := model.ElementWork(ops)
		sys := strategy.NewSys(f, ops, ew)
		chol, err := numeric.Factorize(pm, f)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, pm.N)
		for i := range b {
			b[i] = float64((i*7)%5) - 2
		}
		want := chol.Solve(b)
		var scale float64
		for i := range want {
			if a := math.Abs(want[i]); a > scale {
				scale = a
			}
		}
		opts := strategy.Options{Part: core.Options{Grain: 25, MinClusterWidth: 4}}
		for _, name := range strategy.Names() {
			for _, p := range []int{1, 4, 16, 64} {
				sc, err := strategy.Map(name, sys, p, opts)
				if err != nil {
					// Some strategies legitimately refuse degenerate shapes
					// (e.g. more processors than clusters); refusal is not a
					// solver failure.
					t.Logf("%s %s P=%d: mapper refused: %v", fx.name, name, p, err)
					continue
				}
				got, err := exec.ParallelSolve(chol, sc, b)
				if err != nil {
					t.Fatalf("%s %s P=%d: %v", fx.name, name, p, err)
				}
				for i := range want {
					if math.Abs(got[i]-want[i]) > 1e-7*(1+scale) {
						t.Fatalf("%s %s P=%d: x[%d] = %g, want %g",
							fx.name, name, p, i, got[i], want[i])
					}
				}
			}
		}
	}
}
