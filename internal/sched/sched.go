// Package sched assigns the partitioned work of a sparse Cholesky
// factorization to processors.
//
// Two schemes are implemented, matching the paper's comparison:
//
//   - BlockMap: the allocation heuristic of Section 3.4 over the unit
//     blocks of core.Partition. Independent columns are wrap-mapped first;
//     dependent single columns go to a predecessor's processor; triangle
//     units prefer an unused predecessor processor (the set Pa) falling
//     back to a global round-robin marker over Pg; the units of each
//     rectangle below a triangle cycle through the triangle's processor
//     set Pt ordered by increasing assigned work, re-sorted after every
//     rectangle.
//
//   - WrapMap: the classical wrap (cyclic) column mapping — column j of
//     the permuted matrix belongs to processor j mod P.
//
// Both produce a Schedule exposing the owner of every factor element, the
// granularity at which the traffic simulator counts non-local accesses.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/symbolic"
)

// Schedule is a complete assignment of factorization work to P processors.
type Schedule struct {
	P int
	// ElemProc maps every factor nonzero position to its owning processor.
	ElemProc []int32
	// UnitProc maps unit IDs to processors (block scheme only; nil for
	// wrap mapping).
	UnitProc []int32
	// Work is the total computational work assigned to each processor
	// under the paper's work model.
	Work []int64
}

// TotalWork returns the summed work of all processors.
func (s *Schedule) TotalWork() int64 {
	var t int64
	for _, w := range s.Work {
		t += w
	}
	return t
}

// MaxWork returns the largest per-processor work.
func (s *Schedule) MaxWork() int64 {
	var m int64
	for _, w := range s.Work {
		if w > m {
			m = w
		}
	}
	return m
}

// Imbalance returns the paper's load imbalance factor
// A = (Wmax - Wavg) * N / Wtot = Wmax*N/Wtot - 1, which is 0 for a
// perfectly balanced assignment.
func (s *Schedule) Imbalance() float64 {
	tot := s.TotalWork()
	if tot == 0 {
		return 0
	}
	return float64(s.MaxWork())*float64(s.P)/float64(tot) - 1
}

// Efficiency returns 1/(1+A), the paper's e = Wavg/Wmax: parallel
// efficiency in the absence of dependency delays.
func (s *Schedule) Efficiency() float64 {
	mw := s.MaxWork()
	if mw == 0 {
		return 1
	}
	avg := float64(s.TotalWork()) / float64(s.P)
	return avg / float64(mw)
}

// WrapMap assigns column j of the factor to processor j mod P and derives
// element ownership and per-processor work.
func WrapMap(f *symbolic.Factor, elemWork []int64, p int) *Schedule {
	if p < 1 {
		panic(fmt.Sprintf("sched: invalid processor count %d", p))
	}
	s := &Schedule{
		P:        p,
		ElemProc: make([]int32, f.NNZ()),
		Work:     make([]int64, p),
	}
	for j := 0; j < f.N; j++ {
		proc := int32(j % p)
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			s.ElemProc[q] = proc
			s.Work[proc] += elemWork[q]
		}
	}
	return s
}

// BlockMap runs the Section 3.4 allocator on a partition.
func BlockMap(part *core.Partition, p int) *Schedule {
	if p < 1 {
		panic(fmt.Sprintf("sched: invalid processor count %d", p))
	}
	units := part.Units
	unitProc := make([]int32, len(units))
	for i := range unitProc {
		unitProc[i] = -1
	}
	work := make([]int64, p)
	assign := func(u int, proc int32) {
		unitProc[u] = proc
		work[proc] += units[u].Work
	}

	// Step 1: independent columns are allocated in wrap-around fashion.
	next := 0
	for ci := range part.Clusters {
		cl := &part.Clusters[ci]
		if cl.Single && len(units[cl.ColUnit].Preds) == 0 {
			assign(cl.ColUnit, int32(next%p))
			next++
		}
	}

	// Step 2: scan the remaining clusters left to right.
	marker := 0 // the Pg round-robin marker
	inPa := make([]bool, p)
	var paList []int32
	for ci := range part.Clusters {
		cl := &part.Clusters[ci]
		if cl.Single {
			u := cl.ColUnit
			if unitProc[u] >= 0 {
				continue // independent, already placed
			}
			// "The entire column is allocated to a processor, which is
			// arbitrarily picked from the set of processors which worked
			// on the column's predecessors." Deterministically: the first
			// assigned predecessor.
			proc := int32(-1)
			for _, pr := range units[u].Preds {
				if pp := unitProc[pr]; pp >= 0 {
					proc = pp
					break
				}
			}
			if proc < 0 {
				// No assigned predecessor (only possible when the engine
				// saw a dependency whose source is later in scan order,
				// which construction prevents; keep a safe fallback).
				proc = int32(marker)
				marker = (marker + 1) % p
			}
			assign(u, proc)
			continue
		}

		// Triangle partition units, in allocation order. Pa is the set of
		// processors already used inside this triangle.
		for _, pr := range paList {
			inPa[pr] = false
		}
		paList = paList[:0]
		for _, u := range cl.TriAlloc {
			proc := int32(-1)
			for _, pr := range units[u].Preds {
				pp := unitProc[pr]
				if pp >= 0 && !inPa[pp] {
					proc = pp
					break
				}
			}
			if proc < 0 {
				// All predecessor processors already in Pa: take the
				// currently available processor and advance the marker.
				proc = int32(marker)
				marker = (marker + 1) % p
			}
			assign(u, proc)
			if !inPa[proc] {
				inPa[proc] = true
				paList = append(paList, proc)
			}
		}

		// Rectangles below the triangle: restrict to Pt, the processors of
		// the triangle units, cycling in order of increasing work and
		// re-sorting after each rectangle.
		pt := append([]int32(nil), paList...)
		for ri := range cl.Rects {
			r := &cl.Rects[ri]
			sort.Slice(pt, func(a, b int) bool {
				if work[pt[a]] != work[pt[b]] {
					return work[pt[a]] < work[pt[b]]
				}
				return pt[a] < pt[b]
			})
			rr := 0
			for _, row := range r.Units {
				for _, u := range row {
					assign(u, pt[rr%len(pt)])
					rr++
				}
			}
		}
	}

	// Derive element ownership.
	s := &Schedule{
		P:        p,
		ElemProc: make([]int32, part.F.NNZ()),
		UnitProc: unitProc,
		Work:     work,
	}
	for q := range s.ElemProc {
		s.ElemProc[q] = unitProc[part.ElemUnit[q]]
	}
	return s
}

// ColumnWorkOf is a convenience wrapper computing element work and the
// derived schedule-independent totals for a factor.
func ColumnWorkOf(f *symbolic.Factor) (elemWork []int64, total int64) {
	ops := model.NewOps(f)
	elemWork = model.ElementWork(ops)
	return elemWork, model.TotalWork(elemWork)
}

// AccumulateElemWork sums an arbitrary per-element cost vector (e.g. the
// triangular-solve work of model.SolveElementWork) over the schedule's
// element ownership, returning per-processor totals.
func (s *Schedule) AccumulateElemWork(elemWork []int64) []int64 {
	out := make([]int64, s.P)
	for q, pr := range s.ElemProc {
		out[pr] += elemWork[q]
	}
	return out
}

// ImbalanceOf computes the paper's load imbalance factor A for an
// arbitrary per-processor work vector.
func ImbalanceOf(work []int64) float64 {
	var tot, max int64
	for _, w := range work {
		tot += w
		if w > max {
			max = w
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(max)*float64(len(work))/float64(tot) - 1
}
