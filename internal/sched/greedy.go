package sched

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// BlockMapGreedy is the "more sophisticated" allocator the paper's
// Section 5 anticipates ("the load balance can be improved by using more
// sophisticated strategies to allocate blocks to processors"). It keeps
// the structure of the Section 3.4 heuristic — locality first — but every
// fallback decision is work-aware instead of round-robin:
//
//   - independent columns go to the least-loaded processor;
//   - dependent columns pick the least-loaded among their predecessors'
//     processors (instead of an arbitrary one);
//   - triangle units preferring a fresh predecessor processor pick the
//     least-loaded such processor; the global fallback is the least-loaded
//     processor overall;
//   - rectangles cycle through Pt by increasing work as before.
//
// The ablation in EXPERIMENTS.md quantifies how much imbalance this
// removes and what it costs in communication.
func BlockMapGreedy(part *core.Partition, p int) *Schedule {
	if p < 1 {
		panic(fmt.Sprintf("sched: invalid processor count %d", p))
	}
	units := part.Units
	unitProc := make([]int32, len(units))
	for i := range unitProc {
		unitProc[i] = -1
	}
	work := make([]int64, p)
	assign := func(u int, proc int32) {
		unitProc[u] = proc
		work[proc] += units[u].Work
	}
	leastLoaded := func() int32 {
		best := int32(0)
		for q := 1; q < p; q++ {
			if work[q] < work[best] {
				best = int32(q)
			}
		}
		return best
	}

	// Independent columns: least-loaded processor (work-aware wrap).
	for ci := range part.Clusters {
		cl := &part.Clusters[ci]
		if cl.Single && len(units[cl.ColUnit].Preds) == 0 {
			assign(cl.ColUnit, leastLoaded())
		}
	}

	inPa := make([]bool, p)
	var paList []int32
	for ci := range part.Clusters {
		cl := &part.Clusters[ci]
		if cl.Single {
			u := cl.ColUnit
			if unitProc[u] >= 0 {
				continue
			}
			proc := int32(-1)
			for _, pr := range units[u].Preds {
				pp := unitProc[pr]
				if pp >= 0 && (proc < 0 || work[pp] < work[proc]) {
					proc = pp
				}
			}
			if proc < 0 {
				proc = leastLoaded()
			}
			assign(u, proc)
			continue
		}
		for _, pr := range paList {
			inPa[pr] = false
		}
		paList = paList[:0]
		for _, u := range cl.TriAlloc {
			proc := int32(-1)
			for _, pr := range units[u].Preds {
				pp := unitProc[pr]
				if pp >= 0 && !inPa[pp] && (proc < 0 || work[pp] < work[proc]) {
					proc = pp
				}
			}
			if proc < 0 {
				proc = leastLoaded()
			}
			assign(u, proc)
			if !inPa[proc] {
				inPa[proc] = true
				paList = append(paList, proc)
			}
		}
		pt := append([]int32(nil), paList...)
		for ri := range cl.Rects {
			r := &cl.Rects[ri]
			sort.Slice(pt, func(a, b int) bool {
				if work[pt[a]] != work[pt[b]] {
					return work[pt[a]] < work[pt[b]]
				}
				return pt[a] < pt[b]
			})
			rr := 0
			for _, row := range r.Units {
				for _, u := range row {
					assign(u, pt[rr%len(pt)])
					rr++
				}
			}
		}
	}

	s := &Schedule{
		P:        p,
		ElemProc: make([]int32, part.F.NNZ()),
		UnitProc: unitProc,
		Work:     work,
	}
	for q := range s.ElemProc {
		s.ElemProc[q] = unitProc[part.ElemUnit[q]]
	}
	return s
}
