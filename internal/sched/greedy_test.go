package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestGreedyAssignsEveryUnit(t *testing.T) {
	_, part, _ := pipeline(gen.Lap30(), 25, 4)
	for _, p := range []int{2, 16, 32} {
		s := BlockMapGreedy(part, p)
		for u, pr := range s.UnitProc {
			if pr < 0 || int(pr) >= p {
				t.Fatalf("P=%d: unit %d on %d", p, u, pr)
			}
		}
	}
}

func TestGreedyConservesWork(t *testing.T) {
	fc := func(seed int64) bool {
		m := gen.Random(50, 1.4, seed)
		_, part, ew := pipeline(m, 4, 3)
		var total int64
		for _, w := range ew {
			total += w
		}
		for _, p := range []int{1, 3, 8} {
			if BlockMapGreedy(part, p).TotalWork() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyImprovesBalanceOnSuite(t *testing.T) {
	// The point of the variant: at the imbalance-prone setting (g=25,
	// large P) the greedy allocator must not be worse on average, and
	// should win clearly somewhere.
	var wins, losses int
	for _, tm := range gen.Suite() {
		_, part, _ := pipeline(tm.Build(), 25, 4)
		for _, p := range []int{16, 32} {
			a34 := BlockMap(part, p).Imbalance()
			agr := BlockMapGreedy(part, p).Imbalance()
			switch {
			case agr < a34*0.999:
				wins++
			case agr > a34*1.001:
				losses++
			}
		}
	}
	if wins <= losses {
		t.Errorf("greedy allocator wins %d, losses %d — expected net improvement", wins, losses)
	}
}

func TestGreedyKeepsRectanglesInPt(t *testing.T) {
	_, part, _ := pipeline(gen.Lap30(), 4, 4)
	s := BlockMapGreedy(part, 16)
	for ci := range part.Clusters {
		cl := &part.Clusters[ci]
		if cl.Single {
			continue
		}
		inPt := make(map[int32]bool)
		for _, u := range cl.TriAlloc {
			inPt[s.UnitProc[u]] = true
		}
		for ri := range cl.Rects {
			for _, row := range cl.Rects[ri].Units {
				for _, u := range row {
					if !inPt[s.UnitProc[u]] {
						t.Fatalf("rect unit %d escaped Pt", u)
					}
				}
			}
		}
	}
}

func TestGreedyDependentColumnsOnPredProc(t *testing.T) {
	_, part, _ := pipeline(gen.PowerBus(300, 80, 7), 4, 4)
	s := BlockMapGreedy(part, 8)
	for ci := range part.Clusters {
		cl := &part.Clusters[ci]
		if !cl.Single || len(part.Units[cl.ColUnit].Preds) == 0 {
			continue
		}
		ok := false
		for _, pr := range part.Units[cl.ColUnit].Preds {
			if s.UnitProc[pr] == s.UnitProc[cl.ColUnit] {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("dependent column unit %d not on a predecessor processor", cl.ColUnit)
		}
	}
}

func BenchmarkBlockMapGreedyLap30(b *testing.B) {
	_, part, _ := pipeline(gen.Lap30(), 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BlockMapGreedy(part, 16)
	}
}
