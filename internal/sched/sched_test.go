package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

func pipeline(m *sparse.Matrix, g, w int) (*symbolic.Factor, *core.Partition, []int64) {
	pm, err := m.Permute(order.MMD(m))
	if err != nil {
		panic(err)
	}
	f := symbolic.Analyze(pm)
	part := core.NewPartition(f, core.Options{Grain: g, MinClusterWidth: w})
	ew, _ := ColumnWorkOf(f)
	return f, part, ew
}

func TestWrapMapOwnership(t *testing.T) {
	f, _, ew := pipeline(gen.Grid5(6, 6), 4, 4)
	s := WrapMap(f, ew, 4)
	for j := 0; j < f.N; j++ {
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			if s.ElemProc[q] != int32(j%4) {
				t.Fatalf("element in column %d owned by %d", j, s.ElemProc[q])
			}
		}
	}
}

func TestWorkConservation(t *testing.T) {
	fc := func(seed int64) bool {
		m := gen.Random(50, 1.4, seed)
		f, part, ew := pipeline(m, 4, 3)
		var total int64
		for _, w := range ew {
			total += w
		}
		for _, p := range []int{1, 3, 7} {
			if WrapMap(f, ew, p).TotalWork() != total {
				return false
			}
			if BlockMap(part, p).TotalWork() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fc, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcessorPerfectBalance(t *testing.T) {
	f, part, ew := pipeline(gen.Lap30(), 4, 4)
	for _, s := range []*Schedule{WrapMap(f, ew, 1), BlockMap(part, 1)} {
		if s.Imbalance() != 0 {
			t.Errorf("P=1 imbalance = %g, want 0", s.Imbalance())
		}
		if s.Efficiency() != 1 {
			t.Errorf("P=1 efficiency = %g, want 1", s.Efficiency())
		}
	}
}

func TestBlockMapAssignsEveryUnit(t *testing.T) {
	_, part, _ := pipeline(gen.Lap30(), 4, 4)
	for _, p := range []int{2, 16, 32} {
		s := BlockMap(part, p)
		for u, pr := range s.UnitProc {
			if pr < 0 || int(pr) >= p {
				t.Fatalf("P=%d: unit %d assigned to %d", p, u, pr)
			}
		}
		for q, pr := range s.ElemProc {
			if pr != s.UnitProc[part.ElemUnit[q]] {
				t.Fatal("element ownership inconsistent with unit ownership")
			}
		}
	}
}

func TestRectanglesConfinedToTriangleProcs(t *testing.T) {
	// The paper's key communication-reducing rule: units of rectangles
	// below a triangle go only to processors that worked on the triangle.
	_, part, _ := pipeline(gen.Lap30(), 4, 4)
	s := BlockMap(part, 16)
	for ci := range part.Clusters {
		cl := &part.Clusters[ci]
		if cl.Single {
			continue
		}
		inPt := make(map[int32]bool)
		for _, u := range cl.TriAlloc {
			inPt[s.UnitProc[u]] = true
		}
		for ri := range cl.Rects {
			for _, row := range cl.Rects[ri].Units {
				for _, u := range row {
					if !inPt[s.UnitProc[u]] {
						t.Fatalf("cluster %d rect unit %d on proc %d outside Pt %v",
							ci, u, s.UnitProc[u], inPt)
					}
				}
			}
		}
	}
}

func TestDependentColumnsOnPredecessorProc(t *testing.T) {
	_, part, _ := pipeline(gen.PowerBus(300, 80, 7), 4, 4)
	s := BlockMap(part, 8)
	for ci := range part.Clusters {
		cl := &part.Clusters[ci]
		if !cl.Single {
			continue
		}
		u := cl.ColUnit
		preds := part.Units[u].Preds
		if len(preds) == 0 {
			continue
		}
		procs := make(map[int32]bool)
		for _, pr := range preds {
			procs[s.UnitProc[pr]] = true
		}
		if !procs[s.UnitProc[u]] {
			t.Fatalf("dependent column unit %d on proc %d, predecessors on %v",
				u, s.UnitProc[u], procs)
		}
	}
}

func TestIndependentColumnsWrapped(t *testing.T) {
	// Diagonal matrix: every column independent, so allocation is pure
	// wrap-around in cluster order.
	m, _ := sparse.NewPattern(10, nil)
	m.SetLaplacianValues(1)
	f := symbolic.Analyze(m)
	part := core.NewPartition(f, core.Options{Grain: 4, MinClusterWidth: 4})
	s := BlockMap(part, 4)
	for ci := range part.Clusters {
		cl := &part.Clusters[ci]
		if !cl.Single {
			t.Fatal("diagonal matrix should be all single columns")
		}
		if want := int32(ci % 4); s.UnitProc[cl.ColUnit] != want {
			t.Fatalf("independent column %d on proc %d, want %d", ci, s.UnitProc[cl.ColUnit], want)
		}
	}
}

func TestImbalanceKnownValues(t *testing.T) {
	s := &Schedule{P: 4, Work: []int64{10, 10, 10, 10}}
	if s.Imbalance() != 0 {
		t.Errorf("balanced A = %g", s.Imbalance())
	}
	s2 := &Schedule{P: 4, Work: []int64{40, 0, 0, 0}}
	if got := s2.Imbalance(); math.Abs(got-3) > 1e-12 {
		t.Errorf("A = %g, want 3 (all work on one of four procs)", got)
	}
	if e := s2.Efficiency(); math.Abs(e-0.25) > 1e-12 {
		t.Errorf("efficiency = %g, want 0.25", e)
	}
	// 1/(1+A) == e identity from the paper.
	if math.Abs(1/(1+s2.Imbalance())-s2.Efficiency()) > 1e-12 {
		t.Error("1/(1+A) != efficiency")
	}
}

func TestWrapBetterBalancedThanBlock(t *testing.T) {
	// The paper's headline load-balance result: wrap mapping has
	// consistently lower imbalance than the block scheme at g=25.
	for _, tm := range gen.Suite() {
		f, part, ew := pipeline(tm.Build(), 25, 4)
		wrap := WrapMap(f, ew, 16)
		block := BlockMap(part, 16)
		if wrap.Imbalance() > block.Imbalance() {
			t.Errorf("%s: wrap A=%.3f worse than block A=%.3f at g=25",
				tm.Name, wrap.Imbalance(), block.Imbalance())
		}
	}
}

func TestMoreProcsMoreImbalance(t *testing.T) {
	// A generally grows with P for the block scheme (paper Table 3).
	_, part, _ := pipeline(gen.Lap30(), 25, 4)
	a4 := BlockMap(part, 4).Imbalance()
	a32 := BlockMap(part, 32).Imbalance()
	if a32 <= a4 {
		t.Errorf("A(32)=%.3f not larger than A(4)=%.3f", a32, a4)
	}
}

func TestWrapPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f, _, ew := pipeline(gen.Grid5(3, 3), 4, 4)
	WrapMap(f, ew, 0)
}

func BenchmarkBlockMapLap30(b *testing.B) {
	_, part, _ := pipeline(gen.Lap30(), 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BlockMap(part, 16)
	}
}

func BenchmarkWrapMapLap30(b *testing.B) {
	f, _, ew := pipeline(gen.Lap30(), 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WrapMap(f, ew, 16)
	}
}

func TestBlockMapPanicsOnBadP(t *testing.T) {
	_, part, _ := pipeline(gen.Grid5(3, 3), 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BlockMap(part, 0)
}

func TestGreedyPanicsOnBadP(t *testing.T) {
	_, part, _ := pipeline(gen.Grid5(3, 3), 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BlockMapGreedy(part, -1)
}

func TestScheduleAccessors(t *testing.T) {
	f, part, ew := pipeline(gen.Grid9(6, 6), 4, 4)
	s := WrapMap(f, ew, 4)
	if s.MaxWork() <= 0 || s.MaxWork() > s.TotalWork() {
		t.Fatalf("MaxWork %d vs TotalWork %d", s.MaxWork(), s.TotalWork())
	}
	b := BlockMap(part, 4)
	if b.TotalWork() != s.TotalWork() {
		t.Fatal("schemes disagree on total work")
	}
	solveW := make([]int64, f.NNZ())
	for i := range solveW {
		solveW[i] = 1
	}
	acc := s.AccumulateElemWork(solveW)
	var sum int64
	for _, w := range acc {
		sum += w
	}
	if sum != int64(f.NNZ()) {
		t.Fatalf("accumulated %d, want %d", sum, f.NNZ())
	}
	if ImbalanceOf([]int64{}) != 0 || ImbalanceOf([]int64{0, 0}) != 0 {
		t.Fatal("ImbalanceOf degenerate cases wrong")
	}
}

func TestImbalanceEmptyProcessors(t *testing.T) {
	// More processors than work: some processors are empty; A reflects it.
	f, _, ew := pipeline(gen.Grid5(2, 2), 4, 4)
	s := WrapMap(f, ew, 16)
	if s.Imbalance() <= 0 {
		t.Errorf("expected positive imbalance with empty processors, got %g", s.Imbalance())
	}
	if e := s.Efficiency(); e <= 0 || e >= 1 {
		t.Errorf("efficiency %g out of range", e)
	}
}
