package artifact

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/order"
)

// TestPatternSumDeterministic pins the content addressing: rebuilding the
// same matrix yields the same digest, a permuted matrix or a different
// pattern yields a different one, and values never influence PatternSum.
func TestPatternSumDeterministic(t *testing.T) {
	a := gen.Grid9(8, 8)
	b := gen.Grid9(8, 8)
	if PatternSum(a) != PatternSum(b) {
		t.Fatal("identical patterns produced different digests")
	}
	patternOnly := *a
	patternOnly.Val = nil
	if PatternSum(a) != PatternSum(&patternOnly) {
		t.Fatal("values leaked into the pattern digest")
	}
	perm := order.MMD(a)
	pm, err := a.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if PatternSum(a) == PatternSum(pm) {
		t.Fatal("MMD-permuted pattern collided with the original")
	}
	if PatternSum(a) == PatternSum(gen.Grid9(8, 9)) {
		t.Fatal("different patterns collided")
	}
	if PatternSum(a) == PatternSum(gen.Grid5(8, 8)) {
		t.Fatal("5-point and 9-point patterns collided")
	}
}

// TestValuesSum pins that the values digest distinguishes numerically
// different matrices over one shared pattern.
func TestValuesSum(t *testing.T) {
	a := gen.Grid9(6, 6)
	b := gen.Grid9(6, 6)
	if ValuesSum(a) != ValuesSum(b) {
		t.Fatal("identical values produced different digests")
	}
	b.Val[len(b.Val)/2] += 1e-12
	if ValuesSum(a) == ValuesSum(b) {
		t.Fatal("perturbed values collided")
	}
}

// TestHasherPrefixSafety pins the anti-ambiguity framing: field sequences
// that concatenate to the same bytes must not collide.
func TestHasherPrefixSafety(t *testing.T) {
	h1 := NewHasher("x")
	h1.Str("ab")
	h1.Str("c")
	h2 := NewHasher("x")
	h2.Str("a")
	h2.Str("bc")
	if h1.Sum() == h2.Sum() {
		t.Fatal("length prefixing failed: [ab,c] == [a,bc]")
	}
	if NewHasher("a").Sum() == NewHasher("b").Sum() {
		t.Fatal("kind not mixed into digest")
	}
}

func key(kind string, i int) Key {
	h := NewHasher(kind)
	h.I64(int64(i))
	return h.Sum()
}

func TestStoreHitMissEvict(t *testing.T) {
	s := NewStore(2)
	builds := 0
	get := func(i int) any {
		v, _, err := s.GetOrBuild(key("k", i), func() (any, error) {
			builds++
			return i * 10, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := get(1); got != 10 {
		t.Fatalf("built %v, want 10", got)
	}
	if got := get(1); got != 10 {
		t.Fatalf("cached %v, want 10", got)
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	get(2)
	get(3) // evicts key 1 (LRU)
	if got := s.Stats(); got.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", got.Evictions)
	}
	get(1) // rebuilt
	if builds != 4 {
		t.Fatalf("builds = %d, want 4 (1,2,3,1-again)", builds)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("stats = %+v, want 1 hit / 4 misses", st)
	}
	byKind := s.StatsByKind()
	if byKind["k"] != st {
		t.Fatalf("per-kind stats %+v != totals %+v", byKind["k"], st)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
}

func TestStoreBuildErrorNotCached(t *testing.T) {
	s := NewStore(0)
	wantErr := errors.New("boom")
	k := key("k", 7)
	_, _, err := s.GetOrBuild(k, func() (any, error) { return nil, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	v, cached, err := s.GetOrBuild(k, func() (any, error) { return 42, nil })
	if err != nil || cached || v != 42 {
		t.Fatalf("retry after failed build: v=%v cached=%v err=%v", v, cached, err)
	}
	if got := s.Stats().Evictions; got != 0 {
		t.Fatalf("failed build counted as eviction: %d", got)
	}
}

// TestStoreConcurrentDedup hammers one key from many goroutines: exactly
// one build may run, everyone shares its result. Run under -race this is
// also the store's data-race test.
func TestStoreConcurrentDedup(t *testing.T) {
	s := NewStore(8)
	var mu sync.Mutex
	builds := 0
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := key("k", i%4)
				v, _, err := s.GetOrBuild(k, func() (any, error) {
					mu.Lock()
					builds++
					mu.Unlock()
					return fmt.Sprintf("v%d", i%4), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v != fmt.Sprintf("v%d", i%4) {
					t.Errorf("got %v for key %d", v, i%4)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if builds > 4 {
		// Dedup is best-effort only across a drop/rebuild boundary, but
		// with no errors and capacity 8 > 4 keys nothing is ever dropped.
		t.Fatalf("builds = %d, want <= 4", builds)
	}
	st := s.Stats()
	if st.Hits+st.Misses != 32*20 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 32*20)
	}
}
