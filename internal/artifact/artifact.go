// Package artifact is a content-addressed in-memory store for the staged
// solver pipeline's expensive artifacts.
//
// The production scenario (ROADMAP: factorization-as-a-service) is that
// users re-solve against recurring sparsity patterns, so the expensive
// stages are keyed by what they actually depend on and served from cache:
// symbolic analyses and mapped schedules by a deterministic hash of the
// CSC *pattern* (plus the stage parameters), numeric factors by
// (pattern, values, kernel). The store is an LRU-bounded map from Key to
// built artifact with hit/miss/eviction counters per artifact kind, and
// deduplicates concurrent builds of the same key so a thundering herd of
// identical requests performs one symbolic analysis, not N.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"repro/internal/sparse"
)

// Key addresses one artifact: a kind ("analysis", "plan", "factor", ...)
// plus a collision-resistant digest of everything the artifact was built
// from. Keys are comparable and usable as map keys.
type Key struct {
	Kind string
	Sum  [sha256.Size]byte
}

// String renders the key as kind:hex for logs and error messages.
func (k Key) String() string { return k.Kind + ":" + hex.EncodeToString(k.Sum[:]) }

// Hasher builds a Key from a sequence of typed fields. Every field is
// length- or tag-prefixed, so distinct field sequences can never collide
// by concatenation ambiguity (e.g. ["ab","c"] vs ["a","bc"]).
type Hasher struct {
	kind string
	h    hash.Hash
	buf  [8]byte
}

// NewHasher starts a digest for an artifact of the given kind. The kind
// is mixed into the digest, so artifacts of different kinds never share a
// Sum even when built from identical inputs.
func NewHasher(kind string) *Hasher {
	hs := &Hasher{kind: kind, h: sha256.New()}
	hs.Str(kind)
	return hs
}

// I64 appends one signed integer.
func (hs *Hasher) I64(v int64) {
	binary.LittleEndian.PutUint64(hs.buf[:], uint64(v))
	hs.h.Write(hs.buf[:])
}

// F64 appends one float64 by its IEEE-754 bit pattern (distinguishes
// +0/−0 and preserves NaN payloads: value identity, not numeric equality).
func (hs *Hasher) F64(v float64) { hs.I64(int64(math.Float64bits(v))) }

// Str appends a length-prefixed string.
func (hs *Hasher) Str(s string) {
	hs.I64(int64(len(s)))
	hs.h.Write([]byte(s))
}

// Ints appends a length-prefixed []int.
func (hs *Hasher) Ints(v []int) {
	hs.I64(int64(len(v)))
	for _, x := range v {
		hs.I64(int64(x))
	}
}

// F64s appends a length-prefixed []float64 of bit patterns.
func (hs *Hasher) F64s(v []float64) {
	hs.I64(int64(len(v)))
	for _, x := range v {
		hs.F64(x)
	}
}

// Key appends another artifact's key (stage chaining: a Plan's digest
// includes its Analysis' key; a Factor's includes its Plan's).
func (hs *Hasher) Key(k Key) {
	hs.Str(k.Kind)
	hs.h.Write(k.Sum[:])
}

// Sum finalizes the digest. The Hasher may keep absorbing fields after a
// Sum call, producing keys for successive prefixes.
func (hs *Hasher) Sum() Key {
	var k Key
	k.Kind = hs.kind
	hs.h.Sum(k.Sum[:0])
	return k
}

// PatternSum digests the CSC sparsity pattern of m — dimension, column
// pointers and row indices, values excluded. Deterministic across runs
// and processes; two matrices share a PatternSum iff sparse.PatternEqual
// holds.
func PatternSum(m *sparse.Matrix) [sha256.Size]byte {
	hs := NewHasher("pattern")
	hs.I64(int64(m.N))
	hs.Ints(m.ColPtr)
	hs.Ints(m.RowInd)
	return hs.Sum().Sum
}

// ValuesSum digests the numeric values of m by bit pattern. The caller
// pairs it with PatternSum: (pattern, values) addresses the numeric
// content of a matrix exactly.
func ValuesSum(m *sparse.Matrix) [sha256.Size]byte {
	hs := NewHasher("values")
	hs.F64s(m.Val)
	return hs.Sum().Sum
}
