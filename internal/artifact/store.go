package artifact

import (
	"container/list"
	"sync"
)

// Counts are the cache counters of one artifact kind (or the store-wide
// totals): GetOrBuild calls that found a finished or in-flight entry
// (Hits), calls that built (Misses), and completed entries dropped by the
// LRU bound (Evictions). Failed builds are not cached and not counted as
// evictions when removed.
type Counts struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Store is a content-addressed LRU cache of built artifacts. The zero
// value is not usable; construct with NewStore. All methods are safe for
// concurrent use, and concurrent GetOrBuild calls for the same key are
// deduplicated: one caller builds, the rest block until the build
// finishes and share its result.
type Store struct {
	mu     sync.Mutex
	cap    int        // max completed+inflight entries; <= 0 means unbounded
	ll     *list.List // front = most recently used
	items  map[Key]*entry
	byKind map[string]*Counts
	total  Counts
}

type entry struct {
	key  Key
	elem *list.Element
	done chan struct{} // closed when build completes (val/err valid after)
	val  any
	err  error
}

// NewStore builds a store bounded to capacity entries (counting every
// kind together); capacity <= 0 means unbounded.
func NewStore(capacity int) *Store {
	return &Store{
		cap:    capacity,
		ll:     list.New(),
		items:  make(map[Key]*entry),
		byKind: make(map[string]*Counts),
	}
}

// GetOrBuild returns the artifact stored under k, building it with build
// on a miss. The second result reports whether the artifact came from the
// cache (true also when this call joined another caller's in-flight
// build). A build error is returned to every waiting caller and the entry
// is dropped, so a later call retries.
func (s *Store) GetOrBuild(k Key, build func() (any, error)) (any, bool, error) {
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		s.ll.MoveToFront(e.elem)
		s.kindLocked(k.Kind).Hits++
		s.total.Hits++
		s.mu.Unlock()
		<-e.done
		return e.val, true, e.err
	}
	e := &entry{key: k, done: make(chan struct{})}
	e.elem = s.ll.PushFront(e)
	s.items[k] = e
	s.kindLocked(k.Kind).Misses++
	s.total.Misses++
	s.mu.Unlock()

	e.val, e.err = build()
	close(e.done)

	s.mu.Lock()
	if e.err != nil {
		s.dropLocked(e)
	} else {
		s.evictLocked()
	}
	s.mu.Unlock()
	return e.val, false, e.err
}

// Len returns the number of entries (completed and in-flight).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Stats returns the store-wide counter totals.
func (s *Store) Stats() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// StatsByKind returns a copy of the per-kind counters.
func (s *Store) StatsByKind() map[string]Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Counts, len(s.byKind))
	//repro:allow maporder -- order-insensitive map-to-map copy; callers that render it (tables) sort the keys themselves
	for k, c := range s.byKind {
		out[k] = *c
	}
	return out
}

// kindLocked returns the counter struct for one kind; callers hold s.mu.
func (s *Store) kindLocked(name string) *Counts {
	c, ok := s.byKind[name]
	if !ok {
		c = &Counts{}
		s.byKind[name] = c
	}
	return c
}

// dropLocked removes a (failed) entry without counting an eviction;
// callers hold s.mu. The entry may already be gone if eviction raced
// ahead.
func (s *Store) dropLocked(e *entry) {
	if cur, ok := s.items[e.key]; ok && cur == e {
		delete(s.items, e.key)
		s.ll.Remove(e.elem)
	}
}

// evictLocked enforces the LRU bound, skipping in-flight builds (they
// are pinned until they finish); callers hold s.mu.
func (s *Store) evictLocked() {
	if s.cap <= 0 {
		return
	}
	for el := s.ll.Back(); el != nil && len(s.items) > s.cap; {
		prev := el.Prev()
		e := el.Value.(*entry)
		select {
		case <-e.done:
			delete(s.items, e.key)
			s.ll.Remove(el)
			s.kindLocked(e.key.Kind).Evictions++
			s.total.Evictions++
		default:
			// still building: pinned
		}
		el = prev
	}
}
