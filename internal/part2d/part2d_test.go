package part2d

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/strategy"
	"repro/internal/symbolic"
	"repro/internal/traffic"
)

// newTestSys runs the analysis pipeline (MMD ordering, symbolic
// factorization) on a matrix and wraps it for the strategy registries.
func newTestSys(t testing.TB, m *sparse.Matrix) *strategy.Sys {
	t.Helper()
	perm := order.MMD(m)
	pm, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	return strategy.NewSys(symbolic.Analyze(pm), nil, nil)
}

var (
	suiteOnce sync.Once
	suiteSys  map[string]*strategy.Sys
)

// suite lazily analyzes every gen.Suite() matrix once for the package's
// tests (the analysis dominates the cost of each individual check).
func suite(t testing.TB) map[string]*strategy.Sys {
	t.Helper()
	suiteOnce.Do(func() {
		suiteSys = make(map[string]*strategy.Sys)
		for _, tm := range gen.Suite() {
			suiteSys[tm.Name] = newTestSys(t, tm.Build())
		}
	})
	return suiteSys
}

func lapSys(t testing.TB) *strategy.Sys { return suite(t)["LAP30"] }

type testMapper2D struct{ name string }

func (m testMapper2D) Name() string { return m.name }
func (m testMapper2D) Map2D(*strategy.Sys, int, strategy.Options) (*Schedule2D, error) {
	return nil, nil
}

func TestRegistry2D(t *testing.T) {
	names := Names2D()
	for _, want := range []string{"col2d", "rect2d", "rect2dcyclic", "rect2dlpt"} {
		if _, ok := Lookup2D(want); !ok {
			t.Errorf("Lookup2D(%q) = false, want registered", want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names2D() not sorted: %v", names)
		}
	}
	if _, ok := Lookup2D("no-such-strategy"); ok {
		t.Error("Lookup2D of unknown strategy succeeded")
	}
	if _, err := Map2D("no-such-strategy", nil, 4, strategy.Options{}); err == nil ||
		!strings.Contains(err.Error(), "rect2d") {
		t.Errorf("Map2D(unknown) error = %v, want one listing registered names", err)
	}
}

func TestRegister2DPanics(t *testing.T) {
	mustPanic := func(name string, m Mapper2D) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register2D(%q) did not panic", name)
			}
		}()
		Register2D(m)
	}
	mustPanic("duplicate", testMapper2D{name: "rect2d"})
	mustPanic("empty", testMapper2D{name: ""})
}

func TestMap2DInvalidProcs(t *testing.T) {
	sys := newTestSys(t, gen.Grid5(4, 4))
	for _, name := range Names2D() {
		if _, err := Map2D(name, sys, 0, strategy.Options{}); err == nil {
			t.Errorf("%s: Map2D with p=0 succeeded, want error", name)
		}
	}
}

func TestNewValidation(t *testing.T) {
	sys := newTestSys(t, gen.Grid5(3, 3))
	n := sys.F.N
	good := []int{0, n}
	if _, err := New(sys.F, sys.ElemWork, 0, good, []int32{0}); err == nil {
		t.Error("New with p=0 succeeded")
	}
	if _, err := New(sys.F, sys.ElemWork, 2, []int{0, n - 1}, []int32{0}); err == nil {
		t.Error("New with bounds not reaching n succeeded")
	}
	if _, err := New(sys.F, sys.ElemWork, 2, []int{0, 3, 3, n}, make([]int32, 6)); err == nil {
		t.Error("New with an empty interval succeeded")
	}
	if _, err := New(sys.F, sys.ElemWork, 2, good, []int32{0, 0}); err == nil {
		t.Error("New with wrong owner count succeeded")
	}
	if _, err := New(sys.F, sys.ElemWork, 2, good, []int32{5}); err == nil {
		t.Error("New with out-of-range owner succeeded")
	}
	s, err := New(sys.F, sys.ElemWork, 2, good, []int32{1})
	if err != nil {
		t.Fatalf("New on a valid single-tile schedule: %v", err)
	}
	if s.R() != 1 || s.Tiles() != 1 || s.Work[1] != sys.Total {
		t.Errorf("single-tile schedule: R=%d tiles=%d work=%v (total %d)",
			s.R(), s.Tiles(), s.Work, sys.Total)
	}
}

// checkSchedule2D verifies the structural invariants every mapped 2D
// schedule must satisfy: derived element ownership matching the tile
// owners, per-processor work summing to the total, and in-range owners.
func checkSchedule2D(t *testing.T, sys *strategy.Sys, s *Schedule2D, label string, p int) {
	t.Helper()
	if s.P != p {
		t.Fatalf("%s: P = %d, want %d", label, s.P, p)
	}
	var tot int64
	for _, w := range s.Work {
		tot += w
	}
	if tot != sys.Total {
		t.Errorf("%s: work sums to %d, want %d", label, tot, sys.Total)
	}
	f := sys.F
	for j := 0; j < f.N; j++ {
		c := int(s.BlockOf[j])
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			want := s.TileOwner(int(s.BlockOf[f.RowInd[q]]), c)
			if got := s.ElemProc[q]; got != want {
				t.Fatalf("%s: element %d owned by %d, tile owner %d", label, q, got, want)
			}
			if want < 0 || int(want) >= p {
				t.Fatalf("%s: tile owner %d out of range", label, want)
			}
		}
	}
}

// TestConservation2DSuite is the 2D half of the conservation satellite:
// on every suite matrix and every native 2D mapper, the per-tile fan-out
// and fan-in volumes sum to the deduplicated 2D total, which equals
// traffic.Simulate over the derived element ownership — the 2D analogue
// of the ColumnRefs/Simulate identity.
func TestConservation2DSuite(t *testing.T) {
	// MaxMoves keeps the rect2d descent cheap on the full suite; the
	// conservation identity must hold at any budget.
	opts := strategy.Options{MaxMoves: 8}
	for mname, sys := range suite(t) {
		for _, p := range []int{4, 16} {
			for _, name := range []string{"rect2d", "rect2dlpt", "rect2dcyclic"} {
				s2, err := Map2D(name, sys, p, opts)
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", name, mname, p, err)
				}
				label := name + "/" + mname
				checkSchedule2D(t, sys, s2, label, p)
				tr := Traffic(sys.Ops, s2)
				if got := tr.TotalFanOut() + tr.TotalFanIn(); got != tr.Total {
					t.Errorf("%s P=%d: fanout+fanin = %d, total %d", label, p, got, tr.Total)
				}
				sim := traffic.Simulate(sys.Ops, s2.Schedule())
				if tr.Total != sim.Total {
					t.Errorf("%s P=%d: 2D total %d != deduplicated Simulate total %d",
						label, p, tr.Total, sim.Total)
				}
				var perProc int64
				for _, v := range tr.PerProc {
					perProc += v
				}
				if perProc != tr.Total {
					t.Errorf("%s P=%d: per-proc volumes sum to %d, total %d", label, p, perProc, tr.Total)
				}
			}
		}
	}
}

// TestCol2DLiftReproduces1D is the other half of the conservation
// satellite: lifting any column-granular 1D strategy yields the identical
// element ownership, so the 2D traffic total reproduces the 1D Simulate
// total exactly — on every suite matrix — and the lifted schedule has
// zero fan-in (a 1D column schedule only fans panel columns out; its
// scale and inner-product fetches are local to the owning block column).
func TestCol2DLiftReproduces1D(t *testing.T) {
	for mname, sys := range suite(t) {
		for _, base := range LiftBases() {
			opts := strategy.Options{Base: base}
			for _, p := range []int{1, 4, 16} {
				sc, err := strategy.Map(base, sys, p, opts)
				if err != nil {
					t.Fatal(err)
				}
				s2, err := Map2D("col2d", sys, p, opts)
				if err != nil {
					t.Fatalf("col2d(%s)/%s P=%d: %v", base, mname, p, err)
				}
				label := "col2d(" + base + ")/" + mname
				checkSchedule2D(t, sys, s2, label, p)
				for q, want := range sc.ElemProc {
					if s2.ElemProc[q] != want {
						t.Fatalf("%s P=%d: element %d owned by %d, 1D owner %d",
							label, p, q, s2.ElemProc[q], want)
					}
				}
				tr := Traffic(sys.Ops, s2)
				want := strategy.Traffic(sys, opts, sc)
				if tr.Total != want.Total {
					t.Errorf("%s P=%d: 2D traffic %d != 1D traffic %d", label, p, tr.Total, want.Total)
				}
				if fi := tr.TotalFanIn(); fi != 0 {
					t.Errorf("%s P=%d: lifted schedule has fan-in %d, want 0", label, p, fi)
				}
			}
		}
	}
}

func TestCol2DRejectsBlockGranular(t *testing.T) {
	sys := lapSys(t)
	for _, base := range []string{"block", "blockgreedy"} {
		if _, err := Map2D("col2d", sys, 4, strategy.Options{Base: base}); err == nil {
			t.Errorf("col2d lifted block-granular base %q without error", base)
		}
	}
}

// TestRect2DGenuinely2D pins that the rect2d descent actually leaves the
// column-flattened start on LAP30: at least one off-diagonal tile is
// owned by a processor other than its block column's.
func TestRect2DGenuinely2D(t *testing.T) {
	sys := lapSys(t)
	s2, err := Map2D("rect2d", sys, 16, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for rr := 0; rr < s2.R(); rr++ {
		for cc := 0; cc < rr; cc++ {
			if s2.TileOwner(rr, cc) != s2.TileOwner(cc, cc) {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Error("rect2d at P=16 on LAP30 kept the column-flattened ownership; want a 2D assignment")
	}
}
