package part2d

import (
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/sparse"
)

// ParallelFactorize executes the real multi-goroutine Cholesky
// factorization over the tile ownership of s: the merged tile-segment task
// graph (Tasks) that the makespan simulators predict is executed by worker
// goroutines, one per processor, producing a factor bit-for-bit equal to
// numeric.Factorize. m must be the permuted matrix ops was built from.
func ParallelFactorize(m *sparse.Matrix, ops *model.Ops, elemWork []int64, s *Schedule2D) (*exec.NumericFactor, error) {
	tasks, elemTask := Tasks(ops, elemWork, s)
	return exec.ParallelFactorize2D(m, ops.F, s.P, tasks, elemTask)
}

// ParallelFactorizeLDL is ParallelFactorize with the square-root-free LDLᵀ
// kernel, bit-for-bit equal to numeric.FactorizeLDL.
func ParallelFactorizeLDL(m *sparse.Matrix, ops *model.Ops, elemWork []int64, s *Schedule2D) (*exec.NumericFactor, error) {
	tasks, elemTask := Tasks(ops, elemWork, s)
	return exec.ParallelFactorize2DLDL(m, ops.F, s.P, tasks, elemTask)
}

// Measure times the serial factorization against the parallel execution of
// s's task graph (repeat-and-min, bit-identity verified on every run) and
// returns the wall-clock Measurement with per-task real TaskEvents.
func Measure(m *sparse.Matrix, ops *model.Ops, elemWork []int64, s *Schedule2D, opts exec.MeasureOptions) (*exec.Measurement, error) {
	tasks, elemTask := Tasks(ops, elemWork, s)
	return exec.MeasureFactorize(m, ops.F, s.P, tasks, elemTask, opts)
}
