package part2d

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/hbio"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/strategy"
	"repro/internal/symbolic"
)

// numSys is the full numeric pipeline of one test matrix: the permuted
// matrix with values, its analysis and the strategy-registry wrapper.
type numSys struct {
	name string
	m    *sparse.Matrix
	f    *symbolic.Factor
	ops  *model.Ops
	ew   []int64
	sys  *strategy.Sys
	chol *numeric.Cholesky
	ldl  *numeric.LDL
}

func buildNumSys(t testing.TB, name string, m *sparse.Matrix) *numSys {
	t.Helper()
	pm, err := m.Permute(order.MMD(m))
	if err != nil {
		t.Fatal(err)
	}
	f := symbolic.Analyze(pm)
	ops := model.NewOps(f)
	ew := model.ElementWork(ops)
	chol, err := numeric.Factorize(pm, f)
	if err != nil {
		t.Fatal(err)
	}
	ldl, err := numeric.FactorizeLDL(pm, f)
	if err != nil {
		t.Fatal(err)
	}
	return &numSys{
		name: name, m: pm, f: f, ops: ops, ew: ew,
		sys:  strategy.NewSys(f, ops, ew),
		chol: chol, ldl: ldl,
	}
}

// hbRoundtrip pushes a matrix through the Harwell-Boeing writer and reader
// so the sweep exercises the same path a real HB input takes.
func hbRoundtrip(t testing.TB, m *sparse.Matrix) *sparse.Matrix {
	t.Helper()
	var buf bytes.Buffer
	if err := hbio.Write(&buf, m, "fixture", "FIX01"); err != nil {
		t.Fatal(err)
	}
	rm, _, err := hbio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

// mapperEntries enumerates every registered 2D strategy: the native
// mappers plus the col2d lift of every column-granular 1D strategy.
func mapperEntries() []struct {
	label, name string
	opts        strategy.Options
} {
	var out []struct {
		label, name string
		opts        strategy.Options
	}
	for _, name := range Names2D() {
		if name == "col2d" {
			continue
		}
		out = append(out, struct {
			label, name string
			opts        strategy.Options
		}{label: name, name: name})
	}
	for _, base := range LiftBases() {
		out = append(out, struct {
			label, name string
			opts        strategy.Options
		}{label: "col2d:" + base, name: "col2d", opts: strategy.Options{Base: base}})
	}
	return out
}

var bitIdentityProcs = []int{1, 4, 16, 64}

// The tentpole property: for every registered 2D mapper and every col2d
// lift, at every processor count (including P >= n on the 8x8 grid), the
// parallel engine's factor is bit-for-bit equal to the serial reference —
// for both kernels. Run with -race this is also the engine's data-race
// exercise.
func TestParallelFactorizeBitIdentity(t *testing.T) {
	systems := []*numSys{
		buildNumSys(t, "LAP30", gen.Lap30()),
		buildNumSys(t, "grid9-8x8", gen.Grid9(8, 8)),
		buildNumSys(t, "hb-fegrid5", hbRoundtrip(t, gen.FEGrid5(5))),
	}
	for _, ns := range systems {
		for _, e := range mapperEntries() {
			for _, p := range bitIdentityProcs {
				s2, err := Map2D(e.name, ns.sys, p, e.opts)
				if err != nil {
					t.Fatalf("%s %s P=%d: map: %v", ns.name, e.label, p, err)
				}
				nf, err := ParallelFactorize(ns.m, ns.ops, ns.ew, s2)
				if err != nil {
					t.Fatalf("%s %s P=%d: cholesky: %v", ns.name, e.label, p, err)
				}
				for q := range ns.chol.Val {
					if math.Float64bits(nf.Val[q]) != math.Float64bits(ns.chol.Val[q]) {
						t.Fatalf("%s %s P=%d: cholesky diverged at %d: %g vs %g",
							ns.name, e.label, p, q, nf.Val[q], ns.chol.Val[q])
					}
				}
				lf, err := ParallelFactorizeLDL(ns.m, ns.ops, ns.ew, s2)
				if err != nil {
					t.Fatalf("%s %s P=%d: ldl: %v", ns.name, e.label, p, err)
				}
				for q := range ns.ldl.Val {
					if math.Float64bits(lf.Val[q]) != math.Float64bits(ns.ldl.Val[q]) {
						t.Fatalf("%s %s P=%d: ldl diverged at %d: %g vs %g",
							ns.name, e.label, p, q, lf.Val[q], ns.ldl.Val[q])
					}
				}
			}
		}
	}
}

// Measure must verify bit-identity on every repeat, produce well-formed
// real events (one per task, ns timeline), and those events must aggregate
// through the tolerant real-profile builder with busy time conserved.
func TestMeasureRealEvents(t *testing.T) {
	ns := buildNumSys(t, "grid9-8x8", gen.Grid9(8, 8))
	for _, p := range []int{1, 4} {
		s2, err := Map2D("rect2dcyclic", ns.sys, p, strategy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tasks, _ := Tasks(ns.ops, ns.ew, s2)
		mes, err := Measure(ns.m, ns.ops, ns.ew, s2, exec.MeasureOptions{Repeats: 2})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if mes.SerialNs < 1 || mes.ParallelNs < 1 || !(mes.Speedup > 0) {
			t.Fatalf("P=%d: degenerate measurement %+v", p, mes)
		}
		if len(mes.Events) != len(tasks) {
			t.Fatalf("P=%d: %d events, want %d", p, len(mes.Events), len(tasks))
		}
		var busy int64
		for i, ev := range mes.Events {
			if int(ev.Task) != i {
				t.Fatalf("P=%d: events not sorted by task: %d at %d", p, ev.Task, i)
			}
			if ev.Finish < ev.Start || ev.Work != ev.Finish-ev.Start || ev.Comm != 0 {
				t.Fatalf("P=%d: malformed event %+v", p, ev)
			}
			busy += ev.Work
		}
		prof, err := obs.RealProfile(mes.Events, s2.P)
		if err != nil {
			t.Fatalf("P=%d: real profile: %v", p, err)
		}
		if prof.Busy() != busy {
			t.Fatalf("P=%d: profile busy %d, events sum %d", p, prof.Busy(), busy)
		}
		if prof.Makespan < mes.Events[0].Finish {
			t.Fatalf("P=%d: makespan %d below first finish", p, prof.Makespan)
		}
		if prof.Critical != nil {
			t.Fatalf("P=%d: real profile must not claim a critical path", p)
		}
	}
}

// LDL measurement exercises the other kernel through the same harness.
func TestMeasureLDL(t *testing.T) {
	ns := buildNumSys(t, "hb-fegrid5", hbRoundtrip(t, gen.FEGrid5(5)))
	s2, err := Map2D("rect2d", ns.sys, 4, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mes, err := Measure(ns.m, ns.ops, ns.ew, s2, exec.MeasureOptions{LDL: true, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	for q := range ns.ldl.Val {
		if math.Float64bits(mes.Factor.Val[q]) != math.Float64bits(ns.ldl.Val[q]) {
			t.Fatalf("ldl measurement factor diverged at %d", q)
		}
	}
}
