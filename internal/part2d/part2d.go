// Package part2d is the 2D tile-ownership subsystem: it generalizes the
// repository's 1D schedules (whole block columns owned by one processor)
// to schedules that assign each (rowBlock, colBlock) tile of a shared
// diagonal interval structure to a processor.
//
// The paper's central claim is that the *shape* of a partition — not just
// its balance — determines communication. Every 1D strategy flattens the
// shape back to column ownership; symmetric rectilinear partitioning
// (Yasar et al. 2020) in particular computes a genuinely 2D tiling and
// then discards it. This package keeps the tiling: a Schedule2D carries
// the shared row/column interval boundaries and one owner per
// lower-triangle tile, and the package mirrors the whole 1D measurement
// stack at tile granularity:
//
//   - Traffic: the fan-out/fan-in data-traffic simulator. Fetches of pair
//     -update sources (i, k) travel along the row of tiles of the target's
//     row block (the fan-out of panel column k to the tile owners of block
//     row block(i)); fetches of sources (j, k) and of the diagonal travel
//     along the column of tiles of the target's column block (the fan-in
//     toward the diagonal-block owner of column block block(j)). The
//     per-tile volumes sum exactly to the deduplicated total of
//     traffic.Simulate over the derived element ownership — the 2D
//     analogue of the traffic.ColumnRefs / Simulate identity.
//   - Tasks: the merged tile-segment task graph for the comm-aware
//     makespan simulators. On a column-granular tiling (every tile of a
//     block column sharing one owner — the col2d lift of any 1D strategy)
//     the graph collapses to exactly the 1D column task graph, so the 2D
//     simulators are bit-identical to the 1D ones there.
//   - A Mapper2D registry (Register2D/Map2D) seeded with rect2d (tiles
//     from the rectilinear cuts, owners by a traffic-guarded descent from
//     the column-flattened assignment, never exceeding its traffic),
//     rect2dlpt (the same tiles, owners by greedy tile-work LPT),
//     rect2dcyclic (owners by 2D wrap over a processor grid) and col2d
//     (any registered column-granular 1D strategy lifted to a tiling
//     whose block columns it owns — the bridge that makes every existing
//     mapper comparable in the 2D simulators).
//
// This is the architectural step that opens 2D algorithms (block-cyclic
// 2D, subcube-2D) as drop-ins: a new Mapper2D registers itself and
// immediately appears in the repro API, cmd/sweep -kind tile2d,
// cmd/paperbench -table tile2d and the Ext-T tables.
package part2d

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/symbolic"
)

// Schedule2D assigns every lower-triangle tile of a shared diagonal
// interval structure to a processor. The intervals tile the symmetric
// factor structure: factor element (i, j) belongs to the tile formed by
// i's interval (its row block) and j's interval (its column block); the
// factor is lower triangular and the intervals are shared by rows and
// columns, so row block >= column block always and only the R(R+1)/2
// lower-triangle tiles exist.
type Schedule2D struct {
	P int
	// Bounds holds the shared diagonal interval boundaries, length R+1
	// with Bounds[0] = 0 and Bounds[R] = n; interval r is
	// [Bounds[r], Bounds[r+1]) and is never empty.
	Bounds []int
	// Owner maps each lower-triangle tile to its processor, packed row by
	// row: tile (r, c) with c <= r lives at index r(r+1)/2 + c.
	Owner []int32
	// BlockOf[i] is the diagonal interval of index i.
	BlockOf []int32
	// Work is the total factorization work owned by each processor.
	Work []int64
	// ElemProc is the derived element ownership: ElemProc[q] is the owner
	// of the tile containing factor nonzero q, the granularity at which
	// the traffic simulators deduplicate fetches.
	ElemProc []int32
}

// R returns the number of diagonal intervals (the tiling is R x R).
func (s *Schedule2D) R() int { return len(s.Bounds) - 1 }

// Tiles returns the number of lower-triangle tiles, R(R+1)/2.
func (s *Schedule2D) Tiles() int { r := s.R(); return r * (r + 1) / 2 }

// TileID returns the packed index of tile (r, c); c <= r is required.
func TileID(r, c int) int { return r*(r+1)/2 + c }

// TileOwner returns the processor owning tile (r, c).
func (s *Schedule2D) TileOwner(r, c int) int32 { return s.Owner[TileID(r, c)] }

// Imbalance returns the paper's load imbalance factor A over the tile
// ownership's per-processor work.
func (s *Schedule2D) Imbalance() float64 { return sched.ImbalanceOf(s.Work) }

// Schedule bridges to the 1D schedule type over the derived element
// ownership, so every element-granular 1D simulator (traffic.Simulate in
// particular) evaluates the 2D assignment unchanged. The returned
// schedule aliases the receiver's ElemProc and Work slices.
func (s *Schedule2D) Schedule() *sched.Schedule {
	return &sched.Schedule{P: s.P, ElemProc: s.ElemProc, Work: s.Work}
}

// New validates and completes a 2D schedule: bounds must be strictly
// increasing from 0 to f.N, owner must cover the R(R+1)/2 lower-triangle
// tiles with processors in [0, p). The derived fields (BlockOf, ElemProc,
// Work) are computed from the factor structure and elemWork.
func New(f *symbolic.Factor, elemWork []int64, p int, bounds []int, owner []int32) (*Schedule2D, error) {
	if p < 1 {
		return nil, fmt.Errorf("part2d: invalid processor count %d", p)
	}
	r := len(bounds) - 1
	if r < 0 || bounds[0] != 0 || bounds[r] != f.N {
		return nil, fmt.Errorf("part2d: bounds must run from 0 to %d", f.N)
	}
	for k := 0; k < r; k++ {
		if bounds[k] >= bounds[k+1] {
			return nil, fmt.Errorf("part2d: bounds not strictly increasing at %d", k)
		}
	}
	if len(owner) != r*(r+1)/2 {
		return nil, fmt.Errorf("part2d: %d tile owners for %d tiles", len(owner), r*(r+1)/2)
	}
	for t, o := range owner {
		if o < 0 || int(o) >= p {
			return nil, fmt.Errorf("part2d: tile %d owned by out-of-range processor %d", t, o)
		}
	}
	s := &Schedule2D{
		P:       p,
		Bounds:  append([]int(nil), bounds...),
		Owner:   append([]int32(nil), owner...),
		BlockOf: blockIndex(f.N, bounds),
		Work:    make([]int64, p),
	}
	s.ElemProc = make([]int32, f.NNZ())
	for j := 0; j < f.N; j++ {
		c := int(s.BlockOf[j])
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			proc := s.Owner[TileID(int(s.BlockOf[f.RowInd[q]]), c)]
			s.ElemProc[q] = proc
			s.Work[proc] += elemWork[q]
		}
	}
	return s, nil
}

// blockIndex expands interval boundaries into a per-index interval map.
func blockIndex(n int, bounds []int) []int32 {
	blockOf := make([]int32, n)
	for k := 0; k+1 < len(bounds); k++ {
		for i := bounds[k]; i < bounds[k+1]; i++ {
			blockOf[i] = int32(k)
		}
	}
	return blockOf
}

// TileWork accumulates elemWork per lower-triangle tile of the interval
// structure: element (i, j) is charged to tile (blockOf(i), blockOf(j)).
// This is the load vector the rect2d LPT owner assignment balances.
func TileWork(f *symbolic.Factor, elemWork []int64, bounds []int) []int64 {
	blockOf := blockIndex(f.N, bounds)
	r := len(bounds) - 1
	tw := make([]int64, r*(r+1)/2)
	for j := 0; j < f.N; j++ {
		c := int(blockOf[j])
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			tw[TileID(int(blockOf[f.RowInd[q]]), c)] += elemWork[q]
		}
	}
	return tw
}
