package part2d

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/strategy"
)

// TestCol2DMakespanBitIdentical1D is the acceptance pin on the 2D
// makespan simulators: on column-granular tilings (every 1D strategy
// lifted through col2d) the merged tile-segment task graph collapses to
// the 1D column task graph, so all four 2D simulators — static and
// dynamic, compute-only and comm-aware — return results bit-identical to
// their 1D counterparts at P in {1, 4, 16}.
func TestCol2DMakespanBitIdentical1D(t *testing.T) {
	sys := lapSys(t)
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	for _, base := range LiftBases() {
		opts := strategy.Options{Base: base}
		for _, p := range []int{1, 4, 16} {
			sc, err := strategy.Map(base, sys, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Map2D("col2d", sys, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			label := "col2d(" + base + ")"
			if got, want := Makespan(sys.Ops, sys.ElemWork, s2), strategy.Makespan(sys, opts, sc); got != want {
				t.Errorf("%s P=%d static: 2D %+v != 1D %+v", label, p, got, want)
			}
			if got, want := MakespanDynamic(sys.Ops, sys.ElemWork, s2), strategy.MakespanDynamic(sys, opts, sc); got != want {
				t.Errorf("%s P=%d dynamic: 2D %+v != 1D %+v", label, p, got, want)
			}
			if got, want := MakespanComm(sys.Ops, sys.ElemWork, s2, cm), strategy.MakespanComm(sys, opts, sc, cm); got != want {
				t.Errorf("%s P=%d static comm: 2D %+v != 1D %+v", label, p, got, want)
			}
			if got, want := MakespanCommDynamic(sys.Ops, sys.ElemWork, s2, cm), strategy.MakespanCommDynamic(sys, opts, sc, cm); got != want {
				t.Errorf("%s P=%d dynamic comm: 2D %+v != 1D %+v", label, p, got, want)
			}
		}
	}
}

// TestMakespan2DZeroModel locks the zero-CommModel contract for the
// native 2D mappers: a zero model charges nothing, so the comm-aware
// simulators reproduce the compute-only ones bit for bit.
func TestMakespan2DZeroModel(t *testing.T) {
	sys := lapSys(t)
	var zero exec.CommModel
	opts := strategy.Options{MaxMoves: 8}
	for _, name := range []string{"rect2d", "rect2dlpt", "rect2dcyclic"} {
		for _, p := range []int{4, 16} {
			s2, err := Map2D(name, sys, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := MakespanComm(sys.Ops, sys.ElemWork, s2, zero)
			want := Makespan(sys.Ops, sys.ElemWork, s2)
			got.Comm = want.Comm // Comm is the only field allowed to differ (it is 0 both ways)
			if got != want {
				t.Errorf("%s P=%d static: zero model %+v != compute-only %+v", name, p, got, want)
			}
			gd := MakespanCommDynamic(sys.Ops, sys.ElemWork, s2, zero)
			wd := MakespanDynamic(sys.Ops, sys.ElemWork, s2)
			gd.Comm = wd.Comm
			if gd != wd {
				t.Errorf("%s P=%d dynamic: zero model %+v != compute-only %+v", name, p, gd, wd)
			}
		}
	}
}

// TestTasks2DStructure verifies the merged tile-segment task graph's
// invariants on a native 2D schedule: topological ID order, strictly
// smaller predecessors, sorted duplicate-free predecessor lists, work
// conservation, and fetch volumes partitioning the 2D traffic total.
func TestTasks2DStructure(t *testing.T) {
	sys := lapSys(t)
	s2, err := Map2D("rect2dlpt", sys, 16, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tasks, elemTask := Tasks(sys.Ops, sys.ElemWork, s2)
	var total int64
	for i, task := range tasks {
		if task.ID != i {
			t.Fatalf("task %d has ID %d", i, task.ID)
		}
		total += task.Work
		for k, pr := range task.Preds {
			if int(pr) >= i {
				t.Fatalf("task %d depends on later task %d", i, pr)
			}
			if k > 0 && task.Preds[k-1] >= pr {
				t.Fatalf("task %d preds not strictly sorted: %v", i, task.Preds)
			}
		}
	}
	if total != sys.Total {
		t.Errorf("task work sums to %d, want %d", total, sys.Total)
	}
	for q, task := range elemTask {
		if s2.ElemProc[q] != tasks[task].Proc {
			t.Fatalf("element %d on proc %d but its task %d on %d",
				q, s2.ElemProc[q], task, tasks[task].Proc)
		}
	}
	tc := FetchStats(sys.Ops, s2, len(tasks), elemTask)
	if got, want := tc.TotalVol(), Traffic(sys.Ops, s2).Total; got != want {
		t.Errorf("fetch volumes sum to %d, 2D traffic total %d", got, want)
	}
}

// TestRect2DTrafficLAP30 is the acceptance regression: the rect2d
// descent's total 2D traffic never exceeds the column-flattened
// rectilinear schedule's on LAP30 at P in {16, 64} — keeping the tile
// structure is never worse than flattening it, and strictly better here.
func TestRect2DTrafficLAP30(t *testing.T) {
	sys := lapSys(t)
	for _, p := range []int{16, 64} {
		sc, err := strategy.Map("rectilinear", sys, p, strategy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		flat := strategy.Traffic(sys, strategy.Options{}, sc).Total
		s2, err := Map2D("rect2d", sys, p, strategy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := Traffic(sys.Ops, s2).Total
		if got >= flat {
			t.Errorf("P=%d: rect2d traffic %d did not improve on flattened %d (expected strict win)", p, got, flat)
		}
	}
}
