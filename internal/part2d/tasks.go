package part2d

import (
	"sort"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/traffic"
)

// Tasks builds the makespan task graph of a 2D schedule and the
// element-to-task map. The granularity is the merged tile segment: for
// every target column, its row-block segments are grouped by owning
// processor and each group is one task (a processor computes all of its
// elements of a target column as one unit, so no dependency separates two
// segments it owns). Dependencies follow the fan-out/fan-in structure of
// the tile updates: the task of target (i, j) depends on the tasks of its
// pair-update sources (i, k) (fan-out along block row block(i)) and
// (j, k) (fan-in along block column block(j)), and every off-diagonal
// group of a column depends on the column's diagonal group (the scale).
//
// On a column-granular tiling — every tile of a block column sharing one
// owner, as produced by the col2d lift — each column collapses to a
// single group whose work is the column work and whose predecessor set is
// exactly the column's row structure, i.e. the graph of
// exec.ColumnTasksMapped. The 2D makespan simulators are therefore
// bit-identical to the 1D ones there, which the regression tests pin at
// P in {1, 4, 16}.
func Tasks(ops *model.Ops, elemWork []int64, s *Schedule2D) ([]exec.Task, []int32) {
	f := ops.F
	elemTask := make([]int32, f.NNZ())
	var tasks []exec.Task
	// Per-column owner -> task lookup; columns touch at most P owners.
	type group struct {
		proc int32
		task int32
	}
	var groups []group
	for j := 0; j < f.N; j++ {
		groups = groups[:0]
		c := int(s.BlockOf[j])
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			proc := s.Owner[TileID(int(s.BlockOf[f.RowInd[q]]), c)]
			task := int32(-1)
			for _, g := range groups {
				if g.proc == proc {
					task = g.task
					break
				}
			}
			if task < 0 {
				task = int32(len(tasks))
				tasks = append(tasks, exec.Task{ID: int(task), Proc: proc})
				groups = append(groups, group{proc: proc, task: task})
			}
			elemTask[q] = task
			tasks[task].Work += elemWork[q]
		}
	}
	// Predecessors: one pass over the update enumeration. stamp[src] is a
	// best-effort duplicate filter (the final sort+dedup makes it exact);
	// it is keyed by the last target a source task was recorded for, which
	// catches the long runs of identical (target task, source task) pairs
	// the column-driven enumeration produces.
	preds := make([][]int32, len(tasks))
	stamp := make([]int32, len(tasks))
	for i := range stamp {
		stamp[i] = -1
	}
	add := func(tgt, src int32) {
		if src == tgt || stamp[src] == tgt {
			return
		}
		stamp[src] = tgt
		preds[tgt] = append(preds[tgt], src)
	}
	ops.ForEachUpdate(func(u model.Update) {
		t := elemTask[u.Tgt]
		add(t, elemTask[u.SrcI])
		add(t, elemTask[u.SrcJ])
	})
	ops.ForEachScale(func(tgt, diag int32) {
		add(elemTask[tgt], elemTask[diag])
	})
	for i := range preds {
		p := preds[i]
		sort.Slice(p, func(a, b int) bool { return p[a] < p[b] })
		out := p[:0]
		for k, v := range p {
			if k == 0 || v != p[k-1] {
				out = append(out, v)
			}
		}
		tasks[i].Preds = out
	}
	return tasks, elemTask
}

// FetchStats attributes the 2D schedule's non-local fetches to the merged
// tile-segment tasks of Tasks, with consolidated message counts (one
// message per distinct source processor feeding a task). The volumes
// partition Traffic(ops, s).Total exactly — the property that lets the
// comm-aware makespan charge every fetch exactly once.
func FetchStats(ops *model.Ops, s *Schedule2D, ntasks int, elemTask []int32) *traffic.TaskComm {
	return traffic.FetchStatsTasks(ops, s.Schedule(), ntasks,
		func(tgt int32) int32 { return elemTask[tgt] })
}

// Makespan simulates dependency-delay execution of a 2D schedule with the
// static-order list simulation over the merged tile-segment tasks.
func Makespan(ops *model.Ops, elemWork []int64, s *Schedule2D) exec.SimResult {
	return MakespanProbe(ops, elemWork, s, nil)
}

// MakespanProbe is Makespan with a tracing probe attached (one
// exec.TaskEvent per merged tile-segment task). A nil probe reproduces
// Makespan bit for bit.
func MakespanProbe(ops *model.Ops, elemWork []int64, s *Schedule2D, probe exec.Probe) exec.SimResult {
	tasks, _ := Tasks(ops, elemWork, s)
	return exec.SimulateMakespanProbe(tasks, s.P, probe)
}

// MakespanDynamic is Makespan with the dynamic critical-path-priority
// ready queue on each processor.
func MakespanDynamic(ops *model.Ops, elemWork []int64, s *Schedule2D) exec.SimResult {
	return MakespanDynamicProbe(ops, elemWork, s, nil)
}

// MakespanDynamicProbe is MakespanDynamic with a tracing probe attached.
func MakespanDynamicProbe(ops *model.Ops, elemWork []int64, s *Schedule2D, probe exec.Probe) exec.SimResult {
	tasks, _ := Tasks(ops, elemWork, s)
	return exec.SimulateMakespanDynamicProbe(tasks, s.P, probe)
}

// MakespanComm simulates dependency-delay execution with
// communication-aware task durations: every tile-segment task is charged
// its compute work plus cm.Cost of the fetch volume and message count
// FetchStats attributes to it. With a zero model the result is identical
// to Makespan.
func MakespanComm(ops *model.Ops, elemWork []int64, s *Schedule2D, cm exec.CommModel) exec.SimResult {
	return MakespanCommProbe(ops, elemWork, s, cm, nil)
}

// MakespanCommProbe is MakespanComm with a tracing probe attached; events
// split each task's duration into its compute and comm shares.
func MakespanCommProbe(ops *model.Ops, elemWork []int64, s *Schedule2D, cm exec.CommModel, probe exec.Probe) exec.SimResult {
	tasks, elemTask := Tasks(ops, elemWork, s)
	tc := FetchStats(ops, s, len(tasks), elemTask)
	return exec.SimulateMakespanCommProbe(tasks, s.P, cm, tc.Vol, tc.Msgs, probe)
}

// MakespanCommDynamic is MakespanComm with the dynamic ready queue; with a
// zero model it is identical to MakespanDynamic.
func MakespanCommDynamic(ops *model.Ops, elemWork []int64, s *Schedule2D, cm exec.CommModel) exec.SimResult {
	return MakespanCommDynamicProbe(ops, elemWork, s, cm, nil)
}

// MakespanCommDynamicProbe is MakespanCommDynamic with a tracing probe
// attached; events split each task's duration into its compute and comm
// shares.
func MakespanCommDynamicProbe(ops *model.Ops, elemWork []int64, s *Schedule2D, cm exec.CommModel, probe exec.Probe) exec.SimResult {
	tasks, elemTask := Tasks(ops, elemWork, s)
	tc := FetchStats(ops, s, len(tasks), elemTask)
	return exec.SimulateMakespanDynamicCommProbe(tasks, s.P, cm, tc.Vol, tc.Msgs, probe)
}
