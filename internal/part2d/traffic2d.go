package part2d

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/traffic"
)

// TrafficResult is the outcome of the 2D tile-granular data-traffic
// simulation. The deduplication rule is exactly traffic.Simulate's — one
// unit per distinct (processor, non-local element) first fetch — but each
// fetch is additionally attributed to the tile of the target element that
// first required it and classified by the direction it travels:
//
//   - FanOut: the fetched element is a pair-update source (i, k) whose
//     tile shares the target tile's *row* block — the fan-out of panel
//     column k's segment to the tile owners along block row block(i).
//   - FanIn: the fetched element is a pair-update source (j, k) or the
//     scaling diagonal (j, j), whose tile's row block equals the target
//     tile's *column* block — data converging along the column of tiles of
//     block column block(j), toward its diagonal-block owner.
//
// Every first fetch is classified exactly one way, so
// sum(FanOut) + sum(FanIn) == Total == traffic.Simulate(ops,
// s.Schedule()).Total — the 2D analogue of the traffic.ColumnRefs /
// Simulate identity, pinned by the conservation tests.
type TrafficResult struct {
	P int
	// R is the number of diagonal intervals of the schedule's tiling.
	R int
	// Total is the system-wide deduplicated data traffic.
	Total int64
	// FanOut[t] counts the row-direction fetches attributed to tile t
	// (packed lower-triangle index, see TileID).
	FanOut []int64
	// FanIn[t] counts the column-direction fetches attributed to tile t.
	FanIn []int64
	// PerProc[p] is the traffic charged to processor p (its fetches).
	PerProc []int64
}

// TotalFanOut sums the row-direction volumes over all tiles.
func (r *TrafficResult) TotalFanOut() int64 { return sum(r.FanOut) }

// TotalFanIn sums the column-direction volumes over all tiles.
func (r *TrafficResult) TotalFanIn() int64 { return sum(r.FanIn) }

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the mean traffic per processor.
func (r *TrafficResult) Mean() float64 { return float64(r.Total) / float64(r.P) }

// Traffic runs the 2D tile-granular traffic simulation. The factor ops
// must be built over the same symbolic factor the schedule was computed
// from.
func Traffic(ops *model.Ops, s *Schedule2D) *TrafficResult {
	f := ops.F
	nnz := f.NNZ()
	if len(s.ElemProc) != nnz {
		panic(fmt.Sprintf("part2d: schedule covers %d elements, factor has %d", len(s.ElemProc), nnz))
	}
	res := &TrafficResult{
		P:       s.P,
		R:       s.R(),
		FanOut:  make([]int64, s.Tiles()),
		FanIn:   make([]int64, s.Tiles()),
		PerProc: make([]int64, s.P),
	}
	// tileOf maps a factor nonzero to its packed tile index.
	colOf := make([]int32, nnz)
	for j := 0; j < f.N; j++ {
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			colOf[q] = int32(j)
		}
	}
	tileOf := func(q int32) int {
		return TileID(int(s.BlockOf[f.RowInd[q]]), int(s.BlockOf[colOf[q]]))
	}
	fetched := traffic.NewFetchDedup(s.P, nnz)
	access := func(elem, tgt int32, fanOut bool) {
		proc := s.ElemProc[tgt]
		if s.ElemProc[elem] == proc || !fetched.FirstFetch(elem, proc) {
			return
		}
		res.Total++
		res.PerProc[proc]++
		if fanOut {
			res.FanOut[tileOf(tgt)]++
		} else {
			res.FanIn[tileOf(tgt)]++
		}
	}
	ops.ForEachUpdate(func(u model.Update) {
		// Source (i, k) sits in tile (block(i), block(k)) — the target's
		// row of tiles; source (j, k) sits in tile (block(j), block(k)) —
		// the target's column of tiles.
		access(u.SrcI, u.Tgt, true)
		access(u.SrcJ, u.Tgt, false)
	})
	ops.ForEachScale(func(tgt, diag int32) {
		access(diag, tgt, false)
	})
	return res
}
