package part2d

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/strategy"
	"repro/internal/traffic"
)

// Mapper2D is one 2D partitioning/mapping strategy: Map2D assigns the
// factorization work of sys to p processors at tile granularity and
// returns the 2D schedule. Mappers consume the same strategy.Sys and
// strategy.Options as the 1D registry, so the two registries share every
// analysis product and knob.
type Mapper2D interface {
	Name() string
	Map2D(sys *strategy.Sys, p int, opts strategy.Options) (*Schedule2D, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Mapper2D)
)

// Register2D adds a 2D strategy to the registry. It panics on an empty
// name or a duplicate registration, mirroring strategy.Register.
func Register2D(m Mapper2D) {
	regMu.Lock()
	defer regMu.Unlock()
	name := m.Name()
	if name == "" {
		panic("part2d: Register2D with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("part2d: Register2D called twice for %q", name))
	}
	registry[name] = m
}

// Lookup2D returns the registered 2D strategy with the given name.
func Lookup2D(name string) (Mapper2D, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := registry[name]
	return m, ok
}

// Names2D returns the sorted names of all registered 2D strategies.
func Names2D() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	//repro:allow maporder -- key collection for the sort.Strings below; iteration order never escapes
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkProcs mirrors strategy.checkProcs for the 2D entry points: a
// non-positive P is a caller error, reported before any mapper runs.
func checkProcs(p int) error {
	if p < 1 {
		return fmt.Errorf("part2d: invalid processor count %d", p)
	}
	return nil
}

// Map2D runs the named 2D strategy, returning a descriptive error when
// the name is unknown.
func Map2D(name string, sys *strategy.Sys, p int, opts strategy.Options) (*Schedule2D, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	m, ok := Lookup2D(name)
	if !ok {
		return nil, fmt.Errorf("part2d: unknown 2D strategy %q (registered: %s)",
			name, strings.Join(Names2D(), ", "))
	}
	return m.Map2D(sys, p, opts)
}

// rectBounds computes the shared diagonal intervals of the symmetric
// rectilinear partition (the existing 1D rectilinear cuts) and compresses
// away the empty trailing intervals RectilinearCuts pads with.
func rectBounds(sys *strategy.Sys, p int) []int {
	cuts := strategy.RectilinearCuts(sys.Ops, sys.ElemWork, p)
	bounds := cuts[:1]
	for _, b := range cuts[1:] {
		if b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	return bounds
}

// rect2dMapper keeps the 2D tile structure the 1D rectilinear mapper
// flattens away. The shared diagonal intervals come from the same
// binary-search cuts (minimal maximum tile work); ownership starts from
// the column-flattened assignment (every tile of block column c to
// processor c, exactly the 1D rectilinear schedule) and then descends:
// off-diagonal tiles, heaviest first, are tried on the owner of their
// row block's diagonal tile and on the least-loaded processor, and a
// move is kept only when the simulated deduplicated traffic strictly
// decreases, or stays equal while the load balance strictly improves.
// The result is a genuinely 2D ownership whose total traffic never
// exceeds the column-flattened schedule's — by construction, and pinned
// by the Ext-T regression on LAP30. Options.MaxMoves caps the number of
// trial evaluations (<= 0 selects the default of 128, the same knob the
// 1D refine strategy uses).
type rect2dMapper struct{}

func (rect2dMapper) Name() string { return "rect2d" }

// defaultRect2DEvals bounds the trial simulations of the rect2d descent;
// each trial re-runs the full traffic simulation, the same cost profile
// as the 1D refine strategy's traffic objective.
const defaultRect2DEvals = 128

func (rect2dMapper) Map2D(sys *strategy.Sys, p int, opts strategy.Options) (*Schedule2D, error) {
	if p < 1 {
		return nil, fmt.Errorf("part2d: invalid processor count %d", p)
	}
	bounds := rectBounds(sys, p)
	budget := opts.MaxMoves
	if budget <= 0 {
		budget = defaultRect2DEvals
	}
	owner := trafficGuardedOwners(sys, p, bounds, budget, opts.Search)
	return New(sys.F, sys.ElemWork, p, bounds, owner)
}

// trafficGuardedOwners runs the rect2d descent: flattened start, then
// traffic-guarded single-tile moves, heaviest tiles first, within the
// evaluation budget. Element ownership is maintained incrementally so
// each trial costs one traffic simulation. tel, when non-nil, records one
// trial per evaluation and the traffic trajectory of the kept moves.
func trafficGuardedOwners(sys *strategy.Sys, p int, bounds []int, budget int, tel *obs.SearchTelemetry) []int32 {
	f := sys.F
	r := len(bounds) - 1
	tw := TileWork(f, sys.ElemWork, bounds)
	blockOf := blockIndex(f.N, bounds)
	owner := make([]int32, len(tw))
	rowOf := make([]int, len(tw))
	for rr := 0; rr < r; rr++ {
		for cc := 0; cc <= rr; cc++ {
			owner[TileID(rr, cc)] = int32(cc)
			rowOf[TileID(rr, cc)] = rr
		}
	}
	if p < 2 || r < 2 {
		return owner
	}
	// Incremental state: the element list of every tile, the derived
	// element ownership and per-processor loads.
	elems := make([][]int32, len(tw))
	elemProc := make([]int32, f.NNZ())
	load := make([]int64, p)
	for j := 0; j < f.N; j++ {
		c := int(blockOf[j])
		for q := f.ColPtr[j]; q < f.ColPtr[j+1]; q++ {
			id := TileID(int(blockOf[f.RowInd[q]]), c)
			elems[id] = append(elems[id], int32(q))
			elemProc[q] = owner[id]
			load[owner[id]] += sys.ElemWork[q]
		}
	}
	sc := &sched.Schedule{P: p, ElemProc: elemProc, Work: load}
	setOwner := func(id int, dst int32) {
		src := owner[id]
		owner[id] = dst
		load[src] -= tw[id]
		load[dst] += tw[id]
		for _, q := range elems[id] {
			elemProc[q] = dst
		}
	}
	sumsq := func() float64 {
		var s float64
		for _, l := range load {
			s += float64(l) * float64(l)
		}
		return s
	}
	cur := traffic.Simulate(sys.Ops, sc).Total
	tel.Objective(cur)
	offs := make([]int, 0, len(tw)-r)
	for rr := 1; rr < r; rr++ {
		for cc := 0; cc < rr; cc++ {
			offs = append(offs, TileID(rr, cc))
		}
	}
	sort.Slice(offs, func(a, b int) bool {
		if tw[offs[a]] != tw[offs[b]] {
			return tw[offs[a]] > tw[offs[b]]
		}
		return offs[a] < offs[b]
	})
	evals := 0
	for _, id := range offs {
		if evals >= budget {
			break
		}
		least := int32(0)
		for k := 1; k < p; k++ {
			if load[k] < load[least] {
				least = int32(k)
			}
		}
		// Diagonal tiles never move, so the row block's diagonal owner is
		// the row's "home" processor — the fan-out destination the tile's
		// sources already visit.
		home := owner[TileID(rowOf[id], rowOf[id])]
		for ci, dst := range [...]int32{home, least} {
			src := owner[id]
			if dst == src || (ci == 1 && dst == home) {
				continue // never re-simulate an identical trial
			}
			before := sumsq()
			setOwner(id, dst)
			evals++
			nt := traffic.Simulate(sys.Ops, sc).Total
			if nt < cur || (nt == cur && sumsq() < before) {
				cur = nt
				tel.Trial(true)
				tel.Objective(nt)
				break
			}
			setOwner(id, src)
			tel.Trial(false)
			if evals >= budget {
				break
			}
		}
	}
	return owner
}

// rect2dlptMapper shares rect2d's diagonal intervals but assigns every
// lower-triangle tile by greedy tile-work LPT — heaviest tile first onto
// the least-loaded processor. It is the balance extreme of the 2D family:
// near-perfect load balance (tiles are much finer than block columns) at
// the cost of scattering each block column's readers, hence more
// deduplicated traffic than rect2d's guarded descent.
type rect2dlptMapper struct{}

func (rect2dlptMapper) Name() string { return "rect2dlpt" }

func (rect2dlptMapper) Map2D(sys *strategy.Sys, p int, opts strategy.Options) (*Schedule2D, error) {
	if p < 1 {
		return nil, fmt.Errorf("part2d: invalid processor count %d", p)
	}
	bounds := rectBounds(sys, p)
	tw := TileWork(sys.F, sys.ElemWork, bounds)
	order := make([]int, len(tw))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if tw[order[a]] != tw[order[b]] {
			return tw[order[a]] > tw[order[b]]
		}
		return order[a] < order[b]
	})
	owner := make([]int32, len(tw))
	load := make([]int64, p)
	for _, t := range order {
		least := 0
		for k := 1; k < p; k++ {
			if load[k] < load[least] {
				least = k
			}
		}
		owner[t] = int32(least)
		load[least] += tw[t]
	}
	return New(sys.F, sys.ElemWork, p, bounds, owner)
}

// rect2dcyclicMapper uses the same rectilinear diagonal intervals but
// assigns tile owners by 2D wrap over a pr x pc processor grid (pr the
// largest divisor of p at most sqrt(p)): tile (r, c) goes to processor
// (r mod pr)*pc + (c mod pc), the classical 2D block-cyclic layout that
// bounds every tile row's and tile column's owner set by pc and pr.
type rect2dcyclicMapper struct{}

func (rect2dcyclicMapper) Name() string { return "rect2dcyclic" }

func (rect2dcyclicMapper) Map2D(sys *strategy.Sys, p int, opts strategy.Options) (*Schedule2D, error) {
	if p < 1 {
		return nil, fmt.Errorf("part2d: invalid processor count %d", p)
	}
	bounds := rectBounds(sys, p)
	r := len(bounds) - 1
	pr := 1
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	pc := p / pr
	owner := make([]int32, r*(r+1)/2)
	for rr := 0; rr < r; rr++ {
		for cc := 0; cc <= rr; cc++ {
			owner[TileID(rr, cc)] = int32((rr%pr)*pc + cc%pc)
		}
	}
	return New(sys.F, sys.ElemWork, p, bounds, owner)
}

// LiftBases lists the shipped column-granular 1D strategies the col2d
// bridge lifts — the single source the Ext-T table, the tile2d sweep,
// the example and the bit-identity tests all enumerate. Block-granular
// strategies (block, blockgreedy, refine over them) are excluded because
// Lift rejects schedules that split a column across processors; a new
// column-granular 1D strategy joins every 2D surface by being added
// here.
func LiftBases() []string {
	return []string{"wrap", "contiguous", "contigtotal", "rectilinear", "subcube", "blockcyclic"}
}

// col2dMapper lifts any registered column-granular 1D strategy into the
// 2D subsystem: it runs the base strategy (opts.Base, default "wrap"),
// derives the maximal runs of constant column ownership as the diagonal
// intervals, and assigns every tile of a block column to the column's 1D
// owner. The lifted schedule's element ownership is identical to the 1D
// schedule's, its 2D traffic total equals the 1D simulated total, and the
// 2D makespan simulators are bit-identical to the 1D ones — the bridge
// that makes every existing mapper comparable in the 2D simulators.
type col2dMapper struct{}

func (col2dMapper) Name() string { return "col2d" }

func (col2dMapper) Map2D(sys *strategy.Sys, p int, opts strategy.Options) (*Schedule2D, error) {
	if err := checkProcs(p); err != nil {
		return nil, err
	}
	base := opts.Base
	if base == "" {
		base = "wrap"
	}
	sc, err := strategy.Map(base, sys, p, opts)
	if err != nil {
		return nil, err
	}
	return Lift(sys, sc, base)
}

// Lift converts a column-granular 1D schedule into the equivalent 2D tile
// schedule (the col2d bridge): diagonal intervals are the maximal runs of
// constant column ownership, and every tile of a block column belongs to
// the column's 1D owner. It rejects schedules over a different factor
// (relaxed partitions) and schedules that split a column across
// processors, neither of which is expressible as tile ownership over
// shared column intervals. name labels errors.
func Lift(sys *strategy.Sys, sc *sched.Schedule, name string) (*Schedule2D, error) {
	f := sys.F
	if len(sc.ElemProc) != f.NNZ() {
		return nil, fmt.Errorf("part2d: %q works on a relaxed factor (%d elements vs %d); lift requires the analysis factor",
			name, len(sc.ElemProc), f.NNZ())
	}
	owner1d := make([]int32, f.N)
	for j := 0; j < f.N; j++ {
		o := sc.ElemProc[f.ColPtr[j]]
		for q := f.ColPtr[j] + 1; q < f.ColPtr[j+1]; q++ {
			if sc.ElemProc[q] != o {
				return nil, fmt.Errorf("part2d: %q is not column-granular (column %d split across processors)", name, j)
			}
		}
		owner1d[j] = o
	}
	bounds := []int{0}
	for j := 1; j < f.N; j++ {
		if owner1d[j] != owner1d[j-1] {
			bounds = append(bounds, j)
		}
	}
	if f.N > 0 {
		bounds = append(bounds, f.N)
	}
	r := len(bounds) - 1
	owner := make([]int32, r*(r+1)/2)
	for cc := 0; cc < r; cc++ {
		o := owner1d[bounds[cc]]
		for rr := cc; rr < r; rr++ {
			owner[TileID(rr, cc)] = o
		}
	}
	return New(sys.F, sys.ElemWork, sc.P, bounds, owner)
}

func init() {
	Register2D(rect2dMapper{})
	Register2D(rect2dlptMapper{})
	Register2D(rect2dcyclicMapper{})
	Register2D(col2dMapper{})
}
