package part2d

// Probe regression for the 2D tile simulators: tracing must not perturb
// any of the four makespan variants, and the degenerate-geometry edge
// cases (P far above the tile count) must keep Idle non-negative and
// Efficiency within (0, 1].

import (
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/strategy"
)

// TestProbe2DBitIdentity: every native 2D mapper at P in {1, 4, 16} on
// LAP30 returns bit-identical SimResults untraced, with a nil probe, and
// with a Tracer attached, for all four 2D simulators; the event stream
// covers every merged tile-segment task exactly once and satisfies the
// duration and stall/cause invariants.
func TestProbe2DBitIdentity(t *testing.T) {
	sys := lapSys(t)
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	for _, name := range []string{"rect2d", "rect2dcyclic", "rect2dlpt"} {
		for _, p := range []int{1, 4, 16} {
			s2, err := Map2D(name, sys, p, strategy.Options{})
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, p, err)
			}
			tasks, _ := Tasks(sys.Ops, sys.ElemWork, s2)
			ntasks := len(tasks)
			variants := []struct {
				kind   string
				plain  func() exec.SimResult
				probed func(exec.Probe) exec.SimResult
			}{
				{"static",
					func() exec.SimResult { return Makespan(sys.Ops, sys.ElemWork, s2) },
					func(pr exec.Probe) exec.SimResult { return MakespanProbe(sys.Ops, sys.ElemWork, s2, pr) }},
				{"dynamic",
					func() exec.SimResult { return MakespanDynamic(sys.Ops, sys.ElemWork, s2) },
					func(pr exec.Probe) exec.SimResult { return MakespanDynamicProbe(sys.Ops, sys.ElemWork, s2, pr) }},
				{"comm",
					func() exec.SimResult { return MakespanComm(sys.Ops, sys.ElemWork, s2, cm) },
					func(pr exec.Probe) exec.SimResult {
						return MakespanCommProbe(sys.Ops, sys.ElemWork, s2, cm, pr)
					}},
				{"commdynamic",
					func() exec.SimResult { return MakespanCommDynamic(sys.Ops, sys.ElemWork, s2, cm) },
					func(pr exec.Probe) exec.SimResult {
						return MakespanCommDynamicProbe(sys.Ops, sys.ElemWork, s2, cm, pr)
					}},
			}
			for _, v := range variants {
				label := fmt.Sprintf("%s P=%d %s", name, p, v.kind)
				want := v.plain()
				if got := v.probed(nil); got != want {
					t.Errorf("%s: nil probe %+v != untraced %+v", label, got, want)
				}
				tr := obs.NewTracer()
				if got := v.probed(tr); got != want {
					t.Errorf("%s: traced %+v != untraced %+v", label, got, want)
				}
				if len(tr.Events) != ntasks {
					t.Errorf("%s: %d events for %d tasks", label, len(tr.Events), ntasks)
					continue
				}
				var total int64
				for _, ev := range tr.Events {
					if ev.Proc < 0 || int(ev.Proc) >= p {
						t.Fatalf("%s: task %d on processor %d of %d", label, ev.Task, ev.Proc, p)
					}
					if ev.Finish-ev.Start != ev.Work+ev.Comm {
						t.Fatalf("%s: task %d duration %d != work %d + comm %d",
							label, ev.Task, ev.Finish-ev.Start, ev.Work, ev.Comm)
					}
					if (ev.Stall > 0) != (ev.Cause >= 0) {
						t.Fatalf("%s: task %d stall %d with cause %d", label, ev.Task, ev.Stall, ev.Cause)
					}
					total += ev.Work + ev.Comm
				}
				if total != want.TotalWork {
					t.Errorf("%s: event durations sum to %d, TotalWork %d", label, total, want.TotalWork)
				}
			}
		}
	}
}

// TestMakespan2DDegenerateGeometry pins the SimResult edge cases on the
// 2D side: with far more processors than tiles (a 3x3 grid on P=16) every
// simulator must keep Idle = P*Makespan - TotalWork non-negative and
// Efficiency in (0, 1]; tracing the runs stays bit-identical.
func TestMakespan2DDegenerateGeometry(t *testing.T) {
	sys := newTestSys(t, gen.Grid9(3, 3))
	cm := exec.CommModel{Alpha: 2, Beta: 10}
	const p = 16
	for _, name := range []string{"rect2d", "rect2dcyclic", "rect2dlpt"} {
		s2, err := Map2D(name, sys, p, strategy.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for kind, res := range map[string]exec.SimResult{
			"static":      Makespan(sys.Ops, sys.ElemWork, s2),
			"dynamic":     MakespanDynamic(sys.Ops, sys.ElemWork, s2),
			"comm":        MakespanComm(sys.Ops, sys.ElemWork, s2, cm),
			"commdynamic": MakespanCommDynamic(sys.Ops, sys.ElemWork, s2, cm),
		} {
			if res.Idle < 0 {
				t.Errorf("%s %s: negative idle %d", name, kind, res.Idle)
			}
			if res.Efficiency <= 0 || res.Efficiency > 1 {
				t.Errorf("%s %s: efficiency %g outside (0, 1]", name, kind, res.Efficiency)
			}
			if res.Makespan > 0 && res.Idle != int64(res.P)*res.Makespan-res.TotalWork {
				t.Errorf("%s %s: idle %d != P*Makespan - TotalWork = %d",
					name, kind, res.Idle, int64(res.P)*res.Makespan-res.TotalWork)
			}
		}
	}
}
