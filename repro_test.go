package repro_test

import (
	"bytes"
	"math"
	"testing"

	"repro"
)

func TestPipelineEndToEnd(t *testing.T) {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		t.Fatal(err)
	}
	if sys.F.NNZ() < sys.A.NNZ() {
		t.Fatal("factor smaller than matrix")
	}
	part := sys.Partition(repro.PartitionOptions{Grain: 25, MinClusterWidth: 4})
	block := sys.BlockSchedule(part, 16)
	wrap := sys.WrapSchedule(16)
	bt, wt := sys.Traffic(block), sys.Traffic(wrap)
	if bt.Total >= wt.Total {
		t.Errorf("block traffic %d not below wrap %d", bt.Total, wt.Total)
	}
	if block.Imbalance() <= wrap.Imbalance() {
		t.Errorf("block imbalance %.3f not above wrap %.3f (the paper's trade-off)",
			block.Imbalance(), wrap.Imbalance())
	}
}

func TestSolveOriginalSystem(t *testing.T) {
	a := repro.Grid9(12, 12)
	sys, err := repro.Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64((i*7)%13) - 6
	}
	x, err := sys.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := sys.ResidualNorm(x, b); r > 1e-10 {
		t.Errorf("residual %g", r)
	}
}

func TestSolveRejectsBadRHS(t *testing.T) {
	sys, err := repro.Analyze(repro.Grid5(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Solve(make([]float64, 5)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	sys, err := repro.Analyze(repro.Grid9(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	part := sys.Partition(repro.PartitionOptions{Grain: 4, MinClusterWidth: 4})
	sc := sys.BlockSchedule(part, 6)
	pv, err := sys.ParallelFactorize(part, sc)
	if err != nil {
		t.Fatal(err)
	}
	chol, err := sys.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	for k := range pv {
		if math.Abs(pv[k]-chol.Val[k]) > 1e-9 {
			t.Fatalf("value %d differs: %g vs %g", k, pv[k], chol.Val[k])
		}
	}
}

func TestMakespanAPIs(t *testing.T) {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		t.Fatal(err)
	}
	part := sys.Partition(repro.PartitionOptions{})
	sc := sys.BlockSchedule(part, 8)
	bm := sys.BlockMakespan(part, sc)
	wm := sys.WrapMakespan(8)
	if bm.TotalWork != wm.TotalWork || bm.TotalWork != sys.TotalWork() {
		t.Errorf("work totals disagree: %d %d %d", bm.TotalWork, wm.TotalWork, sys.TotalWork())
	}
	if bm.Makespan <= 0 || wm.Makespan <= 0 {
		t.Error("nonpositive makespan")
	}
}

func TestHBRoundTripViaPublicAPI(t *testing.T) {
	m, tm, err := repro.BuildMatrix("dwt512")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.WriteHB(&buf, m, tm.Description, tm.Name); err != nil {
		t.Fatal(err)
	}
	got, hdr, err := repro.ReadHB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.NRow != m.N || got.NNZ() != m.NNZ() {
		t.Errorf("round trip lost data: %+v", hdr)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	bad := &repro.Matrix{N: 2, ColPtr: []int{0, 1}, RowInd: []int{0}}
	if _, err := repro.Analyze(bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestFigure2MatrixSize(t *testing.T) {
	if m := repro.FEGrid5(5); m.N != 41 {
		t.Errorf("FEGrid5(5) has %d unknowns, want 41 (Figure 2)", m.N)
	}
}

func TestAnalyzeOrderedVariants(t *testing.T) {
	a := repro.Grid9(10, 10)
	for _, perm := range [][]int{
		repro.MMDOrder(a), repro.RCMOrder(a), repro.NDOrder(a, 16),
	} {
		sys, err := repro.AnalyzeOrdered(a, perm)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, a.N)
		b[3] = 1
		x, err := sys.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := sys.ResidualNorm(x, b); r > 1e-9 {
			t.Errorf("residual %g", r)
		}
	}
	if _, err := repro.AnalyzeOrdered(a, []int{0, 1}); err == nil {
		t.Fatal("expected permutation error")
	}
}

func TestPostOrderPermAPI(t *testing.T) {
	a := repro.LAP30()
	perm, err := repro.PostOrderPerm(a, repro.MMDOrder(a))
	if err != nil {
		t.Fatal(err)
	}
	sys1, _ := repro.Analyze(a)
	sys2, err := repro.AnalyzeOrdered(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	if sys1.F.NNZ() != sys2.F.NNZ() {
		t.Errorf("postorder changed fill: %d vs %d", sys1.F.NNZ(), sys2.F.NNZ())
	}
}

func TestGreedyScheduleAPI(t *testing.T) {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		t.Fatal(err)
	}
	part := sys.Partition(repro.PartitionOptions{Grain: 25})
	s34 := sys.BlockSchedule(part, 16)
	sgr := sys.BlockScheduleGreedy(part, 16)
	if sgr.Imbalance() > s34.Imbalance() {
		t.Errorf("greedy A %.3f above §3.4 A %.3f on LAP30", sgr.Imbalance(), s34.Imbalance())
	}
	dyn := sys.BlockMakespanDynamic(part, s34)
	sta := sys.BlockMakespan(part, s34)
	if dyn.Makespan > sta.Makespan {
		t.Errorf("dynamic makespan %d above static %d", dyn.Makespan, sta.Makespan)
	}
}

func TestRelaxedPartitionAPI(t *testing.T) {
	a := repro.LAP30()
	perm, err := repro.PostOrderPerm(a, repro.MMDOrder(a))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := repro.AnalyzeOrdered(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	part := sys.Partition(repro.PartitionOptions{Grain: 25, RelaxZeros: 0.1})
	if part.Relax.Merges == 0 {
		t.Error("relaxation produced no merges on postordered LAP30")
	}
	sc := sys.BlockSchedule(part, 16)
	tr := sys.TrafficPart(part, sc)
	if tr.Total <= 0 {
		t.Error("no traffic measured on relaxed partition")
	}
}

func TestSolveParallelEndToEnd(t *testing.T) {
	a := repro.Grid9(14, 14)
	sys, err := repro.Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	part := sys.Partition(repro.PartitionOptions{Grain: 16, MinClusterWidth: 4})
	sc := sys.BlockSchedule(part, 6)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%11) - 5
	}
	x, err := sys.SolveParallel(part, sc, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := sys.ResidualNorm(x, b); r > 1e-9 {
		t.Errorf("parallel solve residual %g", r)
	}
	// Agreement with the sequential pipeline.
	want, err := sys.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Fatalf("component %d: parallel %g vs sequential %g", i, x[i], want[i])
		}
	}
	if _, err := sys.SolveParallel(part, sc, make([]float64, 3)); err == nil {
		t.Fatal("expected rhs length error")
	}
}

func TestSimulateDAGAPI(t *testing.T) {
	tasks := []repro.Task{
		{ID: 0, Proc: 0, Work: 4},
		{ID: 1, Proc: 1, Work: 4},
		{ID: 2, Proc: 0, Work: 4, Preds: []int32{0, 1}},
	}
	if cp := repro.CriticalPath(tasks); cp != 8 {
		t.Fatalf("critical path %d, want 8", cp)
	}
	st := repro.SimulateDAG(tasks, 2)
	dy := repro.SimulateDAGDynamic(tasks, 2)
	if st.Makespan != 8 || dy.Makespan != 8 {
		t.Fatalf("makespans %d/%d, want 8", st.Makespan, dy.Makespan)
	}
	if st.TotalWork != 12 {
		t.Fatalf("total work %d", st.TotalWork)
	}
}

func TestTrafficPartConsistentWhenUnrelaxed(t *testing.T) {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		t.Fatal(err)
	}
	part := sys.Partition(repro.PartitionOptions{Grain: 25})
	sc := sys.BlockSchedule(part, 16)
	a := sys.Traffic(sc)
	b := sys.TrafficPart(part, sc)
	if a.Total != b.Total {
		t.Fatalf("Traffic %d != TrafficPart %d on unrelaxed partition", a.Total, b.Total)
	}
}

// TestCommMakespanPublicAPI exercises the communication-aware makespan
// surface end to end: a zero CommModel reproduces the compute-only
// simulators exactly, fetch stats conserve the traffic total, and with
// communication charged (alpha > 0) the block scheme beats wrap in
// unified time at large P — the paper's central claim, which neither
// metric shows alone.
func TestCommMakespanPublicAPI(t *testing.T) {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		t.Fatal(err)
	}
	opts := repro.StrategyOptions{Part: repro.PartitionOptions{Grain: 25, MinClusterWidth: 4}}
	cm := repro.CommModel{Alpha: 2, Beta: 10}
	spans := map[string]map[string]int64{} // strategy -> {"compute","comm"} at P=32
	for _, name := range []string{"block", "wrap"} {
		for _, p := range []int{1, 4, 16, 32} {
			sc, err := sys.MapStrategy(name, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sys.StrategyMakespanComm(opts, sc, repro.CommModel{}), sys.StrategyMakespan(opts, sc); got != want {
				t.Errorf("%s P=%d: zero-model static %+v != compute-only %+v", name, p, got, want)
			}
			if got, want := sys.StrategyMakespanCommDynamic(opts, sc, repro.CommModel{}), sys.StrategyMakespanDynamic(opts, sc); got != want {
				t.Errorf("%s P=%d: zero-model dynamic %+v != compute-only %+v", name, p, got, want)
			}
			tc := sys.StrategyFetchStats(opts, sc)
			if got, want := tc.TotalVol(), sys.StrategyTraffic(opts, sc).Total; got != want {
				t.Errorf("%s P=%d: fetch volumes sum to %d, traffic total %d", name, p, got, want)
			}
			if p == 32 {
				spans[name] = map[string]int64{
					"compute": sys.StrategyMakespanDynamic(opts, sc).Makespan,
					"comm":    sys.StrategyMakespanCommDynamic(opts, sc, cm).Makespan,
				}
			}
		}
	}
	if spans["block"]["comm"] >= spans["wrap"]["comm"] {
		t.Errorf("P=32 unified time: block %d >= wrap %d, want block to win once communication is charged",
			spans["block"]["comm"], spans["wrap"]["comm"])
	}
	// Charging communication must widen block's advantage relative to the
	// compute-only spans (wrap pays for its scattered fetches).
	commRatio := float64(spans["wrap"]["comm"]) / float64(spans["block"]["comm"])
	computeRatio := float64(spans["wrap"]["compute"]) / float64(spans["block"]["compute"])
	if commRatio <= computeRatio {
		t.Errorf("comm model did not widen block's advantage: wrap/block ratio %.3f (comm) vs %.3f (compute)",
			commRatio, computeRatio)
	}
}
