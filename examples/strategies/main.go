// Strategies: the pluggable partitioning-strategy registry end to end.
//
// The paper compares two fixed mapping schemes; internal/strategy turns
// the choice into a registry so any number of schemes produce ordinary
// schedules that the traffic, load-balance and makespan simulators
// evaluate unchanged. This example maps LAP30 on 16 processors with every
// registered strategy, then shows the composition knobs: the blockcyclic
// block-size sweep (interpolating from wrap to contiguous locality), the
// work-slack sweep of the total-communication-optimal contigtotal
// mapper, the refine pass stacked on different bases (including the
// subtree-to-subcube, symmetric-rectilinear and contigtotal mappers),
// and a refine pass driven directly by the unified comm-aware dynamic
// makespan (objective "commspan").
package main

import (
	"fmt"
	"log"

	"repro"
)

const procs = 16

func main() {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.StrategyOptions{
		Part: repro.PartitionOptions{Grain: 25, MinClusterWidth: 4},
	}

	fmt.Printf("LAP30 on %d processors, every registered strategy:\n\n", procs)
	fmt.Printf("%-14s %10s %12s %10s %12s\n",
		"strategy", "traffic", "imbalance A", "1/(1+A)", "makespan eff")
	for _, name := range repro.Strategies() {
		sc, err := sys.MapStrategy(name, procs, opts)
		if err != nil {
			log.Fatal(err)
		}
		tr := sys.StrategyTraffic(opts, sc)
		ms := sys.StrategyMakespan(opts, sc)
		fmt.Printf("%-14s %10d %12.4f %10.3f %12.3f\n",
			name, tr.Total, sc.Imbalance(), sc.Efficiency(), ms.Efficiency)
	}

	fmt.Printf("\nblockcyclic block-size sweep (1 = wrap):\n\n")
	fmt.Printf("%-14s %10s %12s\n", "block size", "traffic", "imbalance A")
	for _, bs := range []int{1, 2, 4, 8, 16, 32} {
		o := opts
		o.BlockSize = bs
		sc, err := sys.MapStrategy("blockcyclic", procs, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14d %10d %12.4f\n",
			bs, sys.StrategyTraffic(o, sc).Total, sc.Imbalance())
	}

	// contigtotal is optimal by construction: among all contiguous splits
	// whose bottleneck stays within (1 + slack) of the optimum, it picks
	// the one with the smallest total traffic. Slack trades balance for
	// communication explicitly.
	fmt.Printf("\ncontigtotal work-slack sweep (0 = bottleneck-optimal splits only):\n\n")
	fmt.Printf("%-14s %10s %12s\n", "slack", "traffic", "imbalance A")
	for _, slack := range []float64{0, 0.05, 0.1, 0.25} {
		o := opts
		o.Slack = slack
		sc, err := sys.MapStrategy("contigtotal", procs, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14g %10d %12.4f\n",
			slack, sys.StrategyTraffic(o, sc).Total, sc.Imbalance())
	}

	fmt.Printf("\nrefine composed on each base (objective = imbalance, then traffic):\n\n")
	fmt.Printf("%-14s %16s %16s %16s\n",
		"base", "base A/traffic", "refined A", "refined traffic")
	for _, base := range []string{"block", "wrap", "contiguous", "contigtotal", "rectilinear", "blockcyclic", "subcube"} {
		baseSc, err := sys.MapStrategy(base, procs, opts)
		if err != nil {
			log.Fatal(err)
		}
		ob := opts
		ob.Base = base
		balanced, err := sys.MapStrategy("refine", procs, ob)
		if err != nil {
			log.Fatal(err)
		}
		ot := ob
		ot.Objective = "traffic"
		lean, err := sys.MapStrategy("refine", procs, ot)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8.4f/%7d %16.4f %16d\n",
			base, baseSc.Imbalance(), sys.StrategyTraffic(opts, baseSc).Total,
			balanced.Imbalance(), sys.StrategyTraffic(ot, lean).Total)
	}

	// The commspan objective hill-climbs the unified comm-aware dynamic
	// span itself — the single number in which traffic, latency, balance
	// and dependency structure all interact.
	cm := repro.CommModel{Alpha: 2, Beta: 10}
	fmt.Printf("\nrefine(block, commspan) under alpha=%g beta=%g:\n\n", cm.Alpha, cm.Beta)
	oc := opts
	oc.Base = "block"
	oc.Objective = "commspan"
	oc.Comm = cm
	oc.MaxMoves = 200
	baseSc, err := sys.MapStrategy("block", procs, oc)
	if err != nil {
		log.Fatal(err)
	}
	refined, err := sys.MapStrategy("refine", procs, oc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %16s\n", "schedule", "unified span")
	fmt.Printf("%-14s %16d\n", "block", sys.StrategyMakespanCommDynamic(oc, baseSc, cm).Makespan)
	fmt.Printf("%-14s %16d\n", "refined", sys.StrategyMakespanCommDynamic(oc, refined, cm).Makespan)
}
