// Figure 2 reproduction: the 41x41 filled matrix of a 5-point finite
// element 5x5 grid, ordered with multiple minimum degree, with the
// partitioner's clusters marked.
//
// The paper uses this example to introduce clusters: strips of consecutive
// columns with a dense triangle at the diagonal and dense rectangles
// below. The output shows the original pattern, the filled factor with
// cluster boundaries, and the per-cluster block inventory (triangles and
// rectangles), matching the discussion of Section 3.1.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	a := repro.FEGrid5(5)
	fmt.Printf("5-point FE 5x5 grid: %d unknowns, %d lower nonzeros\n\n", a.N, a.NNZ())

	sys, err := repro.Analyze(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matrix pattern (MMD-ordered):")
	fmt.Println(sys.Permuted.Spy(0))

	// Identify clusters with the paper's defaults but allow narrow strips
	// (width 2) so the small example shows multi-column clusters.
	part := sys.Partition(repro.PartitionOptions{Grain: 4, MinClusterWidth: 2})
	var bounds []int
	for _, cl := range part.Clusters {
		bounds = append(bounds, cl.ColHi+1)
	}
	fmt.Printf("filled matrix, %d nonzeros, cluster boundaries marked with '|':\n", sys.F.NNZ())
	fmt.Println(sys.F.Pattern().SpyWithBoundaries(bounds))

	fmt.Println("cluster inventory (Section 3.1):")
	for _, cl := range part.Clusters {
		if cl.Single {
			continue
		}
		fmt.Printf("  columns %2d..%2d: dense triangle (%d bands)", cl.ColLo, cl.ColHi, len(cl.TriUnits))
		if len(cl.Rects) > 0 {
			fmt.Printf(", %d dense rectangles below:", len(cl.Rects))
			for _, r := range cl.Rects {
				fmt.Printf(" rows %d..%d", r.RowLo, r.RowHi)
			}
		}
		fmt.Println()
	}
	single := 0
	for _, cl := range part.Clusters {
		if cl.Single {
			single++
		}
	}
	fmt.Printf("  plus %d single-column clusters\n", single)
}
