// Tiles2d: the 2D tile-ownership subsystem end to end.
//
// Every 1D schedule in the repository assigns whole block columns to
// processors; the 2D subsystem (internal/part2d) assigns each
// (rowBlock, colBlock) tile of a shared diagonal interval structure
// instead. This example walks the three claims the subsystem makes on
// LAP30:
//
//  1. Conservation: the fan-out/fan-in tile attribution of the 2D
//     traffic simulator sums exactly to the deduplicated total of the 1D
//     simulator over the derived element ownership.
//  2. The col2d bridge: any column-granular 1D strategy lifts to a
//     tiling whose 2D traffic and makespans are bit-identical to the 1D
//     measurements, so 1D and 2D strategies compare in one harness.
//  3. The trade: rect2d keeps total traffic at or below the
//     column-flattened rectilinear schedule, while rect2dlpt and
//     rect2dcyclic spend extra traffic to break the column task chain —
//     more than halving the unified comm-aware dynamic span at P >= 16.
package main

import (
	"fmt"
	"log"

	"repro"
)

const procs = 16

func main() {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		log.Fatal(err)
	}
	cm := repro.CommModel{Alpha: 2, Beta: 10}
	opts := repro.StrategyOptions{}

	fmt.Printf("LAP30 on %d processors, 2D tile ownership (alpha=%g, beta=%g):\n\n",
		procs, cm.Alpha, cm.Beta)
	fmt.Printf("%-20s %4s %9s %9s %9s %12s %11s\n",
		"strategy", "R", "traffic", "fan-out", "fan-in", "imbalance A", "comm span")
	show := func(label string, s2 *repro.Schedule2D) {
		tr := sys.Traffic2D(s2)
		span := sys.Makespan2DCommDynamic(s2, cm)
		fmt.Printf("%-20s %4d %9d %9d %9d %12.4f %11d\n",
			label, s2.R(), tr.Total, tr.TotalFanOut(), tr.TotalFanIn(),
			s2.Imbalance(), span.Makespan)
		if tr.TotalFanOut()+tr.TotalFanIn() != tr.Total {
			log.Fatalf("%s: conservation violated", label)
		}
	}
	for _, name := range repro.Strategies2D() {
		if name == "col2d" {
			continue // lifted per base below
		}
		s2, err := sys.MapStrategy2D(name, procs, opts)
		if err != nil {
			log.Fatal(err)
		}
		show(name, s2)
	}
	for _, base := range repro.LiftBases2D() {
		o := opts
		o.Base = base
		s2, err := sys.MapStrategy2D("col2d", procs, o)
		if err != nil {
			log.Fatal(err)
		}
		show("col2d:"+base, s2)
	}

	// The col2d bridge is exact: the lifted wrap schedule reproduces the
	// 1D traffic total and the 1D comm-aware dynamic makespan bit for bit.
	wrap1d, err := sys.MapStrategy("wrap", procs, opts)
	if err != nil {
		log.Fatal(err)
	}
	o := opts
	o.Base = "wrap"
	wrap2d, err := sys.MapStrategy2D("col2d", procs, o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncol2d:wrap vs 1D wrap: traffic %d vs %d, comm span %d vs %d\n",
		sys.Traffic2D(wrap2d).Total, sys.StrategyTraffic(opts, wrap1d).Total,
		sys.Makespan2DCommDynamic(wrap2d, cm).Makespan,
		sys.StrategyMakespanCommDynamic(opts, wrap1d, cm).Makespan)

	// The rect2d guarantee: never more traffic than flattening the same
	// cuts back to block columns (col2d:rectilinear).
	rect2d, err := sys.MapStrategy2D("rect2d", procs, opts)
	if err != nil {
		log.Fatal(err)
	}
	rect1d, err := sys.MapStrategy("rectilinear", procs, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rect2d traffic %d <= column-flattened rectilinear %d\n",
		sys.Traffic2D(rect2d).Total, sys.StrategyTraffic(opts, rect1d).Total)
}
