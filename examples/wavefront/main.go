// Wavefront: the paper's Section 5 generalization — "it can be
// generalized to computations that can be represented as directed acyclic
// graphs" — demonstrated on a computation that is not a factorization.
//
// A 2D wavefront (dynamic-programming table, Gauss-Seidel sweep, sequence
// alignment...) has one task per cell (i,j) depending on its west and
// north neighbours. The program schedules the same DAG two ways —
// row-cyclic (the wrap-mapping philosophy) and block tiles (the paper's
// block philosophy) — and compares simulated makespan and the number of
// dependency edges that cross processors (the communication the mapping
// induces).
package main

import (
	"fmt"

	"repro"
)

const (
	side  = 64 // cells per dimension
	procs = 8
	tile  = 16 // block tiling factor (tile x tile cells per block)
)

func main() {
	n := side * side
	id := func(i, j int) int { return i*side + j }

	build := func(proc func(i, j int) int32) []repro.Task {
		tasks := make([]repro.Task, n)
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				t := repro.Task{ID: id(i, j), Proc: proc(i, j), Work: 1}
				if i > 0 {
					t.Preds = append(t.Preds, int32(id(i-1, j)))
				}
				if j > 0 {
					t.Preds = append(t.Preds, int32(id(i, j-1)))
				}
				tasks[id(i, j)] = t
			}
		}
		return tasks
	}
	crossEdges := func(tasks []repro.Task) int {
		cross := 0
		for _, t := range tasks {
			for _, p := range t.Preds {
				if tasks[p].Proc != t.Proc {
					cross++
				}
			}
		}
		return cross
	}

	// Row-cyclic assignment: row i on processor i mod P (wrap philosophy).
	cyclic := build(func(i, j int) int32 { return int32(i % procs) })
	// Block tiles: tile-row-major tiles cycled over processors (block
	// philosophy: neighbours share a processor, cuts cross edges).
	tiles := side / tile
	tiled := build(func(i, j int) int32 {
		t := (i/tile)*tiles + j/tile
		return int32(t % procs)
	})

	fmt.Printf("wavefront %dx%d on %d processors (unit work per cell)\n\n", side, side, procs)
	fmt.Printf("%-14s %10s %12s %12s\n", "mapping", "makespan", "efficiency", "cross edges")
	for _, c := range []struct {
		name  string
		tasks []repro.Task
	}{
		{"row-cyclic", cyclic},
		{fmt.Sprintf("%dx%d tiles", tile, tile), tiled},
	} {
		r := repro.SimulateDAGDynamic(c.tasks, procs)
		fmt.Printf("%-14s %10d %12.3f %12d\n", c.name, r.Makespan, r.Efficiency, crossEdges(c.tasks))
	}
	fmt.Printf("\ncritical path: %d (lower bound for any mapping)\n", repro.CriticalPath(cyclic))
	fmt.Println("\nThe same trade-off as the paper's Tables 2-5: fine cyclic mappings")
	fmt.Println("balance and pipeline well; block tiles slash communication.")
}
