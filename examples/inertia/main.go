// Inertia: eigenvalue counting with a shifted LDLᵀ factorization — a
// classical application of sparse symmetric factorization beyond solving
// linear systems, demonstrating the paper's Section 5 claim that the
// partitioning/scheduling methodology adapts to "other factoring methods".
//
// By Sylvester's law of inertia, factoring A - sigma*I = L D Lᵀ and
// counting the negative entries of D gives the number of eigenvalues of A
// below sigma. The program slices the spectrum of a 9-point Laplacian this
// way, running every factorization through the block-parallel executor
// over the same partition and schedule used for the paper's experiments.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const rows, cols = 16, 16
	base := repro.Grid9(rows, cols)
	fmt.Printf("matrix: 9-point Laplacian on %dx%d grid (n=%d)\n", rows, cols, base.N)
	fmt.Println("counting eigenvalues below sigma via the inertia of A - sigma*I:")
	fmt.Printf("\n%10s %22s\n", "sigma", "eigenvalues < sigma")

	// Non-integer shifts avoid the exactly-integer diagonal entries of the
	// shifted Laplacian (an exact zero pivot stops LDL^T).
	for _, sigma := range []float64{0.5, 1.3, 2.7, 4.6, 8.3, 12.1, 15.7} {
		// Shift the diagonal: A - sigma*I.
		shifted := base.Clone()
		for j := 0; j < shifted.N; j++ {
			shifted.Val[shifted.ColPtr[j]] -= sigma
		}
		sys, err := repro.Analyze(shifted)
		if err != nil {
			log.Fatal(err)
		}
		// Run the factorization through the block-parallel executor: same
		// partition/schedule machinery as the paper's experiments.
		part := sys.Partition(repro.PartitionOptions{Grain: 16, MinClusterWidth: 4})
		sc := sys.BlockSchedule(part, 8)
		vals, err := sys.ParallelFactorizeLDL(part, sc)
		if err != nil {
			log.Fatalf("sigma=%g: %v (pivot hit zero: pick a different shift)", sigma, err)
		}
		neg := 0
		for j := 0; j < sys.F.N; j++ {
			if vals[sys.F.ColPtr[j]] < 0 {
				neg++
			}
		}
		fmt.Printf("%10.2f %22d\n", sigma, neg)
	}

	fmt.Println("\nEach count is the exact number of eigenvalues below the shift;")
	fmt.Println("bisection on sigma brackets individual eigenvalues.")
}
