// Solver: the complete direct method of the paper's Section 2 — ordering,
// symbolic factorization, numeric factorization and triangular solves —
// including the block-parallel numeric factorization executed by worker
// goroutines over the partitioner's dependency graph.
//
// The program solves a Poisson-like system on a 9-point grid, checks the
// residual, and cross-validates the parallel factorization against the
// sequential one, demonstrating that the block dependency graph of
// Section 3.3 is sufficient for correct parallel execution.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	// A 24x24 9-point grid: 576 unknowns.
	a := repro.Grid9(24, 24)
	sys, err := repro.Analyze(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: n=%d, nnz(A)=%d, nnz(L)=%d, fill-in=%d\n",
		a.N, a.NNZ(), sys.F.NNZ(), sys.F.NNZ()-a.NNZ())

	// Manufactured solution: x*_i = sin(i/10), b = A x*.
	xStar := make([]float64, a.N)
	for i := range xStar {
		xStar[i] = math.Sin(float64(i) / 10)
	}
	b := matVec(a, xStar)

	// 1. Sequential direct solve on the original system.
	x, err := sys.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for i := range x {
		if d := math.Abs(x[i] - xStar[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("sequential solve: residual=%.2e, max error vs manufactured x*=%.2e\n",
		sys.ResidualNorm(x, b), worst)

	// 2. Block-parallel factorization on 8 simulated processors.
	part := sys.Partition(repro.PartitionOptions{Grain: 16, MinClusterWidth: 4})
	sc := sys.BlockSchedule(part, 8)
	pv, err := sys.ParallelFactorize(part, sc)
	if err != nil {
		log.Fatal(err)
	}
	chol, err := sys.Factorize()
	if err != nil {
		log.Fatal(err)
	}
	var dev float64
	for k := range pv {
		if d := math.Abs(pv[k] - chol.Val[k]); d > dev {
			dev = d
		}
	}
	fmt.Printf("parallel factorization (8 workers, %d unit blocks): max |L_par - L_seq| = %.2e\n",
		len(part.Units), dev)

	tr := sys.Traffic(sc)
	fmt.Printf("simulated traffic at this schedule: %d units total, A=%.3f\n",
		tr.Total, sc.Imbalance())

	// 3. The staged pipeline: analyze the pattern once, plan once, factor
	// once, then solve many right-hand sides against the held Factor —
	// no stage ever re-runs, and each solve is bitwise identical to the
	// monolithic sys.Solve above.
	an, err := repro.AnalyzePattern(a)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := an.Plan("wrap", 8, repro.StrategyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fa, err := pl.Factorize(a, repro.KernelCholesky)
	if err != nil {
		log.Fatal(err)
	}
	rhs := make([][]float64, 4)
	rhs[0] = b
	for r := 1; r < len(rhs); r++ {
		y := make([]float64, a.N)
		for i := range y {
			y[i] = float64(r) * math.Cos(float64(i)/7)
		}
		rhs[r] = y
	}
	xs, err := fa.SolveBatch(rhs)
	if err != nil {
		log.Fatal(err)
	}
	for i := range xs[0] {
		if xs[0][i] != x[i] {
			log.Fatalf("staged solve deviates from monolithic solve at x[%d]", i)
		}
	}
	key := fa.Key.String()
	fmt.Printf("staged pipeline: factored once (key %s...), solved %d right-hand sides; "+
		"staged x == monolithic x bit for bit\n", key[:min(22, len(key))], len(rhs))
}

// matVec multiplies the full symmetric matrix by x.
func matVec(m *repro.Matrix, x []float64) []float64 {
	y := make([]float64, m.N)
	for j := 0; j < m.N; j++ {
		cj := m.Col(j)
		vj := m.ColVal(j)
		y[j] += vj[0] * x[j]
		for k := 1; k < len(cj); k++ {
			i := cj[k]
			y[i] += vj[k] * x[j]
			y[j] += vj[k] * x[i]
		}
	}
	return y
}
