// Quickstart: the minimal end-to-end use of the repro library.
//
// It runs the paper's pipeline on LAP30 (the one test matrix this
// reproduction rebuilds exactly): MMD ordering, symbolic factorization,
// block-based partitioning, scheduling on 16 processors, and the traffic /
// load-balance simulation — then prints the comparison the paper's
// abstract summarizes: blocks cut communication, wrap wins balance.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	a := repro.LAP30()
	sys, err := repro.Analyze(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LAP30: %d equations, %d nonzeros, factor has %d nonzeros\n",
		a.N, a.NNZ(), sys.F.NNZ())

	const procs = 16
	part := sys.Partition(repro.PartitionOptions{Grain: 25, MinClusterWidth: 4})
	fmt.Printf("partitioned into %d clusters, %d unit blocks\n",
		len(part.Clusters), len(part.Units))

	block := sys.BlockSchedule(part, procs)
	wrap := sys.WrapSchedule(procs)

	bt := sys.Traffic(block)
	wt := sys.Traffic(wrap)

	fmt.Printf("\n%-22s %12s %12s\n", "scheme", "traffic", "imbalance A")
	fmt.Printf("%-22s %12d %12.3f\n", "block (g=25, w=4)", bt.Total, block.Imbalance())
	fmt.Printf("%-22s %12d %12.3f\n", "wrap", wt.Total, wrap.Imbalance())
	fmt.Printf("\nblock saves %.0f%% of the communication; wrap balances %.1fx better.\n",
		100*(1-float64(bt.Total)/float64(wt.Total)),
		block.Imbalance()/wrap.Imbalance())

	// The staged pipeline in one call: the cache content-addresses
	// analysis, plan and factor, so the second solve against the same
	// pattern and values hits every stage and only runs the sweeps.
	cache := repro.NewCache(0)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	for i := 0; i < 2; i++ {
		if _, err := cache.Solve(a, "wrap", procs, repro.StrategyOptions{}, repro.KernelCholesky, b); err != nil {
			log.Fatal(err)
		}
	}
	st := cache.Stats()
	fmt.Printf("staged solve x2 through the artifact cache: hits=%d misses=%d\n",
		st.Hits, st.Misses)
}
