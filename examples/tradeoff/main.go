// Trade-off study: the communication / load-balance tension that is the
// paper's central observation, swept over grain size and cluster width.
//
// For LAP30 on 16 processors the program traces how growing the grain size
// cuts data traffic (blocks re-use fetched data) while the load imbalance
// factor A climbs (fewer, larger schedulable units), and how the minimum
// cluster width moves the same trade-off (Table 4). The wrap-mapped
// baseline anchors both ends: highest traffic, best balance.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sys, err := repro.Analyze(repro.LAP30())
	if err != nil {
		log.Fatal(err)
	}
	const procs = 16

	wrap := sys.WrapSchedule(procs)
	wt := sys.Traffic(wrap)
	fmt.Printf("LAP30, P=%d. Wrap baseline: traffic=%d, A=%.3f\n\n", procs, wt.Total, wrap.Imbalance())

	fmt.Println("grain sweep (width 4):")
	fmt.Printf("%8s %8s %10s %8s %10s\n", "grain", "units", "traffic", "A", "vs wrap")
	for _, g := range []int{2, 4, 8, 16, 25, 50, 100, 200} {
		part := sys.Partition(repro.PartitionOptions{Grain: g, MinClusterWidth: 4})
		sc := sys.BlockSchedule(part, procs)
		tr := sys.Traffic(sc)
		fmt.Printf("%8d %8d %10d %8.2f %9.0f%%\n",
			g, len(part.Units), tr.Total, sc.Imbalance(),
			100*float64(tr.Total)/float64(wt.Total))
	}

	fmt.Println("\nminimum cluster width sweep (grain 4, Table 4):")
	fmt.Printf("%8s %8s %10s %8s\n", "width", "units", "traffic", "A")
	for _, w := range []int{2, 4, 8, 16} {
		part := sys.Partition(repro.PartitionOptions{Grain: 4, MinClusterWidth: w})
		sc := sys.BlockSchedule(part, procs)
		tr := sys.Traffic(sc)
		fmt.Printf("%8d %8d %10d %8.2f\n", w, len(part.Units), tr.Total, sc.Imbalance())
	}

	fmt.Println("\nReading: larger grains cut traffic but concentrate work;")
	fmt.Println("the paper's conclusion is to tune g and width per application.")
}
